module mptwino

go 1.22
