package sim

import (
	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/energy"
	"mptwino/internal/model"
	"mptwino/internal/ndp"
	"mptwino/internal/parallel"
	"mptwino/internal/winograd"
)

// Breakdown exposes one pass's per-resource durations before the overlap
// rule combines them — which resource binds a pass explains every Fig. 15
// trend (early layers: tile fabric; w_dp late layers: DRAM weight
// streaming; backward passes: the serialized collective).
type Breakdown struct {
	SystolicSec float64 // dot-product matmuls
	VectorSec   float64 // Winograd transforms, activations
	DRAMSec     float64 // local 3D-stacked memory streaming
	TileCommSec float64 // tile scatter/gather on the cluster fabric
	CollSec     float64 // weight-gradient ring collective (serialized)
}

// Binding names the resource that determines the pass duration.
func (b Breakdown) Binding() string {
	name, best := "systolic", b.SystolicSec
	for _, c := range []struct {
		n string
		v float64
	}{{"vector", b.VectorSec}, {"dram", b.DRAMSec}, {"tile-comm", b.TileCommSec}} {
		if c.v > best {
			name, best = c.n, c.v
		}
	}
	if b.CollSec > best {
		return "collective"
	}
	return name
}

// LayerResult is the simulated outcome of one training iteration of one
// layer (the unit of Fig. 15).
type LayerResult struct {
	Name   string
	Config SystemConfig
	Ng, Nc int // chosen clustering (1,p for data-parallel configs)
	Nf, Ni int // planner shard axes (always 1 on the fixed menu)

	ForwardSec  float64          // fprop
	BackwardSec float64          // bprop + updateGrad
	Forward     Breakdown        // per-resource forward durations
	Backward    Breakdown        // per-resource backward durations
	Energy      energy.Breakdown // whole system
	DRAMBytes   int64            // per worker, whole iteration
	NetBytes    int64            // per worker, whole iteration (all fabrics)

	// TileBytes / CollBytes split the per-worker traffic by fabric: tile
	// scatter/gather on the cluster FBFLY vs. the weight-gradient ring
	// collective — the split behind the paper's Fig. 15 discussion.
	TileBytes int64
	CollBytes int64

	// Menu records every (Ng, Nc) candidate a dynamic-clustering config
	// evaluated for this layer (empty for fixed-grid configs). The chosen
	// entry is the earliest with the strictly smallest total time.
	Menu []MenuCell

	// BoundBytes is the layer's dense per-worker communication floor —
	// the minimum no-reduction traffic over the clustering menu
	// (comm.LowerBoundBytes) — against which the scenario matrix reports
	// achieved bytes. Identical across configs of one layer.
	BoundBytes int64

	// ShareImbalance is the residual spread of the realizable integer
	// batch sharding in permille (comm.ImbalancePermille); 0 on healthy
	// equal splits and on homogeneous systems without fleet profiles.
	ShareImbalance int64
}

// MenuCell is one evaluated dynamic-clustering candidate.
type MenuCell struct {
	Ng, Nc   int
	TotalSec float64
}

// TotalSec returns forward+backward time.
func (r LayerResult) TotalSec() float64 { return r.ForwardSec + r.BackwardSec }

// phase aggregates one phase's per-worker costs before overlap.
type phase struct {
	systolicSec float64
	vectorSec   float64
	dramSec     float64
	dramBytes   int64

	tileCommSec   float64
	tileCommBytes int64
	collSec       float64
	collBytes     int64

	macs     int64 // whole-system MACs (for energy)
	vops     int64 // whole-system vector ops
	netBytes int64 // whole-system byte·hops (for link energy)
}

// seconds returns the phase duration. Compute, DRAM streaming, and tile
// transfer overlap under double buffering (bound by the slowest resource),
// but the weight collective serializes after updateGrad: its final chunks
// only exist once the gradient computation finishes, and the updated
// weights must be broadcast and stored before the iteration ends.
func (p phase) seconds() float64 {
	t := ndp.PhaseSeconds(p.systolicSec, p.vectorSec, p.dramSec)
	if p.tileCommSec > t {
		t = p.tileCommSec
	}
	return t + p.collSec
}

// breakdown exports the phase's per-resource durations.
func (p phase) breakdown() Breakdown {
	return Breakdown{
		SystolicSec: p.systolicSec,
		VectorSec:   p.vectorSec,
		DRAMSec:     p.dramSec,
		TileCommSec: p.tileCommSec,
		CollSec:     p.collSec,
	}
}

// strategyFor resolves the clustering, transform and reduction fractions a
// config uses for one layer.
func (s System) strategyFor(c SystemConfig, p conv.Params, batch int) (comm.Strategy, *winograd.Transform) {
	switch {
	case c == DDp:
		return comm.Strategy{Ng: 1, Nc: s.Workers}, winograd.F4x4_3x3 // transform unused
	case c == WDp:
		tr, err := winograd.ForKernel(p.K, 1)
		if err != nil {
			panic(err)
		}
		return comm.Strategy{Ng: 1, Nc: s.Workers, Winograd: true}, tr
	default:
		// Fixed (16,16) — or the largest Ng that p supports. Under a
		// survivor menu (fault recovery at a non-divisible worker count)
		// take the menu's leading entry, which keeps Ng=16 and idles the
		// remainder of the grid.
		var cfg comm.ClusterConfig
		if s.Menu != nil {
			cfg = s.Menu[0]
		} else {
			ng := 16
			for s.Workers%ng != 0 {
				ng /= 2
			}
			cfg = comm.ClusterConfig{Ng: ng, Nc: s.Workers / ng}
		}
		st, tr := comm.StrategyFor(cfg, p.K, c.usesPrediction(), s.Reductions)
		return st, tr
	}
}

// meanTileHops returns the average hop count of the cluster fabric the
// strategy implies: 1 for ≤4 fully-connected groups, 1.6 for the 4×4
// FBFLY (6 of 15 destinations at 1 hop, 9 at 2).
func meanTileHops(ng int) float64 {
	switch {
	case ng <= 1:
		return 0
	case ng <= 4:
		return 1
	case ng <= 16:
		return 1.6
	default:
		// Larger planner cells sit on a side×side FBFLY; the closed form
		// 2·side/(side+1) generalizes the 4×4 figure (2·4/5 = 1.6).
		side := 1
		for side*side < ng {
			side++
		}
		return 2 * float64(side) / float64(side+1)
	}
}

// SimulateLayer runs one training iteration of layer l at the given batch
// under config c, returning time, energy, and traffic. Dynamic-clustering
// configs evaluate every allowed (Ng, Nc) wiring and keep the fastest —
// the paper pre-computes exactly this per-layer choice offline ("the
// optimal configuration per layer ... is pre-determined and does not
// change", with footnote 9 assuming optimal reorganization).
func (s System) SimulateLayer(l model.Layer, batch int, c SystemConfig) LayerResult {
	if c.usesDynamicClustering() {
		// Menu entries are independent; evaluate them concurrently and
		// select sequentially, preserving the sequential tie-break (the
		// earliest entry with the strictly smallest time wins).
		menu := s.clusterMenu()
		results := parallel.Map(s.workers(), len(menu), func(i int) LayerResult {
			st, tr := comm.StrategyFor(menu[i], l.P.K, c.usesPrediction(), s.Reductions)
			return s.simulateWithStrategy(l, batch, c, st, tr)
		})
		s.Metrics.Counter("sim.menu_cells").Add(int64(len(menu)))
		best := results[0]
		for _, r := range results[1:] {
			if r.TotalSec() < best.TotalSec() {
				best = r
			}
		}
		// Record the evaluated sweep on the winner so observability layers
		// can show WHY this (Ng, Nc) won (trace args, -metrics dumps).
		best.Menu = make([]MenuCell, len(results))
		for i, r := range results {
			best.Menu[i] = MenuCell{Ng: r.Ng, Nc: r.Nc, TotalSec: r.TotalSec()}
		}
		best.BoundBytes = comm.LowerBoundBytes(l.P, batch, menu)
		return best
	}
	st, tr := s.strategyFor(c, l.P, batch)
	res := s.simulateWithStrategy(l, batch, c, st, tr)
	res.BoundBytes = comm.LowerBoundBytes(l.P, batch, s.clusterMenu())
	return res
}

// simulateWithStrategy runs the layer under an explicit strategy.
func (s System) simulateWithStrategy(l model.Layer, batch int, c SystemConfig, st comm.Strategy, tr *winograd.Transform) LayerResult {
	p := l.P
	res := LayerResult{Name: l.Name, Config: c, Ng: st.Ng, Nc: st.Nc,
		Nf: st.FilterShards(), Ni: st.ChannelShards()}

	var fwd, bwd phase
	switch {
	case c == DDp:
		fwd, bwd = s.directPhases(p, batch)
	case st.Extended():
		fwd, bwd = s.winogradPhasesExt(p, batch, st, tr, l.EffectiveGatherScale())
	default:
		fwd, bwd = s.winogradPhases(p, batch, st, tr, l.EffectiveGatherScale())
	}

	if s.fleetActive() {
		ff := s.fleetFactors(st, batch)
		ff.apply(&fwd)
		ff.apply(&bwd)
		res.ShareImbalance = comm.ImbalancePermille(ff.shares)
	}

	res.ForwardSec = fwd.seconds()
	res.BackwardSec = bwd.seconds()
	res.Forward = fwd.breakdown()
	res.Backward = bwd.breakdown()
	res.DRAMBytes = fwd.dramBytes + bwd.dramBytes
	res.TileBytes = fwd.tileCommBytes + bwd.tileCommBytes
	res.CollBytes = fwd.collBytes + bwd.collBytes
	res.NetBytes = res.TileBytes + res.CollBytes

	res.Energy = s.energyOf(fwd, res.ForwardSec, c, st)
	res.Energy.Add(s.energyOf(bwd, res.BackwardSec, c, st))
	return res
}

// directPhases models the d_dp baseline: one big matmul per phase
// (im2col-lowered), full spatial data movement, spatial weight collective.
func (s System) directPhases(p conv.Params, batch int) (fwd, bwd phase) {
	pw := int64(s.Workers)
	oh, ow := int64(p.OutH()), int64(p.OutW())
	rowsPerWorker := (int64(batch)*oh*ow + pw - 1) / pw // output pixels per worker
	k2 := int64(p.K) * int64(p.K)
	inner := int64(p.In) * k2

	fc := conv.FpropCost(p, batch)
	fwd.systolicSec = s.NDP.MatmulSeconds(rowsPerWorker, inner, int64(p.Out))
	fwd.dramBytes = fc.Total() / pw
	fwd.dramSec = s.NDP.DRAMSeconds(fwd.dramBytes)
	fwd.macs = fc.MACs

	bc := conv.BpropCost(p, batch)
	uc := conv.UpdateGradCost(p, batch)
	// bprop matmul mirrors fprop; updateGrad reduces over output pixels.
	bwd.systolicSec = s.NDP.MatmulSeconds(rowsPerWorker, int64(p.Out)*k2, int64(p.In)) +
		s.NDP.MatmulSeconds(inner, rowsPerWorker, int64(p.Out))
	bwd.dramBytes = (bc.Total() + uc.Total()) / pw
	bwd.dramSec = s.NDP.DRAMSeconds(bwd.dramBytes)
	bwd.macs = bc.MACs + uc.MACs

	// Weight collective: reduce + broadcast of spatial weights.
	wBytes := comm.SpatialWeightBytes(p)
	oneWay := comm.RingCollectivePerWorker(wBytes, s.Workers)
	bwd.collBytes = 2 * oneWay
	bwd.collSec = s.collectiveSeconds(wBytes, s.Workers, s.ringBW(DDp))
	bwd.netBytes = 2 * oneWay * pw
	return fwd, bwd
}

// winogradPhases models all Winograd configs: element-partitioned dot
// products, transforms on the vector unit, tile transfer (MPT only) and
// the group-ring weight collective.
func (s System) winogradPhases(p conv.Params, batch int, st comm.Strategy, tr *winograd.Transform, gatherScale float64) (fwd, bwd phase) {
	// Active workers in the grid. For healthy divisible configurations this
	// equals s.Workers; survivor menus may idle a remainder (e.g. (16,15)
	// uses 240 of 255 survivors), and idle workers contribute no compute or
	// traffic.
	pw := int64(st.Workers())
	t2 := int64(tr.T) * int64(tr.T)
	// Element load per worker. When Ng divides T² each group owns whole
	// elements; otherwise the surplus elements' output channels are
	// co-partitioned across the groups sharing them (the tile gather
	// already collects Y fragments from every group, and each group
	// ring-reduces only its own dW columns), so the load balances to
	// T²/Ng fractionally.
	elemsPerWorker := float64(t2) / float64(st.Ng)
	tiles := comm.TileBytes(tr, p, batch, 1) / 4 / t2 // tiles per channel-batch
	rowsPerWorker := tiles / int64(st.Nc)
	if rowsPerWorker < 1 {
		rowsPerWorker = 1
	}

	fc := winograd.FpropCost(tr, p, batch)
	bc := winograd.BpropCost(tr, p, batch)
	uc := winograd.UpdateGradCost(tr, p, batch)

	// --- forward ---
	// Dot products: elemsPerWorker independent (rows × I)·(I × J) matmuls.
	fwd.systolicSec = elemsPerWorker * s.NDP.MatmulSeconds(rowsPerWorker, int64(p.In), int64(p.Out))
	fwd.vectorSec = float64(s.NDP.VectorCycles(fc.TransformMACs/pw)) / s.NDP.ClockHz
	fwd.dramBytes = s.winogradDRAMBytes(fc, st, tr, p, rowsPerWorker)
	fwd.dramSec = s.NDP.DRAMSeconds(fwd.dramBytes)
	fwd.macs = fc.DotMACs
	fwd.vops = fc.TransformMACs

	inTiles := comm.TileBytes(tr, p, batch, p.In)
	outTiles := comm.TileBytes(tr, p, batch, p.Out)
	oneD := winograd.HoldsWholeLines(tr.T, st.Ng) && st.Ng > 1

	scatterF := float64(comm.TileTransferPerWorker(inTiles, st.Ng, st.Nc)) * (1 - st.ScatterReduction)
	gatherF := float64(comm.TileTransferPerWorker(outTiles, st.Ng, st.Nc)) * (1 - st.GatherReduction) * gatherScale
	if oneD {
		gatherF *= float64(tr.M) / float64(tr.T)
	}
	fwd.tileCommBytes = int64(scatterF + gatherF)
	fwd.tileCommSec = s.tileSeconds(fwd.tileCommBytes, st)
	fwd.netBytes = int64((scatterF + gatherF) * meanTileHops(st.Ng) * float64(pw))

	// --- backward: bprop + updateGrad ---
	bwd.systolicSec = elemsPerWorker * (s.NDP.MatmulSeconds(rowsPerWorker, int64(p.Out), int64(p.In)) +
		s.NDP.MatmulSeconds(int64(p.In), rowsPerWorker, int64(p.Out)))
	bwd.vectorSec = float64(s.NDP.VectorCycles(bc.TransformMACs/pw)) / s.NDP.ClockHz
	bwd.dramBytes = s.winogradDRAMBytes(bc, st, tr, p, rowsPerWorker) +
		s.winogradDRAMBytes(uc, st, tr, p, rowsPerWorker)
	bwd.dramSec = s.NDP.DRAMSeconds(bwd.dramBytes)
	bwd.macs = bc.DotMACs + uc.DotMACs
	bwd.vops = bc.TransformMACs

	scatterB := float64(comm.TileTransferPerWorker(outTiles, st.Ng, st.Nc)) * (1 - st.ScatterReduction)
	gatherB := float64(comm.TileTransferPerWorker(inTiles, st.Ng, st.Nc)) * (1 - st.GatherReduction) * gatherScale
	if oneD {
		gatherB *= float64(tr.M) / float64(tr.T)
	}
	bwd.tileCommBytes = int64(scatterB + gatherB)
	bwd.tileCommSec = s.tileSeconds(bwd.tileCommBytes, st)
	bwd.netBytes = int64((scatterB + gatherB) * meanTileHops(st.Ng) * float64(pw))

	// Weight collective. Data-parallel Winograd updates spatial w
	// (Table IV "update w"); MPT updates the Winograd-domain shard.
	var msg int64
	ring := st.Nc
	if st.Ng == 1 {
		msg = comm.SpatialWeightBytes(p)
	} else {
		msg = comm.WinogradWeightBytes(tr, p) / int64(st.Ng)
	}
	oneWay := comm.RingCollectivePerWorker(msg, ring)
	bwd.collBytes = 2 * oneWay
	var cfgClass SystemConfig = WMp
	if st.Ng == 1 {
		cfgClass = WDp
	}
	bwd.collSec = s.collectiveSeconds(msg, ring, s.ringBW(cfgClass))
	bwd.netBytes += 2 * oneWay * pw
	return fwd, bwd
}

// winogradDRAMBytes distributes one phase's data volume to a worker:
// tiles and spatial data split across all p workers; the weight shard is
// group-local and re-read once per systolic pass when it exceeds the
// double-buffered SRAM.
func (s System) winogradDRAMBytes(cst winograd.Cost, st comm.Strategy, tr *winograd.Transform, p conv.Params, rows int64) int64 {
	pw := int64(st.Workers())
	b := (cst.TileBytes + cst.SpatialBytes) / pw
	shard := cst.WeightBytes / int64(st.Ng)
	if shard > 0 {
		passes := int64(1)
		if !s.NDP.WeightsFitInBuffer(shard) {
			passes = (rows + int64(s.NDP.SystolicDim) - 1) / int64(s.NDP.SystolicDim)
			if passes < 1 {
				passes = 1
			}
		}
		b += shard * passes
	}
	return b
}

// tileSeconds converts per-worker tile-transfer bytes to time on the
// cluster fabric, derated by the mean hop count (intermediate hops consume
// link capacity) plus the diameter's SerDes latency.
func (s System) tileSeconds(bytes int64, st comm.Strategy) float64 {
	if bytes == 0 || st.Ng <= 1 {
		return 0
	}
	bw := s.LinkBW / 2 // MPT tile share
	hops := meanTileHops(st.Ng)
	cong := s.TileCongestion
	if cong <= 0 {
		cong = 1
	}
	return float64(bytes)*hops*cong/bw + 2*hops*s.SerDesSec
}

// collectiveSeconds models the pipelined ring reduce+broadcast of a
// msg-byte payload over an n-worker ring: bandwidth term 2·msg·(n−1)/n at
// the per-worker ring bandwidth, plus the pipeline fill of 2(n−1) hops of
// one chunk.
func (s System) collectiveSeconds(msg int64, n int, bw float64) float64 {
	if n <= 1 || msg <= 0 {
		return 0
	}
	bwTerm := 2 * float64(msg) * float64(n-1) / float64(n) / bw
	fill := 2 * float64(n-1) * (s.SerDesSec + float64(s.ChunkBytes)/bw)
	return bwTerm + fill
}

// energyOf charges one phase's energy for the whole p-worker system.
func (s System) energyOf(ph phase, wallSec float64, c SystemConfig, st comm.Strategy) energy.Breakdown {
	e := s.Energy
	var b energy.Breakdown
	b.Add(e.MACs(ph.macs))
	b.Add(e.MACs(ph.vops)) // transforms are multiply-adds on the vector unit
	dram := ph.dramBytes * int64(s.Workers)
	b.Add(e.DRAM(dram))
	b.Add(e.SRAM(2 * dram)) // every DRAM byte passes through a buffer twice
	b.Add(e.LinkTraffic(ph.netBytes))
	b.Add(e.LinkIdle(s.activeLinks(c, st, ph), wallSec*float64(s.Workers)))
	return b
}

// activeLinks returns the per-worker powered link count for a phase,
// honoring the paper's "unused links are turned-off ... while maintaining
// minimal connectivity to the host".
func (s System) activeLinks(c SystemConfig, st comm.Strategy, ph phase) int {
	switch {
	case ph.collBytes > 0 && ph.tileCommBytes > 0:
		return 4
	case ph.collBytes > 0:
		if c.isMPT() {
			return 2
		}
		return 4
	case ph.tileCommBytes > 0:
		return 2
	default:
		return 1 // minimal host connectivity
	}
}
