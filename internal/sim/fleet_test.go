package sim

import (
	"reflect"
	"testing"

	"mptwino/internal/fault"
	"mptwino/internal/model"
)

// stragglerSystem returns the default machine with one half-speed module
// and load-aware sharding toggled by the caller.
func stragglerSystem(loadAware bool) System {
	s := DefaultSystem()
	plan := fault.SlowStragglerPlan(1, s.Workers, 17, 0.5)
	s.ComputeSpeeds, s.LinkSpeeds = plan.ModuleSpeeds(s.Workers, 0, 1)
	s.LoadAware = loadAware
	return s
}

// TestFleetHomogeneousBitIdentical asserts that all-1.0 speed slices are a
// bit-exact no-op: the stretch factors collapse to exactly 1.0, so the
// profiled path must reproduce the nil-speeds results field for field.
func TestFleetHomogeneousBitIdentical(t *testing.T) {
	net := model.FractalNet44()
	for _, c := range AllConfigs() {
		plain := DefaultSystem()
		want := plain.SimulateNetwork(net, c)

		ones := DefaultSystem()
		ones.ComputeSpeeds = make([]float64, ones.Workers)
		ones.LinkSpeeds = make([]float64, ones.Workers)
		for i := range ones.ComputeSpeeds {
			ones.ComputeSpeeds[i] = 1
			ones.LinkSpeeds[i] = 1
		}
		got := ones.SimulateNetwork(net, c)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("config %s: all-1.0 fleet profile perturbed the result", c)
		}
	}
}

// TestFleetDeterministicAcrossWorkers extends the worker-count determinism
// contract to the heterogeneous path: straggler profile + load-aware
// sharding must produce byte-identical results at workers {1, 2, 8}.
func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	net := model.ResNet34()
	for _, c := range AllConfigs() {
		var ref NetworkResult
		for i, workers := range []int{1, 2, 8} {
			s := stragglerSystem(true)
			s.Parallel = workers
			r := s.SimulateNetwork(net, c)
			if i == 0 {
				ref = r
				continue
			}
			if !reflect.DeepEqual(ref, r) {
				t.Errorf("config %s: workers=%d heterogeneous result differs from workers=1", c, workers)
			}
		}
	}
}

// TestLoadAwareBeatsEqualOnStraggler is the acceptance criterion: on the
// slow-straggler fleet, load-aware sharding must beat the equal B/Nc split
// on simulated step time for the full MPT config, and the straggler must
// cost something in the first place.
func TestLoadAwareBeatsEqualOnStraggler(t *testing.T) {
	net := model.WRN40x10()
	healthy := DefaultSystem().SimulateNetwork(net, WMpFull)
	equal := stragglerSystem(false).SimulateNetwork(net, WMpFull)
	aware := stragglerSystem(true).SimulateNetwork(net, WMpFull)

	if equal.IterationSec <= healthy.IterationSec {
		t.Fatalf("straggler cost nothing: healthy %v, equal-split %v",
			healthy.IterationSec, equal.IterationSec)
	}
	if aware.IterationSec >= equal.IterationSec {
		t.Fatalf("load-aware %v does not beat equal split %v",
			aware.IterationSec, equal.IterationSec)
	}
	// The straggler gates a full equal-split cluster at 2x; load-aware
	// sharding should recover most of that, landing well under the
	// midpoint between equal-split and healthy.
	mid := (equal.IterationSec + healthy.IterationSec) / 2
	if aware.IterationSec > mid {
		t.Errorf("load-aware %v recovered less than half the straggler penalty (healthy %v, equal %v)",
			aware.IterationSec, healthy.IterationSec, equal.IterationSec)
	}
}

// TestFleetBoundBytesReported asserts every simulated layer carries the
// dense communication floor and that achieved tile+collective traffic is
// positive where the bound is.
func TestFleetBoundBytesReported(t *testing.T) {
	net := model.WRN40x10()
	r := DefaultSystem().SimulateNetwork(net, WMpFull)
	for _, lr := range r.Layers {
		if lr.BoundBytes <= 0 {
			t.Errorf("layer %s: BoundBytes = %d", lr.Name, lr.BoundBytes)
		}
	}
}

// TestFleetImbalanceReported asserts the load-aware straggler run reports
// a non-zero residual imbalance (the straggler cluster holds fewer
// samples) and the homogeneous run reports none.
func TestFleetImbalanceReported(t *testing.T) {
	net := model.WRN40x10()
	aware := stragglerSystem(true).SimulateNetwork(net, WMp)
	seen := false
	for _, lr := range aware.Layers {
		if lr.ShareImbalance > 0 {
			seen = true
		}
	}
	if !seen {
		t.Error("load-aware straggler run reported zero imbalance everywhere")
	}
	plain := DefaultSystem().SimulateNetwork(net, WMp)
	for _, lr := range plain.Layers {
		if lr.ShareImbalance != 0 {
			t.Errorf("homogeneous layer %s reports imbalance %d", lr.Name, lr.ShareImbalance)
		}
	}
}

// TestFleetFailureRecoveryWithProfiles runs the degraded path with both a
// dead module and a straggler profile: recovery must re-map speeds onto
// the survivor grid and still produce a valid slowdown.
func TestFleetFailureRecoveryWithProfiles(t *testing.T) {
	s := stragglerSystem(true)
	net := model.WRN40x10()
	res, err := s.SimulateNetworkWithFailure(net, WMpFull, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != s.Workers-1 {
		t.Fatalf("survivors = %d", res.Survivors)
	}
	if res.Slowdown() < 1 {
		t.Errorf("degraded run faster than healthy: slowdown %v", res.Slowdown())
	}
	// Survivor compaction drops module 3; module 17's straggler profile
	// must still land on slot 16 of the compacted grid.
	ds := s
	ds.Workers = res.Survivors
	mods := survivorModules(s.activeModules(s.Workers), res.Failed)
	if mods[16] != 17 {
		t.Fatalf("survivor slot 16 holds module %d, want 17", mods[16])
	}
}
