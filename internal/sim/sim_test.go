package sim

import (
	"testing"

	"mptwino/internal/model"
)

func earlyL() model.Layer { return model.FiveLayers()[0] }
func midL() model.Layer   { return model.FiveLayers()[2] }
func lateL() model.Layer  { return model.FiveLayers()[4] }

func TestConfigStrings(t *testing.T) {
	want := []string{"d_dp", "w_dp", "w_mp", "w_mp+", "w_mp*", "w_mp++"}
	for i, c := range AllConfigs() {
		if c.String() != want[i] {
			t.Fatalf("config %d = %q, want %q", i, c, want[i])
		}
	}
}

func TestLayerResultPositive(t *testing.T) {
	s := DefaultSystem()
	for _, c := range AllConfigs() {
		r := s.SimulateLayer(midL(), 256, c)
		if r.ForwardSec <= 0 || r.BackwardSec <= 0 {
			t.Fatalf("%v: non-positive time %+v", c, r)
		}
		if r.Energy.Total() <= 0 {
			t.Fatalf("%v: non-positive energy", c)
		}
		if r.DRAMBytes <= 0 {
			t.Fatalf("%v: no DRAM traffic", c)
		}
	}
}

// TestWinogradBeatsDirectForward: w_dp must be faster than d_dp in the
// forward pass on the feature-map-dominated early/mid layers (the compute
// reduction of Fig. 1/15). On late layers the whole Winograd weight set
// (|W| = 4× |w| under F(4×4,3×3)) is re-streamed per worker, so w_dp can
// legitimately lose there — the data-access increase of Fig. 1 that
// motivates MPT's weight partitioning.
func TestWinogradBeatsDirectForward(t *testing.T) {
	s := DefaultSystem()
	for _, l := range model.FiveLayers()[:2] {
		d := s.SimulateLayer(l, 256, DDp)
		w := s.SimulateLayer(l, 256, WDp)
		if w.ForwardSec >= d.ForwardSec {
			t.Fatalf("%s: w_dp fwd %v not faster than d_dp %v", l.Name, w.ForwardSec, d.ForwardSec)
		}
	}
}

// TestMPTHelpsLateHurtsEarly reproduces the core Fig. 15 narrative: fixed
// (16,16) MPT beats w_dp on late layers and loses on the early layer.
func TestMPTHelpsLateHurtsEarly(t *testing.T) {
	s := DefaultSystem()

	eDP := s.SimulateLayer(earlyL(), 256, WDp)
	eMP := s.SimulateLayer(earlyL(), 256, WMp)
	if eMP.TotalSec() <= eDP.TotalSec() {
		t.Fatalf("early: w_mp (%v) should be slower than w_dp (%v)", eMP.TotalSec(), eDP.TotalSec())
	}

	lDP := s.SimulateLayer(lateL(), 256, WDp)
	lMP := s.SimulateLayer(lateL(), 256, WMp)
	if lMP.TotalSec() >= lDP.TotalSec() {
		t.Fatalf("late: w_mp (%v) should beat w_dp (%v)", lMP.TotalSec(), lDP.TotalSec())
	}
}

// TestPredictionOnlyHelps: adding activation prediction/zero-skip can only
// shrink tile-transfer time, never slow a layer down.
func TestPredictionOnlyHelps(t *testing.T) {
	s := DefaultSystem()
	for _, l := range model.FiveLayers() {
		base := s.SimulateLayer(l, 256, WMp)
		pred := s.SimulateLayer(l, 256, WMpPred)
		if pred.TotalSec() > base.TotalSec()*1.0001 {
			t.Fatalf("%s: prediction slowed layer %v -> %v", l.Name, base.TotalSec(), pred.TotalSec())
		}
	}
}

// TestDynamicClusteringNeverLoses: per layer, w_mp* must match or beat
// both w_dp-like (1,256) and fixed (16,16) behavior, because it picks the
// best configuration from a menu that includes them.
func TestDynamicClusteringNeverLoses(t *testing.T) {
	s := DefaultSystem()
	for _, l := range model.FiveLayers() {
		dyn := s.SimulateLayer(l, 256, WMpDyn)
		fixed := s.SimulateLayer(l, 256, WMp)
		if dyn.TotalSec() > fixed.TotalSec()*1.05 {
			t.Fatalf("%s: dynamic (%v) much worse than fixed (%v)", l.Name, dyn.TotalSec(), fixed.TotalSec())
		}
	}
	// Early layer must pick Ng=1 (Section VII-B).
	r := s.SimulateLayer(earlyL(), 256, WMpDyn)
	if r.Ng != 1 {
		t.Fatalf("early layer dynamic Ng = %d, want 1", r.Ng)
	}
	// Late layer should pick a multi-group configuration.
	r = s.SimulateLayer(lateL(), 256, WMpFull)
	if r.Ng < 4 {
		t.Fatalf("late layer dynamic Ng = %d, want >= 4", r.Ng)
	}
}

// TestFullSpeedupInPaperBallpark checks the headline Fig. 15/17 shape:
// w_mp++ beats w_dp on the five-layer average by a factor comfortably
// above 1.5 (paper: 2.74×) at p=256, B=256.
func TestFullSpeedupBallpark(t *testing.T) {
	s := DefaultSystem()
	var tDP, tFull float64
	for _, l := range model.FiveLayers() {
		tDP += s.SimulateLayer(l, 256, WDp).TotalSec()
		tFull += s.SimulateLayer(l, 256, WMpFull).TotalSec()
	}
	speedup := tDP / tFull
	if speedup < 1.5 {
		t.Fatalf("w_mp++ speedup %v over w_dp, want > 1.5 (paper: 2.74)", speedup)
	}
	if speedup > 6 {
		t.Fatalf("w_mp++ speedup %v suspiciously high (paper: 2.74)", speedup)
	}
}

// TestLateLayerSpeedupLargerThanMid mirrors the paper's 2.24× (mid) vs
// 4.54× (late) ordering for w_mp+.
func TestLateLayerSpeedupLargerThanMid(t *testing.T) {
	s := DefaultSystem()
	mid := s.SimulateLayer(midL(), 256, WDp).TotalSec() /
		s.SimulateLayer(midL(), 256, WMpPred).TotalSec()
	late := s.SimulateLayer(lateL(), 256, WDp).TotalSec() /
		s.SimulateLayer(lateL(), 256, WMpPred).TotalSec()
	if late <= mid {
		t.Fatalf("late speedup %v should exceed mid %v", late, mid)
	}
}

// Test5x5MPTStillWins covers Fig. 16: MPT with dynamic clustering and
// prediction must beat w_dp for 5×5 weights as well, with the late layers
// gaining the most. The paper additionally reports the *average* 5×5
// advantage slightly exceeding 3×3 (3.03× vs 2.74×); in this model's cost
// balance both kernel sizes are compute-bound on the systolic array and
// the 5×5 average lands somewhat below 3×3 instead — the absolute
// weight-collective saving is still ~3× larger for 5×5, matching the
// mechanism the paper cites. EXPERIMENTS.md records the deviation.
func Test5x5MPTStillWins(t *testing.T) {
	s := DefaultSystem()
	ratioFor := func(l model.Layer) float64 {
		return s.SimulateLayer(l, 256, WDp).TotalSec() /
			s.SimulateLayer(l, 256, WMpFull).TotalSec()
	}
	layers5 := model.FiveLayers5x5()
	var mean float64
	for _, l := range layers5 {
		mean += ratioFor(l)
	}
	mean /= float64(len(layers5))
	if mean < 1.3 {
		t.Fatalf("5x5 mean MPT speedup %v, want > 1.3", mean)
	}
	late := ratioFor(layers5[4])
	if late < 3 {
		t.Fatalf("5x5 late-layer speedup %v, want > 3", late)
	}
	// The 5×5 weight-collective saving must exceed the 3×3 saving in
	// absolute terms (the paper's stated mechanism).
	save := func(layers []model.Layer) float64 {
		l := layers[4]
		dp := s.SimulateLayer(l, 256, WDp)
		mp := s.SimulateLayer(l, 256, WMpFull)
		return dp.BackwardSec - mp.BackwardSec
	}
	if save(model.FiveLayers5x5()) <= save(model.FiveLayers()) {
		t.Fatal("5x5 should save more absolute backward time than 3x3")
	}
}

func TestSimulateNetworkAggregates(t *testing.T) {
	s := DefaultSystem()
	net := model.WRN40x10()
	r := s.SimulateNetwork(net, WMpFull)
	if len(r.Layers) != len(net.Layers) {
		t.Fatal("per-layer results missing")
	}
	if r.IterationSec <= 0 || r.ImagesPerSec <= 0 || r.PowerW <= 0 {
		t.Fatalf("bad aggregates: %+v", r)
	}
	// Iteration must be at least the sum of one pass over unique layers.
	var minimum float64
	for _, lr := range r.Layers {
		minimum += lr.TotalSec()
	}
	if r.IterationSec < minimum {
		t.Fatal("Repeat not applied")
	}
}

// TestScalabilityVs1NDP: 256 workers must be dramatically faster than 1,
// and w_mp++ must scale better than w_dp (Fig. 17: 71× vs 191×).
func TestScalabilityVs1NDP(t *testing.T) {
	net := model.FractalNet44()
	base := SingleWorkerBaseline(net)
	s := DefaultSystem()
	dp := Speedup(s.SimulateNetwork(net, WDp), base)
	full := Speedup(s.SimulateNetwork(net, WMpFull), base)
	if dp < 10 {
		t.Fatalf("w_dp speedup %v over 1 NDP too small", dp)
	}
	if full <= dp {
		t.Fatalf("w_mp++ speedup %v should exceed w_dp %v", full, dp)
	}
	if full/dp < 1.3 {
		t.Fatalf("w_mp++/w_dp ratio %v, want > 1.3 (paper: 2.7)", full/dp)
	}
}

// TestEnergyMPTReducesDRAM: MPT partitions weights, so per-iteration DRAM
// energy must not exceed w_dp's (Fig. 15 energy discussion).
func TestEnergyMPTReducesDRAM(t *testing.T) {
	s := DefaultSystem()
	l := lateL()
	dp := s.SimulateLayer(l, 256, WDp)
	mp := s.SimulateLayer(l, 256, WMp)
	if mp.Energy.DRAMJ > dp.Energy.DRAMJ {
		t.Fatalf("MPT DRAM energy %v exceeds w_dp %v", mp.Energy.DRAMJ, dp.Energy.DRAMJ)
	}
}

func TestCollectiveSecondsEdgeCases(t *testing.T) {
	s := DefaultSystem()
	if s.collectiveSeconds(1024, 1, 1e9) != 0 {
		t.Fatal("1-worker collective should be free")
	}
	if s.collectiveSeconds(0, 8, 1e9) != 0 {
		t.Fatal("empty collective should be free")
	}
	// Time grows with message size.
	if s.collectiveSeconds(1<<20, 16, 60e9) <= s.collectiveSeconds(1<<10, 16, 60e9) {
		t.Fatal("collective time not monotone in size")
	}
}

func TestMeanTileHops(t *testing.T) {
	if meanTileHops(1) != 0 || meanTileHops(4) != 1 || meanTileHops(16) != 1.6 {
		t.Fatal("hop model wrong")
	}
}

func TestBandwidthSplit(t *testing.T) {
	s := DefaultSystem()
	if s.ringBW(WDp) != s.LinkBW {
		t.Fatal("data-parallel should use all links for rings")
	}
	if s.ringBW(WMp) != s.LinkBW/2 || s.tileBW(WMp) != s.LinkBW/2 {
		t.Fatal("MPT should split bandwidth in half")
	}
	if s.tileBW(DDp) != 0 {
		t.Fatal("direct DP has no tile fabric")
	}
}

// TestBreakdownConsistency: the reported pass duration must equal the
// overlap rule applied to the exported breakdown.
func TestBreakdownConsistency(t *testing.T) {
	s := DefaultSystem()
	for _, l := range model.FiveLayers() {
		for _, c := range AllConfigs() {
			r := s.SimulateLayer(l, 256, c)
			check := func(sec float64, b Breakdown, pass string) {
				m := b.SystolicSec
				for _, v := range []float64{b.VectorSec, b.DRAMSec, b.TileCommSec} {
					if v > m {
						m = v
					}
				}
				want := m + b.CollSec
				if diff := sec - want; diff > 1e-12 || diff < -1e-12 {
					t.Fatalf("%s/%v %s: %v != breakdown %v", l.Name, c, pass, sec, want)
				}
			}
			check(r.ForwardSec, r.Forward, "fwd")
			check(r.BackwardSec, r.Backward, "bwd")
		}
	}
}

// TestBreakdownBindings: the resource that binds each regime must match
// the paper's explanation — early-layer MPT is tile-comm-bound; late-layer
// w_dp forward is DRAM-bound (Winograd weight streaming); d_dp forward is
// systolic-bound.
func TestBreakdownBindings(t *testing.T) {
	s := DefaultSystem()
	early := s.SimulateLayer(model.FiveLayers()[0], 256, WMp)
	if got := early.Forward.Binding(); got != "tile-comm" {
		t.Fatalf("early w_mp forward bound by %q, want tile-comm", got)
	}
	// Late-layer w_dp forward is local-resource bound (systolic passes
	// with tiny per-worker row counts, plus streaming the whole 75 MB |W|
	// from DRAM) — never communication-bound.
	late := s.SimulateLayer(model.FiveLayers()[4], 256, WDp)
	if got := late.Forward.Binding(); got != "dram" && got != "systolic" {
		t.Fatalf("late w_dp forward bound by %q, want dram or systolic", got)
	}
	if late.Forward.DRAMSec < 0.3*late.ForwardSec {
		t.Fatalf("late w_dp forward DRAM share %v too small — weight streaming missing",
			late.Forward.DRAMSec/late.ForwardSec)
	}
	direct := s.SimulateLayer(model.FiveLayers()[0], 256, DDp)
	if got := direct.Forward.Binding(); got != "systolic" {
		t.Fatalf("early d_dp forward bound by %q, want systolic", got)
	}
	// Late w_dp backward must be dominated by the serialized collective or
	// DRAM, never the tile fabric (there is none at Ng=1).
	if late.Backward.TileCommSec != 0 {
		t.Fatal("Ng=1 must not use the tile fabric")
	}
}

// TestForwardHasNoCollective: weight collectives happen in updateGrad only.
func TestForwardHasNoCollective(t *testing.T) {
	s := DefaultSystem()
	for _, c := range AllConfigs() {
		r := s.SimulateLayer(model.FiveLayers()[2], 256, c)
		if r.Forward.CollSec != 0 {
			t.Fatalf("%v: forward pass charged collective time", c)
		}
		if r.BackwardSec <= 0 {
			t.Fatalf("%v: empty backward", c)
		}
	}
}
