package sim

import (
	"reflect"
	"testing"

	"mptwino/internal/model"
)

// TestSimulateNetworkDeterministicAcrossWorkers asserts the parallel layer
// fan-out produces byte-identical NetworkResults at every worker count —
// the determinism contract of the host-side parallel engine. Results are
// compared with reflect.DeepEqual over the full struct (floats included),
// so any reordering of a floating-point reduction would fail.
func TestSimulateNetworkDeterministicAcrossWorkers(t *testing.T) {
	net := model.FractalNet44()
	for _, c := range AllConfigs() {
		var ref NetworkResult
		for i, workers := range []int{1, 2, 8} {
			s := DefaultSystem()
			s.Parallel = workers
			r := s.SimulateNetwork(net, c)
			if i == 0 {
				ref = r
				continue
			}
			if !reflect.DeepEqual(ref, r) {
				t.Errorf("config %s: workers=%d result differs from workers=1", c, workers)
			}
		}
	}
}

// TestSweepMatchesSimulateNetwork asserts the flat (layer, config) cell
// fan-out of Sweep is bit-identical to per-config SimulateNetwork calls,
// across worker counts.
func TestSweepMatchesSimulateNetwork(t *testing.T) {
	net := model.ResNet34()
	cfgs := AllConfigs()

	seq := DefaultSystem()
	seq.Parallel = 1
	want := make([]NetworkResult, len(cfgs))
	for i, c := range cfgs {
		want[i] = seq.SimulateNetwork(net, c)
	}

	for _, workers := range []int{1, 2, 8} {
		s := DefaultSystem()
		s.Parallel = workers
		got := s.Sweep(net, cfgs)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: Sweep returned %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Errorf("workers=%d: Sweep[%d] (%s) differs from SimulateNetwork", workers, i, cfgs[i])
			}
		}
	}
}

// TestDynamicClusteringChoiceDeterministic asserts the parallel menu
// evaluation picks the same (Ng, Nc) as the sequential tie-break rule for
// every layer and worker count.
func TestDynamicClusteringChoiceDeterministic(t *testing.T) {
	for _, l := range model.FiveLayers() {
		var refNg, refNc int
		for i, workers := range []int{1, 2, 8} {
			s := DefaultSystem()
			s.Parallel = workers
			r := s.SimulateLayer(l, 256, WMpDyn)
			if i == 0 {
				refNg, refNc = r.Ng, r.Nc
				continue
			}
			if r.Ng != refNg || r.Nc != refNc {
				t.Errorf("layer %s workers=%d chose (%d,%d), workers=1 chose (%d,%d)",
					l.Name, workers, r.Ng, r.Nc, refNg, refNc)
			}
		}
	}
}
