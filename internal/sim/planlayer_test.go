package sim

import (
	"math"
	"testing"

	"mptwino/internal/comm"
	"mptwino/internal/model"
)

// TestSimulateLayerStrategyMatchesFixedGrid pins the oracle entry point
// to the existing fixed-grid path: feeding it the (16,16) menu strategy
// must reproduce SimulateLayer(WMp) bit-exactly.
func TestSimulateLayerStrategyMatchesFixedGrid(t *testing.T) {
	s := DefaultSystem()
	net := model.VGG16()
	for _, l := range net.Layers {
		st, _ := comm.StrategyFor(comm.ClusterConfig{Ng: 16, Nc: 16}, l.P.K, false, s.Reductions)
		got := s.SimulateLayerStrategy(l, net.Batch, WMp, st)
		want := s.SimulateLayer(l, net.Batch, WMp)
		if got.TotalSec() != want.TotalSec() || got.NetBytes != want.NetBytes ||
			got.DRAMBytes != want.DRAMBytes || got.BoundBytes != want.BoundBytes {
			t.Fatalf("%s: strategy oracle %+v != fixed grid %+v", l.Name, got, want)
		}
	}
}

// TestSimulateLayerStrategyDirect checks the non-Winograd branch routes
// to the d_dp phase model.
func TestSimulateLayerStrategyDirect(t *testing.T) {
	s := DefaultSystem()
	net := model.VGG16()
	l := net.Layers[0]
	st := comm.Strategy{Ng: 1, Nc: s.Workers}
	got := s.SimulateLayerStrategy(l, net.Batch, WMpFull, st)
	want := s.SimulateLayer(l, net.Batch, DDp)
	if got.TotalSec() != want.TotalSec() {
		t.Fatalf("direct strategy %g != DDp %g", got.TotalSec(), want.TotalSec())
	}
	if got.Config != DDp {
		t.Fatalf("direct strategy kept config %v", got.Config)
	}
}

// TestExtendedStrategySane checks structural properties of the extended
// phase model: finite positive time, partial-sum traffic on the tile
// fabric, and a weight collective that shrinks with the cell size.
func TestExtendedStrategySane(t *testing.T) {
	s := DefaultSystem()
	net := model.VGG16()
	l := net.Layers[7]

	base := comm.Strategy{Ng: 4, Nc: 64, Nf: 1, Ni: 1, Winograd: true}
	ext := comm.Strategy{Ng: 4, Nc: 16, Nf: 2, Ni: 2, Winograd: true}
	rb := s.SimulateLayerStrategy(l, net.Batch, WMp, base)
	re := s.SimulateLayerStrategy(l, net.Batch, WMp, ext)

	for _, r := range []LayerResult{rb, re} {
		if !(r.TotalSec() > 0) || math.IsInf(r.TotalSec(), 0) || math.IsNaN(r.TotalSec()) {
			t.Fatalf("%s: bad total %g", r.Name, r.TotalSec())
		}
	}
	if re.Nf != 2 || re.Ni != 2 {
		t.Fatalf("shard axes not recorded: %+v", re)
	}
	if re.CollBytes >= rb.CollBytes {
		t.Fatalf("cell sharding must shrink the collective: ext=%d base=%d", re.CollBytes, rb.CollBytes)
	}
	if re.TileBytes <= 0 {
		t.Fatalf("extended strategy moved no tile bytes")
	}
}
