package sim

import (
	"fmt"

	"mptwino/internal/comm"
)

// Heterogeneous-fleet cost model. The paper's timing model assumes 256
// identical modules; this file stretches the per-phase durations when the
// System carries per-module capability profiles (ComputeSpeeds /
// LinkSpeeds, from fault.Plan.ModuleSpeeds):
//
//   - The worker grid maps clusters onto modules in slot order: cluster c
//     owns grid slots [c·Ng, (c+1)·Ng), and a cluster runs at its slowest
//     member's speed (the intra-cluster scatter/compute/gather barrier).
//   - Each cluster's share of the batch takes share/speed relative time;
//     the synchronous step waits for the worst cluster. Shares are treated
//     as continuous here (B ≫ Nc washes out sample granularity; the mpt
//     engine quantizes real sample counts by largest remainder).
//   - The weight collective rings pass through every active module, so
//     they run at the slowest link speed in the fleet.
//
// Everything is a pure function of (System, strategy, batch): no RNG, no
// iteration-order dependence, bit-identical at any host worker count.

// fleetFactors are the multiplicative stretches one strategy suffers on
// the profiled fleet, plus the realizable integer sharding they imply.
type fleetFactors struct {
	compute float64 // systolic + vector (slowest cluster's share/speed)
	dram    float64 // local streaming scales with the share alone
	tile    float64 // intra-cluster transfer at the cluster's link speed
	coll    float64 // ring collective at the fleet's slowest link
	shares  []int   // integer per-cluster sample counts (telemetry/mpt)
}

// fleetActive reports whether the System carries capability profiles.
func (s System) fleetActive() bool {
	return len(s.ComputeSpeeds) > 0 || len(s.LinkSpeeds) > 0
}

// activeModules returns the physical module ids behind the first n grid
// slots (identity when no survivor compaction installed a mapping).
func (s System) activeModules(n int) []int {
	if s.ActiveModules != nil {
		if n > len(s.ActiveModules) {
			n = len(s.ActiveModules)
		}
		return s.ActiveModules[:n]
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// fleetFactors computes the stretches for one (Ng, Nc) strategy. With
// all-1.0 speed slices every factor is exactly 1.0, so multiplying the
// phase durations reproduces the homogeneous results bit-for-bit.
func (s System) fleetFactors(st comm.Strategy, batch int) fleetFactors {
	modules := s.activeModules(st.Workers())
	cs := comm.ClusterSpeeds(s.ComputeSpeeds, modules, st.Cell(), st.Nc)
	ls := comm.ClusterSpeeds(s.LinkSpeeds, modules, st.Cell(), st.Nc)

	// Effective cluster speed: a cluster is gated by whichever of compute
	// and intra-cluster bandwidth is more derated.
	eff := make([]float64, st.Nc)
	sumEff := 0.0
	for c := range eff {
		eff[c] = cs[c]
		if ls[c] < eff[c] {
			eff[c] = ls[c]
		}
		sumEff += eff[c]
	}

	ff := fleetFactors{compute: 1, dram: 1, tile: 1, coll: 1}
	for c := 0; c < st.Nc; c++ {
		r := 1.0 // equal split: every cluster holds batch/Nc
		if s.LoadAware && sumEff > 0 {
			r = eff[c] * float64(st.Nc) / sumEff
		}
		if v := r / cs[c]; v > ff.compute {
			ff.compute = v
		}
		if r > ff.dram {
			ff.dram = r
		}
		if v := r / ls[c]; v > ff.tile {
			ff.tile = v
		}
	}
	minLink := 1.0
	for _, m := range modules {
		if m >= 0 && m < len(s.LinkSpeeds) && s.LinkSpeeds[m] < minLink {
			minLink = s.LinkSpeeds[m]
		}
	}
	if minLink > 0 {
		ff.coll = 1 / minLink
	}

	if s.LoadAware {
		ff.shares = comm.LoadAwareShards(batch, eff)
	} else {
		ff.shares = comm.EqualShards(batch, st.Nc)
	}
	return ff
}

// apply stretches one phase's durations in place. Byte counts are left
// alone: a degraded fleet moves the same data, only slower.
func (ff fleetFactors) apply(p *phase) {
	p.systolicSec *= ff.compute
	p.vectorSec *= ff.compute
	p.dramSec *= ff.dram
	p.tileCommSec *= ff.tile
	p.collSec *= ff.coll
}

// recordFleetSpeeds mirrors the per-module effective speeds into gauges as
// permille integers, named fleet.effective_speed.m<id> (compute) and
// fleet.link_speed.m<id> (SerDes). Only derated modules get a gauge, so
// the registry stays small on a 256-module fleet with one straggler. Set
// is idempotent, so repeated network assemblies stay byte-identical.
func (s System) recordFleetSpeeds() {
	if s.Metrics == nil {
		return
	}
	for m, v := range s.ComputeSpeeds {
		if v != 1 {
			s.Metrics.Gauge(fmt.Sprintf("fleet.effective_speed.m%03d", m)).Set(int64(v * 1000))
		}
	}
	for m, v := range s.LinkSpeeds {
		if v != 1 {
			s.Metrics.Gauge(fmt.Sprintf("fleet.link_speed.m%03d", m)).Set(int64(v * 1000))
		}
	}
}
