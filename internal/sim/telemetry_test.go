package sim

import (
	"bytes"
	"reflect"
	"testing"

	"mptwino/internal/model"
	"mptwino/internal/parallel"
	"mptwino/internal/telemetry"
)

// TestTelemetryDeterministicAcrossWorkers runs the full telemetry surface
// of the simulator — a Table IV sweep plus a fault-recovery run, counters
// and tracer attached — at host worker counts {1, 2, 8} and asserts the
// metrics snapshot and the exported Chrome trace bytes are identical.
// Counters are atomic sums of schedule-invariant quantities and spans are
// emitted only from the index-ordered assembly fold, so any divergence
// means someone recorded schedule-dependent state.
func TestTelemetryDeterministicAcrossWorkers(t *testing.T) {
	net := model.VGG16()
	cfgs := AllConfigs()

	run := func(workers int) (map[string]int64, []byte) {
		t.Helper()
		reg := telemetry.NewRegistry()
		tr := telemetry.NewTracer()
		parallel.Attach(reg)
		defer parallel.Attach(nil)

		s := DefaultSystem()
		s.Parallel = workers
		s.Metrics = reg
		s.Trace = tr
		s.Sweep(net, cfgs)
		if _, err := s.SimulateNetworkWithFailure(net, WMpFull, []int{3, 17}); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot(), buf.Bytes()
	}

	refSnap, refTrace := run(1)

	// Sanity: the sweep visits every (layer, config) cell once and the
	// recovery run adds a healthy and a degraded pass.
	wantLayers := int64(len(net.Layers) * (len(cfgs) + 2))
	if got := refSnap["sim.layers"]; got != wantLayers {
		t.Errorf("sim.layers = %d, want %d", got, wantLayers)
	}
	if got := refSnap["sim.reconfigs"]; got != 1 {
		t.Errorf("sim.reconfigs = %d, want 1", got)
	}
	if len(refTrace) == 0 {
		t.Fatal("empty trace export")
	}

	for _, workers := range []int{2, 8} {
		snap, trace := run(workers)
		if !reflect.DeepEqual(refSnap, snap) {
			t.Errorf("workers=%d: metrics snapshot differs from workers=1:\nref: %v\ngot: %v",
				workers, refSnap, snap)
		}
		if !bytes.Equal(refTrace, trace) {
			t.Errorf("workers=%d: trace bytes differ from workers=1 (%d vs %d bytes)",
				workers, len(refTrace), len(trace))
		}
	}
}
