package sim

import (
	"testing"

	"mptwino/internal/comm"
	"mptwino/internal/model"
)

func TestSimulateNetworkWithFailure(t *testing.T) {
	s := DefaultSystem()
	net := model.WRN40x10()

	res, err := s.SimulateNetworkWithFailure(net, WMpFull, []int{17})
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != 255 {
		t.Fatalf("survivors = %d, want 255", res.Survivors)
	}
	if res.Degraded.IterationSec <= 0 {
		t.Fatal("degraded simulation produced no iteration time")
	}
	if res.Slowdown() < 1 {
		t.Fatalf("degraded run faster than healthy (slowdown %v)", res.Slowdown())
	}
	// One module of 256 should cost well under 2×.
	if res.Slowdown() > 2 {
		t.Fatalf("single-module failure slowdown %v implausibly large", res.Slowdown())
	}
	if res.ReconfigSec <= 0 {
		t.Fatal("reconfiguration cost not reported")
	}
	// The degraded grid must fit in the survivor pool.
	for _, lr := range res.Degraded.Layers {
		if lr.Ng*lr.Nc > res.Survivors {
			t.Fatalf("layer %s wired as (%d,%d) with only %d survivors", lr.Name, lr.Ng, lr.Nc, res.Survivors)
		}
	}

	// Fixed-grid MPT falls back to the survivor menu's leading entry.
	fixed, err := s.SimulateNetworkWithFailure(net, WMp, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range fixed.Degraded.Layers {
		if lr.Ng != 16 || lr.Nc != 15 {
			t.Fatalf("fixed WMp at 255 survivors wired (%d,%d), want (16,15)", lr.Ng, lr.Nc)
		}
	}

	// Duplicated failure ids collapse.
	dup, err := s.SimulateNetworkWithFailure(net, WMpFull, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if dup.Survivors != 255 {
		t.Fatalf("duplicate failures double-counted: survivors = %d", dup.Survivors)
	}

	// Validation.
	if _, err := s.SimulateNetworkWithFailure(net, WMpFull, []int{256}); err == nil {
		t.Fatal("out-of-range module accepted")
	}
	all := make([]int, s.Workers)
	for i := range all {
		all[i] = i
	}
	if _, err := s.SimulateNetworkWithFailure(net, WMpFull, all); err == nil {
		t.Fatal("zero survivors accepted")
	}
}

func TestClusterMenuOverride(t *testing.T) {
	s := DefaultSystem()
	s.Workers = 255
	if got := len(s.clusterMenu()); got != 1 {
		// DefaultConfigs(255) = {(1,255)} only.
		t.Fatalf("default menu for 255 workers has %d entries, want 1", got)
	}
	s.Menu = []comm.ClusterConfig{{Ng: 16, Nc: 15}, {Ng: 4, Nc: 63}}
	if got := len(s.clusterMenu()); got != 2 {
		t.Fatalf("override menu has %d entries, want 2", got)
	}
}
