package sim

import (
	"fmt"

	"mptwino/internal/model"
	"mptwino/internal/ndp"
	"mptwino/internal/telemetry"
)

// Telemetry emission for the system simulator. Counters are bumped from
// the parallel sweep's goroutines (atomic sums — order-independent, so
// identical at any worker count); trace spans are emitted only from
// assembleNetwork's index-ordered fold, the one place per-layer results
// pass through sequentially. Timestamps are simulated cycles at
// NDP.ClockHz, laid out as consecutive fwd/bwd spans per layer — one
// iteration per layer, with the Repeat multiplier reported in span args
// rather than unrolled (a 40-deep WRN stays readable on the timeline).
//
// Span taxonomy (consumed by internal/traceview — DESIGN.md §15): every
// span carries a "tv" category arg and, for non-root spans, a "tv_parent"
// arg naming its causal parent in the same (pid, tid) lane. Layer-phase
// spans ("<layer> fwd"/"<layer> bwd", tv="phase") are the roots; under
// each, the overlap rule of phase.seconds() is reified as child spans:
//
//	"<layer> <pass> compute"  tv="compute"    [t, t+c)      c = PhaseSeconds(systolic, vector, dram)
//	"<layer> <pass> tile"     tv="comm.tile"  [t, t+tile)   runs concurrently with compute
//	"<layer> <pass> coll"     tv="comm.coll"  [t+max(c,tile), +coll)  serialized after both
//
// The parent's duration is max(c, tile)+coll in integer cycles, derived
// from the children so they tile it exactly (the float sum ForwardSec
// rounds independently and could drift by a cycle). Comm hidden behind
// compute is therefore a pure interval intersection on the trace, which
// is what lets traceview prove (or gate) overlap claims machine-checkably.

// countLayer mirrors one simulated layer's traffic into the registry.
func (s System) countLayer(lr LayerResult) {
	if s.Metrics == nil {
		return
	}
	s.Metrics.Counter("sim.layers").Inc()
	s.Metrics.Counter("sim.tile_bytes").Add(lr.TileBytes)
	s.Metrics.Counter("sim.coll_bytes").Add(lr.CollBytes)
	s.Metrics.Counter("sim.dram_bytes").Add(lr.DRAMBytes)
	// Worst residual sharding imbalance across layers; Max folds
	// commutatively, so the gauge is schedule-independent.
	s.Metrics.Gauge("sim.imbalance_permille").Max(lr.ShareImbalance)
}

// phaseCycles converts one pass's breakdown to integer-cycle child
// durations: the double-buffered compute block, the concurrent tile
// transfer, and the serialized collective.
func (s System) phaseCycles(b Breakdown) (compute, tile, coll int64) {
	compute = int64(ndp.PhaseSeconds(b.SystolicSec, b.VectorSec, b.DRAMSec) * s.NDP.ClockHz)
	tile = int64(b.TileCommSec * s.NDP.ClockHz)
	coll = int64(b.CollSec * s.NDP.ClockHz)
	return compute, tile, coll
}

// tracePhase emits one layer pass: the root phase span plus its
// compute/tile/coll children, returning the phase's wall cycles.
func (s System) tracePhase(tid int, layer, pass string, t int64, b Breakdown, args map[string]any) int64 {
	tr := s.Trace
	compute, tile, coll := s.phaseCycles(b)
	wall := compute
	if tile > wall {
		wall = tile
	}
	wall += coll

	root := layer + " " + pass
	args["tv"] = "phase"
	args["layer"] = layer
	tr.Span(telemetry.PIDSim, tid, root, "sim.phase", t, wall, args)
	if compute > 0 {
		tr.Span(telemetry.PIDSim, tid, root+" compute", "sim.exec", t, compute, map[string]any{
			"tv": "compute", "tv_parent": root, "layer": layer,
		})
	}
	if tile > 0 {
		tr.Span(telemetry.PIDSim, tid, root+" tile", "sim.exec", t, tile, map[string]any{
			"tv": "comm.tile", "tv_parent": root, "layer": layer,
		})
	}
	if coll > 0 {
		collStart := compute
		if tile > collStart {
			collStart = tile
		}
		tr.Span(telemetry.PIDSim, tid, root+" coll", "sim.exec", t+collStart, coll, map[string]any{
			"tv": "comm.coll", "tv_parent": root, "layer": layer,
		})
	}
	return wall
}

// traceNetwork emits the per-layer phase spans of one assembled network
// result into the telemetry.PIDSim lane, one thread row per system config.
func (s System) traceNetwork(net model.Network, c SystemConfig, res NetworkResult) {
	tr := s.Trace
	if !tr.Enabled() {
		return
	}
	tid := int(c)
	tr.NameProcess(telemetry.PIDSim, "sim")
	tr.NameThread(telemetry.PIDSim, tid, "config "+c.String())
	var t int64
	for i, lr := range res.Layers {
		rep := net.Layers[i].EffectiveRepeat()
		if len(lr.Menu) > 0 {
			args := make(map[string]any, len(lr.Menu)+3)
			for _, cell := range lr.Menu {
				args[fmt.Sprintf("%dx%d_sec", cell.Ng, cell.Nc)] = cell.TotalSec
			}
			args["tv"] = "overhead"
			args["tv_parent"] = lr.Name + " fwd"
			args["layer"] = lr.Name
			tr.Instant(telemetry.PIDSim, tid, lr.Name+" menu", "sim.menu", t, args)
		}
		t += s.tracePhase(tid, lr.Name, "fwd", t, lr.Forward, map[string]any{
			"config": c.String(), "ng": lr.Ng, "nc": lr.Nc, "repeat": rep,
			"binding": lr.Forward.Binding(),
		})
		t += s.tracePhase(tid, lr.Name, "bwd", t, lr.Backward, map[string]any{
			"config": c.String(), "ng": lr.Ng, "nc": lr.Nc, "repeat": rep,
			"binding":    lr.Backward.Binding(),
			"tile_bytes": lr.TileBytes, "coll_bytes": lr.CollBytes,
		})
	}
}
