package sim

import (
	"fmt"

	"mptwino/internal/model"
	"mptwino/internal/telemetry"
)

// Telemetry emission for the system simulator. Counters are bumped from
// the parallel sweep's goroutines (atomic sums — order-independent, so
// identical at any worker count); trace spans are emitted only from
// assembleNetwork's index-ordered fold, the one place per-layer results
// pass through sequentially. Timestamps are simulated cycles at
// NDP.ClockHz, laid out as consecutive fwd/bwd spans per layer — one
// iteration per layer, with the Repeat multiplier reported in span args
// rather than unrolled (a 40-deep WRN stays readable on the timeline).

// countLayer mirrors one simulated layer's traffic into the registry.
func (s System) countLayer(lr LayerResult) {
	if s.Metrics == nil {
		return
	}
	s.Metrics.Counter("sim.layers").Inc()
	s.Metrics.Counter("sim.tile_bytes").Add(lr.TileBytes)
	s.Metrics.Counter("sim.coll_bytes").Add(lr.CollBytes)
	s.Metrics.Counter("sim.dram_bytes").Add(lr.DRAMBytes)
	// Worst residual sharding imbalance across layers; Max folds
	// commutatively, so the gauge is schedule-independent.
	s.Metrics.Gauge("sim.imbalance_permille").Max(lr.ShareImbalance)
}

// traceNetwork emits the per-layer phase spans of one assembled network
// result into the telemetry.PIDSim lane, one thread row per system config.
func (s System) traceNetwork(net model.Network, c SystemConfig, res NetworkResult) {
	tr := s.Trace
	if !tr.Enabled() {
		return
	}
	tid := int(c)
	tr.NameProcess(telemetry.PIDSim, "sim")
	tr.NameThread(telemetry.PIDSim, tid, "config "+c.String())
	var t int64
	for i, lr := range res.Layers {
		rep := net.Layers[i].EffectiveRepeat()
		fwd := int64(lr.ForwardSec * s.NDP.ClockHz)
		bwd := int64(lr.BackwardSec * s.NDP.ClockHz)
		if len(lr.Menu) > 0 {
			args := make(map[string]any, len(lr.Menu))
			for _, cell := range lr.Menu {
				args[fmt.Sprintf("%dx%d_sec", cell.Ng, cell.Nc)] = cell.TotalSec
			}
			tr.Instant(telemetry.PIDSim, tid, lr.Name+" menu", "sim.menu", t, args)
		}
		tr.Span(telemetry.PIDSim, tid, lr.Name+" fwd", "sim.phase", t, fwd, map[string]any{
			"config": c.String(), "ng": lr.Ng, "nc": lr.Nc, "repeat": rep,
			"binding": lr.Forward.Binding(),
		})
		t += fwd
		tr.Span(telemetry.PIDSim, tid, lr.Name+" bwd", "sim.phase", t, bwd, map[string]any{
			"config": c.String(), "ng": lr.Ng, "nc": lr.Nc, "repeat": rep,
			"binding":    lr.Backward.Binding(),
			"tile_bytes": lr.TileBytes, "coll_bytes": lr.CollBytes,
		})
		t += bwd
	}
}
