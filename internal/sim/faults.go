package sim

import (
	"fmt"
	"sort"

	"mptwino/internal/comm"
	"mptwino/internal/model"
	"mptwino/internal/telemetry"
	"mptwino/internal/winograd"
)

// RecoveryResult reports a fault-recovery simulation: the same network and
// system config run twice — once fully healthy and once after permanent
// module failures — with the dynamic-clustering optimizer re-solving the
// (Ng, Nc) grid over the survivor menu, plus the one-time cost of
// switching wirings.
type RecoveryResult struct {
	Healthy  NetworkResult // all provisioned workers alive
	Degraded NetworkResult // re-solved at the survivor count

	Workers   int   // provisioned workers
	Survivors int   // workers remaining after failures
	Failed    []int // failed module IDs (deduplicated, ascending)

	// ReconfigSec is the one-time recovery cost: reprogramming the
	// circuit-switched memory-centric network plus streaming every
	// surviving worker's new Winograd-domain weight shard from the host
	// over one full-width host link.
	ReconfigSec float64
}

// Slowdown returns the degraded iteration time relative to healthy
// (>= 1 in practice; 0 when the healthy run is degenerate).
func (r RecoveryResult) Slowdown() float64 {
	if r.Healthy.IterationSec == 0 {
		return 0
	}
	return r.Degraded.IterationSec / r.Healthy.IterationSec
}

const (
	// hostLinkBW is one full-width host link, one direction (Table III:
	// 16 lanes × 15 Gbps = 30 GB/s) — the path weight shards re-load over
	// during reconfiguration.
	hostLinkBW = 30e9

	// rewireSec is the circuit-switch reprogramming latency charged once
	// per recovery, covering the reconfigurable switch's route-table
	// rewrite and link retraining.
	rewireSec = 10e-6
)

// SimulateNetworkWithFailure simulates graceful degradation: workers in
// failed are removed, the clustering menu is re-solved over the survivor
// count (comm.SurvivorConfigs — e.g. 255 survivors offer (16,15), (4,63)
// and (1,255)), and the network is re-simulated at the degraded grid.
// Fixed-grid MPT configs fall back to the survivor menu's leading entry.
func (s System) SimulateNetworkWithFailure(net model.Network, c SystemConfig, failed []int) (RecoveryResult, error) {
	seen := make(map[int]bool)
	var uniq []int
	for _, f := range failed {
		if f < 0 || f >= s.Workers {
			return RecoveryResult{}, fmt.Errorf("sim: failed module %d out of range [0,%d)", f, s.Workers)
		}
		if !seen[f] {
			seen[f] = true
			uniq = append(uniq, f)
		}
	}
	sort.Ints(uniq)
	survivors := s.Workers - len(uniq)
	if survivors < 1 {
		return RecoveryResult{}, fmt.Errorf("sim: no surviving workers (%d failures of %d provisioned)", len(uniq), s.Workers)
	}

	res := RecoveryResult{Workers: s.Workers, Survivors: survivors, Failed: uniq}
	res.Healthy = s.SimulateNetwork(net, c)

	ds := s
	ds.Workers = survivors
	ds.Menu = comm.SurvivorConfigs(survivors)
	if s.fleetActive() {
		// Keep the capability profiles addressed to the right physical
		// modules: the survivor grid compacts over the living ids, so map
		// grid slots back through the pre-failure module list minus the
		// dead.
		ds.ActiveModules = survivorModules(s.activeModules(s.Workers), uniq)
	}
	res.Degraded = ds.SimulateNetwork(net, c)

	res.ReconfigSec = rewireSec + s.reshardSeconds(net, c, res.Degraded)
	if s.Trace.Enabled() {
		// The recovery lane: one span covering the one-time reconfiguration
		// (rewire + weight re-shard), starting where the healthy iteration
		// ended on the timeline.
		start := int64(res.Healthy.IterationSec * s.NDP.ClockHz)
		s.Trace.NameThread(telemetry.PIDSim, recoveryTID, "recovery")
		s.Trace.Span(telemetry.PIDSim, recoveryTID, "reconfigure", "sim.fault",
			start, int64(res.ReconfigSec*s.NDP.ClockHz), map[string]any{
				"survivors": survivors, "failed": len(uniq), "tv": "overhead",
			})
	}
	s.Metrics.Counter("sim.reconfigs").Inc()
	return res, nil
}

// recoveryTID is the trace thread row for fault-recovery events, clear of
// the per-config rows (tid = int(SystemConfig)).
const recoveryTID = 100

// survivorModules removes the failed module ids (sorted ascending) from
// the grid-ordered module list, preserving order — the compaction the
// degraded worker grid applies.
func survivorModules(modules, failed []int) []int {
	dead := make(map[int]bool, len(failed))
	for _, f := range failed {
		dead[f] = true
	}
	out := make([]int, 0, len(modules)-len(failed))
	for _, m := range modules {
		if !dead[m] {
			out = append(out, m)
		}
	}
	return out
}

// reshardSeconds prices the weight redistribution a wiring change implies:
// each surviving worker streams its new per-layer weight shard (the
// Winograd-domain W columns its group now owns, or the full spatial
// replica for data-parallel layers) over the host link. Workers load in
// parallel, so the time is the per-worker byte total at hostLinkBW.
func (s System) reshardSeconds(net model.Network, c SystemConfig, degraded NetworkResult) float64 {
	var perWorker int64
	for i, l := range net.Layers {
		ng := degraded.Layers[i].Ng
		var shard int64
		if c == DDp || ng <= 1 {
			shard = comm.SpatialWeightBytes(l.P)
		} else {
			tr, err := winograd.ForKernel(l.P.K, ng)
			if err != nil {
				continue
			}
			shard = comm.WinogradWeightBytes(tr, l.P) / int64(ng)
		}
		perWorker += shard * int64(l.EffectiveRepeat())
	}
	return float64(perWorker) / hostLinkBW
}
