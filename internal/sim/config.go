// Package sim is the full-system simulator: it executes one training
// iteration of a convolution layer (or a whole CNN) over p NDP workers
// under each of the paper's Table IV system configurations, producing
// execution time, a four-factor energy breakdown, and traffic counts. The
// phase durations come from the ndp timing model and a link-bandwidth ×
// hop-count network model whose parameters match the flit-level noc
// simulator (which validates them in the bench suite).
package sim

import (
	"fmt"

	"mptwino/internal/comm"
	"mptwino/internal/energy"
	"mptwino/internal/ndp"
	"mptwino/internal/parallel"
	"mptwino/internal/telemetry"
)

// SystemConfig enumerates Table IV.
type SystemConfig int

const (
	// DDp: direct convolution with data parallelism (update w).
	DDp SystemConfig = iota
	// WDp: Winograd convolution with data parallelism (update w).
	WDp
	// WMp: Winograd convolution with MPT at fixed (16,16) (update W).
	WMp
	// WMpPred: WMp + activation prediction and zero-skipping.
	WMpPred
	// WMpDyn: WMp + dynamic clustering.
	WMpDyn
	// WMpFull: WMp + activation prediction/zero-skip + dynamic clustering
	// (the paper's w_mp++).
	WMpFull
)

// String returns the paper's abbreviation.
func (c SystemConfig) String() string {
	switch c {
	case DDp:
		return "d_dp"
	case WDp:
		return "w_dp"
	case WMp:
		return "w_mp"
	case WMpPred:
		return "w_mp+"
	case WMpDyn:
		return "w_mp*"
	case WMpFull:
		return "w_mp++"
	default:
		return fmt.Sprintf("config(%d)", int(c))
	}
}

// AllConfigs returns Table IV in presentation order.
func AllConfigs() []SystemConfig {
	return []SystemConfig{DDp, WDp, WMp, WMpPred, WMpDyn, WMpFull}
}

// usesPrediction reports whether the config applies Section V reductions.
func (c SystemConfig) usesPrediction() bool { return c == WMpPred || c == WMpFull }

// usesDynamicClustering reports whether the config re-wires per layer.
func (c SystemConfig) usesDynamicClustering() bool { return c == WMpDyn || c == WMpFull }

// isMPT reports whether workers are organized in two dimensions.
func (c SystemConfig) isMPT() bool { return c >= WMp }

// System bundles the hardware parameters of one simulated machine.
type System struct {
	Workers int        // p (256 in the paper)
	NDP     ndp.Config // per-worker compute/DRAM model
	Energy  energy.Params

	// Parallel bounds the host goroutines the simulator's sweeps fan out
	// to (layers of SimulateNetwork, the dynamic-clustering menu, and the
	// (layer, config) cells of Sweep). 0 means parallel.DefaultWorkers();
	// 1 forces the sequential path. Results are bit-identical for every
	// value — all reductions fold in deterministic index order.
	Parallel int

	// Link budget per worker, one direction (Table III: four full-width
	// links = 120 GB/s per direction). MPT splits it evenly between the
	// collective rings and the tile-transfer FBFLY (Section VII-A).
	LinkBW float64

	// Reductions holds the Section V traffic-reduction fractions used by
	// prediction-enabled configs.
	Reductions comm.Reductions

	// SerDesSec is the per-hop link latency (5 ns).
	SerDesSec float64

	// Menu overrides the dynamic-clustering configuration menu. When nil,
	// the paper's divisible wirings comm.DefaultConfigs(Workers) apply;
	// the fault-recovery path installs comm.SurvivorConfigs(survivors) so
	// degraded worker counts still get (16, ⌊p/16⌋)-style grids that idle
	// the remainder.
	Menu []comm.ClusterConfig

	// TileCongestion derates the tile-transfer bandwidth for switch-level
	// effects the analytic model misses (head-of-line blocking, XY-route
	// hotspots). Calibrated against the flit-level noc simulator: the
	// measured FBFLY all-to-all time is ~2.4× the hop-weighted bandwidth
	// bound, of which 1.6× is mean hop count, leaving ~1.5× congestion
	// (see figures.NoCValidation).
	TileCongestion float64

	// ChunkBytes is the collective packet size (256 B).
	ChunkBytes int

	// ComputeSpeeds and LinkSpeeds hold per-module capability multipliers
	// in (0, 1] (index = physical module id; nil means a homogeneous fleet)
	// — typically fault.Plan.ModuleSpeeds output. Setting either opts the
	// layer cost model into the heterogeneous-fleet barrier of fleet.go:
	// the synchronous step is gated by the slowest cluster's share/speed
	// ratio. All-1.0 slices reproduce the homogeneous results bit-exactly.
	ComputeSpeeds []float64
	LinkSpeeds    []float64

	// ActiveModules maps worker-grid slots to physical module ids (nil =
	// identity). The fault-recovery path installs the compacted survivor
	// ids so the speed slices keep addressing the right modules after
	// failures renumber the grid.
	ActiveModules []int

	// LoadAware apportions the batch across clusters proportional to
	// effective cluster speed instead of equally — the heterogeneous-fleet
	// counterpart of the paper's B/Nc split (comm.LoadAwareShards).
	LoadAware bool

	// Metrics and Trace attach the deterministic telemetry layer (nil =
	// disabled, the default). Counters are atomic sums bumped from the
	// sweep's worker goroutines (order-independent, so totals are
	// bit-identical at any Parallel setting); trace spans are emitted only
	// from the index-ordered assembly fold, with timestamps in simulated
	// cycles at NDP.ClockHz. See internal/telemetry and DESIGN.md §10.
	Metrics *telemetry.Registry
	Trace   *telemetry.Tracer
}

// DefaultSystem returns the paper's 256-worker evaluation machine.
func DefaultSystem() System {
	return System{
		Workers:        256,
		NDP:            ndp.DefaultConfig(),
		Energy:         energy.DefaultParams(),
		LinkBW:         120e9,
		Reductions:     comm.PaperReductions(),
		SerDesSec:      5e-9,
		TileCongestion: 1.5,
		ChunkBytes:     256,
	}
}

// workers returns the resolved host-goroutine bound for sweep fan-out.
func (s System) workers() int {
	if s.Parallel > 0 {
		return s.Parallel
	}
	return parallel.DefaultWorkers()
}

// clusterMenu returns the (Ng, Nc) wirings dynamic clustering optimizes
// over.
func (s System) clusterMenu() []comm.ClusterConfig {
	if s.Menu != nil {
		return s.Menu
	}
	return comm.DefaultConfigs(s.Workers)
}

// ringBW returns the per-worker outgoing bandwidth available to weight
// collectives under the config: data-parallel configs use all four links
// as rings; MPT gives half to the FBFLY.
func (s System) ringBW(c SystemConfig) float64 {
	if c.isMPT() {
		return s.LinkBW / 2
	}
	return s.LinkBW
}

// tileBW returns the per-worker outgoing bandwidth available to tile
// transfer (zero for data-parallel configs, which have none).
func (s System) tileBW(c SystemConfig) float64 {
	if c.isMPT() {
		return s.LinkBW / 2
	}
	return 0
}
