package sim

import (
	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/model"
	"mptwino/internal/winograd"
)

// This file is the simulator's side of the four-axis strategy space the
// auto-search planner explores (internal/planner, internal/comm/multiaxis):
// Ng element groups × Nc batch clusters × Nf filter shards × Ni input-
// channel shards. The legacy two-axis math in layer.go is untouched — the
// scenario goldens pin it byte-exactly — and strategies with Nf = Ni = 1
// never reach this path.

// SimulateLayerStrategy runs one training iteration of layer l under an
// explicit parallelization strategy — the planner's cost oracle. The
// transform follows the strategy's tile axis (st.TileM, with 0 = the
// paper's kernel rule for st.Ng); non-Winograd strategies run the
// direct-convolution (d_dp) phase model. The result's BoundBytes carries
// the layer's dense communication floor so callers can report
// achieved-vs-bound traffic.
func (s System) SimulateLayerStrategy(l model.Layer, batch int, c SystemConfig, st comm.Strategy) LayerResult {
	tr := winograd.F4x4_3x3 // unused on the direct path
	if st.Winograd {
		var err error
		tr, err = st.Transform(l.P.K)
		if err != nil {
			panic(err)
		}
	} else {
		c = DDp
	}
	res := s.simulateWithStrategy(l, batch, c, st, tr)
	res.BoundBytes = comm.LowerBoundBytes(l.P, batch, s.clusterMenu())
	return res
}

// CommFloorSec returns a cheap lower bound on the layer's simulated
// iteration time under st, built from communication volumes and the link
// model alone — no compute or DRAM terms. Each phase's duration is
// max(compute, tileComm) + collective, so the tile and collective terms
// never exceed the simulated total and pruning candidates whose floor
// already exceeds a reference time is sound (to within a byte of int64
// rounding, far below any useful pruning slack). This is the Chen/Demmel-
// style bound the planner prunes with before invoking the full oracle.
func (s System) CommFloorSec(l model.Layer, batch int, st comm.Strategy) float64 {
	if !st.Winograd {
		return s.collectiveSeconds(comm.SpatialWeightBytes(l.P), s.Workers, s.ringBW(DDp))
	}
	tr, err := st.Transform(l.P.K)
	if err != nil {
		panic(err)
	}
	v := comm.LayerVolumes(tr, l.P, batch, st)
	tileBytes := int64(float64(v.TileGather)*l.EffectiveGatherScale()) + v.TileScatter + v.PartialSum
	t := s.tileSecondsExt(tileBytes, st.Cell())

	ring := st.Nc
	cls := WMp
	var msg int64
	switch {
	case st.Ng == 1 && !st.Extended():
		msg = comm.SpatialWeightBytes(l.P)
		cls = WDp
	case st.Extended():
		msg = comm.WinogradWeightBytes(tr, l.P) / int64(st.Cell())
	default:
		msg = comm.WinogradWeightBytes(tr, l.P) / int64(st.Ng)
	}
	return t + s.collectiveSeconds(msg, ring, s.ringBW(cls))
}

// winogradPhasesExt models a Winograd layer under an extended strategy.
// It mirrors winogradPhases with three changes: each worker's element
// GEMMs shrink to In/Ni × Out/Nf shards, the tile fabric additionally
// carries the intra-cell partial-sum reductions, and the weight shard and
// cluster fabric span the whole D = Ng·Nf·Ni cell rather than Ng groups.
func (s System) winogradPhasesExt(p conv.Params, batch int, st comm.Strategy, tr *winograd.Transform, gatherScale float64) (fwd, bwd phase) {
	pw := int64(st.Workers())
	d := st.Cell()
	ni := int64(st.ChannelShards())
	nf := int64(st.FilterShards())
	t2 := int64(tr.T) * int64(tr.T)
	elemsPerWorker := float64(t2) / float64(st.Ng)
	inShard := (int64(p.In) + ni - 1) / ni
	outShard := (int64(p.Out) + nf - 1) / nf
	tiles := comm.TileBytes(tr, p, batch, 1) / 4 / t2
	rowsPerWorker := tiles / int64(st.Nc)
	if rowsPerWorker < 1 {
		rowsPerWorker = 1
	}

	fc := winograd.FpropCost(tr, p, batch)
	bc := winograd.BpropCost(tr, p, batch)
	uc := winograd.UpdateGradCost(tr, p, batch)

	oneD := winograd.HoldsWholeLines(tr.T, st.Ng) && st.Ng > 1
	hops := meanTileHops(d)

	// --- forward ---
	fwd.systolicSec = elemsPerWorker * s.NDP.MatmulSeconds(rowsPerWorker, inShard, outShard)
	fwd.vectorSec = float64(s.NDP.VectorCycles(fc.TransformMACs/pw)) / s.NDP.ClockHz
	fwd.dramBytes = s.winogradDRAMBytesExt(fc, st, rowsPerWorker)
	fwd.dramSec = s.NDP.DRAMSeconds(fwd.dramBytes)
	fwd.macs = fc.DotMACs
	fwd.vops = fc.TransformMACs

	sF, gF, pF := comm.ExtPhaseVolumes(tr, p, batch, st, false)
	scatterF := sF * (1 - st.ScatterReduction)
	gatherF := gF * (1 - st.GatherReduction) * gatherScale
	if oneD {
		gatherF *= float64(tr.M) / float64(tr.T)
	}
	fwd.tileCommBytes = int64(scatterF + gatherF + pF)
	fwd.tileCommSec = s.tileSecondsExt(fwd.tileCommBytes, d)
	fwd.netBytes = int64((scatterF + gatherF + pF) * hops * float64(pw))

	// --- backward: bprop + updateGrad ---
	bwd.systolicSec = elemsPerWorker * (s.NDP.MatmulSeconds(rowsPerWorker, outShard, inShard) +
		s.NDP.MatmulSeconds(inShard, rowsPerWorker, outShard))
	bwd.vectorSec = float64(s.NDP.VectorCycles(bc.TransformMACs/pw)) / s.NDP.ClockHz
	bwd.dramBytes = s.winogradDRAMBytesExt(bc, st, rowsPerWorker) +
		s.winogradDRAMBytesExt(uc, st, rowsPerWorker)
	bwd.dramSec = s.NDP.DRAMSeconds(bwd.dramBytes)
	bwd.macs = bc.DotMACs + uc.DotMACs
	bwd.vops = bc.TransformMACs

	sB, gB, pB := comm.ExtPhaseVolumes(tr, p, batch, st, true)
	scatterB := sB * (1 - st.ScatterReduction)
	gatherB := gB * (1 - st.GatherReduction) * gatherScale
	if oneD {
		gatherB *= float64(tr.M) / float64(tr.T)
	}
	bwd.tileCommBytes = int64(scatterB + gatherB + pB)
	bwd.tileCommSec = s.tileSecondsExt(bwd.tileCommBytes, d)
	bwd.netBytes = int64((scatterB + gatherB + pB) * hops * float64(pw))

	// Weight collective: the cell's |W|/D shard ring-reduced across the Nc
	// clusters. Extended cells always hold Winograd-domain weights.
	msg := comm.WinogradWeightBytes(tr, p) / int64(d)
	oneWay := comm.RingCollectivePerWorker(msg, st.Nc)
	bwd.collBytes = 2 * oneWay
	bwd.collSec = s.collectiveSeconds(msg, st.Nc, s.ringBW(WMp))
	bwd.netBytes += 2 * oneWay * pw
	return fwd, bwd
}

// winogradDRAMBytesExt distributes one phase's volume to a worker under
// an extended strategy: tiles and spatial data split across all workers,
// the weight shard shrinks to the whole-cell 1/D share (vs. the legacy
// 1/Ng) and is re-read per systolic pass when it overflows the buffer.
func (s System) winogradDRAMBytesExt(cst winograd.Cost, st comm.Strategy, rows int64) int64 {
	pw := int64(st.Workers())
	b := (cst.TileBytes + cst.SpatialBytes) / pw
	shard := cst.WeightBytes / int64(st.Cell())
	if shard > 0 {
		passes := int64(1)
		if !s.NDP.WeightsFitInBuffer(shard) {
			passes = (rows + int64(s.NDP.SystolicDim) - 1) / int64(s.NDP.SystolicDim)
			if passes < 1 {
				passes = 1
			}
		}
		b += shard * passes
	}
	return b
}

// tileSecondsExt converts per-worker tile-fabric bytes to time for a
// D-worker cell — the same link model as tileSeconds with the hop count
// taken from the cell size (a cell with Ng = 1 but Nf·Ni > 1 still moves
// tiles, which the legacy Ng-gated form would miss).
func (s System) tileSecondsExt(bytes int64, cell int) float64 {
	if bytes == 0 || cell <= 1 {
		return 0
	}
	bw := s.LinkBW / 2 // MPT tile share
	hops := meanTileHops(cell)
	cong := s.TileCongestion
	if cong <= 0 {
		cong = 1
	}
	return float64(bytes)*hops*cong/bw + 2*hops*s.SerDesSec
}
