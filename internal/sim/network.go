package sim

import (
	"mptwino/internal/energy"
	"mptwino/internal/model"
)

// NetworkResult aggregates a whole CNN's simulated training iteration
// (the unit of Fig. 17/18).
type NetworkResult struct {
	Network string
	Config  SystemConfig
	Workers int

	IterationSec float64
	Energy       energy.Breakdown
	Layers       []LayerResult

	// ImagesPerSec is the training throughput at the network's batch size.
	ImagesPerSec float64
	// PowerW is the average system power over the iteration.
	PowerW float64
}

// SimulateNetwork runs every layer of net under config c and sums the
// iteration. Layer Repeat counts multiply both time and energy.
func (s System) SimulateNetwork(net model.Network, c SystemConfig) NetworkResult {
	res := NetworkResult{Network: net.Name, Config: c, Workers: s.Workers}
	for _, l := range net.Layers {
		lr := s.SimulateLayer(l, net.Batch, c)
		rep := float64(l.EffectiveRepeat())
		res.IterationSec += lr.TotalSec() * rep
		res.Energy.Add(lr.Energy.Scale(rep))
		res.Layers = append(res.Layers, lr)
	}
	if res.IterationSec > 0 {
		res.ImagesPerSec = float64(net.Batch) / res.IterationSec
		res.PowerW = res.Energy.Total() / res.IterationSec
	}
	return res
}

// SingleWorkerBaseline simulates the 1-NDP system Fig. 17 normalizes to:
// the same worker hardware, no communication.
func SingleWorkerBaseline(net model.Network) NetworkResult {
	s := DefaultSystem()
	s.Workers = 1
	return s.SimulateNetwork(net, WDp)
}

// Speedup returns r's throughput relative to base.
func Speedup(r, base NetworkResult) float64 {
	if base.ImagesPerSec == 0 {
		return 0
	}
	return r.ImagesPerSec / base.ImagesPerSec
}
