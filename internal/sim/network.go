package sim

import (
	"mptwino/internal/comm"
	"mptwino/internal/energy"
	"mptwino/internal/model"
	"mptwino/internal/parallel"
)

// NetworkResult aggregates a whole CNN's simulated training iteration
// (the unit of Fig. 17/18).
type NetworkResult struct {
	Network string
	Config  SystemConfig
	Workers int

	IterationSec float64
	Energy       energy.Breakdown
	Layers       []LayerResult

	// ImagesPerSec is the training throughput at the network's batch size.
	ImagesPerSec float64
	// PowerW is the average system power over the iteration.
	PowerW float64
}

// SimulateNetwork runs every layer of net under config c and sums the
// iteration. Layer Repeat counts multiply both time and energy. Layers are
// independent, so they fan out across s.Parallel goroutines; the
// aggregation folds in layer order, keeping the result bit-identical to a
// sequential run.
func (s System) SimulateNetwork(net model.Network, c SystemConfig) NetworkResult {
	layers := parallel.Map(s.workers(), len(net.Layers), func(i int) LayerResult {
		return s.SimulateLayer(net.Layers[i], net.Batch, c)
	})
	return s.assembleNetwork(net, c, layers)
}

// assembleNetwork folds per-layer results (indexed like net.Layers) into a
// NetworkResult in deterministic layer order.
func (s System) assembleNetwork(net model.Network, c SystemConfig, layers []LayerResult) NetworkResult {
	res := NetworkResult{Network: net.Name, Config: c, Workers: s.Workers}
	for i, lr := range layers {
		rep := float64(net.Layers[i].EffectiveRepeat())
		res.IterationSec += lr.TotalSec() * rep
		res.Energy.Add(lr.Energy.Scale(rep))
		res.Layers = append(res.Layers, lr)
		s.countLayer(lr)
	}
	if res.IterationSec > 0 {
		res.ImagesPerSec = float64(net.Batch) / res.IterationSec
		res.PowerW = res.Energy.Total() / res.IterationSec
	}
	s.recordFleetSpeeds()
	s.traceNetwork(net, c, res)
	return res
}

// SimulateNetworkWithPlan runs every layer of net under its planned
// strategy (indexed like net.Layers) — the executable form of the
// auto-search planner's Plan — and assembles the iteration exactly like
// SimulateNetwork. Redistribution cost between differently-configured
// adjacent layers is the planner's concern (it selects the plan with that
// cost included); the per-layer simulation itself is unchanged.
func (s System) SimulateNetworkWithPlan(net model.Network, c SystemConfig, plan []comm.Strategy) NetworkResult {
	if len(plan) != len(net.Layers) {
		panic("sim: plan length does not match network layer count")
	}
	layers := parallel.Map(s.workers(), len(net.Layers), func(i int) LayerResult {
		return s.SimulateLayerStrategy(net.Layers[i], net.Batch, c, plan[i])
	})
	return s.assembleNetwork(net, c, layers)
}

// Sweep simulates net under every config in cfgs, fanning one goroutine
// out per (layer, config) cell — the full Table IV sweep as a single flat
// work list. The returned slice is indexed like cfgs, and each entry is
// bit-identical to SimulateNetwork(net, cfgs[i]).
func (s System) Sweep(net model.Network, cfgs []SystemConfig) []NetworkResult {
	nl := len(net.Layers)
	cells := parallel.Map(s.workers(), len(cfgs)*nl, func(i int) LayerResult {
		return s.SimulateLayer(net.Layers[i%nl], net.Batch, cfgs[i/nl])
	})
	out := make([]NetworkResult, len(cfgs))
	for ci, c := range cfgs {
		out[ci] = s.assembleNetwork(net, c, cells[ci*nl:(ci+1)*nl])
	}
	return out
}

// SingleWorkerBaseline simulates the 1-NDP system Fig. 17 normalizes to:
// the same worker hardware, no communication.
func SingleWorkerBaseline(net model.Network) NetworkResult {
	s := DefaultSystem()
	s.Workers = 1
	return s.SimulateNetwork(net, WDp)
}

// Speedup returns r's throughput relative to base.
func Speedup(r, base NetworkResult) float64 {
	if base.ImagesPerSec == 0 {
		return 0
	}
	return r.ImagesPerSec / base.ImagesPerSec
}
