package comm

import (
	"mptwino/internal/conv"
	"mptwino/internal/winograd"
)

// This file implements load-aware batch sharding for heterogeneous fleets
// (slow modules, throttled regions, mixed-generation HMC stacks). The
// paper's dynamic clustering assumes 256 identical modules and splits the
// batch B equally across the Nc clusters; once module speeds differ, the
// synchronous step is gated by the slowest cluster's share/speed ratio, so
// the planner apportions shares proportional to effective cluster speed
// instead (cf. Rama et al., load-aware splits on heterogeneous edge
// clusters). Every function here is deterministic and schedule-invariant:
// shares depend only on (batch, speeds), never on iteration order or
// worker count.

// EqualShards returns the baseline equal split of batch across nc
// clusters: each cluster takes ceil-or-floor shares differing by at most
// one, earlier clusters taking the remainder (matching the engine's
// c*batch/Nc shard bounds).
func EqualShards(batch, nc int) []int {
	out := make([]int, nc)
	for c := 0; c < nc; c++ {
		out[c] = (c+1)*batch/nc - c*batch/nc
	}
	return out
}

// ClusterSpeeds folds per-module compute speeds into per-cluster effective
// speeds for an (ng, nc) grid over the given active modules: cluster c
// owns modules[c*ng : (c+1)*ng], and its speed is the *minimum* member
// speed — the intra-cluster scatter/compute/gather barrier waits for the
// slowest group member. Modules beyond speeds' range (or a nil slice)
// read 1.
func ClusterSpeeds(speeds []float64, modules []int, ng, nc int) []float64 {
	out := make([]float64, nc)
	for c := 0; c < nc; c++ {
		s := 1.0
		for g := 0; g < ng; g++ {
			idx := c*ng + g
			if idx >= len(modules) {
				break
			}
			m := modules[idx]
			if m >= 0 && m < len(speeds) && speeds[m] < s {
				s = speeds[m]
			}
		}
		out[c] = s
	}
	return out
}

// LoadAwareShards apportions batch across clusters proportional to their
// speeds, by largest-remainder: each cluster gets the floor of its ideal
// share, leftover samples go to the largest fractional remainders (ties to
// the lower cluster index), and every cluster keeps at least one sample
// while the batch allows (stolen from the largest share). The result is a
// pure function of (batch, speeds) — deterministic at any worker count —
// and sums exactly to batch.
//
// With all speeds equal it reproduces a balanced split (shares differ by
// at most one), so homogeneous fleets are unaffected.
func LoadAwareShards(batch int, speeds []float64) []int {
	nc := len(speeds)
	if nc == 0 {
		return nil
	}
	total := 0.0
	for _, s := range speeds {
		if s > 0 {
			total += s
		}
	}
	shares := make([]int, nc)
	if total <= 0 {
		return EqualShards(batch, nc)
	}
	type rem struct {
		frac float64
		idx  int
	}
	rems := make([]rem, nc)
	assigned := 0
	for c, s := range speeds {
		if s < 0 {
			s = 0
		}
		ideal := float64(batch) * s / total
		shares[c] = int(ideal)
		rems[c] = rem{frac: ideal - float64(shares[c]), idx: c}
		assigned += shares[c]
	}
	// Hand the leftover samples to the largest remainders, lower index
	// first on ties (selection by repeated max keeps this allocation-light
	// and obviously deterministic; nc is at most a few hundred).
	for assigned < batch {
		best := -1
		for i := range rems {
			if rems[i].frac < 0 {
				continue
			}
			if best < 0 || rems[i].frac > rems[best].frac {
				best = i
			}
		}
		shares[rems[best].idx]++
		rems[best].frac = -1
		assigned++
		// More leftovers than clusters (all remainders spent): reset and
		// keep distributing round-robin by speed order.
		if assigned < batch {
			spent := true
			for i := range rems {
				if rems[i].frac >= 0 {
					spent = false
					break
				}
			}
			if spent {
				for c, s := range speeds {
					rems[c] = rem{frac: s, idx: c}
				}
			}
		}
	}
	// Min-one guarantee: a zero-share cluster would idle ng workers; steal
	// from the largest share while batch covers every cluster.
	if batch >= nc {
		for c := 0; c < nc; c++ {
			if shares[c] > 0 {
				continue
			}
			big := 0
			for i := 1; i < nc; i++ {
				if shares[i] > shares[big] {
					big = i
				}
			}
			if shares[big] > 1 {
				shares[big]--
				shares[c]++
			}
		}
	}
	return shares
}

// ShardStretch returns the synchronous-step stretch factor of a sharding:
// the maximum over clusters of (share_c / meanShare) / speed_c, i.e. how
// much longer the slowest cluster takes than a healthy equal-split cluster
// would. 1.0 means perfectly balanced on a healthy fleet; an equal split
// on a fleet with a 0.5-speed straggler cluster stretches to 2.0.
func ShardStretch(shares []int, speeds []float64) float64 {
	nc := len(shares)
	if nc == 0 {
		return 1
	}
	batch := 0
	for _, s := range shares {
		batch += s
	}
	if batch == 0 {
		return 1
	}
	mean := float64(batch) / float64(nc)
	worst := 0.0
	for c, sh := range shares {
		speed := 1.0
		if c < len(speeds) && speeds[c] > 0 {
			speed = speeds[c]
		}
		if r := float64(sh) / mean / speed; r > worst {
			worst = r
		}
	}
	return worst
}

// ImbalancePermille quantifies a sharding's residual imbalance in parts
// per thousand: (maxShare/minShare − 1) × 1000, computed over non-zero
// shares. 0 means perfectly even; integer-valued so telemetry can carry it
// through an atomic gauge without float races.
func ImbalancePermille(shares []int) int64 {
	min, max := 0, 0
	for _, s := range shares {
		if s <= 0 {
			continue
		}
		if min == 0 || s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min == 0 {
		return 0
	}
	return int64(max-min) * 1000 / int64(min)
}

// LowerBoundBytes returns the dense per-worker communication floor for one
// layer: the minimum over the clustering menu of the no-reduction traffic
// volume. In the spirit of the Chen/Demmel communication lower bounds for
// CNNs, it is the fewest bytes any menu configuration must move for this
// layer with dense tiles — the yardstick the scenario matrix reports
// achieved bytes against. Reductions (activation prediction,
// zero-skipping) can push achieved traffic below this dense floor;
// conversely the time-optimal choice on a degraded fabric may move more.
func LowerBoundBytes(p conv.Params, batch int, configs []ClusterConfig) int64 {
	if len(configs) == 0 {
		return 0
	}
	best := int64(-1)
	for _, cfg := range configs {
		tr, err := winograd.ForKernel(p.K, cfg.Ng)
		if err != nil {
			continue
		}
		s := Strategy{Ng: cfg.Ng, Nc: cfg.Nc, Winograd: true}
		v := LayerVolumes(tr, p, batch, s)
		if t := v.Total(); best < 0 || t < best {
			best = t
		}
	}
	if best < 0 {
		return 0
	}
	return best
}
