package comm

import (
	"math"

	"mptwino/internal/conv"
	"mptwino/internal/model"
	"mptwino/internal/winograd"
)

// Fabric describes the communication capacity available to one worker,
// split — as the paper's MPT configuration does — between the ring fabric
// carrying weight collectives and the flattened-butterfly fabric carrying
// tile transfer (Section VII-A: half of the four full-width links each).
type Fabric struct {
	RingBW float64 // bytes/sec per worker for collectives
	TileBW float64 // bytes/sec per worker for tile gather/scatter
}

// DefaultFabric returns the paper's Table III link budget: four
// bi-directional full-width links (16 lanes × 15 Gbps = 30 GB/s each,
// 240 GB/s total), split half to the ring and half to the FBFLY.
func DefaultFabric() Fabric {
	const full = 30e9 // bytes/sec, one full-width link, one direction
	return Fabric{RingBW: 2 * full, TileBW: 2 * full}
}

// EstimateTime converts per-worker volumes into a communication-time
// estimate on the fabric. The collective is counted twice (reduce then
// broadcast of the updated weights); tile gather, scatter and the
// intra-cell partial-sum reductions share the tile fabric.
func (f Fabric) EstimateTime(v Volumes) float64 {
	t := 2 * float64(v.Weight) / f.RingBW
	t += float64(v.TileGather+v.TileScatter+v.PartialSum) / f.TileBW
	return t
}

// ClusterConfig is one allowed (Ng, Nc) wiring of the reconfigurable
// memory-centric network.
type ClusterConfig struct {
	Ng, Nc int
}

// DefaultConfigs returns the paper's three dynamic-clustering wirings for
// p workers (Section IV): (16, p/16), (4, p/4) and (1, p). Configurations
// that do not divide p are dropped, so smaller systems still get a menu.
func DefaultConfigs(p int) []ClusterConfig {
	var out []ClusterConfig
	for _, ng := range []int{16, 4, 1} {
		if p%ng == 0 && p/ng >= 1 {
			out = append(out, ClusterConfig{Ng: ng, Nc: p / ng})
		}
	}
	return out
}

// SurvivorConfigs returns the best (Ng, Nc) wirings achievable with p
// surviving workers after module failures — the graceful-degradation menu
// the fault-recovery path re-solves over. Unlike DefaultConfigs it does not
// require Ng to divide p: the grid uses Ng·⌊p/Ng⌋ workers and idles the
// remainder (e.g. 255 survivors offer (16,15) using 240 workers, (4,63)
// using 252, and (1,255) using all). For a fully healthy, divisible p it
// degenerates to exactly DefaultConfigs.
func SurvivorConfigs(p int) []ClusterConfig {
	var out []ClusterConfig
	for _, ng := range []int{16, 4, 1} {
		if nc := p / ng; nc >= 1 {
			out = append(out, ClusterConfig{Ng: ng, Nc: nc})
		}
	}
	return out
}

// Reductions carries the Section-V traffic-reduction fractions to apply
// when activation prediction / zero-skipping is enabled. The Get method
// picks the 1-D or 2-D figures by whether the group count gives each
// worker whole tile lines.
type Reductions struct {
	Gather2D, Gather1D   float64 // activation prediction
	Scatter2D, Scatter1D float64 // zero-skipping
}

// PaperReductions returns the measured reductions quoted in Section V-B:
// activation prediction saves 34.0% (2-D, 6-bit) / 78.1% (1-D, 5-bit) of
// gathering; zero-skipping saves 39.3% / 64.7% of scattering.
func PaperReductions() Reductions {
	return Reductions{Gather2D: 0.340, Gather1D: 0.781, Scatter2D: 0.393, Scatter1D: 0.647}
}

// Get returns the (gather, scatter) reductions for a group count under
// tile size t.
func (r Reductions) Get(t, ng int) (gather, scatter float64) {
	if ng <= 1 {
		return 0, 0
	}
	if winograd.HoldsWholeLines(t, ng) {
		return r.Gather1D, r.Scatter1D
	}
	return r.Gather2D, r.Scatter2D
}

// StrategyFor assembles a Strategy for one clustering configuration,
// choosing the transform by the paper's rule (F(4×4,3×3) at Ng=1,
// F(2×2,3×3) otherwise for 3×3 kernels) and applying reductions when pred
// is true.
func StrategyFor(cfg ClusterConfig, k int, pred bool, red Reductions) (Strategy, *winograd.Transform) {
	tr, err := winograd.ForKernel(k, cfg.Ng)
	if err != nil {
		panic(err)
	}
	s := Strategy{Ng: cfg.Ng, Nc: cfg.Nc, Winograd: true}
	if pred {
		s.GatherReduction, s.ScatterReduction = red.Get(tr.T, cfg.Ng)
	}
	return s, tr
}

// ChooseClustering picks, for one layer, the configuration from configs
// with the smallest estimated communication time on the fabric — the
// pre-computed per-layer decision the paper's dynamic clustering makes
// ("the optimal configuration per layer ... is pre-determined").
func ChooseClustering(p conv.Params, batch int, configs []ClusterConfig, f Fabric, pred bool, red Reductions) (ClusterConfig, Volumes) {
	best := configs[0]
	bestTime := math.Inf(1)
	var bestVol Volumes
	for _, cfg := range configs {
		s, tr := StrategyFor(cfg, p.K, pred, red)
		v := LayerVolumes(tr, p, batch, s)
		if t := f.EstimateTime(v); t < bestTime {
			bestTime = t
			best = cfg
			bestVol = v
		}
	}
	return best, bestVol
}

// NetworkVolumesDynamic sums per-worker volumes over a network with
// per-layer dynamic clustering, returning the total and the chosen
// configuration per layer (indexed like net.Layers).
func NetworkVolumesDynamic(net model.Network, p int, f Fabric, pred bool, red Reductions) (Volumes, []ClusterConfig) {
	configs := DefaultConfigs(p)
	var total Volumes
	choices := make([]ClusterConfig, len(net.Layers))
	for i, l := range net.Layers {
		cfg, v := ChooseClustering(l.P, net.Batch, configs, f, pred, red)
		choices[i] = cfg
		v.TileGather = int64(float64(v.TileGather) * l.EffectiveGatherScale())
		total = total.add(v.scale(int64(l.EffectiveRepeat())))
	}
	return total, choices
}
