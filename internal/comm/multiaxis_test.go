package comm

import (
	"testing"

	"mptwino/internal/model"
	"mptwino/internal/winograd"
)

// TestExtendedVolumesDegenerate pins the four-axis model to the legacy
// two-axis one: at Nf = Ni = 1 the extended formulas must reproduce the
// paper's volumes bit-exactly for every catalog layer and menu config.
func TestExtendedVolumesDegenerate(t *testing.T) {
	const p = 256
	nets := append(model.AllNetworks(), model.VGG16())
	for _, net := range nets {
		for _, l := range net.Layers {
			for _, cfg := range DefaultConfigs(p) {
				if cfg.Ng == 1 {
					continue // no ext strategy has a one-worker cell
				}
				s, tr := StrategyFor(cfg, l.P.K, true, PaperReductions())
				legacy := LayerVolumes(tr, l.P, net.Batch, s)

				s.Nf, s.Ni = 1, 1
				ext := layerVolumesExt(tr, l.P, net.Batch, s)
				if ext != legacy {
					t.Errorf("%s %s (Ng=%d,Nc=%d): ext %+v != legacy %+v",
						net.Name, l.Name, cfg.Ng, cfg.Nc, ext, legacy)
				}
			}
		}
	}
}

// TestExtendedVolumesAxes checks the qualitative structure of the new
// axes: partial sums appear exactly when a channel/filter axis is in
// play, and sharding channels shrinks the weight collective.
func TestExtendedVolumesAxes(t *testing.T) {
	l := model.VGG16().Layers[7] // a mid-network 3×3 layer
	tr, err := winograd.ForKernel(l.P.K, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := Strategy{Ng: 4, Nc: 16, Nf: 1, Ni: 1, Winograd: true}
	fs := Strategy{Ng: 4, Nc: 16, Nf: 4, Ni: 1, Winograd: true}
	cs := Strategy{Ng: 4, Nc: 16, Nf: 1, Ni: 4, Winograd: true}

	vb := layerVolumesExt(tr, l.P, 256, base)
	vf := LayerVolumes(tr, l.P, 256, fs)
	vc := LayerVolumes(tr, l.P, 256, cs)

	if vb.PartialSum != 0 {
		t.Errorf("no shard axes but PartialSum=%d", vb.PartialSum)
	}
	if vf.PartialSum <= 0 || vc.PartialSum <= 0 {
		t.Errorf("shard axes must add partial-sum traffic: filter=%d channel=%d",
			vf.PartialSum, vc.PartialSum)
	}
	if vf.Weight >= vb.Weight || vc.Weight >= vb.Weight {
		t.Errorf("sharding must shrink the per-worker weight collective: base=%d filter=%d channel=%d",
			vb.Weight, vf.Weight, vc.Weight)
	}
}

// TestExtPhaseVolumesMirror checks the fprop/bprop duality: swapping the
// direction swaps the scatter and gather payload roles.
func TestExtPhaseVolumesMirror(t *testing.T) {
	l := model.VGG16().Layers[4]
	tr, err := winograd.ForKernel(l.P.K, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := Strategy{Ng: 4, Nc: 8, Nf: 2, Ni: 4, Winograd: true}
	sF, gF, _ := ExtPhaseVolumes(tr, l.P, 256, s, false)
	sB, gB, _ := ExtPhaseVolumes(tr, l.P, 256, s, true)
	if sF != gB || gF != sB {
		t.Errorf("fprop (s=%g,g=%g) and bprop (s=%g,g=%g) are not mirrored", sF, gF, sB, gB)
	}
}

// TestFactorizations checks the enumerator's contract: every quadruple
// multiplies to p, there are no duplicates, the menu anchors appear, and
// the order is deterministic.
func TestFactorizations(t *testing.T) {
	for _, p := range []int{1, 2, 4, 16, 60, 256} {
		fs := Factorizations(p)
		seen := make(map[Factorization]bool, len(fs))
		for _, f := range fs {
			if f.Product() != p {
				t.Fatalf("p=%d: %+v multiplies to %d", p, f, f.Product())
			}
			if seen[f] {
				t.Fatalf("p=%d: duplicate %+v", p, f)
			}
			seen[f] = true
		}
		again := Factorizations(p)
		if len(again) != len(fs) {
			t.Fatalf("p=%d: non-deterministic length", p)
		}
		for i := range fs {
			if fs[i] != again[i] {
				t.Fatalf("p=%d: non-deterministic order at %d", p, i)
			}
		}
	}

	fs := Factorizations(256)
	for _, want := range []Factorization{
		{Ng: 16, Nc: 16, Nf: 1, Ni: 1},
		{Ng: 4, Nc: 64, Nf: 1, Ni: 1},
		{Ng: 1, Nc: 256, Nf: 1, Ni: 1},
		{Ng: 4, Nc: 16, Nf: 2, Ni: 2},
	} {
		found := false
		for _, f := range fs {
			if f == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Factorizations(256) missing %+v", want)
		}
	}
}
