// Package comm implements the closed-form communication model of Section
// III-C: per-worker traffic volumes for weight-gradient collectives and
// tile transfer under data-parallel and multi-dimensional parallel
// training, plus the dynamic-clustering optimizer of Section IV that picks
// the (Ng, Nc) configuration minimizing estimated communication time per
// layer.
package comm

import (
	"fmt"

	"mptwino/internal/conv"
	"mptwino/internal/model"
	"mptwino/internal/winograd"
)

// Strategy names a parallelization strategy for one layer.
type Strategy struct {
	Ng int // groups (intra-tile parallelism width)
	Nc int // clusters (data parallelism width)

	// Nf and Ni are the extra parallel axes of the auto-search planner
	// (Jia et al., "Exploring Hidden Dimensions in Parallelizing CNNs"):
	// Nf shards the filter (output-channel) dimension and Ni the input-
	// channel dimension inside each (group, cluster) cell, so the total
	// worker count is Ng·Nc·Nf·Ni. Zero means 1 (axis unused); the paper's
	// fixed menu always runs with both at 1, and every formula degenerates
	// bit-exactly to the two-axis model in that case.
	Nf int // filter (output-channel) shards per cell
	Ni int // input-channel shards per cell

	// Winograd reports whether the layer runs in the Winograd domain at
	// all (false = direct convolution, the d_dp baseline).
	Winograd bool

	// TileM selects the Winograd tile output size m of F(m×m,r×r) as an
	// explicit strategy axis. Zero keeps the paper's rule (the group count
	// picks the tile: F(2×2) for Ng>1, F(4×4) for Ng=1 at 3×3 kernels), so
	// every fixed-menu strategy and all pre-existing callers are unchanged
	// bit-for-bit. The planner enumerates non-zero values {2, 4} by default
	// and {2, 4, 6} behind AllowWideTiles (F(6×6,3×3) is training-unsafe;
	// see winograd/stability_test.go).
	TileM int

	// Reduction factors from Section V, expressed as the *fraction of
	// traffic removed* (0 = no reduction). GatherReduction applies to tile
	// gathering (activation prediction), ScatterReduction to tile
	// scattering (zero-skipping).
	GatherReduction  float64
	ScatterReduction float64
}

// FilterShards returns the filter-axis width, defaulting to 1.
func (s Strategy) FilterShards() int {
	if s.Nf <= 0 {
		return 1
	}
	return s.Nf
}

// ChannelShards returns the input-channel-axis width, defaulting to 1.
func (s Strategy) ChannelShards() int {
	if s.Ni <= 0 {
		return 1
	}
	return s.Ni
}

// Cell returns the worker count of one cluster cell: the Ng·Nf·Ni workers
// that cooperate on one batch shard over the tile fabric.
func (s Strategy) Cell() int { return s.Ng * s.FilterShards() * s.ChannelShards() }

// Extended reports whether the strategy uses the channel/filter axes the
// fixed menu does not have.
func (s Strategy) Extended() bool { return s.FilterShards() > 1 || s.ChannelShards() > 1 }

// Workers returns the total worker count of the strategy.
func (s Strategy) Workers() int { return s.Cell() * s.Nc }

// Validate checks the strategy invariants.
func (s Strategy) Validate() error {
	if s.Ng < 1 || s.Nc < 1 {
		return fmt.Errorf("comm: Ng=%d Nc=%d must be >= 1", s.Ng, s.Nc)
	}
	if s.Nf < 0 || s.Ni < 0 {
		return fmt.Errorf("comm: Nf=%d Ni=%d must be >= 0 (0 means 1)", s.Nf, s.Ni)
	}
	if s.Extended() && !s.Winograd {
		return fmt.Errorf("comm: channel/filter sharding requires the Winograd path")
	}
	switch s.TileM {
	case 0, 2, 4, 6:
	default:
		return fmt.Errorf("comm: TileM=%d not supported (0 = paper rule, else m of F(m×m))", s.TileM)
	}
	if s.TileM != 0 && !s.Winograd {
		return fmt.Errorf("comm: an explicit tile size requires the Winograd path")
	}
	if s.GatherReduction < 0 || s.GatherReduction > 1 ||
		s.ScatterReduction < 0 || s.ScatterReduction > 1 {
		return fmt.Errorf("comm: reductions must be in [0,1]")
	}
	return nil
}

// Transform resolves the Winograd transform for kernel size k under this
// strategy: the explicit TileM axis when set, the paper's group-count rule
// otherwise. It enforces the Ng ≤ T² feasibility bound (a group must own at
// least one element of the T×T tile).
func (s Strategy) Transform(k int) (*winograd.Transform, error) {
	tr, err := winograd.ForKernelTile(k, s.Ng, s.TileM)
	if err != nil {
		return nil, err
	}
	if s.Ng > tr.T*tr.T {
		return nil, fmt.Errorf("comm: Ng=%d exceeds the %d elements of the %s tile", s.Ng, tr.T*tr.T, tr)
	}
	return tr, nil
}

// Volumes is the per-worker, per-iteration communication of one layer,
// in bytes, split by traffic type. Weight volume is one collective
// direction (the reduce); the time model doubles it for the broadcast.
type Volumes struct {
	Weight      int64 // weight-gradient ring collective, one direction
	TileGather  int64 // Winograd-domain output tiles gathered (fprop+bprop)
	TileScatter int64 // Winograd-domain input tiles scattered (fprop+bprop)

	// PartialSum is the intra-cell partial-sum reduction traffic the
	// channel/filter axes add: fprop output tiles reduced across the Ni
	// input-channel shards and bprop dX tiles reduced across the Nf filter
	// shards. Always 0 for the fixed two-axis menu.
	PartialSum int64
}

// Total returns the summed per-worker bytes.
func (v Volumes) Total() int64 { return v.Weight + v.TileGather + v.TileScatter + v.PartialSum }

// scale multiplies all fields by k (used for layer Repeat counts).
func (v Volumes) scale(k int64) Volumes {
	return Volumes{
		Weight:      v.Weight * k,
		TileGather:  v.TileGather * k,
		TileScatter: v.TileScatter * k,
		PartialSum:  v.PartialSum * k,
	}
}

func (v Volumes) add(o Volumes) Volumes {
	return Volumes{
		Weight:      v.Weight + o.Weight,
		TileGather:  v.TileGather + o.TileGather,
		TileScatter: v.TileScatter + o.TileScatter,
		PartialSum:  v.PartialSum + o.PartialSum,
	}
}

// SpatialWeightBytes returns |w| for a layer.
func SpatialWeightBytes(p conv.Params) int64 {
	return 4 * int64(p.In) * int64(p.Out) * int64(p.K) * int64(p.K)
}

// WinogradWeightBytes returns |W| for a layer under transform tr.
func WinogradWeightBytes(tr *winograd.Transform, p conv.Params) int64 {
	return 4 * int64(p.In) * int64(p.Out) * int64(tr.T) * int64(tr.T)
}

// TileBytes returns |Tiles| for one tensor role (input or output channels
// c) of a layer: the whole batch's Winograd-domain feature-map volume.
func TileBytes(tr *winograd.Transform, p conv.Params, batch, c int) int64 {
	m := tr.M
	th := (p.OutH() + m - 1) / m
	tw := (p.OutW() + m - 1) / m
	return 4 * int64(batch) * int64(th) * int64(tw) * int64(c) * int64(tr.T) * int64(tr.T)
}

// RingCollectivePerWorker returns the per-worker one-direction traffic of a
// pipelined ring collective over n workers with a msg-byte payload:
// msg·(n−1)/n (paper Section III-C). A single worker communicates nothing.
func RingCollectivePerWorker(msg int64, n int) int64 {
	if n <= 1 {
		return 0
	}
	return msg * int64(n-1) / int64(n)
}

// TileTransferPerWorker returns the per-worker traffic of distributing
// tile data across ng groups when each worker holds tiles/(nc·ng) bytes:
// the (ng−1)/ng share leaves the worker (paper Section III-C).
func TileTransferPerWorker(tiles int64, ng, nc int) int64 {
	if ng <= 1 {
		return 0
	}
	held := tiles / int64(nc) / int64(ng)
	return held * int64(ng-1) / int64(ng)
}

// LayerVolumes computes the per-worker, per-iteration communication of one
// layer under the strategy, covering all three phases:
//
//   - fprop:  scatter input tiles X, gather output tiles Y
//   - bprop:  scatter output-gradient tiles dY, gather input-gradient dX
//   - updateGrad: ring collective of the group's weight-gradient shard
//
// Direct-convolution and single-group Winograd strategies have no tile
// transfer; single-cluster strategies (Nc=1) have no weight collective.
// When the group count lets each worker hold whole tile lines, the 1-D
// transform optimization shrinks gathered tiles by m/T (Section IV).
func LayerVolumes(tr *winograd.Transform, p conv.Params, batch int, s Strategy) Volumes {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	if s.Extended() {
		// Channel/filter axes in play: the four-axis model (multiaxis.go).
		return layerVolumesExt(tr, p, batch, s)
	}
	var v Volumes
	if !s.Winograd {
		// d_dp: spatial weights reduced across all p workers.
		v.Weight = RingCollectivePerWorker(SpatialWeightBytes(p), s.Workers())
		return v
	}
	if s.Ng == 1 {
		// w_dp: Winograd compute but data-parallel weights; Table IV keeps
		// spatial weights ("update w") so the collective moves |w|.
		v.Weight = RingCollectivePerWorker(SpatialWeightBytes(p), s.Workers())
		return v
	}

	// MPT: Winograd-domain weights, partitioned across groups.
	wBytes := WinogradWeightBytes(tr, p) / int64(s.Ng)
	v.Weight = RingCollectivePerWorker(wBytes, s.Nc)

	inTiles := TileBytes(tr, p, batch, p.In)
	outTiles := TileBytes(tr, p, batch, p.Out)

	gather := TileTransferPerWorker(outTiles, s.Ng, s.Nc) + // fprop: Y
		TileTransferPerWorker(inTiles, s.Ng, s.Nc) // bprop: dX
	scatter := TileTransferPerWorker(inTiles, s.Ng, s.Nc) + // fprop: X
		TileTransferPerWorker(outTiles, s.Ng, s.Nc) // bprop: dY

	if winograd.HoldsWholeLines(tr.T, s.Ng) && s.Ng > 1 {
		// Whole-line ownership enables the 1-D inverse transform at the
		// source: gathered data shrinks from T to m values per line.
		gather = gather * int64(tr.M) / int64(tr.T)
	}

	v.TileGather = int64(float64(gather) * (1 - s.GatherReduction))
	v.TileScatter = int64(float64(scatter) * (1 - s.ScatterReduction))
	return v
}

// NetworkVolumes sums per-worker volumes over a network's layers for a
// fixed strategy, honoring Repeat and GatherScale.
func NetworkVolumes(net model.Network, tr *winograd.Transform, s Strategy) Volumes {
	var total Volumes
	for _, l := range net.Layers {
		v := LayerVolumes(tr, l.P, net.Batch, s)
		v.TileGather = int64(float64(v.TileGather) * l.EffectiveGatherScale())
		total = total.add(v.scale(int64(l.EffectiveRepeat())))
	}
	return total
}
