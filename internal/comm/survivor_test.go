package comm

import (
	"reflect"
	"testing"
)

func TestSurvivorConfigs(t *testing.T) {
	for _, tc := range []struct {
		p    int
		want []ClusterConfig
	}{
		{255, []ClusterConfig{{Ng: 16, Nc: 15}, {Ng: 4, Nc: 63}, {Ng: 1, Nc: 255}}},
		{15, []ClusterConfig{{Ng: 4, Nc: 3}, {Ng: 1, Nc: 15}}},
		{3, []ClusterConfig{{Ng: 1, Nc: 3}}},
		{1, []ClusterConfig{{Ng: 1, Nc: 1}}},
	} {
		if got := SurvivorConfigs(tc.p); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SurvivorConfigs(%d) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// For healthy divisible counts the menus coincide.
	for _, p := range []int{16, 64, 256} {
		if got, want := SurvivorConfigs(p), DefaultConfigs(p); !reflect.DeepEqual(got, want) {
			t.Errorf("SurvivorConfigs(%d) = %v, want DefaultConfigs = %v", p, got, want)
		}
	}
	// Never proposes a grid larger than the survivor pool.
	for p := 1; p <= 300; p++ {
		for _, cfg := range SurvivorConfigs(p) {
			if cfg.Ng*cfg.Nc > p {
				t.Fatalf("SurvivorConfigs(%d) proposes (%d,%d) needing %d workers",
					p, cfg.Ng, cfg.Nc, cfg.Ng*cfg.Nc)
			}
		}
	}
}
