package comm

import (
	"math"
	"reflect"
	"testing"

	"mptwino/internal/model"
)

func TestEqualShardsMatchEngineBounds(t *testing.T) {
	for _, tc := range []struct{ batch, nc int }{{64, 16}, {64, 15}, {7, 3}, {1, 1}, {5, 8}} {
		shares := EqualShards(tc.batch, tc.nc)
		sum := 0
		for c, s := range shares {
			sum += s
			// Must match the engine's shardBounds formula exactly.
			if want := (c+1)*tc.batch/tc.nc - c*tc.batch/tc.nc; s != want {
				t.Errorf("B=%d Nc=%d share[%d]=%d want %d", tc.batch, tc.nc, c, s, want)
			}
		}
		if sum != tc.batch {
			t.Errorf("B=%d Nc=%d shares sum to %d", tc.batch, tc.nc, sum)
		}
	}
}

func TestLoadAwareShardsProportionalAndExact(t *testing.T) {
	// One straggler cluster at half speed among four: it should take ~1/7
	// of the batch instead of 1/4.
	shares := LoadAwareShards(70, []float64{1, 1, 0.5, 1})
	sum := 0
	for _, s := range shares {
		sum += s
	}
	if sum != 70 {
		t.Fatalf("shares %v sum to %d, want 70", shares, sum)
	}
	if shares[2] >= shares[0] {
		t.Fatalf("straggler cluster share %d not below healthy %d", shares[2], shares[0])
	}
	if want := 10; shares[2] != want {
		t.Errorf("straggler share = %d, want %d (speed-proportional)", shares[2], want)
	}

	// Homogeneous fleet: balanced split, shares differ by at most one.
	hom := LoadAwareShards(67, []float64{1, 1, 1, 1, 1})
	min, max := hom[0], hom[0]
	total := 0
	for _, s := range hom {
		total += s
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if total != 67 || max-min > 1 {
		t.Fatalf("homogeneous shares %v: sum %d spread %d", hom, total, max-min)
	}

	// Min-one guarantee: an extreme straggler still gets a sample when the
	// batch covers every cluster.
	ext := LoadAwareShards(8, []float64{1, 1, 1, 0.001})
	for c, s := range ext {
		if s < 1 {
			t.Fatalf("cluster %d starved: shares %v", c, ext)
		}
	}
}

func TestLoadAwareShardsDeterministic(t *testing.T) {
	speeds := []float64{1, 0.7, 0.7, 0.4, 1, 0.9, 1, 0.55}
	ref := LoadAwareShards(253, speeds)
	for i := 0; i < 100; i++ {
		if got := LoadAwareShards(253, speeds); !reflect.DeepEqual(got, ref) {
			t.Fatalf("run %d: %v != %v", i, got, ref)
		}
	}
}

func TestLoadAwareBeatsEqualOnStraggler(t *testing.T) {
	// The acceptance criterion in miniature: with one half-speed cluster,
	// the equal split stretches the synchronous step 2.0x while the
	// load-aware split stays near 1.1x.
	speeds := []float64{1, 1, 1, 1, 1, 1, 1, 0.5}
	batch := 64
	equal := ShardStretch(EqualShards(batch, len(speeds)), speeds)
	aware := ShardStretch(LoadAwareShards(batch, speeds), speeds)
	if equal < 1.9 {
		t.Fatalf("equal-split stretch %v, expected ~2.0 on a 0.5x straggler", equal)
	}
	if aware >= equal {
		t.Fatalf("load-aware stretch %v does not beat equal %v", aware, equal)
	}
	if aware > 1.3 {
		t.Errorf("load-aware stretch %v, want near 1.1", aware)
	}
}

func TestClusterSpeeds(t *testing.T) {
	speeds := []float64{1, 1, 0.5, 1, 1, 1, 0.8, 0.9}
	modules := []int{0, 1, 2, 3, 4, 5, 6, 7}
	got := ClusterSpeeds(speeds, modules, 2, 4)
	want := []float64{1, 0.5, 1, 0.8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ClusterSpeeds = %v, want %v", got, want)
	}
	// Survivor compaction: module 2 dead, survivors renumber the grid.
	surv := []int{0, 1, 3, 4, 5, 6}
	got = ClusterSpeeds(speeds, surv, 2, 3)
	want = []float64{1, 1, 0.8}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("survivor ClusterSpeeds = %v, want %v", got, want)
	}
	// Nil speeds read healthy.
	got = ClusterSpeeds(nil, modules, 2, 4)
	for _, s := range got {
		if s != 1 {
			t.Fatalf("nil speeds gave %v", got)
		}
	}
}

func TestShardStretchAndImbalance(t *testing.T) {
	if s := ShardStretch([]int{16, 16, 16, 16}, []float64{1, 1, 1, 1}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("healthy equal stretch = %v, want 1", s)
	}
	if s := ShardStretch([]int{16, 16, 16, 16}, []float64{1, 1, 1, 0.5}); math.Abs(s-2) > 1e-12 {
		t.Fatalf("straggler equal stretch = %v, want 2", s)
	}
	if im := ImbalancePermille([]int{16, 16, 16, 16}); im != 0 {
		t.Fatalf("even imbalance = %d", im)
	}
	if im := ImbalancePermille([]int{18, 16, 14, 16}); im != (18-14)*1000/14 {
		t.Fatalf("imbalance = %d", im)
	}
}

func TestLowerBoundBytes(t *testing.T) {
	layers := model.FiveLayers()
	cfgs := DefaultConfigs(256)
	for _, l := range layers {
		bound := LowerBoundBytes(l.P, 64, cfgs)
		if bound <= 0 {
			t.Fatalf("layer %s: bound %d", l.Name, bound)
		}
		// The bound is the menu minimum: no no-reduction config beats it.
		for _, cfg := range cfgs {
			s, tr := StrategyFor(cfg, l.P.K, false, Reductions{})
			if v := LayerVolumes(tr, l.P, 64, s); v.Total() < bound {
				t.Errorf("layer %s: config %+v moves %d < bound %d", l.Name, cfg, v.Total(), bound)
			}
		}
	}
}
