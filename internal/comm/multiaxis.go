package comm

import (
	"mptwino/internal/conv"
	"mptwino/internal/winograd"
)

// This file extends the paper's two-axis (Ng, Nc) communication model to
// the four-axis strategy space the per-layer auto-search planner explores
// (internal/planner): Ng Winograd-element groups × Nc batch clusters ×
// Nf filter (output-channel) shards × Ni input-channel shards, with
// Ng·Nc·Nf·Ni = p. The extra axes follow Jia et al. ("Exploring Hidden
// Dimensions in Parallelizing CNNs"): sharding filters replicates input
// tiles, sharding input channels leaves partial output sums that a new
// intra-cell reduction collective must combine.
//
// Traffic accounting (per worker, per iteration, bytes). One cluster owns
// the batch shard B/Nc; its cell of D = Ng·Nf·Ni workers initially holds
// the shard's tiles uniformly in position-major order (1/D each). Worker
// (g, f, i) of the cell computes, for group g's T²/Ng elements, the
// partial GEMM X[rows, In/Ni]·W[In/Ni, Out/Nf]:
//
//   - scatter (fprop X):   need = inT/(Nc·Ng·Ni); the resident fraction of
//     the need is 1/D, so (D−1)/D of it crosses the cell fabric. The
//     legacy two-axis formula is the D = Ng special case.
//   - partial-sum reduce (fprop Y): the Ni channel shards hold partial
//     sums of the same outT/(Nc·Ng·Nf) values; a ring reduce moves
//     (Ni−1)/Ni of that payload per worker.
//   - gather (fprop Y): the reduced output tiles return to position-major
//     layout, (D−1)/D of the outT/(Nc·Ng·Nf) payload crossing.
//   - bprop mirrors with X and Y swapped: dY scattered over (g, f), dX
//     gathered over (g, i), dX partial sums reduced across Nf.
//   - updateGrad: each worker's dW shard shrinks to |W|/(Ng·Nf·Ni) and
//     ring-reduces across the Nc clusters; X and dY shards are already
//     co-located from the forward/backward scatters, so no extra traffic.
//
// Every formula degenerates to the legacy model at Nf = Ni = 1 (checked
// bit-exactly by TestExtendedVolumesDegenerate).

// layerVolumesExt computes per-worker volumes for an extended strategy.
func layerVolumesExt(tr *winograd.Transform, p conv.Params, batch int, s Strategy) Volumes {
	ng, nc := s.Ng, s.Nc
	d := s.Cell()

	var v Volumes

	// Weight collective: the Winograd-domain shard is split across the
	// whole cell, rung across clusters.
	wBytes := WinogradWeightBytes(tr, p) / int64(d)
	v.Weight = RingCollectivePerWorker(wBytes, nc)
	if d == 1 {
		// Degenerate single-worker cell: pure data parallelism in the
		// Winograd domain keeps spatial weights (Table IV "update w").
		v.Weight = RingCollectivePerWorker(SpatialWeightBytes(p), s.Workers())
		return v
	}

	sF, gF, pF := ExtPhaseVolumes(tr, p, batch, s, false)
	sB, gB, pB := ExtPhaseVolumes(tr, p, batch, s, true)
	gather := gF + gB
	scatter := sF + sB

	if winograd.HoldsWholeLines(tr.T, ng) && ng > 1 {
		// Whole-line ownership enables the 1-D inverse transform at the
		// source, shrinking gathered data from T to M values per line.
		gather = gather * float64(tr.M) / float64(tr.T)
	}

	v.TileGather = int64(gather * (1 - s.GatherReduction))
	v.TileScatter = int64(scatter * (1 - s.ScatterReduction))
	v.PartialSum = int64(pF + pB)
	return v
}

// ExtPhaseVolumes returns the raw (dense, un-reduced) per-worker traffic
// of one training phase under an extended strategy, in bytes: the tile
// scatter, the tile gather, and the intra-cell partial-sum reduction.
// backward=false is fprop (scatter X, reduce+gather Y); backward=true is
// bprop (scatter dY, reduce+gather dX). Callers apply the Section V
// reductions, the 1-D gather shrink, and gather scaling themselves —
// partial sums take none of them (they move not-yet-final sums).
func ExtPhaseVolumes(tr *winograd.Transform, p conv.Params, batch int, s Strategy, backward bool) (scatter, gather, partial float64) {
	ng, nc := s.Ng, s.Nc
	nf, ni := s.FilterShards(), s.ChannelShards()
	d := s.Cell()
	if d <= 1 {
		return 0, 0, 0
	}
	inT := float64(TileBytes(tr, p, batch, p.In))
	outT := float64(TileBytes(tr, p, batch, p.Out))

	// Per-worker payloads of the two tile roles inside one cluster.
	inNeed := inT / float64(nc*ng*ni)   // X / dX payload per worker
	outNeed := outT / float64(nc*ng*nf) // Y / dY payload per worker
	crossing := float64(d-1) / float64(d)

	if backward {
		// bprop: scatter dY over (g, f), gather dX over (g, i), reduce
		// the dX partial sums across the Nf filter shards.
		return outNeed * crossing, inNeed * crossing, inNeed * float64(nf-1) / float64(nf)
	}
	// fprop: scatter X over (g, i), gather Y over (g, f), reduce the Y
	// partial sums across the Ni input-channel shards.
	return inNeed * crossing, outNeed * crossing, outNeed * float64(ni-1) / float64(ni)
}

// Factorization is one ordered (Ng, Nc, Nf, Ni) split of the fleet.
type Factorization struct {
	Ng, Nc, Nf, Ni int
}

// Product returns Ng·Nc·Nf·Ni.
func (f Factorization) Product() int { return f.Ng * f.Nc * f.Nf * f.Ni }

// Factorizations enumerates every ordered (Ng, Nc, Nf, Ni) factorization
// of p workers, in deterministic lexicographic order (Ng outermost). The
// planner filters the list per layer (Ng ≤ T², Nc ≤ batch, Nf ≤ Out,
// Ni ≤ In); callers must not rely on any additional ordering property.
func Factorizations(p int) []Factorization {
	var out []Factorization
	for ng := 1; ng <= p; ng++ {
		if p%ng != 0 {
			continue
		}
		rem1 := p / ng
		for nc := 1; nc <= rem1; nc++ {
			if rem1%nc != 0 {
				continue
			}
			rem2 := rem1 / nc
			for nf := 1; nf <= rem2; nf++ {
				if rem2%nf != 0 {
					continue
				}
				out = append(out, Factorization{Ng: ng, Nc: nc, Nf: nf, Ni: rem2 / nf})
			}
		}
	}
	return out
}
