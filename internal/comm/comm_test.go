package comm

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"

	"mptwino/internal/conv"
	"mptwino/internal/model"
	"mptwino/internal/winograd"
)

var earlyLayer = conv.Params{In: 64, Out: 128, K: 3, Pad: 1, H: 112, W: 112}
var lateLayer = conv.Params{In: 512, Out: 512, K: 3, Pad: 1, H: 7, W: 7}

func TestRingCollectivePerWorker(t *testing.T) {
	if RingCollectivePerWorker(1000, 1) != 0 {
		t.Fatal("single worker should not communicate")
	}
	// (p-1)/p of the message per worker.
	if got := RingCollectivePerWorker(1000, 4); got != 750 {
		t.Fatalf("got %d, want 750", got)
	}
	// Approaches the full message size with large p.
	if got := RingCollectivePerWorker(1000, 1000); got != 999 {
		t.Fatalf("got %d, want 999", got)
	}
}

func TestTileTransferPerWorker(t *testing.T) {
	if TileTransferPerWorker(1<<20, 1, 256) != 0 {
		t.Fatal("single group should not transfer tiles")
	}
	// tiles/(nc·ng) held, (ng-1)/ng leaves.
	got := TileTransferPerWorker(1<<20, 4, 64)
	want := int64(1<<20) / 64 / 4 * 3 / 4
	if got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestWeightBytes(t *testing.T) {
	if got := SpatialWeightBytes(lateLayer); got != 4*512*512*9 {
		t.Fatalf("spatial = %d", got)
	}
	if got := WinogradWeightBytes(winograd.F2x2_3x3, lateLayer); got != 4*512*512*16 {
		t.Fatalf("winograd = %d", got)
	}
}

func TestTileBytes(t *testing.T) {
	// 7x7 output with m=2 → 4x4 tile grid; 16 tiles × T²=16 els × 4B.
	got := TileBytes(winograd.F2x2_3x3, lateLayer, 256, 512)
	want := int64(4) * 256 * 16 * 512 * 16
	if got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestStrategyValidate(t *testing.T) {
	if err := (Strategy{Ng: 0, Nc: 1}).Validate(); err == nil {
		t.Fatal("Ng=0 accepted")
	}
	if err := (Strategy{Ng: 1, Nc: 1, GatherReduction: 1.5}).Validate(); err == nil {
		t.Fatal("reduction > 1 accepted")
	}
	if err := (Strategy{Ng: 16, Nc: 16}).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDataParallelWeightConstant reproduces the paper's scalability
// observation: data-parallel per-worker weight traffic is nearly constant
// in p, while MPT traffic shrinks.
func TestDataParallelWeightConstant(t *testing.T) {
	tr := winograd.F2x2_3x3
	v64 := LayerVolumes(tr, lateLayer, 256, Strategy{Ng: 1, Nc: 64, Winograd: true})
	v256 := LayerVolumes(tr, lateLayer, 256, Strategy{Ng: 1, Nc: 256, Winograd: true})
	ratio := float64(v256.Weight) / float64(v64.Weight)
	if ratio < 0.99 || ratio > 1.02 {
		t.Fatalf("dp weight traffic not ~constant: ratio %v", ratio)
	}

	m64 := LayerVolumes(tr, lateLayer, 256, Strategy{Ng: 8, Nc: 8, Winograd: true})
	m256 := LayerVolumes(tr, lateLayer, 256, Strategy{Ng: 16, Nc: 16, Winograd: true})
	if m256.Weight >= m64.Weight {
		t.Fatalf("MPT weight traffic should shrink with p: %d -> %d", m64.Weight, m256.Weight)
	}
}

// TestMPTWeightFormula checks the Section III-C expression
// |W|/Ng · (Nc−1)/Nc exactly.
func TestMPTWeightFormula(t *testing.T) {
	tr := winograd.F2x2_3x3
	s := Strategy{Ng: 16, Nc: 16, Winograd: true}
	v := LayerVolumes(tr, lateLayer, 256, s)
	want := RingCollectivePerWorker(WinogradWeightBytes(tr, lateLayer)/16, 16)
	if v.Weight != want {
		t.Fatalf("weight = %d, want %d", v.Weight, want)
	}
}

// TestTileVsWeightByLayerClass reproduces Fig. 6's comparison at p=256:
// for the early layer (huge feature maps) MPT's added tile transfer makes
// it communicate *more* than data parallelism, while for the late layer
// (large weights) MPT communicates less — the imbalance dynamic clustering
// exists to exploit.
func TestTileVsWeightByLayerClass(t *testing.T) {
	tr := winograd.F2x2_3x3
	mpt := Strategy{Ng: 16, Nc: 16, Winograd: true}
	dp := Strategy{Ng: 1, Nc: 256, Winograd: true}

	earlyMPT := LayerVolumes(tr, earlyLayer, 256, mpt)
	earlyDP := LayerVolumes(tr, earlyLayer, 256, dp)
	if earlyMPT.Total() < 10*earlyDP.Total() {
		t.Fatalf("early layer: MPT (%d) should dwarf dp (%d)", earlyMPT.Total(), earlyDP.Total())
	}
	// And the early layer under MPT must be tile-dominated.
	if earlyMPT.TileGather+earlyMPT.TileScatter < 10*earlyMPT.Weight {
		t.Fatalf("early layer should be tile-dominated: %+v", earlyMPT)
	}

	lateMPT := LayerVolumes(tr, lateLayer, 256, mpt)
	lateDP := LayerVolumes(tr, lateLayer, 256, dp)
	if lateMPT.Total() >= lateDP.Total() {
		t.Fatalf("late layer: MPT (%d) should beat dp (%d)", lateMPT.Total(), lateDP.Total())
	}
}

// Property: total per-worker MPT traffic decreases monotonically as p
// grows with Ng=Nc=√p (Fig. 7's key trend), for any layer geometry.
func TestMPTTrafficShrinksWithP(t *testing.T) {
	f := func(seed uint64) bool {
		r := newRand(seed)
		p := conv.Params{
			In:  8 << r.Intn(4),
			Out: 8 << r.Intn(4),
			K:   3, Pad: 1,
			H: 8 << r.Intn(4), W: 8 << r.Intn(4),
		}
		tr := winograd.F2x2_3x3
		prev := int64(math.MaxInt64)
		for _, root := range []int{2, 4, 8, 16} {
			v := LayerVolumes(tr, p, 256, Strategy{Ng: root, Nc: root, Winograd: true})
			if v.Total() > prev {
				return false
			}
			prev = v.Total()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestOneDOptimizationShrinksGather(t *testing.T) {
	tr := winograd.F2x2_3x3 // T=4, m=2
	// Ng=4 holds whole lines → gather shrinks by m/T = 1/2 vs element case.
	s4 := Strategy{Ng: 4, Nc: 64, Winograd: true}
	s16 := Strategy{Ng: 16, Nc: 16, Winograd: true}
	v4 := LayerVolumes(tr, earlyLayer, 256, s4)
	v16 := LayerVolumes(tr, earlyLayer, 256, s16)
	// Per the formulas, gather_4 = tiles/(256)·(3/4)·(1/2) and
	// gather_16 = tiles/(256)·(15/16); confirm the 1-D factor is present.
	outTiles := TileBytes(tr, earlyLayer, 256, earlyLayer.Out)
	inTiles := TileBytes(tr, earlyLayer, 256, earlyLayer.In)
	wantG4 := (TileTransferPerWorker(outTiles, 4, 64) + TileTransferPerWorker(inTiles, 4, 64)) / 2
	if v4.TileGather != wantG4 {
		t.Fatalf("1D gather = %d, want %d", v4.TileGather, wantG4)
	}
	if v16.TileGather <= v4.TileGather {
		t.Fatal("16-group gather should exceed 4-group (no 1-D optimization)")
	}
}

func TestReductionsApplied(t *testing.T) {
	tr := winograd.F2x2_3x3
	base := Strategy{Ng: 16, Nc: 16, Winograd: true}
	red := Strategy{Ng: 16, Nc: 16, Winograd: true, GatherReduction: 0.34, ScatterReduction: 0.393}
	vb := LayerVolumes(tr, earlyLayer, 256, base)
	vr := LayerVolumes(tr, earlyLayer, 256, red)
	if got, want := vr.TileGather, int64(float64(vb.TileGather)*0.66); got != want {
		t.Fatalf("gather reduction: got %d, want %d", got, want)
	}
	if got, want := vr.TileScatter, int64(float64(vb.TileScatter)*0.607); got != want {
		t.Fatalf("scatter reduction: got %d, want %d", got, want)
	}
	if vr.Weight != vb.Weight {
		t.Fatal("reductions must not touch weight traffic")
	}
}

func TestDefaultConfigs(t *testing.T) {
	cfgs := DefaultConfigs(256)
	if len(cfgs) != 3 {
		t.Fatalf("want 3 configs for p=256, got %v", cfgs)
	}
	want := []ClusterConfig{{16, 16}, {4, 64}, {1, 256}}
	for i, w := range want {
		if cfgs[i] != w {
			t.Fatalf("configs = %v", cfgs)
		}
	}
	// p=8 drops the 16-group wiring.
	cfgs = DefaultConfigs(8)
	if len(cfgs) != 2 || cfgs[0].Ng != 4 {
		t.Fatalf("p=8 configs = %v", cfgs)
	}
}

// TestDynamicClusteringPrefersDataParallelEarly: early layers should pick
// Ng=1 (pure data parallelism) and late layers Ng=16 — the Section VII-B
// narrative ("w_mp+ was configured as (1,256)" for Early).
func TestDynamicClusteringByLayer(t *testing.T) {
	f := DefaultFabric()
	red := PaperReductions()
	cfgE, _ := ChooseClustering(earlyLayer, 256, DefaultConfigs(256), f, true, red)
	if cfgE.Ng != 1 {
		t.Fatalf("early layer chose Ng=%d, want 1", cfgE.Ng)
	}
	cfgL, _ := ChooseClustering(lateLayer, 256, DefaultConfigs(256), f, true, red)
	if cfgL.Ng < 4 {
		t.Fatalf("late layer chose Ng=%d, want >= 4", cfgL.Ng)
	}
}

// TestDynamicBeatsFixed: over a whole network, dynamic clustering's
// communication time must never exceed the best fixed configuration
// (Fig. 7 reports ~1.4× reduction at p=256 vs fixed √p×√p).
func TestDynamicBeatsFixed(t *testing.T) {
	net := model.FractalNet44()
	f := DefaultFabric()
	red := PaperReductions()
	dyn, choices := NetworkVolumesDynamic(net, 256, f, true, red)
	if len(choices) != len(net.Layers) {
		t.Fatal("choice per layer missing")
	}
	dynTime := f.EstimateTime(dyn)
	for _, cfg := range DefaultConfigs(256) {
		s, tr := StrategyFor(cfg, 3, true, red)
		fixed := NetworkVolumes(net, tr, s)
		if dynTime > f.EstimateTime(fixed)*1.0001 {
			t.Fatalf("dynamic (%v) worse than fixed %+v (%v)", dynTime, cfg, f.EstimateTime(fixed))
		}
	}
}

func TestStrategyForTransformSelection(t *testing.T) {
	s, tr := StrategyFor(ClusterConfig{Ng: 1, Nc: 256}, 3, false, Reductions{})
	if tr != winograd.F4x4_3x3 || s.Ng != 1 {
		t.Fatal("Ng=1 should select F(4x4,3x3)")
	}
	_, tr = StrategyFor(ClusterConfig{Ng: 16, Nc: 16}, 3, false, Reductions{})
	if tr != winograd.F2x2_3x3 {
		t.Fatal("Ng=16 should select F(2x2,3x3)")
	}
	_, tr = StrategyFor(ClusterConfig{Ng: 4, Nc: 64}, 5, false, Reductions{})
	if tr != winograd.F2x2_5x5 {
		t.Fatal("k=5 should select F(2x2,5x5)")
	}
}

func TestReductionsGet(t *testing.T) {
	r := PaperReductions()
	g, s := r.Get(4, 1)
	if g != 0 || s != 0 {
		t.Fatal("single group should have no reductions")
	}
	g, s = r.Get(4, 4)
	if g != r.Gather1D || s != r.Scatter1D {
		t.Fatal("whole-line groups should use 1-D reductions")
	}
	g, s = r.Get(4, 16)
	if g != r.Gather2D || s != r.Scatter2D {
		t.Fatal("element groups should use 2-D reductions")
	}
}

func TestNetworkVolumesRespectsRepeatAndGatherScale(t *testing.T) {
	tr := winograd.F2x2_3x3
	s := Strategy{Ng: 16, Nc: 16, Winograd: true}
	l := model.Layer{Name: "x", P: lateLayer}
	net1 := model.Network{Name: "n1", Batch: 256, Layers: []model.Layer{l}}
	l2 := l
	l2.Repeat = 3
	net3 := model.Network{Name: "n3", Batch: 256, Layers: []model.Layer{l2}}
	v1 := NetworkVolumes(net1, tr, s)
	v3 := NetworkVolumes(net3, tr, s)
	if v3.Total() != 3*v1.Total() {
		t.Fatalf("repeat not honored: %d vs %d", v3.Total(), v1.Total())
	}
	lg := l
	lg.GatherScale = 0.5
	netG := model.Network{Name: "ng", Batch: 256, Layers: []model.Layer{lg}}
	vg := NetworkVolumes(netG, tr, s)
	if vg.TileGather != v1.TileGather/2 {
		t.Fatalf("gather scale not honored: %d vs %d", vg.TileGather, v1.TileGather)
	}
}

func TestModelCatalogSanity(t *testing.T) {
	wrn := model.WRN40x10()
	// Table I: WRN-40-10 has ≈55.5M 3×3 parameters.
	if pc := wrn.ParamCount(); pc < 54e6 || pc > 57e6 {
		t.Fatalf("WRN-40-10 params = %d, want ~55.5M", pc)
	}
	rn := model.ResNet34()
	if pc := rn.ParamCount(); pc < 19e6 || pc > 24e6 {
		t.Fatalf("ResNet-34 params = %d, want ~21M", pc)
	}
	fn := model.FractalNet44()
	// Table I: ≈164M; our reconstruction lands within ~15%.
	if pc := fn.ParamCount(); pc < 140e6 || pc > 195e6 {
		t.Fatalf("FractalNet params = %d, want ~164M", pc)
	}
	if len(model.FiveLayers()) != 5 || len(model.FiveLayers5x5()) != 5 {
		t.Fatal("five-layer catalogs wrong length")
	}
	for _, l := range model.FiveLayers5x5() {
		if l.P.K != 5 || l.P.Pad != 2 {
			t.Fatalf("5x5 variant wrong: %+v", l.P)
		}
	}
}

// newRand adapts tensor's RNG without importing it (avoid a test-only dep
// cycle); SplitMix64 inline.
type testRand struct{ s uint64 }

func newRand(seed uint64) *testRand { return &testRand{s: seed} }

func (r *testRand) Intn(n int) int {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(n))
}

// TestChooseClusteringFor5x5 exercises dynamic clustering under the 5×5
// kernel menu: the chooser must return a valid configuration and stay
// deterministic.
func TestChooseClusteringFor5x5(t *testing.T) {
	f := DefaultFabric()
	red := PaperReductions()
	l := model.FiveLayers5x5()[3]
	cfg1, v1 := ChooseClustering(l.P, 256, DefaultConfigs(256), f, true, red)
	cfg2, v2 := ChooseClustering(l.P, 256, DefaultConfigs(256), f, true, red)
	if cfg1 != cfg2 || v1 != v2 {
		t.Fatal("ChooseClustering not deterministic")
	}
	if cfg1.Ng*cfg1.Nc != 256 {
		t.Fatalf("chosen config %+v does not cover 256 workers", cfg1)
	}
}

// TestEstimateTimeComposition: the fabric time estimate must be the sum of
// the two fabrics' terms with the collective counted both directions.
func TestEstimateTimeComposition(t *testing.T) {
	fab := Fabric{RingBW: 10e9, TileBW: 5e9}
	v := Volumes{Weight: 10e9, TileGather: 5e9, TileScatter: 5e9}
	got := fab.EstimateTime(v)
	want := 2.0*10e9/10e9 + (5e9+5e9)/5e9
	if got != want {
		t.Fatalf("EstimateTime = %v, want %v", got, want)
	}
}

// TestVolumesTotalAndScale covers the arithmetic helpers.
func TestVolumesTotalAndScale(t *testing.T) {
	v := Volumes{Weight: 1, TileGather: 2, TileScatter: 3}
	if v.Total() != 6 {
		t.Fatalf("Total = %d", v.Total())
	}
	s := v.scale(3)
	if s.Weight != 3 || s.TileGather != 6 || s.TileScatter != 9 {
		t.Fatalf("scale = %+v", s)
	}
	a := v.add(s)
	if a.Total() != 24 {
		t.Fatalf("add = %+v", a)
	}
}
