package conv

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"

	"mptwino/internal/tensor"
)

func randTensors(p Params, b int, seed uint64) (x, w *tensor.Tensor) {
	r := tensor.NewRNG(seed)
	x = tensor.New(b, p.In, p.H, p.W)
	w = tensor.New(p.Out, p.In, p.K, p.K)
	r.FillNormal(x, 0, 1)
	r.FillHe(w, p.In*p.K*p.K)
	return x, w
}

func TestParamsValidate(t *testing.T) {
	good := Params{In: 3, Out: 8, K: 3, Pad: 1, H: 8, W: 8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{In: 0, Out: 8, K: 3, Pad: 1, H: 8, W: 8},
		{In: 3, Out: 0, K: 3, Pad: 1, H: 8, W: 8},
		{In: 3, Out: 8, K: 0, Pad: 1, H: 8, W: 8},
		{In: 3, Out: 8, K: 3, Pad: -1, H: 8, W: 8},
		{In: 3, Out: 8, K: 9, Pad: 0, H: 4, W: 4}, // empty output
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestSamePadKeepsSize(t *testing.T) {
	for _, k := range []int{1, 3, 5, 7} {
		p := Params{In: 1, Out: 1, K: k, Pad: SamePad(k), H: 10, W: 10}
		if p.OutH() != 10 || p.OutW() != 10 {
			t.Fatalf("k=%d: same-pad output %dx%d", k, p.OutH(), p.OutW())
		}
	}
}

func TestFpropIdentityKernel(t *testing.T) {
	// A 3x3 kernel with 1 in the center and same-padding is the identity.
	p := Params{In: 1, Out: 1, K: 3, Pad: 1, H: 5, W: 5}
	x, _ := randTensors(p, 2, 3)
	w := tensor.New(1, 1, 3, 3)
	w.Set(0, 0, 1, 1, 1)
	y := Fprop(p, x, w)
	if d := y.MaxAbsDiff(x); d != 0 {
		t.Fatalf("identity kernel changed input, maxdiff=%v", d)
	}
}

func TestFpropKnownValues(t *testing.T) {
	// 1x1 input channel, 3x3 input, 2x2 kernel, no padding: hand-checkable.
	p := Params{In: 1, Out: 1, K: 2, Pad: 0, H: 3, W: 3}
	x := tensor.FromSlice(1, 1, 3, 3, []float32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	w := tensor.FromSlice(1, 1, 2, 2, []float32{1, 0, 0, 1})
	y := Fprop(p, x, w)
	want := []float32{1 + 5, 2 + 6, 4 + 8, 5 + 9}
	for i, v := range want {
		if y.Data[i] != v {
			t.Fatalf("y[%d] = %v, want %v", i, y.Data[i], v)
		}
	}
}

func TestFpropMultiChannelAccumulates(t *testing.T) {
	// Two input channels with identical content and a kernel of all ones in
	// each: output must be exactly 2x the single-channel result.
	p1 := Params{In: 1, Out: 1, K: 3, Pad: 1, H: 6, W: 6}
	p2 := Params{In: 2, Out: 1, K: 3, Pad: 1, H: 6, W: 6}
	x1, _ := randTensors(p1, 1, 5)
	x2 := tensor.New(1, 2, 6, 6)
	copy(x2.Data[:36], x1.Data)
	copy(x2.Data[36:], x1.Data)
	w1 := tensor.New(1, 1, 3, 3)
	for i := range w1.Data {
		w1.Data[i] = 1
	}
	w2 := tensor.New(1, 2, 3, 3)
	for i := range w2.Data {
		w2.Data[i] = 1
	}
	y1 := Fprop(p1, x1, w1)
	y2 := Fprop(p2, x2, w2)
	y1.Scale(2)
	if d := y2.MaxAbsDiff(y1); d > 1e-5 {
		t.Fatalf("channel accumulation wrong, maxdiff=%v", d)
	}
}

func TestIm2colMatchesFprop(t *testing.T) {
	p := Params{In: 3, Out: 4, K: 3, Pad: 1, H: 7, W: 6}
	x, w := randTensors(p, 2, 7)
	y1 := Fprop(p, x, w)
	y2 := FpropIm2col(p, x, w)
	if d := y1.MaxAbsDiff(y2); d > 1e-4 {
		t.Fatalf("im2col path diverges from direct loops, maxdiff=%v", d)
	}
}

func TestIm2colMatchesFpropNoPad(t *testing.T) {
	p := Params{In: 2, Out: 3, K: 5, Pad: 0, H: 9, W: 9}
	x, w := randTensors(p, 1, 11)
	y1 := Fprop(p, x, w)
	y2 := FpropIm2col(p, x, w)
	if d := y1.MaxAbsDiff(y2); d > 1e-4 {
		t.Fatalf("im2col (5x5, pad 0) diverges, maxdiff=%v", d)
	}
}

// lossOf computes L = 0.5 Σ y², the test loss whose gradient is dy = y.
func lossOf(y *tensor.Tensor) float64 {
	var s float64
	for _, v := range y.Data {
		s += 0.5 * float64(v) * float64(v)
	}
	return s
}

// TestBpropFiniteDifference gradient-checks dx against numeric perturbation
// of the loss L = 0.5||y||².
func TestBpropFiniteDifference(t *testing.T) {
	p := Params{In: 2, Out: 3, K: 3, Pad: 1, H: 4, W: 4}
	x, w := randTensors(p, 1, 13)
	y := Fprop(p, x, w)
	dx := Bprop(p, y, w) // dy = y for this loss

	const eps = 1e-3
	// Check a scattering of positions, not all, to keep the test fast.
	r := tensor.NewRNG(99)
	for trial := 0; trial < 12; trial++ {
		idx := r.Intn(x.Len())
		orig := x.Data[idx]
		x.Data[idx] = orig + eps
		lp := lossOf(Fprop(p, x, w))
		x.Data[idx] = orig - eps
		lm := lossOf(Fprop(p, x, w))
		x.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dx.Data[idx])
		if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
			t.Fatalf("dx[%d]: numeric %v vs analytic %v", idx, numeric, analytic)
		}
	}
}

// TestUpdateGradFiniteDifference gradient-checks dw the same way.
func TestUpdateGradFiniteDifference(t *testing.T) {
	p := Params{In: 2, Out: 2, K: 3, Pad: 1, H: 4, W: 4}
	x, w := randTensors(p, 2, 17)
	y := Fprop(p, x, w)
	dw := UpdateGrad(p, x, y) // dy = y

	const eps = 1e-3
	r := tensor.NewRNG(101)
	for trial := 0; trial < 12; trial++ {
		idx := r.Intn(w.Len())
		orig := w.Data[idx]
		w.Data[idx] = orig + eps
		lp := lossOf(Fprop(p, x, w))
		w.Data[idx] = orig - eps
		lm := lossOf(Fprop(p, x, w))
		w.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		analytic := float64(dw.Data[idx])
		if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
			t.Fatalf("dw[%d]: numeric %v vs analytic %v", idx, numeric, analytic)
		}
	}
}

// Property: fprop is linear in the input — Fprop(a·x) = a·Fprop(x).
func TestFpropLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		p := Params{In: 1 + r.Intn(3), Out: 1 + r.Intn(3), K: 3, Pad: 1,
			H: 3 + r.Intn(4), W: 3 + r.Intn(4)}
		x, w := randTensors(p, 1, seed+1)
		alpha := float32(0.5 + r.Float64())
		y1 := Fprop(p, x, w)
		y1.Scale(alpha)
		xs := x.Clone()
		xs.Scale(alpha)
		y2 := Fprop(p, xs, w)
		return y1.MaxAbsDiff(y2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the adjoint identity <Fprop(x), dy> == <x, Bprop(dy)>, which
// holds exactly when Bprop is the true transpose of Fprop.
func TestBpropIsAdjointOfFprop(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		p := Params{In: 1 + r.Intn(2), Out: 1 + r.Intn(2), K: 3, Pad: 1,
			H: 3 + r.Intn(3), W: 3 + r.Intn(3)}
		x, w := randTensors(p, 1, seed+2)
		dy := tensor.New(1, p.Out, p.OutH(), p.OutW())
		r.FillNormal(dy, 0, 1)
		y := Fprop(p, x, w)
		dx := Bprop(p, dy, w)
		var lhs, rhs float64
		for i := range y.Data {
			lhs += float64(y.Data[i]) * float64(dy.Data[i])
		}
		for i := range x.Data {
			rhs += float64(x.Data[i]) * float64(dx.Data[i])
		}
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestCostsArePositiveAndScaleWithBatch(t *testing.T) {
	p := Params{In: 64, Out: 128, K: 3, Pad: 1, H: 56, W: 56}
	c1 := FpropCost(p, 1)
	c2 := FpropCost(p, 2)
	if c1.MACs <= 0 || c1.Total() <= 0 {
		t.Fatal("non-positive cost")
	}
	if c2.MACs != 2*c1.MACs {
		t.Fatalf("MACs not linear in batch: %d vs %d", c2.MACs, c1.MACs)
	}
	if c2.WeightByte != c1.WeightByte {
		t.Fatal("weight bytes should not scale with batch")
	}
	// updateGrad and fprop have the same MAC count.
	if UpdateGradCost(p, 4).MACs != FpropCost(p, 4).MACs {
		t.Fatal("updateGrad MACs should equal fprop MACs")
	}
	// bprop swaps the input/output byte roles.
	bc := BpropCost(p, 4)
	fc := FpropCost(p, 4)
	if bc.InputByte != fc.OutputByte || bc.OutputByte != fc.InputByte {
		t.Fatal("bprop byte roles not swapped")
	}
}

func TestFpropShapePanics(t *testing.T) {
	p := Params{In: 2, Out: 2, K: 3, Pad: 1, H: 4, W: 4}
	x := tensor.New(1, 3, 4, 4) // wrong channel count
	w := tensor.New(2, 2, 3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Fprop with wrong input channels did not panic")
		}
	}()
	Fprop(p, x, w)
}

// Property: UpdateGrad is the weight-adjoint of Fprop:
// <UpdateGrad(x,dy), v> == <dy, Fprop(x,v)> for any weight-shaped v.
func TestUpdateGradIsWeightAdjoint(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		p := Params{In: 1 + r.Intn(2), Out: 1 + r.Intn(2), K: 3, Pad: 1,
			H: 3 + r.Intn(3), W: 3 + r.Intn(3)}
		x := tensor.New(1, p.In, p.H, p.W)
		dy := tensor.New(1, p.Out, p.OutH(), p.OutW())
		v := tensor.New(p.Out, p.In, 3, 3)
		r.FillNormal(x, 0, 1)
		r.FillNormal(dy, 0, 1)
		r.FillNormal(v, 0, 1)
		dw := UpdateGrad(p, x, dy)
		var lhs float64
		for i := range dw.Data {
			lhs += float64(dw.Data[i]) * float64(v.Data[i])
		}
		y := Fprop(p, x, v)
		var rhs float64
		for i := range y.Data {
			rhs += float64(dy.Data[i]) * float64(y.Data[i])
		}
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: convolving with a shifted delta kernel translates the output
// (translation equivariance of stride-1 same-padded convolution, away from
// borders).
func TestFpropTranslationEquivariance(t *testing.T) {
	p := Params{In: 1, Out: 1, K: 3, Pad: 1, H: 8, W: 8}
	r := tensor.NewRNG(123)
	x := tensor.New(1, 1, 8, 8)
	r.FillNormal(x, 0, 1)
	// Kernel = delta at (1,2): shifts the image left by one column.
	w := tensor.New(1, 1, 3, 3)
	w.Set(0, 0, 1, 2, 1)
	y := Fprop(p, x, w)
	for h := 0; h < 8; h++ {
		for ww := 0; ww < 7; ww++ {
			if y.At(0, 0, h, ww) != x.At(0, 0, h, ww+1) {
				t.Fatalf("shift kernel wrong at (%d,%d)", h, ww)
			}
		}
	}
}
