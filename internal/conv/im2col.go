package conv

import "mptwino/internal/tensor"

// Im2col lowers the input tensor x to a matrix of shape
// (In*K*K) × (B*OutH*OutW) so that the whole convolution becomes one large
// matrix multiplication — the single-matmul structure the paper contrasts
// with the T² small independent matmuls of the Winograd domain (Fig. 3).
// Out-of-bounds taps contribute zeros (padding).
func Im2col(p Params, x *tensor.Tensor) *tensor.Mat {
	p.checkX(x)
	oh, ow := p.OutH(), p.OutW()
	rows := p.In * p.K * p.K
	cols := x.N * oh * ow
	m := tensor.NewMat(rows, cols)
	for i := 0; i < p.In; i++ {
		for kh := 0; kh < p.K; kh++ {
			for kw := 0; kw < p.K; kw++ {
				r := (i*p.K+kh)*p.K + kw
				row := m.Data[r*cols : (r+1)*cols]
				col := 0
				for b := 0; b < x.N; b++ {
					for yy := 0; yy < oh; yy++ {
						ih := yy + kh - p.Pad
						for xx := 0; xx < ow; xx++ {
							iw := xx + kw - p.Pad
							if ih >= 0 && ih < p.H && iw >= 0 && iw < p.W {
								row[col] = x.At(b, i, ih, iw)
							}
							col++
						}
					}
				}
			}
		}
	}
	return m
}

// FpropIm2col computes the same result as Fprop through the lowered
// matmul path: Y = Wmat · Im2col(x), then reshapes back to NCHW.
func FpropIm2col(p Params, x, w *tensor.Tensor) *tensor.Tensor {
	p.checkW(w)
	lowered := Im2col(p, x)
	wm := tensor.MatFromSlice(p.Out, p.In*p.K*p.K, w.Data)
	ym := tensor.MatMul(wm, lowered)
	oh, ow := p.OutH(), p.OutW()
	y := tensor.New(x.N, p.Out, oh, ow)
	// ym is (Out) × (B*oh*ow) with column order (b, yy, xx).
	for j := 0; j < p.Out; j++ {
		row := ym.Data[j*ym.Cols : (j+1)*ym.Cols]
		col := 0
		for b := 0; b < x.N; b++ {
			for yy := 0; yy < oh; yy++ {
				for xx := 0; xx < ow; xx++ {
					y.Set(b, j, yy, xx, row[col])
					col++
				}
			}
		}
	}
	return y
}

// Cost reports the algorithmic cost of one direct-convolution phase:
// multiply-accumulate operations and the bytes of unique data touched
// (inputs read + weights read + outputs written, FP32). It backs Fig. 1's
// compute-vs-access comparison.
type Cost struct {
	MACs       int64 // multiply-accumulate operations
	InputByte  int64 // feature-map bytes read
	WeightByte int64 // weight bytes read
	OutputByte int64 // output bytes written
}

// Total returns the total bytes accessed.
func (c Cost) Total() int64 { return c.InputByte + c.WeightByte + c.OutputByte }

// FpropCost returns the direct-convolution fprop cost for batch size b.
func FpropCost(p Params, b int) Cost {
	oh, ow := int64(p.OutH()), int64(p.OutW())
	bi, ii, jj, kk := int64(b), int64(p.In), int64(p.Out), int64(p.K)
	return Cost{
		MACs:       bi * jj * ii * oh * ow * kk * kk,
		InputByte:  4 * bi * ii * int64(p.H) * int64(p.W),
		WeightByte: 4 * jj * ii * kk * kk,
		OutputByte: 4 * bi * jj * oh * ow,
	}
}

// BpropCost returns the direct-convolution bprop cost for batch size b.
// It is symmetric with fprop (full convolution with the flipped kernel).
func BpropCost(p Params, b int) Cost {
	c := FpropCost(p, b)
	// dy read, dx written: same volumes as y and x respectively.
	c.InputByte, c.OutputByte = c.OutputByte, c.InputByte
	return c
}

// UpdateGradCost returns the weight-gradient cost for batch size b.
func UpdateGradCost(p Params, b int) Cost {
	oh, ow := int64(p.OutH()), int64(p.OutW())
	bi, ii, jj, kk := int64(b), int64(p.In), int64(p.Out), int64(p.K)
	return Cost{
		MACs:       bi * jj * ii * oh * ow * kk * kk,
		InputByte:  4 * (bi*ii*int64(p.H)*int64(p.W) + bi*jj*oh*ow), // x and dy both read
		WeightByte: 0,
		OutputByte: 4 * jj * ii * kk * kk, // dw written
	}
}
