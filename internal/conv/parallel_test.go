package conv

import (
	"testing"

	"mptwino/internal/parallel"
	"mptwino/internal/tensor"
)

// withWorkers runs fn under each global worker count and hands the result
// tensors back for comparison against the sequential reference.
func withWorkers(t *testing.T, workers int, fn func()) {
	t.Helper()
	prev := parallel.SetDefaultWorkers(workers)
	defer parallel.SetDefaultWorkers(prev)
	fn()
}

// TestKernelsBitIdenticalAcrossWorkers asserts the parallel direct-conv
// kernels produce byte-identical tensors at every worker count: Fprop and
// Bprop shard the batch (disjoint outputs), UpdateGrad shards output
// filters with the per-slot batch accumulation order preserved, so no
// floating-point reduction reorders.
func TestKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	p := Params{In: 3, Out: 5, K: 3, Pad: 1, H: 9, W: 7}
	x, w := randTensors(p, 4, 21)
	dy := tensor.New(4, p.Out, p.OutH(), p.OutW())
	tensor.NewRNG(22).FillNormal(dy, 0, 1)

	var refY, refDX, refDW *tensor.Tensor
	withWorkers(t, 1, func() {
		refY = Fprop(p, x, w)
		refDX = Bprop(p, dy, w)
		refDW = UpdateGrad(p, x, dy)
	})
	for _, workers := range []int{2, 8} {
		withWorkers(t, workers, func() {
			checkSame(t, workers, "Fprop", refY, Fprop(p, x, w))
			checkSame(t, workers, "Bprop", refDX, Bprop(p, dy, w))
			checkSame(t, workers, "UpdateGrad", refDW, UpdateGrad(p, x, dy))
		})
	}
}

func checkSame(t *testing.T, workers int, kernel string, want, got *tensor.Tensor) {
	t.Helper()
	if len(want.Data) != len(got.Data) {
		t.Fatalf("workers=%d %s: size %d vs %d", workers, kernel, len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if want.Data[i] != got.Data[i] {
			t.Fatalf("workers=%d %s: element %d differs: %v vs %v",
				workers, kernel, i, got.Data[i], want.Data[i])
		}
	}
}
