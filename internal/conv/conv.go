// Package conv implements spatial-domain (direct) convolution for CNN
// training: forward propagation, backward propagation of input gradients,
// and weight-gradient computation. It is both the reference against which
// the Winograd path is verified and the paper's d_dp baseline algorithm.
//
// Conventions follow the paper's Section II-A:
//
//	y_{b,j}  = Σ_i  x_{b,i} * w_{i,j}                (fprop, eq. before ReLU)
//	dx_{b,i} = Σ_j  dy_{b,j} * rot180(w_{i,j})       (bprop)
//	dw_{i,j} = Σ_b  dy_{b,j} ⋆ x_{b,i}               (updateGrad)
//
// Stride is fixed to 1 (all evaluated layers use stride-1 3×3/5×5 kernels);
// padding is explicit.
package conv

import (
	"fmt"

	"mptwino/internal/parallel"
	"mptwino/internal/tensor"
)

// Params describes one convolution layer's geometry.
type Params struct {
	In   int // input channels (I)
	Out  int // output channels (J)
	K    int // square kernel size (r); 3 or 5 in the paper
	Pad  int // symmetric zero padding on each border
	H, W int // input feature-map height and width
}

// SamePad returns the padding that keeps the output the same size as the
// input for kernel size k (k odd).
func SamePad(k int) int { return (k - 1) / 2 }

// OutH returns the output height for the given geometry.
func (p Params) OutH() int { return p.H + 2*p.Pad - p.K + 1 }

// OutW returns the output width for the given geometry.
func (p Params) OutW() int { return p.W + 2*p.Pad - p.K + 1 }

// Validate reports whether the geometry is self-consistent.
func (p Params) Validate() error {
	switch {
	case p.In <= 0 || p.Out <= 0:
		return fmt.Errorf("conv: channels must be positive, got I=%d J=%d", p.In, p.Out)
	case p.K <= 0:
		return fmt.Errorf("conv: kernel size must be positive, got %d", p.K)
	case p.Pad < 0:
		return fmt.Errorf("conv: negative padding %d", p.Pad)
	case p.OutH() <= 0 || p.OutW() <= 0:
		return fmt.Errorf("conv: empty output %dx%d for input %dx%d k=%d pad=%d",
			p.OutH(), p.OutW(), p.H, p.W, p.K, p.Pad)
	}
	return nil
}

// checkX panics unless x matches the layer's expected input shape.
func (p Params) checkX(x *tensor.Tensor) {
	if x.C != p.In || x.H != p.H || x.W != p.W {
		panic(fmt.Sprintf("conv: input shape %s does not match params I=%d H=%d W=%d",
			x.ShapeString(), p.In, p.H, p.W))
	}
}

// checkW panics unless w is the layer's expected weight shape
// (Out, In, K, K) in tensor NCHW fields.
func (p Params) checkW(w *tensor.Tensor) {
	if w.N != p.Out || w.C != p.In || w.H != p.K || w.W != p.K {
		panic(fmt.Sprintf("conv: weight shape %s does not match params J=%d I=%d K=%d",
			w.ShapeString(), p.Out, p.In, p.K))
	}
}

// Fprop computes y = x * w with the layer geometry in p.
// x is (B, In, H, W); w is (Out, In, K, K); the result is
// (B, Out, OutH, OutW). No activation is applied.
func Fprop(p Params, x, w *tensor.Tensor) *tensor.Tensor {
	p.checkX(x)
	p.checkW(w)
	oh, ow := p.OutH(), p.OutW()
	y := tensor.New(x.N, p.Out, oh, ow)
	// Each image owns a disjoint slab of y, so the batch loop shards freely
	// with bit-identical results (per-pixel accumulation order unchanged).
	parallel.ForEach(0, x.N, func(b int) {
		for j := 0; j < p.Out; j++ {
			for i := 0; i < p.In; i++ {
				for yy := 0; yy < oh; yy++ {
					for xx := 0; xx < ow; xx++ {
						var acc float32
						for kh := 0; kh < p.K; kh++ {
							ih := yy + kh - p.Pad
							if ih < 0 || ih >= p.H {
								continue
							}
							for kw := 0; kw < p.K; kw++ {
								iw := xx + kw - p.Pad
								if iw < 0 || iw >= p.W {
									continue
								}
								acc += x.At(b, i, ih, iw) * w.At(j, i, kh, kw)
							}
						}
						y.Add(b, j, yy, xx, acc)
					}
				}
			}
		}
	})
	return y
}

// Bprop computes dx = dy * rot180(w): the gradient of the loss with respect
// to the layer input. dy is (B, Out, OutH, OutW); the result matches x's
// shape (B, In, H, W). The derivative of the activation is applied by the
// caller (the nn package), matching the paper's phase decomposition.
func Bprop(p Params, dy, w *tensor.Tensor) *tensor.Tensor {
	p.checkW(w)
	oh, ow := p.OutH(), p.OutW()
	if dy.C != p.Out || dy.H != oh || dy.W != ow {
		panic(fmt.Sprintf("conv: dy shape %s does not match output J=%d %dx%d",
			dy.ShapeString(), p.Out, oh, ow))
	}
	dx := tensor.New(dy.N, p.In, p.H, p.W)
	// dx[b,i,ih,iw] = Σ_j Σ_kh Σ_kw dy[b,j, ih-kh+pad, iw-kw+pad] * w[j,i,kh,kw]
	parallel.ForEach(0, dy.N, func(b int) {
		for i := 0; i < p.In; i++ {
			for j := 0; j < p.Out; j++ {
				for ih := 0; ih < p.H; ih++ {
					for iw := 0; iw < p.W; iw++ {
						var acc float32
						for kh := 0; kh < p.K; kh++ {
							oy := ih - kh + p.Pad
							if oy < 0 || oy >= oh {
								continue
							}
							for kw := 0; kw < p.K; kw++ {
								ox := iw - kw + p.Pad
								if ox < 0 || ox >= ow {
									continue
								}
								acc += dy.At(b, j, oy, ox) * w.At(j, i, kh, kw)
							}
						}
						dx.Add(b, i, ih, iw, acc)
					}
				}
			}
		}
	})
	return dx
}

// UpdateGrad computes dw[j,i,kh,kw] = Σ_b Σ_{yy,xx} dy[b,j,yy,xx] ·
// x[b,i,yy+kh-pad,xx+kw-pad]: the weight gradient accumulated over the
// batch. The result has the weight shape (Out, In, K, K).
func UpdateGrad(p Params, x, dy *tensor.Tensor) *tensor.Tensor {
	p.checkX(x)
	oh, ow := p.OutH(), p.OutW()
	if dy.C != p.Out || dy.H != oh || dy.W != ow || dy.N != x.N {
		panic(fmt.Sprintf("conv: dy shape %s does not match output B=%d J=%d %dx%d",
			dy.ShapeString(), x.N, p.Out, oh, ow))
	}
	dw := tensor.New(p.Out, p.In, p.K, p.K)
	// Every image contributes to every dw slot, so the batch dimension does
	// not shard. Instead the output-filter dimension does: each j owns a
	// disjoint dw slab, and moving the batch loop innermost keeps each
	// slot's per-image accumulation in ascending-b order — the same
	// floating-point sum the b-outer sequential loop produced.
	parallel.ForEach(0, p.Out, func(j int) {
		for i := 0; i < p.In; i++ {
			for kh := 0; kh < p.K; kh++ {
				for kw := 0; kw < p.K; kw++ {
					for b := 0; b < x.N; b++ {
						var acc float32
						for yy := 0; yy < oh; yy++ {
							ih := yy + kh - p.Pad
							if ih < 0 || ih >= p.H {
								continue
							}
							for xx := 0; xx < ow; xx++ {
								iw := xx + kw - p.Pad
								if iw < 0 || iw >= p.W {
									continue
								}
								acc += dy.At(b, j, yy, xx) * x.At(b, i, ih, iw)
							}
						}
						dw.Add(j, i, kh, kw, acc)
					}
				}
			}
		}
	})
	return dw
}
