package energy

import (
	"math"
	"testing"
)

func almost(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)+math.Abs(b))
}

func TestMACEnergyUsesPaperConstants(t *testing.T) {
	p := DefaultParams()
	// One MAC = 0.9 + 3.7 pJ.
	b := p.MACs(1)
	if !almost(b.ComputeJ, 4.6e-12) {
		t.Fatalf("MAC energy = %v", b.ComputeJ)
	}
	if !almost(p.Adds(10).ComputeJ, 9e-12) {
		t.Fatal("add energy wrong")
	}
}

func TestMemoryAndLinkEnergy(t *testing.T) {
	p := DefaultParams()
	if !almost(p.DRAM(1000).DRAMJ, 30e-9) {
		t.Fatal("DRAM energy wrong")
	}
	if !almost(p.SRAM(1000).SRAMJ, 1e-9) {
		t.Fatal("SRAM energy wrong")
	}
	if !almost(p.LinkTraffic(1000).LinkJ, 16e-9) {
		t.Fatal("link dynamic energy wrong")
	}
	// 4 links idle for 2 seconds at 0.8 W each.
	if !almost(p.LinkIdle(4, 2).LinkJ, 6.4) {
		t.Fatal("link idle energy wrong")
	}
}

func TestBreakdownAddScaleTotal(t *testing.T) {
	b := Breakdown{ComputeJ: 1, SRAMJ: 2, DRAMJ: 3, LinkJ: 4}
	if b.Total() != 10 {
		t.Fatalf("Total = %v", b.Total())
	}
	b.Add(Breakdown{ComputeJ: 1, LinkJ: 1})
	if b.ComputeJ != 2 || b.LinkJ != 5 {
		t.Fatal("Add wrong")
	}
	s := b.Scale(2)
	if s.SRAMJ != 4 || s.DRAMJ != 6 {
		t.Fatal("Scale wrong")
	}
	// Scale must not mutate the receiver.
	if b.SRAMJ != 2 {
		t.Fatal("Scale mutated receiver")
	}
}

// TestDRAMDominatesCompute reflects the paper's Fig. 15 observation that
// Winograd's extra data access makes DRAM energy significant relative to
// compute: per byte, DRAM costs ~6.5× a MAC.
func TestRelativeMagnitudes(t *testing.T) {
	p := DefaultParams()
	if p.DRAM(1).DRAMJ <= p.MACs(1).ComputeJ {
		t.Fatal("a DRAM byte should cost more than a MAC")
	}
	if p.SRAM(1).SRAMJ >= p.DRAM(1).DRAMJ {
		t.Fatal("SRAM must be cheaper than DRAM")
	}
}

func TestNetworkRun(t *testing.T) {
	p := DefaultParams()
	b := p.NetworkRun(1000, 4, 2)
	want := p.LinkTraffic(1000).LinkJ + p.LinkIdle(4, 2).LinkJ
	if !almost(b.LinkJ, want) {
		t.Fatalf("NetworkRun = %v, want %v", b.LinkJ, want)
	}
	if b.ComputeJ != 0 || b.DRAMJ != 0 {
		t.Fatal("NetworkRun must only charge link energy")
	}
}
