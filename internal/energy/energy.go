// Package energy implements the paper's four-factor energy accounting
// (Section VII-B): compute units, SRAM access, DRAM access, and
// memory-centric-network link energy including idle link power. The model
// is linear per event, matching how the paper combines CACTI-3DD /
// CACTI 6.5 access energies with the published FP32 op energies.
package energy

// Params holds per-event energies. Compute constants are the paper's
// ("we used estimated values of 0.9pJ (3.7pJ) for 32bit FP ADD (MUL)");
// memory and link constants are representative 28 nm / 3D-stacked values
// in the range the cited tools produce (documented in DESIGN.md since the
// paper does not print them).
type Params struct {
	FP32AddPJ float64 // per FP32 addition
	FP32MulPJ float64 // per FP32 multiplication
	SRAMPJ    float64 // per byte, on-chip buffer access
	DRAMPJ    float64 // per byte, 3D-stacked DRAM access
	LinkPJ    float64 // per byte, serial link dynamic energy
	// LinkIdleW is the always-on power of one high-speed serial link
	// direction; the paper notes "the high-speed serial interface of the
	// I/O link consumes energy even in an idle state".
	LinkIdleW float64
}

// DefaultParams returns the evaluation configuration.
func DefaultParams() Params {
	return Params{
		FP32AddPJ: 0.9,
		FP32MulPJ: 3.7,
		SRAMPJ:    1.0,
		DRAMPJ:    30.0,
		LinkPJ:    16.0,
		LinkIdleW: 0.8,
	}
}

// Breakdown accumulates joules by component — the stacked bars of Fig. 15.
type Breakdown struct {
	ComputeJ float64
	SRAMJ    float64
	DRAMJ    float64
	LinkJ    float64
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 { return b.ComputeJ + b.SRAMJ + b.DRAMJ + b.LinkJ }

// Add merges another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.ComputeJ += o.ComputeJ
	b.SRAMJ += o.SRAMJ
	b.DRAMJ += o.DRAMJ
	b.LinkJ += o.LinkJ
}

// Scale multiplies every component by k (e.g. per-worker → system).
func (b Breakdown) Scale(k float64) Breakdown {
	return Breakdown{ComputeJ: b.ComputeJ * k, SRAMJ: b.SRAMJ * k, DRAMJ: b.DRAMJ * k, LinkJ: b.LinkJ * k}
}

const pj = 1e-12

// MACs returns the energy of n multiply-accumulate operations (one mul +
// one add each).
func (p Params) MACs(n int64) Breakdown {
	return Breakdown{ComputeJ: float64(n) * (p.FP32AddPJ + p.FP32MulPJ) * pj}
}

// Adds returns the energy of n standalone FP32 additions (reduce blocks,
// vector post-processing).
func (p Params) Adds(n int64) Breakdown {
	return Breakdown{ComputeJ: float64(n) * p.FP32AddPJ * pj}
}

// SRAM returns the energy of moving n bytes through on-chip buffers.
func (p Params) SRAM(n int64) Breakdown {
	return Breakdown{SRAMJ: float64(n) * p.SRAMPJ * pj}
}

// DRAM returns the energy of n bytes of 3D-stacked DRAM traffic.
func (p Params) DRAM(n int64) Breakdown {
	return Breakdown{DRAMJ: float64(n) * p.DRAMPJ * pj}
}

// LinkTraffic returns the dynamic energy of n bytes crossing one link hop.
func (p Params) LinkTraffic(n int64) Breakdown {
	return Breakdown{LinkJ: float64(n) * p.LinkPJ * pj}
}

// LinkIdle returns the static energy of links powered for seconds s. The
// paper turns off unused links "for fair energy comparison", so callers
// pass only the active link count.
func (p Params) LinkIdle(links int, s float64) Breakdown {
	return Breakdown{LinkJ: float64(links) * p.LinkIdleW * s}
}

// NetworkRun charges the energy of a measured network run: byteHops of
// dynamic link traffic (every byte×hop the flit simulator counted) plus
// idle power on activeLinks for the run duration. This converts a noc
// Stats (FlitHops·FlitBytes, Duration) into joules consistently with the
// analytic path.
func (p Params) NetworkRun(byteHops int64, activeLinks int, seconds float64) Breakdown {
	b := p.LinkTraffic(byteHops)
	b.Add(p.LinkIdle(activeLinks, seconds))
	return b
}
