package planner

import (
	"math"
	"testing"

	"mptwino/internal/conv"
	"mptwino/internal/model"
	"mptwino/internal/mpt"
	"mptwino/internal/sim"
	"mptwino/internal/tensor"
)

// tinyNet is a numerically tractable 3-layer workload for the functional
// engine: the planner searches it on a 16-module fleet and the resulting
// per-layer grids must train bit-for-bit like a single worker.
func tinyNet() model.Network {
	return model.Network{Name: "tiny", Batch: 8, Layers: []model.Layer{
		{Name: "c0", P: conv.Params{In: 2, Out: 4, K: 3, Pad: 1, H: 8, W: 8}},
		{Name: "c1", P: conv.Params{In: 4, Out: 4, K: 3, Pad: 1, H: 8, W: 8}},
		{Name: "c2", P: conv.Params{In: 4, Out: 2, K: 3, Pad: 1, H: 8, W: 8}},
	}}
}

// TestEngineConsumesPlan closes the loop the issue asks for: Build a plan,
// project it with EngineConfigs, hand it to mpt.NewNetConfigs, and train —
// the distributed run under the plan's mixed per-layer grids must match a
// reference with the same per-layer transforms but no cluster sharding
// (Nc=1) loss for loss at every step. The transforms must match because
// the engine steps weights in the Winograd domain, so the optimizer
// trajectory is transform-dependent; the group axis' own equivalence is
// proven by the mpt package tests.
func TestEngineConsumesPlan(t *testing.T) {
	net := tinyNet()
	sys := sim.DefaultSystem()
	sys.Workers = 16
	p := Build(net, Options{System: sys})
	if len(p.Choices) != len(net.Layers) {
		t.Fatalf("plan has %d choices for %d layers", len(p.Choices), len(net.Layers))
	}

	params := make([]conv.Params, len(net.Layers))
	for i, l := range net.Layers {
		params[i] = l.P
	}
	cfgs := p.EngineConfigs(mpt.Config{}, net.Batch)
	for i, cfg := range cfgs {
		if cfg.Ng < 1 || cfg.Nc < 1 || cfg.Nc > net.Batch {
			t.Fatalf("layer %d: projected grid (%d,%d) out of range", i, cfg.Ng, cfg.Nc)
		}
	}

	planNet, err := mpt.NewNetConfigs(params, cfgs, tensor.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	refCfgs := make([]mpt.Config, len(cfgs))
	for i, cfg := range cfgs {
		refCfgs[i] = mpt.Config{Ng: cfg.Ng, Nc: 1}
	}
	ref, err := mpt.NewNetConfigs(params, refCfgs, tensor.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}

	rng := tensor.NewRNG(12)
	x := tensor.New(net.Batch, params[0].In, 8, 8)
	target := tensor.New(net.Batch, params[len(params)-1].Out, 8, 8)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(target, 0, 1)

	for step := 0; step < 3; step++ {
		lossPlan, err := planNet.TrainStepMSE(x, target, 0.0005)
		if err != nil {
			t.Fatal(err)
		}
		lossRef, err := ref.TrainStepMSE(x, target, 0.0005)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lossPlan-lossRef) > 1e-3*(1+lossRef) {
			t.Fatalf("step %d: plan-net loss %v diverged from single-worker %v", step, lossPlan, lossRef)
		}
	}
}

// TestNewNetConfigsValidation pins the per-layer constructor's error
// paths: length mismatch and empty networks are rejected.
func TestNewNetConfigsValidation(t *testing.T) {
	params := []conv.Params{{In: 2, Out: 2, K: 3, Pad: 1, H: 8, W: 8}}
	if _, err := mpt.NewNetConfigs(nil, nil, tensor.NewRNG(1)); err == nil {
		t.Fatal("empty network accepted")
	}
	if _, err := mpt.NewNetConfigs(params, nil, tensor.NewRNG(1)); err == nil {
		t.Fatal("config/layer length mismatch accepted")
	}
	if _, err := mpt.NewNetConfigs(params, []mpt.Config{{Ng: 2, Nc: 1}}, tensor.NewRNG(1)); err != nil {
		t.Fatalf("valid per-layer config rejected: %v", err)
	}
}
