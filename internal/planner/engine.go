package planner

import (
	"mptwino/internal/mpt"
)

// EngineConfigs projects the plan onto the numeric MPT engine: one
// mpt.Config per plan choice, indexed like the network's layers (pass the
// result straight to mpt.NewNetConfigs alongside the matching
// conv.Params list). base supplies the Section V knobs (Predict,
// ZeroSkip, quantizer settings); the projection overrides only the grid.
//
// The engine organizes workers on two axes, so the planner's channel and
// filter shards fold into the cluster axis — each (Nf, Ni) shard pair
// processes a disjoint batch slice there, preserving worker count and
// per-worker batch share — clamped to the batch so no cluster is empty.
// A direct-convolution choice (Winograd false) projects to its (1, Nc)
// grid: the numeric engine always computes through the Winograd pipeline,
// which is numerically equal by construction.
func (p Plan) EngineConfigs(base mpt.Config, batch int) []mpt.Config {
	out := make([]mpt.Config, len(p.Choices))
	for i, c := range p.Choices {
		cfg := base
		cfg.Ng = c.St.Ng
		if cfg.Ng < 1 {
			cfg.Ng = 1
		}
		nc := c.St.Nc * c.St.FilterShards() * c.St.ChannelShards()
		if nc > batch {
			nc = batch
		}
		if nc < 1 {
			nc = 1
		}
		cfg.Nc = nc
		// The tile-size axis carries through to the numeric engine: 0 keeps
		// mpt's per-layer ForKernel rule, an explicit m runs F(m×m).
		cfg.TileM = c.St.TileM
		out[i] = cfg
	}
	return out
}
