package planner

import (
	"bufio"
	"fmt"
	"io"
)

// WriteTSV emits the plan as a machine-readable tab-separated dump: a
// header comment pinning the run parameters and totals, then one row per
// layer with the chosen strategy, its cost split, and the achieved-vs-
// lower-bound traffic. Every value is deterministic and fixed-precision,
// so the bytes are identical across runs, host worker counts and
// machines — the property the committed goldens and the CI autoplan job
// diff against.
func (p Plan) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mptwino autoplan\tnetwork=%s\tworkers=%d\tconfig=%s\tslack=%.2f\n",
		p.Network, p.Workers, p.Config, p.Slack)
	fmt.Fprintf(bw, "# exec_us=%.3f\tmenu_exec_us=%.3f\ttotal_us=%.3f\tredist_us=%.3f\tmenu_total_us=%.3f\n",
		p.ExecSec*1e6, p.MenuExecSec*1e6, p.TotalSec*1e6, p.RedistSec*1e6, p.MenuTotalSec*1e6)
	fmt.Fprintln(bw, "layer\trepeat\twinograd\tng\tnc\tnf\tni\ttile\tlayer_us\tredist_us\tachieved_bytes\tbound_bytes\tbound_ratio\tcandidates\tpruned")
	for _, c := range p.Choices {
		ratio := 0.0
		if c.BoundBytes > 0 {
			ratio = float64(c.AchievedBytes) / float64(c.BoundBytes)
		}
		wino := 0
		if c.St.Winograd {
			wino = 1
		}
		// tile is the chosen F(m×m) output size: 0 means the paper's
		// group-count rule (menu-compatible), an explicit m the planner's
		// tile-size axis.
		fmt.Fprintf(bw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%d\t%d\t%.4f\t%d\t%d\n",
			c.Layer, c.Repeat, wino, c.St.Ng, c.St.Nc, c.St.FilterShards(), c.St.ChannelShards(), c.St.TileM,
			c.LayerSec*1e6, c.RedistSec*1e6,
			c.AchievedBytes, c.BoundBytes, ratio, c.Candidates, c.Pruned)
	}
	return bw.Flush()
}
