package planner

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mptwino/internal/comm"
	"mptwino/internal/model"
	"mptwino/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden plan dumps")

func planNets() []model.Network {
	return []model.Network{model.AlexNet(), model.VGG16()}
}

func goldenName(net model.Network) string {
	switch net.Name {
	case "AlexNet":
		return "plan_alexnet.tsv"
	case "VGG-16":
		return "plan_vgg16.tsv"
	}
	return "plan_" + net.Name + ".tsv"
}

// TestPlanGolden pins the full plan dump for AlexNet and VGG-16 — the
// same bytes the CI autoplan job diffs `mptsim -autoplan` output
// against. Regenerate with `go test ./internal/planner -run Golden
// -update` after an intentional model change.
func TestPlanGolden(t *testing.T) {
	for _, net := range planNets() {
		p := Build(net, Options{System: sim.DefaultSystem()})
		var buf bytes.Buffer
		if err := p.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", goldenName(net))
		if *update {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to create)", path, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: plan dump drifted from golden; run with -update if intended\ngot:\n%s", path, buf.String())
		}
	}
}

// TestPlanBeatsMenu is the acceptance criterion: the plan's simulated
// total cycles never lose to the best fixed three-config menu result —
// both as the planner's own metrics (ExecSec vs MenuExecSec, a theorem
// of the dominance filter) and as independently executed by
// sim.SimulateNetworkWithPlan against sim.SimulateNetwork(WMpFull).
func TestPlanBeatsMenu(t *testing.T) {
	for _, net := range planNets() {
		sys := sim.DefaultSystem()
		p := Build(net, Options{System: sys})
		if p.ExecSec > p.MenuExecSec {
			t.Errorf("%s: plan exec %.3fus exceeds menu exec %.3fus", net.Name, p.ExecSec*1e6, p.MenuExecSec*1e6)
		}
		exec := sys.SimulateNetworkWithPlan(net, sim.WMpFull, p.Strategies())
		menu := sys.SimulateNetwork(net, sim.WMpFull)
		if exec.IterationSec > menu.IterationSec {
			t.Errorf("%s: executed plan %.3fus loses to menu %.3fus",
				net.Name, exec.IterationSec*1e6, menu.IterationSec*1e6)
		}
		if exec.IterationSec != p.ExecSec {
			t.Errorf("%s: executed plan %.6gs != plan ExecSec %.6gs", net.Name, exec.IterationSec, p.ExecSec)
		}
		if menu.IterationSec != p.MenuExecSec {
			t.Errorf("%s: menu sim %.6gs != plan MenuExecSec %.6gs", net.Name, menu.IterationSec, p.MenuExecSec)
		}
		t.Logf("%s: plan %.3fus menu %.3fus (%.2f%% faster), redist %.3fus",
			net.Name, exec.IterationSec*1e6, menu.IterationSec*1e6,
			100*(1-exec.IterationSec/menu.IterationSec), p.RedistSec*1e6)
	}
}

// TestPlanNeverPicksWideTileByDefault pins the safety gate: F(6×6,3×3)
// is training-unsafe (see internal/winograd stability tests), so the
// default search must never choose it — neither as an explicit TileM=6
// nor via the paper rule (which tops out at m=4).
func TestPlanNeverPicksWideTileByDefault(t *testing.T) {
	for _, net := range planNets() {
		p := Build(net, Options{System: sim.DefaultSystem()})
		for i, c := range p.Choices {
			l := net.Layers[i]
			if m := effTileM(c.St, l.P.K); m >= 6 {
				t.Errorf("%s/%s: default plan chose F(%d×%d) tile (%+v)", net.Name, l.Name, m, m, c.St)
			}
		}
	}
}

// TestPlanBeatsMenuWideTiles re-runs the acceptance criterion with the
// F(6×6,3×3) axis enabled: widening the search space can only improve
// (or match) the plan, and the executed plan must still track ExecSec.
func TestPlanBeatsMenuWideTiles(t *testing.T) {
	for _, net := range planNets() {
		sys := sim.DefaultSystem()
		p := Build(net, Options{System: sys, AllowWideTiles: true})
		if p.ExecSec > p.MenuExecSec {
			t.Errorf("%s: wide-tile plan exec %.3fus exceeds menu exec %.3fus",
				net.Name, p.ExecSec*1e6, p.MenuExecSec*1e6)
		}
		base := Build(net, Options{System: sys})
		if p.ExecSec > base.ExecSec {
			t.Errorf("%s: wide-tile plan %.3fus worse than default plan %.3fus — wider axis must not regress",
				net.Name, p.ExecSec*1e6, base.ExecSec*1e6)
		}
		exec := sys.SimulateNetworkWithPlan(net, sim.WMpFull, p.Strategies())
		if exec.IterationSec != p.ExecSec {
			t.Errorf("%s: executed wide-tile plan %.6gs != plan ExecSec %.6gs", net.Name, exec.IterationSec, p.ExecSec)
		}
	}
}

// TestPlanDeterminism cross-checks byte-identical plans at host worker
// counts 1, 2 and 8 — the repo-wide bit-determinism contract.
func TestPlanDeterminism(t *testing.T) {
	for _, net := range planNets() {
		var ref []byte
		for _, w := range []int{1, 2, 8} {
			sys := sim.DefaultSystem()
			sys.Parallel = w
			p := Build(net, Options{System: sys})
			var buf bytes.Buffer
			if err := p.WriteTSV(&buf); err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = buf.Bytes()
			} else if !bytes.Equal(ref, buf.Bytes()) {
				t.Fatalf("%s: plan differs between workers=1 and workers=%d", net.Name, w)
			}
		}
	}
}

// TestCandidatesValid is the property test: every emitted factorization
// multiplies to the module count, respects the per-layer feasibility
// constraints, and its shard ranges cover the batch and filter ranges
// exactly once.
func TestCandidatesValid(t *testing.T) {
	const p = 256
	for _, net := range planNets() {
		for _, l := range net.Layers {
			cands := Candidates(l, net.Batch, p, true, comm.PaperReductions(), false)
			if len(cands) == 0 {
				t.Fatalf("%s: no candidates", l.Name)
			}
			for _, c := range cands {
				st := c.St
				if got := st.Workers(); got != p {
					t.Fatalf("%s: %+v uses %d workers, want %d", l.Name, st, got, p)
				}
				if st.Nc > net.Batch || st.FilterShards() > l.P.Out || st.ChannelShards() > l.P.In {
					t.Fatalf("%s: infeasible candidate %+v", l.Name, st)
				}
				// Shard ranges [i·n/parts, (i+1)·n/parts) tile [0, n)
				// exactly once for every sharded axis.
				for _, ax := range []struct {
					n, parts int
				}{
					{net.Batch, st.Nc},
					{l.P.Out, st.FilterShards()},
					{l.P.In, st.ChannelShards()},
				} {
					end := 0
					for i := 0; i < ax.parts; i++ {
						lo := i * ax.n / ax.parts
						hi := (i + 1) * ax.n / ax.parts
						if lo != end || hi < lo {
							t.Fatalf("%s: %+v axis %d/%d: shard %d is [%d,%d), want start %d",
								l.Name, st, ax.n, ax.parts, i, lo, hi, end)
						}
						end = hi
					}
					if end != ax.n {
						t.Fatalf("%s: %+v shards cover [0,%d), want [0,%d)", l.Name, st, end, ax.n)
					}
				}
			}
		}
	}
}

// TestPruningSound verifies the lower bound never eliminates a candidate
// that would have won: the chosen strategy's simulated time is no worse
// than every pruned candidate's communication floor (which bounds that
// candidate's achievable time from below).
func TestPruningSound(t *testing.T) {
	net := model.AlexNet()
	sys := sim.DefaultSystem()
	for _, l := range net.Layers {
		cands := Candidates(l, net.Batch, sys.Workers, true, sys.Reductions, false)
		bestSim := 0.0
		for _, c := range cands {
			r := sys.SimulateLayerStrategy(l, net.Batch, sim.WMpFull, c.St)
			if bestSim == 0 || r.TotalSec() < bestSim {
				bestSim = r.TotalSec()
			}
			floor := sys.CommFloorSec(l, net.Batch, c.St)
			if floor > r.TotalSec()*1.000001 {
				t.Errorf("%s: floor %.ger exceeds simulated %.6g for %+v", l.Name, floor, r.TotalSec(), c.St)
			}
		}
	}
}

// TestValidateNoCPlan replays the chosen plan's fabrics at flit level
// and checks the analytic model tracks the simulator within the same
// generous factors figures.NoCValidation pins.
func TestValidateNoCPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("flit-level simulation")
	}
	p := Build(model.AlexNet(), Options{System: sim.DefaultSystem()})
	checks := ValidateNoC(p)
	if len(checks) == 0 {
		t.Fatal("no fabrics to validate")
	}
	for _, c := range checks {
		lo, hi := 0.8, 1.6
		if c.Pattern == "cell-a2a" {
			lo, hi = 0.9, 4.5
		}
		if c.Ratio < lo || c.Ratio > hi {
			t.Errorf("%s size=%d: sim/model ratio %.2f outside [%.1f, %.1f] (model %.2fus sim %.2fus)",
				c.Pattern, c.Size, c.Ratio, lo, hi, c.ModelUS, c.SimUS)
		}
	}
}
