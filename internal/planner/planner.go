// Package planner searches, per layer, the full parallelization-strategy
// space of the 256-module fleet — every ordered (Ng, Nc, Nf, Ni)
// factorization, i.e. arbitrary group/cluster splits plus the filter- and
// input-channel-sharding axes of Jia et al. ("Exploring Hidden Dimensions
// in Parallelizing CNNs") — and emits an executable per-layer Plan that
// sim.SimulateNetworkWithPlan and mpt consume in place of the paper's
// fixed three-config menu.
//
// The search has three deterministic stages:
//
//  1. Enumerate. comm.Factorizations(p) filtered per layer (Ng ≤ T²,
//     Nc ≤ batch, Nf ≤ Out, Ni ≤ In), plus the three menu wirings as
//     anchors and the direct-convolution baseline.
//  2. Prune. Each candidate gets a communication-time lower bound
//     (sim.CommFloorSec, Chen/Demmel-style: link model × unavoidable
//     volume, no compute terms). The menu anchors are simulated first;
//     any non-anchor whose bound already exceeds the best anchor time by
//     the slack factor is dominated and never reaches the full oracle.
//     Anchors are exempt, which guarantees the plan never loses to the
//     fixed menu under the same accounting.
//  3. Choose. A shortest-path DP over the layer sequence adds an
//     inter-layer redistribution cost when adjacent layers pick different
//     layouts, so the plan pays for reshaping activations between
//     configurations instead of greedily chasing per-layer minima. The
//     DP runs over the menu-dominating candidates only (layer time no
//     worse than the best anchor), so the executed plan's per-layer sum
//     can never lose to the fixed menu's per-layer-greedy result.
//
// Everything is index-ordered and float-stable: the same network, fleet
// and options produce byte-identical plans at any host worker count.
package planner

import (
	"math"

	"mptwino/internal/comm"
	"mptwino/internal/model"
	"mptwino/internal/parallel"
	"mptwino/internal/sim"
	"mptwino/internal/winograd"
)

// DefaultSlack is the lower-bound pruning slack: candidates whose
// communication floor exceeds slack × (best anchor time) are dropped
// without full simulation. 1.25 keeps every candidate whose floor is
// within 25% of the menu's achieved time — generous, because the floor
// ignores compute and the winner may hide behind a low floor.
const DefaultSlack = 1.25

// Options configures a planner run.
type Options struct {
	// System is the cost-model oracle; its Workers field is the fleet
	// size the factorizations must multiply to.
	System sim.System
	// Config selects the simulation config class the plan is built for
	// (prediction/zero-skip on for WMpPred/WMpFull). The zero value is
	// replaced by WMpFull, the paper's best configuration.
	Config sim.SystemConfig
	// Slack overrides DefaultSlack when > 0.
	Slack float64
	// AllowWideTiles admits the numerically unsafe F(6×6,3×3) transform
	// into the tile-size axis (mptsim -autoplan -allow-wide-tiles). The
	// default axis stops at F(4×4,3×3): the coefficient growth of wider
	// Cook–Toom transforms amplifies float32 error beyond training
	// tolerance (winograd/stability_test.go), so m = 6 is inference-grade
	// only and must be an explicit choice.
	AllowWideTiles bool
}

func (o Options) config() sim.SystemConfig {
	if o.Config == sim.SystemConfig(0) {
		return sim.WMpFull
	}
	return o.Config
}

func (o Options) slack() float64 {
	if o.Slack > 0 {
		return o.Slack
	}
	return DefaultSlack
}

func (o Options) predictive() bool {
	c := o.config()
	return c == sim.WMpPred || c == sim.WMpFull
}

// Candidate is one enumerated strategy for one layer.
type Candidate struct {
	St comm.Strategy
	// Anchor marks the fixed-menu wirings (and the direct baseline);
	// anchors are never pruned, so the DP's solution space always
	// contains the whole menu.
	Anchor bool
	// FloorSec is the communication-time lower bound used for pruning.
	FloorSec float64
}

// LayerChoice is the plan's decision for one layer.
type LayerChoice struct {
	Layer  string
	Repeat int
	St     comm.Strategy

	// LayerSec is the simulated iteration time of this layer under St,
	// Repeat included. RedistSec is the cost of reshaping the previous
	// layer's activations into this layer's layout (0 for the first
	// layer and between identically-laid-out neighbors).
	LayerSec  float64
	RedistSec float64

	// AchievedBytes is the per-worker traffic the choice actually moves
	// in one (unrepeated) iteration; BoundBytes is the layer's dense
	// communication floor (comm.LowerBoundBytes) it is compared against.
	AchievedBytes int64
	BoundBytes    int64

	// Candidates and Pruned count the layer's search: enumerated
	// strategies and how many the lower bound eliminated before full
	// simulation.
	Candidates int
	Pruned     int
}

// Plan is the executable result of a planner run.
type Plan struct {
	Network string
	Workers int
	Config  sim.SystemConfig
	Slack   float64
	Choices []LayerChoice

	// ExecSec is the plan's simulated iteration time — what
	// SimulateNetworkWithPlan reports, under the paper's free-
	// reorganization assumption (footnote 9) that SimulateNetwork also
	// embodies. MenuExecSec is the fixed menu's result under the same
	// assumption (the per-layer best anchor sum, what SimulateNetwork
	// returns for the dynamic-clustering config). ExecSec ≤ MenuExecSec
	// always: the DP space is dominance-filtered against the anchors.
	ExecSec     float64
	MenuExecSec float64

	// TotalSec and MenuTotalSec re-price both plans with the DP's
	// redistribution accounting (layer times plus activation reshaping
	// between differently-laid-out neighbors) — the diagnostic for how
	// much the free-reorganization assumption hides on each side.
	TotalSec     float64
	RedistSec    float64
	MenuTotalSec float64
}

// Strategies returns the per-layer strategy list, indexed like the
// network's layers — the form sim.SimulateNetworkWithPlan consumes.
func (p Plan) Strategies() []comm.Strategy {
	out := make([]comm.Strategy, len(p.Choices))
	for i, c := range p.Choices {
		out[i] = c.St
	}
	return out
}

// node is one surviving candidate with its simulated cost.
type node struct {
	st       comm.Strategy
	timeSec  float64 // repeat-scaled iteration time
	achieved int64
	bound    int64
}

// Build runs the search and returns the plan for net.
func Build(net model.Network, opts Options) Plan {
	sys := opts.System
	cfg := opts.config()
	slack := opts.slack()
	p := sys.Workers
	workers := hostWorkers(sys)

	plan := Plan{Network: net.Name, Workers: p, Config: cfg, Slack: slack}
	nodes := make([][]node, len(net.Layers))
	anchorNodes := make([][]node, len(net.Layers))
	candTotals := make([]int, len(net.Layers))
	prunedTotals := make([]int, len(net.Layers))

	for i, l := range net.Layers {
		cands := Candidates(l, net.Batch, p, opts.predictive(), sys.Reductions, opts.AllowWideTiles)
		for ci := range cands {
			cands[ci].FloorSec = sys.CommFloorSec(l, net.Batch, cands[ci].St)
		}
		rep := float64(l.EffectiveRepeat())

		// Anchors sit at the head of the candidate list — the menu
		// wirings first, then the direct baseline. They are simulated
		// unconditionally; the best MENU anchor sets both the acceptance
		// bar (MenuExecSec reproduces SimulateNetwork's dynamic-
		// clustering choice) and the pruning threshold, which is a pure
		// function of those results, so every other candidate's pruning
		// decision is order-independent.
		na := 0
		for na < len(cands) && cands[na].Anchor {
			na++
		}
		menuN := len(comm.DefaultConfigs(p))
		if menuN > na {
			menuN = na
		}
		anchorRes := parallel.Map(workers, na, func(j int) sim.LayerResult {
			return sys.SimulateLayerStrategy(l, net.Batch, cfg, cands[j].St)
		})
		anchorBest := math.Inf(1)
		for _, r := range anchorRes[:menuN] {
			if t := r.TotalSec(); t < anchorBest {
				anchorBest = t
			}
		}
		plan.MenuExecSec += anchorBest * rep

		var rest []Candidate
		pruned := 0
		for _, c := range cands[na:] {
			if c.FloorSec <= anchorBest*slack {
				rest = append(rest, c)
			} else {
				pruned++
			}
		}
		restRes := parallel.Map(workers, len(rest), func(j int) sim.LayerResult {
			return sys.SimulateLayerStrategy(l, net.Batch, cfg, rest[j].St)
		})

		// The menu anchors go to anchorNodes for the menu-restricted DP.
		// The plan's DP runs over the dominance-filtered set: any
		// candidate (anchor or not) whose layer time loses to the best
		// menu anchor is excluded, which guarantees the executed plan
		// (Σ layer times) never exceeds the fixed menu's result, no
		// matter how the DP trades redistribution. The best anchor
		// itself always qualifies, so the DP is never infeasible.
		mkNode := func(c Candidate, r sim.LayerResult) node {
			return node{st: c.St, timeSec: r.TotalSec() * rep, achieved: r.NetBytes, bound: r.BoundBytes}
		}
		anchorNodes[i] = make([]node, menuN)
		for j := 0; j < menuN; j++ {
			anchorNodes[i][j] = mkNode(cands[j], anchorRes[j])
		}
		var layerNodes []node
		for j, r := range anchorRes {
			if r.TotalSec() <= anchorBest {
				layerNodes = append(layerNodes, mkNode(cands[j], r))
			}
		}
		for j, r := range restRes {
			if r.TotalSec() <= anchorBest {
				layerNodes = append(layerNodes, mkNode(rest[j], r))
			}
		}
		nodes[i] = layerNodes
		candTotals[i] = len(cands)
		prunedTotals[i] = pruned
	}

	total, picks := solveDP(sys, net, nodes)
	menuTotal, _ := solveDP(sys, net, anchorNodes)

	plan.TotalSec = total
	plan.MenuTotalSec = menuTotal
	for i, j := range picks {
		nd := nodes[i][j]
		ch := LayerChoice{
			Layer:         net.Layers[i].Name,
			Repeat:        net.Layers[i].EffectiveRepeat(),
			St:            nd.st,
			LayerSec:      nd.timeSec,
			AchievedBytes: nd.achieved,
			BoundBytes:    nd.bound,
			Candidates:    candTotals[i],
			Pruned:        prunedTotals[i],
		}
		if i > 0 {
			ch.RedistSec = redistSec(sys, net.Layers[i-1], net.Batch, nodes[i-1][picks[i-1]].st, nd.st)
		}
		plan.ExecSec += ch.LayerSec
		plan.RedistSec += ch.RedistSec
		plan.Choices = append(plan.Choices, ch)
	}
	emitTelemetry(sys, plan)
	return plan
}

// solveDP runs the layer-sequence shortest path: dp[i][j] =
// min_k dp[i−1][k] + redist(k, j) + time[i][j]. Ties break to the
// earliest predecessor, keeping the picks deterministic.
func solveDP(sys sim.System, net model.Network, nodes [][]node) (float64, []int) {
	n := len(nodes)
	prev := make([]float64, len(nodes[0]))
	for j := range nodes[0] {
		prev[j] = nodes[0][j].timeSec
	}
	parents := make([][]int, n)
	for i := 1; i < n; i++ {
		cur := make([]float64, len(nodes[i]))
		par := make([]int, len(nodes[i]))
		for j := range nodes[i] {
			best, bi := math.Inf(1), 0
			for k := range nodes[i-1] {
				c := prev[k] + redistSec(sys, net.Layers[i-1], net.Batch, nodes[i-1][k].st, nodes[i][j].st)
				if c < best {
					best, bi = c, k
				}
			}
			cur[j] = best + nodes[i][j].timeSec
			par[j] = bi
		}
		parents[i] = par
		prev = cur
	}
	best, bi := math.Inf(1), 0
	for j, v := range prev {
		if v < best {
			best, bi = v, j
		}
	}
	picks := make([]int, n)
	picks[n-1] = bi
	for i := n - 1; i > 0; i-- {
		picks[i-1] = parents[i][picks[i]]
	}
	return best, picks
}

// Candidates enumerates the strategy space for one layer: the menu
// anchors and direct baseline first (exempt from pruning), then every
// feasible (Ng, Nc, Nf, Ni) factorization of p in comm.Factorizations
// order, each crossed with the Winograd tile-size axis (TileM = 0 is the
// paper's group-count rule; explicit m values that differ from it widen
// the space, with m = 6 admitted only behind wideTiles). Feasibility: the
// resolved transform must have at least Ng tile elements, clusters cannot
// outnumber batch samples, and shard counts cannot outnumber the channels
// they split.
func Candidates(l model.Layer, batch, p int, predictive bool, red comm.Reductions, wideTiles bool) []Candidate {
	type key struct {
		ng, nc, nf, ni, tileM int
		winograd              bool
	}
	seen := make(map[key]bool)
	var out []Candidate
	add := func(st comm.Strategy, anchor bool) {
		k := key{st.Ng, st.Nc, st.FilterShards(), st.ChannelShards(), st.TileM, st.Winograd}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, Candidate{St: st, Anchor: anchor})
	}

	for _, cc := range comm.DefaultConfigs(p) {
		st, _ := comm.StrategyFor(cc, l.P.K, predictive, red)
		add(st, true)
	}
	// The direct-convolution baseline is part of the space (and of
	// Table IV); it anchors too, so pruning can never hide it.
	add(comm.Strategy{Ng: 1, Nc: p}, true)

	for _, f := range comm.Factorizations(p) {
		if f.Nc > batch || f.Nf > l.P.Out || f.Ni > l.P.In {
			continue
		}
		// The tile axis: TileM = 0 first (the paper rule — what the menu
		// anchors use, so it dedups against them), then the explicit sizes
		// that differ from the rule's choice for this Ng. Only 3×3 kernels
		// have alternatives (F(2×2,5×5) is the sole 5×5 transform).
		paperM := 4
		if f.Ng > 1 {
			paperM = 2
		}
		tileMs := [4]int{0, -1, -1, -1}
		nt := 1
		if l.P.K == 3 {
			for _, m := range [3]int{2, 4, 6} {
				if m == paperM || (m == 6 && !wideTiles) {
					continue
				}
				tileMs[nt] = m
				nt++
			}
		}
		for _, tm := range tileMs[:nt] {
			tr, err := winograd.ForKernelTile(l.P.K, f.Ng, tm)
			if err != nil || f.Ng > tr.T*tr.T {
				continue
			}
			st := comm.Strategy{Ng: f.Ng, Nc: f.Nc, Nf: f.Nf, Ni: f.Ni, Winograd: true, TileM: tm}
			if predictive {
				st.GatherReduction, st.ScatterReduction = red.Get(tr.T, f.Ng)
			}
			add(st, false)
		}
	}
	return out
}

// redistSec prices moving layer prev's output activations from layout a
// to layout b. The spatial output tensor (4·B·Out·OH·OW bytes) is spread
// over p workers; the fraction that already sits on the right worker is
// the product of per-axis overlaps min/max (batch split a.Nc vs b.Nc,
// producer filter shards vs consumer channel shards, tile-position groups
// a.Ng vs b.Ng). The remainder crosses the tile fabric once.
func redistSec(sys sim.System, prev model.Layer, batch int, a, b comm.Strategy) float64 {
	if a == b {
		return 0
	}
	ov := axisOverlap(a.Nc, b.Nc) *
		axisOverlap(a.FilterShards(), b.ChannelShards()) *
		axisOverlap(a.Ng, b.Ng)
	// A tile-size change re-blocks the tile-position partition the groups
	// shard over: when either side actually shards it (Ng > 1), only the
	// aligned fraction of the old m×m blocking survives in place.
	if a.Ng > 1 || b.Ng > 1 {
		ma, mb := effTileM(a, prev.P.K), effTileM(b, prev.P.K)
		if ma != mb {
			ov *= axisOverlap(ma*ma, mb*mb)
		}
	}
	outBytes := 4 * int64(batch) * int64(prev.P.Out) * int64(prev.P.OutH()) * int64(prev.P.OutW())
	moved := float64(outBytes) / float64(sys.Workers) * (1 - ov)
	if moved <= 0 {
		return 0
	}
	cong := sys.TileCongestion
	if cong <= 0 {
		cong = 1
	}
	return moved*cong/(sys.LinkBW/2) + 2*sys.SerDesSec
}

// effTileM resolves the tile output size a strategy actually runs with for
// kernel size k: the explicit TileM axis, or the paper's group-count rule
// when unset (F(2×2) for multi-group 3×3 layers, F(4×4) otherwise; 5×5
// kernels only have m = 2).
func effTileM(st comm.Strategy, k int) int {
	if !st.Winograd {
		return 1
	}
	if st.TileM != 0 {
		return st.TileM
	}
	if k == 3 && st.Ng == 1 {
		return 4
	}
	return 2
}

// axisOverlap returns the resident fraction min(a,b)/max(a,b) when one
// axis is split a ways by the producer and b ways by the consumer.
func axisOverlap(a, b int) float64 {
	if a < b {
		a, b = b, a
	}
	if a <= 0 {
		return 1
	}
	return float64(b) / float64(a)
}

// hostWorkers resolves the fan-out width like sim does.
func hostWorkers(sys sim.System) int {
	if sys.Parallel > 0 {
		return sys.Parallel
	}
	return parallel.DefaultWorkers()
}

// emitTelemetry publishes the plan's achieved-vs-bound bytes and search
// statistics on the system's registry (nil-safe no-ops when detached).
func emitTelemetry(sys sim.System, p Plan) {
	for _, c := range p.Choices {
		sys.Metrics.Gauge("planner.achieved_bytes." + c.Layer).Set(c.AchievedBytes)
		sys.Metrics.Gauge("planner.bound_bytes." + c.Layer).Set(c.BoundBytes)
		sys.Metrics.Counter("planner.candidates").Add(int64(c.Candidates))
		sys.Metrics.Counter("planner.pruned").Add(int64(c.Pruned))
	}
	sys.Metrics.Gauge("planner.plan_us").Set(int64(p.TotalSec * 1e6))
	sys.Metrics.Gauge("planner.menu_us").Set(int64(p.MenuTotalSec * 1e6))
}
