package planner

import (
	"mptwino/internal/noc"
	"mptwino/internal/topology"
)

// NoCCheck is one flit-level cross-check of a fabric the plan relies on.
type NoCCheck struct {
	Pattern string // "cell-a2a" or "cluster-ring"
	Size    int    // cell size / ring member count
	Bytes   int64  // payload per pair / collective message
	ModelUS float64
	SimUS   float64
	Ratio   float64 // sim / model
}

// ValidateNoC replays the plan's chosen fabrics on the flit-level
// network simulator — the same methodology as figures.NoCValidation, but
// driven by the plan instead of the fixed (16,16) grid. Each distinct
// cell size gets an all-to-all over its FBFLY (tile scatter/gather and
// partial-sum traffic), and each distinct cluster count gets a pipelined
// ring collective (weight gradients), with message sizes scaled down so
// flit-level runs stay tractable; both model and simulator are linear in
// message size in this regime. Rings larger than 16 members are sampled
// at 16 — the per-hop model error the check guards against does not grow
// with ring length. Deterministic: checks appear in plan order, one per
// distinct size.
func ValidateNoC(p Plan) []NoCCheck {
	cfg := noc.DefaultConfig()
	var out []NoCCheck
	seenCell := make(map[int]bool)
	seenRing := make(map[int]bool)

	for _, ch := range p.Choices {
		if d := ch.St.Cell(); d > 1 && !seenCell[d] {
			seenCell[d] = true
			out = append(out, cellCheck(cfg, d))
		}
		n := ch.St.Nc
		if n > 16 {
			n = 16
		}
		if n > 1 && !seenRing[n] {
			seenRing[n] = true
			out = append(out, ringCheck(cfg, n))
		}
	}
	return out
}

// cellCheck runs an all-to-all across one d-worker cell on its
// side×side flattened butterfly (narrow links: FlitBytes per cycle,
// 2·(side−1) of them per router).
func cellCheck(cfg noc.Config, d int) NoCCheck {
	side := 1
	for side*side < d {
		side++
	}
	const pairBytes = 2 * 1024
	g := topology.FBFly2D(side)
	n := noc.New(g, cfg)
	members := make([]int, d)
	for i := range members {
		members[i] = i
	}
	st, err := n.Run(&noc.AllToAll{Members: members, Bytes: pairBytes}, 50_000_000)
	if err != nil {
		panic(err)
	}
	simUS := st.Duration(cfg.ClockHz) * 1e6
	// Analytic model: each worker sources (d−1)·pair bytes over its
	// 2·(side−1) narrow links, derated by the mean hop count 2s/(s+1).
	hops := 2 * float64(side) / float64(side+1)
	linkBytesPerCycle := float64(2*(side-1)) * float64(cfg.FlitBytes)
	modelUS := float64(int64(d-1)*pairBytes) * hops / linkBytesPerCycle / cfg.ClockHz * 1e6
	return NoCCheck{
		Pattern: "cell-a2a", Size: d, Bytes: pairBytes,
		ModelUS: modelUS, SimUS: simUS, Ratio: simUS / modelUS,
	}
}

// ringCheck runs a pipelined ring collective over n members with full
// links, mirroring the bandwidth+fill closed form sim uses.
func ringCheck(cfg noc.Config, n int) NoCCheck {
	const msg = 64 * 1024
	g := topology.Ring(n)
	nw := noc.New(g, cfg)
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	st, err := nw.Run(&noc.RingCollective{Members: members, Bytes: msg}, 50_000_000)
	if err != nil {
		panic(err)
	}
	simUS := st.Duration(cfg.ClockHz) * 1e6
	modelUS := (2*float64(msg)*float64(n-1)/float64(n)/30e9 +
		2*float64(n-1)*(5e-9+256.0/30e9)) * 1e6
	return NoCCheck{
		Pattern: "cluster-ring", Size: n, Bytes: msg,
		ModelUS: modelUS, SimUS: simUS, Ratio: simUS / modelUS,
	}
}
