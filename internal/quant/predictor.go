package quant

import (
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// Predictor implements the activation prediction of Section V-A: from
// quantized Winograd-domain output values it computes, at the destination
// worker, both an estimate of every spatial neuron and the maximum possible
// positive quantization error, and declares a neuron non-activated only
// when estimate + maxErr < 0. Because quantization errors are one-sided
// (e ∈ [0, res]) and the bound is propagated through the positive and
// negative inverse-transform coefficients separately, the prediction can
// never produce a false negative: a neuron predicted non-activated is
// guaranteed non-activated.
type Predictor struct {
	Tr *winograd.Transform
	Q  *Quantizer

	atPos, atNeg *tensor.Mat // PN split of Aᵀ (m×T)
	aPos, aNeg   *tensor.Mat // PN split of A  (T×m)
}

// NewPredictor builds a predictor for the given transform and quantizer.
func NewPredictor(tr *winograd.Transform, q *Quantizer) *Predictor {
	p := &Predictor{Tr: tr, Q: q}
	p.atPos, p.atNeg = winograd.PNSplit(tr.AT)
	p.aPos, p.aNeg = winograd.PNSplit(tr.A)
	return p
}

// Prediction is the destination-side result for one tile.
type Prediction struct {
	Est    *tensor.Mat // m×m estimated neuron values (from quantized data)
	MaxErr *tensor.Mat // m×m maximum possible positive error
	// Overflow reports that at least one source element exceeded the
	// quantizer range; the tile must then be treated as activated.
	Overflow bool
}

// NonActivated reports whether every neuron of the tile is provably
// non-activated (estimate + max error < 0) — the condition under which the
// tile's gathering communication is skipped entirely.
func (pr *Prediction) NonActivated() bool {
	if pr.Overflow {
		return false
	}
	for i, e := range pr.Est.Data {
		if e+pr.MaxErr.Data[i] >= 0 {
			return false
		}
	}
	return true
}

// NonActivatedRows reports, per output-tile row, whether all neurons in
// that row are provably non-activated. With 1-D prediction the unit of
// skipped communication is a tile line (Section V-B measures "non-activated
// lines").
func (pr *Prediction) NonActivatedRows() []bool {
	out := make([]bool, pr.Est.Rows)
	if pr.Overflow {
		return out
	}
	for r := 0; r < pr.Est.Rows; r++ {
		ok := true
		for c := 0; c < pr.Est.Cols; c++ {
			if pr.Est.At(r, c)+pr.MaxErr.At(r, c) >= 0 {
				ok = false
				break
			}
		}
		out[r] = ok
	}
	return out
}

// Predict2D performs 2-D prediction: the source holds scattered individual
// elements of the T×T Winograd-domain output tile y, quantizes each, and
// the destination propagates values and error bounds through both 1-D
// stages of the inverse transform.
//
// Stage 1 (rows → Z = Q·A): error bound of Z splits into positive and
// negative parts because A has mixed-sign coefficients. Stage 2 (cols →
// est = Aᵀ·Z): positive coefficients of Aᵀ multiply the positive stage-1
// bound, negative coefficients the negative bound, yielding the final
// maximum positive error (paper Fig. 11, right path).
func (p *Predictor) Predict2D(y *tensor.Mat) *Prediction {
	t := p.Tr.T
	qv := tensor.NewMat(t, t)
	res := tensor.NewMat(t, t)
	overflow := p.Q.QuantizeSlice(y.Data, qv.Data, res.Data)

	z := tensor.MatMul(qv, p.Tr.A)       // T×m estimated stage-1
	pos1 := tensor.MatMul(res, p.aPos)   // T×m positive error bound
	neg1 := tensor.MatMul(res, p.aNeg)   // T×m negative error bound (≤0)
	est := tensor.MatMul(p.Tr.AT, z)     // m×m
	maxe := tensor.MatMul(p.atPos, pos1) // positive coeff × positive err
	tmp := tensor.MatMul(p.atNeg, neg1)  // negative coeff × negative err
	for i := range maxe.Data {
		maxe.Data[i] += tmp.Data[i]
	}
	return &Prediction{Est: est, MaxErr: maxe, Overflow: overflow}
}

// Predict1D performs 1-D prediction: the source holds complete tile rows,
// computes the first 1-D inverse transform Z = y·A with *real* values, then
// quantizes Z. Only the second stage accumulates quantization error, which
// is why 1-D prediction is tighter than 2-D (Section V-B).
func (p *Predictor) Predict1D(y *tensor.Mat) *Prediction {
	z := tensor.MatMul(y, p.Tr.A) // T×m, exact at the source
	qz := tensor.NewMat(z.Rows, z.Cols)
	rz := tensor.NewMat(z.Rows, z.Cols)
	overflow := p.Q.QuantizeSlice(z.Data, qz.Data, rz.Data)

	est := tensor.MatMul(p.Tr.AT, qz)
	// Stage-2 error: e ∈ [0, res] per Z element, so the positive bound is
	// pos(Aᵀ)·res and the negative part contributes nothing positive.
	maxe := tensor.MatMul(p.atPos, rz)
	return &Prediction{Est: est, MaxErr: maxe, Overflow: overflow}
}

// TrueNonActivated reports whether the exact inverse transform of y has all
// neurons < 0 — the oracle the paper's dotted "real value" line measures
// (the upper limit of any prediction).
func TrueNonActivated(tr *winograd.Transform, y *tensor.Mat) bool {
	out := tr.OutputFromWinograd(y)
	for _, v := range out.Data {
		if v >= 0 {
			return false
		}
	}
	return true
}

// TrueNonActivatedRows is the per-row oracle for 1-D prediction.
func TrueNonActivatedRows(tr *winograd.Transform, y *tensor.Mat) []bool {
	out := tr.OutputFromWinograd(y)
	rows := make([]bool, out.Rows)
	for r := 0; r < out.Rows; r++ {
		ok := true
		for c := 0; c < out.Cols; c++ {
			if out.At(r, c) >= 0 {
				ok = false
				break
			}
		}
		rows[r] = ok
	}
	return rows
}
