package quant

import (
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// GatherStats summarizes activation prediction over a set of output tiles —
// the quantities plotted in Fig. 12 and quoted in Section V-B.
type GatherStats struct {
	Tiles           int // tiles examined
	TrueNonActTiles int // oracle: all neurons of the tile < 0
	PredNonActTiles int // 2-D predict: tile provably non-activated
	Lines           int // tile lines examined (Tiles × m rows)
	TrueNonActLines int // oracle per line
	PredNonActLines int // 1-D predict per line
	FalseNegatives  int // predicted non-activated but actually activated (must stay 0)
}

// TileSkipRatio returns the fraction of tiles whose gathering is skipped
// under 2-D prediction.
func (s GatherStats) TileSkipRatio() float64 {
	if s.Tiles == 0 {
		return 0
	}
	return float64(s.PredNonActTiles) / float64(s.Tiles)
}

// LineSkipRatio returns the fraction of tile lines skipped under 1-D
// prediction.
func (s GatherStats) LineSkipRatio() float64 {
	if s.Lines == 0 {
		return 0
	}
	return float64(s.PredNonActLines) / float64(s.Lines)
}

// TrueTileRatio / TrueLineRatio are the oracle upper limits (the dotted
// lines of Fig. 12).
func (s GatherStats) TrueTileRatio() float64 {
	if s.Tiles == 0 {
		return 0
	}
	return float64(s.TrueNonActTiles) / float64(s.Tiles)
}

// TrueLineRatio is the oracle fraction of fully non-activated lines.
func (s GatherStats) TrueLineRatio() float64 {
	if s.Lines == 0 {
		return 0
	}
	return float64(s.TrueNonActLines) / float64(s.Lines)
}

// MeasureGather runs both predictors over every (tile, output channel) of a
// Winograd-domain output Domain and tallies prediction quality. pred2D and
// pred1D may use different quantizers (the paper uses 6-bit for 2-D and
// 5-bit for 1-D).
func MeasureGather(yd *winograd.Domain, pred2D, pred1D *Predictor) GatherStats {
	tr := yd.Tiling.Tr
	var s GatherStats
	tile := tensor.NewMat(tr.T, tr.T)
	rows := yd.Rows()
	for row := 0; row < rows; row++ {
		for c := 0; c < yd.C; c++ {
			for e := range yd.El {
				tile.Data[e] = yd.El[e].At(row, c)
			}
			s.Tiles++

			trueTile := TrueNonActivated(tr, tile)
			if trueTile {
				s.TrueNonActTiles++
			}
			p2 := pred2D.Predict2D(tile)
			if p2.NonActivated() {
				s.PredNonActTiles++
				if !trueTile {
					s.FalseNegatives++
				}
			}

			// 1-D prediction skips whole source lines (rows of the
			// Winograd-domain tile map to columns of Z; we count the m×m
			// output's rows, whose true status the per-row oracle gives).
			trueRows := TrueNonActivatedRows(tr, tile)
			p1 := pred1D.Predict1D(tile)
			predRows := p1.NonActivatedRows()
			s.Lines += len(predRows)
			for r := range predRows {
				if trueRows[r] {
					s.TrueNonActLines++
				}
				if predRows[r] {
					s.PredNonActLines++
					if !trueRows[r] {
						s.FalseNegatives++
					}
				}
			}
		}
	}
	return s
}

// ScatterZeroRatio returns the fraction of exactly-zero elements in a
// Winograd-domain input Domain — the data removable by zero-skipping during
// tile scattering (Section V-B: "zero values of input tiles can be
// omitted"). Zeros arise from ReLU sparsity in the previous layer's output.
func ScatterZeroRatio(xd *winograd.Domain) float64 {
	var zero, total int64
	for _, el := range xd.El {
		for _, v := range el.Data {
			if v == 0 {
				zero++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(zero) / float64(total)
}

// GatherTrafficReduction converts a skip ratio into the net communication
// reduction of tile gathering, accounting for the quantized prediction
// pre-send of codeBits per element: skipped tiles avoid their 32-bit
// payload, but every tile pays the quantized header.
func GatherTrafficReduction(skipRatio float64, codeBits int) float64 {
	overhead := float64(codeBits) / 32.0
	reduction := skipRatio - overhead
	if reduction < 0 {
		return 0
	}
	return reduction
}
