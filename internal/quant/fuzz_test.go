package quant

import (
	"math"
	"testing"

	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// FuzzPredictorNeverUnderestimates fuzzes the activation predictor's
// safety invariant (Section V-A): for every neuron, estimate + maxErr must
// be an upper bound on the true inverse-transformed value, so a neuron
// predicted non-activated (est + maxErr < 0) is guaranteed non-activated —
// no false negatives, which is what keeps FpropReLU bit-exact under
// prediction. Both the 2-D and 1-D predictors must satisfy it for
// arbitrary Winograd-domain tiles and quantizer calibrations.
func FuzzPredictorNeverUnderestimates(f *testing.F) {
	f.Add(float32(0.5), float32(-1.2), float32(2.0), float32(0.1),
		float32(-0.3), float32(0.7), float32(1.5), float32(-2.2),
		float32(0.0), float32(3.1), float32(-0.01), float32(0.99),
		float32(-1.5), float32(0.25), float32(-0.75), float32(1.1),
		float32(1.0))
	f.Add(float32(-4), float32(-4), float32(-4), float32(-4),
		float32(-4), float32(-4), float32(-4), float32(-4),
		float32(-4), float32(-4), float32(-4), float32(-4),
		float32(-4), float32(-4), float32(-4), float32(-4),
		float32(0.5))
	f.Add(float32(100), float32(-100), float32(0), float32(1e-6),
		float32(-1e-6), float32(50), float32(-50), float32(0.5),
		float32(12), float32(-7), float32(3), float32(-3),
		float32(8), float32(-8), float32(0.1), float32(-0.1),
		float32(4))

	tr := winograd.F2x2_3x3 // T=4: 16 tile elements

	f.Fuzz(func(t *testing.T,
		v0, v1, v2, v3, v4, v5, v6, v7, v8, v9, v10, v11, v12, v13, v14, v15,
		sigma float32) {
		vals := []float32{v0, v1, v2, v3, v4, v5, v6, v7, v8, v9, v10, v11, v12, v13, v14, v15}
		for _, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || math.Abs(float64(v)) > 1e12 {
				t.Skip("degenerate tile value")
			}
		}
		if math.IsNaN(float64(sigma)) || math.IsInf(float64(sigma), 0) {
			t.Skip("degenerate sigma")
		}
		// Fold sigma into a sane calibration range; the invariant must hold
		// for any positive step, well- or badly-calibrated.
		s := math.Abs(float64(sigma))
		if s < 1e-6 {
			s = 1e-6
		}
		if s > 1e6 {
			s = 1e6
		}

		y := tensor.NewMat(tr.T, tr.T)
		copy(y.Data, vals)
		truth := tr.OutputFromWinograd(y)

		q := MustQuantizer(4, 6, float32(s))
		p := NewPredictor(tr, q)

		check := func(name string, pr *Prediction) {
			if pr.Overflow {
				// Overflowed tiles are treated as activated; no bound claimed.
				return
			}
			for i, est := range pr.Est.Data {
				bound := float64(est) + float64(pr.MaxErr.Data[i])
				tv := float64(truth.Data[i])
				// Allow float32 rounding slack proportional to magnitude.
				eps := 1e-3 * math.Max(1, math.Abs(tv))
				if bound < tv-eps {
					t.Fatalf("%s: neuron %d bound %v underestimates true value %v (tile %v, sigma %v)",
						name, i, bound, tv, vals, s)
				}
			}
			// The operational consequence: predicted-non-activated tiles are
			// truly non-activated.
			if pr.NonActivated() && !TrueNonActivated(tr, y) {
				t.Fatalf("%s: false negative — tile predicted non-activated but activates (tile %v, sigma %v)",
					name, vals, s)
			}
		}
		check("Predict2D", p.Predict2D(y))
		check("Predict1D", p.Predict1D(y))
	})
}
