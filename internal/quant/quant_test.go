package quant

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

func TestNewQuantizerValidation(t *testing.T) {
	if _, err := NewQuantizer(0, 6, 1); err == nil {
		t.Fatal("regions=0 accepted")
	}
	if _, err := NewQuantizer(4, 1, 1); err == nil {
		t.Fatal("bits=1 accepted")
	}
	if _, err := NewQuantizer(4, 6, 0); err == nil {
		t.Fatal("sigma=0 accepted")
	}
	if _, err := NewQuantizer(3, 6, 1); err == nil {
		t.Fatal("32 levels / 3 regions accepted (not divisible)")
	}
	q, err := NewQuantizer(4, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.StepsPerRegion != 8 {
		t.Fatalf("StepsPerRegion = %d, want 8", q.StepsPerRegion)
	}
}

func TestHalfRangeCoversRangeSigmas(t *testing.T) {
	q := MustQuantizer(4, 6, 2.0)
	want := 4.0 * 2.0 // RangeSigmas × sigma
	if got := float64(q.HalfRange()); math.Abs(got-want) > 1e-4 {
		t.Fatalf("HalfRange = %v, want %v", got, want)
	}
}

// Property: quantization floors toward −∞ with one-sided error 0 ≤ v−q ≤ res.
func TestQuantizeOneSidedError(t *testing.T) {
	q := MustQuantizer(4, 6, 1.0)
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := float32(r.NormFloat64() * 1.2)
			qv, res, ov := q.Quantize(v)
			if ov {
				continue // overflow handled separately
			}
			e := v - qv
			if e < 0 || e > res {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeStepDoubling(t *testing.T) {
	q := MustQuantizer(4, 6, 1.0)
	// A value in the first region gets resolution Δ; deep values double.
	_, r0, _ := q.Quantize(q.Delta / 2)
	if r0 != q.Delta {
		t.Fatalf("region-0 resolution = %v, want Δ=%v", r0, q.Delta)
	}
	// value in region 1: between S·Δ and 3S·Δ
	v1 := q.Delta * float32(q.StepsPerRegion) * 1.5
	_, r1, _ := q.Quantize(v1)
	if r1 != 2*q.Delta {
		t.Fatalf("region-1 resolution = %v, want 2Δ", r1)
	}
	// deepest region
	v3 := q.HalfRange() * 0.99
	_, r3, _ := q.Quantize(v3)
	if r3 != 8*q.Delta {
		t.Fatalf("region-3 resolution = %v, want 8Δ", r3)
	}
}

func TestQuantizeOverflow(t *testing.T) {
	q := MustQuantizer(4, 6, 1.0)
	_, _, ov := q.Quantize(q.HalfRange() * 1.5)
	if !ov {
		t.Fatal("overflow not flagged")
	}
	_, _, ov = q.Quantize(-q.HalfRange() * 1.5)
	if !ov {
		t.Fatal("negative overflow not flagged")
	}
	_, _, ov = q.Quantize(q.HalfRange() * 0.5)
	if ov {
		t.Fatal("in-range value flagged as overflow")
	}
}

func TestQuantizeZeroAndSymmetry(t *testing.T) {
	q := MustQuantizer(2, 5, 1.0)
	qv, res, ov := q.Quantize(0)
	if qv != 0 || ov {
		t.Fatalf("Quantize(0) = %v, overflow %v", qv, ov)
	}
	if res != q.Delta {
		t.Fatalf("Quantize(0) res = %v, want Δ", res)
	}
	// Negative values floor downward: q ≤ v.
	for _, v := range []float32{-0.01, -0.5, -1.3, -2.0} {
		qv, res, _ := q.Quantize(v)
		if qv > v {
			t.Fatalf("Quantize(%v) = %v > v", v, qv)
		}
		if v-qv > res {
			t.Fatalf("Quantize(%v): error %v exceeds res %v", v, v-qv, res)
		}
	}
}

func TestQuantizeSliceLengthMismatchPanics(t *testing.T) {
	q := MustQuantizer(4, 6, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	q.QuantizeSlice(make([]float32, 3), make([]float32, 2), make([]float32, 3))
}

func TestEstimateSigma(t *testing.T) {
	r := tensor.NewRNG(3)
	vals := make([]float32, 50000)
	for i := range vals {
		vals[i] = float32(r.NormFloat64() * 2.5)
	}
	got := EstimateSigma(vals)
	if math.Abs(float64(got)-2.5) > 0.05 {
		t.Fatalf("EstimateSigma = %v, want ~2.5", got)
	}
	if EstimateSigma(nil) != 1 {
		t.Fatal("EstimateSigma(nil) should default to 1")
	}
}

// randomTile draws a Winograd-domain output tile with the Gaussian
// statistics the paper observed, biased negative so a useful fraction of
// tiles is fully non-activated.
func randomTile(tr *winograd.Transform, r *tensor.RNG, bias float32) *tensor.Mat {
	// Build it as the transform of a spatial pre-activation patch so the
	// tile is realizable (lives in the range of the transform).
	m := tensor.NewMat(tr.T, tr.T)
	for i := range m.Data {
		m.Data[i] = float32(r.NormFloat64()) + bias
	}
	return tr.InputToWinograd(m) // any full-rank lift works for testing
}

// TestNoFalseNegatives is the paper's correctness guarantee: a neuron (or
// tile, or line) predicted non-activated must truly be non-activated, for
// both 1-D and 2-D prediction, across quantizer settings.
func TestNoFalseNegatives(t *testing.T) {
	tr := winograd.F2x2_3x3
	r := tensor.NewRNG(71)
	// Calibrate sigma from a sample of tiles.
	var sample []float32
	for i := 0; i < 50; i++ {
		sample = append(sample, randomTile(tr, r, -0.5).Data...)
	}
	sigma := EstimateSigma(sample)

	for _, cfg := range []struct{ regions, bits int }{
		{1, 4}, {2, 5}, {4, 6}, {2, 4}, {4, 8}, {1, 6},
	} {
		q := MustQuantizer(cfg.regions, cfg.bits, sigma)
		p := NewPredictor(tr, q)
		for trial := 0; trial < 300; trial++ {
			tile := randomTile(tr, r, -0.5)
			p2 := p.Predict2D(tile)
			if p2.NonActivated() && !TrueNonActivated(tr, tile) {
				t.Fatalf("regions=%d bits=%d: 2D false negative", cfg.regions, cfg.bits)
			}
			p1 := p.Predict1D(tile)
			pr := p1.NonActivatedRows()
			truth := TrueNonActivatedRows(tr, tile)
			for i := range pr {
				if pr[i] && !truth[i] {
					t.Fatalf("regions=%d bits=%d: 1D false negative row %d", cfg.regions, cfg.bits, i)
				}
			}
		}
	}
}

// realOutputTile runs an actual Winograd forward pass with constant input
// +1 and constant weight wv, and returns the Winograd-domain output tile at
// tile index (0,0). All spatial outputs then have sign(wv)·(taps) values,
// making the tile provably activated (wv>0) or non-activated (wv<0).
func realOutputTile(tr *winograd.Transform, wv float32) *tensor.Mat {
	p := conv.Params{In: 1, Out: 1, K: tr.R, Pad: conv.SamePad(tr.R), H: 8, W: 8}
	tl, err := winograd.NewTiling(tr, p)
	if err != nil {
		panic(err)
	}
	x := tensor.New(1, 1, p.H, p.W)
	for i := range x.Data {
		x.Data[i] = 1
	}
	w := tensor.New(1, 1, tr.R, tr.R)
	for i := range w.Data {
		w.Data[i] = wv
	}
	xd := tl.TransformInput(x)
	wd := winograd.TransformWeights(tr, w)
	yd := winograd.MulForward(xd, wd, nil)
	tile := tensor.NewMat(tr.T, tr.T)
	for e := range yd.El {
		tile.Data[e] = yd.El[e].At(0, 0)
	}
	return tile
}

// TestPredictionCatchesObviousCases: strongly negative output tiles must be
// predicted non-activated (the prediction is useful, not just safe), and
// strongly positive tiles must not be.
func TestPredictionUseful(t *testing.T) {
	tr := winograd.F2x2_3x3

	negTile := realOutputTile(tr, -1)
	if !TrueNonActivated(tr, negTile) {
		t.Fatal("test setup: negative tile is not truly non-activated")
	}
	pNeg := NewPredictor(tr, MustQuantizer(4, 6, EstimateSigma(negTile.Data)))
	if !pNeg.Predict2D(negTile).NonActivated() {
		t.Fatal("strongly negative tile not predicted non-activated (2D)")
	}
	if rows := pNeg.Predict1D(negTile).NonActivatedRows(); !rows[0] || !rows[1] {
		t.Fatal("strongly negative tile not predicted non-activated (1D)")
	}

	posTile := realOutputTile(tr, 1)
	pPos := NewPredictor(tr, MustQuantizer(4, 6, EstimateSigma(posTile.Data)))
	if pPos.Predict2D(posTile).NonActivated() {
		t.Fatal("strongly positive tile predicted non-activated")
	}
}

// Test1DTighterThan2D: with equal settings, 1-D prediction must catch at
// least as many non-activated lines as 2-D catches tiles, because its error
// bound skips one accumulation stage (Section V-B's headline result).
func Test1DTighterThan2D(t *testing.T) {
	tr := winograd.F2x2_3x3
	r := tensor.NewRNG(79)
	var sample []float32
	for i := 0; i < 50; i++ {
		sample = append(sample, randomTile(tr, r, -0.8).Data...)
	}
	sigma := EstimateSigma(sample)
	q := MustQuantizer(4, 5, sigma)
	p := NewPredictor(tr, q)

	var pred1Err, pred2Err float64
	const trials = 200
	for i := 0; i < trials; i++ {
		tile := randomTile(tr, r, -0.8)
		e2 := p.Predict2D(tile).MaxErr
		e1 := p.Predict1D(tile).MaxErr
		for j := range e1.Data {
			pred1Err += float64(e1.Data[j])
			pred2Err += float64(e2.Data[j])
		}
	}
	if pred1Err >= pred2Err {
		t.Fatalf("1D mean error bound %v not tighter than 2D %v", pred1Err, pred2Err)
	}
}

func TestPredictionOverflowIsConservative(t *testing.T) {
	tr := winograd.F2x2_3x3
	q := MustQuantizer(4, 6, 0.001) // tiny range: everything overflows
	p := NewPredictor(tr, q)
	tile := tensor.NewMat(tr.T, tr.T)
	for i := range tile.Data {
		tile.Data[i] = -100 // truly non-activated but unrepresentable
	}
	pr := p.Predict2D(tile)
	if !pr.Overflow {
		t.Fatal("overflow not detected")
	}
	if pr.NonActivated() {
		t.Fatal("overflowed tile must be treated as activated")
	}
	for _, row := range pr.NonActivatedRows() {
		if row {
			t.Fatal("overflowed rows must be treated as activated")
		}
	}
}

// TestMeasureGatherOnRealLayer runs the full measurement pipeline on a
// real Winograd forward pass with negative-biased pre-activations and
// checks the Fig. 12 structure: pred ≤ true, no false negatives, and a
// non-trivial skip ratio.
func TestMeasureGatherOnRealLayer(t *testing.T) {
	tr := winograd.F2x2_3x3
	p := conv.Params{In: 4, Out: 8, K: 3, Pad: 1, H: 12, W: 12}
	r := tensor.NewRNG(83)
	tl, err := winograd.NewTiling(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, p.In, p.H, p.W)
	w := tensor.New(p.Out, p.In, 3, 3)
	r.FillNormal(x, -0.2, 1) // bias toward non-activation
	r.FillHe(w, p.In*9)
	xd := tl.TransformInput(x)
	wd := winograd.TransformWeights(tr, w)
	yd := winograd.MulForward(xd, wd, nil)

	var sample []float32
	for _, el := range yd.El {
		sample = append(sample, el.Data...)
	}
	sigma := EstimateSigma(sample)
	p2 := NewPredictor(tr, MustQuantizer(4, 6, sigma))
	p1 := NewPredictor(tr, MustQuantizer(4, 5, sigma))

	s := MeasureGather(yd, p2, p1)
	if s.FalseNegatives != 0 {
		t.Fatalf("%d false negatives", s.FalseNegatives)
	}
	if s.PredNonActTiles > s.TrueNonActTiles {
		t.Fatal("2D prediction exceeds oracle")
	}
	if s.PredNonActLines > s.TrueNonActLines {
		t.Fatal("1D prediction exceeds oracle")
	}
	if s.Tiles == 0 || s.Lines != s.Tiles*tr.M {
		t.Fatalf("tile/line accounting wrong: %d tiles, %d lines", s.Tiles, s.Lines)
	}
	if s.TrueNonActTiles > 0 && s.PredNonActTiles == 0 {
		t.Log("warning: 2D prediction caught nothing; acceptable but weak")
	}
}

func TestScatterZeroRatio(t *testing.T) {
	tr := winograd.F2x2_3x3
	p := conv.Params{In: 2, Out: 2, K: 3, Pad: 1, H: 8, W: 8}
	tl, _ := winograd.NewTiling(tr, p)
	x := tensor.New(1, 2, 8, 8) // all zero input
	xd := tl.TransformInput(x)
	if r := ScatterZeroRatio(xd); r != 1 {
		t.Fatalf("all-zero input: ratio %v, want 1", r)
	}
	rng := tensor.NewRNG(5)
	rng.FillNormal(x, 1, 0.1) // strictly positive, dense input
	xd = tl.TransformInput(x)
	ratio := ScatterZeroRatio(xd)
	// Some elements are exactly zero only by cancellation; ratio must be
	// small but the function must not report 1.
	if ratio > 0.5 {
		t.Fatalf("dense input: ratio %v unexpectedly high", ratio)
	}
}

func TestGatherTrafficReduction(t *testing.T) {
	// 50% skip with 6-bit codes: 0.5 − 6/32 = 0.3125
	if got := GatherTrafficReduction(0.5, 6); math.Abs(got-0.3125) > 1e-12 {
		t.Fatalf("reduction = %v", got)
	}
	// overhead exceeding savings clamps to 0
	if got := GatherTrafficReduction(0.1, 6); got != 0 {
		t.Fatalf("reduction = %v, want 0", got)
	}
}

// Property: Encode/Decode round-trips Quantize exactly for in-range values.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	q := MustQuantizer(4, 6, 1.0)
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		for i := 0; i < 40; i++ {
			v := float32(r.NormFloat64() * 1.5)
			qv, res, ov := q.Quantize(v)
			if ov {
				continue
			}
			dq, dres := q.Decode(q.Encode(v))
			if math.Abs(float64(dq-qv)) > 1e-6 || math.Abs(float64(dres-res)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeFitsCodeWidth(t *testing.T) {
	for _, cfg := range []struct{ regions, bits int }{{4, 6}, {2, 5}, {1, 4}} {
		q := MustQuantizer(cfg.regions, cfg.bits, 1.0)
		r := tensor.NewRNG(5)
		for i := 0; i < 500; i++ {
			v := float32(r.NormFloat64() * 10) // includes overflow values
			code := q.Encode(v)
			if code >= 1<<cfg.bits {
				t.Fatalf("code %d exceeds %d bits", code, cfg.bits)
			}
		}
	}
}

func TestDecodeSignHandling(t *testing.T) {
	q := MustQuantizer(4, 6, 1.0)
	qv, _, _ := q.Quantize(float32(-0.37))
	dq, _ := q.Decode(q.Encode(-0.37))
	if dq != qv {
		t.Fatalf("negative decode %v != quantize %v", dq, qv)
	}
	if dq >= 0 {
		t.Fatal("negative value decoded non-negative")
	}
}
