// Package quant implements Section V of the paper: non-uniform quantization
// of Winograd-domain values, conservative activation prediction (1-D and
// 2-D predict) with no false negatives, and zero-skipping — the mechanisms
// that shrink tile-gathering and tile-scattering communication.
package quant

import (
	"fmt"
	"math"
	"math/bits"
)

// Quantizer is the non-uniform quantizer of Fig. 10: the value range is
// split into Regions regions, each holding StepsPerRegion steps, with the
// step size doubling from one region to the next (Δ, 2Δ, 4Δ, …). The base
// step Δ is derived from the standard deviation of the value distribution,
// which the paper observed to be normal for Winograd-domain tiles.
//
// Quantization floors toward −∞, so the quantization error e = v − q always
// satisfies 0 ≤ e ≤ res(v); this one-sidedness is what the pos/neg
// coefficient split of the predictor exploits.
type Quantizer struct {
	Regions        int     // number of step-doubling regions (paper's best: 4)
	Bits           int     // code width including sign (paper: 5 or 6)
	Sigma          float32 // standard deviation of the real values
	RangeSigmas    float64 // half-range covered, in sigmas (default 4)
	StepsPerRegion int     // derived: levels-per-sign / Regions
	Delta          float32 // derived: base step size
}

// NewQuantizer builds a quantizer for bits-wide codes with the given number
// of regions, calibrated to standard deviation sigma. levels-per-sign is
// 2^(bits-1); it must be divisible by regions.
func NewQuantizer(regions, bits int, sigma float32) (*Quantizer, error) {
	if regions < 1 {
		return nil, fmt.Errorf("quant: regions must be >= 1, got %d", regions)
	}
	if bits < 2 || bits > 16 {
		return nil, fmt.Errorf("quant: bits must be in [2,16], got %d", bits)
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("quant: sigma must be positive, got %v", sigma)
	}
	perSign := 1 << (bits - 1)
	if perSign%regions != 0 {
		return nil, fmt.Errorf("quant: %d levels per sign not divisible by %d regions", perSign, regions)
	}
	q := &Quantizer{
		Regions:        regions,
		Bits:           bits,
		Sigma:          sigma,
		RangeSigmas:    4,
		StepsPerRegion: perSign / regions,
	}
	// Half-range in base steps is S·(2^R − 1); solve Δ from the σ coverage.
	q.Delta = float32(q.RangeSigmas * float64(sigma) / float64(q.StepsPerRegion*((1<<regions)-1)))
	return q, nil
}

// MustQuantizer is NewQuantizer that panics on error.
func MustQuantizer(regions, bits int, sigma float32) *Quantizer {
	q, err := NewQuantizer(regions, bits, sigma)
	if err != nil {
		panic(err)
	}
	return q
}

// HalfRange returns the largest representable magnitude; values beyond it
// overflow.
func (q *Quantizer) HalfRange() float32 {
	return q.Delta * float32(q.StepsPerRegion*((1<<q.Regions)-1))
}

// regionOfUnits returns the step-doubling region holding a grid magnitude
// of u base-step units, using the integer-arithmetic-and-bit-shift
// formulation of Fig. 10(b): the region index is the bit position of the
// most significant bit of u/S + 1.
func (q *Quantizer) regionOfUnits(u int) int {
	return bits.Len(uint(u/q.StepsPerRegion+1)) - 1
}

// quantAbsUnits floors a non-negative magnitude to the grid, in integer
// base-step units: gridU is the quantized magnitude, stepU the region's
// step size (both in units of Δ).
func (q *Quantizer) quantAbsUnits(mag float32) (gridU, stepU int, overflow bool) {
	s := q.StepsPerRegion
	u := int(mag / q.Delta) // floor in base-step units
	region := q.regionOfUnits(u)
	if region >= q.Regions {
		// Clamp to the top grid point and flag overflow; the predictor must
		// treat overflowed elements conservatively.
		return s * ((1 << q.Regions) - 1), 1 << (q.Regions - 1), true
	}
	step := 1 << region
	regionLow := (step - 1) * s
	idx := (u - regionLow) >> region
	return regionLow + idx<<region, step, false
}

// stepOfGridUnits returns the resolution (in Δ units) at grid magnitude u
// — the step of the region u belongs to, so grid points on a region
// boundary take the wider (upper) region's step, keeping Quantize, Encode
// and Decode canonical.
func (q *Quantizer) stepOfGridUnits(u int) int {
	region := q.regionOfUnits(u)
	if region >= q.Regions {
		region = q.Regions - 1
	}
	return 1 << region
}

// Quantize floors v to the non-uniform grid and returns the quantized value
// q ≤ v, the resolution res such that v − q ∈ [0, res], and an overflow
// flag for values beyond the representable range.
func (q *Quantizer) Quantize(v float32) (qv, res float32, overflow bool) {
	if v >= 0 {
		g, step, ov := q.quantAbsUnits(v)
		return q.Delta * float32(g), q.Delta * float32(step), ov
	}
	g, step, ov := q.quantAbsUnits(float32(math.Abs(float64(v))))
	// Floor toward −∞ for negatives: −g ≥ v would violate q ≤ v whenever
	// g < |v|, so step up one grid point in magnitude. That may cross into
	// the next region; report that region's (wider) resolution, which
	// still bounds the error. Stepping onto the range boundary itself
	// (s·(2^R−1) units) leaves the encodable level space, so it is flagged
	// as overflow — the predictor then treats the element conservatively.
	if q.Delta*float32(g) < -v {
		g += step
		step = q.stepOfGridUnits(g)
		if g >= q.StepsPerRegion*((1<<q.Regions)-1) {
			ov = true
		}
	}
	return -q.Delta * float32(g), q.Delta * float32(step), ov
}

// QuantizeSlice quantizes every value, writing quantized values and
// resolutions in place; it returns whether any element overflowed.
func (q *Quantizer) QuantizeSlice(v, qv, res []float32) (overflow bool) {
	if len(qv) != len(v) || len(res) != len(v) {
		panic("quant: QuantizeSlice length mismatch")
	}
	for i, x := range v {
		var ov bool
		qv[i], res[i], ov = q.Quantize(x)
		overflow = overflow || ov
	}
	return overflow
}

// CodeBits returns the per-value payload width in bits: one sign bit plus
// the level index (region+step) — the wire cost of a prediction message.
func (q *Quantizer) CodeBits() int { return q.Bits }

// Encode quantizes v to its wire code: bit (Bits-1) is the sign, the low
// bits are the magnitude's level index on the non-uniform grid (clamped at
// the top level on overflow). Decode(Encode(v)) reproduces Quantize(v)'s
// quantized value and resolution exactly for in-range values.
func (q *Quantizer) Encode(v float32) uint32 {
	var sign uint32
	var u int
	if v >= 0 {
		u, _, _ = q.quantAbsUnits(v)
	} else {
		sign = 1 << (q.Bits - 1)
		var step int
		var ov bool
		u, step, ov = q.quantAbsUnits(float32(-float64(v)))
		if !ov && q.Delta*float32(u) < -v {
			u += step
		}
	}
	return sign | q.levelOfUnits(u)
}

// levelOfUnits maps a grid magnitude in base-step units to its level index.
func (q *Quantizer) levelOfUnits(u int) uint32 {
	s := q.StepsPerRegion
	region := q.regionOfUnits(u)
	if region >= q.Regions {
		region = q.Regions - 1
	}
	step := 1 << region
	regionLow := (step - 1) * s
	idx := (u - regionLow) >> region
	if idx < 0 {
		idx = 0
	}
	// Overflowed magnitudes clamp to the top in-range level (the overflow
	// condition itself travels via Quantize's flag).
	if idx > s-1 && region == q.Regions-1 {
		idx = s - 1
	}
	return uint32(region*s + idx)
}

// Decode returns the quantized value and resolution for a wire code.
func (q *Quantizer) Decode(code uint32) (qv, res float32) {
	sign := code&(1<<(q.Bits-1)) != 0
	level := int(code & ((1 << (q.Bits - 1)) - 1))
	s := q.StepsPerRegion
	region := level / s
	if region >= q.Regions {
		region = q.Regions - 1
	}
	idx := level - region*s
	u := ((1<<region)-1)*s + idx<<region
	qv = q.Delta * float32(u)
	res = q.Delta * float32(q.stepOfGridUnits(u))
	if sign {
		qv = -qv
	}
	return qv, res
}

// EstimateSigma returns the sample standard deviation of values, used to
// calibrate the quantizer to a layer's Winograd-domain distribution (the
// paper precomputes log(1/Δ) per layer from profiling).
func EstimateSigma(values []float32) float32 {
	if len(values) == 0 {
		return 1
	}
	var sum, sumsq float64
	for _, v := range values {
		sum += float64(v)
		sumsq += float64(v) * float64(v)
	}
	n := float64(len(values))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance <= 0 {
		return 1e-12
	}
	return float32(math.Sqrt(variance))
}
