// Package topology builds the memory-centric network graphs of Section IV:
// rings for weight collectives, 2-D flattened butterflies (FBFLY) for tile
// transfer inside clusters, and the hybrid group/cluster fabric with the
// three dynamic-clustering wirings (host links bridging groups). It also
// computes minimal-routing tables used by the flit-level simulator.
package topology

import "fmt"

// LinkClass distinguishes the paper's physical link types (Table III).
type LinkClass int

const (
	// Full is a full-width link: 16 lanes × 15 Gbps = 30 GB/s/direction,
	// used by the collective rings.
	Full LinkClass = iota
	// Narrow is a narrow link: 8 lanes × 10 Gbps = 10 GB/s/direction, used
	// by the FBFLY inside clusters.
	Narrow
	// Host is connectivity routed through the host processor, used by
	// dynamic clustering to splice groups together; same width as Full but
	// with an extra SerDes hop of latency.
	Host
)

// Bandwidth returns the link's one-direction bandwidth in bytes per second.
func (c LinkClass) Bandwidth() float64 {
	switch c {
	case Narrow:
		return 10e9
	default:
		return 30e9
	}
}

// String names the class.
func (c LinkClass) String() string {
	switch c {
	case Full:
		return "full"
	case Narrow:
		return "narrow"
	case Host:
		return "host"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Edge is one directed link.
type Edge struct {
	To    int
	Class LinkClass
}

// Graph is a directed multigraph over N worker nodes. All builders emit
// symmetric (bidirectional) connectivity.
type Graph struct {
	N   int
	Adj [][]Edge
}

// NewGraph allocates an edgeless graph of n nodes.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("topology: invalid node count %d", n))
	}
	return &Graph{N: n, Adj: make([][]Edge, n)}
}

// AddBidirectional inserts links a→b and b→a of the given class. Duplicate
// links between the same pair are ignored (the builders may generate the
// same FBFLY edge from both endpoints).
func (g *Graph) AddBidirectional(a, b int, class LinkClass) {
	if a == b {
		return
	}
	g.addDirected(a, b, class)
	g.addDirected(b, a, class)
}

func (g *Graph) addDirected(a, b int, class LinkClass) {
	for _, e := range g.Adj[a] {
		if e.To == b {
			return
		}
	}
	g.Adj[a] = append(g.Adj[a], Edge{To: b, Class: class})
}

// RemoveBidirectional deletes the links a→b and b→a if present. Routing
// tables built before a removal are stale; rebuild with BuildRoutes.
func (g *Graph) RemoveBidirectional(a, b int) {
	g.removeDirected(a, b)
	g.removeDirected(b, a)
}

func (g *Graph) removeDirected(a, b int) {
	adj := g.Adj[a]
	for i, e := range adj {
		if e.To == b {
			g.Adj[a] = append(adj[:i], adj[i+1:]...)
			return
		}
	}
}

// RemoveNode deletes every link touching v, isolating it from the fabric —
// the topology-level effect of a permanent module failure. The node index
// space is preserved so worker ids stay stable; v simply becomes an island
// with degree 0. Routing tables must be rebuilt afterwards.
func (g *Graph) RemoveNode(v int) {
	for _, e := range g.Adj[v] {
		g.removeDirected(e.To, v)
	}
	g.Adj[v] = nil
}

// Clone returns a deep copy of the graph, so fault scenarios can mutate a
// working copy while the pristine wiring stays available for recovery
// planning.
func (g *Graph) Clone() *Graph {
	out := NewGraph(g.N)
	for v, adj := range g.Adj {
		out.Adj[v] = append([]Edge(nil), adj...)
	}
	return out
}

// Degree returns node v's out-degree.
func (g *Graph) Degree(v int) int { return len(g.Adj[v]) }

// Edges returns the total directed edge count.
func (g *Graph) Edges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

// Ring builds a bidirectional ring of n nodes with Full links — the
// data-parallel baseline's collective fabric.
func Ring(n int) *Graph {
	g := NewGraph(n)
	if n == 1 {
		return g
	}
	for i := 0; i < n; i++ {
		g.AddBidirectional(i, (i+1)%n, Full)
	}
	return g
}

// FBFly2D builds a 2-D flattened butterfly over side×side nodes: every
// node links to all nodes sharing its row and all sharing its column, so
// any pair is at most 2 hops apart — the all-to-all fabric the paper uses
// for 16-worker clusters.
func FBFly2D(side int) *Graph {
	n := side * side
	g := NewGraph(n)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := r*side + c
			for c2 := c + 1; c2 < side; c2++ {
				g.AddBidirectional(v, r*side+c2, Narrow)
			}
			for r2 := r + 1; r2 < side; r2++ {
				g.AddBidirectional(v, r2*side+c, Narrow)
			}
		}
	}
	return g
}

// FullyConnected builds a complete graph with Narrow links — the 4-worker
// cluster wiring of the (4, 64) configuration, where "tile data can be
// transferred in a single hop".
func FullyConnected(n int) *Graph {
	g := NewGraph(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			g.AddBidirectional(a, b, Narrow)
		}
	}
	return g
}

// WorkerID maps (group, cluster) coordinates to the node index used by all
// hybrid builders: group-major, so group g's ring is the contiguous block
// [g·nc, (g+1)·nc).
func WorkerID(g, c, nc int) int { return g*nc + c }

// Hybrid builds the MPT fabric for ng groups × nc clusters:
//
//   - a Full-link ring over the nc workers of each group (weight
//     collectives), and
//   - a Narrow-link cluster fabric over the ng workers of each cluster
//     (tile transfer): a 4×4 FBFLY when ng = 16, fully connected when
//     2 ≤ ng ≤ 4, nothing when ng = 1.
//
// hostBridged marks the ring links that dynamic clustering realizes through
// the host (when the physical system is wired as 16 groups but configured
// with fewer): for ng < 16 every nc/16-th... — concretely, with the paper's
// fixed physical wiring the spliced ring crosses the host once per physical
// group boundary, which we mark as Host-class links at those positions.
func Hybrid(ng, nc int, hostBridged bool) *Graph {
	p := ng * nc
	g := NewGraph(p)
	// Rings within groups.
	physGroups := 16 // the machine is physically wired as 16 groups
	for grp := 0; grp < ng; grp++ {
		if nc == 1 {
			continue
		}
		for c := 0; c < nc; c++ {
			a := WorkerID(grp, c, nc)
			b := WorkerID(grp, (c+1)%nc, nc)
			class := Full
			if hostBridged && ng < physGroups && physGroups%ng == 0 {
				// The spliced ring crosses the host every nc·ng/16 workers
				// (once per physical group traversed).
				span := nc * ng / physGroups
				if span > 0 && (c+1)%span == 0 {
					class = Host
				}
			}
			g.AddBidirectional(a, b, class)
		}
	}
	// Cluster fabric across groups.
	switch {
	case ng >= 5:
		// FBFLY over a near-square factorization of ng (4×4 for 16).
		side := fbflySide(ng)
		for c := 0; c < nc; c++ {
			for r1 := 0; r1 < ng/side; r1++ {
				for c1 := 0; c1 < side; c1++ {
					v := r1*side + c1
					for c2 := c1 + 1; c2 < side; c2++ {
						g.AddBidirectional(WorkerID(v, c, nc), WorkerID(r1*side+c2, c, nc), Narrow)
					}
					for r2 := r1 + 1; r2 < ng/side; r2++ {
						g.AddBidirectional(WorkerID(v, c, nc), WorkerID(r2*side+c1, c, nc), Narrow)
					}
				}
			}
		}
	case ng >= 2:
		for c := 0; c < nc; c++ {
			for a := 0; a < ng; a++ {
				for b := a + 1; b < ng; b++ {
					g.AddBidirectional(WorkerID(a, c, nc), WorkerID(b, c, nc), Narrow)
				}
			}
		}
	}
	return g
}

// fbflySide returns the largest factor of ng not exceeding √ng, giving the
// most square FBFLY arrangement.
func fbflySide(ng int) int {
	best := 1
	for s := 1; s*s <= ng; s++ {
		if ng%s == 0 {
			best = s
		}
	}
	return best
}
