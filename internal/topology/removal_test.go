package topology

import (
	"strings"
	"testing"
)

func TestRemoveBidirectional(t *testing.T) {
	g := Ring(6)
	before := g.Edges()
	g.RemoveBidirectional(0, 1)
	if g.Edges() != before-2 {
		t.Fatalf("edge count %d after removal, want %d", g.Edges(), before-2)
	}
	for _, e := range g.Adj[0] {
		if e.To == 1 {
			t.Fatal("edge 0->1 survived removal")
		}
	}
	for _, e := range g.Adj[1] {
		if e.To == 0 {
			t.Fatal("edge 1->0 survived removal")
		}
	}
	// Removing a non-edge is a no-op.
	g.RemoveBidirectional(0, 3)
	if g.Edges() != before-2 {
		t.Fatal("removing a non-edge changed the graph")
	}
}

func TestRemoveNodeIsolates(t *testing.T) {
	g := FBFly2D(4)
	v := 5
	deg := g.Degree(v)
	if deg == 0 {
		t.Fatal("test node has no links")
	}
	before := g.Edges()
	g.RemoveNode(v)
	if g.Degree(v) != 0 {
		t.Fatalf("failed node still has degree %d", g.Degree(v))
	}
	if g.Edges() != before-2*deg {
		t.Fatalf("edges %d after removal, want %d", g.Edges(), before-2*deg)
	}
	for u := 0; u < g.N; u++ {
		for _, e := range g.Adj[u] {
			if e.To == v {
				t.Fatalf("node %d still links to removed node", u)
			}
		}
	}
	if g.N != 16 {
		t.Fatal("RemoveNode changed the index space")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Hybrid(4, 4, false)
	c := g.Clone()
	c.RemoveNode(0)
	if g.Degree(0) == 0 {
		t.Fatal("mutating the clone changed the original")
	}
	if c.Degree(0) != 0 {
		t.Fatal("clone did not take the mutation")
	}
}

func TestCheckReachable(t *testing.T) {
	g := Ring(8)
	rt := BuildRoutes(g)
	all := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if err := rt.CheckReachable(all); err != nil {
		t.Fatalf("healthy ring reported partitioned: %v", err)
	}

	// Cut the ring twice: {1..3} and {5..7} split from each other once 0
	// and 4 are gone.
	g.RemoveNode(0)
	g.RemoveNode(4)
	rt = BuildRoutes(g)
	if err := rt.CheckReachable([]int{1, 2, 3}); err != nil {
		t.Fatalf("intact segment reported partitioned: %v", err)
	}
	err := rt.CheckReachable([]int{1, 5})
	if err == nil {
		t.Fatal("partition not detected")
	}
	if !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("error %q does not name the partition", err)
	}
	if err := rt.CheckReachable([]int{1, 99}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}
