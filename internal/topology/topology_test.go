package topology

import (
	"testing"
	"testing/quick"

	"math/rand"
)

func TestRing(t *testing.T) {
	g := Ring(8)
	for v := 0; v < 8; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("ring node %d degree %d", v, g.Degree(v))
		}
	}
	rt := BuildRoutes(g)
	if rt.Diameter() != 4 {
		t.Fatalf("ring-8 diameter %d, want 4", rt.Diameter())
	}
	// Minimal routing goes the short way around.
	if rt.HopCount(0, 7) != 1 || rt.HopCount(0, 4) != 4 {
		t.Fatal("ring hop counts wrong")
	}
}

func TestRingSingleNode(t *testing.T) {
	g := Ring(1)
	if g.Edges() != 0 {
		t.Fatal("1-ring should have no edges")
	}
}

func TestFBFly2D(t *testing.T) {
	g := FBFly2D(4) // the paper's 16-worker cluster
	// Degree: 3 row + 3 column neighbors.
	for v := 0; v < 16; v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("fbfly node %d degree %d, want 6", v, g.Degree(v))
		}
	}
	rt := BuildRoutes(g)
	// The paper: "tile data can be transferred with a maximum of 2 hop count".
	if rt.Diameter() != 2 {
		t.Fatalf("fbfly diameter %d, want 2", rt.Diameter())
	}
}

func TestFullyConnected(t *testing.T) {
	g := FullyConnected(4)
	rt := BuildRoutes(g)
	if rt.Diameter() != 1 {
		t.Fatalf("K4 diameter %d, want 1 (single hop, Section IV)", rt.Diameter())
	}
}

func TestLinkClassBandwidth(t *testing.T) {
	if Full.Bandwidth() != 30e9 || Host.Bandwidth() != 30e9 {
		t.Fatal("full/host bandwidth wrong")
	}
	if Narrow.Bandwidth() != 10e9 {
		t.Fatal("narrow bandwidth wrong")
	}
	if Full.String() != "full" || Narrow.String() != "narrow" || Host.String() != "host" {
		t.Fatal("class names wrong")
	}
}

func TestHybrid16x16(t *testing.T) {
	g := Hybrid(16, 16, false)
	if g.N != 256 {
		t.Fatalf("N = %d", g.N)
	}
	rt := BuildRoutes(g)
	// Everything reachable.
	for dst := 0; dst < g.N; dst++ {
		if dst != 0 && rt.HopCount(0, dst) <= 0 {
			t.Fatalf("node %d unreachable", dst)
		}
	}
	// Within a cluster (same c, varying g) the FBFLY gives ≤2 hops.
	for grp := 1; grp < 16; grp++ {
		h := rt.HopCount(WorkerID(0, 3, 16), WorkerID(grp, 3, 16))
		if h > 2 {
			t.Fatalf("intra-cluster hop count %d > 2", h)
		}
	}
	// Ring edges within a group are Full links.
	class := rt.LinkClassOf(WorkerID(2, 0, 16), WorkerID(2, 1, 16))
	if class != Full {
		t.Fatalf("group ring link class %v", class)
	}
	// Cluster edges are Narrow links.
	class = rt.LinkClassOf(WorkerID(0, 5, 16), WorkerID(1, 5, 16))
	if class != Narrow {
		t.Fatalf("cluster link class %v", class)
	}
}

func TestHybrid4x64HostBridging(t *testing.T) {
	g := Hybrid(4, 64, true)
	rt := BuildRoutes(g)
	// Each 64-long ring must contain host-class links: one per physical
	// group boundary (64·4/16 = 16-worker spans → 4 host links per ring).
	hostLinks := 0
	for c := 0; c < 64; c++ {
		a := WorkerID(0, c, 64)
		b := WorkerID(0, (c+1)%64, 64)
		if rt.LinkClassOf(a, b) == Host {
			hostLinks++
		}
	}
	if hostLinks != 4 {
		t.Fatalf("host links per ring = %d, want 4", hostLinks)
	}
	// 4-worker clusters are fully connected: 1 hop.
	for grp := 1; grp < 4; grp++ {
		if h := rt.HopCount(WorkerID(0, 9, 64), WorkerID(grp, 9, 64)); h != 1 {
			t.Fatalf("4-cluster hop %d, want 1", h)
		}
	}
}

func TestHybrid1x256IsRing(t *testing.T) {
	g := Hybrid(1, 256, true)
	rt := BuildRoutes(g)
	if rt.Diameter() != 128 {
		t.Fatalf("1x256 diameter %d, want 128", rt.Diameter())
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("node %d degree %d", v, g.Degree(v))
		}
	}
}

func TestAddBidirectionalDedup(t *testing.T) {
	g := NewGraph(3)
	g.AddBidirectional(0, 1, Full)
	g.AddBidirectional(0, 1, Narrow) // duplicate must be ignored
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("duplicate edge not ignored")
	}
	g.AddBidirectional(2, 2, Full) // self loop ignored
	if g.Degree(2) != 0 {
		t.Fatal("self loop added")
	}
}

// Property: routes computed by BuildRoutes are consistent — following
// NextHop from src decreases the distance by exactly 1 each step.
func TestRoutesAreMinimalPaths(t *testing.T) {
	f := func(seed uint64) bool {
		r := seed
		next := func(n int) int {
			r += 0x9e3779b97f4a7c15
			z := r
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			return int((z ^ (z >> 27)) % uint64(n))
		}
		ngChoices := []int{1, 4, 16}
		ng := ngChoices[next(3)]
		nc := []int{4, 8, 16}[next(3)]
		g := Hybrid(ng, nc, next(2) == 0)
		rt := BuildRoutes(g)
		src, dst := next(g.N), next(g.N)
		if src == dst {
			return true
		}
		v := src
		steps := 0
		for v != dst {
			nh := rt.NextHop(v, dst)
			if nh < 0 {
				return false
			}
			if rt.HopCount(nh, dst) != rt.HopCount(v, dst)-1 {
				return false
			}
			v = nh
			steps++
			if steps > g.N {
				return false
			}
		}
		return steps == rt.HopCount(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestFbflySide(t *testing.T) {
	if fbflySide(16) != 4 {
		t.Fatalf("fbflySide(16) = %d", fbflySide(16))
	}
	if fbflySide(8) != 2 {
		t.Fatalf("fbflySide(8) = %d", fbflySide(8))
	}
}
