package topology

import "fmt"

// RouteTable holds minimal-routing next hops: Next[src][dst] is the
// neighbor src forwards to on a minimal path toward dst (Table III:
// "Routing: Minimal"). Ties break toward the lowest-numbered neighbor,
// which keeps routes deterministic across runs.
type RouteTable struct {
	g    *Graph
	Next [][]int32
	Dist [][]int32
}

// BuildRoutes computes all-pairs minimal routes with one BFS per source.
// For the ≤256-node fabrics of the paper this is instantaneous.
func BuildRoutes(g *Graph) *RouteTable {
	rt := &RouteTable{
		g:    g,
		Next: make([][]int32, g.N),
		Dist: make([][]int32, g.N),
	}
	for src := 0; src < g.N; src++ {
		next := make([]int32, g.N)
		dist := make([]int32, g.N)
		for i := range next {
			next[i] = -1
			dist[i] = -1
		}
		dist[src] = 0
		// BFS from src; record each node's predecessor, then walk back to
		// find the first hop.
		pred := make([]int32, g.N)
		for i := range pred {
			pred[i] = -1
		}
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.Adj[v] {
				if dist[e.To] == -1 {
					dist[e.To] = dist[v] + 1
					pred[e.To] = int32(v)
					queue = append(queue, e.To)
				}
			}
		}
		for dst := 0; dst < g.N; dst++ {
			if dst == src || dist[dst] == -1 {
				continue
			}
			hop := int32(dst)
			for pred[hop] != int32(src) {
				hop = pred[hop]
			}
			next[dst] = hop
		}
		rt.Next[src] = next
		rt.Dist[src] = dist
	}
	return rt
}

// NextHop returns the neighbor src forwards to for dst, or -1 when dst is
// src or unreachable.
func (rt *RouteTable) NextHop(src, dst int) int { return int(rt.Next[src][dst]) }

// HopCount returns the minimal hop count between src and dst (-1 when
// unreachable).
func (rt *RouteTable) HopCount(src, dst int) int { return int(rt.Dist[src][dst]) }

// CheckReachable verifies that every ordered pair of the given nodes has a
// route, returning a descriptive error for the first partitioned pair — the
// check the fault-recovery path runs after removing failed modules, so an
// unreachable destination surfaces as an error instead of a simulator
// deadlock.
func (rt *RouteTable) CheckReachable(nodes []int) error {
	for _, v := range nodes {
		if v < 0 || v >= rt.g.N {
			return fmt.Errorf("topology: node %d outside graph of %d nodes", v, rt.g.N)
		}
	}
	for _, src := range nodes {
		for _, dst := range nodes {
			if src == dst {
				continue
			}
			if rt.Dist[src][dst] == -1 {
				return fmt.Errorf("topology: no route %d->%d (network partitioned)", src, dst)
			}
		}
	}
	return nil
}

// Diameter returns the largest finite hop count in the network.
func (rt *RouteTable) Diameter() int {
	var d int32
	for _, row := range rt.Dist {
		for _, v := range row {
			if v > d {
				d = v
			}
		}
	}
	return int(d)
}

// LinkClassOf returns the class of the directed edge a→b. It panics when
// the edge does not exist (a routing bug).
func (rt *RouteTable) LinkClassOf(a, b int) LinkClass {
	for _, e := range rt.g.Adj[a] {
		if e.To == b {
			return e.Class
		}
	}
	panic("topology: LinkClassOf on a non-edge")
}
