package cosim

import (
	"testing"

	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/model"
	"mptwino/internal/ndp"
	"mptwino/internal/noc"
	"mptwino/internal/sim"
	"mptwino/internal/winograd"
)

// smallSpec is a 16-worker (4,4) MPT layer small enough for flit-level
// co-simulation.
func smallSpec() Spec {
	return Spec{
		Tr:    winograd.F2x2_3x3,
		P:     conv.Params{In: 32, Out: 32, K: 3, Pad: 1, H: 8, W: 8},
		Batch: 16,
		Ng:    4,
		Nc:    4,
		NDP:   ndp.DefaultConfig(),
		Net:   noc.DefaultConfig(),
	}
}

func TestCosimValidation(t *testing.T) {
	s := smallSpec()
	s.Ng = 0
	if _, err := New(s); err == nil {
		t.Fatal("Ng=0 accepted")
	}
	s = smallSpec()
	s.P.K = 5
	if _, err := New(s); err == nil {
		t.Fatal("kernel/transform mismatch accepted")
	}
	s = smallSpec()
	s.Ng = 17
	if _, err := New(s); err == nil {
		t.Fatal("Ng > T^2 accepted")
	}
}

func TestCosimCompletes(t *testing.T) {
	c, err := New(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles <= 0 || r.Seconds <= 0 {
		t.Fatalf("empty result %+v", r)
	}
	if r.ForwardCycles <= 0 || r.ForwardCycles >= r.Cycles {
		t.Fatalf("forward marker %d outside (0, %d)", r.ForwardCycles, r.Cycles)
	}
	// Both fabrics must have carried traffic: narrow (tile transfer) and
	// full (collective ring).
	if r.NetBytes[1] == 0 { // Narrow
		t.Fatal("no tile-transfer traffic on narrow links")
	}
	if r.NetBytes[0] == 0 { // Full
		t.Fatal("no collective traffic on full links")
	}
}

func TestCosimDeterminism(t *testing.T) {
	run := func() int64 {
		c, err := New(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Run(50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if run() != run() {
		t.Fatal("co-simulation not deterministic")
	}
}

// TestCosimSingleGroupHasNoTileTraffic: at Ng=1 the pipeline has no
// scatter/gather, only the collective.
func TestCosimSingleGroup(t *testing.T) {
	s := smallSpec()
	s.Ng, s.Nc = 1, 4
	c, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.NetBytes[1] != 0 {
		t.Fatalf("Ng=1 used narrow links: %v", r.NetBytes)
	}
	if r.NetBytes[0] == 0 {
		t.Fatal("no collective traffic")
	}
}

// TestCosimSingleClusterHasNoCollective: at Nc=1 there is no ring.
func TestCosimSingleCluster(t *testing.T) {
	s := smallSpec()
	s.Ng, s.Nc = 4, 1
	c, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.NetBytes[0] != 0 {
		t.Fatalf("Nc=1 used full links: %v", r.NetBytes)
	}
	if r.NetBytes[1] == 0 {
		t.Fatal("no tile traffic")
	}
}

// TestCosimTrafficMatchesCommModel: the flit-level byte counts must match
// the closed-form §III-C volumes (tile traffic crosses ~1.6 hops mean on
// the 4-group fully connected cluster = exactly 1 hop; collective bytes
// circle the ring 2(Nc−1) times).
func TestCosimTrafficMatchesCommModel(t *testing.T) {
	s := smallSpec()
	c, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tr := s.Tr
	inTiles := comm.TileBytes(tr, s.P, s.Batch, s.P.In)
	outTiles := comm.TileBytes(tr, s.P, s.Batch, s.P.Out)
	// fprop: X scattered + Y gathered; bprop: dY scattered. K4 clusters →
	// exactly 1 hop per byte.
	frac := float64(s.Ng-1) / float64(s.Ng)
	wantNarrow := float64(inTiles)*frac + 2*float64(outTiles)*frac
	gotNarrow := float64(r.NetBytes[1])
	if rel := abs(gotNarrow-wantNarrow) / wantNarrow; rel > 0.05 {
		t.Fatalf("narrow bytes %v vs model %v (rel %v)", gotNarrow, wantNarrow, rel)
	}
	// Collective: p workers each launch one chunk of shard/Nc bytes that
	// travels 2(Nc−1) hops.
	shard := comm.WinogradWeightBytes(tr, s.P) / int64(s.Ng)
	wantFull := float64(s.Ng*s.Nc) * float64(shard/int64(s.Nc)) * float64(2*(s.Nc-1))
	gotFull := float64(r.NetBytes[0])
	if rel := abs(gotFull-wantFull) / wantFull; rel > 0.05 {
		t.Fatalf("full bytes %v vs model %v (rel %v)", gotFull, wantFull, rel)
	}
}

// TestCosimCrossValidatesPhaseModel: the same layer shape through the
// event-driven phase model (internal/sim) must land within a small factor
// of the co-simulated cycle count — the check that justifies using the
// phase model at p=256.
func TestCosimCrossValidatesPhaseModel(t *testing.T) {
	spec := smallSpec()
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}

	sys := sim.DefaultSystem()
	sys.Workers = spec.Ng * spec.Nc
	l := model.Layer{Name: "cosim", P: spec.P}
	// Fixed (4,4) via the w_mp path at 16 workers (largest Ng dividing 16
	// is 16; force the comparison through a custom strategy by using the
	// fixed config — the sim picks Ng=16 at p=16, so compare against the
	// dynamic config which may pick (4,4) or (1,16); accept a loose band).
	pr := sys.SimulateLayer(l, spec.Batch, sim.WMp)
	ratio := r.Seconds / pr.TotalSec()
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("cosim %.3gs vs phase model %.3gs: ratio %.2f outside [0.2, 5]",
			r.Seconds, pr.TotalSec(), ratio)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestCosimMultiLayer chains three layers and checks completion, ordering
// via the forward marker, and that the makespan exceeds the single-layer
// run (more work, same machine).
func TestCosimMultiLayer(t *testing.T) {
	single := smallSpec()
	c1, err := New(single)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c1.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}

	multi := smallSpec()
	multi.Extra = []conv.Params{
		{In: 32, Out: 32, K: 3, Pad: 1, H: 8, W: 8},
		{In: 32, Out: 64, K: 3, Pad: 1, H: 8, W: 8},
	}
	c3, err := New(multi)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := c3.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Cycles <= r1.Cycles {
		t.Fatalf("3-layer run (%d) not longer than 1-layer (%d)", r3.Cycles, r1.Cycles)
	}
	if r3.ForwardCycles <= r1.ForwardCycles {
		t.Fatalf("3-layer forward (%d) not longer than 1-layer (%d)", r3.ForwardCycles, r1.ForwardCycles)
	}
	// Per-layer collectives: full-link traffic must scale with the summed
	// weight shards of all three layers.
	if r3.NetBytes[0] <= r1.NetBytes[0] {
		t.Fatal("multi-layer collective traffic not larger")
	}
}

// TestCosimMultiLayerValidation: a bad layer anywhere in the chain is
// rejected.
func TestCosimMultiLayerValidation(t *testing.T) {
	s := smallSpec()
	s.Extra = []conv.Params{{In: 32, Out: 32, K: 5, Pad: 2, H: 8, W: 8}}
	if _, err := New(s); err == nil {
		t.Fatal("mismatched kernel in Extra accepted")
	}
}
