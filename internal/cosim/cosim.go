// Package cosim is the detailed-mode simulator: it co-schedules every
// worker's NDP task pipeline (compute + DRAM, at the ndp timing model)
// with flit-level transport on the memory-centric network, cycle by cycle
// — the closest analogue of the paper's Booksim-based methodology, where
// "the logic layer, DRAM accesses, network communication, and the
// execution model were implemented in the network interface".
//
// A full 256-worker CNN iteration is intractable at this fidelity on one
// core, so cosim runs single layers at reduced scale (e.g. 16 workers) and
// serves to cross-check the event-driven phase model of internal/sim.
package cosim

import (
	"fmt"

	"mptwino/internal/conv"
	"mptwino/internal/ndp"
	"mptwino/internal/noc"
	"mptwino/internal/topology"
	"mptwino/internal/winograd"
)

// Spec describes the iteration to co-simulate. P is the (first) layer;
// Extra chains additional layers behind it (each layer's forward waits for
// the previous layer's activation, and its backward feeds the previous
// layer's gradient transform).
type Spec struct {
	Tr    *winograd.Transform
	P     conv.Params
	Extra []conv.Params
	Batch int
	Ng    int
	Nc    int

	NDP ndp.Config
	Net noc.Config
}

// layers returns the full layer list.
func (s Spec) layers() []conv.Params {
	return append([]conv.Params{s.P}, s.Extra...)
}

// Task pipeline stages; indices are identical on every worker so a message
// can name its destination stage directly.
const (
	tTransform  = iota // fprop: local input transform + scatter sends
	tDots              // fprop: element dot products (waits for scatters)
	tInverse           // fprop: gather + inverse transform + activation
	tGradXform         // bprop: output-gradient transform + scatter sends
	tBdots             // bprop: element dot products
	tGdots             // updateGrad: element dot products + first chunk send
	tCollective        // updateGrad: ring collective completion marker
	taskCount
)

// task is one pipeline stage, gated on local predecessors and on message
// arrivals.
type task struct {
	name     string
	cycles   int64 // compute/DRAM duration (max of the two, double-buffered)
	deps     []int
	waitMsgs int
	sends    []send // fired at completion

	started, finished bool
	finishAt          int64
	arrived           int
	depsDone          int
}

type send struct {
	dst   int
	bytes int
	task  int
	hop   int
}

// worker is one NDP module's execution state; a single compute engine
// serializes its tasks.
type worker struct {
	id    int
	tasks []*task
	busy  int
	// pendingFwd buffers collective chunks (per layer base) that arrived
	// before this worker's own gradient was ready (the Reduce block holds
	// them in its communication buffer).
	pendingFwd map[int][]send
}

// Result summarizes one co-simulated iteration.
type Result struct {
	Cycles  int64
	Seconds float64
	// ForwardCycles is the cycle at which the last worker finished the
	// forward pass (tInverse).
	ForwardCycles int64
	NetBytes      map[topology.LinkClass]int64
}

// Cosim couples the workers with the network.
type Cosim struct {
	spec    Spec
	net     *noc.Network
	workers []*worker
	now     int64
}

// New builds the co-simulator: the hybrid (Ng, Nc) fabric plus one task
// pipeline per worker covering fprop, bprop, and the updateGrad ring
// collective.
func New(spec Spec) (*Cosim, error) {
	if spec.Ng < 1 || spec.Nc < 1 {
		return nil, fmt.Errorf("cosim: bad shape Ng=%d Nc=%d", spec.Ng, spec.Nc)
	}
	for _, lp := range spec.layers() {
		if err := lp.Validate(); err != nil {
			return nil, err
		}
		if lp.K != spec.Tr.R {
			return nil, fmt.Errorf("cosim: kernel %d does not match %s", lp.K, spec.Tr)
		}
	}
	if spec.Ng > spec.Tr.T*spec.Tr.T {
		return nil, fmt.Errorf("cosim: %d groups exceed %d tile elements", spec.Ng, spec.Tr.T*spec.Tr.T)
	}
	if err := spec.Net.Validate(); err != nil {
		return nil, err
	}
	g := topology.Hybrid(spec.Ng, spec.Nc, false)
	c := &Cosim{spec: spec, net: noc.New(g, spec.Net)}
	for id := 0; id < spec.Ng*spec.Nc; id++ {
		c.workers = append(c.workers, c.buildWorker(id))
	}
	return c, nil
}

func (c *Cosim) grp(id int) int { return id / c.spec.Nc }
func (c *Cosim) clu(id int) int { return id % c.spec.Nc }
func (c *Cosim) peer(grp, clu int) int {
	return topology.WorkerID(grp, clu, c.spec.Nc)
}

// ringNext returns the worker after id on its group's collective ring.
func (c *Cosim) ringNext(id int) int {
	return c.peer(c.grp(id), (c.clu(id)+1)%c.spec.Nc)
}

// collHops is the total ring hops per chunk: Nc−1 to reduce, Nc−1 to
// broadcast.
func (c *Cosim) collHops() int {
	if c.spec.Nc <= 1 {
		return 0
	}
	return 2 * (c.spec.Nc - 1)
}

// buildWorker constructs one worker's pipeline across every layer of the
// spec: layer l's tasks live at index base l·taskCount, chained so that a
// layer's forward waits for the previous layer's activation and its
// gradient transform waits for the next layer's backward dots. Byte counts
// follow the §III-C model; durations follow the ndp timing model.
func (c *Cosim) buildWorker(id int) *worker {
	s := c.spec
	cfg := s.NDP
	tr := s.Tr
	t2 := int64(tr.T) * int64(tr.T)
	ng := int64(s.Ng)
	peers := s.Ng - 1
	layers := s.layers()

	dur := func(computeCycles, dramBytes int64) int64 {
		d := int64(cfg.DRAMSeconds(dramBytes) * cfg.ClockHz)
		if computeCycles > d {
			return computeCycles
		}
		return d
	}
	grp, clu := c.grp(id), c.clu(id)

	w := &worker{id: id, busy: -1, pendingFwd: make(map[int][]send)}
	for li, lp := range layers {
		base := li * taskCount
		tilesH := int64((lp.OutH() + tr.M - 1) / tr.M)
		tilesW := int64((lp.OutW() + tr.M - 1) / tr.M)
		rows := int64(s.Batch) * tilesH * tilesW / int64(s.Nc)
		if rows < 1 {
			rows = 1
		}
		in, out := int64(lp.In), int64(lp.Out)
		// This worker owns rows/Ng tiles spatially; after the transform it
		// sends each peer group that group's element share of its tiles.
		perPeerScatter := int(4 * rows * in * t2 / (ng * ng))
		perPeerGather := int(4 * rows * out * t2 / (ng * ng))

		toPeers := func(bytes, target int) []send {
			var outSends []send
			if bytes <= 0 {
				return nil
			}
			for pg := 0; pg < s.Ng; pg++ {
				if pg == grp {
					continue
				}
				outSends = append(outSends, send{dst: c.peer(pg, clu), bytes: bytes, task: base + target})
			}
			return outSends
		}
		add := func(name string, cycles int64, deps []int, waitMsgs int, sends []send) {
			w.tasks = append(w.tasks, &task{
				name: fmt.Sprintf("L%d/%s", li, name), cycles: cycles,
				deps: deps, waitMsgs: waitMsgs, sends: sends,
			})
		}

		var xformDeps []int
		if li > 0 {
			// Forward chaining on the previous layer's activation.
			xformDeps = []int{(li-1)*taskCount + tInverse}
		}
		transformCycles := dur(cfg.VectorCycles(rows/ng*in*t2*int64(tr.T)*2),
			2*4*rows*in*t2/ng)
		add("fprop/transform", transformCycles, xformDeps, 0,
			toPeers(perPeerScatter, tDots))

		elems := float64(t2) / float64(s.Ng)
		dotCycles := dur(int64(elems*float64(cfg.MatmulCycles(rows, in, out))),
			4*rows*in*t2/ng+4*in*out*t2/ng)
		add("fprop/dots", dotCycles, []int{base + tTransform}, peers,
			toPeers(perPeerGather, tInverse))

		invCycles := dur(cfg.VectorCycles(rows/ng*out*t2*int64(tr.M)*2),
			4*rows*out*t2/ng)
		add("fprop/inverse", invCycles, []int{base + tDots}, peers, nil)

		// Backward chaining: the last layer's gradient arrives after its
		// own activation; earlier layers wait for the next layer's
		// backward dots (deps patched below once that layer exists).
		add("bprop/grad-transform", transformCycles, []int{base + tInverse}, 0,
			toPeers(perPeerGather, tBdots))
		bdotCycles := dur(int64(elems*float64(cfg.MatmulCycles(rows, out, in))),
			4*rows*out*t2/ng)
		add("bprop/dots", bdotCycles, []int{base + tGradXform}, peers, nil)

		gdotCycles := dur(int64(elems*float64(cfg.MatmulCycles(in, rows, out))),
			4*(rows*in*t2+rows*out*t2)/ng)
		shard := int(4 * in * out * t2 / ng)
		var first []send
		if s.Nc > 1 {
			first = []send{{dst: c.ringNext(id), bytes: shard / s.Nc, task: base + tCollective, hop: 0}}
		}
		add("update/dots", gdotCycles, []int{base + tBdots}, 0, first)

		// The collective marker finishes when this worker has seen every
		// hop of the chunks circling its group's ring.
		add("update/collective", 0, []int{base + tGdots}, c.collHops(), nil)
	}
	// Patch backward chaining: layer l's grad transform also waits for
	// layer l+1's backward dots.
	for li := 0; li < len(layers)-1; li++ {
		gx := w.tasks[li*taskCount+tGradXform]
		gx.deps = append(gx.deps, (li+1)*taskCount+tBdots)
	}
	return w
}

// driverAdapter routes deliveries into worker state and forwards
// collective chunks along the ring.
type driverAdapter struct{ c *Cosim }

func (d driverAdapter) Start(n *noc.Network) {}
func (d driverAdapter) Done() bool           { return true }

func (d driverAdapter) OnDeliver(n *noc.Network, m *noc.Message) {
	c := d.c
	w := c.workers[m.Dst]
	taskIdx := m.Tag & 0xffff
	hop := m.Tag >> 16
	t := w.tasks[taskIdx]
	t.arrived++
	if taskIdx%taskCount != tCollective {
		return
	}
	// Relay the chunk to the next ring hop once this worker's own gradient
	// exists (the Reduce block needs both contributions); otherwise buffer
	// it in the communication buffer.
	if hop+1 >= c.collHops() {
		return
	}
	base := taskIdx - tCollective
	fwd := send{dst: c.ringNext(m.Dst), bytes: m.Bytes, task: taskIdx, hop: hop + 1}
	if w.tasks[base+tGdots].finished {
		c.inject(m.Dst, fwd)
	} else {
		w.pendingFwd[base] = append(w.pendingFwd[base], fwd)
	}
}

func (c *Cosim) inject(src int, s send) {
	c.net.Inject(&noc.Message{Src: src, Dst: s.dst, Bytes: s.bytes, Tag: s.task | s.hop<<16})
}

// Run advances the co-simulation until every worker finished every task or
// maxCycles elapses.
func (c *Cosim) Run(maxCycles int64) (Result, error) {
	d := driverAdapter{c}
	res := Result{}
	for {
		if c.allDone() {
			break
		}
		if c.now >= maxCycles {
			return Result{}, fmt.Errorf("cosim: exceeded %d cycles with work outstanding", maxCycles)
		}
		c.now++
		c.net.Step(d)
		for _, w := range c.workers {
			c.advance(w)
		}
		if res.ForwardCycles == 0 && c.forwardDone() {
			res.ForwardCycles = c.now
		}
	}
	res.Cycles = c.now
	res.Seconds = float64(c.now) / c.spec.NDP.ClockHz
	res.NetBytes = c.net.BytesByClass
	return res, nil
}

// advance retires a finished task and starts the next ready one.
func (c *Cosim) advance(w *worker) {
	if w.busy >= 0 {
		t := w.tasks[w.busy]
		if c.now < t.finishAt {
			return
		}
		t.finished = true
		for _, dep := range w.tasks {
			for _, d := range dep.deps {
				if d == w.busy {
					dep.depsDone++
				}
			}
		}
		for _, s := range t.sends {
			if s.bytes > 0 {
				c.inject(w.id, s)
			}
		}
		if w.busy%taskCount == tGdots {
			base := w.busy - tGdots
			for _, s := range w.pendingFwd[base] {
				c.inject(w.id, s)
			}
			delete(w.pendingFwd, base)
		}
		w.busy = -1
	}
	// Start the lowest-index ready task (the pre-defined order of §VI-A).
	for i, t := range w.tasks {
		if t.started {
			continue
		}
		if t.depsDone < len(t.deps) || t.arrived < t.waitMsgs {
			continue
		}
		t.started = true
		t.finishAt = c.now + t.cycles
		w.busy = i
		return
	}
}

func (c *Cosim) forwardDone() bool {
	lastBase := (len(c.spec.layers()) - 1) * taskCount
	for _, w := range c.workers {
		if !w.tasks[lastBase+tInverse].finished {
			return false
		}
	}
	return true
}

// allDone reports whether every task on every worker finished and the
// network drained.
func (c *Cosim) allDone() bool {
	for _, w := range c.workers {
		for _, t := range w.tasks {
			if !t.finished {
				return false
			}
		}
	}
	return c.net.Idle()
}
