package figures

import (
	"strings"
	"testing"
)

// TestAllFiguresProduceTablesAndMetrics runs every generator (including
// the slow numeric ones) and checks structural validity.
func TestAllFiguresProduceTablesAndMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("figures regeneration is slow")
	}
	seen := map[string]bool{}
	for _, r := range All() {
		if r.ID == "" || r.Title == "" {
			t.Fatalf("figure missing identity: %+v", r)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate figure id %q", r.ID)
		}
		seen[r.ID] = true
		if len(strings.TrimSpace(r.Table)) == 0 {
			t.Fatalf("%s: empty table", r.ID)
		}
		if len(r.Metrics) == 0 {
			t.Fatalf("%s: no metrics", r.ID)
		}
		for k, v := range r.Metrics {
			if v != v { // NaN
				t.Fatalf("%s: metric %q is NaN", r.ID, k)
			}
		}
		if !strings.Contains(Render(r), r.ID) {
			t.Fatalf("%s: Render missing id", r.ID)
		}
	}
	want := []string{"table1", "table2", "table3", "table4",
		"fig01", "fig06", "fig07", "fig12", "fig14", "fig15", "fig16", "fig17", "fig18", "noc"}
	for _, id := range want {
		if !seen[id] {
			t.Fatalf("figure %s missing from All()", id)
		}
	}
}

// TestFastFiguresDeterministic: the analytic figures must be bit-identical
// across runs (the numeric ones are seeded and tested in their packages).
func TestFastFiguresDeterministic(t *testing.T) {
	for _, gen := range []func() Result{Fig01, Fig06, Fig07, Fig15, Fig16, Fig17, Fig18} {
		a, b := gen(), gen()
		if a.Table != b.Table {
			t.Fatalf("%s: non-deterministic table", a.ID)
		}
		for k, v := range a.Metrics {
			if b.Metrics[k] != v {
				t.Fatalf("%s: metric %q differs across runs", a.ID, k)
			}
		}
	}
}

// TestFig15HeadlineShape asserts the qualitative Fig. 15 claims on the
// regenerated metrics.
func TestFig15HeadlineShape(t *testing.T) {
	r := Fig15()
	if r.Metrics["avg_speedup_wmpfull"] < 1.5 {
		t.Fatalf("w_mp++ average speedup %v too small", r.Metrics["avg_speedup_wmpfull"])
	}
	if r.Metrics["late_speedup_wmppred"] <= r.Metrics["mid_speedup_wmppred"] {
		t.Fatal("late layers must gain more than mid layers")
	}
}

// TestFig17HeadlineShape asserts who-wins ordering for the whole-CNN
// comparison.
func TestFig17HeadlineShape(t *testing.T) {
	r := Fig17()
	if r.Metrics["avg_wmpfull_over_wdp"] < 1.5 {
		t.Fatalf("w_mp++/w_dp = %v, want > 1.5", r.Metrics["avg_wmpfull_over_wdp"])
	}
	if r.Metrics["avg_wmpfull_over_8gpu"] < 2 {
		t.Fatalf("w_mp++/8-GPU = %v, want > 2", r.Metrics["avg_wmpfull_over_8gpu"])
	}
	// GPU scaling must be sub-linear for every network.
	for _, net := range []string{"WRN-40-10", "ResNet-34", "FractalNet-4x4"} {
		if r.Metrics[net+"/gpu8"] >= 8*r.Metrics[net+"/gpu1"] {
			t.Fatalf("%s: GPU scaling not sub-linear", net)
		}
	}
}

// TestFig12NoFalseNegativesAnywhere: every quantization setting in the
// regenerated Fig. 12 must report zero false negatives.
func TestFig12NoFalseNegatives(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := Fig12()
	for k, v := range r.Metrics {
		if strings.HasSuffix(k, "_false_neg") && v != 0 {
			t.Fatalf("%s = %v", k, v)
		}
	}
	// 1-D must beat 2-D at the headline settings.
	for _, ds := range []string{"cifar", "imagenet"} {
		if r.Metrics[ds+"_gather1D"] <= r.Metrics[ds+"_gather2D"] {
			t.Fatalf("%s: 1-D skip not better than 2-D", ds)
		}
	}
}

// TestFig14Equivalence: the regenerated modified-join run must show
// negligible trajectory divergence.
func TestFig14Equivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r := Fig14()
	if r.Metrics["max_loss_diff"] > 1e-4 {
		t.Fatalf("join trajectories diverged by %v", r.Metrics["max_loss_diff"])
	}
}

// TestNoCValidationRatios: the flit-level simulator must sit at or above
// the analytic bounds, within the documented factors.
func TestNoCValidationRatios(t *testing.T) {
	r := NoCValidation()
	if r.Metrics["ring_ratio"] < 0.8 || r.Metrics["ring_ratio"] > 1.5 {
		t.Fatalf("ring ratio %v outside [0.8,1.5]", r.Metrics["ring_ratio"])
	}
	if r.Metrics["a2a_ratio"] < 1.0 || r.Metrics["a2a_ratio"] > 4.0 {
		t.Fatalf("all-to-all ratio %v outside [1,4]", r.Metrics["a2a_ratio"])
	}
}

func TestIsqrt(t *testing.T) {
	for _, c := range []struct{ in, want int }{{1, 1}, {4, 2}, {16, 4}, {256, 16}, {5, 3}} {
		if got := isqrt(c.in); got != c.want {
			t.Fatalf("isqrt(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}
