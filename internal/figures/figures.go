// Package figures regenerates every figure and headline number of the
// paper's evaluation as text tables plus structured series. cmd/figures
// prints them; bench_test.go runs them as benchmarks and reports the key
// metrics; EXPERIMENTS.md records paper-vs-measured for each.
package figures

import (
	"fmt"
	"strings"

	"mptwino/internal/comm"
	"mptwino/internal/gpu"
	"mptwino/internal/model"
	"mptwino/internal/parallel"
	"mptwino/internal/sim"
	"mptwino/internal/winograd"
)

// Result is one regenerated figure: a human-readable table and the
// headline metrics EXPERIMENTS.md tracks.
type Result struct {
	ID      string
	Title   string
	Table   string
	Metrics map[string]float64
}

// Fig01 reproduces Figure 1: computation and memory access of direct vs
// Winograd-transformed convolution for the five Table II layers (B=256,
// F(4×4,3×3) as in the single-worker measurement).
func Fig01() Result {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %14s %14s %12s %12s\n", "layer", "direct GMACs", "wino GMACs", "comp redux", "access incr")
	metrics := map[string]float64{}
	var sumRed, sumInc float64
	layers := model.FiveLayers()
	for _, l := range layers {
		red, inc := winograd.Savings(winograd.F4x4_3x3, l.P, 256)
		dc := float64(convMACs(l, 256)) / 1e9
		wc := dc / red
		fmt.Fprintf(&b, "%-8s %14.1f %14.1f %11.2fx %11.2fx\n", l.Name, dc, wc, red, inc)
		sumRed += red
		sumInc += inc
	}
	n := float64(len(layers))
	fmt.Fprintf(&b, "%-8s %14s %14s %11.2fx %11.2fx\n", "AVG", "", "", sumRed/n, sumInc/n)
	metrics["avg_compute_reduction"] = sumRed / n
	metrics["avg_access_increase"] = sumInc / n
	return Result{
		ID:      "fig01",
		Title:   "Fig. 1: compute vs data access, direct vs Winograd (paper: 2.8x less compute, 4.4x more access)",
		Table:   b.String(),
		Metrics: metrics,
	}
}

func convMACs(l model.Layer, batch int) int64 {
	p := l.P
	return int64(batch) * int64(p.OutH()) * int64(p.OutW()) *
		int64(p.In) * int64(p.Out) * int64(p.K) * int64(p.K)
}

// Fig06 reproduces Figure 6: per-worker communication per iteration for an
// early and a late layer under data parallelism and MPT variants (p=256).
func Fig06() Result {
	var b strings.Builder
	layers := []model.Layer{model.FiveLayers()[0], model.FiveLayers()[4]}
	strategies := []struct {
		name string
		s    comm.Strategy
		tr   *winograd.Transform
	}{
		{"dp", comm.Strategy{Ng: 1, Nc: 256, Winograd: true}, winograd.F4x4_3x3},
		{"mpt-4g", comm.Strategy{Ng: 4, Nc: 64, Winograd: true}, winograd.F2x2_3x3},
		{"mpt-16g", comm.Strategy{Ng: 16, Nc: 16, Winograd: true}, winograd.F2x2_3x3},
	}
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-8s %-8s %12s %12s %12s %12s\n", "layer", "strategy", "weight MB", "gather MB", "scatter MB", "total MB")
	for _, l := range layers {
		for _, st := range strategies {
			v := comm.LayerVolumes(st.tr, l.P, 256, st.s)
			mb := func(x int64) float64 { return float64(x) / 1e6 }
			fmt.Fprintf(&b, "%-8s %-8s %12.3f %12.3f %12.3f %12.3f\n",
				l.Name, st.name, mb(v.Weight), mb(v.TileGather), mb(v.TileScatter), mb(v.Total()))
			metrics[l.Name+"/"+st.name+"_total_MB"] = mb(v.Total())
		}
	}
	return Result{
		ID:      "fig06",
		Title:   "Fig. 6: per-worker communication by strategy (early layer: MPT adds tile transfer; late layer: MPT shrinks weights)",
		Table:   b.String(),
		Metrics: metrics,
	}
}

// Fig07 reproduces Figure 7: per-worker communication per iteration of
// FractalNet training vs worker count, comparing data parallelism, MPT
// with Ng=Nc=√p, and MPT with dynamic clustering (batch 256).
func Fig07() Result {
	var b strings.Builder
	net := model.FractalNet44()
	fabric := comm.Fabric{RingBW: 60e9, TileBW: 60e9}
	red := comm.Reductions{} // Fig. 7 is volumes only, no prediction
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%6s %14s %14s %14s\n", "p", "dp MB", "mpt(sqrt) MB", "mpt+dyn MB")
	ps := []int{4, 16, 64, 256}
	type volRow struct{ dp, mpt, dyn comm.Volumes }
	// The (p, strategy) cells are independent whole-network volume sweeps —
	// the scaling-curve hot path — so they fan out across the worker pool
	// and fold back in p order.
	rows := parallel.Map(0, len(ps), func(i int) volRow {
		p := ps[i]
		root := isqrt(p)
		dp := comm.NetworkVolumes(net, winograd.F4x4_3x3, comm.Strategy{Ng: 1, Nc: p, Winograd: true})
		mpt := comm.NetworkVolumes(net, winograd.F2x2_3x3, comm.Strategy{Ng: root, Nc: p / root, Winograd: true})
		dyn, _ := comm.NetworkVolumesDynamic(net, p, fabric, false, red)
		return volRow{dp: dp, mpt: mpt, dyn: dyn}
	})
	for i, p := range ps {
		mb := func(v comm.Volumes) float64 { return float64(v.Total()) / 1e6 }
		fmt.Fprintf(&b, "%6d %14.1f %14.1f %14.1f\n", p, mb(rows[i].dp), mb(rows[i].mpt), mb(rows[i].dyn))
		if p == 256 {
			metrics["dp_MB_p256"] = mb(rows[i].dp)
			metrics["mpt_MB_p256"] = mb(rows[i].mpt)
			metrics["dyn_MB_p256"] = mb(rows[i].dyn)
			metrics["dyn_vs_mpt_reduction"] = mb(rows[i].mpt) / mb(rows[i].dyn)
		}
	}
	return Result{
		ID:      "fig07",
		Title:   "Fig. 7: per-worker communication vs p, FractalNet (paper: dp flat, MPT shrinks; dynamic clustering 1.4x at p=256)",
		Table:   b.String(),
		Metrics: metrics,
	}
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// Fig15 reproduces Figure 15: execution time and energy of forward and
// backward passes for the five layers across Table IV configurations,
// normalized to w_dp forward.
func Fig15() Result {
	s := sim.DefaultSystem()
	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-8s %-7s %3s %10s %10s %10s %12s\n", "layer", "config", "Ng", "fwd(norm)", "bwd(norm)", "tot(norm)", "energy(norm)")
	var sumDp, sumFull, sumPred float64
	var sumDpMid, sumPredMid, sumDpLate, sumPredLate float64
	layers := model.FiveLayers()
	cfgs := sim.AllConfigs()
	// Fan every (layer, config) simulation out as one flat cell grid, then
	// fold sequentially in the original row order so the table and the
	// metric sums are bit-identical to the sequential loop.
	refs := parallel.Map(s.Parallel, len(layers), func(i int) sim.LayerResult {
		return s.SimulateLayer(layers[i], 256, sim.WDp)
	})
	cells := parallel.Map(s.Parallel, len(layers)*len(cfgs), func(i int) sim.LayerResult {
		return s.SimulateLayer(layers[i/len(cfgs)], 256, cfgs[i%len(cfgs)])
	})
	for li, l := range layers {
		ref := refs[li]
		refFwd := ref.ForwardSec
		refEnergy := ref.Energy.Total()
		for ci, c := range cfgs {
			r := cells[li*len(cfgs)+ci]
			fmt.Fprintf(&b, "%-8s %-7s %3d %10.2f %10.2f %10.2f %12.2f\n",
				l.Name, c, r.Ng, r.ForwardSec/refFwd, r.BackwardSec/refFwd,
				r.TotalSec()/refFwd, r.Energy.Total()/refEnergy)
			if c == sim.WMpFull {
				ratio := ref.TotalSec() / r.TotalSec()
				metrics["speedup_"+l.Name] = ratio
				sumDp += ref.TotalSec()
				sumFull += r.TotalSec()
			}
			if c == sim.WMpPred {
				sumPred += r.TotalSec()
				if li == 1 || li == 2 {
					sumDpMid += ref.TotalSec()
					sumPredMid += r.TotalSec()
				}
				if li == 3 || li == 4 {
					sumDpLate += ref.TotalSec()
					sumPredLate += r.TotalSec()
				}
			}
		}
	}
	metrics["avg_speedup_wmpfull"] = sumDp / sumFull
	metrics["mid_speedup_wmppred"] = sumDpMid / sumPredMid
	metrics["late_speedup_wmppred"] = sumDpLate / sumPredLate
	return Result{
		ID:      "fig15",
		Title:   "Fig. 15: layer-wise time and energy by config, normalized to w_dp forward (paper: w_mp++ 2.74x avg; w_mp+ 2.24x mid / 4.54x late)",
		Table:   b.String(),
		Metrics: metrics,
	}
}

// Fig16 reproduces Figure 16: average normalized performance for 3×3 vs
// 5×5 weights.
func Fig16() Result {
	s := sim.DefaultSystem()
	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-6s %-8s %14s\n", "kernel", "config", "speedup vs w_dp")
	for _, kcase := range []struct {
		name   string
		layers []model.Layer
	}{
		{"3x3", model.FiveLayers()},
		{"5x5", model.FiveLayers5x5()},
	} {
		for _, c := range []sim.SystemConfig{sim.WMp, sim.WMpPred, sim.WMpFull} {
			var mean float64
			for _, l := range kcase.layers {
				dp := s.SimulateLayer(l, 256, sim.WDp).TotalSec()
				v := s.SimulateLayer(l, 256, c).TotalSec()
				mean += dp / v
			}
			mean /= float64(len(kcase.layers))
			fmt.Fprintf(&b, "%-6s %-8s %13.2fx\n", kcase.name, c, mean)
			metrics[kcase.name+"_"+c.String()] = mean
		}
	}
	return Result{
		ID:      "fig16",
		Title:   "Fig. 16: mean layer speedup over w_dp, 3x3 vs 5x5 weights (paper: 2.74x vs 3.03x; see EXPERIMENTS.md for the 5x5 deviation)",
		Table:   b.String(),
		Metrics: metrics,
	}
}

// Fig17 reproduces Figure 17: whole-CNN throughput of the 256-worker NDP
// system (all configs) and the 1–8 GPU system, normalized to 1 NDP worker,
// at fixed batch 256.
func Fig17() Result {
	s := sim.DefaultSystem()
	g := gpu.DGX1()
	var b strings.Builder
	metrics := map[string]float64{}
	var dpSum, fullSum, gpu8Sum float64
	nets := model.AllNetworks()
	cfgs := sim.AllConfigs()[1:] // skip d_dp for CNN-level
	// The 1-NDP baselines are full sequential network walks — fan them out
	// per network; each network's config sweep then fans out its own
	// (layer, config) cells through sim.Sweep.
	bases := parallel.Map(s.Parallel, len(nets), func(i int) sim.NetworkResult {
		return sim.SingleWorkerBaseline(nets[i])
	})
	for ni, net := range nets {
		base := bases[ni]
		fmt.Fprintf(&b, "%s (batch %d, 1-NDP baseline %.2f img/s)\n", net.Name, net.Batch, base.ImagesPerSec)
		sweep := s.Sweep(net, cfgs)
		for ci, c := range cfgs {
			sp := sim.Speedup(sweep[ci], base)
			fmt.Fprintf(&b, "  ndp-256 %-7s %10.1fx\n", c, sp)
			metrics[net.Name+"/"+c.String()] = sp
			if c == sim.WDp {
				dpSum += sp
			}
			if c == sim.WMpFull {
				fullSum += sp
			}
		}
		for _, ng := range []int{1, 2, 4, 8} {
			ips := g.ImagesPerSec(net, ng, net.Batch)
			sp := ips / base.ImagesPerSec
			fmt.Fprintf(&b, "  gpu-%d          %10.1fx\n", ng, sp)
			metrics[net.Name+"/gpu"+fmt.Sprint(ng)] = sp
			if ng == 8 {
				gpu8Sum += sp
			}
		}
	}
	n := float64(len(model.AllNetworks()))
	metrics["avg_wdp_speedup"] = dpSum / n
	metrics["avg_wmpfull_speedup"] = fullSum / n
	metrics["avg_wmpfull_over_wdp"] = fullSum / dpSum
	metrics["avg_wmpfull_over_8gpu"] = fullSum / gpu8Sum
	fmt.Fprintf(&b, "AVG: w_dp %.0fx, w_mp++ %.0fx (ratio %.2fx), w_mp++/8-GPU %.1fx\n",
		metrics["avg_wdp_speedup"], metrics["avg_wmpfull_speedup"],
		metrics["avg_wmpfull_over_wdp"], metrics["avg_wmpfull_over_8gpu"])
	return Result{
		ID:      "fig17",
		Title:   "Fig. 17: whole-CNN speedup vs 1 NDP, fixed batch 256 (paper: w_dp 71x, w_mp++ 191x = 2.7x, 21.6x over 8-GPU)",
		Table:   b.String(),
		Metrics: metrics,
	}
}

// Fig18 reproduces Figure 18: the 8-GPU system at its best batch size vs
// the 256-NDP system at batch 256 — throughput and performance per watt.
func Fig18() Result {
	s := sim.DefaultSystem()
	g := gpu.DGX1()
	var b strings.Builder
	metrics := map[string]float64{}
	var perfRatioSum, ppwRatioSum float64
	fmt.Fprintf(&b, "%-15s %10s %12s %12s %12s %12s\n", "network", "best batch", "gpu img/s", "ndp img/s", "gpu img/s/W", "ndp img/s/W")
	for _, net := range model.AllNetworks() {
		batch, gpuIPS := g.BestBatch(net, 8, 4096)
		ndp := s.SimulateNetwork(net, sim.WMpFull)
		gpuPower := g.SystemPowerW(8)
		ndpPower := ndp.PowerW
		fmt.Fprintf(&b, "%-15s %10d %12.1f %12.1f %12.4f %12.4f\n",
			net.Name, batch, gpuIPS, ndp.ImagesPerSec, gpuIPS/gpuPower, ndp.ImagesPerSec/ndpPower)
		perfRatioSum += ndp.ImagesPerSec / gpuIPS
		ppwRatioSum += (ndp.ImagesPerSec / ndpPower) / (gpuIPS / gpuPower)
		metrics[net.Name+"/ndp_over_gpu_perf"] = ndp.ImagesPerSec / gpuIPS
		metrics[net.Name+"/ndp_over_gpu_ppw"] = (ndp.ImagesPerSec / ndpPower) / (gpuIPS / gpuPower)
	}
	n := float64(len(model.AllNetworks()))
	metrics["avg_perf_ratio"] = perfRatioSum / n
	metrics["avg_ppw_ratio"] = ppwRatioSum / n
	fmt.Fprintf(&b, "AVG ndp/gpu: perf %.1fx, perf/W %.1fx\n", metrics["avg_perf_ratio"], metrics["avg_ppw_ratio"])
	return Result{
		ID:      "fig18",
		Title:   "Fig. 18: best-batch 8-GPU vs 256-NDP (paper: 9.5x perf/W for NDP)",
		Table:   b.String(),
		Metrics: metrics,
	}
}
