package figures

import (
	"fmt"
	"strings"

	"mptwino/internal/noc"
	"mptwino/internal/topology"
)

// NoCValidation cross-checks the analytic link-bandwidth model the system
// simulator uses against the flit-level network simulator on the paper's
// two traffic patterns: pipelined ring collectives (weight gradients) and
// cluster all-to-all (tile transfer). Message sizes are scaled down from
// the full gradients so the flit-level run stays tractable on one core;
// both model and simulator scale linearly in message size in this regime.
func NoCValidation() Result {
	var b strings.Builder
	metrics := map[string]float64{}
	cfg := noc.DefaultConfig()

	fmt.Fprintf(&b, "%-28s %12s %12s %8s\n", "pattern", "model (us)", "flit sim(us)", "ratio")

	// Ring collective over one MPT group (16 workers, full links).
	{
		const workers, msg = 16, 64 * 1024
		g := topology.Ring(workers)
		n := noc.New(g, cfg)
		members := make([]int, workers)
		for i := range members {
			members[i] = i
		}
		st, err := n.Run(&noc.RingCollective{Members: members, Bytes: msg}, 50_000_000)
		if err != nil {
			panic(err)
		}
		simUS := st.Duration(cfg.ClockHz) * 1e6
		modelUS := (2*float64(msg)*float64(workers-1)/float64(workers)/30e9 +
			2*float64(workers-1)*(5e-9+256.0/30e9)) * 1e6
		fmt.Fprintf(&b, "%-28s %12.2f %12.2f %8.2f\n", "ring-16 collective 64KB", modelUS, simUS, simUS/modelUS)
		metrics["ring_model_us"] = modelUS
		metrics["ring_sim_us"] = simUS
		metrics["ring_ratio"] = simUS / modelUS
	}

	// All-to-all over one 16-worker FBFLY cluster (narrow links).
	{
		const pairBytes = 4 * 1024
		g := topology.FBFly2D(4)
		n := noc.New(g, cfg)
		members := make([]int, 16)
		for i := range members {
			members[i] = i
		}
		st, err := n.Run(&noc.AllToAll{Members: members, Bytes: pairBytes}, 50_000_000)
		if err != nil {
			panic(err)
		}
		simUS := st.Duration(cfg.ClockHz) * 1e6
		// Model: each worker sources 15·pair bytes over 6 narrow links at
		// 10 B/cycle, derated by the 1.6 mean hop count.
		modelUS := float64(15*pairBytes) * 1.6 / 60.0 / cfg.ClockHz * 1e6
		fmt.Fprintf(&b, "%-28s %12.2f %12.2f %8.2f\n", "fbfly-16 all-to-all 4KB", modelUS, simUS, simUS/modelUS)
		metrics["a2a_model_us"] = modelUS
		metrics["a2a_sim_us"] = simUS
		metrics["a2a_ratio"] = simUS / modelUS
	}

	fmt.Fprintf(&b, "ratios near 1.0 validate the bandwidth x hop model used by internal/sim\n")
	return Result{
		ID:      "noc",
		Title:   "NoC validation: analytic model vs flit-level simulation",
		Table:   b.String(),
		Metrics: metrics,
	}
}

// All returns every regenerable result in paper order: the configuration
// tables first, then the figures, then the methodology validation.
func All() []Result {
	return []Result{
		TableI(), TableII(), TableIII(), TableIV(),
		Fig01(), Fig06(), Fig07(), Fig12(), Fig14(),
		Fig15(), Fig16(), Fig17(), Fig18(), NoCValidation(),
	}
}

// Render formats a Result for terminal output.
func Render(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n%s\n%s\n", r.ID, r.Title, r.Table)
	return b.String()
}
