package figures

import (
	"fmt"
	"strings"

	"mptwino/internal/model"
	"mptwino/internal/ndp"
	"mptwino/internal/sim"
)

// TableI reproduces Table I: the three CNNs of the whole-network
// evaluation with their parameter sizes.
func TableI() Result {
	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-15s %-24s %10s %14s\n", "network", "configuration", "batch", "3x3 params")
	configs := map[string]string{
		"WRN-40-10":      "WRN-40-10 (CIFAR geometry)",
		"ResNet-34":      "[3,4,6,3] basic blocks",
		"FractalNet-4x4": "4 blocks, 4 columns",
	}
	for _, net := range model.AllNetworks() {
		pc := float64(net.ParamCount())
		fmt.Fprintf(&b, "%-15s %-24s %10d %13.1fM\n", net.Name, configs[net.Name], net.Batch, pc/1e6)
		metrics[net.Name+"_params_M"] = pc / 1e6
	}
	fmt.Fprintf(&b, "paper: WRN-40-10 55.6M; FractalNet 164M (reconstruction, DESIGN.md §2)\n")
	return Result{ID: "table1", Title: "Table I: CNNs used in the whole-network evaluation", Table: b.String(), Metrics: metrics}
}

// TableII reproduces Table II: the five typical convolution layers
// (reconstructed — see DESIGN.md §2).
func TableII() Result {
	var b strings.Builder
	metrics := map[string]float64{}
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %8s\n", "layer", "fmap", "in ch", "out ch", "kernel")
	for _, l := range model.FiveLayers() {
		fmt.Fprintf(&b, "%-8s %7dx%-3d %10d %10d %5dx%d\n",
			l.Name, l.P.H, l.P.W, l.P.In, l.P.Out, l.P.K, l.P.K)
		metrics[l.Name+"_h"] = float64(l.P.H)
	}
	fmt.Fprintf(&b, "batch 256; the 5x5 variant (Fig. 16) replaces every kernel with 5x5/pad 2\n")
	return Result{ID: "table2", Title: "Table II: five typical convolution layers (reconstructed)", Table: b.String(), Metrics: metrics}
}

// TableIII reproduces Table III: the simulated system configuration.
func TableIII() Result {
	var b strings.Builder
	cfg := ndp.DefaultConfig()
	sys := sim.DefaultSystem()
	fmt.Fprintf(&b, "router clock        %.1f GHz\n", cfg.ClockHz/1e9)
	fmt.Fprintf(&b, "full link           16 lanes x 15 Gbps = 30 GB/s/dir\n")
	fmt.Fprintf(&b, "narrow link         8 lanes x 10 Gbps = 10 GB/s/dir\n")
	fmt.Fprintf(&b, "topology            ring (groups) + FBFLY (clusters), minimal routing\n")
	fmt.Fprintf(&b, "SerDes latency      %.0f ns/hop\n", sys.SerDesSec*1e9)
	fmt.Fprintf(&b, "collective packet   %d B chunks; other packets 64 B\n", sys.ChunkBytes)
	fmt.Fprintf(&b, "DRAM                %.0f GB/s (FR-FCFS eff. %.0f%%)\n", cfg.DRAMBw/1e9, cfg.DRAMEff*100)
	fmt.Fprintf(&b, "systolic array      %dx%d FP32 MACs @%.0f GHz (96x96 FP16 variant)\n",
		cfg.SystolicDim, cfg.SystolicDim, cfg.ClockHz/1e9)
	fmt.Fprintf(&b, "SRAM                2x%d KB input (double-buffered), %d KB output\n",
		cfg.InputBufBytes>>10, cfg.OutputBufBytes>>10)
	fmt.Fprintf(&b, "workers             %d memory modules\n", sys.Workers)
	return Result{
		ID:    "table3",
		Title: "Table III: simulated system configuration",
		Table: b.String(),
		Metrics: map[string]float64{
			"workers":  float64(sys.Workers),
			"dram_gbs": cfg.DRAMBw / 1e9,
		},
	}
}

// TableIV reproduces Table IV: the evaluated system configurations.
func TableIV() Result {
	var b strings.Builder
	desc := map[sim.SystemConfig]string{
		sim.DDp:     "direct convolution, data parallelism (update w)",
		sim.WDp:     "Winograd convolution, data parallelism (update w)",
		sim.WMp:     "Winograd + MPT at fixed (16,16) (update W)",
		sim.WMpPred: "w_mp + activation prediction / zero-skipping",
		sim.WMpDyn:  "w_mp + dynamic clustering",
		sim.WMpFull: "w_mp + prediction/zero-skip + dynamic clustering",
	}
	fmt.Fprintf(&b, "%-7s %s\n", "abbr", "system configuration")
	for _, c := range sim.AllConfigs() {
		fmt.Fprintf(&b, "%-7s %s\n", c, desc[c])
	}
	return Result{
		ID:      "table4",
		Title:   "Table IV: evaluated system configurations",
		Table:   b.String(),
		Metrics: map[string]float64{"configs": float64(len(sim.AllConfigs()))},
	}
}
