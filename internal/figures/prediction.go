package figures

import (
	"fmt"
	"strings"

	"mptwino/internal/conv"
	"mptwino/internal/nn"
	"mptwino/internal/quant"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
	"mptwino/internal/workload"
)

// predictionWorkload builds a Winograd-domain output Domain from a real
// forward pass over synthetic data shaped like the named dataset, with the
// pre-activation distribution biased negative the way trained CNNs with
// ReLU are (most neurons non-activated).
func predictionWorkload(dataset string, seed uint64) *winograd.Domain {
	var p conv.Params
	var batch int
	switch dataset {
	case "cifar":
		p = conv.Params{In: 8, Out: 16, K: 3, Pad: 1, H: 32, W: 32}
		batch = 8
	default: // imagenet-like
		p = conv.Params{In: 8, Out: 16, K: 3, Pad: 1, H: 56, W: 56}
		batch = 4
	}
	rng := tensor.NewRNG(seed)
	tr := winograd.F2x2_3x3
	tl, err := winograd.NewTiling(tr, p)
	if err != nil {
		panic(err)
	}
	x := workload.GaussianImages(batch, p.In, p.H, p.W, 0, 1, seed+1)
	// ReLU the inputs (outputs of a previous layer are non-negative).
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
	w := tensor.New(p.Out, p.In, 3, 3)
	rng.FillHe(w, p.In*9)
	xd := tl.TransformInput(x)
	wd := winograd.TransformWeights(tr, w)
	yd := winograd.MulForward(xd, wd, nil)
	// Shift pre-activations negative: trained CNNs see most neurons
	// non-activated under ReLU; emulate with a −0.7σ output bias lifted
	// exactly into the Winograd domain.
	var sample []float32
	for _, el := range yd.El {
		sample = append(sample, el.Data...)
	}
	sigma := quant.EstimateSigma(sample)
	yd.AddOutputBias(-0.7 * sigma)
	return yd
}

// Fig12 reproduces Figure 12: actual vs predicted non-activated tile and
// line ratios across quantization settings (regions × levels) for the two
// dataset shapes, plus the §V-B traffic-reduction numbers.
func Fig12() Result {
	var b strings.Builder
	metrics := map[string]float64{}
	tr := winograd.F2x2_3x3
	fmt.Fprintf(&b, "%-9s %8s %6s | %9s %9s | %9s %9s | %5s\n",
		"dataset", "regions", "bits", "tile(act)", "tile(pred)", "line(act)", "line(pred)", "falseN")
	for _, dataset := range []string{"cifar", "imagenet"} {
		yd := predictionWorkload(dataset, 1234)
		var sample []float32
		for _, el := range yd.El {
			sample = append(sample, el.Data...)
		}
		sigma := quant.EstimateSigma(sample)
		for _, regions := range []int{1, 2, 4} {
			for _, bits := range []int{4, 5, 6} {
				if (1<<(bits-1))%regions != 0 {
					continue
				}
				q2 := quant.MustQuantizer(regions, bits, sigma)
				q1 := quant.MustQuantizer(regions, bits, sigma)
				s := quant.MeasureGather(yd, quant.NewPredictor(tr, q2), quant.NewPredictor(tr, q1))
				fmt.Fprintf(&b, "%-9s %8d %6d | %9.3f %9.3f | %9.3f %9.3f | %5d\n",
					dataset, regions, bits,
					s.TrueTileRatio(), s.TileSkipRatio(),
					s.TrueLineRatio(), s.LineSkipRatio(), s.FalseNegatives)
				key := fmt.Sprintf("%s_r%d_b%d", dataset, regions, bits)
				metrics[key+"_tile_pred"] = s.TileSkipRatio()
				metrics[key+"_line_pred"] = s.LineSkipRatio()
				metrics[key+"_false_neg"] = float64(s.FalseNegatives)
			}
		}
		// Headline §V-B settings: 6-bit 4-region for 2-D, 5-bit 4-region
		// for 1-D.
		s := quant.MeasureGather(yd,
			quant.NewPredictor(tr, quant.MustQuantizer(4, 6, sigma)),
			quant.NewPredictor(tr, quant.MustQuantizer(4, 5, sigma)))
		metrics[dataset+"_gather2D"] = s.TileSkipRatio()
		metrics[dataset+"_gather1D"] = s.LineSkipRatio()
	}
	fmt.Fprintf(&b, "paper §V-B: 2D predict (6b) saves 34.0%% of gathering, 1D predict (5b) saves 78.1%%\n")
	return Result{
		ID:      "fig12",
		Title:   "Fig. 12: non-activated tile/line ratios, actual vs predicted, by quantization setting",
		Table:   b.String(),
		Metrics: metrics,
	}
}

// Fig14 reproduces Figure 14: FractalNet's modified join (mean computed in
// the Winograd domain) trains identically to the standard join. Both
// blocks start from the same weights; the loss trajectories must coincide.
func Fig14() Result {
	var b strings.Builder
	metrics := map[string]float64{}
	p := conv.Params{In: 1, Out: 4, K: 3, Pad: 1, H: 8, W: 8}
	ds := workload.QuadrantBlobs(32, 1, 8, 8, 55)

	build := func(mode nn.JoinMode) (*nn.FractalBlock, *nn.Sequential) {
		rng := tensor.NewRNG(77)
		blk, err := nn.NewFractalBlock(winograd.F2x2_3x3, p, mode, rng)
		if err != nil {
			panic(err)
		}
		head := &nn.Sequential{Layers: []nn.Layer{
			&nn.ReLU{}, &nn.AvgPool2{}, nn.NewDense(4*4*4, 4, tensor.NewRNG(88)),
		}}
		return blk, head
	}
	stdBlk, stdHead := build(nn.SpatialJoin)
	modBlk, modHead := build(nn.WinogradJoin)
	modBlk.CloneWeightsFrom(stdBlk)

	x, labels := ds.Batch(0, 32)
	fmt.Fprintf(&b, "%6s %14s %14s %10s\n", "epoch", "standard join", "modified join", "|diff|")
	var maxDiff float64
	var lastStd, lastMod float64
	for epoch := 0; epoch < 15; epoch++ {
		l1 := step(stdBlk, stdHead, x, labels)
		l2 := step(modBlk, modHead, x, labels)
		d := abs(l1 - l2)
		if d > maxDiff {
			maxDiff = d
		}
		lastStd, lastMod = l1, l2
		if epoch%3 == 0 || epoch == 14 {
			fmt.Fprintf(&b, "%6d %14.5f %14.5f %10.2e\n", epoch, l1, l2, d)
		}
	}
	metrics["max_loss_diff"] = maxDiff
	metrics["final_loss_std"] = lastStd
	metrics["final_loss_mod"] = lastMod
	fmt.Fprintf(&b, "max trajectory difference: %.3e (paper: same validation accuracy)\n", maxDiff)
	return Result{
		ID:      "fig14",
		Title:   "Fig. 14: standard vs modified (Winograd-domain) join training curves",
		Table:   b.String(),
		Metrics: metrics,
	}
}

func step(blk *nn.FractalBlock, head *nn.Sequential, x *tensor.Tensor, labels []int) float64 {
	h := blk.Forward(x)
	logits := head.Forward(h)
	loss, dl := nn.SoftmaxCrossEntropy(logits, labels)
	dh := head.Backward(dl)
	blk.Backward(dh)
	head.Step(0.05)
	blk.Step(0.05)
	return loss
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
