package winograd

import "testing"

// TestGroupElementsPartition: for every accepted (T, Ng), the per-group
// element sets must form a disjoint, complete partition of all T² tile
// elements — the invariant that makes MPT's per-group dot products add up
// to exactly the single-worker computation.
func TestGroupElementsPartition(t *testing.T) {
	cases := []struct {
		t, ng int
	}{
		// F(2×2, 3×3): T=4, T²=16; every Ng up to T² is accepted,
		// dividing or not.
		{4, 1}, {4, 2}, {4, 3}, {4, 4}, {4, 5}, {4, 7}, {4, 8}, {4, 15}, {4, 16},
		// F(4×4, 3×3): T=6, T²=36.
		{6, 1}, {6, 2}, {6, 4}, {6, 6}, {6, 9}, {6, 12}, {6, 36},
		// F(2, 3) 1-D-ish small tile.
		{2, 1}, {2, 2}, {2, 3}, {2, 4},
	}
	for _, tc := range cases {
		t2 := tc.t * tc.t
		owner := make([]int, t2)
		for i := range owner {
			owner[i] = -1
		}
		total := 0
		for g := 0; g < tc.ng; g++ {
			els := GroupElements(tc.t, tc.ng, g)
			for _, el := range els {
				if el < 0 || el >= t2 {
					t.Fatalf("T=%d Ng=%d g=%d: element %d outside [0,%d)", tc.t, tc.ng, g, el, t2)
				}
				if owner[el] != -1 {
					t.Fatalf("T=%d Ng=%d: element %d owned by both group %d and %d",
						tc.t, tc.ng, el, owner[el], g)
				}
				owner[el] = g
			}
			total += len(els)
		}
		if total != t2 {
			t.Fatalf("T=%d Ng=%d: groups cover %d elements, want %d", tc.t, tc.ng, total, t2)
		}
		for el, g := range owner {
			if g == -1 {
				t.Fatalf("T=%d Ng=%d: element %d unowned", tc.t, tc.ng, el)
			}
		}
		// Load balance: group sizes differ by at most one element.
		min, max := t2, 0
		for g := 0; g < tc.ng; g++ {
			n := len(GroupElements(tc.t, tc.ng, g))
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("T=%d Ng=%d: group sizes span [%d,%d], want near-equal", tc.t, tc.ng, min, max)
		}
		// Whole-line groups must own row-aligned contiguous runs.
		if HoldsWholeLines(tc.t, tc.ng) {
			for g := 0; g < tc.ng; g++ {
				els := GroupElements(tc.t, tc.ng, g)
				if els[0]%tc.t != 0 || len(els)%tc.t != 0 {
					t.Fatalf("T=%d Ng=%d g=%d: HoldsWholeLines but elements %v are not whole rows",
						tc.t, tc.ng, g, els)
				}
			}
		}
	}
}

func TestGroupElementsRejectsBadArgs(t *testing.T) {
	for _, tc := range [][3]int{{4, 0, 0}, {4, 4, -1}, {4, 4, 4}, {4, -2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GroupElements(%d,%d,%d) accepted", tc[0], tc[1], tc[2])
				}
			}()
			GroupElements(tc[0], tc[1], tc[2])
		}()
	}
}
