package winograd

import (
	"testing"

	"mptwino/internal/tensor"
)

func benchSandwich(b *testing.B, fused bool) {
	tr := F4x4_3x3
	rng := tensor.NewRNG(6)
	x := tensor.NewMat(tr.T, tr.T)
	for i := range x.Data {
		x.Data[i] = float32(rng.NormFloat64())
	}
	dst := tensor.NewMat(tr.T, tr.T)
	tmp := make([]float32, tr.TmpLen())
	b.ResetTimer()
	if fused {
		for i := 0; i < b.N; i++ {
			fusedSandwichInto(dst, tr.fused.bt, tr.fused.bt, x, tmp)
		}
	} else {
		for i := 0; i < b.N; i++ {
			sandwichInto(dst, tr.BT, x, tr.B, tmp)
		}
	}
}

func BenchmarkSandwichFused(b *testing.B)   { benchSandwich(b, true) }
func BenchmarkSandwichGeneric(b *testing.B) { benchSandwich(b, false) }
