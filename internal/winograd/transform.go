package winograd

import "mptwino/internal/tensor"

// FilterToWinograd computes W = G·w·Gᵀ for one r×r filter, returning the
// T×T Winograd-domain weight tile.
func (tr *Transform) FilterToWinograd(w *tensor.Mat) *tensor.Mat {
	return tensor.Sandwich(tr.G, w, tr.GT)
}

// InputToWinograd computes X = Bᵀ·x·B for one T×T input tile.
func (tr *Transform) InputToWinograd(x *tensor.Mat) *tensor.Mat {
	return tensor.Sandwich(tr.BT, x, tr.B)
}

// OutputFromWinograd computes y = Aᵀ·Y·A, the inverse transform of a T×T
// Winograd-domain output tile to the m×m spatial output tile.
func (tr *Transform) OutputFromWinograd(y *tensor.Mat) *tensor.Mat {
	return tensor.Sandwich(tr.AT, y, tr.A)
}

// OutputToWinograd computes dY = A·dy·Aᵀ, the adjoint of
// OutputFromWinograd; it carries spatial output gradients into the Winograd
// domain during bprop/updateGrad.
func (tr *Transform) OutputToWinograd(dy *tensor.Mat) *tensor.Mat {
	return tensor.Sandwich(tr.A, dy, tr.AT)
}

// InputFromWinograd computes dx = B·dX·Bᵀ, the adjoint of InputToWinograd;
// it carries Winograd-domain input gradients back to the spatial domain.
func (tr *Transform) InputFromWinograd(dx *tensor.Mat) *tensor.Mat {
	return tensor.Sandwich(tr.B, dx, tr.BT)
}

// FilterFromWinograd computes dw = Gᵀ·dW·G, the adjoint of
// FilterToWinograd; it maps Winograd-domain weight gradients back to
// spatial weight gradients (used by the non-Winograd-layer training mode
// that keeps spatial weights, Fig. 2(a)).
func (tr *Transform) FilterFromWinograd(dw *tensor.Mat) *tensor.Mat {
	return tensor.Sandwich(tr.GT, dw, tr.G)
}

// Transform1DInput applies the first 1-D stage of the input transform to a
// T-vector: Bᵀ·v. The paper's 4-group configuration performs this stage at
// the source worker before tile transfer (Section IV, "1D Winograd
// transform before transferring tile data").
func (tr *Transform) Transform1DInput(v []float32) []float32 {
	return matVec(tr.BT, v)
}

// Inverse1DOutput applies one 1-D stage of the output inverse transform to
// a T-vector: Aᵀ·v, producing m values. Used by 1-D prediction.
func (tr *Transform) Inverse1DOutput(v []float32) []float32 {
	return matVec(tr.AT, v)
}

// Transform1DInputInto is Transform1DInput into a caller-owned slice of
// length T (the hoisted form used by the 1-D hot loops).
func (tr *Transform) Transform1DInputInto(dst, v []float32) {
	matVecInto(dst, tr.BT, v)
}

// Inverse1DOutputInto is Inverse1DOutput into a caller-owned slice of
// length m.
func (tr *Transform) Inverse1DOutputInto(dst, v []float32) {
	matVecInto(dst, tr.AT, v)
}

func matVec(m *tensor.Mat, v []float32) []float32 {
	out := make([]float32, m.Rows)
	matVecInto(out, m, v)
	return out
}

func matVecInto(dst []float32, m *tensor.Mat, v []float32) {
	if len(v) != m.Cols || len(dst) != m.Rows {
		panic("winograd: matVec length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		var acc float32
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, mv := range row {
			acc += mv * v[c]
		}
		dst[r] = acc
	}
}

// LiftOutputBias returns the T×T Winograd-domain tile L whose inverse
// output transform is a constant: Aᵀ·L·A = bias·𝟙(m×m). Adding L to every
// output tile therefore shifts every spatial neuron by exactly bias —
// used to emulate the negative pre-activation bias of trained ReLU
// networks when synthesizing activation-prediction workloads.
func (tr *Transform) LiftOutputBias(bias float32) *tensor.Mat {
	ata := tensor.MatMul(tr.AT, tr.A) // m×m, symmetric positive definite
	inv, err := tensor.MatInverse(ata)
	if err != nil {
		panic(err)
	}
	b := tensor.NewMat(tr.M, tr.M)
	for i := range b.Data {
		b.Data[i] = bias
	}
	x := tensor.Sandwich(inv, b, inv)
	return tensor.Sandwich(tr.A, x, tr.AT)
}

// PNSplit returns the positive and negative parts of a matrix
// (pos[i] = max(m[i],0), neg[i] = min(m[i],0)). Activation prediction
// (Section V-A) propagates the maximum possible quantization error through
// the inverse transform by multiplying the positive (negative) error bound
// with the positive (negative) coefficients separately.
func PNSplit(m *tensor.Mat) (pos, neg *tensor.Mat) {
	pos = tensor.NewMat(m.Rows, m.Cols)
	neg = tensor.NewMat(m.Rows, m.Cols)
	for i, v := range m.Data {
		if v > 0 {
			pos.Data[i] = v
		} else {
			neg.Data[i] = v
		}
	}
	return pos, neg
}
