package winograd

import (
	"os"
	"testing"

	"mptwino/internal/conv"
	"mptwino/internal/parallel"
	"mptwino/internal/tensor"
)

// domainsEqual compares two Domains element-for-element, bitwise.
func domainsEqual(a, b *Domain) bool {
	if a.B != b.B || a.C != b.C || len(a.El) != len(b.El) {
		return false
	}
	for e := range a.El {
		for i := range a.El[e].Data {
			if a.El[e].Data[i] != b.El[e].Data[i] {
				return false
			}
		}
	}
	return true
}

func weightsEqual(a, b *Weights) bool {
	if a.In != b.In || a.Out != b.Out || len(a.El) != len(b.El) {
		return false
	}
	for e := range a.El {
		for i := range a.El[e].Data {
			if a.El[e].Data[i] != b.El[e].Data[i] {
				return false
			}
		}
	}
	return true
}

func tensorsEqual(a, b *tensor.Tensor) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestWinogradKernelsBitIdenticalAcrossWorkers runs the full set of
// Winograd-domain kernels — forward/backward transforms, the T² element
// GEMMs, and the weight transforms — under worker counts {1, 2, 8} and
// asserts bitwise-identical results. The parallel grains (batch images,
// tile elements, output filters) all own disjoint output regions and keep
// per-slot accumulation order, so any divergence is a sharding bug.
func TestWinogradKernelsBitIdenticalAcrossWorkers(t *testing.T) {
	p := conv.Params{In: 3, Out: 4, K: 3, Pad: 1, H: 8, W: 6}
	tl, err := NewTiling(F2x2_3x3, p)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(31)
	x := tensor.New(3, p.In, p.H, p.W)
	r.FillNormal(x, 0, 1)
	sw := tensor.New(p.Out, p.In, p.K, p.K)
	r.FillHe(sw, p.In*p.K*p.K)
	dy := tensor.New(3, p.Out, p.OutH(), p.OutW())
	r.FillNormal(dy, 0, 1)

	type snapshot struct {
		xd, yd, dyd, dxd *Domain
		y, dx, dwSpatial *tensor.Tensor
		ww, dw           *Weights
	}
	run := func(workers int) snapshot {
		prev := parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(prev)
		var s snapshot
		s.ww = TransformWeights(F2x2_3x3, sw)
		s.xd = tl.TransformInput(x)
		s.yd = MulForward(s.xd, s.ww, nil)
		s.y = tl.InverseOutput(s.yd)
		s.dyd = tl.TransformOutputGrad(dy)
		s.dxd = MulBackward(s.dyd, s.ww, nil)
		s.dx = tl.InverseInputGrad(s.dxd)
		s.dw = MulGrad(s.xd, s.dyd, nil)
		s.dwSpatial = s.dw.ToSpatialGrad()
		return s
	}

	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !weightsEqual(ref.ww, got.ww) {
			t.Errorf("workers=%d: TransformWeights differs", workers)
		}
		if !domainsEqual(ref.xd, got.xd) {
			t.Errorf("workers=%d: TransformInput differs", workers)
		}
		if !domainsEqual(ref.yd, got.yd) {
			t.Errorf("workers=%d: MulForward differs", workers)
		}
		if !tensorsEqual(ref.y, got.y) {
			t.Errorf("workers=%d: InverseOutput differs", workers)
		}
		if !domainsEqual(ref.dyd, got.dyd) {
			t.Errorf("workers=%d: TransformOutputGrad differs", workers)
		}
		if !domainsEqual(ref.dxd, got.dxd) {
			t.Errorf("workers=%d: MulBackward differs", workers)
		}
		if !tensorsEqual(ref.dx, got.dx) {
			t.Errorf("workers=%d: InverseInputGrad differs", workers)
		}
		if !weightsEqual(ref.dw, got.dw) {
			t.Errorf("workers=%d: MulGrad differs", workers)
		}
		if !tensorsEqual(ref.dwSpatial, got.dwSpatial) {
			t.Errorf("workers=%d: ToSpatialGrad differs", workers)
		}
	}
}

// TestWinogradKernelsBitIdenticalAcrossWorkersPerTier is the dispatch-tier
// sweep of the worker-count contract: for every GEMM tier this CPU offers,
// the layer pipeline (forward, backward, weight gradient) is bitwise
// identical at worker counts {1, 2, 8}, and every unfused tier reproduces
// the portable tier's bits exactly. The fused `fma` tier is only required
// to be self-consistent across worker counts — its accumulation chain
// rounds once per update by design. Geometry is sized so the T² element
// GEMMs cross the blocked-kernel threshold and actually exercise the
// assembly micro-kernels.
func TestWinogradKernelsBitIdenticalAcrossWorkersPerTier(t *testing.T) {
	defer func() {
		if err := tensor.SelectGemmKernel(os.Getenv(tensor.EnvGemmKernel)); err != nil {
			t.Fatal(err)
		}
	}()
	p := conv.Params{In: 32, Out: 32, K: 3, Pad: 1, H: 16, W: 16}
	tl, err := NewTiling(F4x4_3x3, p)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(77)
	x := tensor.New(4, p.In, p.H, p.W)
	r.FillNormal(x, 0, 1)
	sw := tensor.New(p.Out, p.In, p.K, p.K)
	r.FillHe(sw, p.In*p.K*p.K)
	dy := tensor.New(4, p.Out, p.OutH(), p.OutW())
	r.FillNormal(dy, 0, 1)

	type snapshot struct {
		y, dx *tensor.Tensor
		dw    *Weights
	}
	run := func(workers int) snapshot {
		prev := parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(prev)
		ww := TransformWeights(F4x4_3x3, sw)
		xd := tl.TransformInput(x)
		dyd := tl.TransformOutputGrad(dy)
		return snapshot{
			y:  tl.InverseOutput(MulForward(xd, ww, nil)),
			dx: tl.InverseInputGrad(MulBackward(dyd, ww, nil)),
			dw: MulGrad(xd, dyd, nil),
		}
	}

	var portable snapshot
	for _, tier := range tensor.GemmKernels() {
		if err := tensor.SelectGemmKernel(tier); err != nil {
			t.Fatal(err)
		}
		ref := run(1)
		for _, workers := range []int{2, 8} {
			got := run(workers)
			if !tensorsEqual(ref.y, got.y) {
				t.Errorf("tier=%s workers=%d: forward differs from workers=1", tier, workers)
			}
			if !tensorsEqual(ref.dx, got.dx) {
				t.Errorf("tier=%s workers=%d: backward differs from workers=1", tier, workers)
			}
			if !weightsEqual(ref.dw, got.dw) {
				t.Errorf("tier=%s workers=%d: weight grad differs from workers=1", tier, workers)
			}
		}
		switch tier {
		case "portable":
			portable = ref
		case "fma":
			// Fused chains round differently; cross-tier identity not required.
		default:
			if !tensorsEqual(portable.y, ref.y) || !tensorsEqual(portable.dx, ref.dx) || !weightsEqual(portable.dw, ref.dw) {
				t.Errorf("tier=%s: unfused tier differs from portable bits", tier)
			}
		}
	}
}

// TestGroupedMulRespectsElementSelection ensures the parallel element
// fan-out still computes exactly the selected elements: unselected element
// matrices must stay zero.
func TestGroupedMulRespectsElementSelection(t *testing.T) {
	p := conv.Params{In: 2, Out: 3, K: 3, Pad: 1, H: 6, W: 6}
	tl, err := NewTiling(F2x2_3x3, p)
	if err != nil {
		t.Fatal(err)
	}
	r := tensor.NewRNG(5)
	x := tensor.New(2, p.In, p.H, p.W)
	r.FillNormal(x, 0, 1)
	sw := tensor.New(p.Out, p.In, p.K, p.K)
	r.FillHe(sw, p.In*p.K*p.K)

	ww := TransformWeights(F2x2_3x3, sw)
	xd := tl.TransformInput(x)
	elems := GroupElements(F2x2_3x3.T, 4, 1)
	y := MulForward(xd, ww, elems)
	sel := make(map[int]bool, len(elems))
	for _, e := range elems {
		sel[e] = true
	}
	for e := range y.El {
		nonzero := false
		for _, v := range y.El[e].Data {
			if v != 0 {
				nonzero = true
				break
			}
		}
		if nonzero && !sel[e] {
			t.Errorf("element %d computed but not selected", e)
		}
	}
}
