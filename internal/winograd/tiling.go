package winograd

import (
	"fmt"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
)

// Tiling decomposes a convolution layer's feature maps into the overlapping
// T×T input tiles / m×m output tiles of the tile-based Winograd algorithm
// (Section II-B). Input tiles advance with stride m and overlap by r−1;
// out-of-range taps are zero (the layer's padding).
type Tiling struct {
	Tr *Transform
	P  conv.Params

	TilesH, TilesW int // tile grid dimensions
}

// NewTiling validates the layer geometry against the transform and returns
// the tile decomposition.
func NewTiling(tr *Transform, p conv.Params) (*Tiling, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.K != tr.R {
		return nil, fmt.Errorf("winograd: kernel %dx%d does not match transform %s", p.K, p.K, tr)
	}
	m := tr.M
	return &Tiling{
		Tr:     tr,
		P:      p,
		TilesH: (p.OutH() + m - 1) / m,
		TilesW: (p.OutW() + m - 1) / m,
	}, nil
}

// Tiles returns the number of tiles per feature map (the paper's t).
func (tl *Tiling) Tiles() int { return tl.TilesH * tl.TilesW }

// tileOrigin returns the top-left input coordinate (possibly negative, in
// the padding) covered by tile (th, tw).
func (tl *Tiling) tileOrigin(th, tw int) (ih, iw int) {
	return th*tl.Tr.M - tl.P.Pad, tw*tl.Tr.M - tl.P.Pad
}

// ExtractInputTile copies the T×T input patch for tile (th,tw) of image b,
// channel c, into dst (a T×T matrix), zero-filling taps that fall in the
// padding.
func (tl *Tiling) ExtractInputTile(dst *tensor.Mat, x *tensor.Tensor, b, c, th, tw int) {
	t := tl.Tr.T
	oh, ow := tl.tileOrigin(th, tw)
	for r := 0; r < t; r++ {
		ih := oh + r
		for cc := 0; cc < t; cc++ {
			iw := ow + cc
			var v float32
			if ih >= 0 && ih < tl.P.H && iw >= 0 && iw < tl.P.W {
				v = x.At(b, c, ih, iw)
			}
			dst.Set(r, cc, v)
		}
	}
}

// ScatterAddInputTile accumulates a T×T spatial-domain tile (e.g. a dx
// contribution from bprop) back into x at tile (th,tw), skipping padding
// positions. Overlapping tiles therefore sum, which is exactly the adjoint
// of ExtractInputTile.
func (tl *Tiling) ScatterAddInputTile(x *tensor.Tensor, src *tensor.Mat, b, c, th, tw int) {
	t := tl.Tr.T
	oh, ow := tl.tileOrigin(th, tw)
	for r := 0; r < t; r++ {
		ih := oh + r
		if ih < 0 || ih >= tl.P.H {
			continue
		}
		for cc := 0; cc < t; cc++ {
			iw := ow + cc
			if iw < 0 || iw >= tl.P.W {
				continue
			}
			x.Add(b, c, ih, iw, src.At(r, cc))
		}
	}
}

// ExtractOutputTile copies the m×m output patch for tile (th,tw) into dst,
// zero-filling positions past the output boundary (tiles at the right and
// bottom edge may be partial).
func (tl *Tiling) ExtractOutputTile(dst *tensor.Mat, y *tensor.Tensor, b, c, th, tw int) {
	m := tl.Tr.M
	oh, ow := tl.P.OutH(), tl.P.OutW()
	for r := 0; r < m; r++ {
		yy := th*m + r
		for cc := 0; cc < m; cc++ {
			xx := tw*m + cc
			var v float32
			if yy < oh && xx < ow {
				v = y.At(b, c, yy, xx)
			}
			dst.Set(r, cc, v)
		}
	}
}

// ScatterOutputTile writes an m×m output tile into y at tile (th,tw),
// dropping positions past the output boundary. Output tiles do not
// overlap, so this is a plain store.
func (tl *Tiling) ScatterOutputTile(y *tensor.Tensor, src *tensor.Mat, b, c, th, tw int) {
	m := tl.Tr.M
	oh, ow := tl.P.OutH(), tl.P.OutW()
	for r := 0; r < m; r++ {
		yy := th*m + r
		if yy >= oh {
			break
		}
		for cc := 0; cc < m; cc++ {
			xx := tw*m + cc
			if xx >= ow {
				break
			}
			y.Set(b, c, yy, xx, src.At(r, cc))
		}
	}
}
