package winograd

import (
	"testing"

	"mptwino/internal/conv"
	"mptwino/internal/parallel"
	"mptwino/internal/tensor"
)

// Regression for the allocflow finding fixed by building the per-worker
// Scratch eagerly in the constructors: (*Layer).scratch used to lazily
// call NewScratch on the first FpropInto/BpropInto/UpdateGradWInto, which
// put a make on every noalloc entry point's first-call path (and kept the
// lazy-init helper on the sanctioned-callee list). These tests pin the
// fix: construction owns the allocation, the hot-path accessor only hands
// out the cached pointer.

func testLayerParams() conv.Params {
	return conv.Params{In: 2, Out: 3, H: 8, W: 8, K: 3, Pad: 1}
}

// The constructors must hand back a Layer whose scratch already exists.
func TestNewLayerBuildsScratchEagerly(t *testing.T) {
	tr := F2x2_3x3
	p := testLayerParams()

	l, err := NewLayer(tr, p, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if l.sc == nil {
		t.Fatal("NewLayer: sc is nil; Scratch must be built at construction, not lazily on the noalloc hot path")
	}

	w := tensor.New(p.Out, p.In, p.K, p.K)
	lw, err := NewLayerWithWeights(tr, p, w)
	if err != nil {
		t.Fatal(err)
	}
	if lw.sc == nil {
		t.Fatal("NewLayerWithWeights: sc is nil; Scratch must be built at construction")
	}
}

// The Scratch slot count is fixed by the worker setting in effect at
// construction — the property the steady-state suite relies on when it
// rebuilds Layers after SetDefaultWorkers.
func TestLayerScratchWorkersFollowConstructionSetting(t *testing.T) {
	tr := F2x2_3x3
	p := testLayerParams()
	prev := parallel.DefaultWorkers()
	defer parallel.SetDefaultWorkers(prev)

	for _, workers := range []int{1, 2, 4} {
		parallel.SetDefaultWorkers(workers)
		l, err := NewLayer(tr, p, tensor.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		if got := l.scratch().Workers(); got != workers {
			t.Fatalf("SetDefaultWorkers(%d): scratch().Workers() = %d", workers, got)
		}
	}
}

// A Layer assembled without the constructors has no scratch; the accessor
// must fail loudly instead of silently allocating one on the hot path.
func TestLayerScratchPanicsWithoutConstructor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scratch() on a zero-value Layer did not panic; lazy allocation on the noalloc path must not come back")
		}
	}()
	var l Layer
	l.scratch()
}
