package winograd

import (
	"fmt"

	"mptwino/internal/tensor"
)

// Params1D describes a 1-D convolution layer over sequences of length L —
// the paper's 3×1-weight case ("for the 3×1 weights, F(2,3) can be used
// with a tile size of 4×1"). Tensors use the (B, C, 1, L) layout.
type Params1D struct {
	In, Out int
	K       int // kernel length (r)
	Pad     int
	L       int // input length
}

// OutL returns the output length.
func (p Params1D) OutL() int { return p.L + 2*p.Pad - p.K + 1 }

// Validate checks the geometry.
func (p Params1D) Validate() error {
	switch {
	case p.In <= 0 || p.Out <= 0:
		return fmt.Errorf("winograd: 1-D channels must be positive, got I=%d J=%d", p.In, p.Out)
	case p.K <= 0 || p.Pad < 0:
		return fmt.Errorf("winograd: bad 1-D kernel %d / pad %d", p.K, p.Pad)
	case p.OutL() <= 0:
		return fmt.Errorf("winograd: empty 1-D output for L=%d k=%d pad=%d", p.L, p.K, p.Pad)
	}
	return nil
}

// tiling1D mirrors Tiling for sequences: overlapping length-T input
// segments with output stride m.
type tiling1D struct {
	tr    *Transform
	p     Params1D
	tiles int
}

func newTiling1D(tr *Transform, p Params1D) (*tiling1D, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.K != tr.R {
		return nil, fmt.Errorf("winograd: 1-D kernel %d does not match %s", p.K, tr)
	}
	return &tiling1D{tr: tr, p: p, tiles: (p.OutL() + tr.M - 1) / tr.M}, nil
}

// domain1D holds per-element matrices of shape (B·tiles)×C, the 1-D
// analogue of Domain with T elements instead of T².
type domain1D struct {
	tl   *tiling1D
	b, c int
	el   []*tensor.Mat
}

func newDomain1D(tl *tiling1D, b, c int) *domain1D {
	d := &domain1D{tl: tl, b: b, c: c, el: make([]*tensor.Mat, tl.tr.T)}
	for e := range d.el {
		d.el[e] = tensor.NewMat(b*tl.tiles, c)
	}
	return d
}

// transformInput lifts x (B,C,1,L) into the 1-D Winograd domain.
func (tl *tiling1D) transformInput(x *tensor.Tensor) *domain1D {
	if x.C != tl.p.In || x.H != 1 || x.W != tl.p.L {
		panic(fmt.Sprintf("winograd: 1-D input shape %s does not match I=%d L=%d",
			x.ShapeString(), tl.p.In, tl.p.L))
	}
	d := newDomain1D(tl, x.N, x.C)
	t := tl.tr.T
	seg := make([]float32, t)
	lifted := make([]float32, t)
	for b := 0; b < x.N; b++ {
		for c := 0; c < x.C; c++ {
			for ti := 0; ti < tl.tiles; ti++ {
				lo := ti*tl.tr.M - tl.p.Pad
				for i := 0; i < t; i++ {
					pos := lo + i
					if pos >= 0 && pos < tl.p.L {
						seg[i] = x.At(b, c, 0, pos)
					} else {
						seg[i] = 0
					}
				}
				tl.tr.Transform1DInputInto(lifted, seg)
				row := b*tl.tiles + ti
				for e, v := range lifted {
					d.el[e].Set(row, c, v)
				}
			}
		}
	}
	return d
}

// weights1D holds per-element In×Out matrices: W = G·w per filter tap.
type weights1D struct {
	tr      *Transform
	in, out int
	el      []*tensor.Mat
}

func transformWeights1D(tr *Transform, w *tensor.Tensor) *weights1D {
	if w.H != 1 || w.W != tr.R {
		panic(fmt.Sprintf("winograd: 1-D weight shape %s does not match %s", w.ShapeString(), tr))
	}
	ww := &weights1D{tr: tr, in: w.C, out: w.N, el: make([]*tensor.Mat, tr.T)}
	for e := range ww.el {
		ww.el[e] = tensor.NewMat(w.C, w.N)
	}
	filt := make([]float32, tr.R)
	lifted := make([]float32, tr.T)
	for j := 0; j < w.N; j++ {
		for i := 0; i < w.C; i++ {
			for k := 0; k < tr.R; k++ {
				filt[k] = w.At(j, i, 0, k)
			}
			matVecInto(lifted, tr.G, filt)
			for e, v := range lifted {
				ww.el[e].Set(i, j, v)
			}
		}
	}
	return ww
}

// Fprop1D computes the 1-D convolution y = x ⋆ w through the Winograd
// domain: per-element dot products followed by the 1-D inverse transform.
func Fprop1D(tr *Transform, p Params1D, x, w *tensor.Tensor) *tensor.Tensor {
	tl, err := newTiling1D(tr, p)
	if err != nil {
		panic(err)
	}
	xd := tl.transformInput(x)
	wd := transformWeights1D(tr, w)
	y := tensor.New(x.N, p.Out, 1, p.OutL())
	yEl := make([]*tensor.Mat, tr.T)
	for e := range yEl {
		yEl[e] = tensor.MatMul(xd.el[e], wd.el[e])
	}
	tile := make([]float32, tr.T)
	out := make([]float32, tr.M)
	for b := 0; b < x.N; b++ {
		for j := 0; j < p.Out; j++ {
			for ti := 0; ti < tl.tiles; ti++ {
				row := b*tl.tiles + ti
				for e := range tile {
					tile[e] = yEl[e].At(row, j)
				}
				tr.Inverse1DOutputInto(out, tile)
				for m, v := range out {
					pos := ti*tr.M + m
					if pos < p.OutL() {
						y.Set(b, j, 0, pos, v)
					}
				}
			}
		}
	}
	return y
}

// DirectFprop1D is the reference 1-D correlation used to validate the
// Winograd path (and as the d_dp baseline for 1-D layers).
func DirectFprop1D(p Params1D, x, w *tensor.Tensor) *tensor.Tensor {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	y := tensor.New(x.N, p.Out, 1, p.OutL())
	for b := 0; b < x.N; b++ {
		for j := 0; j < p.Out; j++ {
			for i := 0; i < p.In; i++ {
				for o := 0; o < p.OutL(); o++ {
					var acc float32
					for k := 0; k < p.K; k++ {
						pos := o + k - p.Pad
						if pos >= 0 && pos < p.L {
							acc += x.At(b, i, 0, pos) * w.At(j, i, 0, k)
						}
					}
					y.Add(b, j, 0, o, acc)
				}
			}
		}
	}
	return y
}
