package winograd

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
)

// directCorrelate1D computes the length-m correlation of a length-T signal
// with a length-r filter: y_k = Σ_j d_{k+j} g_j.
func directCorrelate1D(d, g []float32) []float32 {
	m := len(d) - len(g) + 1
	out := make([]float32, m)
	for k := 0; k < m; k++ {
		var acc float32
		for j, gv := range g {
			acc += d[k+j] * gv
		}
		out[k] = acc
	}
	return out
}

// apply1D runs the 1-D Winograd algorithm y = Aᵀ[(G g) ⊙ (Bᵀ d)].
func apply1D(tr *Transform, d, g []float32) []float32 {
	gd := matVecT(tr.G, g)
	dd := matVecT(tr.BT, d)
	prod := make([]float32, tr.T)
	for i := range prod {
		prod[i] = gd[i] * dd[i]
	}
	return matVecT(tr.AT, prod)
}

func matVecT(m *tensor.Mat, v []float32) []float32 {
	out := make([]float32, m.Rows)
	for r := 0; r < m.Rows; r++ {
		var acc float32
		for c := 0; c < m.Cols; c++ {
			acc += m.At(r, c) * v[c]
		}
		out[r] = acc
	}
	return out
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// TestCookToom1DCorrectness checks the synthesized transforms against
// direct correlation for every size the paper uses plus larger extensions.
func TestCookToom1DCorrectness(t *testing.T) {
	cases := []struct{ m, r int }{
		{2, 3}, {4, 3}, {2, 5}, {6, 3}, {4, 5}, {3, 3}, {2, 2}, {1, 3}, {5, 5},
	}
	rng := tensor.NewRNG(21)
	for _, cs := range cases {
		tr, err := MakeTransform(cs.m, cs.r)
		if err != nil {
			t.Fatalf("F(%d,%d): %v", cs.m, cs.r, err)
		}
		if tr.T != cs.m+cs.r-1 {
			t.Fatalf("F(%d,%d): T=%d", cs.m, cs.r, tr.T)
		}
		for trial := 0; trial < 5; trial++ {
			d := make([]float32, tr.T)
			g := make([]float32, tr.R)
			for i := range d {
				d[i] = float32(rng.NormFloat64())
			}
			for i := range g {
				g[i] = float32(rng.NormFloat64())
			}
			got := apply1D(tr, d, g)
			want := directCorrelate1D(d, g)
			if diff := maxDiff(got, want); diff > 1e-3 {
				t.Fatalf("F(%d,%d) trial %d: maxdiff %v\n got %v\nwant %v",
					cs.m, cs.r, trial, diff, got, want)
			}
		}
	}
}

func TestMakeTransformErrors(t *testing.T) {
	if _, err := MakeTransform(0, 3); err == nil {
		t.Fatal("F(0,3) accepted")
	}
	if _, err := MakeTransform(12, 12); err == nil {
		t.Fatal("transform needing too many points accepted")
	}
}

func TestForKernel(t *testing.T) {
	tr, err := ForKernel(3, 16)
	if err != nil || tr != F2x2_3x3 {
		t.Fatalf("3x3 multi-group: got %v, %v", tr, err)
	}
	tr, err = ForKernel(3, 1)
	if err != nil || tr != F4x4_3x3 {
		t.Fatalf("3x3 single-group: got %v, %v", tr, err)
	}
	tr, err = ForKernel(5, 4)
	if err != nil || tr != F2x2_5x5 {
		t.Fatalf("5x5: got %v, %v", tr, err)
	}
	if _, err := ForKernel(7, 1); err == nil {
		t.Fatal("7x7 should be unsupported")
	}
}

// TestFilterTransform2DKnownValue: a delta filter in the spatial domain
// convolved with any tile must reproduce direct convolution; check the 2-D
// sandwich path on one known case.
func TestFprop2DSingleTileVsDirect(t *testing.T) {
	for _, tr := range []*Transform{F2x2_3x3, F4x4_3x3, F2x2_5x5} {
		p := conv.Params{In: 1, Out: 1, K: tr.R, Pad: 0, H: tr.T, W: tr.T}
		rng := tensor.NewRNG(31)
		x := tensor.New(1, 1, tr.T, tr.T)
		w := tensor.New(1, 1, tr.R, tr.R)
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(w, 0, 1)
		want := conv.Fprop(p, x, w)
		got := Fprop(tr, p, x, w)
		if d := got.MaxAbsDiff(want); d > 1e-3 {
			t.Fatalf("%s single tile: maxdiff %v", tr, d)
		}
	}
}

// TestFpropMatchesDirect is the central equivalence: tiled Winograd fprop
// equals direct convolution on multi-channel, multi-batch, padded layers
// whose outputs are not multiples of the tile size (partial edge tiles).
func TestFpropMatchesDirect(t *testing.T) {
	cases := []struct {
		tr *Transform
		p  conv.Params
		b  int
	}{
		{F2x2_3x3, conv.Params{In: 3, Out: 4, K: 3, Pad: 1, H: 9, W: 7}, 2},
		{F4x4_3x3, conv.Params{In: 2, Out: 3, K: 3, Pad: 1, H: 10, W: 10}, 2},
		{F4x4_3x3, conv.Params{In: 2, Out: 2, K: 3, Pad: 1, H: 7, W: 9}, 1}, // partial tiles
		{F2x2_5x5, conv.Params{In: 2, Out: 2, K: 5, Pad: 2, H: 8, W: 8}, 2},
		{F2x2_3x3, conv.Params{In: 1, Out: 1, K: 3, Pad: 0, H: 8, W: 8}, 1}, // no padding
	}
	rng := tensor.NewRNG(37)
	for ci, cs := range cases {
		x := tensor.New(cs.b, cs.p.In, cs.p.H, cs.p.W)
		w := tensor.New(cs.p.Out, cs.p.In, cs.p.K, cs.p.K)
		rng.FillNormal(x, 0, 1)
		rng.FillHe(w, cs.p.In*cs.p.K*cs.p.K)
		want := conv.Fprop(cs.p, x, w)
		got := Fprop(cs.tr, cs.p, x, w)
		if d := got.MaxAbsDiff(want); d > 2e-3 {
			t.Fatalf("case %d (%s): fprop maxdiff %v", ci, cs.tr, d)
		}
	}
}

func TestBpropMatchesDirect(t *testing.T) {
	cases := []struct {
		tr *Transform
		p  conv.Params
	}{
		{F2x2_3x3, conv.Params{In: 2, Out: 3, K: 3, Pad: 1, H: 8, W: 6}},
		{F4x4_3x3, conv.Params{In: 2, Out: 2, K: 3, Pad: 1, H: 9, W: 9}},
		{F2x2_5x5, conv.Params{In: 1, Out: 2, K: 5, Pad: 2, H: 8, W: 8}},
	}
	rng := tensor.NewRNG(41)
	for ci, cs := range cases {
		dy := tensor.New(2, cs.p.Out, cs.p.OutH(), cs.p.OutW())
		w := tensor.New(cs.p.Out, cs.p.In, cs.p.K, cs.p.K)
		rng.FillNormal(dy, 0, 1)
		rng.FillHe(w, cs.p.In*cs.p.K*cs.p.K)
		want := conv.Bprop(cs.p, dy, w)
		got := Bprop(cs.tr, cs.p, dy, w)
		if d := got.MaxAbsDiff(want); d > 2e-3 {
			t.Fatalf("case %d (%s): bprop maxdiff %v", ci, cs.tr, d)
		}
	}
}

func TestUpdateGradMatchesDirect(t *testing.T) {
	cases := []struct {
		tr *Transform
		p  conv.Params
	}{
		{F2x2_3x3, conv.Params{In: 2, Out: 2, K: 3, Pad: 1, H: 6, W: 8}},
		{F4x4_3x3, conv.Params{In: 1, Out: 2, K: 3, Pad: 1, H: 8, W: 8}},
		{F2x2_5x5, conv.Params{In: 1, Out: 1, K: 5, Pad: 2, H: 8, W: 8}},
	}
	rng := tensor.NewRNG(43)
	for ci, cs := range cases {
		x := tensor.New(2, cs.p.In, cs.p.H, cs.p.W)
		dy := tensor.New(2, cs.p.Out, cs.p.OutH(), cs.p.OutW())
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(dy, 0, 0.5)
		want := conv.UpdateGrad(cs.p, x, dy)
		got := UpdateGrad(cs.tr, cs.p, x, dy)
		// dw accumulates over batch and all positions; tolerance scales.
		tol := 1e-2 * (1 + want.L2Norm()/math.Sqrt(float64(want.Len())))
		if d := got.MaxAbsDiff(want); d > tol {
			t.Fatalf("case %d (%s): updateGrad maxdiff %v (tol %v)", ci, cs.tr, d, tol)
		}
	}
}

// TestLayerMatchesSpatialPath: the Winograd layer initialized from spatial
// weights must produce identical fprop/bprop, and its Winograd-domain
// gradient mapped back with Gᵀ·dW·G must match the spatial gradient.
func TestLayerMatchesSpatialPath(t *testing.T) {
	p := conv.Params{In: 2, Out: 3, K: 3, Pad: 1, H: 8, W: 8}
	rng := tensor.NewRNG(47)
	x := tensor.New(2, p.In, p.H, p.W)
	w := tensor.New(p.Out, p.In, p.K, p.K)
	rng.FillNormal(x, 0, 1)
	rng.FillHe(w, p.In*9)

	l, err := NewLayerWithWeights(F2x2_3x3, p, w)
	if err != nil {
		t.Fatal(err)
	}
	y := l.Fprop(x)
	if d := y.MaxAbsDiff(conv.Fprop(p, x, w)); d > 2e-3 {
		t.Fatalf("layer fprop maxdiff %v", d)
	}
	dy := tensor.New(2, p.Out, p.OutH(), p.OutW())
	rng.FillNormal(dy, 0, 1)
	dx := l.Bprop(dy)
	if d := dx.MaxAbsDiff(conv.Bprop(p, dy, w)); d > 2e-3 {
		t.Fatalf("layer bprop maxdiff %v", d)
	}
	dW := l.UpdateGradW(dy)
	dwSpatial := dW.ToSpatialGrad()
	want := conv.UpdateGrad(p, x, dy)
	tol := 1e-2 * (1 + want.L2Norm()/math.Sqrt(float64(want.Len())))
	if d := dwSpatial.MaxAbsDiff(want); d > tol {
		t.Fatalf("layer updateGrad maxdiff %v", d)
	}
}

func TestUpdateGradWPanicsBeforeFprop(t *testing.T) {
	p := conv.Params{In: 1, Out: 1, K: 3, Pad: 1, H: 4, W: 4}
	l, _ := NewLayer(F2x2_3x3, p, tensor.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateGradW before Fprop did not panic")
		}
	}()
	l.UpdateGradW(tensor.New(1, 1, 4, 4))
}

// TestLayerStepDescendsLoss: a few SGD steps of the Winograd layer on
// L = 0.5||y − target||² must reduce the loss, exercising the Fig. 2(b)
// update-in-Winograd-domain flow end to end.
func TestLayerStepDescendsLoss(t *testing.T) {
	p := conv.Params{In: 2, Out: 2, K: 3, Pad: 1, H: 6, W: 6}
	rng := tensor.NewRNG(53)
	l, err := NewLayer(F2x2_3x3, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, p.In, p.H, p.W)
	target := tensor.New(2, p.Out, p.OutH(), p.OutW())
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(target, 0, 1)

	loss := func() float64 {
		y := l.Fprop(x)
		var s float64
		for i := range y.Data {
			d := float64(y.Data[i] - target.Data[i])
			s += 0.5 * d * d
		}
		return s
	}
	l0 := loss()
	for it := 0; it < 10; it++ {
		y := l.Fprop(x)
		dy := y.Clone()
		dy.AXPY(-1, target)
		dW := l.UpdateGradW(dy)
		l.Step(0.002, dW)
	}
	l1 := loss()
	if l1 >= l0 {
		t.Fatalf("Winograd-layer SGD did not descend: %v -> %v", l0, l1)
	}
}

// Property: partitioning elements across groups and summing per-group
// forward results reconstructs the full forward result — the independence
// that makes intra-tile parallelism exact (Fig. 4(b)).
func TestGroupPartitionExactness(t *testing.T) {
	p := conv.Params{In: 2, Out: 2, K: 3, Pad: 1, H: 6, W: 6}
	tr := F2x2_3x3
	tl, _ := NewTiling(tr, p)
	rng := tensor.NewRNG(59)
	x := tensor.New(1, p.In, p.H, p.W)
	w := tensor.New(p.Out, p.In, 3, 3)
	rng.FillNormal(x, 0, 1)
	rng.FillHe(w, p.In*9)
	xd := tl.TransformInput(x)
	wd := TransformWeights(tr, w)

	full := MulForward(xd, wd, nil)
	for _, ng := range []int{1, 2, 4, 8, 16} {
		sum := newDomain(tl, 1, p.Out)
		covered := map[int]bool{}
		for g := 0; g < ng; g++ {
			els := GroupElements(tr.T, ng, g)
			part := MulForward(xd, wd, els)
			for _, e := range els {
				if covered[e] {
					t.Fatalf("ng=%d: element %d assigned twice", ng, e)
				}
				covered[e] = true
				copy(sum.El[e].Data, part.El[e].Data)
			}
		}
		if len(covered) != tr.T*tr.T {
			t.Fatalf("ng=%d: %d of %d elements covered", ng, len(covered), tr.T*tr.T)
		}
		for e := range full.El {
			for i := range full.El[e].Data {
				if full.El[e].Data[i] != sum.El[e].Data[i] {
					t.Fatalf("ng=%d: element %d differs", ng, e)
				}
			}
		}
	}
}

func TestGroupElementsLines(t *testing.T) {
	// 4 groups over a 4x4 tile: each group holds one whole line.
	if !HoldsWholeLines(4, 4) {
		t.Fatal("T=4, Ng=4 should hold whole lines")
	}
	if !HoldsWholeLines(4, 1) || !HoldsWholeLines(4, 2) {
		t.Fatal("T=4 Ng in {1,2} should hold whole lines")
	}
	if HoldsWholeLines(4, 16) {
		t.Fatal("T=4, Ng=16 gives single elements, not lines")
	}
	els := GroupElements(4, 4, 2)
	want := []int{8, 9, 10, 11}
	for i := range want {
		if els[i] != want[i] {
			t.Fatalf("GroupElements(4,4,2) = %v", els)
		}
	}
}

func TestGroupElementsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad group did not panic")
		}
	}()
	GroupElements(4, 4, 4)
}

// Property: InverseInputGrad is the adjoint of TransformInput:
// <TransformInput(x), D> == <x, InverseInputGrad(D)> for random D.
func TestInputTransformAdjoint(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		p := conv.Params{In: 1 + rng.Intn(2), Out: 1, K: 3, Pad: 1,
			H: 4 + rng.Intn(4), W: 4 + rng.Intn(4)}
		tl, err := NewTiling(F2x2_3x3, p)
		if err != nil {
			return true
		}
		x := tensor.New(1, p.In, p.H, p.W)
		rng.FillNormal(x, 0, 1)
		xd := tl.TransformInput(x)
		d := newDomain(tl, 1, p.In)
		for e := range d.El {
			for i := range d.El[e].Data {
				d.El[e].Data[i] = float32(rng.NormFloat64())
			}
		}
		var lhs float64
		for e := range d.El {
			for i := range d.El[e].Data {
				lhs += float64(xd.El[e].Data[i]) * float64(d.El[e].Data[i])
			}
		}
		back := tl.InverseInputGrad(d)
		var rhs float64
		for i := range x.Data {
			rhs += float64(x.Data[i]) * float64(back.Data[i])
		}
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: OutputToWinograd is the adjoint of InverseOutput.
func TestOutputTransformAdjoint(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		p := conv.Params{In: 1, Out: 1 + rng.Intn(2), K: 3, Pad: 1,
			H: 4 + rng.Intn(4), W: 4 + rng.Intn(4)}
		tl, err := NewTiling(F2x2_3x3, p)
		if err != nil {
			return true
		}
		d := newDomain(tl, 1, p.Out)
		for e := range d.El {
			for i := range d.El[e].Data {
				d.El[e].Data[i] = float32(rng.NormFloat64())
			}
		}
		dy := tensor.New(1, p.Out, p.OutH(), p.OutW())
		rng.FillNormal(dy, 0, 1)
		y := tl.InverseOutput(d)
		var lhs float64
		for i := range y.Data {
			lhs += float64(y.Data[i]) * float64(dy.Data[i])
		}
		dyd := tl.TransformOutputGrad(dy)
		var rhs float64
		for e := range d.El {
			for i := range d.El[e].Data {
				rhs += float64(d.El[e].Data[i]) * float64(dyd.El[e].Data[i])
			}
		}
		return math.Abs(lhs-rhs) < 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestPNSplit(t *testing.T) {
	m := tensor.MatFromSlice(2, 2, []float32{1, -2, 0, 3})
	pos, neg := PNSplit(m)
	if pos.Data[0] != 1 || pos.Data[1] != 0 || pos.Data[3] != 3 {
		t.Fatalf("pos = %v", pos.Data)
	}
	if neg.Data[1] != -2 || neg.Data[0] != 0 {
		t.Fatalf("neg = %v", neg.Data)
	}
	// pos + neg must reconstruct m.
	for i := range m.Data {
		if pos.Data[i]+neg.Data[i] != m.Data[i] {
			t.Fatal("PNSplit does not partition")
		}
	}
}

func TestCostModel(t *testing.T) {
	p := conv.Params{In: 64, Out: 64, K: 3, Pad: 1, H: 56, W: 56}
	red, inc := Savings(F4x4_3x3, p, 256)
	// F(4x4,3x3) theoretically reduces multiplications 4x; with transform
	// overhead and edge tiles the dot-product reduction must still land
	// well above 2x (paper: 2.8x average across layers).
	if red < 2 || red > 5 {
		t.Fatalf("compute reduction %v out of plausible range", red)
	}
	// and data access must increase (paper: 4.4x average).
	if inc < 1.5 {
		t.Fatalf("access increase %v, expected > 1.5", inc)
	}
	// Winograd weight bytes must be (T/K)² larger than spatial.
	fc := FpropCost(F4x4_3x3, p, 256)
	if fc.WeightBytes != int64(64*64*36*4) {
		t.Fatalf("weight bytes %d", fc.WeightBytes)
	}
	// updateGrad and fprop dot MACs match.
	if UpdateGradCost(F4x4_3x3, p, 8).DotMACs != FpropCost(F4x4_3x3, p, 8).DotMACs {
		t.Fatal("updateGrad dot MACs should equal fprop dot MACs")
	}
}

func TestWeightsBytesAndClone(t *testing.T) {
	w := NewWeights(F2x2_3x3, 8, 16)
	if w.Bytes() != int64(16*8*16*4) {
		t.Fatalf("Bytes = %d", w.Bytes())
	}
	w.El[3].Set(1, 2, 5)
	c := w.Clone()
	c.El[3].Set(1, 2, 9)
	if w.El[3].At(1, 2) != 5 {
		t.Fatal("Clone shares storage")
	}
	c.AXPY(2, w)
	if c.El[3].At(1, 2) != 19 {
		t.Fatalf("AXPY: got %v", c.El[3].At(1, 2))
	}
}

func TestTransform1DHelpers(t *testing.T) {
	tr := F2x2_3x3
	rng := tensor.NewRNG(61)
	d := make([]float32, tr.T)
	g := make([]float32, tr.R)
	for i := range d {
		d[i] = float32(rng.NormFloat64())
	}
	for i := range g {
		g[i] = float32(rng.NormFloat64())
	}
	// 1-D algorithm via the helpers must match direct correlation.
	gd := matVecT(tr.G, g)
	dd := tr.Transform1DInput(d)
	prod := make([]float32, tr.T)
	for i := range prod {
		prod[i] = gd[i] * dd[i]
	}
	got := tr.Inverse1DOutput(prod)
	want := directCorrelate1D(d, g)
	if diff := maxDiff(got, want); diff > 1e-4 {
		t.Fatalf("1D helpers maxdiff %v", diff)
	}
}

func TestNewTilingRejectsMismatchedKernel(t *testing.T) {
	if _, err := NewTiling(F2x2_3x3, conv.Params{In: 1, Out: 1, K: 5, Pad: 2, H: 8, W: 8}); err == nil {
		t.Fatal("kernel/transform mismatch accepted")
	}
}

// TestLiftOutputBias: the lifted constant tile must inverse-transform to
// exactly the requested bias at every output neuron.
func TestLiftOutputBias(t *testing.T) {
	for _, tr := range []*Transform{F2x2_3x3, F4x4_3x3, F2x2_5x5} {
		l := tr.LiftOutputBias(-1.5)
		out := tr.OutputFromWinograd(l)
		for i, v := range out.Data {
			if math.Abs(float64(v)+1.5) > 1e-3 {
				t.Fatalf("%s: lifted bias output[%d] = %v, want -1.5", tr, i, v)
			}
		}
	}
}

// TestAddOutputBiasShiftsNeurons: adding a bias to an output Domain must
// shift the inverse-transformed feature map by exactly that bias.
func TestAddOutputBiasShiftsNeurons(t *testing.T) {
	p := conv.Params{In: 1, Out: 2, K: 3, Pad: 1, H: 8, W: 8}
	tl, err := NewTiling(F2x2_3x3, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	d := newDomain(tl, 1, 2)
	for e := range d.El {
		for i := range d.El[e].Data {
			d.El[e].Data[i] = float32(rng.NormFloat64())
		}
	}
	before := tl.InverseOutput(d)
	d.AddOutputBias(2.25)
	after := tl.InverseOutput(d)
	for i := range before.Data {
		if math.Abs(float64(after.Data[i]-before.Data[i]-2.25)) > 1e-4 {
			t.Fatalf("neuron %d shifted by %v, want 2.25", i, after.Data[i]-before.Data[i])
		}
	}
}

func TestDomainScaleAddClone(t *testing.T) {
	p := conv.Params{In: 1, Out: 1, K: 3, Pad: 1, H: 4, W: 4}
	tl, _ := NewTiling(F2x2_3x3, p)
	a := newDomain(tl, 1, 1)
	a.El[0].Data[0] = 2
	b := a.Clone()
	b.Scale(3)
	if a.El[0].Data[0] != 2 || b.El[0].Data[0] != 6 {
		t.Fatal("Clone/Scale wrong")
	}
	a.AddDomain(b)
	if a.El[0].Data[0] != 8 {
		t.Fatal("AddDomain wrong")
	}
}

func TestAddDomainShapeMismatchPanics(t *testing.T) {
	p := conv.Params{In: 1, Out: 1, K: 3, Pad: 1, H: 4, W: 4}
	tl, _ := NewTiling(F2x2_3x3, p)
	a := newDomain(tl, 1, 1)
	b := newDomain(tl, 1, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a.AddDomain(b)
}

// TestFprop1DMatchesDirect validates the 1-D Winograd path (the paper's
// F(2,3) with 4×1 tiles for 3×1 weights) against direct correlation.
func TestFprop1DMatchesDirect(t *testing.T) {
	rng := tensor.NewRNG(67)
	cases := []Params1D{
		{In: 3, Out: 4, K: 3, Pad: 1, L: 16},
		{In: 2, Out: 2, K: 3, Pad: 1, L: 15}, // partial edge tile
		{In: 1, Out: 3, K: 3, Pad: 0, L: 12},
		{In: 2, Out: 1, K: 5, Pad: 2, L: 14}, // F(2,5)
	}
	for ci, p := range cases {
		tr := F2_3
		if p.K == 5 {
			tr = F2x2_5x5 // same 1-D matrices apply per row
		}
		x := tensor.New(2, p.In, 1, p.L)
		w := tensor.New(p.Out, p.In, 1, p.K)
		rng.FillNormal(x, 0, 1)
		rng.FillNormal(w, 0, 0.5)
		want := DirectFprop1D(p, x, w)
		got := Fprop1D(tr, p, x, w)
		if d := got.MaxAbsDiff(want); d > 1e-3 {
			t.Fatalf("case %d: 1-D fprop maxdiff %v", ci, d)
		}
	}
}

func TestParams1DValidate(t *testing.T) {
	bad := []Params1D{
		{In: 0, Out: 1, K: 3, Pad: 1, L: 8},
		{In: 1, Out: 1, K: 0, Pad: 1, L: 8},
		{In: 1, Out: 1, K: 3, Pad: -1, L: 8},
		{In: 1, Out: 1, K: 9, Pad: 0, L: 4},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad 1-D params %d accepted", i)
		}
	}
	if err := (Params1D{In: 1, Out: 1, K: 3, Pad: 1, L: 8}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewTiling1DMismatch(t *testing.T) {
	if _, err := newTiling1D(F2_3, Params1D{In: 1, Out: 1, K: 5, Pad: 2, L: 8}); err == nil {
		t.Fatal("1-D kernel/transform mismatch accepted")
	}
}
