package winograd

import (
	"testing"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
)

// measureFpropError returns the max absolute fprop error of transform tr
// against direct convolution on a fixed random layer, normalized by the
// output magnitude.
func measureFpropError(t *testing.T, tr *Transform) float64 {
	t.Helper()
	p := conv.Params{In: 4, Out: 4, K: tr.R, Pad: conv.SamePad(tr.R), H: 16, W: 16}
	rng := tensor.NewRNG(97)
	x := tensor.New(2, p.In, p.H, p.W)
	w := tensor.New(p.Out, p.In, p.K, p.K)
	rng.FillNormal(x, 0, 1)
	rng.FillHe(w, p.In*p.K*p.K)
	want := conv.Fprop(p, x, w)
	got := Fprop(tr, p, x, w)
	scale := want.L2Norm() / float64(len(want.Data))
	if scale == 0 {
		scale = 1
	}
	return got.MaxAbsDiff(want)
}

// TestNumericalStabilityGrowsWithTileSize quantifies the paper's §II-B
// remark — "as weight/tile size grow, numerical instability can grow and
// impact accuracy": F(6,3)'s float32 error must exceed F(2,3)'s by a
// meaningful factor, while both stay within training-tolerable bounds for
// 3×3 kernels (the regime where the paper says accuracy is unaffected).
func TestNumericalStabilityGrowsWithTileSize(t *testing.T) {
	e2 := measureFpropError(t, F2x2_3x3)
	e4 := measureFpropError(t, F4x4_3x3)
	tr6 := MustTransform(6, 3)
	e6 := measureFpropError(t, tr6)

	if e4 < e2 {
		t.Logf("note: F(4x4) error %v below F(2x2) %v on this seed", e4, e2)
	}
	if e6 <= e4 {
		t.Fatalf("F(6x6,3x3) error %v should exceed F(4x4,3x3) %v", e6, e4)
	}
	// All small-tile errors stay far below activation magnitudes (~1).
	for _, e := range []float64{e2, e4} {
		if e > 1e-3 {
			t.Fatalf("small-tile transform error %v too large for training", e)
		}
	}
	if e6 > 1e-1 {
		t.Fatalf("F(6x6,3x3) error %v catastrophically large", e6)
	}
}

// TestTransformCoefficientGrowth: the root cause of the instability is
// coefficient magnitude growth in the synthesized matrices; verify the
// trend across tile sizes.
func TestTransformCoefficientGrowth(t *testing.T) {
	maxAbs := func(m *tensor.Mat) float64 {
		var best float64
		for _, v := range m.Data {
			a := float64(v)
			if a < 0 {
				a = -a
			}
			if a > best {
				best = a
			}
		}
		return best
	}
	c2 := maxAbs(F2x2_3x3.BT)
	c4 := maxAbs(F4x4_3x3.BT)
	c6 := maxAbs(MustTransform(6, 3).BT)
	if !(c2 <= c4 && c4 <= c6) {
		t.Fatalf("BT coefficient growth not monotone: %v, %v, %v", c2, c4, c6)
	}
	if c6 < 4*c2 {
		t.Fatalf("F(6,3) coefficients (%v) should dwarf F(2,3)'s (%v)", c6, c2)
	}
}
