package winograd

import (
	"mptwino/internal/parallel"
	"mptwino/internal/tensor"
)

// Scratch holds the per-worker reusable buffers of the winograd hot paths:
// a replay arena for staging tiles and fused-transform temporaries, and
// the packing buffers of the blocked GEMM. One Scratch serves one
// sequential stream of Into calls (a Layer, an engine worker); the slots
// inside it serve the goroutines those calls fan out to. Buffers are sized
// by first use and reused afterwards, so steady-state training steps run
// without allocation.
type Scratch struct {
	slots []scratchSlot
}

type scratchSlot struct {
	arena tensor.Arena
	gemm  tensor.GemmScratch
}

// NewScratch returns a Scratch with one slot per default worker. The Into
// entry points cap their fan-out at the slot count, so a Scratch built
// under SetDefaultWorkers(1) also pins those calls to the closure-free
// sequential path (the configuration the zero-alloc benchmarks gate).
func NewScratch() *Scratch {
	return &Scratch{slots: make([]scratchSlot, parallel.DefaultWorkers())}
}

// Workers returns the slot count, the maximum fan-out this Scratch serves.
func (s *Scratch) Workers() int { return len(s.slots) }

func (s *Scratch) slot(w int) *scratchSlot { return &s.slots[w] }

// Every Into entry point in this package follows the same two-branch
// shape: with one slot it loops over the per-item method directly; with
// more it hands a closure to parallel.ForEachWorker. The branch matters
// for the 0 allocs/op contract — a closure handed to the parallel engine
// escapes to the heap when *created* (even if the engine's inline path
// runs it), so the sequential branch must never evaluate the closure
// literal.
