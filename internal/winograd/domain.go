package winograd

import (
	"fmt"

	"mptwino/internal/parallel"
	"mptwino/internal/tensor"
)

// Domain is a batch of feature maps represented entirely in the Winograd
// domain: for each of the T² tile-element positions (u,v) there is one
// (B·tiles)×C matrix. This layout makes the paper's central observation
// concrete — the dot products decompose into T² independent matrix
// multiplications (Fig. 3(b)), one per element, with no computation between
// different elements. MPT partitions exactly this El slice across groups.
type Domain struct {
	Tiling *Tiling
	B      int           // batch size
	C      int           // channels
	El     []*tensor.Mat // length T²; each (B·tiles)×C
}

// Rows returns B·tiles, the row count of each element matrix.
func (d *Domain) Rows() int { return d.B * d.Tiling.Tiles() }

// newDomain allocates an all-zero Domain for the given tiling.
func newDomain(tl *Tiling, b, c int) *Domain {
	t2 := tl.Tr.T * tl.Tr.T
	d := &Domain{Tiling: tl, B: b, C: c, El: make([]*tensor.Mat, t2)}
	rows := b * tl.Tiles()
	for e := range d.El {
		d.El[e] = tensor.NewMat(rows, c)
	}
	return d
}

// row returns the element-matrix row index of (image b, tile th, tw).
func (d *Domain) row(b, th, tw int) int {
	return (b*d.Tiling.TilesH+th)*d.Tiling.TilesW + tw
}

// TransformInput lifts a spatial input tensor x (B,C,H,W matching the
// tiling's layer geometry) into the Winograd domain: X = Bᵀ·x·B per tile.
func (tl *Tiling) TransformInput(x *tensor.Tensor) *Domain {
	if x.C != tl.P.In || x.H != tl.P.H || x.W != tl.P.W {
		panic(fmt.Sprintf("winograd: input shape %s does not match layer I=%d %dx%d",
			x.ShapeString(), tl.P.In, tl.P.H, tl.P.W))
	}
	d := newDomain(tl, x.N, x.C)
	t := tl.Tr.T
	// Images are independent tile batches: fan them out. Each (b, c, tile)
	// writes a distinct (row, c) slot of every element matrix, so the
	// parallel result is bit-identical to the sequential loop.
	parallel.ForEach(0, x.N, func(b int) {
		patch := tensor.NewMat(t, t)
		for c := 0; c < x.C; c++ {
			for th := 0; th < tl.TilesH; th++ {
				for tw := 0; tw < tl.TilesW; tw++ {
					tl.ExtractInputTile(patch, x, b, c, th, tw)
					w := tl.Tr.InputToWinograd(patch)
					row := d.row(b, th, tw)
					for e, v := range w.Data {
						d.El[e].Set(row, c, v)
					}
				}
			}
		}
	})
	return d
}

// TransformOutputGrad lifts a spatial output-gradient tensor dy into the
// Winograd domain via the adjoint of the inverse output transform:
// dY = A·dy·Aᵀ per tile.
func (tl *Tiling) TransformOutputGrad(dy *tensor.Tensor) *Domain {
	if dy.H != tl.P.OutH() || dy.W != tl.P.OutW() {
		panic(fmt.Sprintf("winograd: dy shape %s does not match output %dx%d",
			dy.ShapeString(), tl.P.OutH(), tl.P.OutW()))
	}
	d := newDomain(tl, dy.N, dy.C)
	m := tl.Tr.M
	parallel.ForEach(0, dy.N, func(b int) {
		patch := tensor.NewMat(m, m)
		for c := 0; c < dy.C; c++ {
			for th := 0; th < tl.TilesH; th++ {
				for tw := 0; tw < tl.TilesW; tw++ {
					tl.ExtractOutputTile(patch, dy, b, c, th, tw)
					w := tl.Tr.OutputToWinograd(patch)
					row := d.row(b, th, tw)
					for e, v := range w.Data {
						d.El[e].Set(row, c, v)
					}
				}
			}
		}
	})
	return d
}

// InverseOutput gathers a Winograd-domain output y-Domain into the spatial
// output tensor: y = Aᵀ·Y·A per tile. This is the tile-gathering step whose
// communication MPT must pay for (Section III-C).
func (tl *Tiling) InverseOutput(d *Domain) *tensor.Tensor {
	t := tl.Tr.T
	y := tensor.New(d.B, d.C, tl.P.OutH(), tl.P.OutW())
	// Output tiles never overlap and images own disjoint y regions, so the
	// batch dimension shards freely with bit-identical results.
	parallel.ForEach(0, d.B, func(b int) {
		tile := tensor.NewMat(t, t)
		for c := 0; c < d.C; c++ {
			for th := 0; th < tl.TilesH; th++ {
				for tw := 0; tw < tl.TilesW; tw++ {
					row := d.row(b, th, tw)
					for e := range d.El {
						tile.Data[e] = d.El[e].At(row, c)
					}
					out := tl.Tr.OutputFromWinograd(tile)
					tl.ScatterOutputTile(y, out, b, c, th, tw)
				}
			}
		}
	})
	return y
}

// InverseInputGrad maps a Winograd-domain input-gradient Domain back to the
// spatial domain via the adjoint of the input transform, accumulating
// overlapping tile contributions: dx += B·dX·Bᵀ.
func (tl *Tiling) InverseInputGrad(d *Domain) *tensor.Tensor {
	t := tl.Tr.T
	dx := tensor.New(d.B, d.C, tl.P.H, tl.P.W)
	// Overlapping tiles only accumulate within one (b, c) feature map;
	// across images the dx regions are disjoint, and the per-image tile
	// order is unchanged, so the accumulation order per dx slot — and with
	// it the floating-point result — is identical to the sequential loop.
	parallel.ForEach(0, d.B, func(b int) {
		tile := tensor.NewMat(t, t)
		for c := 0; c < d.C; c++ {
			for th := 0; th < tl.TilesH; th++ {
				for tw := 0; tw < tl.TilesW; tw++ {
					row := d.row(b, th, tw)
					for e := range d.El {
						tile.Data[e] = d.El[e].At(row, c)
					}
					out := tl.Tr.InputFromWinograd(tile)
					tl.ScatterAddInputTile(dx, out, b, c, th, tw)
				}
			}
		}
	})
	return dx
}

// Scale multiplies every element of the Domain by alpha in place and
// returns d for chaining.
func (d *Domain) Scale(alpha float32) *Domain {
	for _, el := range d.El {
		for i := range el.Data {
			el.Data[i] *= alpha
		}
	}
	return d
}

// AddDomain accumulates o into d elementwise. Shapes must match; this is
// the paper's modified join operation (mean of Winograd-domain tiles,
// Fig. 14) before the final Scale(1/n).
func (d *Domain) AddDomain(o *Domain) {
	if d.B != o.B || d.C != o.C || len(d.El) != len(o.El) {
		panic(fmt.Sprintf("winograd: AddDomain shape mismatch B=%d/%d C=%d/%d", d.B, o.B, d.C, o.C))
	}
	for e := range d.El {
		for i := range d.El[e].Data {
			d.El[e].Data[i] += o.El[e].Data[i]
		}
	}
}

// AddOutputBias shifts every spatial-domain neuron that this output Domain
// inverse-transforms to by exactly bias, by adding the lifted constant
// tile to every (tile, channel) position.
func (d *Domain) AddOutputBias(bias float32) {
	l := d.Tiling.Tr.LiftOutputBias(bias)
	for e := range d.El {
		for i := range d.El[e].Data {
			d.El[e].Data[i] += l.Data[e]
		}
	}
}

// Clone returns a deep copy of the Domain.
func (d *Domain) Clone() *Domain {
	out := newDomain(d.Tiling, d.B, d.C)
	for e := range d.El {
		copy(out.El[e].Data, d.El[e].Data)
	}
	return out
}

// Weights is a full set of layer weights in the Winograd domain: for each
// tile element (u,v), an In×Out matrix W^{(u,v)} (paper eq. 2). The paper's
// Winograd layer stores and updates these directly; MPT assigns each group
// only its own subset of elements ("each part of the Winograd domain
// weights is only used within the associated group").
type Weights struct {
	Tr      *Transform
	In, Out int
	El      []*tensor.Mat // length T²; each In×Out
}

// NewWeights allocates zero Winograd-domain weights.
func NewWeights(tr *Transform, in, out int) *Weights {
	t2 := tr.T * tr.T
	w := &Weights{Tr: tr, In: in, Out: out, El: make([]*tensor.Mat, t2)}
	for e := range w.El {
		w.El[e] = tensor.NewMat(in, out)
	}
	return w
}

// TransformWeights lifts spatial weights (Out,In,r,r) into the Winograd
// domain: W = G·w·Gᵀ per (i,j) filter.
func TransformWeights(tr *Transform, w *tensor.Tensor) *Weights {
	if w.H != tr.R || w.W != tr.R {
		panic(fmt.Sprintf("winograd: weight shape %s does not match transform %s", w.ShapeString(), tr))
	}
	ww := NewWeights(tr, w.C, w.N)
	// Each (i, j) filter writes its own column slot in every element matrix.
	parallel.ForEach(0, w.N, func(j int) {
		f := tensor.NewMat(tr.R, tr.R)
		for i := 0; i < w.C; i++ {
			for kh := 0; kh < tr.R; kh++ {
				for kw := 0; kw < tr.R; kw++ {
					f.Set(kh, kw, w.At(j, i, kh, kw))
				}
			}
			wd := tr.FilterToWinograd(f)
			for e, v := range wd.Data {
				ww.El[e].Set(i, j, v)
			}
		}
	})
	return ww
}

// ToSpatialGrad maps Winograd-domain weight gradients back to spatial
// weight gradients: dw = Gᵀ·dW·G per filter. Used by the Fig. 2(a) mode
// where spatial weights are the trained parameters.
func (w *Weights) ToSpatialGrad() *tensor.Tensor {
	tr := w.Tr
	out := tensor.New(w.Out, w.In, tr.R, tr.R)
	parallel.ForEach(0, w.Out, func(j int) {
		tile := tensor.NewMat(tr.T, tr.T)
		for i := 0; i < w.In; i++ {
			for e := range w.El {
				tile.Data[e] = w.El[e].At(i, j)
			}
			g := tr.FilterFromWinograd(tile)
			for kh := 0; kh < tr.R; kh++ {
				for kw := 0; kw < tr.R; kw++ {
					out.Set(j, i, kh, kw, g.At(kh, kw))
				}
			}
		}
	})
	return out
}

// Clone returns a deep copy of the weights.
func (w *Weights) Clone() *Weights {
	out := NewWeights(w.Tr, w.In, w.Out)
	for e := range w.El {
		copy(out.El[e].Data, w.El[e].Data)
	}
	return out
}

// AXPY accumulates alpha·o into w elementwise (the SGD update in the
// Winograd domain).
func (w *Weights) AXPY(alpha float32, o *Weights) {
	for e := range w.El {
		for i := range w.El[e].Data {
			w.El[e].Data[i] += alpha * o.El[e].Data[i]
		}
	}
}

// Bytes returns the Winograd-domain weight storage size |W| in bytes.
func (w *Weights) Bytes() int64 {
	return int64(len(w.El)) * int64(w.In) * int64(w.Out) * 4
}

// MulForward computes Y = X·W per element: the T² independent matrix
// multiplications of fprop. elements selects which tile elements to
// compute (nil = all), which is how MPT restricts a worker to its group's
// elements.
func MulForward(x *Domain, w *Weights, elements []int) *Domain {
	y := newDomain(x.Tiling, x.B, w.Out)
	// The T² element GEMMs are fully independent (the paper's Fig. 3(b)
	// decomposition), so they are the natural parallel grain here.
	elems := elemRange(len(x.El), elements)
	parallel.ForEach(0, len(elems), func(i int) {
		e := elems[i]
		tensor.MatMulInto(y.El[e], x.El[e], w.El[e])
	})
	return y
}

// MulBackward computes dX = dY·Wᵀ per element: the bprop dot products.
func MulBackward(dy *Domain, w *Weights, elements []int) *Domain {
	dx := newDomain(dy.Tiling, dy.B, w.In)
	elems := elemRange(len(dy.El), elements)
	parallel.ForEach(0, len(elems), func(i int) {
		e := elems[i]
		tensor.MatMulInto(dx.El[e], dy.El[e], w.El[e].T())
	})
	return dx
}

// MulGrad computes dW = Xᵀ·dY per element: the updateGrad dot products in
// the Winograd domain (Fig. 2(b), update-W).
func MulGrad(x, dy *Domain, elements []int) *Weights {
	dw := NewWeights(x.Tiling.Tr, x.C, dy.C)
	elems := elemRange(len(x.El), elements)
	parallel.ForEach(0, len(elems), func(i int) {
		e := elems[i]
		tensor.MatMulInto(dw.El[e], x.El[e].T(), dy.El[e])
	})
	return dw
}

// elemRange expands a nil element selection to all T² indices.
func elemRange(t2 int, elements []int) []int {
	if elements != nil {
		return elements
	}
	all := make([]int, t2)
	for i := range all {
		all[i] = i
	}
	return all
}

// GroupElements returns the tile-element indices owned by group g out of ng
// groups for a transform with tile size t (row-major (u,v) order). Elements
// are assigned in contiguous runs so that, when ng divides t, each group
// holds whole tile lines — the condition that enables the 1-D transform /
// 1-D predict optimization of Sections IV and V.
func GroupElements(t, ng, g int) []int {
	t2 := t * t
	if ng <= 0 || g < 0 || g >= ng {
		panic(fmt.Sprintf("winograd: bad group %d of %d", g, ng))
	}
	lo := g * t2 / ng
	hi := (g + 1) * t2 / ng
	out := make([]int, 0, hi-lo)
	for e := lo; e < hi; e++ {
		out = append(out, e)
	}
	return out
}

// HoldsWholeLines reports whether each group's element set under
// GroupElements consists of complete tile rows, enabling the 1-D transform
// optimization (true for the paper's 4-group configuration with T=4).
func HoldsWholeLines(t, ng int) bool {
	t2 := t * t
	if t2%ng != 0 {
		return false
	}
	per := t2 / ng
	return per%t == 0
}
