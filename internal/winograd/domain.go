package winograd

import (
	"fmt"

	"mptwino/internal/parallel"
	"mptwino/internal/tensor"
)

// Domain is a batch of feature maps represented entirely in the Winograd
// domain: for each of the T² tile-element positions (u,v) there is one
// (B·tiles)×C matrix. This layout makes the paper's central observation
// concrete — the dot products decompose into T² independent matrix
// multiplications (Fig. 3(b)), one per element, with no computation between
// different elements. MPT partitions exactly this El slice across groups.
type Domain struct {
	Tiling *Tiling
	B      int           // batch size
	C      int           // channels
	El     []*tensor.Mat // length T²; each (B·tiles)×C
}

// Rows returns B·tiles, the row count of each element matrix.
func (d *Domain) Rows() int { return d.B * d.Tiling.Tiles() }

// NewDomain allocates an all-zero Domain for the given tiling — the
// reusable destination of the Into transform/multiply entry points below.
func NewDomain(tl *Tiling, b, c int) *Domain {
	t2 := tl.Tr.T * tl.Tr.T
	d := &Domain{Tiling: tl, B: b, C: c, El: make([]*tensor.Mat, t2)}
	rows := b * tl.Tiles()
	for e := range d.El {
		d.El[e] = tensor.NewMat(rows, c)
	}
	return d
}

func newDomain(tl *Tiling, b, c int) *Domain { return NewDomain(tl, b, c) }

// row returns the element-matrix row index of (image b, tile th, tw).
func (d *Domain) row(b, th, tw int) int {
	return (b*d.Tiling.TilesH+th)*d.Tiling.TilesW + tw
}

// TransformInput lifts a spatial input tensor x (B,C,H,W matching the
// tiling's layer geometry) into the Winograd domain: X = Bᵀ·x·B per tile.
func (tl *Tiling) TransformInput(x *tensor.Tensor) *Domain {
	d := newDomain(tl, x.N, x.C)
	tl.TransformInputInto(d, x, NewScratch())
	return d
}

// TransformInputInto is TransformInput writing into a caller-owned Domain
// with caller-owned scratch; steady-state calls do not allocate.
func (tl *Tiling) TransformInputInto(d *Domain, x *tensor.Tensor, sc *Scratch) {
	if x.C != tl.P.In || x.H != tl.P.H || x.W != tl.P.W {
		panic(fmt.Sprintf("winograd: input shape %s does not match layer I=%d %dx%d",
			x.ShapeString(), tl.P.In, tl.P.H, tl.P.W))
	}
	// Images are independent tile batches: fan them out. Each (b, c, tile)
	// writes a distinct (row, c) slot of every element matrix, so the
	// parallel result is bit-identical to the sequential loop.
	if sc.Workers() == 1 {
		for b := 0; b < x.N; b++ {
			tl.transformInputItem(d, x, sc.slot(0), b)
		}
		return
	}
	parallel.ForEachWorker(sc.Workers(), x.N, func(w, b int) {
		tl.transformInputItem(d, x, sc.slot(w), b)
	})
}

func (tl *Tiling) transformInputItem(d *Domain, x *tensor.Tensor, sl *scratchSlot, b int) {
	t := tl.Tr.T
	a := &sl.arena
	a.Reset()
	patch := a.Mat(t, t)
	w := a.Mat(t, t)
	tmp := a.Floats(tl.Tr.TmpLen())
	for c := 0; c < x.C; c++ {
		for th := 0; th < tl.TilesH; th++ {
			for tw := 0; tw < tl.TilesW; tw++ {
				tl.ExtractInputTile(patch, x, b, c, th, tw)
				tl.Tr.InputToWinogradInto(w, patch, tmp)
				row := d.row(b, th, tw)
				for e, v := range w.Data {
					d.El[e].Set(row, c, v)
				}
			}
		}
	}
}

// TransformOutputGrad lifts a spatial output-gradient tensor dy into the
// Winograd domain via the adjoint of the inverse output transform:
// dY = A·dy·Aᵀ per tile.
func (tl *Tiling) TransformOutputGrad(dy *tensor.Tensor) *Domain {
	d := newDomain(tl, dy.N, dy.C)
	tl.TransformOutputGradInto(d, dy, NewScratch())
	return d
}

// TransformOutputGradInto is TransformOutputGrad into a caller-owned
// Domain with caller-owned scratch.
func (tl *Tiling) TransformOutputGradInto(d *Domain, dy *tensor.Tensor, sc *Scratch) {
	if dy.H != tl.P.OutH() || dy.W != tl.P.OutW() {
		panic(fmt.Sprintf("winograd: dy shape %s does not match output %dx%d",
			dy.ShapeString(), tl.P.OutH(), tl.P.OutW()))
	}
	if sc.Workers() == 1 {
		for b := 0; b < dy.N; b++ {
			tl.transformOutputGradItem(d, dy, sc.slot(0), b)
		}
		return
	}
	parallel.ForEachWorker(sc.Workers(), dy.N, func(w, b int) {
		tl.transformOutputGradItem(d, dy, sc.slot(w), b)
	})
}

func (tl *Tiling) transformOutputGradItem(d *Domain, dy *tensor.Tensor, sl *scratchSlot, b int) {
	m := tl.Tr.M
	a := &sl.arena
	a.Reset()
	patch := a.Mat(m, m)
	w := a.Mat(tl.Tr.T, tl.Tr.T)
	tmp := a.Floats(tl.Tr.TmpLen())
	for c := 0; c < dy.C; c++ {
		for th := 0; th < tl.TilesH; th++ {
			for tw := 0; tw < tl.TilesW; tw++ {
				tl.ExtractOutputTile(patch, dy, b, c, th, tw)
				tl.Tr.OutputToWinogradInto(w, patch, tmp)
				row := d.row(b, th, tw)
				for e, v := range w.Data {
					d.El[e].Set(row, c, v)
				}
			}
		}
	}
}

// InverseOutput gathers a Winograd-domain output y-Domain into the spatial
// output tensor: y = Aᵀ·Y·A per tile. This is the tile-gathering step whose
// communication MPT must pay for (Section III-C).
func (tl *Tiling) InverseOutput(d *Domain) *tensor.Tensor {
	y := tensor.New(d.B, d.C, tl.P.OutH(), tl.P.OutW())
	tl.InverseOutputInto(y, d, NewScratch())
	return y
}

// InverseOutputInto is InverseOutput into a caller-owned output tensor
// with caller-owned scratch.
func (tl *Tiling) InverseOutputInto(y *tensor.Tensor, d *Domain, sc *Scratch) {
	// Output tiles never overlap and images own disjoint y regions, so the
	// batch dimension shards freely with bit-identical results.
	if sc.Workers() == 1 {
		for b := 0; b < d.B; b++ {
			tl.inverseOutputItem(y, d, sc.slot(0), b)
		}
		return
	}
	parallel.ForEachWorker(sc.Workers(), d.B, func(w, b int) {
		tl.inverseOutputItem(y, d, sc.slot(w), b)
	})
}

func (tl *Tiling) inverseOutputItem(y *tensor.Tensor, d *Domain, sl *scratchSlot, b int) {
	t := tl.Tr.T
	a := &sl.arena
	a.Reset()
	tile := a.Mat(t, t)
	out := a.Mat(tl.Tr.M, tl.Tr.M)
	tmp := a.Floats(tl.Tr.TmpLen())
	for c := 0; c < d.C; c++ {
		for th := 0; th < tl.TilesH; th++ {
			for tw := 0; tw < tl.TilesW; tw++ {
				row := d.row(b, th, tw)
				for e := range d.El {
					tile.Data[e] = d.El[e].At(row, c)
				}
				tl.Tr.OutputFromWinogradInto(out, tile, tmp)
				tl.ScatterOutputTile(y, out, b, c, th, tw)
			}
		}
	}
}

// InverseInputGrad maps a Winograd-domain input-gradient Domain back to the
// spatial domain via the adjoint of the input transform, accumulating
// overlapping tile contributions: dx += B·dX·Bᵀ.
func (tl *Tiling) InverseInputGrad(d *Domain) *tensor.Tensor {
	dx := tensor.New(d.B, d.C, tl.P.H, tl.P.W)
	tl.InverseInputGradInto(dx, d, NewScratch())
	return dx
}

// InverseInputGradInto is InverseInputGrad into a caller-owned (zeroed)
// gradient tensor with caller-owned scratch. dx is cleared first, so the
// Into form has the same semantics as the allocating wrapper.
func (tl *Tiling) InverseInputGradInto(dx *tensor.Tensor, d *Domain, sc *Scratch) {
	dx.Zero()
	// Overlapping tiles only accumulate within one (b, c) feature map;
	// across images the dx regions are disjoint, and the per-image tile
	// order is unchanged, so the accumulation order per dx slot — and with
	// it the floating-point result — is identical to the sequential loop.
	if sc.Workers() == 1 {
		for b := 0; b < d.B; b++ {
			tl.inverseInputGradItem(dx, d, sc.slot(0), b)
		}
		return
	}
	parallel.ForEachWorker(sc.Workers(), d.B, func(w, b int) {
		tl.inverseInputGradItem(dx, d, sc.slot(w), b)
	})
}

func (tl *Tiling) inverseInputGradItem(dx *tensor.Tensor, d *Domain, sl *scratchSlot, b int) {
	t := tl.Tr.T
	a := &sl.arena
	a.Reset()
	tile := a.Mat(t, t)
	out := a.Mat(t, t)
	tmp := a.Floats(tl.Tr.TmpLen())
	for c := 0; c < d.C; c++ {
		for th := 0; th < tl.TilesH; th++ {
			for tw := 0; tw < tl.TilesW; tw++ {
				row := d.row(b, th, tw)
				for e := range d.El {
					tile.Data[e] = d.El[e].At(row, c)
				}
				tl.Tr.InputFromWinogradInto(out, tile, tmp)
				tl.ScatterAddInputTile(dx, out, b, c, th, tw)
			}
		}
	}
}

// Scale multiplies every element of the Domain by alpha in place and
// returns d for chaining.
func (d *Domain) Scale(alpha float32) *Domain {
	for _, el := range d.El {
		for i := range el.Data {
			el.Data[i] *= alpha
		}
	}
	return d
}

// AddDomain accumulates o into d elementwise. Shapes must match; this is
// the paper's modified join operation (mean of Winograd-domain tiles,
// Fig. 14) before the final Scale(1/n).
func (d *Domain) AddDomain(o *Domain) {
	if d.B != o.B || d.C != o.C || len(d.El) != len(o.El) {
		panic(fmt.Sprintf("winograd: AddDomain shape mismatch B=%d/%d C=%d/%d", d.B, o.B, d.C, o.C))
	}
	for e := range d.El {
		for i := range d.El[e].Data {
			d.El[e].Data[i] += o.El[e].Data[i]
		}
	}
}

// AddOutputBias shifts every spatial-domain neuron that this output Domain
// inverse-transforms to by exactly bias, by adding the lifted constant
// tile to every (tile, channel) position.
func (d *Domain) AddOutputBias(bias float32) {
	l := d.Tiling.Tr.LiftOutputBias(bias)
	for e := range d.El {
		for i := range d.El[e].Data {
			d.El[e].Data[i] += l.Data[e]
		}
	}
}

// Clone returns a deep copy of the Domain.
func (d *Domain) Clone() *Domain {
	out := newDomain(d.Tiling, d.B, d.C)
	for e := range d.El {
		copy(out.El[e].Data, d.El[e].Data)
	}
	return out
}

// Weights is a full set of layer weights in the Winograd domain: for each
// tile element (u,v), an In×Out matrix W^{(u,v)} (paper eq. 2). The paper's
// Winograd layer stores and updates these directly; MPT assigns each group
// only its own subset of elements ("each part of the Winograd domain
// weights is only used within the associated group").
type Weights struct {
	Tr      *Transform
	In, Out int
	El      []*tensor.Mat // length T²; each In×Out
}

// NewWeights allocates zero Winograd-domain weights.
func NewWeights(tr *Transform, in, out int) *Weights {
	t2 := tr.T * tr.T
	w := &Weights{Tr: tr, In: in, Out: out, El: make([]*tensor.Mat, t2)}
	for e := range w.El {
		w.El[e] = tensor.NewMat(in, out)
	}
	return w
}

// TransformWeights lifts spatial weights (Out,In,r,r) into the Winograd
// domain: W = G·w·Gᵀ per (i,j) filter.
func TransformWeights(tr *Transform, w *tensor.Tensor) *Weights {
	ww := NewWeights(tr, w.C, w.N)
	TransformWeightsInto(ww, tr, w, NewScratch())
	return ww
}

// TransformWeightsInto is TransformWeights into caller-owned Weights with
// caller-owned scratch.
func TransformWeightsInto(ww *Weights, tr *Transform, w *tensor.Tensor, sc *Scratch) {
	if w.H != tr.R || w.W != tr.R {
		panic(fmt.Sprintf("winograd: weight shape %s does not match transform %s", w.ShapeString(), tr))
	}
	// Each (i, j) filter writes its own column slot in every element matrix.
	if sc.Workers() == 1 {
		for j := 0; j < w.N; j++ {
			transformWeightsItem(ww, tr, w, sc.slot(0), j)
		}
		return
	}
	parallel.ForEachWorker(sc.Workers(), w.N, func(wk, j int) {
		transformWeightsItem(ww, tr, w, sc.slot(wk), j)
	})
}

func transformWeightsItem(ww *Weights, tr *Transform, w *tensor.Tensor, sl *scratchSlot, j int) {
	a := &sl.arena
	a.Reset()
	f := a.Mat(tr.R, tr.R)
	wd := a.Mat(tr.T, tr.T)
	tmp := a.Floats(tr.TmpLen())
	for i := 0; i < w.C; i++ {
		for kh := 0; kh < tr.R; kh++ {
			for kw := 0; kw < tr.R; kw++ {
				f.Set(kh, kw, w.At(j, i, kh, kw))
			}
		}
		tr.FilterToWinogradInto(wd, f, tmp)
		for e, v := range wd.Data {
			ww.El[e].Set(i, j, v)
		}
	}
}

// ToSpatialGrad maps Winograd-domain weight gradients back to spatial
// weight gradients: dw = Gᵀ·dW·G per filter. Used by the Fig. 2(a) mode
// where spatial weights are the trained parameters.
func (w *Weights) ToSpatialGrad() *tensor.Tensor {
	out := tensor.New(w.Out, w.In, w.Tr.R, w.Tr.R)
	w.ToSpatialGradInto(out, NewScratch())
	return out
}

// ToSpatialGradInto is ToSpatialGrad into a caller-owned tensor with
// caller-owned scratch.
func (w *Weights) ToSpatialGradInto(out *tensor.Tensor, sc *Scratch) {
	if sc.Workers() == 1 {
		for j := 0; j < w.Out; j++ {
			w.toSpatialGradItem(out, sc.slot(0), j)
		}
		return
	}
	parallel.ForEachWorker(sc.Workers(), w.Out, func(wk, j int) {
		w.toSpatialGradItem(out, sc.slot(wk), j)
	})
}

func (w *Weights) toSpatialGradItem(out *tensor.Tensor, sl *scratchSlot, j int) {
	tr := w.Tr
	a := &sl.arena
	a.Reset()
	tile := a.Mat(tr.T, tr.T)
	g := a.Mat(tr.R, tr.R)
	tmp := a.Floats(tr.TmpLen())
	for i := 0; i < w.In; i++ {
		for e := range w.El {
			tile.Data[e] = w.El[e].At(i, j)
		}
		tr.FilterFromWinogradInto(g, tile, tmp)
		for kh := 0; kh < tr.R; kh++ {
			for kw := 0; kw < tr.R; kw++ {
				out.Set(j, i, kh, kw, g.At(kh, kw))
			}
		}
	}
}

// Clone returns a deep copy of the weights.
func (w *Weights) Clone() *Weights {
	out := NewWeights(w.Tr, w.In, w.Out)
	for e := range w.El {
		copy(out.El[e].Data, w.El[e].Data)
	}
	return out
}

// AXPY accumulates alpha·o into w elementwise (the SGD update in the
// Winograd domain).
func (w *Weights) AXPY(alpha float32, o *Weights) {
	for e := range w.El {
		for i := range w.El[e].Data {
			w.El[e].Data[i] += alpha * o.El[e].Data[i]
		}
	}
}

// Bytes returns the Winograd-domain weight storage size |W| in bytes.
func (w *Weights) Bytes() int64 {
	return int64(len(w.El)) * int64(w.In) * int64(w.Out) * 4
}

// MulForward computes Y = X·W per element: the T² independent matrix
// multiplications of fprop. elements selects which tile elements to
// compute (nil = all), which is how MPT restricts a worker to its group's
// elements.
func MulForward(x *Domain, w *Weights, elements []int) *Domain {
	y := newDomain(x.Tiling, x.B, w.Out)
	// The T² element GEMMs are fully independent (the paper's Fig. 3(b)
	// decomposition), so they are the natural parallel grain here.
	n := elemCount(len(x.El), elements)
	parallel.ForEach(0, n, func(i int) {
		e := elemAt(elements, i)
		tensor.MatMulInto(y.El[e], x.El[e], w.El[e])
	})
	return y
}

// MulForwardInto is MulForward writing the selected elements of a
// caller-owned Domain, with per-worker GEMM packing scratch.
func MulForwardInto(y, x *Domain, w *Weights, elements []int, sc *Scratch) {
	n := elemCount(len(x.El), elements)
	if sc.Workers() == 1 {
		sl := sc.slot(0)
		for i := 0; i < n; i++ {
			e := elemAt(elements, i)
			tensor.MatMulIntoScratch(y.El[e], x.El[e], w.El[e], &sl.gemm)
		}
		return
	}
	parallel.ForEachWorker(sc.Workers(), n, func(wk, i int) {
		e := elemAt(elements, i)
		tensor.MatMulIntoScratch(y.El[e], x.El[e], w.El[e], &sc.slot(wk).gemm)
	})
}

// MulBackward computes dX = dY·Wᵀ per element: the bprop dot products.
// The transposed-operand GEMM consumes W in place — no Wᵀ is ever
// materialized.
func MulBackward(dy *Domain, w *Weights, elements []int) *Domain {
	dx := newDomain(dy.Tiling, dy.B, w.In)
	n := elemCount(len(dy.El), elements)
	parallel.ForEach(0, n, func(i int) {
		e := elemAt(elements, i)
		tensor.MatMulNTInto(dx.El[e], dy.El[e], w.El[e])
	})
	return dx
}

// MulBackwardInto is MulBackward into a caller-owned Domain with
// per-worker GEMM packing scratch.
func MulBackwardInto(dx, dy *Domain, w *Weights, elements []int, sc *Scratch) {
	n := elemCount(len(dy.El), elements)
	if sc.Workers() == 1 {
		sl := sc.slot(0)
		for i := 0; i < n; i++ {
			e := elemAt(elements, i)
			tensor.MatMulNTIntoScratch(dx.El[e], dy.El[e], w.El[e], &sl.gemm)
		}
		return
	}
	parallel.ForEachWorker(sc.Workers(), n, func(wk, i int) {
		e := elemAt(elements, i)
		tensor.MatMulNTIntoScratch(dx.El[e], dy.El[e], w.El[e], &sc.slot(wk).gemm)
	})
}

// MulGrad computes dW = Xᵀ·dY per element: the updateGrad dot products in
// the Winograd domain (Fig. 2(b), update-W). The transposed-operand GEMM
// consumes X in place — no Xᵀ is ever materialized.
func MulGrad(x, dy *Domain, elements []int) *Weights {
	dw := NewWeights(x.Tiling.Tr, x.C, dy.C)
	n := elemCount(len(x.El), elements)
	parallel.ForEach(0, n, func(i int) {
		e := elemAt(elements, i)
		tensor.MatMulTNInto(dw.El[e], x.El[e], dy.El[e])
	})
	return dw
}

// MulGradInto is MulGrad into caller-owned Weights with per-worker GEMM
// packing scratch.
func MulGradInto(dw *Weights, x, dy *Domain, elements []int, sc *Scratch) {
	n := elemCount(len(x.El), elements)
	if sc.Workers() == 1 {
		sl := sc.slot(0)
		for i := 0; i < n; i++ {
			e := elemAt(elements, i)
			tensor.MatMulTNIntoScratch(dw.El[e], x.El[e], dy.El[e], &sl.gemm)
		}
		return
	}
	parallel.ForEachWorker(sc.Workers(), n, func(wk, i int) {
		e := elemAt(elements, i)
		tensor.MatMulTNIntoScratch(dw.El[e], x.El[e], dy.El[e], &sc.slot(wk).gemm)
	})
}

// elemAt resolves the i-th selected element index (nil selection = all).
func elemAt(elements []int, i int) int {
	if elements == nil {
		return i
	}
	return elements[i]
}

// elemCount returns the number of selected elements (nil selection = t2).
func elemCount(t2 int, elements []int) int {
	if elements == nil {
		return t2
	}
	return len(elements)
}

// GroupElements returns the tile-element indices owned by group g out of ng
// groups for a transform with tile size t (row-major (u,v) order). Elements
// are assigned in contiguous runs so that, when ng divides t, each group
// holds whole tile lines — the condition that enables the 1-D transform /
// 1-D predict optimization of Sections IV and V.
func GroupElements(t, ng, g int) []int {
	t2 := t * t
	if ng <= 0 || g < 0 || g >= ng {
		panic(fmt.Sprintf("winograd: bad group %d of %d", g, ng))
	}
	lo := g * t2 / ng
	hi := (g + 1) * t2 / ng
	out := make([]int, 0, hi-lo)
	for e := lo; e < hi; e++ {
		out = append(out, e)
	}
	return out
}

// HoldsWholeLines reports whether each group's element set under
// GroupElements consists of complete tile rows, enabling the 1-D transform
// optimization (true for the paper's 4-group configuration with T=4).
func HoldsWholeLines(t, ng int) bool {
	t2 := t * t
	if t2%ng != 0 {
		return false
	}
	per := t2 / ng
	return per%t == 0
}
