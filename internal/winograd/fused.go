package winograd

import (
	"fmt"

	"mptwino/internal/tensor"
)

// Fused sandwich transforms. The Cook–Toom matrices B, G, A are sparse with
// small fixed coefficients (0, ±1, ±½, … — e.g. every F(2,3) entry is one
// of 0, ±1, ±½), so each transform L·x·R is compiled once, at MakeTransform
// time, into a sparse per-row/per-column term schedule. The executor
// classifies each coefficient: c = 1 becomes a fused add, c = −1 a fused
// subtract, anything else a multiply-add — the add/sub codepaths generated
// from the exact structure of the matrices, without the dense inner
// products (or the two temporary matrices) of tensor.Sandwich.
//
// Bit-compatibility with tensor.Sandwich (verified in fused_test.go): the
// schedule enumerates exactly the nonzero coefficients of L (resp. R) in
// ascending k, which is precisely the set and order of addends the naive
// MatMul reference accumulates for stage 1 (its zero-skip tests the left
// operand, i.e. the coefficients). Stage 2's reference skips data zeros
// instead; the sets differ only in ±0 addends, which cannot change an
// accumulator chain that starts at +0 (x + (±0) = x, and +0 + (±0) = +0
// under round-to-nearest). 1·v and (−1)·v are exact, and x − v is
// bit-equal to x + (−v), so the classified codepaths round identically to
// the reference's c·v multiply-adds.
//
// Transforms with T beyond fusedMaxT (far past every size the paper uses)
// skip compilation and take the allocation-free generic sandwichInto path,
// which replicates the reference loops directly.

// fusedMaxT bounds the tile sizes that get compiled schedules.
const fusedMaxT = 8

// term is one addend of a sparse dot product: coefficient c applied to the
// operand at index k. Terms are stored in ascending k.
type term struct {
	k int32
	c float32
}

// sched is the compiled sparse structure of a transform matrix: rows[i]
// lists the nonzero (k, c) of row i.
type sched struct {
	rows [][]term
	cols int
}

func compileSched(m *tensor.Mat) *sched {
	s := &sched{rows: make([][]term, m.Rows), cols: m.Cols}
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			if c := m.At(i, k); c != 0 {
				s.rows[i] = append(s.rows[i], term{k: int32(k), c: c})
			}
		}
	}
	return s
}

// fusedOps holds the compiled schedules of the six transform matrices. The
// stage-2 (right-multiply) schedule of a matrix R is the row schedule of
// Rᵀ, which is always one of these six.
type fusedOps struct {
	g, gt, b, bt, a, at *sched
}

func compileFused(tr *Transform) *fusedOps {
	return &fusedOps{
		g:  compileSched(tr.G),
		gt: compileSched(tr.GT),
		b:  compileSched(tr.B),
		bt: compileSched(tr.BT),
		a:  compileSched(tr.A),
		at: compileSched(tr.AT),
	}
}

// applyRow accumulates the classified terms of one schedule row into drow:
// drow += c·x[k] for each term, with the c = ±1 fast paths.
func applyRow(drow []float32, terms []term, x []float32, xc int) {
	for _, t := range terms {
		xrow := x[int(t.k)*xc : int(t.k)*xc+len(drow)]
		switch t.c {
		case 1:
			for j, v := range xrow {
				drow[j] += v
			}
		case -1:
			for j, v := range xrow {
				drow[j] -= v
			}
		default:
			c := t.c
			for j, v := range xrow {
				drow[j] += c * v
			}
		}
	}
}

// fusedSandwichInto computes dst = L·x·R where ls is the schedule of L and
// rts the schedule of Rᵀ. tmp must hold at least len(ls.rows)·x.Cols
// floats; it carries the stage-1 product L·x.
func fusedSandwichInto(dst *tensor.Mat, ls, rts *sched, x *tensor.Mat, tmp []float32) {
	lr, xc := len(ls.rows), x.Cols
	if x.Rows != ls.cols || dst.Rows != lr || dst.Cols != len(rts.rows) || rts.cols != xc {
		panic(fmt.Sprintf("winograd: fused sandwich shape error dst %dx%d, L %dx%d, x %dx%d, Rᵀ %dx%d",
			dst.Rows, dst.Cols, lr, ls.cols, x.Rows, x.Cols, len(rts.rows), rts.cols))
	}
	t1 := tmp[: lr*xc : lr*xc]
	for i := range t1 {
		t1[i] = 0
	}
	for i, terms := range ls.rows {
		applyRow(t1[i*xc:i*xc+xc], terms, x.Data, xc)
	}
	for i := 0; i < lr; i++ {
		row := t1[i*xc : i*xc+xc]
		drow := dst.Data[i*dst.Cols : i*dst.Cols+dst.Cols]
		for j, terms := range rts.rows {
			var acc float32
			for _, t := range terms {
				// c·v is exact for c = ±1, so the single multiply-add path
				// rounds identically to dedicated add/sub branches while
				// keeping the inner loop branch-free.
				acc += t.c * row[t.k]
			}
			drow[j] = acc
		}
	}
}

// sandwichInto is the generic allocation-free fallback: dst = l·x·r with
// the exact reference semantics of tensor.Sandwich (two naive multiplies,
// zero-skip on the left operand), staging l·x in tmp.
func sandwichInto(dst *tensor.Mat, l, x, r *tensor.Mat, tmp []float32) {
	if l.Cols != x.Rows || x.Cols != r.Rows || dst.Rows != l.Rows || dst.Cols != r.Cols {
		panic(fmt.Sprintf("winograd: sandwich shape error dst %dx%d = %dx%d · %dx%d · %dx%d",
			dst.Rows, dst.Cols, l.Rows, l.Cols, x.Rows, x.Cols, r.Rows, r.Cols))
	}
	lr, xc := l.Rows, x.Cols
	t1 := tmp[: lr*xc : lr*xc]
	for i := range t1 {
		t1[i] = 0
	}
	for i := 0; i < lr; i++ {
		lrow := l.Data[i*l.Cols : (i+1)*l.Cols]
		drow := t1[i*xc : i*xc+xc]
		for k, lv := range lrow {
			if lv == 0 {
				continue
			}
			xrow := x.Data[k*xc : k*xc+xc]
			for j, xv := range xrow {
				drow[j] += lv * xv
			}
		}
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < lr; i++ {
		trow := t1[i*xc : i*xc+xc]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, tv := range trow {
			if tv == 0 {
				continue
			}
			rrow := r.Data[k*r.Cols : (k+1)*r.Cols]
			for j, rv := range rrow {
				drow[j] += tv * rv
			}
		}
	}
}

// TmpLen returns the scratch length the Into transform methods need.
func (tr *Transform) TmpLen() int { return tr.T * tr.T }

// sandwich dispatches one transform step. Every transform here has the
// form S·x·Sᵀ, so a single schedule s (of S) drives both stages of the
// fused path; l/x/r feed the generic fallback when s is nil.
func (tr *Transform) sandwich(dst *tensor.Mat, s *sched, l, x, r *tensor.Mat, tmp []float32) {
	if s != nil {
		fusedSandwichInto(dst, s, s, x, tmp)
		return
	}
	sandwichInto(dst, l, x, r, tmp)
}

// FilterToWinogradInto computes dst = G·w·Gᵀ (shape T×T) without
// allocating; tmp needs TmpLen() floats.
func (tr *Transform) FilterToWinogradInto(dst, w *tensor.Mat, tmp []float32) {
	var s *sched
	if tr.fused != nil {
		s = tr.fused.g
	}
	tr.sandwich(dst, s, tr.G, w, tr.GT, tmp)
}

// InputToWinogradInto computes dst = Bᵀ·x·B (shape T×T) without allocating.
func (tr *Transform) InputToWinogradInto(dst, x *tensor.Mat, tmp []float32) {
	var s *sched
	if tr.fused != nil {
		s = tr.fused.bt
	}
	tr.sandwich(dst, s, tr.BT, x, tr.B, tmp)
}

// OutputFromWinogradInto computes dst = Aᵀ·y·A (shape M×M) without
// allocating.
func (tr *Transform) OutputFromWinogradInto(dst, y *tensor.Mat, tmp []float32) {
	var s *sched
	if tr.fused != nil {
		s = tr.fused.at
	}
	tr.sandwich(dst, s, tr.AT, y, tr.A, tmp)
}

// OutputToWinogradInto computes dst = A·dy·Aᵀ (shape T×T) without
// allocating.
func (tr *Transform) OutputToWinogradInto(dst, dy *tensor.Mat, tmp []float32) {
	var s *sched
	if tr.fused != nil {
		s = tr.fused.a
	}
	tr.sandwich(dst, s, tr.A, dy, tr.AT, tmp)
}

// InputFromWinogradInto computes dst = B·dX·Bᵀ (shape T×T) without
// allocating.
func (tr *Transform) InputFromWinogradInto(dst, dx *tensor.Mat, tmp []float32) {
	var s *sched
	if tr.fused != nil {
		s = tr.fused.b
	}
	tr.sandwich(dst, s, tr.B, dx, tr.BT, tmp)
}

// FilterFromWinogradInto computes dst = Gᵀ·dW·G (shape R×R) without
// allocating.
func (tr *Transform) FilterFromWinogradInto(dst, dw *tensor.Mat, tmp []float32) {
	var s *sched
	if tr.fused != nil {
		s = tr.fused.gt
	}
	tr.sandwich(dst, s, tr.GT, dw, tr.G, tmp)
}
