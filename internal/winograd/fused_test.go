package winograd

import (
	"math"
	"math/rand"
	"testing"

	"mptwino/internal/tensor"
)

// sandwichRef is the reference the fused paths must match bit-exactly: the
// naive mul+add sandwich pipeline the transforms used previously. It pins
// the unfused reference loops directly rather than tensor.Sandwich because
// the transform schedules are plain mul+add chains by contract — they do
// not follow the GEMM dispatch tier, so a forced fused tier
// (MPTWINO_GEMM_KERNEL=fma) must not change this reference either.
func sandwichRef(l, x, r *tensor.Mat) *tensor.Mat {
	lx := tensor.NewMat(l.Rows, x.Cols)
	tensor.MatMulNaiveInto(lx, l, x)
	out := tensor.NewMat(lx.Rows, r.Cols)
	tensor.MatMulNaiveInto(out, lx, r)
	return out
}

func randTile(rng *rand.Rand, n, m int, zeroFrac float64) *tensor.Mat {
	out := tensor.NewMat(n, m)
	for i := range out.Data {
		if rng.Float64() < zeroFrac {
			continue
		}
		out.Data[i] = float32(rng.NormFloat64())
	}
	return out
}

func mustBitEqual(t *testing.T, ctx string, want, got *tensor.Mat) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", ctx, want.Rows, want.Cols, got.Rows, got.Cols)
	}
	for i := range want.Data {
		if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
			t.Fatalf("%s: element %d: % .9g vs % .9g", ctx, i, want.Data[i], got.Data[i])
		}
	}
}

// checkTransformOps drives all six Into transforms of tr against the
// tensor.Sandwich reference, with data that includes exact zeros (the
// zero-padded tiles at feature-map edges).
func checkTransformOps(t *testing.T, tr *Transform, zeroFrac float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(tr.T)*100 + int64(tr.R)))
	tmp := make([]float32, tr.TmpLen())
	cases := []struct {
		name    string
		l, r    *tensor.Mat
		in, out int // input/output side lengths
		apply   func(dst, x *tensor.Mat)
	}{
		{"FilterToWinograd", tr.G, tr.GT, tr.R, tr.T, func(d, x *tensor.Mat) { tr.FilterToWinogradInto(d, x, tmp) }},
		{"InputToWinograd", tr.BT, tr.B, tr.T, tr.T, func(d, x *tensor.Mat) { tr.InputToWinogradInto(d, x, tmp) }},
		{"OutputFromWinograd", tr.AT, tr.A, tr.T, tr.M, func(d, x *tensor.Mat) { tr.OutputFromWinogradInto(d, x, tmp) }},
		{"OutputToWinograd", tr.A, tr.AT, tr.M, tr.T, func(d, x *tensor.Mat) { tr.OutputToWinogradInto(d, x, tmp) }},
		{"InputFromWinograd", tr.B, tr.BT, tr.T, tr.T, func(d, x *tensor.Mat) { tr.InputFromWinogradInto(d, x, tmp) }},
		{"FilterFromWinograd", tr.GT, tr.G, tr.T, tr.R, func(d, x *tensor.Mat) { tr.FilterFromWinogradInto(d, x, tmp) }},
	}
	for _, tc := range cases {
		for trial := 0; trial < 20; trial++ {
			x := randTile(rng, tc.in, tc.in, zeroFrac)
			want := sandwichRef(tc.l, x, tc.r)
			got := tensor.NewMat(tc.out, tc.out)
			// Poison dst to prove it is fully overwritten.
			for i := range got.Data {
				got.Data[i] = float32(math.NaN())
			}
			tc.apply(got, x)
			mustBitEqual(t, tr.String()+"/"+tc.name, want, got)
		}
	}
}

// The compiled fused schedules must be bit-identical to the generic
// Cook–Toom sandwich for every transform the paper uses, plus the wide
// F(6×6,3×3) (T=8, at the fusedMaxT boundary) the planner's tile axis can
// select behind AllowWideTiles.
func TestFusedTransformsBitIdentical(t *testing.T) {
	for _, tr := range []*Transform{F2x2_3x3, F4x4_3x3, F2x2_5x5, F6x6_3x3} {
		if tr.fused == nil {
			t.Fatalf("%s: expected compiled fused schedules", tr)
		}
		checkTransformOps(t, tr, 0.0)
		checkTransformOps(t, tr, 0.4) // zero-heavy data (padding tiles)
	}
}

// The wide-tile transforms must run their compiled schedules without
// allocating: they sit under the same steady-state training loops as
// F(2×2,3×3), so a hidden allocation would break the 0 allocs/op kernel
// contract layer-wide.
func TestWideTileTransformsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tr := range []*Transform{F4x4_3x3, F6x6_3x3} {
		tmp := make([]float32, tr.TmpLen())
		w := randTile(rng, tr.R, tr.R, 0)
		x := randTile(rng, tr.T, tr.T, 0)
		dw := tensor.NewMat(tr.T, tr.T)
		dx := tensor.NewMat(tr.T, tr.T)
		y := tensor.NewMat(tr.M, tr.M)
		if n := testing.AllocsPerRun(10, func() {
			tr.FilterToWinogradInto(dw, w, tmp)
			tr.InputToWinogradInto(dx, x, tmp)
			tr.OutputFromWinogradInto(y, x, tmp)
		}); n != 0 {
			t.Fatalf("%s: compiled transforms allocate %v/op", tr, n)
		}
	}
}

// Transforms past the fusion size gate fall back to the generic
// allocation-free path, which must also match the reference bit-exactly.
func TestGenericFallbackBitIdentical(t *testing.T) {
	tr, err := MakeTransform(6, 5) // T = 10 > fusedMaxT
	if err != nil {
		t.Fatal(err)
	}
	if tr.fused != nil {
		t.Fatalf("F(6,5) with T=%d should not compile fused schedules", tr.T)
	}
	checkTransformOps(t, tr, 0.2)
}

// A Transform assembled outside MakeTransform has no schedules; the Into
// methods must still work via the fallback.
func TestHandAssembledTransformUsesFallback(t *testing.T) {
	src := F2x2_3x3
	tr := &Transform{M: src.M, R: src.R, T: src.T,
		G: src.G, BT: src.BT, AT: src.AT, B: src.B, A: src.A, GT: src.GT}
	checkTransformOps(t, tr, 0.1)
}

func TestMatVecInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := F2_3
	v := make([]float32, tr.T)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	dst := make([]float32, tr.T)
	tr.Transform1DInputInto(dst, v)
	ref := tr.Transform1DInput(v)
	for i := range ref {
		if math.Float32bits(ref[i]) != math.Float32bits(dst[i]) {
			t.Fatalf("Transform1DInputInto diverges at %d", i)
		}
	}
	out := make([]float32, tr.M)
	tr.Inverse1DOutputInto(out, v)
	refOut := tr.Inverse1DOutput(v)
	for i := range refOut {
		if math.Float32bits(refOut[i]) != math.Float32bits(out[i]) {
			t.Fatalf("Inverse1DOutputInto diverges at %d", i)
		}
	}
}
