// Package winograd implements the Winograd-transformed convolution that the
// paper parallelizes: exact Cook–Toom construction of the transform
// matrices F(m×m, r×r), tile extraction/scatter, the three training phases
// (fprop, bprop, updateGrad) in the Winograd domain, and the Winograd layer
// of Fig. 2(b) whose weights live and are updated directly in the Winograd
// domain.
//
// The transform identity (paper eq. 1) is
//
//	y = Aᵀ [(G·w·Gᵀ) ⊙ (Bᵀ·x·B)] A
//
// with w an r×r filter, x a T×T input tile, y an m×m output tile, and
// T = m + r − 1.
package winograd

import (
	"fmt"
	"math/big"

	"mptwino/internal/tensor"
)

// Transform holds the matrices of a 1-D Winograd algorithm F(m, r); the 2-D
// algorithm F(m×m, r×r) nests it (applied to rows then columns). All
// matrices are produced by the exact rational Cook–Toom construction in
// MakeTransform, so round-off enters only at the final float32 conversion.
type Transform struct {
	M int // outputs per tile per dimension
	R int // filter size per dimension
	T int // tile size per dimension, M+R-1

	G  *tensor.Mat // T×R filter transform:  W = G·w·Gᵀ
	BT *tensor.Mat // T×T data transform:    X = Bᵀ·x·B
	AT *tensor.Mat // M×T output transform:  y = Aᵀ·Y·A

	B  *tensor.Mat // T×T, transpose of BT (cached)
	A  *tensor.Mat // T×M, transpose of AT (cached)
	GT *tensor.Mat // R×T, transpose of G (cached)

	// fused holds the compiled sparse add/sub schedules of the transform
	// matrices (nil for tile sizes past fusedMaxT, or for Transforms built
	// outside MakeTransform; the Into methods then use the generic
	// allocation-free fallback — see fused.go).
	fused *fusedOps
}

// String identifies the transform in the paper's F(m×m, r×r) notation.
func (tr *Transform) String() string {
	return fmt.Sprintf("F(%dx%d,%dx%d)", tr.M, tr.M, tr.R, tr.R)
}

// interpolation points used in Cook–Toom synthesis, in the order that keeps
// transform coefficients small for the sizes the paper needs (0, ±1, ±2,
// ±1/2, ...). The point at infinity is implicit (it is always the last).
var defaultPoints = []*big.Rat{
	big.NewRat(0, 1),
	big.NewRat(1, 1), big.NewRat(-1, 1),
	big.NewRat(2, 1), big.NewRat(-2, 1),
	big.NewRat(1, 2), big.NewRat(-1, 2),
	big.NewRat(3, 1), big.NewRat(-3, 1),
	big.NewRat(1, 3), big.NewRat(-1, 3),
	big.NewRat(4, 1), big.NewRat(-4, 1),
}

// poly is a dense rational polynomial; poly[i] is the coefficient of x^i.
type poly []*big.Rat

func newPoly(deg int) poly {
	p := make(poly, deg+1)
	for i := range p {
		p[i] = new(big.Rat)
	}
	return p
}

// mulLinear returns p(x)·(x − a).
func (p poly) mulLinear(a *big.Rat) poly {
	out := newPoly(len(p)) // degree rises by one
	for i, c := range p {
		// x * c x^i
		out[i+1].Add(out[i+1], c)
		// -a * c x^i
		t := new(big.Rat).Mul(a, c)
		out[i].Sub(out[i], t)
	}
	return out
}

// MakeTransform synthesizes F(m, r) using the Cook–Toom construction with
// T−1 finite interpolation points plus the point at infinity:
//
//	y = Emᵀ [(Er·g) ⊙ (Cᵀ·d)]
//
// where Em/Er are Vandermonde evaluation matrices and C is the polynomial
// interpolation matrix of the underlying linear convolution. This is the
// transpose-principle derivation, so Aᵀ = Emᵀ, G = Er, Bᵀ = Cᵀ. It errors
// if m or r is too small or the point table is exhausted.
func MakeTransform(m, r int) (*Transform, error) {
	if m < 1 || r < 1 {
		return nil, fmt.Errorf("winograd: F(%d,%d) requires m,r >= 1", m, r)
	}
	t := m + r - 1
	nFinite := t - 1
	if nFinite > len(defaultPoints) {
		return nil, fmt.Errorf("winograd: F(%d,%d) needs %d interpolation points, only %d available",
			m, r, nFinite, len(defaultPoints))
	}
	pts := defaultPoints[:nFinite]

	// Evaluation matrices. Em is T×m: finite row i = [1, a_i, …, a_i^{m-1}],
	// infinity row = e_{m-1}. Er is T×r likewise.
	vander := func(cols int) *tensor.Mat {
		out := tensor.NewMat(t, cols)
		for i, a := range pts {
			pw := big.NewRat(1, 1)
			for j := 0; j < cols; j++ {
				out.Set(i, j, ratToF32(pw))
				pw = new(big.Rat).Mul(pw, a)
			}
		}
		out.Set(t-1, cols-1, 1) // infinity row: leading coefficient
		return out
	}
	em := vander(m)
	er := vander(r)

	// Interpolation matrix C (T×T): finite column i holds the coefficients
	// of the Lagrange basis L_i(x); the infinity column holds the
	// coefficients of M(x) = Π (x − a_i).
	c := tensor.NewMat(t, t)
	for i, ai := range pts {
		// numerator Π_{j≠i} (x − a_j) and denominator Π_{j≠i} (a_i − a_j)
		num := newPoly(0)
		num[0].SetInt64(1)
		den := big.NewRat(1, 1)
		for j, aj := range pts {
			if j == i {
				continue
			}
			num = num.mulLinear(aj)
			d := new(big.Rat).Sub(ai, aj)
			den.Mul(den, d)
		}
		inv := new(big.Rat).Inv(den)
		for k, coeff := range num {
			v := new(big.Rat).Mul(coeff, inv)
			c.Set(k, i, ratToF32(v))
		}
	}
	mpoly := newPoly(0)
	mpoly[0].SetInt64(1)
	for _, a := range pts {
		mpoly = mpoly.mulLinear(a)
	}
	for k, coeff := range mpoly {
		c.Set(k, t-1, ratToF32(coeff))
	}

	tr := &Transform{
		M:  m,
		R:  r,
		T:  t,
		G:  er,
		BT: c.T(),
		AT: em.T(),
	}
	tr.B = tr.BT.T()
	tr.A = tr.AT.T()
	tr.GT = tr.G.T()
	if t <= fusedMaxT {
		tr.fused = compileFused(tr)
	}
	return tr, nil
}

func ratToF32(r *big.Rat) float32 {
	f, _ := r.Float64()
	return float32(f)
}

// MustTransform is MakeTransform that panics on error, for the fixed sizes
// the paper evaluates.
func MustTransform(m, r int) *Transform {
	tr, err := MakeTransform(m, r)
	if err != nil {
		panic(err)
	}
	return tr
}

// The four transforms the paper uses (Sections IV, VII-B):
//
//	F(2×2,3×3)  tile 4×4 — MPT configurations with 16 or 4 groups
//	F(4×4,3×3)  tile 6×6 — single-group (data-parallel) configurations
//	F(2×2,5×5)  tile 6×6 — 5×5-weight evaluation (Fig. 16)
//	F(2,3)      tile 4×1 — 3×1 weights (1-D convolution)
var (
	F2x2_3x3 = MustTransform(2, 3)
	F4x4_3x3 = MustTransform(4, 3)
	F2x2_5x5 = MustTransform(2, 5)
	F2_3     = MustTransform(2, 3) // used one-dimensionally

	// F6x6_3x3 (tile 8×8) is beyond the paper's menu: it maximizes compute
	// reduction (36 outputs per 64-element tile) but its transform
	// coefficients grow enough that training is numerically unsafe (see
	// stability_test.go), so the planner only enumerates it behind the
	// explicit AllowWideTiles opt-in.
	F6x6_3x3 = MustTransform(6, 3)
)

// ForKernel returns the transform the paper selects for kernel size k under
// the given group count: F(2×2,3×3) when tiles must be split across groups
// (smaller Winograd-domain weights), F(4×4,3×3) for a single group (more
// compute reduction); 5×5 kernels always use F(2×2,5×5).
func ForKernel(k, groups int) (*Transform, error) {
	return ForKernelTile(k, groups, 0)
}

// ForKernelTile resolves the transform for kernel size k with an explicit
// tile output size m; m = 0 keeps the paper's ForKernel rule (the group
// count picks the tile), which is what every fixed-menu path uses. A
// non-zero m is the planner's tile-size axis: for 3×3 kernels m ∈ {2, 4, 6}
// selects F(m×m,3×3) regardless of the group count, 5×5 kernels support
// only m = 2. The caller is responsible for the Ng ≤ T² feasibility bound
// (comm.Strategy.Transform checks it).
func ForKernelTile(k, groups, m int) (*Transform, error) {
	if m == 0 {
		switch k {
		case 3:
			if groups > 1 {
				return F2x2_3x3, nil
			}
			return F4x4_3x3, nil
		case 5:
			return F2x2_5x5, nil
		default:
			return nil, fmt.Errorf("winograd: no transform configured for %dx%d kernels", k, k)
		}
	}
	switch {
	case k == 3 && m == 2:
		return F2x2_3x3, nil
	case k == 3 && m == 4:
		return F4x4_3x3, nil
	case k == 3 && m == 6:
		return F6x6_3x3, nil
	case k == 5 && m == 2:
		return F2x2_5x5, nil
	default:
		return nil, fmt.Errorf("winograd: no F(%dx%d,%dx%d) transform configured", m, m, k, k)
	}
}
