package winograd

import (
	"testing"

	"mptwino/internal/conv"
	"mptwino/internal/parallel"
	"mptwino/internal/tensor"
)

func buildSteadyLayer(t testing.TB, p conv.Params) (*Layer, *tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	sw := tensor.New(p.Out, p.In, p.K, p.K)
	r := tensor.NewRNG(77)
	r.FillHe(sw, p.In*p.K*p.K)
	l, err := NewLayerWithWeights(F2x2_3x3, p, sw)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, p.In, p.H, p.W)
	r.FillNormal(x, 0, 1)
	dy := tensor.New(2, p.Out, p.OutH(), p.OutW())
	r.FillNormal(dy, 0, 1)
	return l, x, dy
}

// TestLayerIntoBitIdenticalAcrossWorkers runs the steady-state training
// step (FpropInto / BpropInto / UpdateGradWInto) under worker counts
// {1, 2, 8} — each with a freshly built Layer so the Scratch slot count
// follows the setting — and requires bitwise-identical outputs. Blocking
// fixes each element's accumulation order, so results must not depend on
// how the work is sharded.
func TestLayerIntoBitIdenticalAcrossWorkers(t *testing.T) {
	p := conv.Params{In: 3, Out: 4, K: 3, Pad: 1, H: 10, W: 8}

	type snapshot struct {
		y, dx *tensor.Tensor
		dw    *Weights
	}
	run := func(workers int) snapshot {
		prev := parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(prev)
		l, x, dy := buildSteadyLayer(t, p)
		var s snapshot
		s.y = tensor.New(x.N, p.Out, p.OutH(), p.OutW())
		s.dx = tensor.New(x.N, p.In, p.H, p.W)
		s.dw = NewWeights(F2x2_3x3, p.In, p.Out)
		// Two iterations so the second runs on reused scratch/domains.
		for it := 0; it < 2; it++ {
			l.FpropInto(s.y, x)
			l.BpropInto(s.dx, dy)
			l.UpdateGradWInto(s.dw, dy)
		}
		return s
	}

	ref := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !tensorsEqual(ref.y, got.y) {
			t.Errorf("workers=%d: FpropInto differs", workers)
		}
		if !tensorsEqual(ref.dx, got.dx) {
			t.Errorf("workers=%d: BpropInto differs", workers)
		}
		if !weightsEqual(ref.dw, got.dw) {
			t.Errorf("workers=%d: UpdateGradWInto differs", workers)
		}
	}
}

// TestLayerSteadyStateZeroAllocs is the tentpole's acceptance contract:
// once warm, a full training step through the layer performs no heap
// allocation. Worker count is pinned to 1 so the Into entry points take
// the closure-free sequential branch (multi-worker runs allocate goroutine
// bookkeeping inside the parallel engine, which is outside this contract).
func TestLayerSteadyStateZeroAllocs(t *testing.T) {
	prev := parallel.SetDefaultWorkers(1)
	defer parallel.SetDefaultWorkers(prev)

	p := conv.Params{In: 8, Out: 8, K: 3, Pad: 1, H: 12, W: 12}
	l, x, dy := buildSteadyLayer(t, p)
	y := tensor.New(x.N, p.Out, p.OutH(), p.OutW())
	dx := tensor.New(x.N, p.In, p.H, p.W)
	dw := NewWeights(F2x2_3x3, p.In, p.Out)

	// Warm up: sizes the arenas, GEMM panels, and cached domains.
	for i := 0; i < 2; i++ {
		l.FpropInto(y, x)
		l.BpropInto(dx, dy)
		l.UpdateGradWInto(dw, dy)
	}

	if n := testing.AllocsPerRun(10, func() { l.FpropInto(y, x) }); n != 0 {
		t.Errorf("FpropInto: %v allocs/op at steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { l.BpropInto(dx, dy) }); n != 0 {
		t.Errorf("BpropInto: %v allocs/op at steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { l.UpdateGradWInto(dw, dy) }); n != 0 {
		t.Errorf("UpdateGradWInto: %v allocs/op at steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() { l.Step(0.01, dw) }); n != 0 {
		t.Errorf("Step: %v allocs/op at steady state, want 0", n)
	}
}

// TestLayerIntoMatchesOneShot pins the Into forms to the allocating
// wrappers they replaced: a warm reused-scratch step must equal a cold
// standalone computation bit-for-bit.
func TestLayerIntoMatchesOneShot(t *testing.T) {
	p := conv.Params{In: 3, Out: 5, K: 3, Pad: 1, H: 9, W: 7}
	l, x, dy := buildSteadyLayer(t, p)

	// Cold references through the package-level one-shot paths.
	tl := l.Tiling
	xd := tl.TransformInput(x)
	refY := tl.InverseOutput(MulForward(xd, l.W, nil))
	dyd := tl.TransformOutputGrad(dy)
	refDX := tl.InverseInputGrad(MulBackward(dyd, l.W, nil))
	refDW := MulGrad(xd, dyd, nil)

	y := tensor.New(x.N, p.Out, p.OutH(), p.OutW())
	dx := tensor.New(x.N, p.In, p.H, p.W)
	dw := NewWeights(F2x2_3x3, p.In, p.Out)
	for it := 0; it < 3; it++ { // repeat: reused scratch must not drift
		l.FpropInto(y, x)
		l.BpropInto(dx, dy)
		l.UpdateGradWInto(dw, dy)
		if !tensorsEqual(refY, y) {
			t.Fatalf("iteration %d: FpropInto diverges from one-shot path", it)
		}
		if !tensorsEqual(refDX, dx) {
			t.Fatalf("iteration %d: BpropInto diverges from one-shot path", it)
		}
		if !weightsEqual(refDW, dw) {
			t.Fatalf("iteration %d: UpdateGradWInto diverges from one-shot path", it)
		}
	}
}

// TestLayerBatchSizeChange exercises the ensureDomain reallocation path:
// shrinking and growing the batch must keep results correct.
func TestLayerBatchSizeChange(t *testing.T) {
	p := conv.Params{In: 2, Out: 3, K: 3, Pad: 1, H: 6, W: 6}
	l, _, _ := buildSteadyLayer(t, p)
	r := tensor.NewRNG(9)
	for _, batch := range []int{2, 1, 4, 2} {
		x := tensor.New(batch, p.In, p.H, p.W)
		r.FillNormal(x, 0, 1)
		y := tensor.New(batch, p.Out, p.OutH(), p.OutW())
		l.FpropInto(y, x)
		want := l.Tiling.InverseOutput(MulForward(l.Tiling.TransformInput(x), l.W, nil))
		if !tensorsEqual(want, y) {
			t.Fatalf("batch=%d: FpropInto mismatch after domain resize", batch)
		}
	}
}
