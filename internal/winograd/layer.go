package winograd

import (
	"mptwino/internal/conv"
	"mptwino/internal/tensor"
)

// Fprop computes the convolution forward pass through the Winograd domain
// with spatial weights w (Fig. 2(a)): transform, T² element matmuls,
// inverse transform. It is numerically equivalent to conv.Fprop (verified
// in tests) at ~(T/ m·K)² fewer multiplications in the dot-product stage.
func Fprop(tr *Transform, p conv.Params, x, w *tensor.Tensor) *tensor.Tensor {
	tl, err := NewTiling(tr, p)
	if err != nil {
		panic(err)
	}
	xd := tl.TransformInput(x)
	wd := TransformWeights(tr, w)
	yd := MulForward(xd, wd, nil)
	return tl.InverseOutput(yd)
}

// Bprop computes dx through the Winograd domain with spatial weights.
func Bprop(tr *Transform, p conv.Params, dy, w *tensor.Tensor) *tensor.Tensor {
	tl, err := NewTiling(tr, p)
	if err != nil {
		panic(err)
	}
	dyd := tl.TransformOutputGrad(dy)
	wd := TransformWeights(tr, w)
	dxd := MulBackward(dyd, wd, nil)
	return tl.InverseInputGrad(dxd)
}

// UpdateGrad computes the spatial weight gradient dw through the Winograd
// domain: dW = Xᵀ·dY per element, then dw = Gᵀ·dW·G.
func UpdateGrad(tr *Transform, p conv.Params, x, dy *tensor.Tensor) *tensor.Tensor {
	tl, err := NewTiling(tr, p)
	if err != nil {
		panic(err)
	}
	xd := tl.TransformInput(x)
	dyd := tl.TransformOutputGrad(dy)
	dwd := MulGrad(xd, dyd, nil)
	return dwd.ToSpatialGrad()
}

// Layer is the paper's Winograd layer (Fig. 2(b), [29]): the trained
// parameters are the Winograd-domain weights W themselves, updated directly
// in the Winograd domain. This removes the per-iteration weight transform
// and is the form MPT partitions across groups.
type Layer struct {
	Tiling *Tiling
	W      *Weights

	// cached forward-pass Winograd-domain input, needed by UpdateGradW;
	// mirrors the NDP design where X tiles stay resident in local DRAM.
	lastX *Domain

	// Steady-state scratch, reused across iterations so
	// fprop/bprop/updateGrad run without allocation after the first step.
	// The per-worker tile/packing buffers (sc) are built eagerly at
	// construction — the worker count is known then, and building them in
	// the hot path would put an allocation on every noalloc entry point's
	// first-call path (allocflow flags exactly that). The intermediate
	// Domains of the training loop stay lazy: their shapes depend on the
	// batch size of the first call (resized if it changes).
	sc  *Scratch
	xd  *Domain // input transform destination (aliased by lastX)
	yd  *Domain // forward Winograd-domain output
	dyd *Domain // output-gradient transform destination
	dxd *Domain // backward Winograd-domain input gradient
}

func (l *Layer) scratch() *Scratch {
	if l.sc == nil {
		panic("winograd: Layer built without NewLayer/NewLayerWithWeights")
	}
	return l.sc
}

// ensureDomain returns *slot if it already has shape (b, c), otherwise
// replaces it with a fresh Domain of that shape.
func (l *Layer) ensureDomain(slot **Domain, b, c int) *Domain {
	if *slot == nil || (*slot).B != b || (*slot).C != c {
		*slot = NewDomain(l.Tiling, b, c)
	}
	return *slot
}

// NewLayer builds a Winograd layer for geometry p, initializing W from a
// spatial He-initialized filter (transformed once at construction, as the
// paper's training flow does at the start).
func NewLayer(tr *Transform, p conv.Params, rng *tensor.RNG) (*Layer, error) {
	tl, err := NewTiling(tr, p)
	if err != nil {
		return nil, err
	}
	ws := tensor.New(p.Out, p.In, p.K, p.K)
	rng.FillHe(ws, p.In*p.K*p.K)
	return &Layer{Tiling: tl, W: TransformWeights(tr, ws), sc: NewScratch()}, nil
}

// NewLayerWithWeights builds a Winograd layer whose W is the transform of
// the given spatial weights (for equivalence testing against direct conv).
func NewLayerWithWeights(tr *Transform, p conv.Params, w *tensor.Tensor) (*Layer, error) {
	tl, err := NewTiling(tr, p)
	if err != nil {
		return nil, err
	}
	return &Layer{Tiling: tl, W: TransformWeights(tr, w), sc: NewScratch()}, nil
}

// NewLayerFromParts assembles a Layer around an existing Tiling and
// Winograd-domain weights (engine-mirror references, cloned-weight
// cross-checks). Like the other constructors it builds the per-worker
// Scratch eagerly; Layers must not be assembled with a bare composite
// literal, which would leave the noalloc hot paths without scratch.
func NewLayerFromParts(tl *Tiling, w *Weights) *Layer {
	return &Layer{Tiling: tl, W: w, sc: NewScratch()}
}

// Fprop runs the forward pass and caches the Winograd-domain input for the
// later UpdateGradW call of the same iteration.
func (l *Layer) Fprop(x *tensor.Tensor) *tensor.Tensor {
	y := tensor.New(x.N, l.W.Out, l.Tiling.P.OutH(), l.Tiling.P.OutW())
	l.FpropInto(y, x)
	return y
}

// FpropInto is Fprop writing into a caller-owned output tensor; after the
// first call at a given batch size, no allocations occur.
//
//mptlint:noalloc
func (l *Layer) FpropInto(y, x *tensor.Tensor) {
	sc := l.scratch()
	xd := l.ensureDomain(&l.xd, x.N, x.C)
	l.Tiling.TransformInputInto(xd, x, sc)
	l.lastX = xd
	yd := l.ensureDomain(&l.yd, x.N, l.W.Out)
	MulForwardInto(yd, xd, l.W, nil, sc)
	l.Tiling.InverseOutputInto(y, yd, sc)
}

// Bprop returns dx for the given dy using the current W.
func (l *Layer) Bprop(dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(dy.N, l.W.In, l.Tiling.P.H, l.Tiling.P.W)
	l.BpropInto(dx, dy)
	return dx
}

// BpropInto is Bprop writing into a caller-owned gradient tensor
// (overwritten); allocation-free at steady state.
//
//mptlint:noalloc
func (l *Layer) BpropInto(dx, dy *tensor.Tensor) {
	sc := l.scratch()
	dyd := l.ensureDomain(&l.dyd, dy.N, dy.C)
	l.Tiling.TransformOutputGradInto(dyd, dy, sc)
	dxd := l.ensureDomain(&l.dxd, dy.N, l.W.In)
	MulBackwardInto(dxd, dyd, l.W, nil, sc)
	l.Tiling.InverseInputGradInto(dx, dxd, sc)
}

// UpdateGradW returns the Winograd-domain weight gradient dW for dy, using
// the input cached by the last Fprop. It panics if Fprop has not run.
func (l *Layer) UpdateGradW(dy *tensor.Tensor) *Weights {
	dw := NewWeights(l.Tiling.Tr, l.W.In, l.W.Out)
	l.UpdateGradWInto(dw, dy)
	return dw
}

// UpdateGradWInto is UpdateGradW into caller-owned Weights;
// allocation-free at steady state.
//
//mptlint:noalloc
func (l *Layer) UpdateGradWInto(dw *Weights, dy *tensor.Tensor) {
	if l.lastX == nil {
		panic("winograd: UpdateGradW before Fprop")
	}
	sc := l.scratch()
	dyd := l.ensureDomain(&l.dyd, dy.N, dy.C)
	l.Tiling.TransformOutputGradInto(dyd, dy, sc)
	MulGradInto(dw, l.lastX, dyd, nil, sc)
}

// Step applies the SGD update W -= lr·dW directly in the Winograd domain.
func (l *Layer) Step(lr float32, dw *Weights) {
	l.W.AXPY(-lr, dw)
}

// FpropDomain runs the forward pass but stops before the inverse output
// transform, returning the Winograd-domain output Y. The paper's modified
// join (Fig. 14) averages these domains across FractalNet columns so only
// the joined result pays the inverse transform and tile gathering.
func (l *Layer) FpropDomain(x *tensor.Tensor) *Domain {
	sc := l.scratch()
	xd := l.ensureDomain(&l.xd, x.N, x.C)
	l.Tiling.TransformInputInto(xd, x, sc)
	l.lastX = xd
	// The returned Domain is caller-retained (FractalNet columns hold it
	// across the joined step), so it is always freshly allocated.
	yd := NewDomain(l.Tiling, x.N, l.W.Out)
	MulForwardInto(yd, xd, l.W, nil, sc)
	return yd
}

// BpropDomain returns dx for a Winograd-domain output gradient dY (e.g.
// the split gradient of a modified join).
func (l *Layer) BpropDomain(dyd *Domain) *tensor.Tensor {
	sc := l.scratch()
	dxd := l.ensureDomain(&l.dxd, dyd.B, l.W.In)
	MulBackwardInto(dxd, dyd, l.W, nil, sc)
	return l.Tiling.InverseInputGrad(dxd)
}

// UpdateGradWDomain returns dW for a Winograd-domain output gradient,
// using the input cached by the last Fprop/FpropDomain.
func (l *Layer) UpdateGradWDomain(dyd *Domain) *Weights {
	if l.lastX == nil {
		panic("winograd: UpdateGradWDomain before Fprop")
	}
	return MulGrad(l.lastX, dyd, nil)
}
