package winograd

import (
	"mptwino/internal/conv"
	"mptwino/internal/tensor"
)

// Fprop computes the convolution forward pass through the Winograd domain
// with spatial weights w (Fig. 2(a)): transform, T² element matmuls,
// inverse transform. It is numerically equivalent to conv.Fprop (verified
// in tests) at ~(T/ m·K)² fewer multiplications in the dot-product stage.
func Fprop(tr *Transform, p conv.Params, x, w *tensor.Tensor) *tensor.Tensor {
	tl, err := NewTiling(tr, p)
	if err != nil {
		panic(err)
	}
	xd := tl.TransformInput(x)
	wd := TransformWeights(tr, w)
	yd := MulForward(xd, wd, nil)
	return tl.InverseOutput(yd)
}

// Bprop computes dx through the Winograd domain with spatial weights.
func Bprop(tr *Transform, p conv.Params, dy, w *tensor.Tensor) *tensor.Tensor {
	tl, err := NewTiling(tr, p)
	if err != nil {
		panic(err)
	}
	dyd := tl.TransformOutputGrad(dy)
	wd := TransformWeights(tr, w)
	dxd := MulBackward(dyd, wd, nil)
	return tl.InverseInputGrad(dxd)
}

// UpdateGrad computes the spatial weight gradient dw through the Winograd
// domain: dW = Xᵀ·dY per element, then dw = Gᵀ·dW·G.
func UpdateGrad(tr *Transform, p conv.Params, x, dy *tensor.Tensor) *tensor.Tensor {
	tl, err := NewTiling(tr, p)
	if err != nil {
		panic(err)
	}
	xd := tl.TransformInput(x)
	dyd := tl.TransformOutputGrad(dy)
	dwd := MulGrad(xd, dyd, nil)
	return dwd.ToSpatialGrad()
}

// Layer is the paper's Winograd layer (Fig. 2(b), [29]): the trained
// parameters are the Winograd-domain weights W themselves, updated directly
// in the Winograd domain. This removes the per-iteration weight transform
// and is the form MPT partitions across groups.
type Layer struct {
	Tiling *Tiling
	W      *Weights

	// cached forward-pass Winograd-domain input, needed by UpdateGradW;
	// mirrors the NDP design where X tiles stay resident in local DRAM.
	lastX *Domain
}

// NewLayer builds a Winograd layer for geometry p, initializing W from a
// spatial He-initialized filter (transformed once at construction, as the
// paper's training flow does at the start).
func NewLayer(tr *Transform, p conv.Params, rng *tensor.RNG) (*Layer, error) {
	tl, err := NewTiling(tr, p)
	if err != nil {
		return nil, err
	}
	ws := tensor.New(p.Out, p.In, p.K, p.K)
	rng.FillHe(ws, p.In*p.K*p.K)
	return &Layer{Tiling: tl, W: TransformWeights(tr, ws)}, nil
}

// NewLayerWithWeights builds a Winograd layer whose W is the transform of
// the given spatial weights (for equivalence testing against direct conv).
func NewLayerWithWeights(tr *Transform, p conv.Params, w *tensor.Tensor) (*Layer, error) {
	tl, err := NewTiling(tr, p)
	if err != nil {
		return nil, err
	}
	return &Layer{Tiling: tl, W: TransformWeights(tr, w)}, nil
}

// Fprop runs the forward pass and caches the Winograd-domain input for the
// later UpdateGradW call of the same iteration.
func (l *Layer) Fprop(x *tensor.Tensor) *tensor.Tensor {
	xd := l.Tiling.TransformInput(x)
	l.lastX = xd
	yd := MulForward(xd, l.W, nil)
	return l.Tiling.InverseOutput(yd)
}

// Bprop returns dx for the given dy using the current W.
func (l *Layer) Bprop(dy *tensor.Tensor) *tensor.Tensor {
	dyd := l.Tiling.TransformOutputGrad(dy)
	dxd := MulBackward(dyd, l.W, nil)
	return l.Tiling.InverseInputGrad(dxd)
}

// UpdateGradW returns the Winograd-domain weight gradient dW for dy, using
// the input cached by the last Fprop. It panics if Fprop has not run.
func (l *Layer) UpdateGradW(dy *tensor.Tensor) *Weights {
	if l.lastX == nil {
		panic("winograd: UpdateGradW before Fprop")
	}
	dyd := l.Tiling.TransformOutputGrad(dy)
	return MulGrad(l.lastX, dyd, nil)
}

// Step applies the SGD update W -= lr·dW directly in the Winograd domain.
func (l *Layer) Step(lr float32, dw *Weights) {
	l.W.AXPY(-lr, dw)
}

// FpropDomain runs the forward pass but stops before the inverse output
// transform, returning the Winograd-domain output Y. The paper's modified
// join (Fig. 14) averages these domains across FractalNet columns so only
// the joined result pays the inverse transform and tile gathering.
func (l *Layer) FpropDomain(x *tensor.Tensor) *Domain {
	xd := l.Tiling.TransformInput(x)
	l.lastX = xd
	return MulForward(xd, l.W, nil)
}

// BpropDomain returns dx for a Winograd-domain output gradient dY (e.g.
// the split gradient of a modified join).
func (l *Layer) BpropDomain(dyd *Domain) *tensor.Tensor {
	dxd := MulBackward(dyd, l.W, nil)
	return l.Tiling.InverseInputGrad(dxd)
}

// UpdateGradWDomain returns dW for a Winograd-domain output gradient,
// using the input cached by the last Fprop/FpropDomain.
func (l *Layer) UpdateGradWDomain(dyd *Domain) *Weights {
	if l.lastX == nil {
		panic("winograd: UpdateGradWDomain before Fprop")
	}
	return MulGrad(l.lastX, dyd, nil)
}
