package winograd

import (
	"mptwino/internal/conv"
)

// Cost counts the algorithmic work and data volume of one Winograd
// convolution phase, mirroring conv.Cost for the direct algorithm. It backs
// Fig. 1 (Winograd reduces computation but increases data access) and the
// DRAM-traffic side of the NDP timing model.
type Cost struct {
	DotMACs       int64 // element-wise dot-product MACs (the T² matmuls)
	TransformMACs int64 // input/output/weight transform multiply-adds
	TileBytes     int64 // Winograd-domain feature-map (tile) bytes moved
	WeightBytes   int64 // Winograd-domain weight bytes |W|
	SpatialBytes  int64 // spatial-domain feature-map bytes read/written
}

// MACs returns total multiply-accumulates.
func (c Cost) MACs() int64 { return c.DotMACs + c.TransformMACs }

// Bytes returns total data volume.
func (c Cost) Bytes() int64 { return c.TileBytes + c.WeightBytes + c.SpatialBytes }

// tiles returns the tile count per feature map for layer p under tr.
func tilesPer(tr *Transform, p conv.Params) int64 {
	m := tr.M
	th := (p.OutH() + m - 1) / m
	tw := (p.OutW() + m - 1) / m
	return int64(th) * int64(tw)
}

// transform2DMACs is the multiply-add count of one 2-D transform step
// l·x·r with an inner T dimension: two passes of matrix×matrix on small
// tiles. For a rows×T input sandwiched to rows'×cols', it is
// rows'·T·T (first stage) + rows'·cols'·T (second).
func transform2DMACs(rowsOut, colsOut, t int64) int64 {
	return rowsOut*t*t + rowsOut*colsOut*t
}

// FpropCost returns the Winograd fprop cost for layer p, batch b, under
// transform tr, for the Fig. 2(b) Winograd-layer flow (weights already in
// the Winograd domain, so no per-iteration weight transform).
func FpropCost(tr *Transform, p conv.Params, b int) Cost {
	t := int64(tr.T)
	m := int64(tr.M)
	nt := tilesPer(tr, p)
	bi, ii, jj := int64(b), int64(p.In), int64(p.Out)

	dot := t * t * (bi * nt) * ii * jj // T² matmuls of (B·t × I)·(I × J)
	inT := bi * ii * nt * transform2DMACs(t, t, t)
	outT := bi * jj * nt * transform2DMACs(m, m, t)
	return Cost{
		DotMACs:       dot,
		TransformMACs: inT + outT,
		TileBytes:     4 * (bi*ii*nt*t*t + bi*jj*nt*t*t), // X written+read, Y written+read (once each way counted once)
		WeightBytes:   4 * ii * jj * t * t,
		SpatialBytes:  4 * (bi*ii*int64(p.H)*int64(p.W) + bi*jj*int64(p.OutH())*int64(p.OutW())),
	}
}

// BpropCost returns the Winograd bprop cost (symmetric with fprop: dy is
// transformed in, dx is inverse-transformed out).
func BpropCost(tr *Transform, p conv.Params, b int) Cost {
	c := FpropCost(tr, p, b)
	return c
}

// UpdateGradCost returns the Winograd-domain updateGrad cost: dW = Xᵀ·dY
// per element. X and dY are already resident in the Winograd domain from
// fprop/bprop; the dW output has the Winograd weight size.
func UpdateGradCost(tr *Transform, p conv.Params, b int) Cost {
	t := int64(tr.T)
	nt := tilesPer(tr, p)
	bi, ii, jj := int64(b), int64(p.In), int64(p.Out)
	return Cost{
		DotMACs:     t * t * ii * jj * (bi * nt),
		TileBytes:   4 * (bi*ii*nt*t*t + bi*jj*nt*t*t), // X and dY re-read
		WeightBytes: 4 * ii * jj * t * t,               // dW written
	}
}

// Savings compares direct and Winograd costs for one layer/batch and
// returns (computeReduction, accessIncrease) — the two sides of Fig. 1.
// computeReduction > 1 means Winograd does less arithmetic; accessIncrease
// > 1 means Winograd touches more bytes.
func Savings(tr *Transform, p conv.Params, b int) (computeReduction, accessIncrease float64) {
	dc := conv.FpropCost(p, b)
	wc := FpropCost(tr, p, b)
	computeReduction = float64(dc.MACs) / float64(wc.DotMACs)
	accessIncrease = float64(wc.Bytes()) / float64(dc.Total())
	return computeReduction, accessIncrease
}
