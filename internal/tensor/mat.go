package tensor

import "fmt"

// Mat is a dense row-major float32 matrix. It is the working type for the
// Winograd transform matrices (G, B, A and their transposes) and for the
// per-element matrix multiplications of the Winograd domain.
type Mat struct {
	Rows, Cols int
	Data       []float32
}

// NewMat allocates a zero Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid matrix shape %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// MatFromSlice wraps data (row-major) without copying.
func MatFromSlice(rows, cols int, data []float32) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: matrix data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r,c).
func (m *Mat) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set stores v at element (r,c).
func (m *Mat) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CloneInto copies m into dst, which must have the same shape.
func (m *Mat) CloneInto(dst *Mat) {
	if dst.Rows != m.Rows || dst.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: CloneInto shape mismatch %dx%d into %dx%d", m.Rows, m.Cols, dst.Rows, dst.Cols))
	}
	copy(dst.Data, m.Data)
}

// T returns the transpose as a new matrix. Hot paths that would otherwise
// call this per step should prefer the transposed-operand GEMM variants
// (MatMulNTInto / MatMulTNInto) or TInto with reused storage.
func (m *Mat) T() *Mat {
	out := NewMat(m.Cols, m.Rows)
	m.TInto(out)
	return out
}

// TInto writes the transpose of m into dst (shape m.Cols × m.Rows).
func (m *Mat) TInto(dst *Mat) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("tensor: TInto shape mismatch %dx%d into %dx%d", m.Rows, m.Cols, dst.Rows, dst.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, v := range row {
			dst.Data[c*dst.Cols+r] = v
		}
	}
}

// MatMul returns a×b. It panics on inner-dimension mismatch.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul inner mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst = a×b, reusing dst's storage. dst must have shape
// a.Rows × b.Cols. Small operands use the reference (i,k,j) loop; larger
// ones dispatch to the cache-blocked packed kernel in gemm.go, which is
// bit-identical to the reference for all finite inputs (see the contract
// note there). Callers inside parallel loops should prefer
// MatMulIntoScratch with per-worker scratch to stay allocation-free.
//
//mptlint:noalloc
func MatMulInto(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape error dst %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	countGemm(dst.Rows, dst.Cols, a.Cols)
	g := activeGemm.Load()
	if smallGemm(g, dst.Rows, dst.Cols, a.Cols) {
		if g.fused {
			fmaNaiveInto(dst, a, b)
		} else {
			MatMulNaiveInto(dst, a, b)
		}
		return
	}
	s := gemmPool.Get().(*GemmScratch)
	gemmBlocked(dst, a.Data, a.Cols, b.Data, b.Cols, dst.Rows, dst.Cols, a.Cols, false, false, s, g)
	gemmPool.Put(s)
}

// MatMulAccInto computes dst += a×b without zeroing dst first.
//
//mptlint:noalloc
func MatMulAccInto(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul-acc shape error dst %dx%d += %dx%d · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Sandwich computes l × m × r, the shape of every 2-D Winograd transform
// step (e.g. G·w·Gᵀ, Bᵀ·x·B, Aᵀ·Y·A).
func Sandwich(l, m, r *Mat) *Mat {
	return MatMul(MatMul(l, m), r)
}

// MatInverse returns the inverse of a square matrix via Gauss–Jordan
// elimination with partial pivoting, in float64 internally. It errors on
// non-square or (numerically) singular input. Only used for tiny matrices
// (the m×m normal matrices of the Winograd output transform).
func MatInverse(m *Mat) (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("tensor: inverse of non-square %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	// Augmented [A | I] in float64.
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, 2*n)
		for j := 0; j < n; j++ {
			a[i][j] = float64(m.At(i, j))
		}
		a[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if abs64(a[r][col]) > abs64(a[piv][col]) {
				piv = r
			}
		}
		if abs64(a[piv][col]) < 1e-12 {
			return nil, fmt.Errorf("tensor: singular matrix in MatInverse")
		}
		a[col], a[piv] = a[piv], a[col]
		inv := 1 / a[col][col]
		for j := 0; j < 2*n; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < 2*n; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	out := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, float32(a[i][n+j]))
		}
	}
	return out, nil
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
