package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (SplitMix64) used to
// synthesize inputs, weights, and Winograd-domain value distributions
// reproducibly across runs. It intentionally avoids math/rand's global
// state so that parallel tests never interleave streams.
type RNG struct {
	state uint64
	// cached spare Gaussian sample for NormFloat64 (Box–Muller pair)
	haveSpare bool
	spare     float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard-normal sample via Box–Muller.
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	mul := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * mul
	r.haveSpare = true
	return u * mul
}

// FillUniform fills t with uniform samples in [lo,hi).
func (r *RNG) FillUniform(t *Tensor, lo, hi float32) {
	span := float64(hi - lo)
	for i := range t.Data {
		t.Data[i] = lo + float32(r.Float64()*span)
	}
}

// FillNormal fills t with Gaussian samples N(mean, sigma²).
func (r *RNG) FillNormal(t *Tensor, mean, sigma float32) {
	for i := range t.Data {
		t.Data[i] = mean + sigma*float32(r.NormFloat64())
	}
}

// FillHe fills a weight tensor with He-normal initialization
// (sigma = sqrt(2 / fanIn)), the standard choice for ReLU networks.
func (r *RNG) FillHe(t *Tensor, fanIn int) {
	sigma := float32(math.Sqrt(2 / float64(fanIn)))
	r.FillNormal(t, 0, sigma)
}
