package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"
)

func TestNewShapeAndIndexing(t *testing.T) {
	x := New(2, 3, 4, 5)
	if got := x.Len(); got != 120 {
		t.Fatalf("Len = %d, want 120", got)
	}
	if got := x.Bytes(); got != 480 {
		t.Fatalf("Bytes = %d, want 480", got)
	}
	x.Set(1, 2, 3, 4, 7.5)
	if got := x.At(1, 2, 3, 4); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	// Flat index of the last element must be Len-1.
	if got := x.Index(1, 2, 3, 4); got != 119 {
		t.Fatalf("Index = %d, want 119", got)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][4]int{{0, 1, 1, 1}, {1, -1, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape[0], shape[1], shape[2], shape[3])
		}()
	}
}

func TestFromSliceLengthCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(1, 1, 2, 2, []float32{1, 2, 3})
}

func TestIndexIsRowMajorNCHW(t *testing.T) {
	x := New(2, 2, 2, 2)
	// W is fastest, then H, then C, then N.
	if x.Index(0, 0, 0, 1) != 1 || x.Index(0, 0, 1, 0) != 2 ||
		x.Index(0, 1, 0, 0) != 4 || x.Index(1, 0, 0, 0) != 8 {
		t.Fatal("NCHW strides wrong")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := New(1, 1, 2, 2)
	x.Set(0, 0, 0, 0, 1)
	y := x.Clone()
	y.Set(0, 0, 0, 0, 9)
	if x.At(0, 0, 0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAXPYAndScale(t *testing.T) {
	x := FromSlice(1, 1, 1, 3, []float32{1, 2, 3})
	y := FromSlice(1, 1, 1, 3, []float32{10, 20, 30})
	x.AXPY(2, y)
	want := []float32{21, 42, 63}
	for i, w := range want {
		if x.Data[i] != w {
			t.Fatalf("AXPY[%d] = %v, want %v", i, x.Data[i], w)
		}
	}
	x.Scale(0.5)
	if x.Data[2] != 31.5 {
		t.Fatalf("Scale: got %v, want 31.5", x.Data[2])
	}
}

func TestAXPYShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AXPY with mismatched shapes did not panic")
		}
	}()
	New(1, 1, 1, 2).AXPY(1, New(1, 1, 1, 3))
}

func TestMaxAbsDiffAndNorm(t *testing.T) {
	x := FromSlice(1, 1, 1, 3, []float32{3, 0, 4})
	y := FromSlice(1, 1, 1, 3, []float32{3, 1, 2})
	if d := x.MaxAbsDiff(y); d != 2 {
		t.Fatalf("MaxAbsDiff = %v, want 2", d)
	}
	if n := x.L2Norm(); math.Abs(n-5) > 1e-12 {
		t.Fatalf("L2Norm = %v, want 5", n)
	}
}

func TestZero(t *testing.T) {
	x := FromSlice(1, 1, 1, 2, []float32{5, 6})
	x.Zero()
	if x.Data[0] != 0 || x.Data[1] != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestMatMulSmall(t *testing.T) {
	a := MatFromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := MatFromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := NewRNG(1)
	a := NewMat(4, 4)
	for i := range a.Data {
		a.Data[i] = float32(r.NormFloat64())
	}
	id := NewMat(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if c.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
}

func TestMatMulInnerMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul inner mismatch did not panic")
		}
	}()
	MatMul(NewMat(2, 3), NewMat(2, 2))
}

func TestMatMulAccInto(t *testing.T) {
	a := MatFromSlice(1, 2, []float32{1, 1})
	b := MatFromSlice(2, 1, []float32{2, 3})
	dst := MatFromSlice(1, 1, []float32{10})
	MatMulAccInto(dst, a, b)
	if dst.Data[0] != 15 {
		t.Fatalf("MatMulAccInto = %v, want 15", dst.Data[0])
	}
}

func TestTranspose(t *testing.T) {
	a := MatFromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("T values wrong")
	}
}

func TestSandwich(t *testing.T) {
	// l(1x2)·m(2x2)·r(2x1) = scalar 1x1
	l := MatFromSlice(1, 2, []float32{1, 1})
	m := MatFromSlice(2, 2, []float32{1, 2, 3, 4})
	r := MatFromSlice(2, 1, []float32{1, 1})
	s := Sandwich(l, m, r)
	if s.Rows != 1 || s.Cols != 1 || s.Data[0] != 10 {
		t.Fatalf("Sandwich = %v, want 10", s.Data)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b := NewMat(m, k), NewMat(k, n)
		for i := range a.Data {
			a.Data[i] = float32(r.NormFloat64())
		}
		for i := range b.Data {
			b.Data[i] = float32(r.NormFloat64())
		}
		lhs := MatMul(a, b).T()
		rhs := MatMul(b.T(), a.T())
		for i := range lhs.Data {
			if math.Abs(float64(lhs.Data[i]-rhs.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A·(B+C) = A·B + A·C.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a := NewMat(m, k)
		b, c := NewMat(k, n), NewMat(k, n)
		for i := range a.Data {
			a.Data[i] = float32(r.NormFloat64())
		}
		for i := range b.Data {
			b.Data[i] = float32(r.NormFloat64())
			c.Data[i] = float32(r.NormFloat64())
		}
		sum := b.Clone()
		for i := range sum.Data {
			sum.Data[i] += c.Data[i]
		}
		lhs := MatMul(a, sum)
		ab, ac := MatMul(a, b), MatMul(a, c)
		for i := range lhs.Data {
			if math.Abs(float64(lhs.Data[i]-(ab.Data[i]+ac.Data[i]))) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds produced same first value")
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestFillHeVariance(t *testing.T) {
	r := NewRNG(11)
	w := New(64, 32, 3, 3)
	fanIn := 32 * 3 * 3
	r.FillHe(w, fanIn)
	var sumsq float64
	for _, v := range w.Data {
		sumsq += float64(v) * float64(v)
	}
	got := sumsq / float64(w.Len())
	want := 2.0 / float64(fanIn)
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("He variance = %v, want ~%v", got, want)
	}
}

func TestFillUniformRange(t *testing.T) {
	r := NewRNG(5)
	x := New(1, 1, 10, 10)
	r.FillUniform(x, -2, 3)
	for _, v := range x.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform sample %v out of [-2,3)", v)
		}
	}
}

func TestMatInverse(t *testing.T) {
	m := MatFromSlice(2, 2, []float32{4, 7, 2, 6})
	inv, err := MatInverse(m)
	if err != nil {
		t.Fatal(err)
	}
	id := MatMul(m, inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := float32(0)
			if i == j {
				want = 1
			}
			if math.Abs(float64(id.At(i, j)-want)) > 1e-5 {
				t.Fatalf("M·M⁻¹ = %v", id.Data)
			}
		}
	}
}

func TestMatInverseErrors(t *testing.T) {
	if _, err := MatInverse(NewMat(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
	sing := MatFromSlice(2, 2, []float32{1, 2, 2, 4})
	if _, err := MatInverse(sing); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

// Property: inverse of random well-conditioned matrices round-trips.
func TestMatInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(4)
		m := NewMat(n, n)
		for i := range m.Data {
			m.Data[i] = float32(r.NormFloat64())
		}
		// Diagonal dominance keeps it invertible and well-conditioned.
		for i := 0; i < n; i++ {
			m.Set(i, i, m.At(i, i)+float32(n)+1)
		}
		inv, err := MatInverse(m)
		if err != nil {
			return false
		}
		id := MatMul(inv, m)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := float32(0)
				if i == j {
					want = 1
				}
				if math.Abs(float64(id.At(i, j)-want)) > 1e-4 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}
