package tensor

import "testing"

func TestArenaReplayReusesStorage(t *testing.T) {
	var a Arena
	m1 := a.Mat(4, 8)
	f1 := a.Floats(100)
	m2 := a.MatZ(3, 3)
	for i := range m2.Data {
		if m2.Data[i] != 0 {
			t.Fatal("MatZ not zeroed")
		}
	}
	m1.Data[0] = 7
	a.Reset()
	if got := a.Mat(4, 8); &got.Data[0] != &m1.Data[0] {
		t.Fatal("replayed Mat did not reuse storage")
	}
	if got := a.Floats(50); &got[0] != &f1[0] {
		t.Fatal("replayed Floats did not reuse storage")
	}
}

func TestArenaReshapesSlots(t *testing.T) {
	var a Arena
	m := a.Mat(10, 10)
	base := &m.Data[0]
	a.Reset()
	small := a.Mat(5, 5) // smaller: reuse backing array
	if &small.Data[0] != base {
		t.Fatal("smaller request should reuse slot storage")
	}
	a.Reset()
	big := a.Mat(20, 20) // larger: grow
	if big.Rows != 20 || big.Cols != 20 || len(big.Data) != 400 {
		t.Fatalf("grow failed: %dx%d len %d", big.Rows, big.Cols, len(big.Data))
	}
}

func TestArenaSteadyStateAllocs(t *testing.T) {
	var a Arena
	step := func() {
		a.Reset()
		m := a.Mat(16, 16)
		v := a.Floats(64)
		m.Data[0] = v[0]
	}
	step() // warm-up sizes the arena
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("steady-state arena step allocated %.1f times", n)
	}
}
