package tensor

import (
	"fmt"
	"sync"
)

// Cache-blocked, packed SGEMM with a register-tiled micro-kernel. This is
// the per-worker compute kernel under the T² element matrix multiplications
// of the Winograd domain (and the im2col path): the naive (i,k,j) loop in
// MatMulInto is memory-bound on the B operand once the matrices outgrow L1,
// which made our reproduction slow for a reason the paper's NDP analysis
// does not model. Blocking is the standard communication-avoiding structure
// (Chen/Demmel-style bounds for CNN lowering): A is packed into MR-row
// panels and B into NR-column panels so the micro-kernel streams both with
// unit stride.
//
// Determinism contract (DESIGN.md §7/§8): for every output element the
// k-summation runs in strictly ascending k order regardless of the blocking
// parameters — dst is zeroed once up front and the micro-kernel seeds its
// accumulators from the stored partials at the start of each depth (KC)
// block, so the float32 accumulation chain is the single ascending-k chain
// of the reference loop. The SIMD kernel vectorizes across output columns
// (each lane is one output element), never across k, so it computes the
// same chain lane-wise. Results are therefore independent of MC/KC/NC/MR/NR
// and of the worker count of any caller that shards whole GEMMs, and they
// are bit-identical to MatMulNaiveInto for all finite inputs (the
// reference's zero-operand skip only elides +0/-0 addends, which cannot
// change an accumulator that starts at +0).
//
// The micro-kernel and its blocking parameters are not fixed: the driver is
// parameterized by the runtime-dispatched tier (gemm_kernel.go), each tier
// bundling one assembly kernel with the MC/KC/NC panel geometry tuned for
// its register tile. The constants below are the portable/SSE2 4×8 geometry
// and the defaults the portable tier reports; wider tiers carry their own.
const (
	gemmMR = 4   // sse2 micro-kernel rows (A panel strip height)
	gemmNR = 8   // sse2 micro-kernel cols (B panel strip width; 2 SSE vectors)
	gemmMC = 128 // rows of A per packed panel; multiple of gemmMR
	gemmKC = 256 // shared depth per packed panel
	gemmNC = 512 // cols of B per packed panel; multiple of gemmNR

	// gemmMaxMR/NR bound any tier's register tile; microKernel's on-stack
	// accumulator block is sized by them.
	gemmMaxMR = 16
	gemmMaxNR = 16

	// gemmMinFlops is the problem size (2·M·N·K flops / 2) below which the
	// packing overhead outweighs the blocking win and the naive loops are
	// used instead. Tile-transform-sized operands (T ≤ 6) always fall below
	// this; Winograd element GEMMs at realistic layer sizes are far above.
	gemmMinFlops = 1 << 15
)

// GemmScratch holds the packing buffers of the blocked kernel. A zero value
// is ready to use; buffers grow to the panel sizes on first use and are
// reused afterwards, so steady-state calls do not allocate. A GemmScratch
// must not be shared between concurrent GEMMs — parallel callers keep one
// per worker (see winograd.Scratch).
type GemmScratch struct {
	ap []float32 // packed A panel: mc × kc of the requesting tier, MR-row strips
	bp []float32 // packed B panel: kc × nc of the requesting tier, NR-col strips
}

// panels returns the packing buffers sized for tier g's panel geometry —
// sizing from the active tier rather than compile-time constants is what
// lets the 8×8 kernels use wider panels without overrunning (and the 4×8
// tier without over-allocating). Buffers only ever grow, so a scratch that
// has served a wide tier keeps satisfying narrower ones without reallocating.
func (s *GemmScratch) panels(g *gemmKernel) (ap, bp []float32) {
	if cap(s.ap) < g.mc*g.kc {
		s.ap = make([]float32, g.mc*g.kc)
	}
	if cap(s.bp) < g.kc*g.nc {
		s.bp = make([]float32, g.kc*g.nc)
	}
	return s.ap[:g.mc*g.kc], s.bp[:g.kc*g.nc]
}

// gemmPool backs the convenience entry points that do not thread their own
// scratch; hot parallel paths pass an explicit per-worker GemmScratch.
var gemmPool = sync.Pool{New: func() any { return new(GemmScratch) }}

// MatMulNaiveInto computes dst = a×b with the reference (i,k,j) loop. It is
// the semantics baseline the blocked kernel is verified against and the
// small-operand fast path (tiny transform matrices fit in registers/L1
// where packing only adds overhead).
func MatMulNaiveInto(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape error dst %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulNTNaiveInto computes dst = a×bᵀ with reference row-dot loops
// (b is dst.Cols × a.Cols, consumed in place — no transpose materialized).
func MatMulNTNaiveInto(dst, a, b *Mat) {
	checkNT(dst, a, b)
	k := a.Cols
	for i := 0; i < dst.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range drow {
			brow := b.Data[j*k : (j+1)*k]
			var acc float32
			for p, av := range arow {
				acc += av * brow[p]
			}
			drow[j] = acc
		}
	}
}

// MatMulTNNaiveInto computes dst = aᵀ×b with the reference k-outer loop
// (a is a.Rows × dst.Rows = K × M, consumed in place). The k-outer order
// keeps each output element's accumulation in ascending k.
func MatMulTNNaiveInto(dst, a, b *Mat) {
	checkTN(dst, a, b)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	m, n := dst.Rows, dst.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*m : (k+1)*m]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

func checkNT(dst, a, b *Mat) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul-nt shape error dst %dx%d = %dx%d · (%dx%d)ᵀ",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

func checkTN(dst, a, b *Mat) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul-tn shape error dst %dx%d = (%dx%d)ᵀ · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMulIntoScratch computes dst = a×b using the blocked kernel with the
// caller's packing scratch (falling back to the naive loop for small
// operands). Steady-state calls perform no allocations.
//
//mptlint:noalloc
func MatMulIntoScratch(dst, a, b *Mat, s *GemmScratch) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape error dst %dx%d = %dx%d · %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	countGemm(dst.Rows, dst.Cols, a.Cols)
	g := activeGemm.Load()
	if smallGemm(g, dst.Rows, dst.Cols, a.Cols) {
		if g.fused {
			fmaNaiveInto(dst, a, b)
		} else {
			MatMulNaiveInto(dst, a, b)
		}
		return
	}
	gemmBlocked(dst, a.Data, a.Cols, b.Data, b.Cols, dst.Rows, dst.Cols, a.Cols, false, false, s, g)
}

// MatMulNTInto computes dst = a×bᵀ without materializing bᵀ: b is stored
// row-major as dst.Cols × a.Cols. This is the bprop form dX = dY·Wᵀ.
//
//mptlint:noalloc
func MatMulNTInto(dst, a, b *Mat) {
	s := gemmPool.Get().(*GemmScratch)
	MatMulNTIntoScratch(dst, a, b, s)
	gemmPool.Put(s)
}

// MatMulNTIntoScratch is MatMulNTInto with caller-owned packing scratch.
//
//mptlint:noalloc
func MatMulNTIntoScratch(dst, a, b *Mat, s *GemmScratch) {
	checkNT(dst, a, b)
	countGemm(dst.Rows, dst.Cols, a.Cols)
	g := activeGemm.Load()
	if smallGemm(g, dst.Rows, dst.Cols, a.Cols) {
		if g.fused {
			fmaNTNaiveInto(dst, a, b)
		} else {
			MatMulNTNaiveInto(dst, a, b)
		}
		return
	}
	gemmBlocked(dst, a.Data, a.Cols, b.Data, b.Cols, dst.Rows, dst.Cols, a.Cols, false, true, s, g)
}

// MatMulTNInto computes dst = aᵀ×b without materializing aᵀ: a is stored
// row-major as K × dst.Rows. This is the update-grad form dW = Xᵀ·dY.
//
//mptlint:noalloc
func MatMulTNInto(dst, a, b *Mat) {
	s := gemmPool.Get().(*GemmScratch)
	MatMulTNIntoScratch(dst, a, b, s)
	gemmPool.Put(s)
}

// MatMulTNIntoScratch is MatMulTNInto with caller-owned packing scratch.
//
//mptlint:noalloc
func MatMulTNIntoScratch(dst, a, b *Mat, s *GemmScratch) {
	checkTN(dst, a, b)
	countGemm(dst.Rows, dst.Cols, a.Rows)
	g := activeGemm.Load()
	if smallGemm(g, dst.Rows, dst.Cols, a.Rows) {
		if g.fused {
			fmaTNNaiveInto(dst, a, b)
		} else {
			MatMulTNNaiveInto(dst, a, b)
		}
		return
	}
	gemmBlocked(dst, a.Data, a.Cols, b.Data, b.Cols, dst.Rows, dst.Cols, a.Rows, true, false, s, g)
}

// MatMulNT returns a×bᵀ as a new matrix.
func MatMulNT(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Rows)
	MatMulNTInto(out, a, b)
	return out
}

// MatMulTN returns aᵀ×b as a new matrix.
func MatMulTN(a, b *Mat) *Mat {
	out := NewMat(a.Cols, b.Cols)
	MatMulTNInto(out, a, b)
	return out
}

// smallGemm reports whether the problem should stay on the reference loops
// under tier g: the portable tier always does (no assembly kernel means the
// packed path has no throughput edge), and every tier keeps operands below
// gemmMinFlops or thinner than two register tiles on them.
func smallGemm(g *gemmKernel, m, n, k int) bool {
	return g.kern == nil || m < 2*g.mr || n < 2*g.nr || m*n*k < gemmMinFlops
}

// gemmBlocked is the blocked driver: dst(M×N) = opA(a)·opB(b) where aT/bT
// select the transposed reading of the row-major storage. lda/ldb are the
// storage row strides (a.Cols / b.Cols of the stored matrices). Panel and
// register-tile geometry come from the dispatch tier g; full tiles run g's
// assembly kernel and edge tiles the portable microKernel, which follows
// g's accumulation semantics (plain or fused).
func gemmBlocked(dst *Mat, a []float32, lda int, b []float32, ldb int, m, n, k int, aT, bT bool, s *GemmScratch, g *gemmKernel) {
	ap, bp := s.panels(g)
	MR, NR := g.mr, g.nr
	ldd := dst.Cols
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for jc := 0; jc < n; jc += g.nc {
		nc := min(g.nc, n-jc)
		for pc := 0; pc < k; pc += g.kc {
			kc := min(g.kc, k-pc)
			packB(bp, b, ldb, pc, kc, jc, nc, bT, NR)
			for ic := 0; ic < m; ic += g.mc {
				mc := min(g.mc, m-ic)
				packA(ap, a, lda, ic, mc, pc, kc, aT, MR)
				for jr := 0; jr < nc; jr += NR {
					nr := min(NR, nc-jr)
					bs := bp[(jr/NR)*kc*NR:]
					for ir := 0; ir < mc; ir += MR {
						mr := min(MR, mc-ir)
						as := ap[(ir/MR)*kc*MR:]
						if g.kern != nil && mr == MR && nr == NR {
							g.kern(&dst.Data[(ic+ir)*ldd+jc+jr], ldd, kc, &as[0], &bs[0])
						} else {
							microKernel(dst.Data, ldd, ic+ir, jc+jr, mr, nr, kc, as, bs, g)
						}
					}
				}
			}
		}
	}
}

// packA packs the mc×kc block of opA(a) at (ic, pc) into MR-row strips
// (MR = the tier's register-tile height), k-major within each strip:
// ap[strip][k][r]. Strips past the last valid row are zero-padded so the
// micro-kernel needs no row-remainder variant (padded rows are computed but
// never stored).
func packA(ap, a []float32, lda, ic, mc, pc, kc int, aT bool, MR int) {
	for ir := 0; ir < mc; ir += MR {
		strip := ap[(ir/MR)*kc*MR:]
		rows := min(MR, mc-ir)
		if aT {
			// opA(a)[i][k] = a[k][i]: walk k rows of storage.
			for kk := 0; kk < kc; kk++ {
				src := a[(pc+kk)*lda+ic+ir:]
				d := strip[kk*MR:]
				for r := 0; r < rows; r++ {
					d[r] = src[r]
				}
				for r := rows; r < MR; r++ {
					d[r] = 0
				}
			}
		} else {
			for kk := 0; kk < kc; kk++ {
				d := strip[kk*MR:]
				for r := 0; r < rows; r++ {
					d[r] = a[(ic+ir+r)*lda+pc+kk]
				}
				for r := rows; r < MR; r++ {
					d[r] = 0
				}
			}
		}
	}
}

// packB packs the kc×nc block of opB(b) at (pc, jc) into NR-column strips
// (NR = the tier's register-tile width), k-major within each strip:
// bp[strip][k][c], zero-padding partial strips.
func packB(bp, b []float32, ldb, pc, kc, jc, nc int, bT bool, NR int) {
	for jr := 0; jr < nc; jr += NR {
		strip := bp[(jr/NR)*kc*NR:]
		cols := min(NR, nc-jr)
		if bT {
			// opB(b)[k][j] = b[j][k]: each packed column is a storage row.
			for kk := 0; kk < kc; kk++ {
				d := strip[kk*NR:]
				for c := 0; c < cols; c++ {
					d[c] = b[(jc+jr+c)*ldb+pc+kk]
				}
				for c := cols; c < NR; c++ {
					d[c] = 0
				}
			}
		} else {
			for kk := 0; kk < kc; kk++ {
				src := b[(pc+kk)*ldb+jc+jr:]
				d := strip[kk*NR:]
				for c := 0; c < cols; c++ {
					d[c] = src[c]
				}
				for c := cols; c < NR; c++ {
					d[c] = 0
				}
			}
		}
	}
}

// microKernel computes the mr×nr block of dst at (i0, j0) over one packed
// depth block, continuing the stored partial sums: the accumulators are
// seeded from dst (zeroed once by gemmBlocked before the first depth block)
// so each element's k-chain runs in ascending order across blocks — the
// determinism contract. It is the portable fallback for edge tiles and for
// tiers without an assembly kernel, following tier g's register-tile
// geometry and accumulation semantics (FMA32 chains under a fused tier, so
// edge tiles match the fused assembly kernel bit for bit). The panel
// entries past mr/nr are zero padding and are neither read into nor stored
// from the valid region.
func microKernel(dst []float32, ldd, i0, j0, mr, nr, kc int, as, bs []float32, g *gemmKernel) {
	MR, NR := g.mr, g.nr
	var acc [gemmMaxMR * gemmMaxNR]float32
	for r := 0; r < mr; r++ {
		drow := dst[(i0+r)*ldd+j0:]
		arow := acc[r*NR:]
		for c := 0; c < nr; c++ {
			arow[c] = drow[c]
		}
	}
	as = as[: kc*MR : kc*MR]
	bs = bs[: kc*NR : kc*NR]
	for len(as) >= MR && len(bs) >= NR {
		ak := as[:MR]
		bk := bs[:NR]
		as = as[MR:]
		bs = bs[NR:]
		if g.fused {
			for r := 0; r < MR; r++ {
				av := ak[r]
				arow := acc[r*NR : r*NR+NR]
				for c, bv := range bk {
					arow[c] = FMA32(av, bv, arow[c])
				}
			}
		} else {
			for r := 0; r < MR; r++ {
				av := ak[r]
				arow := acc[r*NR : r*NR+NR]
				for c, bv := range bk {
					arow[c] += av * bv
				}
			}
		}
	}
	for r := 0; r < mr; r++ {
		drow := dst[(i0+r)*ldd+j0:]
		arow := acc[r*NR:]
		for c := 0; c < nr; c++ {
			drow[c] = arow[c]
		}
	}
}
