package tensor

import "math"

// FMA32 returns x*y+z computed with a single float32 rounding — the scalar
// reference the explicit `fma` dispatch tier is verified against bit by bit
// (hardware VFMADD231PS has exactly these semantics per lane).
//
// math.FMA on widened operands is NOT that: it rounds the exact sum to
// float64 first, and the follow-up float64→float32 conversion can double-
// round. The fix is Boldo–Melquiond round-to-odd: the float64 product
// p = x·y is exact (24+24 significand bits ≤ 53), the 2Sum of p and z
// recovers the rounding error of s = p+z, and when the true sum was
// inexact, s is nudged onto an odd significand toward the error before
// the final conversion. Rounding to odd at 53 bits then to nearest at 24
// is correct because 53 ≥ 2·24+2.
func FMA32(x, y, z float32) float32 {
	p := float64(x) * float64(y) // exact
	zd := float64(z)
	s := p + zd
	if math.IsNaN(s) || math.IsInf(s, 0) {
		return float32(s)
	}
	// 2Sum (Knuth): e is the exact error of the addition p+zd.
	t := s - p
	e := (p - (s - t)) + (zd - t)
	if e != 0 && math.Float64bits(s)&1 == 0 {
		// The addition was inexact and landed on an even significand:
		// replace round-to-nearest with round-to-odd by stepping one ulp
		// toward the discarded remainder.
		if e > 0 {
			s = math.Nextafter(s, math.Inf(1))
		} else {
			s = math.Nextafter(s, math.Inf(-1))
		}
	}
	return float32(s)
}

// The fmaNaive* loops are the reference semantics of the fused dispatch
// tier: identical traversal orders to the MatMul*NaiveInto loops, with
// every accumulator update a single-rounded FMA32 and no zero-operand
// skipping (an FMA can change the sign of a zero where mul+add would not,
// so eliding zero addends is no longer an identity).

func fmaNaiveInto(dst, a, b *Mat) {
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for k, av := range arow {
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				drow[j] = FMA32(av, bv, drow[j])
			}
		}
	}
}

func fmaNTNaiveInto(dst, a, b *Mat) {
	k := a.Cols
	for i := 0; i < dst.Rows; i++ {
		arow := a.Data[i*k : (i+1)*k]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j := range drow {
			brow := b.Data[j*k : (j+1)*k]
			var acc float32
			for p, av := range arow {
				acc = FMA32(av, brow[p], acc)
			}
			drow[j] = acc
		}
	}
}

func fmaTNNaiveInto(dst, a, b *Mat) {
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	m, n := dst.Rows, dst.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*m : (k+1)*m]
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			drow := dst.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] = FMA32(av, bv, drow[j])
			}
		}
	}
}
