package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int, zeroFrac float64) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		if rng.Float64() < zeroFrac {
			continue // leave a mix of exact zeros to exercise the skip paths
		}
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func requireBitIdentical(t *testing.T, ctx string, want, got *Mat) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", ctx, want.Rows, want.Cols, got.Rows, got.Cols)
	}
	for i := range want.Data {
		if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
			t.Fatalf("%s: element %d: %v (bits %08x) vs %v (bits %08x)",
				ctx, i, want.Data[i], math.Float32bits(want.Data[i]),
				got.Data[i], math.Float32bits(got.Data[i]))
		}
	}
}

// ulpClose reports whether got is within maxUlps float32 units in the last
// place of want (the scaled-tolerance fallback used by the fuzz target).
func ulpClose(want, got float32, maxUlps int32) bool {
	if math.Float32bits(want) == math.Float32bits(got) {
		return true
	}
	wi := int32(math.Float32bits(want))
	gi := int32(math.Float32bits(got))
	if wi < 0 {
		wi = math.MinInt32 - wi
	}
	if gi < 0 {
		gi = math.MinInt32 - gi
	}
	d := wi - gi
	if d < 0 {
		d = -d
	}
	return d <= maxUlps
}

// gemmRefs returns the reference loops matching tier g's accumulation
// semantics: the plain ascending-k mul+add chains for unfused tiers, the
// single-rounded FMA32 chains for fused ones.
func gemmRefs(g *gemmKernel) (nn, nt, tn func(dst, a, b *Mat)) {
	if g.fused {
		return fmaNaiveInto, fmaNTNaiveInto, fmaTNNaiveInto
	}
	return MatMulNaiveInto, MatMulNTNaiveInto, MatMulTNNaiveInto
}

// The blocked kernel must be bit-identical to the naive reference for
// finite inputs: every output element's float32 accumulation chain is the
// same ascending-k chain, and the reference's zero-skip only elides ±0
// addends. Shapes straddle every blocking boundary (MR/NR strip remainders,
// MC/KC/NC panel remainders) and the small-dispatch threshold. The test
// runs against whatever tier is active (MPTWINO_GEMM_KERNEL included), so
// the CI tier matrix re-proves the contract per tier.
func TestBlockedGemmBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{ // {m, n, k}
		{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {5, 9, 3},
		{gemmMR, gemmNR, 10}, {gemmMR + 1, gemmNR + 1, 10},
		{2*gemmMR - 1, 2*gemmNR - 1, 33},
		{63, 65, 67}, {128, 64, 64}, {129, 65, 257},
		{gemmMC, gemmNR * 2, gemmKC}, {gemmMC + 1, 37, gemmKC + 1},
		{40, gemmNC + 3, 19}, {97, 101, 103},
	}
	g := activeGemm.Load()
	refNN, refNT, refTN := gemmRefs(g)
	for _, sh := range shapes {
		m, n, k := sh[0], sh[1], sh[2]
		a := randMat(rng, m, k, 0.15)
		b := randMat(rng, k, n, 0.15)
		want := NewMat(m, n)
		refNN(want, a, b)

		got := NewMat(m, n)
		var s GemmScratch
		gemmBlocked(got, a.Data, a.Cols, b.Data, b.Cols, m, n, k, false, false, &s, g)
		requireBitIdentical(t, "blocked NN", want, got)

		// Public dispatch (small shapes take the naive path, large the
		// blocked one; either way bits must match the reference).
		got.Zero()
		MatMulInto(got, a, b)
		requireBitIdentical(t, "MatMulInto", want, got)

		// NT: same product with b stored transposed (n×k).
		bt := b.T()
		gotNT := NewMat(m, n)
		wantNT := NewMat(m, n)
		refNT(wantNT, a, bt)
		gemmBlocked(gotNT, a.Data, a.Cols, bt.Data, bt.Cols, m, n, k, false, true, &s, g)
		requireBitIdentical(t, "blocked NT", wantNT, gotNT)
		gotNT.Zero()
		MatMulNTInto(gotNT, a, bt)
		requireBitIdentical(t, "MatMulNTInto", wantNT, gotNT)

		// TN: same product with a stored transposed (k×m).
		at := a.T()
		gotTN := NewMat(m, n)
		gemmBlocked(gotTN, at.Data, at.Cols, b.Data, b.Cols, m, n, k, true, false, &s, g)
		wantTN := NewMat(m, n)
		refTN(wantTN, at, b)
		requireBitIdentical(t, "blocked TN", wantTN, gotTN)
		gotTN.Zero()
		MatMulTNInto(gotTN, at, b)
		requireBitIdentical(t, "MatMulTNInto", wantTN, gotTN)
	}
}

// All three variants compute the same mathematical product; across variants
// only the (fixed, per-variant) reduction shape may differ, so results must
// agree within a few ulps.
func TestGemmVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range [][3]int{{33, 29, 41}, {130, 70, 64}, {9, 520, 17}} {
		m, n, k := sh[0], sh[1], sh[2]
		a := randMat(rng, m, k, 0.1)
		b := randMat(rng, k, n, 0.1)
		nn := MatMul(a, b)
		nt := MatMulNT(a, b.T())
		tn := MatMulTN(a.T(), b)
		for i := range nn.Data {
			if !ulpClose(nn.Data[i], nt.Data[i], 128) {
				t.Fatalf("NT diverges at %d: %v vs %v", i, nn.Data[i], nt.Data[i])
			}
			if !ulpClose(nn.Data[i], tn.Data[i], 128) {
				t.Fatalf("TN diverges at %d: %v vs %v", i, nn.Data[i], tn.Data[i])
			}
		}
	}
}

// The blocked result must not depend on where the panel boundaries fall.
// gemmBlocked is deliberately written so the k-chain per element is blocking
// independent; this cross-checks the seeded-accumulator logic by comparing
// a multi-KC-block problem against the naive single-chain reference with
// adversarial content in dst beforehand (Into semantics: dst is overwritten).
func TestBlockedGemmOverwritesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, n, k := 70, 40, 2*gemmKC+17
	a := randMat(rng, m, k, 0)
	b := randMat(rng, k, n, 0)
	refNN, _, _ := gemmRefs(activeGemm.Load())
	want := NewMat(m, n)
	refNN(want, a, b)
	got := NewMat(m, n)
	for i := range got.Data {
		got.Data[i] = float32(math.NaN())
	}
	MatMulInto(got, a, b)
	requireBitIdentical(t, "dirty dst", want, got)
}

func TestMatMulNTTNShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMulNTInto(NewMat(2, 3), NewMat(2, 4), NewMat(3, 5))
}

func TestTIntoCloneInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 5, 8, 0)
	tr := NewMat(8, 5)
	m.TInto(tr)
	requireBitIdentical(t, "TInto", m.T(), tr)
	cp := NewMat(5, 8)
	m.CloneInto(cp)
	requireBitIdentical(t, "CloneInto", m, cp)
}

// FuzzBlockedGemmMatchesNaive drives random shapes (biased toward blocking
// remainders) and random data, requiring bit-identity with the naive
// reference for all three operand layouts.
func FuzzBlockedGemmMatchesNaive(f *testing.F) {
	f.Add(int64(1), uint8(33), uint8(29), uint8(41))
	f.Add(int64(2), uint8(130), uint8(70), uint8(255))
	f.Add(int64(3), uint8(4), uint8(4), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, mb, nb, kb uint8) {
		m, n, k := int(mb)+1, int(nb)+1, int(kb)+1
		rng := rand.New(rand.NewSource(seed))
		a := randMat(rng, m, k, 0.2)
		b := randMat(rng, k, n, 0.2)
		// Every tier this CPU can run must match its own reference chain;
		// the active tier is restored by the caller-level cleanup below.
		defer restoreGemmKernel(t)
		for _, name := range GemmKernels() {
			if err := SelectGemmKernel(name); err != nil {
				t.Fatal(err)
			}
			g := activeGemm.Load()
			refNN, refNT, refTN := gemmRefs(g)
			want := NewMat(m, n)
			refNN(want, a, b)
			var s GemmScratch
			got := NewMat(m, n)
			gemmBlocked(got, a.Data, a.Cols, b.Data, b.Cols, m, n, k, false, false, &s, g)
			requireBitIdentical(t, "fuzz NN "+name, want, got)
			bt := b.T()
			gemmBlocked(got, a.Data, a.Cols, bt.Data, bt.Cols, m, n, k, false, true, &s, g)
			wantNT := NewMat(m, n)
			refNT(wantNT, a, bt)
			requireBitIdentical(t, "fuzz NT "+name, wantNT, got)
			at := a.T()
			gemmBlocked(got, at.Data, at.Cols, b.Data, b.Cols, m, n, k, true, false, &s, g)
			wantTN := NewMat(m, n)
			refTN(wantTN, at, b)
			requireBitIdentical(t, "fuzz TN "+name, wantTN, got)
		}
	})
}
