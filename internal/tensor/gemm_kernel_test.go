package tensor

import (
	"math"
	"math/big"
	"math/rand"
	"os"
	"testing"
)

// restoreGemmKernel re-applies the process's configured tier (environment
// override included) when the test finishes, so tier-switching tests leave
// the suite in the state the CI leg forced.
func restoreGemmKernel(t testing.TB) {
	t.Helper()
	if err := SelectGemmKernel(os.Getenv(EnvGemmKernel)); err != nil {
		t.Fatal(err)
	}
}

func TestGemmKernelSelection(t *testing.T) {
	defer restoreGemmKernel(t)

	names := GemmKernels()
	if len(names) == 0 || names[0] != "portable" {
		t.Fatalf("tier list must start with portable, got %v", names)
	}
	for _, name := range names {
		if err := SelectGemmKernel(name); err != nil {
			t.Fatalf("selecting listed tier %q: %v", name, err)
		}
		if got := GemmKernel(); got != name {
			t.Fatalf("active tier %q after selecting %q", got, name)
		}
	}

	// Unknown tiers must fail without clobbering the active one.
	before := GemmKernel()
	if err := SelectGemmKernel("avx512-unobtainium"); err == nil {
		t.Fatal("expected error for unknown tier")
	}
	if got := GemmKernel(); got != before {
		t.Fatalf("failed selection changed the active tier: %q -> %q", before, got)
	}

	// Auto dispatch never picks a fused (result-changing) tier.
	if err := SelectGemmKernel("auto"); err != nil {
		t.Fatal(err)
	}
	if activeGemm.Load().fused {
		t.Fatalf("auto dispatch selected fused tier %q", GemmKernel())
	}
}

// TestGemmAllTiersTailShapes forces every tier this CPU supports and runs
// the full NN/NT/TN entry-point set over shapes straddling each tier's own
// register-tile boundaries (m,n,k ∈ {1, MR−1, MR, MR+1, 2·MR+1, …}),
// requiring bit-identity with the tier's reference chain. Together with the
// CI tier matrix (which forces tiers via MPTWINO_GEMM_KERNEL at the process
// level) this pins the per-tier determinism contract.
func TestGemmAllTiersTailShapes(t *testing.T) {
	defer restoreGemmKernel(t)
	rng := rand.New(rand.NewSource(99))
	for _, name := range GemmKernels() {
		if err := SelectGemmKernel(name); err != nil {
			t.Fatal(err)
		}
		g := activeGemm.Load()
		refNN, refNT, refTN := gemmRefs(g)
		dims := []int{1, g.mr - 1, g.mr, g.mr + 1, 2*g.mr + 1, g.nr - 1, g.nr, g.nr + 1, 2*g.nr + 1, 3 * g.nr}
		ks := []int{1, 2, g.kc - 1, g.kc, g.kc + 1, 37}
		for _, m := range dims {
			if m < 1 {
				continue
			}
			for _, n := range dims {
				if n < 1 {
					continue
				}
				for _, k := range ks {
					a := randMat(rng, m, k, 0.15)
					b := randMat(rng, k, n, 0.15)
					want := NewMat(m, n)
					refNN(want, a, b)
					got := NewMat(m, n)
					MatMulInto(got, a, b)
					requireBitIdentical(t, name+" NN", want, got)

					bt := b.T()
					wantNT := NewMat(m, n)
					refNT(wantNT, a, bt)
					got.Zero()
					MatMulNTInto(got, a, bt)
					requireBitIdentical(t, name+" NT", wantNT, got)

					at := a.T()
					wantTN := NewMat(m, n)
					refTN(wantTN, at, b)
					got.Zero()
					MatMulTNInto(got, at, b)
					requireBitIdentical(t, name+" TN", wantTN, got)
				}
			}
		}
	}
}

// TestGemmUnfusedTiersBitIdentical locks the headline dispatch guarantee:
// all unfused tiers produce the same bits for the same inputs, so the auto
// choice (which varies by CPU) never changes results.
func TestGemmUnfusedTiersBitIdentical(t *testing.T) {
	defer restoreGemmKernel(t)
	rng := rand.New(rand.NewSource(1234))
	m, n, k := 129, 130, 2*gemmKC+17
	a := randMat(rng, m, k, 0.1)
	b := randMat(rng, k, n, 0.1)
	var ref *Mat
	var refName string
	for _, name := range GemmKernels() {
		if err := SelectGemmKernel(name); err != nil {
			t.Fatal(err)
		}
		if activeGemm.Load().fused {
			continue
		}
		got := NewMat(m, n)
		MatMulInto(got, a, b)
		if ref == nil {
			ref, refName = got, name
			continue
		}
		requireBitIdentical(t, refName+" vs "+name, ref, got)
	}
}

// TestFMA32MatchesExact proves the round-to-odd emulation: FMA32 must equal
// the exact x·y+z rounded once to float32, computed here in high-precision
// big.Float arithmetic (the products and sums below are exact at 200 bits;
// Float32() then performs the single round-to-nearest-even).
func TestFMA32MatchesExact(t *testing.T) {
	check := func(x, y, z float32) {
		t.Helper()
		bx := new(big.Float).SetPrec(200).SetFloat64(float64(x))
		by := new(big.Float).SetPrec(200).SetFloat64(float64(y))
		bz := new(big.Float).SetPrec(200).SetFloat64(float64(z))
		exact := new(big.Float).SetPrec(200).Mul(bx, by)
		exact.Add(exact, bz)
		want, _ := exact.Float32()
		got := FMA32(x, y, z)
		if math.Float32bits(want) != math.Float32bits(got) {
			t.Fatalf("FMA32(%v, %v, %v) = %v (bits %08x), want %v (bits %08x)",
				x, y, z, got, math.Float32bits(got), want, math.Float32bits(want))
		}
	}

	// Adversarial double-rounding cases: products that land near the
	// midpoint between adjacent float32 values once z is added.
	adversarial := [][3]float32{
		{1 + 0x1p-23, 1 + 0x1p-23, -1},
		{1 + 0x1p-23, 1 - 0x1p-23, -1},
		{0x1p-120, 0x1p-120, 0x1p-126},
		{0x1.fffffep+0, 0x1.fffffep+0, -0x1.fffffcp+1},
		{3, 0x1p-23, 1},
		{-3, 0x1p-23, 1},
		{0x1.000002p0, 0x1.000002p0, 0x1p-45},
		{0x1.000002p0, 0x1.000002p0, -0x1p-45},
	}
	for _, c := range adversarial {
		check(c[0], c[1], c[2])
	}

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200000; i++ {
		x := float32(rng.NormFloat64())
		y := float32(rng.NormFloat64())
		z := float32(rng.NormFloat64())
		// Mix in magnitude spreads that exercise the sticky-bit region.
		switch i % 4 {
		case 1:
			z *= 0x1p-40
		case 2:
			z *= 0x1p+30
		case 3:
			x *= 0x1p-60
		}
		check(x, y, z)
	}

	// Specials pass through the widened arithmetic untouched.
	if got := FMA32(float32(math.Inf(1)), 1, 1); !math.IsInf(float64(got), 1) {
		t.Fatalf("FMA32(+Inf,1,1) = %v", got)
	}
	if got := FMA32(1, 1, float32(math.NaN())); !math.IsNaN(float64(got)) {
		t.Fatalf("FMA32(1,1,NaN) = %v", got)
	}
}

// TestGemmScratchPanelsPerTier pins the satellite fix: packing buffers are
// sized from the requesting tier's geometry, not compile-time constants, so
// wide tiers never overrun and narrow tiers reuse wide allocations.
func TestGemmScratchPanelsPerTier(t *testing.T) {
	defer restoreGemmKernel(t)
	var s GemmScratch
	maxAP, maxBP := 0, 0
	for _, name := range GemmKernels() {
		if err := SelectGemmKernel(name); err != nil {
			t.Fatal(err)
		}
		g := activeGemm.Load()
		ap, bp := s.panels(g)
		if len(ap) != g.mc*g.kc || len(bp) != g.kc*g.nc {
			t.Fatalf("%s: panels %d/%d, want %d/%d", name, len(ap), len(bp), g.mc*g.kc, g.kc*g.nc)
		}
		if g.mc*g.kc > maxAP {
			maxAP = g.mc * g.kc
		}
		if g.kc*g.nc > maxBP {
			maxBP = g.kc * g.nc
		}
	}
	// Buffers grow monotonically: after serving every tier the capacity is
	// the maximum requirement, not the last tier's.
	if cap(s.ap) < maxAP || cap(s.bp) < maxBP {
		t.Fatalf("scratch shrank below the widest tier: cap %d/%d, want ≥ %d/%d",
			cap(s.ap), cap(s.bp), maxAP, maxBP)
	}
}
