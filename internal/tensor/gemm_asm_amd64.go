//go:build amd64 && !purego

package tensor

// haveKernel4x8 selects the SSE2 assembly micro-kernel for full 4×8 tiles.
// SSE2 is part of the amd64 baseline, so no runtime feature detection is
// needed. Build with -tags purego to force the portable Go kernel
// everywhere (the bit-identity tests compare the two).
const haveKernel4x8 = true

// kernel4x8 computes the full 4×8 tile at dst (row stride ldd float32
// elements) over one packed depth block: it seeds its accumulators from
// dst, then adds as[k·4+r]·bs[k·8+c] for k ascending, and stores the tile
// back. Each SSE lane holds one output element, so the per-element float32
// rounding chain is exactly the scalar ascending-k chain (see the
// determinism contract at the top of gemm.go).
//
//go:noescape
func kernel4x8(dst *float32, ldd, kc int, as, bs *float32)
