//go:build amd64 && !purego

package tensor

import "strings"

// kernel4x8 computes the full 4×8 tile at dst (row stride ldd float32
// elements) over one packed depth block: it seeds its accumulators from
// dst, then adds as[k·4+r]·bs[k·8+c] for k ascending, and stores the tile
// back. Each SSE lane holds one output element, so the per-element float32
// rounding chain is exactly the scalar ascending-k chain (see the
// determinism contract at the top of gemm.go). SSE2 is part of the amd64
// baseline, so this tier needs no feature probe.
//
//go:noescape
func kernel4x8(dst *float32, ldd, kc int, as, bs *float32)

// kernel8x8avx2 is the 8×8 AVX2 tile kernel (vmulps+vaddps lane chains,
// bit-identical to kernel4x8/naive); kernel8x8fma is its fused twin
// (vfmadd231ps, FMA32 reference semantics). See gemm_amd64.s.
//
//go:noescape
func kernel8x8avx2(dst *float32, ldd, kc int, as, bs *float32)

//go:noescape
func kernel8x8fma(dst *float32, ldd, kc int, as, bs *float32)

func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbvRaw() (eax, edx uint32)

// cpuHasAVX2 and cpuHasFMA report *usable* features: the CPUID capability
// bits AND the OSXSAVE/XGETBV confirmation that the OS preserves YMM state
// (leaf 1 ECX bits 27/28/12, XCR0&6==6, leaf 7.0 EBX bit 5).
var cpuHasAVX2, cpuHasFMA = detectCPU()

func detectCPU() (avx2, fma bool) {
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return false, false
	}
	_, _, ecx1, _ := cpuidRaw(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
		bitAVX     = 1 << 28
	)
	if ecx1&bitOSXSAVE == 0 || ecx1&bitAVX == 0 {
		return false, false
	}
	if xeax, _ := xgetbvRaw(); xeax&6 != 6 { // XMM (bit 1) + YMM (bit 2)
		return false, false
	}
	_, ebx7, _, _ := cpuidRaw(7, 0)
	avx2 = ebx7&(1<<5) != 0
	fma = avx2 && ecx1&bitFMA != 0 // the fma kernel also uses AVX2 loads
	return avx2, fma
}

// gemmKernels lists the dispatch tiers this CPU can run, portable first and
// preferred-auto-choice last among the unfused entries. The sse2 tier keeps
// the historical 4×8 geometry (tuned constants in gemm.go); the 8×8 YMM
// tiers widen MC/NC so the packed A panel still fits L2 (192·256·4 B =
// 192 KB) while each B strip stays one 8 KB L1 page (256·8·4 B).
var gemmKernels = buildGemmKernels()

func buildGemmKernels() []*gemmKernel {
	ks := []*gemmKernel{
		{name: "portable", mr: gemmMR, nr: gemmNR, mc: gemmMC, kc: gemmKC, nc: gemmNC},
		{name: "sse2", mr: gemmMR, nr: gemmNR, mc: gemmMC, kc: gemmKC, nc: gemmNC, kern: kernel4x8},
	}
	if cpuHasAVX2 {
		ks = append(ks, &gemmKernel{name: "avx2", mr: 8, nr: 8, mc: 192, kc: 256, nc: 1024, kern: kernel8x8avx2})
	}
	if cpuHasFMA {
		ks = append(ks, &gemmKernel{name: "fma", mr: 8, nr: 8, mc: 192, kc: 256, nc: 1024, kern: kernel8x8fma, fused: true})
	}
	return ks
}

// CPUFeatures returns the SIMD features usable by the GEMM dispatch (CPUID
// capability gated on OS state saving), independent of the selected tier —
// benchdiff records it next to the tier name in baseline metadata.
func CPUFeatures() string {
	fs := []string{"sse2"}
	if cpuHasAVX2 {
		fs = append(fs, "avx2")
	}
	if cpuHasFMA {
		fs = append(fs, "fma")
	}
	return strings.Join(fs, "+")
}
