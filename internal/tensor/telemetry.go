package tensor

import (
	"sync/atomic"

	"mptwino/internal/telemetry"
)

// Telemetry hook for the GEMM kernels. Like internal/parallel, tensor sits
// below every instrumented package, so the handle lives in a package-level
// atomic pointer: Attach stores it race-safely and the matmul entry points
// bump it (nil handle → no-op, the zero-cost disabled path). A multiply of
// an m×k by a k×n operand counts 2·m·n·k floating-point operations, the
// usual fused multiply-add convention — the count is a pure function of
// operand shapes, so it is bit-identical at any worker count.
var ctrGemmFlops atomic.Pointer[telemetry.Counter]

// Attach points the GEMM instrumentation at reg's "tensor.gemm_flops"
// counter. Attach(nil) detaches.
func Attach(reg *telemetry.Registry) {
	ctrGemmFlops.Store(reg.Counter("tensor.gemm_flops"))
}

// countGemm records one m×n×k matrix multiply (no-op when detached).
func countGemm(m, n, k int) {
	ctrGemmFlops.Load().Add(2 * int64(m) * int64(n) * int64(k))
}
