// Package tensor provides the minimal dense numeric substrate used by the
// convolution, Winograd, and neural-network packages: a float32 4-D tensor
// in NCHW layout, a 2-D matrix view, matrix multiplication, im2col, and a
// deterministic random source.
//
// Everything is float32 because the paper's compute units (systolic array,
// vector processor) operate on FP32 (with an FP16-multiply variant modeled
// separately in the timing layer, not here).
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense 4-D float32 tensor in NCHW order (batch, channel,
// height, width). Lower-rank data uses size-1 trailing dimensions.
// The zero value is an empty tensor; use New to allocate.
type Tensor struct {
	N, C, H, W int
	Data       []float32
}

// New allocates a zero-filled tensor of the given shape.
// It panics if any dimension is non-positive, since a tensor with a zero
// or negative dimension is always a caller bug in this codebase.
func New(n, c, h, w int) *Tensor {
	if n <= 0 || c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%dx%d", n, c, h, w))
	}
	return &Tensor{N: n, C: c, H: h, W: w, Data: make([]float32, n*c*h*w)}
}

// FromSlice wraps data in a tensor of the given shape without copying.
// len(data) must equal n*c*h*w.
func FromSlice(n, c, h, w int, data []float32) *Tensor {
	if len(data) != n*c*h*w {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %dx%dx%dx%d",
			len(data), n, c, h, w))
	}
	return &Tensor{N: n, C: c, H: h, W: w, Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return t.N * t.C * t.H * t.W }

// Bytes returns the storage size in bytes (4 bytes per element).
func (t *Tensor) Bytes() int { return 4 * t.Len() }

// Index returns the flat offset of element (n,c,h,w).
func (t *Tensor) Index(n, c, h, w int) int {
	return ((n*t.C+c)*t.H+h)*t.W + w
}

// At returns element (n,c,h,w).
func (t *Tensor) At(n, c, h, w int) float32 { return t.Data[t.Index(n, c, h, w)] }

// Set stores v at element (n,c,h,w).
func (t *Tensor) Set(n, c, h, w int, v float32) { t.Data[t.Index(n, c, h, w)] = v }

// Add accumulates v into element (n,c,h,w).
func (t *Tensor) Add(n, c, h, w int, v float32) { t.Data[t.Index(n, c, h, w)] += v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.N, t.C, t.H, t.W)
	copy(out.Data, t.Data)
	return out
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether t and o have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool {
	return t.N == o.N && t.C == o.C && t.H == o.H && t.W == o.W
}

// ShapeString returns "NxCxHxW" for error messages.
func (t *Tensor) ShapeString() string {
	return fmt.Sprintf("%dx%dx%dx%d", t.N, t.C, t.H, t.W)
}

// AXPY computes t += alpha*o elementwise. Shapes must match.
func (t *Tensor) AXPY(alpha float32, o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AXPY shape mismatch %s vs %s", t.ShapeString(), o.ShapeString()))
	}
	for i, v := range o.Data {
		t.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha in place.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// MaxAbsDiff returns the largest absolute elementwise difference between t
// and o. Shapes must match.
func (t *Tensor) MaxAbsDiff(o *Tensor) float64 {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %s vs %s", t.ShapeString(), o.ShapeString()))
	}
	var m float64
	for i := range t.Data {
		d := math.Abs(float64(t.Data[i] - o.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of all elements.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
