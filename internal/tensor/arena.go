package tensor

import "fmt"

// Arena is a replay-style scratch allocator for the per-step temporaries of
// the training hot paths. A step acquires matrices in a fixed order with
// Mat/Floats, and Reset rewinds the arena so the next step reuses the same
// storage: after the first step the sequence repeats and the arena performs
// zero allocations. Shapes are matched per slot — if a request's shape
// differs from the slot's previous occupant, the slot's backing storage is
// reused when it is large enough and reallocated (grow-only) otherwise, so
// an arena also converges quickly when layers of different sizes share it.
//
// Returned matrices have unspecified contents (call Zero if the consumer
// accumulates); they remain valid until the Reset after next. An Arena is
// not safe for concurrent use — parallel code keeps one per worker.
type Arena struct {
	mats  []*Mat
	bufs  [][]float32
	nextM int
	nextB int
}

// Reset rewinds the arena; storage handed out before the call will be
// recycled by subsequent requests.
func (a *Arena) Reset() {
	a.nextM = 0
	a.nextB = 0
}

// Mat returns a rows×cols scratch matrix with unspecified contents.
func (a *Arena) Mat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid arena matrix shape %dx%d", rows, cols))
	}
	n := rows * cols
	if a.nextM == len(a.mats) {
		a.mats = append(a.mats, NewMat(rows, cols))
	}
	m := a.mats[a.nextM]
	a.nextM++
	if cap(m.Data) < n {
		m.Data = make([]float32, n)
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// MatZ returns a zeroed rows×cols scratch matrix.
func (a *Arena) MatZ(rows, cols int) *Mat {
	m := a.Mat(rows, cols)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// Floats returns a length-n scratch slice with unspecified contents.
func (a *Arena) Floats(n int) []float32 {
	if a.nextB == len(a.bufs) {
		a.bufs = append(a.bufs, make([]float32, n))
	}
	b := a.bufs[a.nextB]
	if cap(b) < n {
		b = make([]float32, n)
		a.bufs[a.nextB] = b
	}
	a.nextB++
	return b[:n]
}
