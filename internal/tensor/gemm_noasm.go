//go:build !amd64 || purego

package tensor

// haveKernel4x8 is false without the assembly micro-kernel; gemmBlocked
// uses the portable microKernel for every tile.
const haveKernel4x8 = false

// kernel4x8 is never called when haveKernel4x8 is false; this stub only
// satisfies the compiler.
func kernel4x8(dst *float32, ldd, kc int, as, bs *float32) {
	panic("tensor: kernel4x8 called without assembly support")
}
