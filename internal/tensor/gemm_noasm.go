//go:build !amd64 || purego

package tensor

// Without the assembly micro-kernels (non-amd64, or -tags purego) the only
// dispatch tier is portable: gemmKernel.kern is nil, so every GEMM stays on
// the reference loops regardless of size — the behavior the bit-identity
// tests pin the assembly tiers against.
var gemmKernels = []*gemmKernel{
	{name: "portable", mr: gemmMR, nr: gemmNR, mc: gemmMC, kc: gemmKC, nc: gemmNC},
}

// CPUFeatures reports no SIMD dispatch capability on this build: either the
// architecture has no assembly tiers or -tags purego disabled them.
func CPUFeatures() string { return "none" }
