package tensor

import (
	"fmt"
	"os"
	"strings"
	"sync/atomic"
)

// Runtime GEMM dispatch. The blocked driver in gemm.go is parameterized by
// a gemmKernel — one register-tiled micro-kernel plus the cache-panel
// geometry tuned for it — and the process selects the fastest tier the CPU
// supports at init (raw CPUID on amd64, no third-party modules). The
// determinism contract stays per-element: every unfused tier computes the
// same ascending-k float32 chain as MatMulNaiveInto, lane-parallel across
// output columns only, so switching tiers (or machines) never changes a
// result bit. The one exception is the explicit `fma` tier: fused
// multiply-adds round once per update, so it is bit-identical to the
// FMA32 scalar reference instead, and the auto-dispatch never selects it —
// it must be forced via MPTWINO_GEMM_KERNEL=fma or SelectGemmKernel.
//
// Tier geometry (per micro-kernel, amd64):
//
//	sse2  4×8  MC=128 KC=256 NC=512   A panel 128 KB (L2), B strip 8 KB (L1)
//	avx2  8×8  MC=192 KC=256 NC=1024  A panel 192 KB (L2), B strip 8 KB (L1)
//	fma   8×8  same panels as avx2, VFMADD231PS inner loop
//
// The portable tier has no assembly micro-kernel and keeps every product on
// the reference loops — the exact behavior of a -tags purego or non-amd64
// build.

// EnvGemmKernel is the environment variable that forces a dispatch tier
// (portable|sse2|avx2|fma); empty or "auto" selects the best unfused tier
// the CPU supports. An unsupported forced tier panics at init with the
// available list — CI legs probe availability first (cmd/gemmprobe).
const EnvGemmKernel = "MPTWINO_GEMM_KERNEL"

// gemmKernel is one dispatch tier: a micro-kernel and its blocking.
type gemmKernel struct {
	name   string
	mr, nr int // micro-kernel tile (A strip height × B strip width)
	mc, kc int // packed A panel: mc×kc, mc a multiple of mr
	nc     int // packed B panel: kc×nc, nc a multiple of nr

	// kern computes one full mr×nr tile over a depth block, seeding its
	// accumulators from dst (see kernel4x8). nil marks the portable tier:
	// no blocking edge, every product stays on the naive reference loops.
	kern func(dst *float32, ldd, kc int, as, bs *float32)

	// fused marks tiers whose accumulation chain is fused multiply-add
	// (single rounding per update, FMA32 reference semantics). Never
	// auto-selected.
	fused bool
}

// activeGemm is the tier every MatMul* entry point reads (atomically, so
// tests may switch tiers without racing in-flight GEMMs; a GEMM reads it
// once at entry and stays on that tier throughout).
var activeGemm atomic.Pointer[gemmKernel]

func init() {
	// One-time dispatch init: CPUID probe (gemmKernels, per-platform) plus
	// the environment override. Everything downstream is allocation-free.
	if err := SelectGemmKernel(os.Getenv(EnvGemmKernel)); err != nil {
		panic(err)
	}
}

// SelectGemmKernel forces the GEMM dispatch tier by name ("" or "auto"
// restores the CPU-probed default). It errors — without changing the
// active tier — when the name is unknown or the CPU lacks the tier.
func SelectGemmKernel(name string) error {
	if name == "" || name == "auto" {
		activeGemm.Store(autoGemmKernel())
		return nil
	}
	for _, g := range gemmKernels {
		if g.name == name {
			activeGemm.Store(g)
			return nil
		}
	}
	return fmt.Errorf("tensor: %s=%q is not available on this CPU (available: %s)",
		EnvGemmKernel, name, strings.Join(GemmKernels(), "|"))
}

// autoGemmKernel returns the fastest unfused tier the CPU supports; the
// tier list is ordered portable-first, fastest-last, with fused tiers
// (result-changing, explicit-only) never eligible.
func autoGemmKernel() *gemmKernel {
	best := gemmKernels[0]
	for _, g := range gemmKernels[1:] {
		if !g.fused {
			best = g
		}
	}
	return best
}

// GemmKernel returns the active dispatch tier's name — the value benchdiff
// records in baseline metadata.
func GemmKernel() string { return activeGemm.Load().name }

// GemmKernels lists the tiers this CPU can run, in dispatch-preference
// order (portable first, fused tiers last).
func GemmKernels() []string {
	out := make([]string, len(gemmKernels))
	for i, g := range gemmKernels {
		out[i] = g.name
	}
	return out
}
