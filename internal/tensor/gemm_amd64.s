//go:build amd64 && !purego

#include "textflag.h"

// func kernel4x8(dst *float32, ldd, kc int, as, bs *float32)
//
// 4×8 SGEMM micro-kernel over one packed depth block. Accumulators are
// seeded from dst and stored back, so successive depth blocks extend each
// element's ascending-k accumulation chain (the determinism contract).
// Vector lanes run across output columns only — lane c of X0/X1 is output
// element (row 0, col c) — so every element sees the same scalar IEEE
// mul/add sequence as the reference loop; MULPS/ADDPS round each lane
// independently and SSE2 has no fused multiply-add.
//
// Register plan (16 XMM):
//   X0..X7   accumulators: rows 0..3 × {cols 0-3, cols 4-7}
//   X8, X9   current B row (8 columns)
//   X10, X11 broadcast A element / product temporaries
TEXT ·kernel4x8(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), SI
	MOVQ kc+16(FP), DX
	MOVQ as+24(FP), R8
	MOVQ bs+32(FP), R9

	SHLQ $2, SI              // row stride in bytes
	LEAQ (DI)(SI*2), R10     // &dst[2·ldd]

	// Seed accumulators from the stored partials.
	MOVUPS (DI), X0
	MOVUPS 16(DI), X1
	MOVUPS (DI)(SI*1), X2
	MOVUPS 16(DI)(SI*1), X3
	MOVUPS (R10), X4
	MOVUPS 16(R10), X5
	MOVUPS (R10)(SI*1), X6
	MOVUPS 16(R10)(SI*1), X7

	TESTQ DX, DX
	JZ    store

loop:
	MOVUPS (R9), X8          // b[k][0:4]
	MOVUPS 16(R9), X9        // b[k][4:8]

	MOVSS  (R8), X10         // a[k][0]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVSS  4(R8), X10        // a[k][1]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVSS  8(R8), X10        // a[k][2]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVSS  12(R8), X10       // a[k][3]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, R8             // next packed A row (4 floats)
	ADDQ $32, R9             // next packed B row (8 floats)
	DECQ DX
	JNZ  loop

store:
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, (DI)(SI*1)
	MOVUPS X3, 16(DI)(SI*1)
	MOVUPS X4, (R10)
	MOVUPS X5, 16(R10)
	MOVUPS X6, (R10)(SI*1)
	MOVUPS X7, 16(R10)(SI*1)
	RET

// func kernel8x8avx2(dst *float32, ldd, kc int, as, bs *float32)
//
// 8×8 SGEMM micro-kernel over one packed depth block (AVX2 dispatch tier).
// Same contract as kernel4x8: accumulators seed from dst and store back, k
// ascends, and each YMM lane is one output element — VBROADCASTSS/VMULPS/
// VADDPS round every lane independently exactly like the scalar reference
// chain, so the tier is bit-identical to the SSE2/naive path. No fused
// multiply-add is used here by design (that is the separate `fma` tier).
//
// Register plan (16 YMM):
//   Y0..Y7  accumulators: one dst row each (8 columns)
//   Y8      current B row (8 columns)
//   Y9      broadcast A element
//   Y10     product temporary
TEXT ·kernel8x8avx2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), SI
	MOVQ kc+16(FP), DX
	MOVQ as+24(FP), R8
	MOVQ bs+32(FP), R9

	SHLQ $2, SI              // row stride in bytes
	LEAQ (DI)(SI*2), R10     // &dst[2·ldd]
	LEAQ (R10)(SI*2), R11    // &dst[4·ldd]
	LEAQ (R11)(SI*2), R12    // &dst[6·ldd]

	// Seed accumulators from the stored partials.
	VMOVUPS (DI), Y0
	VMOVUPS (DI)(SI*1), Y1
	VMOVUPS (R10), Y2
	VMOVUPS (R10)(SI*1), Y3
	VMOVUPS (R11), Y4
	VMOVUPS (R11)(SI*1), Y5
	VMOVUPS (R12), Y6
	VMOVUPS (R12)(SI*1), Y7

	TESTQ DX, DX
	JZ    avx2store

avx2loop:
	VMOVUPS (R9), Y8         // b[k][0:8]

	VBROADCASTSS (R8), Y9    // a[k][0]
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y0, Y0
	VBROADCASTSS 4(R8), Y9   // a[k][1]
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y1, Y1
	VBROADCASTSS 8(R8), Y9   // a[k][2]
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y2, Y2
	VBROADCASTSS 12(R8), Y9  // a[k][3]
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y3, Y3
	VBROADCASTSS 16(R8), Y9  // a[k][4]
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y4, Y4
	VBROADCASTSS 20(R8), Y9  // a[k][5]
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y5, Y5
	VBROADCASTSS 24(R8), Y9  // a[k][6]
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y6, Y6
	VBROADCASTSS 28(R8), Y9  // a[k][7]
	VMULPS       Y8, Y9, Y10
	VADDPS       Y10, Y7, Y7

	ADDQ $32, R8             // next packed A row (8 floats)
	ADDQ $32, R9             // next packed B row (8 floats)
	DECQ DX
	JNZ  avx2loop

avx2store:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (DI)(SI*1)
	VMOVUPS Y2, (R10)
	VMOVUPS Y3, (R10)(SI*1)
	VMOVUPS Y4, (R11)
	VMOVUPS Y5, (R11)(SI*1)
	VMOVUPS Y6, (R12)
	VMOVUPS Y7, (R12)(SI*1)
	VZEROUPPER
	RET

// func kernel8x8fma(dst *float32, ldd, kc int, as, bs *float32)
//
// 8×8 micro-kernel of the explicit `fma` tier: identical structure to
// kernel8x8avx2 but each lane update is a single-rounded fused multiply-add
// (VFMADD231PS). Per lane this computes FMA32(a, b, acc) in ascending k —
// the tier's scalar reference in gemm_fma.go — which is NOT bit-identical
// to the mul+add tiers, so dispatch never selects it automatically.
//
// Go asm reverses the Intel operand order: VFMADD231PS Y8, Y9, Yn
// computes Yn += Y9·Y8.
TEXT ·kernel8x8fma(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), SI
	MOVQ kc+16(FP), DX
	MOVQ as+24(FP), R8
	MOVQ bs+32(FP), R9

	SHLQ $2, SI
	LEAQ (DI)(SI*2), R10
	LEAQ (R10)(SI*2), R11
	LEAQ (R11)(SI*2), R12

	VMOVUPS (DI), Y0
	VMOVUPS (DI)(SI*1), Y1
	VMOVUPS (R10), Y2
	VMOVUPS (R10)(SI*1), Y3
	VMOVUPS (R11), Y4
	VMOVUPS (R11)(SI*1), Y5
	VMOVUPS (R12), Y6
	VMOVUPS (R12)(SI*1), Y7

	TESTQ DX, DX
	JZ    fmastore

fmaloop:
	VMOVUPS (R9), Y8         // b[k][0:8]

	VBROADCASTSS (R8), Y9    // a[k][0]
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS 4(R8), Y9   // a[k][1]
	VFMADD231PS  Y8, Y9, Y1
	VBROADCASTSS 8(R8), Y9   // a[k][2]
	VFMADD231PS  Y8, Y9, Y2
	VBROADCASTSS 12(R8), Y9  // a[k][3]
	VFMADD231PS  Y8, Y9, Y3
	VBROADCASTSS 16(R8), Y9  // a[k][4]
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS 20(R8), Y9  // a[k][5]
	VFMADD231PS  Y8, Y9, Y5
	VBROADCASTSS 24(R8), Y9  // a[k][6]
	VFMADD231PS  Y8, Y9, Y6
	VBROADCASTSS 28(R8), Y9  // a[k][7]
	VFMADD231PS  Y8, Y9, Y7

	ADDQ $32, R8
	ADDQ $32, R9
	DECQ DX
	JNZ  fmaloop

fmastore:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (DI)(SI*1)
	VMOVUPS Y2, (R10)
	VMOVUPS Y3, (R10)(SI*1)
	VMOVUPS Y4, (R11)
	VMOVUPS Y5, (R11)(SI*1)
	VMOVUPS Y6, (R12)
	VMOVUPS Y7, (R12)(SI*1)
	VZEROUPPER
	RET

// func cpuidRaw(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
//
// Raw CPUID — the repo is stdlib-only, so feature detection cannot lean on
// golang.org/x/sys. CPUID is unprivileged and serializing; leaf/subleaf go
// in via EAX/ECX.
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvRaw() (eax, edx uint32)
//
// XGETBV with XCR0 selected: bits 1|2 of EAX report whether the OS saves
// XMM+YMM state across context switches — without them AVX execution
// faults, whatever CPUID says about the silicon.
TEXT ·xgetbvRaw(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
