//go:build amd64 && !purego

#include "textflag.h"

// func kernel4x8(dst *float32, ldd, kc int, as, bs *float32)
//
// 4×8 SGEMM micro-kernel over one packed depth block. Accumulators are
// seeded from dst and stored back, so successive depth blocks extend each
// element's ascending-k accumulation chain (the determinism contract).
// Vector lanes run across output columns only — lane c of X0/X1 is output
// element (row 0, col c) — so every element sees the same scalar IEEE
// mul/add sequence as the reference loop; MULPS/ADDPS round each lane
// independently and SSE2 has no fused multiply-add.
//
// Register plan (16 XMM):
//   X0..X7   accumulators: rows 0..3 × {cols 0-3, cols 4-7}
//   X8, X9   current B row (8 columns)
//   X10, X11 broadcast A element / product temporaries
TEXT ·kernel4x8(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), SI
	MOVQ kc+16(FP), DX
	MOVQ as+24(FP), R8
	MOVQ bs+32(FP), R9

	SHLQ $2, SI              // row stride in bytes
	LEAQ (DI)(SI*2), R10     // &dst[2·ldd]

	// Seed accumulators from the stored partials.
	MOVUPS (DI), X0
	MOVUPS 16(DI), X1
	MOVUPS (DI)(SI*1), X2
	MOVUPS 16(DI)(SI*1), X3
	MOVUPS (R10), X4
	MOVUPS 16(R10), X5
	MOVUPS (R10)(SI*1), X6
	MOVUPS 16(R10)(SI*1), X7

	TESTQ DX, DX
	JZ    store

loop:
	MOVUPS (R9), X8          // b[k][0:4]
	MOVUPS 16(R9), X9        // b[k][4:8]

	MOVSS  (R8), X10         // a[k][0]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

	MOVSS  4(R8), X10        // a[k][1]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

	MOVSS  8(R8), X10        // a[k][2]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

	MOVSS  12(R8), X10       // a[k][3]
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

	ADDQ $16, R8             // next packed A row (4 floats)
	ADDQ $32, R9             // next packed B row (8 floats)
	DECQ DX
	JNZ  loop

store:
	MOVUPS X0, (DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, (DI)(SI*1)
	MOVUPS X3, 16(DI)(SI*1)
	MOVUPS X4, (R10)
	MOVUPS X5, 16(R10)
	MOVUPS X6, (R10)(SI*1)
	MOVUPS X7, 16(R10)(SI*1)
	RET
