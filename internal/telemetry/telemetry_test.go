package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// Every instrument and the registry itself must be callable through nil —
// that is the entire disabled path.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", 1, 2)
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	c.Add(5)
	c.Inc()
	g.Set(3)
	g.Max(9)
	h.Observe(0.5)
	if c.Load() != 0 || g.Load() != 0 || h.Total() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	if b, cnt := h.Buckets(); b != nil || cnt != nil {
		t.Fatalf("nil histogram buckets must be nil")
	}
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %v, want empty", got)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteText: err=%v len=%d", err, buf.Len())
	}

	var tr *Tracer
	if tr.Enabled() {
		t.Fatalf("nil tracer must report disabled")
	}
	tr.Span(0, 0, "s", "c", 0, 10, nil)
	tr.Instant(0, 0, "i", "c", 5, nil)
	tr.CounterSample(0, 0, "n", 1, nil)
	tr.NameProcess(0, "p")
	tr.NameThread(0, 0, "t")
	if tr.Len() != 0 {
		t.Fatalf("nil tracer recorded events")
	}
	buf.Reset()
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
	var doc Trace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer emitted invalid JSON: %v", err)
	}
	if doc.TraceEvents == nil || len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer must export an empty (non-null) event array")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flits")
	c.Add(3)
	c.Inc()
	if c.Load() != 4 {
		t.Fatalf("counter = %d, want 4", c.Load())
	}
	if r.Counter("flits") != c {
		t.Fatalf("second lookup must return the same counter")
	}

	g := r.Gauge("occ")
	g.Set(2)
	g.Max(7)
	g.Max(5) // lower: no effect
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}

	h := r.Histogram("util", 0.5, 1.0)
	h.Observe(0.2)  // bucket le0.5
	h.Observe(0.75) // bucket le1
	h.Observe(2.0)  // overflow
	bounds, counts := h.Buckets()
	if len(bounds) != 2 || len(counts) != 3 {
		t.Fatalf("buckets: bounds=%v counts=%v", bounds, counts)
	}
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 1 || h.Total() != 3 {
		t.Fatalf("bucket counts = %v (total %d)", counts, h.Total())
	}

	snap := r.Snapshot()
	want := map[string]int64{
		"flits": 4, "occ": 7,
		"util.count": 3, "util.le0.5": 1, "util.le1": 1, "util.leInf": 1,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %d, want %d", k, snap[k], v)
		}
	}
	if len(snap) != len(want) {
		t.Errorf("snapshot has %d keys, want %d: %v", len(snap), len(want), snap)
	}
}

// Atomic updates from many goroutines must fold to the same totals and the
// same serialized bytes regardless of schedule.
func TestConcurrentUpdatesDeterministicDump(t *testing.T) {
	dump := func(workers int) []byte {
		r := NewRegistry()
		c := r.Counter("n")
		g := r.Gauge("max")
		h := r.Histogram("u") // default bounds
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					c.Add(2)
					g.Max(int64(i))
					h.Observe(float64(i%10) / 10)
				}
			}(w)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	// Same total work split across different worker counts.
	one := dump(1)
	for _, w := range []int{2, 8} {
		r := NewRegistry()
		c := r.Counter("n")
		g := r.Gauge("max")
		h := r.Histogram("u")
		var wg sync.WaitGroup
		per := 1000 / w
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < per; j++ {
					c.Add(2)
					g.Max(999)
					h.Observe(0.35)
				}
			}()
		}
		wg.Wait()
		if c.Load() != int64(2*per*w) {
			t.Fatalf("workers=%d: counter=%d", w, c.Load())
		}
		if g.Load() != 999 {
			t.Fatalf("workers=%d: gauge=%d", w, g.Load())
		}
		if h.Total() != int64(per*w) {
			t.Fatalf("workers=%d: histogram total=%d", w, h.Total())
		}
	}
	// Identical single-goroutine runs must serialize identically.
	if !bytes.Equal(one, dump(1)) {
		t.Fatalf("identical runs produced different JSON")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 2, 4, 8)
	// 10 observations: 5 in le1, 3 in le2, 1 in le4, 1 overflow.
	for i := 0; i < 5; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 3; i++ {
		h.Observe(1.5)
	}
	h.Observe(3)
	h.Observe(100)
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 1}, // rank 5 lands exactly at the le1 cumulative count
		{0.51, 2}, // one past it crosses into le2
		{0.80, 2}, // rank 8 = cumulative of le2
		{0.90, 4},
		{0.95, 8}, // rank 10 is the overflow observation: clamp to last finite bound
		{0.99, 8},
		{1.00, 8},
	}
	for _, c := range cases {
		if got := h.Percentile(c.q); got != c.want {
			t.Errorf("Percentile(%.2f) = %g, want %g", c.q, got, c.want)
		}
	}

	var nilH *Histogram
	if nilH.Percentile(0.5) != 0 {
		t.Errorf("nil histogram percentile must be 0")
	}
	if r.Histogram("empty", 1, 2).Percentile(0.5) != 0 {
		t.Errorf("empty histogram percentile must be 0")
	}
}

// The histogram quantile lines in both dump formats must be byte-identical
// when the same multiset of observations arrives from 1, 2, or 8
// goroutines — the percentile extension must not break the registry's
// worker-count determinism.
func TestHistogramPercentileDumpDeterministicAcrossWorkers(t *testing.T) {
	const obs = 240 // divisible by every worker count
	dump := func(workers int) (string, string) {
		r := NewRegistry()
		h := r.Histogram("u") // default ten 0.1 buckets over [0, 1]
		var wg sync.WaitGroup
		per := obs / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for j := 0; j < per; j++ {
					// Same global multiset for every split: values depend
					// only on the global observation index.
					i := w*per + j
					h.Observe(float64(i%12) / 10) // includes overflow values 1.1
				}
			}(w)
		}
		wg.Wait()
		var text, js bytes.Buffer
		if err := r.WriteText(&text); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if err := r.WriteJSON(&js); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return text.String(), js.String()
	}
	text1, js1 := dump(1)
	for _, pq := range []string{"u.p50", "u.p95", "u.p99"} {
		if !bytes.Contains([]byte(text1), []byte(pq)) {
			t.Fatalf("WriteText missing %s line:\n%s", pq, text1)
		}
		if !bytes.Contains([]byte(js1), []byte(pq)) {
			t.Fatalf("WriteJSON missing %s entry:\n%s", pq, js1)
		}
	}
	for _, w := range []int{2, 8} {
		text, js := dump(w)
		if text != text1 {
			t.Fatalf("workers=%d: WriteText differs\n--- 1 ---\n%s\n--- %d ---\n%s", w, text1, w, text)
		}
		if js != js1 {
			t.Fatalf("workers=%d: WriteJSON differs\n--- 1 ---\n%s\n--- %d ---\n%s", w, js1, w, js)
		}
	}
}

func TestWriteTextSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta").Add(1)
	r.Counter("alpha").Add(2)
	r.Gauge("mid").Set(3)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	got := buf.String()
	if !(bytes.Contains(buf.Bytes(), []byte("alpha")) &&
		bytes.Index(buf.Bytes(), []byte("alpha")) < bytes.Index(buf.Bytes(), []byte("mid")) &&
		bytes.Index(buf.Bytes(), []byte("mid")) < bytes.Index(buf.Bytes(), []byte("zeta"))) {
		t.Fatalf("WriteText not sorted:\n%s", got)
	}
}

// The tracer's export must put metadata first, sort spans by (pid, tid,
// ts) with stable order for ties, and produce byte-identical JSON for the
// same logical event stream emitted in a different interleaving across
// lanes.
func TestTracerCanonicalExport(t *testing.T) {
	build := func(order []int) []byte {
		tr := NewTracer()
		tr.NameProcess(1, "sim")
		tr.NameThread(1, 0, "layers")
		// Three events across two lanes; `order` permutes emission.
		evs := []func(){
			func() { tr.Span(1, 0, "conv1", "layer", 0, 100, map[string]any{"ng": 4, "nc": 2}) },
			func() { tr.Span(1, 0, "conv2", "layer", 100, 50, nil) },
			func() { tr.Instant(1, 1, "fault", "noc", 30, map[string]any{"node": 3}) },
		}
		for _, i := range order {
			evs[i]()
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1}) // different lane interleaving, same per-lane order
	if !bytes.Equal(a, b) {
		t.Fatalf("per-lane-order-preserving interleavings must serialize identically\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}

	var doc Trace
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[1].Ph != "M" {
		t.Fatalf("metadata events must come first: %+v", doc.TraceEvents[:2])
	}
	if doc.TraceEvents[2].Name != "conv1" || doc.TraceEvents[3].Name != "conv2" || doc.TraceEvents[4].Name != "fault" {
		t.Fatalf("events not in (pid,tid,ts) order: %+v", doc.TraceEvents[2:])
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddEnabled(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
