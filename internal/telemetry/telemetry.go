// Package telemetry is the repo's deterministic observability layer: an
// atomic counter/gauge/histogram registry and a span/event tracer whose
// timestamps are **simulated cycles, never wall clock**. Both halves obey
// the two invariants every simulation package already lives under:
//
//   - Zero cost when disabled. Every instrument is nil-safe: a nil
//     *Counter, *Gauge, *Histogram, or *Tracer accepts every method as a
//     no-op, so instrumented code holds possibly-nil handles and pays one
//     predictable branch when telemetry is off — no interface dispatch, no
//     allocation, no atomic traffic.
//
//   - Deterministic when enabled. Counters and gauges are commutative
//     folds (atomic adds and max-CAS), so their totals are independent of
//     goroutine schedule; trace events are emitted only from the
//     deterministic fold points of the instrumented packages (post-barrier
//     sweeps, index-ordered result assembly) and exported in a canonical
//     order, so the metrics snapshot and the trace byte stream are
//     bit-identical at any worker count. The cycle-domain rule is enforced
//     statically: mptlint's notime analyzer rejects any import of the time
//     package here.
//
// Allocation discipline: counter/gauge/histogram updates are allocation
// free and sanctioned inside the *Into kernels (mptlint's noalloc analyzer
// carves them out); resolving handles from a Registry or emitting trace
// events allocates and must stay outside the hot loops (noalloc flags it).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing atomic tally. The zero value is
// ready to use; a nil Counter ignores updates (the disabled path).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current total (zero on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge is an atomic last/max-value instrument. The zero value is ready;
// a nil Gauge ignores updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Max raises the gauge to v if v exceeds the stored value (no-op on nil).
// The CAS loop makes concurrent Max calls fold commutatively, so the final
// value is schedule-independent.
func (g *Gauge) Max(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the stored value (zero on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Histogram counts observations into fixed upper-bound buckets (plus an
// implicit +Inf overflow bucket). Bounds are set at registration and never
// change, so Observe is a scan plus one atomic increment — allocation free.
// A nil Histogram ignores observations.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	buckets []atomic.Int64
}

// Observe counts v into its bucket (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(h.bounds)].Add(1)
}

// Total returns the observation count across all buckets (zero on nil).
func (h *Histogram) Total() int64 {
	if h == nil {
		return 0
	}
	var t int64
	for i := range h.buckets {
		t += h.buckets[i].Load()
	}
	return t
}

// Buckets returns the bucket upper bounds and their counts (the last count
// is the +Inf overflow bucket). Nil-safe.
func (h *Histogram) Buckets() ([]float64, []int64) {
	if h == nil {
		return nil, nil
	}
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return h.bounds, counts
}

// Percentile returns the q-quantile (q in (0, 1]) as a bucket upper bound:
// the smallest bound whose cumulative count reaches ceil(q·total).
// Observations that landed in the +Inf overflow bucket clamp to the last
// finite bound — the histogram cannot resolve beyond it. Returns 0 on an
// empty histogram (nil-safe). Bucket counts are commutative atomic folds,
// so the result is schedule-independent.
func (h *Histogram) Percentile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	bounds, counts := h.Buckets()
	return percentileOf(bounds, counts, q)
}

// percentileOf is the pure-form quantile used by Percentile and the
// registry dumps (which already hold a snapshot of the counts).
func percentileOf(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	// rank = ceil(q·total) without float rounding hazards at exact
	// multiples: the smallest integer r with r ≥ q·total.
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		if cum >= rank {
			return b
		}
	}
	return bounds[len(bounds)-1] // overflow bucket: clamp to last finite bound
}

// A Registry names and owns a set of instruments. Registration locks;
// updates through the returned handles never do. The dump methods emit
// instruments in sorted-name order, so two registries fed the same updates
// serialize byte-identically.
//
// A nil *Registry is the disabled state: its lookup methods return nil
// handles, which in turn drop every update.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
	}
}

// Counter returns the named counter, registering it on first use. A nil
// registry returns a nil (no-op) counter. Resolve handles once at
// attach/setup time — this lookup locks and may allocate, so it must stay
// out of the steady-state kernels (noalloc enforces this).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use (nil-safe).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it with the given
// ascending upper bounds on first use (nil-safe). Later lookups ignore the
// bounds argument and return the registered instrument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			// Default: ten 0.1-wide utilization buckets over [0, 1].
			bounds = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
		}
		bs := append([]float64(nil), bounds...)
		h = &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// snapshotRow is one instrument's serialized state.
type snapshotRow struct {
	kind string // "counter", "gauge", "histogram"
	name string
	val  int64
	// histogram detail
	bounds []float64
	counts []int64
}

// rows collects every instrument sorted by name (kind breaks ties).
func (r *Registry) rows() []snapshotRow {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]snapshotRow, 0, len(r.ctrs)+len(r.gauges)+len(r.hists))
	for name, c := range r.ctrs {
		out = append(out, snapshotRow{kind: "counter", name: name, val: c.Load()})
	}
	for name, g := range r.gauges {
		out = append(out, snapshotRow{kind: "gauge", name: name, val: g.Load()})
	}
	for name, h := range r.hists {
		bounds, counts := h.Buckets()
		out = append(out, snapshotRow{kind: "histogram", name: name, bounds: bounds, counts: counts, val: h.Total()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].kind < out[j].kind
	})
	return out
}

// Snapshot returns every scalar instrument's value keyed by name;
// histograms contribute "<name>.count" plus "<name>.le<bound>" entries.
func (r *Registry) Snapshot() map[string]int64 {
	out := map[string]int64{}
	for _, row := range r.rows() {
		switch row.kind {
		case "histogram":
			out[row.name+".count"] = row.val
			for i, b := range row.bounds {
				out[row.name+".le"+formatBound(b)] = row.counts[i]
			}
			out[row.name+".leInf"] = row.counts[len(row.bounds)]
		default:
			out[row.name] = row.val
		}
	}
	return out
}

// WriteText dumps the registry as aligned "name value" lines in sorted
// order — the `-metrics` console format.
func (r *Registry) WriteText(w io.Writer) error {
	for _, row := range r.rows() {
		switch row.kind {
		case "histogram":
			if _, err := fmt.Fprintf(w, "%-40s %12d\n", row.name+".count", row.val); err != nil {
				return err
			}
			for i, b := range row.bounds {
				if _, err := fmt.Fprintf(w, "%-40s %12d\n", row.name+".le"+formatBound(b), row.counts[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%-40s %12d\n", row.name+".leInf", row.counts[len(row.bounds)]); err != nil {
				return err
			}
			for _, pq := range percentileDump {
				if _, err := fmt.Fprintf(w, "%-40s %12s\n", row.name+pq.suffix,
					formatBound(percentileOf(row.bounds, row.counts, pq.q))); err != nil {
					return err
				}
			}
		default:
			if _, err := fmt.Fprintf(w, "%-40s %12d\n", row.name, row.val); err != nil {
				return err
			}
		}
	}
	return nil
}

// percentileDump lists the quantile lines every histogram dump carries.
var percentileDump = []struct {
	suffix string
	q      float64
}{
	{".p50", 0.50},
	{".p95", 0.95},
	{".p99", 0.99},
}

// WriteJSON dumps the registry as one sorted JSON object (encoding/json
// sorts map keys, so the byte stream is canonical for a given state).
// Scalar instruments and histogram bucket counts serialize as integers;
// histograms additionally carry "<name>.p50/.p95/.p99" quantile entries,
// which may be fractional bucket bounds.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := map[string]any{}
	for k, v := range r.Snapshot() { // key-slot copy: order-independent
		out[k] = v
	}
	for _, row := range r.rows() {
		if row.kind != "histogram" {
			continue
		}
		for _, pq := range percentileDump {
			out[row.name+pq.suffix] = percentileOf(row.bounds, row.counts, pq.q)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// formatBound renders a histogram bound compactly and deterministically
// (0.1 -> "0.1", 1 -> "1").
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
