package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Event is one Chrome trace_event record. Timestamps are simulated cycles
// (the viewer renders them as microseconds; at the NDP's 1 GHz clock one
// "microsecond" on screen is one thousand simulated cycles). Only the
// fields the trace_event spec requires are emitted; zero-valued optional
// fields are dropped from the JSON.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"` // "X" complete, "i" instant, "C" counter sample, "M" metadata
	TS   int64          `json:"ts"` // simulated cycles
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: "g" global, "p" process, "t" thread
	Args map[string]any `json:"args,omitempty"`
}

// Shared pid lanes: each instrumented subsystem renders as its own
// process row in the Chrome trace viewer. Packages use these constants so
// a combined trace from sim + NoC + MPT lands in predictable lanes.
const (
	PIDSim = 1 // internal/sim: per-layer phases and sweep cells
	PIDNoC = 2 // internal/noc: message lifetimes, fault/retransmit events
	PIDMPT = 3 // internal/mpt: training-step phases, checkpoint/recovery
)

// A Tracer accumulates cycle-domain events for Chrome trace_event export.
// A nil *Tracer drops every event (the disabled state), so instrumented
// code calls methods unconditionally.
//
// Determinism contract: callers must emit events only from sequential code
// or from the deterministic fold points of the parallel engine (post-
// barrier sweeps, index-ordered assembly). The tracer itself is
// mutex-guarded so a stray concurrent emit is race-safe, but event ORDER
// is the caller's responsibility — WriteJSON stable-sorts by (pid, tid,
// ts) which makes well-formed emission orders canonical, not arbitrary
// ones.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	meta   []Event // process/thread name metadata, emitted first
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{}
}

// Enabled reports whether events are being recorded. Use it to skip
// argument-map construction when tracing is off.
func (t *Tracer) Enabled() bool { return t != nil }

// Span records a complete ("X") event covering [start, start+dur) cycles.
// args may be nil. No-op on nil.
func (t *Tracer) Span(pid, tid int, name, cat string, start, dur int64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "X", TS: start, Dur: dur, PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// Instant records an instant ("i") event at the given cycle with thread
// scope. No-op on nil.
func (t *Tracer) Instant(pid, tid int, name, cat string, ts int64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "i", TS: ts, PID: pid, TID: tid, S: "t", Args: args,
	})
	t.mu.Unlock()
}

// CounterSample records a counter ("C") event: the viewer draws a stacked
// time series of the args values. No-op on nil.
func (t *Tracer) CounterSample(pid, tid int, name string, ts int64, args map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Ph: "C", TS: ts, PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// NameProcess attaches a display name to a pid lane. No-op on nil.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta = append(t.meta, Event{
		Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// NameThread attaches a display name to a (pid, tid) lane. No-op on nil.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta = append(t.meta, Event{
		Name: "thread_name", Ph: "M", PID: pid, TID: tid, Args: map[string]any{"name": name},
	})
	t.mu.Unlock()
}

// Len returns the number of recorded non-metadata events (zero on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Trace is the exported JSON document shape ({"traceEvents": [...]}).
type Trace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Export returns the canonical event stream: metadata first (in emission
// order), then events stable-sorted by (pid, tid, ts). The stable sort
// preserves emission order among equal keys, so deterministic emission
// yields a deterministic stream.
func (t *Tracer) Export() Trace {
	out := Trace{DisplayTimeUnit: "ms"}
	if t == nil {
		out.TraceEvents = []Event{}
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	evs := make([]Event, 0, len(t.meta)+len(t.events))
	evs = append(evs, t.meta...)
	body := append([]Event(nil), t.events...)
	sort.SliceStable(body, func(i, j int) bool {
		if body[i].PID != body[j].PID {
			return body[i].PID < body[j].PID
		}
		if body[i].TID != body[j].TID {
			return body[i].TID < body[j].TID
		}
		return body[i].TS < body[j].TS
	})
	evs = append(evs, body...)
	out.TraceEvents = evs
	return out
}

// WriteJSON writes the trace as Chrome trace_event JSON. encoding/json
// sorts the args map keys, so for a given event stream the output bytes
// are canonical — the determinism tests compare them directly.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Export())
}
