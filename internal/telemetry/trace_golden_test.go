package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden trace file")

// goldenTracer builds a small fixed scenario spanning every event kind and
// all three pid lanes, emitted deliberately out of lane order so the test
// also pins the canonical (pid, tid, ts) export ordering.
func goldenTracer() *Tracer {
	tr := NewTracer()
	tr.NameProcess(PIDSim, "sim")
	tr.NameThread(PIDSim, 0, "config w_mp++")
	tr.NameProcess(PIDNoC, "noc")
	tr.NameThread(PIDNoC, 3, "node 3")
	tr.NameProcess(PIDMPT, "mpt")
	tr.NameThread(PIDMPT, 0, "training steps")

	tr.Span(PIDMPT, 0, "step", "mpt.phase", 0, 1, map[string]any{"loss": 0.5})
	tr.Span(PIDSim, 0, "Early fwd", "sim.phase", 0, 1200, map[string]any{"ng": 16, "nc": 16})
	tr.Instant(PIDNoC, 3, "retransmit", "noc.fault", 420, map[string]any{"msg": 7})
	tr.Span(PIDSim, 0, "Early bwd", "sim.phase", 1200, 2400, nil)
	tr.CounterSample(PIDMPT, 0, "traffic", 1, map[string]any{
		"scatter_bytes": 4096, "gather_bytes": 1024,
	})
	return tr
}

// TestChromeTraceGolden pins the exported bytes against a checked-in
// golden file (refresh with `go test ./internal/telemetry -update`) and
// proves the output round-trips as well-formed Chrome trace_event JSON:
// it re-parses into both a schema check and the typed Trace, and the
// typed re-encoding reproduces the original bytes exactly.
func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace bytes differ from %s:\ngot:\n%s\nwant:\n%s", path, buf.Bytes(), want)
	}

	// Schema check: every event carries the trace_event required fields
	// with a known phase; instants carry a scope.
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	valid := map[string]bool{"X": true, "i": true, "C": true, "M": true}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("event %d: missing required field %q: %v", i, key, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		if !valid[ph] {
			t.Errorf("event %d: unknown phase %q", i, ph)
		}
		if ph == "i" {
			if s, _ := ev["s"].(string); s != "t" {
				t.Errorf("event %d: instant scope %q, want \"t\"", i, s)
			}
		}
	}

	// Typed round-trip: Trace -> JSON -> Trace -> JSON is the identity on
	// bytes, so nothing the encoder emits is lossy or order-unstable.
	var typed Trace
	if err := json.Unmarshal(buf.Bytes(), &typed); err != nil {
		t.Fatalf("re-parse into Trace: %v", err)
	}
	var again bytes.Buffer
	enc := json.NewEncoder(&again)
	enc.SetIndent("", " ")
	if err := enc.Encode(typed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("typed round-trip changed the bytes:\nfirst:\n%s\nsecond:\n%s", buf.Bytes(), again.Bytes())
	}
}
