package model

import (
	"testing"

	"mptwino/internal/winograd"
)

func TestAllLayersValidate(t *testing.T) {
	check := func(name string, layers []Layer) {
		t.Helper()
		for _, l := range layers {
			if err := l.P.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", name, l.Name, err)
			}
			if _, err := winograd.ForKernel(l.P.K, 16); err != nil {
				t.Fatalf("%s/%s: no transform for k=%d", name, l.Name, l.P.K)
			}
		}
	}
	check("five", FiveLayers())
	check("five5x5", FiveLayers5x5())
	for _, net := range AllNetworks() {
		check(net.Name, net.Layers)
		if net.Batch <= 0 {
			t.Fatalf("%s: bad batch %d", net.Name, net.Batch)
		}
	}
}

func TestFiveLayersMonotoneGeometry(t *testing.T) {
	layers := FiveLayers()
	for i := 1; i < len(layers); i++ {
		if layers[i].P.H > layers[i-1].P.H {
			t.Fatal("feature maps must shrink toward late layers")
		}
		if layers[i].P.In < layers[i-1].P.In {
			t.Fatal("channel counts must grow toward late layers")
		}
	}
	// Early has the largest feature map and smallest weights; Late-2 the
	// reverse — the Table II roles the text describes.
	early, late := layers[0].P, layers[4].P
	if early.H*early.W <= late.H*late.W {
		t.Fatal("early feature map not largest")
	}
	if early.In*early.Out >= late.In*late.Out {
		t.Fatal("late weights not largest")
	}
}

func TestEffectiveDefaults(t *testing.T) {
	l := Layer{}
	if l.EffectiveRepeat() != 1 {
		t.Fatal("default repeat should be 1")
	}
	if l.EffectiveGatherScale() != 1 {
		t.Fatal("default gather scale should be 1")
	}
	l.Repeat = 5
	l.GatherScale = 0.5
	if l.EffectiveRepeat() != 5 || l.EffectiveGatherScale() != 0.5 {
		t.Fatal("explicit values not honored")
	}
}

func TestFractalNetHasModifiedJoinScaling(t *testing.T) {
	fn := FractalNet44()
	found := false
	for _, l := range fn.Layers {
		if l.EffectiveGatherScale() < 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("FractalNet should carry modified-join gather scaling")
	}
	// The other networks should not.
	for _, net := range []Network{WRN40x10(), ResNet34()} {
		for _, l := range net.Layers {
			if l.EffectiveGatherScale() != 1 {
				t.Fatalf("%s/%s has unexpected gather scaling", net.Name, l.Name)
			}
		}
	}
}

func TestParamCountLinearInRepeat(t *testing.T) {
	l := Layer{Name: "x", P: FiveLayers()[4].P}
	n1 := Network{Name: "a", Batch: 1, Layers: []Layer{l}}
	l.Repeat = 4
	n4 := Network{Name: "b", Batch: 1, Layers: []Layer{l}}
	if n4.ParamCount() != 4*n1.ParamCount() {
		t.Fatal("ParamCount not linear in Repeat")
	}
}
