// Package model catalogs the CNN workloads of the paper's evaluation as
// layer-geometry lists: the five typical convolution layers of Table II and
// the three full CNNs of Table I (WRN-40-10, ResNet-34, FractalNet with 4
// blocks and 4 columns). The catalog carries only shapes — the numeric
// training of small networks lives in internal/nn; these full-size shapes
// feed the communication model and the system simulator.
//
// Table II's body did not survive in the available text of the paper, so
// the five layers are reconstructed as a standard VGG-style progression
// that preserves the roles the text describes (early = large feature maps
// with small weights, late = small feature maps with large weights); see
// DESIGN.md §2.
package model

import "mptwino/internal/conv"

// Layer is one convolution layer of a workload.
type Layer struct {
	Name string
	P    conv.Params
	// Repeat counts identical back-to-back layers (they contribute
	// Repeat× to every cost).
	Repeat int
	// GatherScale scales this layer's tile-gathering volume; FractalNet's
	// modified (Winograd-domain) join lets several columns' outputs merge
	// before a single inverse transform, halving gathers at join points
	// (Fig. 14 discussion).
	GatherScale float64
}

// EffectiveRepeat returns Repeat, defaulting to 1.
func (l Layer) EffectiveRepeat() int {
	if l.Repeat <= 0 {
		return 1
	}
	return l.Repeat
}

// EffectiveGatherScale returns GatherScale, defaulting to 1.
func (l Layer) EffectiveGatherScale() float64 {
	if l.GatherScale <= 0 {
		return 1
	}
	return l.GatherScale
}

// Network is a named list of convolution layers trained with a fixed batch.
type Network struct {
	Name   string
	Batch  int
	Layers []Layer
}

// conv3 builds a same-padded 3×3 layer spec.
func conv3(name string, in, out, hw, repeat int) Layer {
	return Layer{
		Name:   name,
		Repeat: repeat,
		P:      conv.Params{In: in, Out: out, K: 3, Pad: 1, H: hw, W: hw},
	}
}

// FiveLayers returns the Table II reconstruction: five typical 3×3
// convolution layers spanning the early/mid/late regimes of an
// ImageNet-body CNN (56² after the stem down to 7², widths 64→1024 as in
// FractalNet's last block), batch 256. The octave placement is chosen so
// the layer classes reproduce the paper's Fig. 15 narrative: early layers
// tile-transfer-bound (dynamic clustering falls back to data parallelism),
// late layers weight-collective-bound (MPT wins big), mid layers near the
// crossover.
func FiveLayers() []Layer {
	return []Layer{
		conv3("Early", 64, 128, 56, 1),
		conv3("Mid-1", 128, 256, 28, 1),
		conv3("Mid-2", 256, 512, 14, 1),
		conv3("Late-1", 512, 512, 7, 1),
		conv3("Late-2", 512, 1024, 7, 1),
	}
}

// FiveLayers5x5 returns the same five layers with 5×5 kernels — the
// Fig. 16 variant evaluated with F(2×2,5×5).
func FiveLayers5x5() []Layer {
	out := FiveLayers()
	for i := range out {
		out[i].P.K = 5
		out[i].P.Pad = 2
	}
	return out
}

// WRN40x10 returns Wide ResNet WRN-40-10 on CIFAR (32×32 input): an
// initial 3×3 conv plus three groups of 6 basic blocks (2 convs each) at
// widths 160/320/640 and resolutions 32/16/8 — ≈55.5M parameters, matching
// Table I.
func WRN40x10() Network {
	layers := []Layer{conv3("conv1", 3, 16, 32, 1)}
	groups := []struct {
		in, width, hw int
	}{
		{16, 160, 32},
		{160, 320, 16},
		{320, 640, 8},
	}
	for gi, g := range groups {
		// First block adapts the channel count, the rest are width×width.
		layers = append(layers,
			conv3(groupName("g", gi, "b0c0"), g.in, g.width, g.hw, 1),
			conv3(groupName("g", gi, "b0c1"), g.width, g.width, g.hw, 1),
			conv3(groupName("g", gi, "rest"), g.width, g.width, g.hw, 10),
		)
	}
	return Network{Name: "WRN-40-10", Batch: 256, Layers: layers}
}

// ResNet34 returns ResNet-34 on ImageNet geometry: four stages of basic
// blocks ([3,4,6,3]) at 56/28/14/7 resolution and 64–512 channels. The 7×7
// stem and the 1×1 downsample shortcuts are omitted (not Winograd-eligible
// and negligible next to the 3×3 volume).
func ResNet34() Network {
	var layers []Layer
	stages := []struct {
		in, out, hw, blocks int
	}{
		{64, 64, 56, 3},
		{64, 128, 28, 4},
		{128, 256, 14, 6},
		{256, 512, 7, 3},
	}
	for si, s := range stages {
		layers = append(layers,
			conv3(groupName("s", si, "b0c0"), s.in, s.out, s.hw, 1),
			conv3(groupName("s", si, "rest"), s.out, s.out, s.hw, 2*s.blocks-1),
		)
	}
	return Network{Name: "ResNet-34", Batch: 256, Layers: layers}
}

// FractalNet44 returns FractalNet with 4 blocks and 4 columns on ImageNet
// geometry (Table I: ≈164M parameters). Each block holds 2⁴−1 = 15 convs;
// join layers merge columns, and with the paper's modified join (mean in
// the Winograd domain, Fig. 14) joined outputs share one inverse transform
// — modeled as GatherScale 0.5 on the layers feeding joins.
func FractalNet44() Network {
	var layers []Layer
	blocks := []struct {
		in, out, hw int
	}{
		{64, 128, 56},
		{128, 256, 28},
		{256, 512, 14},
		{512, 1024, 7},
	}
	for bi, b := range blocks {
		first := conv3(groupName("b", bi, "c0"), b.in, b.out, b.hw, 1)
		rest := conv3(groupName("b", bi, "rest"), b.out, b.out, b.hw, 14)
		// Half of a fractal block's convs feed a join; the modified join
		// gathers once per join instead of once per column.
		rest.GatherScale = 0.5
		layers = append(layers, first, rest)
	}
	return Network{Name: "FractalNet-4x4", Batch: 256, Layers: layers}
}

// VGG16 returns the 13 convolution layers of VGG-16 on ImageNet geometry
// (224² input, five 3×3 stages of widths 64–512) — the canonical
// Winograd showcase workload (uniform 3×3 kernels, no shortcuts). It is
// the telemetry walkthrough example (`mptsim -net vgg -trace`), not part
// of the Table I evaluation set, so AllNetworks excludes it.
func VGG16() Network {
	var layers []Layer
	stages := []struct {
		in, out, hw, convs int
	}{
		{3, 64, 224, 2},
		{64, 128, 112, 2},
		{128, 256, 56, 3},
		{256, 512, 28, 3},
		{512, 512, 14, 3},
	}
	for si, s := range stages {
		layers = append(layers,
			conv3(groupName("s", si, "c0"), s.in, s.out, s.hw, 1),
			conv3(groupName("s", si, "rest"), s.out, s.out, s.hw, s.convs-1),
		)
	}
	return Network{Name: "VGG-16", Batch: 256, Layers: layers}
}

// AlexNet returns the Winograd-eligible convolution body of AlexNet
// (conv2–conv5): the 5×5 layer runs under F(2×2,5×5) and the 3×3 layers
// under the usual cook-toom pair. The 11×11 stride-4 conv1 is omitted —
// conv.Params models stride-1 same-padded layers only, the same reason
// ResNet34 drops its 7×7 stem — and like VGG16 it is a planner/telemetry
// workload, not part of the Table I evaluation set.
func AlexNet() Network {
	return Network{Name: "AlexNet", Batch: 256, Layers: []Layer{
		{Name: "conv2", P: conv.Params{In: 96, Out: 256, K: 5, Pad: 2, H: 27, W: 27}},
		conv3("conv3", 256, 384, 13, 1),
		conv3("conv4", 384, 384, 13, 1),
		conv3("conv5", 384, 256, 13, 1),
	}}
}

// AllNetworks returns the three Table I CNNs.
func AllNetworks() []Network {
	return []Network{WRN40x10(), ResNet34(), FractalNet44()}
}

// ParamCount returns the spatial-domain parameter count of a network.
func (n Network) ParamCount() int64 {
	var total int64
	for _, l := range n.Layers {
		total += int64(l.EffectiveRepeat()) * int64(l.P.In) * int64(l.P.Out) * int64(l.P.K) * int64(l.P.K)
	}
	return total
}

func groupName(prefix string, i int, suffix string) string {
	return prefix + string(rune('0'+i)) + "-" + suffix
}
