package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// SharedWrite generalizes the old floatorder closure check to writes of
// every type: inside a closure handed to an internal/parallel fan-out
// primitive, any write whose target is captured from the enclosing scope
// (directly or through an alias) must be provably partitioned by the
// worker/item index, or two workers race on it and the stored value —
// float bits, slice contents, map entries — depends on the schedule.
//
// "Provably partitioned" is decided by the dataflow engine (cfg.go):
//
//   - some index in the write's index chain is derived from a closure
//     parameter — flow-sensitively, so loop counters seeded from the item
//     index (`off := i*stride; ...; dst[off+k] = v`) qualify, while a
//     counter reassigned from captured state does not; or
//   - the write goes through a local alias carved out of captured state
//     with parameter-derived bounds (`row := dst[i*w : (i+1)*w]`,
//     `s := scratch[worker]`) — the alias layer classifies those
//     partitioned, and plain `q := dst` or `p := &dst[3]` shared.
//
// Unindexed writes to captured variables (scalars, the slice header
// itself, struct fields) are always schedule-dependent and reported; the
// accumulation form gets the fold-order message floatorder used to own.
// The fix is the per-worker-partials idiom: each worker writes its own
// slot, the caller folds slots in index order (parallel.ForEachWorker's
// contract).
var SharedWrite = &Analyzer{
	Name: "sharedwrite",
	Doc: "flags writes to captured variables/aliases inside parallel " +
		"closures that are not provably partitioned by the worker/item index",
	Run: runSharedWrite,
}

// parallelClosureFuncs are the fan-out entry points whose closure
// argument runs concurrently with integer work indices.
var parallelClosureFuncs = map[string]bool{
	"ForEach":       true,
	"ForEachWorker": true,
	"ForEachErr":    true,
	"Map":           true,
	"MapErr":        true,
	"Run":           true, // (*Pool).Run
}

func runSharedWrite(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Path() == "mptwino/internal/parallel" {
		return // the pool's own internals manage shared state by design
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgFunc(pass.Info, call, "mptwino/internal/parallel") {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !parallelClosureFuncs[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkSharedWrites(pass, sel.Sel.Name, lit)
				}
			}
			return true
		})
	}
}

// aliasClass classifies what a closure-local variable may refer to.
type aliasClass int

const (
	aliasNone        aliasClass = iota // fresh/private value
	aliasPartitioned                   // worker-private region of captured state
	aliasShared                        // may overlap other workers' view of captured state
)

func checkSharedWrites(pass *Pass, funcName string, lit *ast.FuncLit) {
	// Seeds: the closure's integer parameters — the worker/item indices
	// the fan-out primitive feeds it.
	seeds := map[types.Object]bool{}
	var params []types.Object
	if lit.Type.Params != nil {
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					params = append(params, obj)
					if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
						seeds[obj] = true
					}
				}
			}
		}
	}
	flow := analyzeFlow(pass.Info, lit.Body, params)
	deriv := flow.newDerivation(seeds)
	class := classifyAliases(pass, lit, flow, deriv)

	captured := func(obj types.Object) bool {
		_, isVar := obj.(*types.Var)
		return isVar && declaredOutside(obj, lit)
	}

	// sharedBase reports whether writing through base can touch state
	// another worker sees: directly captured (isCaptured=true) or through
	// a shared local alias.
	sharedBase := func(base ast.Expr) (obj types.Object, shared, isCaptured bool) {
		obj = exprObject(pass.Info, base)
		if obj == nil {
			return nil, false, false
		}
		if captured(obj) {
			return obj, true, true
		}
		if class[obj] == aliasShared {
			return obj, true, false
		}
		return nil, false, false
	}

	report := func(n ast.Node, obj types.Object, accum, isCaptured bool) {
		what := fmt.Sprintf("captured %q", obj.Name())
		if !isCaptured {
			what = fmt.Sprintf("%q, which aliases captured state", obj.Name())
		}
		if accum {
			pass.Reportf(n.Pos(), "%s is accumulated inside a parallel.%s closure: fold order depends on the schedule; give each worker its own partial slot (indexed by the closure parameter) and fold the slots in index order", what, funcName)
		} else {
			pass.Reportf(n.Pos(), "write to %s inside a parallel.%s closure is not provably partitioned by the worker/item index: workers race and the result depends on the schedule", what, funcName)
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested closures are their own fan-out's concern
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				accum := false
				if i == 0 {
					if _, ok := floatAccumTarget(pass.Info, n); ok {
						accum = true
					}
					switch n.Tok {
					case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
						token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
						token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
						accum = true
					}
				}
				checkWriteTarget(pass, flow, deriv, sharedBase, report, n, lhs, accum)
			}
		case *ast.IncDecStmt:
			checkWriteTarget(pass, flow, deriv, sharedBase, report, n, n.X, true)
		case *ast.CallExpr:
			// copy(dst, src) writes through its first argument.
			if isBuiltin(pass.Info, n, "copy") && len(n.Args) == 2 {
				checkWriteTarget(pass, flow, deriv, sharedBase, report, n, n.Args[0], false)
			}
		}
		return true
	})
}

// checkWriteTarget inspects one write destination expression. It peels
// the index/deref/field chain, resolves the base, and reports unless the
// write is provably worker-private.
func checkWriteTarget(pass *Pass, flow *flowInfo, deriv *derivation,
	sharedBase func(ast.Expr) (types.Object, bool, bool),
	report func(ast.Node, types.Object, bool, bool),
	at ast.Node, target ast.Expr, accum bool) {

	base := target
	var indexes []ast.Expr
	var sliceLows []ast.Expr
	touched := false // true once the chain dereferences storage (not a rebinding)
peel:
	for {
		switch x := ast.Unparen(base).(type) {
		case *ast.IndexExpr:
			indexes = append(indexes, x.Index)
			base, touched = x.X, true
		case *ast.SliceExpr:
			if x.Low != nil {
				sliceLows = append(sliceLows, x.Low)
			}
			base, touched = x.X, true
		case *ast.StarExpr:
			base, touched = x.X, true
		case *ast.SelectorExpr:
			// Selecting through a package name is not a write to shared
			// state we can resolve; selecting a field keeps peeling.
			if obj := exprObject(pass.Info, x.X); obj == nil {
				return
			}
			base, touched = x.X, true
		default:
			break peel
		}
	}

	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj, shared, isCaptured := sharedBase(base)
	if !shared {
		return
	}
	if !touched && !isCaptured {
		return // rebinding a closure-local alias variable, not a shared write
	}
	// Safe if any index (or explicit slice offset, for copy targets like
	// dst[off:off+n]) is derived from the worker/item parameter at this
	// program point.
	for _, idx := range append(indexes, sliceLows...) {
		if deriv.exprDerived(idx, at) {
			return
		}
	}
	report(at, obj, accum, isCaptured)
}

// classifyAliases runs the conservative alias fixpoint over the closure
// body: which locals are worker-private carvings of captured state
// (partitioned) and which may overlap another worker's region (shared).
func classifyAliases(pass *Pass, lit *ast.FuncLit, flow *flowInfo, deriv *derivation) map[types.Object]aliasClass {
	class := map[types.Object]aliasClass{}
	captured := func(obj types.Object) bool {
		_, isVar := obj.(*types.Var)
		return isVar && declaredOutside(obj, lit)
	}
	merge := func(obj types.Object, c aliasClass) bool {
		if c > class[obj] {
			class[obj] = c
			return true
		}
		return false
	}

	// One aliasing def: lhsObj = chain(rhs). Returns whether obj's class
	// changed.
	applyDef := func(at ast.Node, lhsObj types.Object, rhs ast.Expr) bool {
		if !isRefType(lhsObj.Type()) {
			return false
		}
		e := rhs
		derivedStep := false
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.UnaryExpr:
				if x.Op != token.AND {
					return false
				}
				e = x.X
			case *ast.SliceExpr:
				if x.Low != nil && deriv.exprDerived(x.Low, at) {
					derivedStep = true
				}
				e = x.X
			case *ast.IndexExpr:
				if deriv.exprDerived(x.Index, at) {
					derivedStep = true
				}
				e = x.X
			case *ast.SelectorExpr:
				e = x.X
			case *ast.Ident:
				root := exprObject(pass.Info, x)
				if root == nil {
					return false
				}
				switch {
				case class[root] == aliasPartitioned:
					return merge(lhsObj, aliasPartitioned)
				case captured(root) || class[root] == aliasShared:
					if derivedStep {
						return merge(lhsObj, aliasPartitioned)
					}
					return merge(lhsObj, aliasShared)
				}
				return false
			default:
				return false
			}
		}
	}

	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
					return true
				}
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					obj := exprObject(pass.Info, lhs)
					if obj == nil || declaredOutside(obj, lit) {
						continue
					}
					if applyDef(n, obj, n.Rhs[i]) {
						changed = true
					}
				}
			case *ast.DeclStmt:
				if gd, ok := n.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for i, name := range vs.Names {
							obj := pass.Info.Defs[name]
							if obj == nil || i >= len(vs.Values) {
								continue
							}
							if applyDef(n, obj, vs.Values[i]) {
								changed = true
							}
						}
					}
				}
			case *ast.RangeStmt:
				// `for i, row := range grid` over captured grid: the
				// value variable aliases a shared element — but the
				// element is selected by the range index, which is NOT
				// worker-derived, so it stays shared.
				if n.Value != nil {
					obj := exprObject(pass.Info, n.Value)
					root := exprObject(pass.Info, n.X)
					if obj != nil && root != nil && isRefType(obj.Type()) &&
						(captured(root) || class[root] == aliasShared) {
						if merge(obj, aliasShared) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return class
}

// isRefType reports whether t can alias backing storage: slices,
// pointers, and maps.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}
