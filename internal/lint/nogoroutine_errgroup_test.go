package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// The errgroup-import branch of nogoroutine cannot appear in golden
// testdata: the module is built offline and golang.org/x/sync is not in
// the build cache, so a testdata file importing it would fail to load.
// The check is purely syntactic (an import path suffix), so pin it on a
// parsed-but-untypechecked file instead.
func TestNoGoroutineFlagsErrgroupImport(t *testing.T) {
	const src = `package p

import (
	"golang.org/x/sync/errgroup"
)

func f() {
	var g errgroup.Group
	_ = g
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "errgroup_user.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer: NoGoroutine,
		Fset:     fset,
		Files:    []*ast.File{f},
		Info: &types.Info{
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
		diags: &diags,
	}
	NoGoroutine.Run(pass)

	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "errgroup import outside internal/parallel") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an errgroup-import diagnostic, got %v", diags)
	}
}
