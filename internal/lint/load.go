package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// Target marks packages matched by the load patterns. Non-target
	// packages are module-local dependencies loaded with syntax so the
	// interprocedural analyzers can see through cross-package calls;
	// per-package analyzers do not report on them.
	Target bool
}

// A Program is the whole unit of analysis: every module-local package in
// the dependency closure of the requested patterns, loaded with syntax,
// sharing one FileSet and one export-data importer for out-of-module
// types. The flow-sensitive analyzers (allocflow) reason transitively
// over it through the call-graph summaries (callgraph.go).
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	byPath    map[string]*Package
	summaries map[string]*funcSummary // lazily built by callgraph()
}

// Targets returns the packages the caller asked to lint.
func (p *Program) Targets() []*Package {
	var out []*Package
	for _, pkg := range p.Pkgs {
		if pkg.Target {
			out = append(out, pkg)
		}
	}
	return out
}

// AllFiles returns every syntax file in the program (targets and
// module-local dependencies).
func (p *Program) AllFiles() []*ast.File {
	var out []*ast.File
	for _, pkg := range p.Pkgs {
		out = append(out, pkg.Files...)
	}
	return out
}

// TargetFiles returns the syntax files of the target packages — the scope
// //nolint directives are read from and stale-checked in. Dependency
// files keep their directives for the run that targets them.
func (p *Program) TargetFiles() []*ast.File {
	var out []*ast.File
	for _, pkg := range p.Targets() {
		out = append(out, pkg.Files...)
	}
	return out
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (run from dir) plus
// every module-local dependency, and returns them as one Program. It
// works fully offline: syntax comes from go/parser and type information
// for out-of-module dependencies comes from the compiler export data that
// `go list -export` materializes in the local build cache — no module
// downloads. Test files are not loaded; the invariants the suite encodes
// are properties of product code.
func Load(dir string, patterns ...string) (*Program, error) {
	return LoadCached(dir, "", patterns...)
}

// LoadCached is Load with an optional on-disk cache for the `go list
// -export` call-graph data (the dominant cost of a lint run: it compiles
// export data for the whole dependency closure). cacheFile == "" disables
// caching. The cache key hashes go.mod plus every .go file's (path, size,
// mtime) under the module root, so any source change invalidates it; a
// hit also revalidates that the cached export files still exist in the
// build cache.
func LoadCached(dir, cacheFile string, patterns ...string) (*Program, error) {
	pkgs, err := goListCached(dir, cacheFile, patterns...)
	if err != nil {
		return nil, err
	}

	// Export data for every package in the dependency closure, keyed by
	// the resolved import path. The gc importer chases transitive
	// references through this table on demand.
	exports := map[string]string{}
	importMap := map[string]string{}
	modulePath := ""
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly && p.Module != nil && modulePath == "" {
			modulePath = p.Module.Path
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("mptlint: no export data for %q (go list -export did not produce it)", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	prog := &Program{Fset: fset, byPath: map[string]*Package{}}
	for _, p := range pkgs {
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		// Module-local dependencies load with syntax (Target=false) so
		// the call graph can see through them; out-of-module deps stay
		// export-data-only.
		inModule := p.Module != nil && p.Module.Path == modulePath
		if p.DepOnly && !inModule {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("mptlint: %s: %s", p.ImportPath, p.Error.Err)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tpkg, info, err := typecheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("mptlint: type-checking %s: %w", p.ImportPath, err)
		}
		pkg := &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
			Target:     !p.DepOnly,
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[p.ImportPath] = pkg
	}
	return prog, nil
}

// LoadDir loads the package rooted at dir — which need not be part of any
// `go list` pattern space (the linttest golden testdata lives in
// testdata/, which the go tool ignores) — plus any immediate
// subdirectories as in-tree dependency packages, so golden suites can pin
// cross-package behavior (an allocating callee one package away).
// Subdirectory packages import as "testdata/<base>/<sub>" and are loaded
// first; out-of-tree imports resolve to export data via `go list -export`
// exactly like Load.
func LoadDir(dir string) (*Program, error) {
	fset := token.NewFileSet()
	base := filepath.Base(dir)
	mainPath := "testdata/" + base

	type rawPkg struct {
		importPath string
		dir        string
		files      []*ast.File
		target     bool
	}
	var raw []*rawPkg
	imports := map[string]bool{}

	parseDir := func(d, importPath string, target bool) error {
		entries, err := os.ReadDir(d)
		if err != nil {
			return err
		}
		p := &rawPkg{importPath: importPath, dir: d, target: target}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(d, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			p.files = append(p.files, f)
			for _, imp := range f.Imports {
				if ip, err := strconv.Unquote(imp.Path.Value); err == nil && ip != "unsafe" {
					imports[ip] = true
				}
			}
		}
		if len(p.files) == 0 {
			if target {
				return fmt.Errorf("mptlint: no Go files in %s", d)
			}
			return nil
		}
		raw = append(raw, p)
		return nil
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	// Dependencies first so the chain importer can resolve them when the
	// main package type-checks.
	var subs []string
	for _, e := range entries {
		if e.IsDir() {
			subs = append(subs, e.Name())
		}
	}
	sort.Strings(subs)
	for _, s := range subs {
		if err := parseDir(filepath.Join(dir, s), path.Join(mainPath, s), false); err != nil {
			return nil, err
		}
	}
	if err := parseDir(dir, mainPath, true); err != nil {
		return nil, err
	}

	// Resolve out-of-tree imports through go list -export.
	exports := map[string]string{}
	importMap := map[string]string{}
	var extPaths []string
	for p := range imports {
		if !strings.HasPrefix(p, "testdata/") {
			extPaths = append(extPaths, p)
		}
	}
	if len(extPaths) > 0 {
		sort.Strings(extPaths)
		pkgs, err := goList(dir, extPaths...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			for from, to := range p.ImportMap {
				importMap[from] = to
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("mptlint: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := &chainImporter{
		local: map[string]*types.Package{},
		base:  importer.ForCompiler(fset, "gc", lookup),
	}

	prog := &Program{Fset: fset, byPath: map[string]*Package{}}
	for _, p := range raw {
		tpkg, info, err := typecheck(fset, p.importPath, p.files, imp)
		if err != nil {
			return nil, fmt.Errorf("mptlint: type-checking %s: %w", p.dir, err)
		}
		imp.local[p.importPath] = tpkg
		pkg := &Package{
			ImportPath: p.importPath,
			Dir:        p.dir,
			Fset:       fset,
			Files:      p.files,
			Types:      tpkg,
			Info:       info,
			Target:     p.target,
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[p.importPath] = pkg
	}
	return prog, nil
}

// chainImporter resolves in-tree testdata packages from source-checked
// results first and everything else from export data.
type chainImporter struct {
	local map[string]*types.Package
	base  types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.base.Import(path)
}

// goList shells out to `go list -json -export -deps`, which both resolves
// the pattern set and compiles export data into the build cache — all
// local operations (this module has no external dependencies).
func goList(dir string, patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(outPipe)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("mptlint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("mptlint: go list failed: %v\n%s", err, strings.TrimSpace(stderr.String()))
	}
	return pkgs, nil
}

// listCache is the on-disk cache payload for goListCached.
type listCache struct {
	Key  string     `json:"key"`
	Pkgs []*listPkg `json:"pkgs"`
}

// goListCached wraps goList with the call-graph data cache. On a key hit
// it also verifies that every cached export-data file still exists (the
// build cache can be pruned underneath us); any miss falls through to a
// fresh `go list -export` run and rewrites the cache.
func goListCached(dir, cacheFile string, patterns ...string) ([]*listPkg, error) {
	if cacheFile == "" {
		return goList(dir, patterns...)
	}
	key, err := treeKey(dir, patterns)
	if err != nil {
		return goList(dir, patterns...)
	}
	if data, err := os.ReadFile(cacheFile); err == nil {
		var c listCache
		if json.Unmarshal(data, &c) == nil && c.Key == key && exportsExist(c.Pkgs) {
			return c.Pkgs, nil
		}
	}
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	if data, err := json.Marshal(listCache{Key: key, Pkgs: pkgs}); err == nil {
		if err := os.MkdirAll(filepath.Dir(cacheFile), 0o755); err == nil {
			_ = os.WriteFile(cacheFile, data, 0o644)
		}
	}
	return pkgs, nil
}

func exportsExist(pkgs []*listPkg) bool {
	for _, p := range pkgs {
		if p.Export != "" {
			if _, err := os.Stat(p.Export); err != nil {
				return false
			}
		}
	}
	return true
}

// treeKey hashes the load inputs: toolchain version, patterns, go.mod,
// and the (path, size, mtime) of every .go file under the module root.
func treeKey(dir string, patterns []string) (string, error) {
	root := dir
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return "", fmt.Errorf("mptlint: no go.mod above %s", dir)
		}
		root = parent
	}
	h := sha256.New()
	fmt.Fprintf(h, "go=%s patterns=%q\n", runtime.Version(), patterns)
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	h.Write(mod)
	err = filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || (strings.HasPrefix(name, ".") && p != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, p)
		fmt.Fprintf(h, "%s %d %d\n", filepath.ToSlash(rel), fi.Size(), fi.ModTime().UnixNano())
		return nil
	})
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// typecheck runs go/types over one package's parsed files with full
// object resolution recorded.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
