package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns (run from dir) and
// returns them ready for analysis. It works fully offline: syntax comes
// from go/parser and type information for dependencies comes from the
// compiler export data that `go list -export` materializes in the local
// build cache — no module downloads, unlike driving staticcheck via
// `go run`. Test files are not loaded; the invariants the suite encodes
// are properties of product code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	// Export data for every package in the dependency closure, keyed by
	// the resolved import path. The gc importer chases transitive
	// references through this table on demand.
	exports := map[string]string{}
	importMap := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("mptlint: no export data for %q (go list -export did not produce it)", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("mptlint: %s: %s", p.ImportPath, p.Error.Err)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tpkg, info, err := typecheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("mptlint: type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}

// LoadDir loads the single package rooted at dir — which need not be part
// of any `go list` pattern space (the linttest golden testdata lives in
// testdata/, which the go tool ignores). Imports are resolved to export
// data the same way Load does, by shelling out to `go list -export` for
// the import closure.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p != "unsafe" {
				imports[p] = true
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("mptlint: no Go files in %s", dir)
	}

	exports := map[string]string{}
	importMap := map[string]string{}
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pkgs, err := goList(dir, paths...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
			for from, to := range p.ImportMap {
				importMap[from] = to
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("mptlint: no export data for %q", path)
		}
		return os.Open(f)
	}
	path := "testdata/" + filepath.Base(dir)
	tpkg, info, err := typecheck(fset, path, files, importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		return nil, fmt.Errorf("mptlint: type-checking %s: %w", dir, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// goList shells out to `go list -json -export -deps`, which both resolves
// the pattern set and compiles export data into the build cache — all
// local operations (this module has no external dependencies).
func goList(dir string, patterns ...string) ([]*listPkg, error) {
	args := append([]string{"list", "-json", "-export", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(outPipe)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("mptlint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("mptlint: go list failed: %v\n%s", err, strings.TrimSpace(stderr.String()))
	}
	return pkgs, nil
}

// typecheck runs go/types over one package's parsed files with full
// object resolution recorded.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}
