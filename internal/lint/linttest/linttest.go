// Package linttest is the golden-test harness for the mptlint analyzers —
// an offline equivalent of golang.org/x/tools/go/analysis/analysistest.
// A testdata package annotates the lines where diagnostics are expected:
//
//	for k := range m {
//		sum += vals[k] // want `float accumulation inside map iteration`
//	}
//
// Each `// want` comment carries one or more backquoted or quoted regular
// expressions; every expectation must be matched by exactly one diagnostic
// on that line and every diagnostic must match an expectation. Diagnostics
// are compared *after* //nolint suppression, so testdata can also pin the
// suppression semantics (including the mandatory-reason rule).
package linttest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"testing"

	"mptwino/internal/lint"
)

// wantRe captures the expectation list after a "// want" marker.
var (
	wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")
	argRe  = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the package at dir (plus any subdirectory packages, which
// become module-local dependencies of the fixture — the cross-package
// allocflow cases live there), applies analyzers (plus //nolint
// filtering with stale-suppression detection scoped to the analyzers
// that ran), and compares the findings against the package's // want
// annotations.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	prog, err := lint.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		ran = append(ran, a.Name)
	}
	var files []*ast.File
	for _, pkg := range prog.Targets() {
		files = append(files, pkg.Files...)
	}
	diags := lint.ApplyNolint(prog.Fset, files, lint.Analyze(prog, analyzers), ran)

	expects, err := parseWants(prog.Fset, files)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.hit || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

// parseWants extracts the // want expectations from every comment in files.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				args := argRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s: want comment with no quoted pattern", pos)
				}
				for _, a := range args {
					pat := a[1]
					if pat == "" && a[2] != "" {
						// Double-quoted form: unquote escapes first.
						uq, err := strconv.Unquote(`"` + a[2] + `"`)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want pattern: %v", pos, err)
						}
						pat = uq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					out = append(out, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  pat,
					})
				}
			}
		}
	}
	return out, nil
}
