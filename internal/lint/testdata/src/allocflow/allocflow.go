// Package allocflow is the golden testdata for the interprocedural
// allocflow analyzer: allocation constructs (and unanalyzable calls)
// reachable on call paths from noalloc roots. Reports land at the call
// site inside the root — the actionable frame. Depth-0 constructs in the
// root itself are the syntactic noalloc analyzer's job and deliberately
// absent here.
package allocflow

import (
	"strconv"

	"testdata/allocflow/helpers"
)

// grow is an allocating local helper one hop from the roots.
func grow(xs []float64) []float64 {
	ys := make([]float64, 2*len(xs))
	copy(ys, xs)
	return ys
}

// chainA -> chainB is a two-hop allocating path.
func chainA(xs []float64) []float64 { return chainB(xs) }

func chainB(xs []float64) []float64 {
	return append(xs, 0)
}

// cleanHelper is allocation-free.
func cleanHelper(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// localHopInto calls an allocating helper in the same package.
func localHopInto(dst, src []float64) {
	tmp := grow(src) // want `localHopInto: allocation reachable on a noalloc path via grow: make allocates`
	copy(dst, tmp)
}

// twoHopInto reaches the allocation through an intermediate frame; the
// chain in the message names both hops.
func twoHopInto(dst, src []float64) {
	tmp := chainA(src) // want `twoHopInto: allocation reachable on a noalloc path via chainA → chainB: append allocates`
	copy(dst, tmp)
}

// crossPkgInto reaches allocations in another package — the case a
// per-function AST walk can never see.
func crossPkgInto(dst, src []float64) {
	tmp := helpers.Scale(src, 2) // want `crossPkgInto: allocation reachable on a noalloc path via Scale: make allocates`
	copy(dst, tmp)
	deep := helpers.Deep(src) // want `crossPkgInto: allocation reachable on a noalloc path via Deep → deeper: append allocates`
	copy(dst, deep)
}

// cleanInto only calls allocation-free helpers (local and cross-package).
func cleanInto(dst, src []float64) {
	helpers.ScaleInPlace(src, 2)
	dst[0] = cleanHelper(src)
}

// dynamicInto calls through a function-valued parameter: allocflow cannot
// see the callee, which is exactly how an allocation sneaks in.
func dynamicInto(dst, src []float64, f func(float64) float64) {
	for i := range src {
		dst[i] = f(src[i]) // want `dynamicInto: call through function value "f" on a noalloc path`
	}
}

// externalInto calls an out-of-module function that is not on the
// sanctioned-callee list: allocflow has no body to analyze, so the call
// itself is the finding.
func externalInto(dst []float64) {
	n := len(strconv.Itoa(len(dst))) // want `externalInto: calls strconv.Itoa on a noalloc path; its body is outside the program`
	dst[0] = float64(n)
}

// coldPathInto only reaches the allocating helper inside a panic guard:
// a shape-check error path, never executed at steady state.
func coldPathInto(dst, src []float64) {
	if len(dst) != len(src) {
		_ = grow(src)
		panic("shape mismatch")
	}
	copy(dst, src)
}

// annotatedRoot is a root via the //mptlint:noalloc directive rather than
// the *Into suffix.
//
//mptlint:noalloc
func annotatedRoot(dst, src []float64) {
	tmp := grow(src) // want `annotatedRoot: allocation reachable on a noalloc path via grow: make allocates`
	copy(dst, tmp)
}

// notARoot has no suffix and no directive: free to allocate via helpers.
func notARoot(xs []float64) []float64 {
	return grow(xs)
}

// suppressedInto documents an accepted one-off with a reasoned directive.
func suppressedInto(dst, src []float64) {
	tmp := grow(src) //nolint:allocflow -- testdata: cold init path, called once before the steady state
	copy(dst, tmp)
}
