// Package helpers is the cross-package half of the allocflow golden
// fixture: callees that live one package away from the noalloc root, so
// the suite pins that the call graph sees through package boundaries.
package helpers

// Scale allocates its result — calling it from a noalloc root is a
// transitive violation only allocflow can see.
func Scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v * f
	}
	return out
}

// ScaleInPlace is allocation-free: fine to call from a root.
func ScaleInPlace(xs []float64, f float64) {
	for i := range xs {
		xs[i] *= f
	}
}

// Deep allocates two hops down from the exported entry point.
func Deep(xs []float64) []float64 { return deeper(xs) }

func deeper(xs []float64) []float64 {
	return append([]float64(nil), xs...)
}
