// Package mapiter is the golden testdata for the mapiter analyzer: map
// iteration whose order leaks into results.
package mapiter

import "sort"

func appendUnderMapRange(m map[int]float64) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `append inside map iteration`
	}
	return keys
}

// Collect-then-sort launders the order away and is accepted.
func appendThenSort(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation inside map iteration`
	}
	return sum
}

func floatAccumSpelledOut(m map[string]float32) float32 {
	var sum float32
	for _, v := range m {
		sum = sum + v // want `float accumulation inside map iteration`
	}
	return sum
}

// Integer accumulation is associative and commutative: not flagged.
func intAccum(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// Writes into a slot keyed by the map key are per-key: not flagged.
func perKeyWrite(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] += v
	}
}

func channelSend(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `channel send inside map iteration`
	}
}

// Ranging over a slice is ordered: nothing in this body is flagged.
func sliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

// A reasoned suppression is honored…
func suppressed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //nolint:mapiter,floatorder -- testdata: exercising the suppression path itself
	}
	return sum
}

// …but a bare directive is not: it reports, and does not suppress.
func reasonless(m map[string]float64) []string {
	var keys []string
	for k := range m {
		//nolint:mapiter // want `nolint directive is missing its mandatory reason`
		keys = append(keys, k) // want `append inside map iteration`
	}
	return keys
}
