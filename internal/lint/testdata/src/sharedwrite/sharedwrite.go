// Package sharedwrite is the golden testdata for the flow-sensitive
// sharedwrite analyzer: writes to captured variables (or aliases of them)
// inside parallel closures that are not provably partitioned by the
// worker/item index.
package sharedwrite

import "mptwino/internal/parallel"

// Captured scalar accumulator: the classic cross-worker race — the old
// floatorder closure case, now owned by sharedwrite.
func sharedScalar(xs []float64) float64 {
	var sum float64
	parallel.ForEach(0, len(xs), func(i int) {
		sum += xs[i] // want `captured "sum" is accumulated inside a parallel.ForEach closure`
	})
	return sum
}

// sharedwrite generalizes beyond floats: an integer counter races the
// same way (the VALUE is schedule-independent, but the write itself is a
// data race the determinism contract bans).
func sharedIntCounter(xs []int) int {
	var n int
	parallel.ForEach(0, len(xs), func(i int) {
		n += xs[i] // want `captured "n" is accumulated inside a parallel.ForEach closure`
	})
	return n
}

// Unindexed scalar write (not an accumulation): last writer wins by
// schedule.
func sharedFlag(xs []int) bool {
	var sawNeg bool
	parallel.ForEach(0, len(xs), func(i int) {
		if xs[i] < 0 {
			sawNeg = true // want `write to captured "sawNeg" inside a parallel.ForEach closure is not provably partitioned`
		}
	})
	return sawNeg
}

// Per-item slots indexed by the closure parameter: the sanctioned idiom.
func perItemSlots(xs, out []float64) {
	parallel.ForEach(0, len(xs), func(i int) {
		out[i] = xs[i] * 2
	})
}

// Per-worker partials via ForEachWorker: also sanctioned — the
// accumulator is captured but indexed by the worker parameter.
func perWorkerPartials(xs []float64, workers int) float64 {
	partials := make([]float64, workers)
	parallel.ForEachWorker(workers, len(xs), func(worker, i int) {
		partials[worker] += xs[i]
	})
	var sum float64
	for _, v := range partials {
		sum += v
	}
	return sum
}

// A captured slot indexed by a constant is still shared state.
func constantSlot(xs []float64) float64 {
	partials := make([]float64, 1)
	parallel.ForEach(0, len(xs), func(i int) {
		partials[0] += xs[i] // want `captured "partials" is accumulated inside a parallel.ForEach closure`
	})
	return partials[0]
}

// Flow-sensitivity: an offset computed from the item index is derived, so
// writes through it are partitioned — including the loop-carried
// `off += 1` form the old syntactic check could not follow.
func derivedOffset(dst, src []float64, stride int) {
	parallel.ForEach(0, len(src)/stride, func(i int) {
		off := i * stride
		for k := 0; k < stride; k++ {
			dst[off] = src[off] * 2
			off += 1
		}
	})
}

// Flow-sensitivity, negative direction: a variable seeded from the item
// index but REASSIGNED from captured state is no longer derived at the
// write point.
func reassignedIndex(dst, src []float64, pick int) {
	parallel.ForEach(0, len(src), func(i int) {
		j := i
		j = pick
		dst[j] = src[i] // want `write to captured "dst" inside a parallel.ForEach closure is not provably partitioned`
	})
}

// Alias layer: a row carved out of captured storage with parameter-derived
// bounds is worker-private; writes through it are fine.
func partitionedRow(dst, src []float64, w int) {
	parallel.ForEach(0, len(src)/w, func(i int) {
		row := dst[i*w : (i+1)*w]
		for k := range row {
			row[k] = src[i*w+k]
		}
	})
}

// Alias layer, negative direction: a plain alias of the whole captured
// slice overlaps every worker's view.
func wholeSliceAlias(dst, src []float64) {
	parallel.ForEach(0, len(src), func(i int) {
		q := dst
		q[0] = src[i] // want `write to "q", which aliases captured state inside a parallel.ForEach closure`
	})
}

// Ranging over a captured slice selects elements by the RANGE index, not
// the worker index, so the value alias stays shared.
func rangeRowAlias(grid [][]float64, src []float64) {
	parallel.ForEach(0, len(src), func(i int) {
		for _, row := range grid {
			row[0] += src[i] // want `"row", which aliases captured state is accumulated inside a parallel.ForEach closure`
		}
	})
}

// copy writes through its first argument: fine when the destination
// window is parameter-derived, flagged when it is the whole captured
// slice.
func copyTargets(dst, src []float64, w int) {
	parallel.ForEach(0, len(src)/w, func(i int) {
		copy(dst[i*w:], src[i*w:(i+1)*w])
	})
	parallel.ForEach(0, len(src), func(i int) {
		copy(dst, src) // want `write to captured "dst" inside a parallel.ForEach closure is not provably partitioned`
	})
}

// Rebinding a closure-local alias variable is not a write to shared
// storage (the write below through the rebound alias is partitioned).
func aliasRebinding(dst, src []float64, w int) {
	parallel.ForEach(0, len(src)/w, func(i int) {
		var row []float64
		row = dst[i*w : (i+1)*w]
		row[0] = src[i*w]
	})
}

// Locals declared inside the closure are per-item scratch.
func localScratch(xs, ys []float64) {
	parallel.ForEach(0, len(xs), func(i int) {
		var acc float64
		acc += xs[i]
		acc += 1
		ys[i] = acc
	})
}

func suppressedShared(xs []float64) float64 {
	var sum float64
	parallel.ForEach(1, len(xs), func(i int) {
		sum += xs[i] //nolint:sharedwrite -- testdata: single-worker call, fold order is the item order by construction
	})
	return sum
}
