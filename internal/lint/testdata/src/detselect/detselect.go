// Package detselect is the golden testdata for the detselect analyzer:
// select statements with ready-races and channel fan-in/out inside
// parallel closures.
package detselect

import "mptwino/internal/parallel"

// Two ready cases: the runtime picks uniformly at random. The report
// lands on the select keyword.
func twoCaseSelect(a, b chan int) int {
	select { // want `select with 2 communication cases`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// A single comm case with a default is a guarded (non-blocking) receive:
// deterministic given the channel state, allowed.
func guardedReceive(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

// A bare single-case select is just a blocking receive.
func blockingReceive(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}

// Channel operations inside parallel closures: unordered fan-in/out.
func channelFanIn(xs []int, results chan int) {
	parallel.ForEach(0, len(xs), func(i int) {
		results <- xs[i] * 2 // want `channel send inside a parallel closure`
	})
}

func channelSteal(work chan int, out []int) {
	parallel.ForEach(0, len(out), func(i int) {
		out[i] = <-work // want `channel receive inside a parallel closure`
	})
}

func channelRange(work chan int, sink func(int)) {
	parallel.ForEach(0, 4, func(i int) {
		for v := range work { // want `range over a channel inside a parallel closure`
			sink(v)
		}
	})
}

func channelClose(done chan struct{}, xs []int) {
	parallel.ForEach(0, len(xs), func(i int) {
		if xs[i] == 0 {
			close(done) // want `close of a channel inside a parallel closure`
		}
	})
}

// Ranging over a slice inside a parallel closure is fine — only channel
// ranges are schedule-dependent.
func sliceRange(rows [][]int, out []int) {
	parallel.ForEach(0, len(rows), func(i int) {
		s := 0
		for _, v := range rows[i] {
			s += v
		}
		out[i] = s
	})
}

// Channel use OUTSIDE a parallel closure is the caller's business (a
// plain pipeline stage); only the multi-ready select is banned there.
func plainSend(c chan int, v int) {
	c <- v
}

func suppressedSelect(a, b chan int) int {
	//nolint:detselect -- testdata: both channels are closed before this runs; both arms yield the zero value
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
