// Package telemetry is the golden testdata for the notime analyzer's
// telemetry rule: a package named "telemetry" may not import the time
// package at all — trace timestamps are simulated cycles. (The analyzer
// keys on the package NAME, so this testdata package emulates the real
// internal/telemetry even though it loads under a testdata/ import path.)
package telemetry

import (
	"time" // want `time import in telemetry`
)

// Cycles is a cycle-domain timestamp; the wall-clock conversion below is
// exactly the kind of code the rule exists to keep out.
type Cycles int64

func wallStamp() Cycles {
	t := time.Now() // want `time.Now outside bench tooling`
	return Cycles(t.UnixNano())
}

var _ = wallStamp
