// Package floatorder is the golden testdata for the floatorder analyzer:
// float folds over map iteration order. The parallel-closure half of the
// invariant moved to the sharedwrite analyzer (see testdata/src/sharedwrite).
package floatorder

// A float fold over map iteration order: the accumulated bits depend on
// which key comes first, and map order is deliberately randomized.
func mapFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float fold over map iteration order`
	}
	return sum
}

// The x = x + v spelling is the same fold.
func mapFoldExplicit(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `float fold over map iteration order`
	}
	return sum
}

// Per-key slots keyed by the range variable are order-independent.
func mapPerKey(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] += v
	}
}

// Integer accumulation commutes exactly; not a float-order issue.
func mapIntFold(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func suppressedFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//nolint:floatorder,mapiter -- testdata: result is only compared against a tolerance, not bit-pinned
		sum += v
	}
	return sum
}
