// Package floatorder is the golden testdata for the floatorder analyzer:
// float folds whose accumulation order is schedule- or map-dependent.
package floatorder

import "mptwino/internal/parallel"

// Captured scalar accumulator inside a parallel closure: the classic
// cross-worker race whose sum bits depend on arrival order.
func sharedScalar(xs []float64) float64 {
	var sum float64
	parallel.ForEach(0, len(xs), func(i int) {
		sum += xs[i] // want `captured float accumulator "sum" inside a parallel closure`
	})
	return sum
}

// Per-item slots indexed by the closure parameter are the sanctioned
// idiom: each item writes its own slot, the caller folds in index order.
func perItemSlots(xs []float64) float64 {
	out := make([]float64, len(xs))
	parallel.ForEach(0, len(xs), func(i int) {
		out[i] = xs[i] * 2
	})
	var sum float64
	for _, v := range out {
		sum += v
	}
	return sum
}

// Per-worker partials via ForEachWorker: also the sanctioned idiom, even
// though the accumulator is captured — it is indexed by the worker param.
func perWorkerPartials(xs []float64, workers int) float64 {
	partials := make([]float64, workers)
	parallel.ForEachWorker(workers, len(xs), func(worker, i int) {
		partials[worker] += xs[i]
	})
	var sum float64
	for _, v := range partials {
		sum += v
	}
	return sum
}

// A captured accumulator indexed by a constant is still shared state.
func constantSlot(xs []float64) float64 {
	partials := make([]float64, 1)
	parallel.ForEach(0, len(xs), func(i int) {
		partials[0] += xs[i] // want `captured float accumulator "partials" inside a parallel closure`
	})
	return partials[0]
}

// Locals declared inside the closure are per-item scratch: not flagged.
func localScratch(xs, ys []float64) {
	parallel.ForEach(0, len(xs), func(i int) {
		var acc float64
		acc += xs[i]
		acc += 1
		ys[i] = acc
	})
}

// Integer accumulation is order-independent; floatorder leaves it to the
// race detector.
func sharedIntCounter(xs []int) int {
	var n int
	parallel.ForEach(0, len(xs), func(i int) {
		n += xs[i] // racy, but not a float-order issue
	})
	return n
}

// The map half of the invariant: a float fold over map iteration order.
func mapFold(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float fold over map iteration order`
	}
	return sum
}

// Per-key slots keyed by the range variable are order-independent.
func mapPerKey(m map[int]float64, out []float64) {
	for k, v := range m {
		out[k] += v
	}
}

func suppressedShared(xs []float64) float64 {
	var sum float64
	parallel.ForEach(1, len(xs), func(i int) {
		sum += xs[i] //nolint:floatorder -- testdata: single-worker call, order is the item order by construction
	})
	return sum
}
