// Package nogoroutine is the golden testdata for the nogoroutine
// analyzer: raw fan-out primitives outside internal/parallel. (The
// errgroup-import case cannot appear here — the module has no network and
// no x/sync — so it is pinned by a white-box unit test instead.)
package nogoroutine

import (
	"sync"

	"mptwino/internal/parallel"
)

func rawGoStmt(ch chan int) {
	go func() { ch <- 1 }() // want `raw go statement outside internal/parallel`
}

func waitGroupVar() {
	var wg sync.WaitGroup // want `sync.WaitGroup outside internal/parallel`
	wg.Wait()
}

type holder struct {
	wg sync.WaitGroup // want `sync.WaitGroup outside internal/parallel`
}

// Calling into the sanctioned pool is exactly what the analyzer wants to
// see: none of these call sites are flagged.
func sanctionedFanOut(xs []float64) []float64 {
	out := make([]float64, len(xs))
	parallel.ForEach(0, len(xs), func(i int) {
		out[i] = xs[i] * 2
	})
	parallel.ForEachWorker(0, len(xs), func(worker, i int) {
		out[i] = xs[i] * 2
	})
	return parallel.Map(0, len(xs), func(i int) float64 { return xs[i] })
}

// Other sync primitives (Mutex, Once) are fine — the invariant is about
// fan-out, not mutual exclusion.
func mutexIsFine() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}

func suppressedSpawn(done chan struct{}) {
	//nolint:nogoroutine -- testdata: pretend this is a sanctioned long-lived daemon
	go func() { close(done) }()
}
