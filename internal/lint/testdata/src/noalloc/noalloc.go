// Package noalloc is the golden testdata for the noalloc analyzer:
// allocation constructs inside steady-state (*Into / annotated) kernels.
package noalloc

import (
	"fmt"

	"mptwino/internal/parallel"
	"mptwino/internal/telemetry"
)

func scaleInto(dst, src []float64, k float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("shape mismatch %d != %d", len(dst), len(src))) // cold panic guard: allowed
	}
	for i, v := range src {
		dst[i] = k * v
	}
}

func badMakeInto(dst []float64, src []float64) {
	tmp := make([]float64, len(src)) // want `make allocates`
	copy(tmp, src)
	copy(dst, tmp)
}

func badAppendInto(dst *[]float64, v float64) {
	*dst = append(*dst, v) // want `append may grow its backing array`
}

func badNewInto(dst *float64) {
	p := new(float64) // want `new allocates`
	*dst = *p
}

type vec struct{ x, y float64 }

func badLiteralsInto(dst []float64) {
	buf := []float64{1, 2, 3} // want `slice literal allocates`
	m := map[int]int{1: 2}    // want `map literal allocates`
	v := &vec{1, 2}           // want `&composite literal escapes`
	dst[0] = buf[0] + float64(m[1]) + v.x
}

// A plain struct value literal stays on the stack: not flagged.
func valueLiteralInto(dst []float64) {
	v := vec{1, 2}
	dst[0] = v.x + v.y
}

func badClosureInto(dst, src []float64) {
	add := func(i int) { dst[i] += src[i] } // want `func literal allocates its closure`
	for i := range src {
		add(i)
	}
}

// The pool fan-out closure is the sanctioned exception: one amortized
// allocation per kernel call, closure-free on the single-worker branch.
func parallelClosureInto(dst, src []float64) {
	parallel.ForEachWorker(0, len(src), func(worker, i int) {
		dst[i] = 2 * src[i]
	})
}

// Functions not named *Into and not annotated are out of scope.
func builderHelper(n int) []float64 {
	return make([]float64, n)
}

// The //mptlint:noalloc directive opts a function in by annotation even
// though its name does not end in Into.
//
//mptlint:noalloc
func annotatedKernel(dst []float64) {
	tmp := make([]float64, 4) // want `make allocates`
	copy(dst, tmp)
}

func suppressedInto(dst []float64) {
	tmp := make([]float64, 1) //nolint:noalloc -- testdata: first-call growth, amortized away at steady state
	copy(dst, tmp)
}

func badSprintfInto(dst []byte, x int) {
	s := fmt.Sprintf("%d", x) // want `fmt.Sprintf allocates`
	copy(dst, s)
}

// Telemetry's nil-safe atomic updates are the sanctioned way to count work
// inside a kernel: handles resolved by the caller, bumped in the loop.
func instrumentedInto(dst, src []float64, flops *telemetry.Counter, occ *telemetry.Gauge, util *telemetry.Histogram) {
	for i, v := range src {
		dst[i] = 2 * v
	}
	flops.Add(int64(len(src)))
	flops.Inc()
	occ.Set(1)
	occ.Max(int64(len(src)))
	util.Observe(0.5)
}

// Everything else in the telemetry API locks or allocates and must stay
// out of kernel scope: registry lookups, tracer emission.
func badTelemetryLookupInto(dst []float64, reg *telemetry.Registry, tr *telemetry.Tracer) {
	reg.Counter("flops").Add(1)                // want `telemetry.Counter in a kernel`
	reg.Gauge("occ").Set(2)                    // want `telemetry.Gauge in a kernel`
	tr.Instant(0, 0, "tick", "kernel", 1, nil) // want `telemetry.Instant in a kernel`
	dst[0] = 1
}
