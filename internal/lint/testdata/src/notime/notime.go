// Package notime is the golden testdata for the notime analyzer:
// wall-clock and ambient randomness outside the sanctioned sources.
// (This package's path is not on the exempt list, so everything fires;
// the rng.go / bench / trace exemptions are exercised by the repo-wide
// run in cmd/mptlint, which must come back clean.)
package notime

import (
	"math/rand" // want `math/rand outside internal/tensor/rng.go`
	"time"
)

func wallClock() int64 {
	t0 := time.Now() // want `time.Now outside bench tooling`
	_ = rand.Int()
	d := time.Since(t0) // want `time.Since outside bench tooling`
	return int64(d)
}

// Pure time arithmetic on explicit values is deterministic: not flagged.
func pureDurations(cycles int64, hz int64) time.Duration {
	return time.Duration(cycles * int64(time.Second) / hz)
}

func suppressedClock() time.Time {
	return time.Now() //nolint:notime -- testdata: progress logging only, value never feeds a simulated quantity
}
