// Package nolintstale is the golden testdata for the suppression layer
// itself (run with only the mapiter analyzer): reasons are mandatory,
// suppression is scoped to line+analyzer, and a directive that suppresses
// nothing its named (and ran) analyzer could have produced is stale.
package nolintstale

// A live suppression: the directive covers a real mapiter finding.
func liveSuppression(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) //nolint:mapiter -- testdata: order is laundered by the caller's sort
	}
	return out
}

// A stale suppression: nothing on this line triggers mapiter.
func staleSuppression(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v //nolint:mapiter -- testdata: slices iterate in order // want `stale suppression: nolint:mapiter matches no mapiter finding on this line`
	}
	return s
}

// A directive naming an analyzer that did NOT run is not checkable; the
// suite runs mapiter only, so this noalloc directive is left alone.
func uncheckableSuppression(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v //nolint:noalloc -- testdata: not checkable in a mapiter-only run
	}
	return s
}

// A directive without the mandatory reason is itself reported, and does
// not suppress.
func missingReason(m map[string]int) []int {
	var out []int
	for _, v := range m {
		//nolint:mapiter // want `nolint directive is missing its mandatory reason`
		out = append(out, v) // want `append inside map iteration`
	}
	return out
}

// Multi-name directives are tracked per name: mapiter hits, but the
// floatorder half is stale — reported only when floatorder also runs,
// which this suite does, so both behaviors pin here.
func perNameTracking(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) //nolint:mapiter,floatorder -- testdata: int append, no float fold // want `stale suppression: nolint:floatorder matches no floatorder finding on this line`
	}
	return out
}
