package lint

// Control-flow and dataflow engine for the flow-sensitive analyzer tier
// (DESIGN.md §14). Three layers, each deliberately small and offline:
//
//   - buildCFG: basic blocks over one function (or closure) body, with
//     edges for if/for/range/switch/type-switch/select, break/continue
//     (labeled and not), fallthrough, return, and panic terminators;
//   - flowInfo: reaching definitions over the CFG — the classic gen/kill
//     bitvector worklist fixpoint, at per-statement granularity;
//   - derivation: a "must be derived from these seed objects" analysis on
//     top of reaching definitions (greatest fixpoint, so loop-carried
//     updates like `i += stride` stay derived), which is how sharedwrite
//     proves a write is partitioned by the worker/item index.
//
// The engine never descends into nested *ast.FuncLit bodies: a closure is
// a separate function with its own CFG; to the enclosing body it is a
// single opaque expression.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// A block is one basic block: a maximal straight-line sequence of
// statement-level nodes with edges only at the end.
type block struct {
	index int
	nodes []ast.Node // statements/clauses in execution order
	succs []*block
}

// A cfg is the control-flow graph of one function body. entry has no
// predecessors; exit collects every return/panic/fallthrough-to-end path.
type cfg struct {
	blocks []*block
	entry  *block
	exit   *block
}

func (c *cfg) newBlock() *block {
	b := &block{index: len(c.blocks)}
	c.blocks = append(c.blocks, b)
	return b
}

func edge(from, to *block) { from.succs = append(from.succs, to) }

// breakFrame is one enclosing breakable construct (for/range/switch/select).
type breakFrame struct {
	label      string
	breakTo    *block
	continueTo *block // nil for switch/select
}

type cfgBuilder struct {
	cfg    *cfg
	cur    *block
	frames []breakFrame
	label  string // pending label for the next loop/switch statement
}

// buildCFG constructs the CFG of body. goto is handled conservatively
// (edge to exit); everything else is modeled precisely.
func buildCFG(body *ast.BlockStmt) *cfg {
	c := &cfg{}
	b := &cfgBuilder{cfg: c}
	// The entry block stays empty: parameter pseudo-defs are generated
	// there, so they reach uses in the first statement block through the
	// ordinary IN/OUT propagation.
	c.entry = c.newBlock()
	c.exit = c.newBlock()
	first := c.newBlock()
	edge(c.entry, first)
	b.cur = first
	b.stmtList(body.List)
	edge(b.cur, c.exit)
	return c
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// unreachableAfterJump parks the builder on a fresh predecessor-less block
// so statements after an unconditional jump do not leak into live paths.
func (b *cfgBuilder) unreachableAfterJump() { b.cur = b.cfg.newBlock() }

func (b *cfgBuilder) frameFor(label string, wantContinue bool) *breakFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if wantContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.label = s.Label.Name
		b.stmt(s.Stmt)
		b.label = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s.Cond)
		cond := b.cur
		join := b.cfg.newBlock()
		then := b.cfg.newBlock()
		edge(cond, then)
		b.cur = then
		b.stmtList(s.Body.List)
		edge(b.cur, join)
		if s.Else != nil {
			els := b.cfg.newBlock()
			edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			edge(b.cur, join)
		} else {
			edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.cfg.newBlock()
		body := b.cfg.newBlock()
		exit := b.cfg.newBlock()
		edge(b.cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
			edge(head, exit)
		}
		edge(head, body)
		post := head
		if s.Post != nil {
			post = b.cfg.newBlock()
			b.cur = post
			b.stmt(s.Post)
			edge(post, head)
		}
		b.frames = append(b.frames, breakFrame{label: label, breakTo: exit, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		edge(b.cur, post)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.cfg.newBlock()
		body := b.cfg.newBlock()
		exit := b.cfg.newBlock()
		edge(b.cur, head)
		head.nodes = append(head.nodes, s) // range defs (key/value) + use of s.X
		edge(head, body)
		edge(head, exit)
		b.frames = append(b.frames, breakFrame{label: label, breakTo: exit, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.nodes = append(b.cur.nodes, s.Tag)
		}
		b.switchClauses(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchClauses(label, s.Body.List, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		join := b.cfg.newBlock()
		b.frames = append(b.frames, breakFrame{label: label, breakTo: join})
		hasDefault := false
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			cb := b.cfg.newBlock()
			edge(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(cc.Body)
			edge(b.cur, join)
		}
		_ = hasDefault // a blocking select always takes some case; no head→join edge
		if len(s.Body.List) == 0 {
			edge(head, b.cfg.exit) // select{} blocks forever
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = join

	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		edge(b.cur, b.cfg.exit)
		b.unreachableAfterJump()

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if f := b.frameFor(labelName(s), false); f != nil {
				edge(b.cur, f.breakTo)
			} else {
				edge(b.cur, b.cfg.exit)
			}
			b.unreachableAfterJump()
		case token.CONTINUE:
			if f := b.frameFor(labelName(s), true); f != nil {
				edge(b.cur, f.continueTo)
			} else {
				edge(b.cur, b.cfg.exit)
			}
			b.unreachableAfterJump()
		case token.GOTO:
			edge(b.cur, b.cfg.exit) // conservative: goto escapes the model
			b.unreachableAfterJump()
		case token.FALLTHROUGH:
			// Handled structurally by switchClauses.
		}

	case *ast.ExprStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				edge(b.cur, b.cfg.exit)
				b.unreachableAfterJump()
			}
		}

	case nil:
		// Empty else / missing clause.

	default:
		// Assign, IncDec, Decl, Send, Defer, Go, Empty: straight-line.
		b.cur.nodes = append(b.cur.nodes, s)
	}
}

func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func labelName(s *ast.BranchStmt) string {
	if s.Label == nil {
		return ""
	}
	return s.Label.Name
}

// switchClauses wires the case bodies of a switch/type-switch: every case
// is a successor of the dispatch block; fallthrough chains a case body to
// the start of the next one; a missing default adds a dispatch→join edge.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, assign ast.Stmt) {
	head := b.cur
	join := b.cfg.newBlock()
	b.frames = append(b.frames, breakFrame{label: label, breakTo: join})
	starts := make([]*block, len(clauses))
	for i := range clauses {
		starts[i] = b.cfg.newBlock()
	}
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		edge(head, starts[i])
		b.cur = starts[i]
		if assign != nil {
			b.cur.nodes = append(b.cur.nodes, assign)
		}
		for _, e := range cc.List {
			b.cur.nodes = append(b.cur.nodes, e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				continue
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(clauses) {
			edge(b.cur, starts[i+1])
			b.unreachableAfterJump()
		}
		edge(b.cur, join)
	}
	if !hasDefault {
		edge(head, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = join
}

// ---- reaching definitions ----

// A def is one definition event of a variable: an assignment, :=, var
// decl, ++/--, range key/value binding, or a function/closure parameter
// (a pseudo-def at entry).
type def struct {
	id  int
	obj types.Object
	at  ast.Node   // the defining statement (nil for parameters)
	rhs []ast.Expr // expressions whose value flows into obj at this def
}

type nodeLoc struct {
	blk *block
	idx int
}

// flowInfo is the reaching-definitions solution for one function body.
type flowInfo struct {
	cfg    *cfg
	info   *types.Info
	defs   []*def
	defsOf map[types.Object][]*def
	in     map[*block]bitset
	loc    map[ast.Node]nodeLoc // every node (and descendants) → block position
}

// analyzeFlow builds the CFG of body and solves reaching definitions.
// params are the function's parameter objects (pseudo-defined at entry).
// Nested func literals are opaque: their bodies belong to their own flow.
func analyzeFlow(info *types.Info, body *ast.BlockStmt, params []types.Object) *flowInfo {
	f := &flowInfo{
		cfg:    buildCFG(body),
		info:   info,
		defsOf: map[types.Object][]*def{},
		loc:    map[ast.Node]nodeLoc{},
	}
	for _, p := range params {
		f.addDef(p, nil, nil)
	}
	for _, b := range f.cfg.blocks {
		for i, n := range b.nodes {
			l := nodeLoc{b, i}
			ast.Inspect(n, func(m ast.Node) bool {
				if m == nil {
					return false
				}
				if _, ok := m.(*ast.FuncLit); ok && m != n {
					f.loc[m] = l
					return false
				}
				f.loc[m] = l
				return true
			})
			f.collectDefs(n)
		}
	}
	f.solve()
	return f
}

func (f *flowInfo) addDef(obj types.Object, at ast.Node, rhs []ast.Expr) *def {
	d := &def{id: len(f.defs), obj: obj, at: at, rhs: rhs}
	f.defs = append(f.defs, d)
	f.defsOf[obj] = append(f.defsOf[obj], d)
	return d
}

func (f *flowInfo) identObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := f.info.Defs[id]; o != nil {
		return o
	}
	return f.info.Uses[id]
}

// collectDefs records the definition events inside one block node. Writes
// through pointers/indices (p[i] = v) are not defs of p — they mutate the
// referent, which is the aliasing layer's concern, not reaching-defs'.
func (f *flowInfo) collectDefs(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			for i, lhs := range n.Lhs {
				obj := f.identObj(lhs)
				if obj == nil {
					continue
				}
				var rhs []ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = []ast.Expr{n.Rhs[i]}
				} else {
					rhs = n.Rhs // tuple assignment: the whole call/comma flows in
				}
				f.addDef(obj, n, rhs)
			}
		} else if len(n.Lhs) == 1 { // op-assign: x op= v reads x and v
			if obj := f.identObj(n.Lhs[0]); obj != nil {
				f.addDef(obj, n, []ast.Expr{n.Lhs[0], n.Rhs[0]})
			}
		}
	case *ast.IncDecStmt:
		if obj := f.identObj(n.X); obj != nil {
			f.addDef(obj, n, []ast.Expr{n.X})
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := f.info.Defs[name]
					if obj == nil {
						continue
					}
					var rhs []ast.Expr
					if i < len(vs.Values) {
						rhs = []ast.Expr{vs.Values[i]}
					} else if len(vs.Values) == 1 {
						rhs = vs.Values
					}
					f.addDef(obj, n, rhs)
				}
			}
		}
	case *ast.RangeStmt:
		for _, v := range []ast.Expr{n.Key, n.Value} {
			if v == nil {
				continue
			}
			if obj := f.identObj(v); obj != nil {
				f.addDef(obj, n, []ast.Expr{n.X})
			}
		}
	}
}

// solve runs the worklist fixpoint for reaching definitions.
func (f *flowInfo) solve() {
	nwords := (len(f.defs) + 63) / 64
	gen := map[*block]bitset{}
	kill := map[*block]bitset{}
	out := map[*block]bitset{}
	f.in = map[*block]bitset{}
	for _, b := range f.cfg.blocks {
		g, k := newBitset(nwords), newBitset(nwords)
		for _, n := range b.nodes {
			f.applyNode(n, g, k)
		}
		gen[b], kill[b] = g, k
		f.in[b] = newBitset(nwords)
		out[b] = newBitset(nwords)
	}
	// Parameters reach from entry.
	for _, d := range f.defs {
		if d.at == nil {
			gen[f.cfg.entry].set(d.id)
		}
	}

	preds := map[*block][]*block{}
	for _, b := range f.cfg.blocks {
		for _, s := range b.succs {
			preds[s] = append(preds[s], b)
		}
	}
	changed := true
	for changed {
		changed = false
		for _, b := range f.cfg.blocks {
			in := newBitset(nwords)
			for _, p := range preds[b] {
				in.union(out[p])
			}
			f.in[b] = in
			o := in.clone()
			o.diff(kill[b])
			o.union(gen[b])
			if !o.equal(out[b]) {
				out[b] = o
				changed = true
			}
		}
	}
}

// applyNode folds one node's defs into running gen/kill sets.
func (f *flowInfo) applyNode(n ast.Node, g, k bitset) {
	for _, d := range f.defs {
		if d.at == n {
			for _, other := range f.defsOf[d.obj] {
				g.clear(other.id)
				k.set(other.id)
			}
			g.set(d.id)
			k.clear(d.id)
		}
	}
}

// reachingDefs returns the definitions of obj that may reach the start of
// the evaluation of node at (which must lie inside the analyzed body).
func (f *flowInfo) reachingDefs(obj types.Object, at ast.Node) []*def {
	l, ok := f.loc[at]
	if !ok {
		// Node outside the CFG (e.g. inside an opaque closure): be
		// conservative and return every def of obj.
		return f.defsOf[obj]
	}
	cur := f.in[l.blk].clone()
	for i := 0; i < l.idx; i++ {
		f.applyNode(l.blk.nodes[i], cur, newBitset(len(cur)))
	}
	var out []*def
	for _, d := range f.defsOf[obj] {
		if cur.has(d.id) {
			out = append(out, d)
		}
	}
	return out
}

// ---- derivation: "provably derived from seed objects" ----

// A derivation answers, flow-sensitively, whether an expression's value is
// derived from one of the seed objects (a parallel closure's worker/item
// parameters). It is a greatest-fixpoint must-analysis over defs: a def is
// derived iff some value flowing into it is a seed or a variable all of
// whose reaching definitions are derived — so `i := base` (base seeded)
// and the loop-carried `i += stride` both stay derived, while `j := 0`
// and anything (re)assigned from captured state drop out.
type derivation struct {
	flow    *flowInfo
	seeds   map[types.Object]bool
	derived map[*def]bool
}

func (f *flowInfo) newDerivation(seeds map[types.Object]bool) *derivation {
	d := &derivation{flow: f, seeds: seeds, derived: map[*def]bool{}}
	for _, df := range f.defs {
		// Optimistic start: everything with inflow (or a seeded param) is
		// derived; the fixpoint strips the ones that cannot justify it.
		d.derived[df] = len(df.rhs) > 0 || (df.at == nil && seeds[df.obj])
	}
	for changed := true; changed; {
		changed = false
		for _, df := range f.defs {
			if !d.derived[df] || len(df.rhs) == 0 {
				continue
			}
			ok := false
			for _, e := range df.rhs {
				if d.exprDerivedAt(e, df.at) {
					ok = true
					break
				}
			}
			if !ok {
				d.derived[df] = false
				changed = true
			}
		}
	}
	return d
}

// exprDerived reports whether e, evaluated at node at, mentions a value
// derived from the seeds.
func (d *derivation) exprDerived(e ast.Expr, at ast.Node) bool {
	return d.exprDerivedAt(e, at)
}

func (d *derivation) exprDerivedAt(e ast.Expr, at ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := d.flow.info.Uses[id]
		if obj == nil {
			obj = d.flow.info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if d.seeds[obj] {
			found = true
			return false
		}
		defs := d.flow.reachingDefs(obj, at)
		if len(defs) == 0 {
			return true
		}
		all := true
		for _, df := range defs {
			if !d.derived[df] {
				all = false
				break
			}
		}
		if all {
			found = true
			return false
		}
		return true
	})
	return found
}

// ---- bitset ----

type bitset []uint64

func newBitset(nwords int) bitset { return make(bitset, nwords) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool {
	return b[i/64]&(1<<(i%64)) != 0
}
func (b bitset) union(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}
func (b bitset) diff(o bitset) {
	for i := range b {
		b[i] &^= o[i]
	}
}
func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}
func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// debugString renders the CFG for test failure messages.
func (c *cfg) debugString(fset *token.FileSet) string {
	s := ""
	for _, b := range c.blocks {
		s += fmt.Sprintf("b%d:", b.index)
		for _, n := range b.nodes {
			s += fmt.Sprintf(" [%T@%v]", n, fset.Position(n.Pos()).Line)
		}
		s += " ->"
		for _, sc := range b.succs {
			s += fmt.Sprintf(" b%d", sc.index)
		}
		s += "\n"
	}
	return s
}
