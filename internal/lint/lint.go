// Package lint is mptlint: a suite of static analyzers that enforce the
// repo's three load-bearing invariants at the source level — bit-exact
// determinism (no map-iteration-order results, no wall-clock or global
// RNG in simulated paths), bounded parallelism (all fan-out goes through
// internal/parallel), and allocation-free steady-state kernels (no
// allocation constructs in *Into functions).
//
// The suite deliberately does not depend on golang.org/x/tools: the
// framework below is a small offline re-implementation of the
// go/analysis surface we need (Analyzer, Pass, Reportf, //nolint
// suppression, testdata golden tests), loading type information through
// `go list -export` so `make lint` works on an air-gapped machine
// (DESIGN.md §9).
//
// Suppressing a finding requires a written reason:
//
//	//nolint:mapiter -- keys are sorted two lines down, order is laundered
//
// A bare //nolint:mptlint with no "-- reason" is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. This mirrors the
// go/analysis.Analyzer shape so the suite can migrate to the upstream
// framework wholesale if the x/tools dependency ever becomes acceptable.
// Exactly one of Run (per-package, syntactic/flow-sensitive) and
// RunProgram (whole-program, interprocedural over the call graph) is set.
type Analyzer struct {
	Name       string // short lowercase identifier, used in //nolint lists
	Doc        string // one-paragraph description: the invariant it encodes
	Run        func(*Pass)
	RunProgram func(*ProgramPass)
}

// A Pass hands one package's syntax and types to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-safe p.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// A ProgramPass hands the whole program (targets plus module-local
// dependencies, with call-graph summaries) to one interprocedural
// analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the per-package analyzers to one loaded package and returns
// the raw (unsuppressed) findings in source order. Suppression is a
// separate step (ApplyNolint) so tests can exercise both layers.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	runPkg(pkg, analyzers, &diags)
	sortDiagnostics(diags)
	return diags
}

func runPkg(pkg *Package, analyzers []*Analyzer, diags *[]Diagnostic) {
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    diags,
		}
		a.Run(pass)
	}
}

// Analyze runs the full analyzer stack over a loaded program: per-package
// analyzers over every target package, interprocedural analyzers once
// over the whole program. Findings are raw (pre-suppression) and sorted.
func Analyze(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Targets() {
		runPkg(pkg, analyzers, &diags)
	}
	for _, a := range analyzers {
		if a.RunProgram != nil {
			a.RunProgram(&ProgramPass{Analyzer: a, Prog: prog, diags: &diags})
		}
	}
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// nolintRe matches "//nolint:name1,name2 -- reason". The reason (after
// " -- ") is mandatory; a directive without one is reported instead of
// honored.
var nolintRe = regexp.MustCompile(`^//\s*nolint:([a-zA-Z0-9_,]+)(.*)$`)

type nolintDirective struct {
	pos       token.Position
	names     []string // analyzer names in written order, or "mptlint"/"all" for all
	hasReason bool
	hits      map[string]bool // per-name: suppressed at least one matching finding
}

func (d *nolintDirective) covers(analyzer string) (string, bool) {
	for _, n := range d.names {
		if n == "mptlint" || n == "all" || n == analyzer {
			return n, true
		}
	}
	return "", false
}

// ApplyNolint filters diags through the //nolint directives found in
// files. Suppression is scoped to the specific line AND analyzer: a
// directive suppresses matching diagnostics on its own line and on the
// following line (so it can trail the offending line or stand alone
// above it), and only for the analyzers it names.
//
// Two directive pathologies become diagnostics themselves (analyzer
// "nolint") instead of being honored:
//
//   - a directive missing the mandatory "-- reason", so a suppression
//     always carries a written justification into review;
//   - a stale directive: one of its named analyzers ran (per ran; nil
//     means all names are checkable) but suppressed nothing on its lines.
//     Stale suppressions are how laundered violations outlive their fix —
//     or worse, how a never-valid suppression hides a later regression.
func ApplyNolint(fset *token.FileSet, files []*ast.File, diags []Diagnostic, ran []string) []Diagnostic {
	type key struct {
		file string
		line int
	}
	directives := map[key][]*nolintDirective{}
	var all []*nolintDirective
	var out []Diagnostic

	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := nolintRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &nolintDirective{pos: pos, hits: map[string]bool{}}
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						d.names = append(d.names, n)
					}
				}
				rest := strings.TrimSpace(m[2])
				if r, ok := strings.CutPrefix(rest, "--"); ok && strings.TrimSpace(r) != "" {
					d.hasReason = true
				}
				if !d.hasReason {
					out = append(out, Diagnostic{
						Analyzer: "nolint",
						Pos:      pos,
						Message:  "nolint directive is missing its mandatory reason (write `//nolint:name -- why this is safe`)",
					})
					continue
				}
				all = append(all, d)
				k := key{pos.Filename, pos.Line}
				directives[k] = append(directives[k], d)
				k.line++
				directives[k] = append(directives[k], d)
			}
		}
	}

	for _, d := range diags {
		suppressed := false
		for _, dir := range directives[key{d.Pos.Filename, d.Pos.Line}] {
			if name, ok := dir.covers(d.Analyzer); ok {
				dir.hits[name] = true
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	// Stale detection: only names whose analyzer actually ran are
	// checkable (a -run=noalloc invocation says nothing about a
	// //nolint:mapiter directive). The wildcard forms are checkable only
	// when the full suite ran (ran == nil).
	checkable := func(name string) bool {
		if ran == nil {
			return true
		}
		for _, r := range ran {
			if r == name {
				return true
			}
		}
		return false
	}
	for _, dir := range all {
		for _, name := range dir.names {
			if dir.hits[name] || !checkable(name) {
				continue
			}
			if (name == "mptlint" || name == "all") && ran != nil {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "nolint",
				Pos:      dir.pos,
				Message:  fmt.Sprintf("stale suppression: nolint:%s matches no %s finding on this line; remove it (stale directives hide later regressions)", name, name),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// ---- shared AST/type helpers used by several analyzers ----

// isFloat reports whether t's underlying type is a float.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isPkgFunc reports whether call invokes a package-level function (or any
// selector) from the package with import path pkgPath.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if obj := selectionObj(info, sel); obj != nil && obj.Pkg() != nil {
		return obj.Pkg().Path() == pkgPath
	}
	return false
}

// selectionObj resolves the object a selector refers to (package function,
// method, or field), or nil.
func selectionObj(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if info == nil {
		return nil
	}
	if s, ok := info.Selections[sel]; ok {
		return s.Obj()
	}
	return info.Uses[sel.Sel]
}

// isBuiltin reports whether call invokes the builtin named name
// (make/new/append/...), resolving through the type info so a local
// function shadowing the name does not count.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if info != nil {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			return true
		}
		return false
	}
	return true
}

// exprString renders e compactly for syntactic comparison (x = x + v
// accumulation detection). types.ExprString is stable for this purpose.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// funcDirectives returns the "//mptlint:<name>" directives attached to a
// function declaration's doc comment.
func funcDirectives(fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	if fn.Doc == nil {
		return out
	}
	for _, c := range fn.Doc.List {
		if rest, ok := strings.CutPrefix(c.Text, "//mptlint:"); ok {
			out[strings.TrimSpace(rest)] = true
		}
	}
	return out
}
