package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapIter flags `range` over a map whose body leaks the nondeterministic
// iteration order into a result: appending to a slice, accumulating a
// float, or sending on a channel. This is the exact bug class that was
// fixed by hand in internal/noc — ejection/failure sweeps originally
// ranged over maps and produced schedule-dependent results until the
// inOrder construction replaced them (DESIGN.md §7). A range that only
// *reads* the map, or that writes to a slot keyed by the map key, is
// order-independent and not flagged; collecting keys and sorting them
// immediately after the loop is also recognized and allowed.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flags map iteration whose order leaks into results " +
		"(append, float accumulation, channel send in the loop body)",
	Run: runMapIter,
}

func runMapIter(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rs.X); t == nil || !isMap(t) {
				return true
			}
			checkMapRangeBody(pass, file, rs)
			return true
		})
	}
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRangeBody(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges report on their own.
			if n != rs {
				if t := pass.TypeOf(n.X); t != nil && isMap(t) {
					return false
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: receive order depends on map iteration order")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, file, rs, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, file *ast.File, rs *ast.RangeStmt, as *ast.AssignStmt) {
	// x = append(x, ...) — the element order of x becomes map order.
	if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltin(pass.Info, call, "append") {
				continue
			}
			if i < len(as.Lhs) && sortedAfterLoop(pass, file, rs, as.Lhs[i]) {
				continue
			}
			pass.Reportf(call.Pos(), "append inside map iteration: slice element order depends on map iteration order (sort afterwards, or iterate a sorted key slice)")
		}
	}
	// acc += v / acc = acc + v where acc is a float: float addition is
	// not associative, so the accumulated bits depend on map order.
	if lhs, ok := floatAccumTarget(pass.Info, as); ok {
		// Writes to a slot keyed by this iteration's map key are
		// per-key and therefore order-independent.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyedByRangeVar(pass, rs, idx.Index) {
			return
		}
		pass.Reportf(as.Pos(), "float accumulation inside map iteration: result bits depend on map iteration order (iterate a sorted key slice)")
	}
}

// floatAccumTarget reports whether as accumulates a float (op= with an
// additive/multiplicative operator, or x = x + v) and returns the target.
func floatAccumTarget(info *types.Info, as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 {
		return nil, false
	}
	lhs := as.Lhs[0]
	if info == nil || !isFloat(info.TypeOf(lhs)) {
		return nil, false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return nil, false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			if exprString(bin.X) == exprString(lhs) || exprString(bin.Y) == exprString(lhs) {
				return lhs, true
			}
		}
	}
	return nil, false
}

// keyedByRangeVar reports whether index mentions the range statement's
// key (or value) variable, meaning the write lands in a per-key slot.
func keyedByRangeVar(pass *Pass, rs *ast.RangeStmt, index ast.Expr) bool {
	var rangeObjs []types.Object
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && v != nil {
			if obj := pass.Info.Defs[id]; obj != nil {
				rangeObjs = append(rangeObjs, obj)
			} else if obj := pass.Info.Uses[id]; obj != nil {
				rangeObjs = append(rangeObjs, obj)
			}
		}
	}
	found := false
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		use := pass.Info.Uses[id]
		for _, o := range rangeObjs {
			if use == o {
				found = true
			}
		}
		return !found
	})
	return found
}

// sortedAfterLoop reports whether target (an identifier) is passed to a
// sort.*/slices.Sort* call in a statement that follows rs inside the same
// enclosing block — the standard collect-keys-then-sort idiom, which
// launders the map order away.
func sortedAfterLoop(pass *Pass, file *ast.File, rs *ast.RangeStmt, target ast.Expr) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	// Find the block statement that directly contains rs.
	var block *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if b, ok := n.(*ast.BlockStmt); ok {
			for _, st := range b.List {
				if st == rs {
					block = b
				}
			}
		}
		return block == nil
	})
	if block == nil {
		return false
	}
	after := false
	for _, st := range block.List {
		if st == rs {
			after = true
			continue
		}
		if !after {
			continue
		}
		sorted := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || sorted {
				return !sorted
			}
			if !isPkgFunc(pass.Info, call, "sort") && !isPkgFunc(pass.Info, call, "slices") {
				return true
			}
			for _, arg := range call.Args {
				found := false
				ast.Inspect(arg, func(m ast.Node) bool {
					if aid, ok := m.(*ast.Ident); ok && pass.Info.Uses[aid] == obj {
						found = true
					}
					return !found
				})
				if found {
					sorted = true
				}
			}
			return !sorted
		})
		if sorted {
			return true
		}
	}
	return false
}
