package lint

// All returns the full mptlint suite in reporting order. Each analyzer
// encodes one of the repo's structural invariants; DESIGN.md §9 documents
// the mapping and the suppression policy.
func All() []*Analyzer {
	return []*Analyzer{
		MapIter,
		NoGoroutine,
		NoAlloc,
		NoTime,
		FloatOrder,
		SharedWrite,
		DetSelect,
		AllocFlow,
	}
}

// ByName resolves a comma-separated analyzer selection ("" = all).
func ByName(names []string) []*Analyzer {
	if len(names) == 0 {
		return All()
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
