package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc flags allocation constructs inside steady-state kernels: any
// function whose name ends in "Into" or whose doc comment carries a
// `//mptlint:noalloc` directive. These are the hot paths whose 0 allocs/op
// contract benchdiff gates dynamically (`cmd/benchdiff -gate-allocs`,
// DESIGN.md §8); this analyzer is the source-level half of that gate — it
// catches the allocation when it is written, not when a benchmark happens
// to execute it.
//
// Flagged constructs: make, new, append, slice/map composite literals,
// &T{...} (heap-escaping address-of-literal), fmt.Sprintf/Errorf and
// errors.New, and func literals. Two deliberate carve-outs:
//
//   - cold panic guards: allocations inside an if-block that terminates in
//     panic() are shape-check error paths, never executed at steady state;
//   - func literals passed directly to internal/parallel primitives: the
//     pool fan-out closure is one amortized allocation per kernel call on
//     the multi-worker path, and the single-worker branches (which the
//     0-allocs benchmarks pin via SetDefaultWorkers(1)) are closure-free.
//     The carve-out exempts ONLY the closure allocation itself — it is
//     granted at the parallel.* call site, and the walk still descends
//     into the closure body, where every allocation construct runs once
//     per work item and is flagged like any other.
//
// The telemetry layer gets its own discrimination: the nil-safe atomic
// updates (Counter.Add/Inc, Gauge.Set/Max, Histogram.Observe) are
// allocation-free by construction and sanctioned inside kernels, but every
// OTHER call into internal/telemetry — registry handle lookups, trace
// event emission — locks and/or allocates and is flagged. Instrumented
// kernels therefore resolve handles at attach time and bump them in the
// loop, which is exactly the shape the 0 allocs/op contract needs.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "flags allocation constructs (make/new/append/literals/closures) " +
		"inside *Into functions and //mptlint:noalloc-annotated functions",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !strings.HasSuffix(fn.Name.Name, "Into") && !funcDirectives(fn)["noalloc"] {
				continue
			}
			checkNoAllocBody(pass, fn)
		}
	}
}

func checkNoAllocBody(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	// sanctionedLits collects func literals that appear as DIRECT arguments
	// to an internal/parallel call — marked when the walk visits the call
	// expression, i.e. strictly at the literal's parent. A literal bound to
	// a variable first, or passed through a wrapper, stays unsanctioned.
	sanctionedLits := map[*ast.FuncLit]bool{}
	var walk func(n ast.Node, cold bool)
	walk = func(n ast.Node, cold bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.IfStmt:
				// Descend separately so the cold flag is set for panic
				// guards (and their else-chains keep the parent flag).
				walk(m.Cond, cold)
				if m.Init != nil {
					walk(m.Init, cold)
				}
				walk(m.Body, cold || terminatesInPanic(m.Body))
				if m.Else != nil {
					walk(m.Else, cold)
				}
				return false
			case *ast.FuncLit:
				if !cold && !sanctionedLits[m] {
					pass.Reportf(m.Pos(), "%s: func literal allocates its closure; hoist it or route the fan-out through internal/parallel", name)
				}
				// Keep scanning the body: allocations inside the closure
				// still run per item.
				walk(m.Body, cold)
				return false
			case *ast.CallExpr:
				if isPkgFunc(pass.Info, m, "mptwino/internal/parallel") {
					for _, arg := range m.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							sanctionedLits[lit] = true
						}
					}
				}
				checkNoAllocCall(pass, name, m, cold)
			case *ast.UnaryExpr:
				if !cold && m.Op == token.AND {
					if _, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok {
						pass.Reportf(m.Pos(), "%s: &composite literal escapes to the heap; reuse a caller-owned or scratch value", name)
					}
				}
			case *ast.CompositeLit:
				t := pass.TypeOf(m)
				if cold || t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(m.Pos(), "%s: slice literal allocates; use a scratch buffer", name)
				case *types.Map:
					pass.Reportf(m.Pos(), "%s: map literal allocates; hoist it to a package var or scratch", name)
				}
			}
			return true
		})
	}
	walk(fn.Body, false)
}

func checkNoAllocCall(pass *Pass, name string, call *ast.CallExpr, cold bool) {
	if cold {
		return
	}
	switch {
	case isBuiltin(pass.Info, call, "make"):
		pass.Reportf(call.Pos(), "%s: make allocates; grow a reusable scratch buffer outside the hot path", name)
	case isBuiltin(pass.Info, call, "new"):
		pass.Reportf(call.Pos(), "%s: new allocates; reuse a caller-owned value", name)
	case isBuiltin(pass.Info, call, "append"):
		pass.Reportf(call.Pos(), "%s: append may grow its backing array; write into a pre-sized buffer", name)
	default:
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			obj := selectionObj(pass.Info, sel)
			if obj == nil || obj.Pkg() == nil {
				return
			}
			if obj.Pkg().Path() == "mptwino/internal/telemetry" {
				switch obj.Name() {
				case "Add", "Inc", "Set", "Max", "Observe":
					// Sanctioned: nil-safe atomic updates, allocation-free.
				default:
					pass.Reportf(call.Pos(), "%s: telemetry.%s in a kernel: resolve handles and emit trace events at attach time; only the atomic updates (Add/Inc/Set/Max/Observe) are allocation-free", name, obj.Name())
				}
				return
			}
			full := obj.Pkg().Path() + "." + obj.Name()
			switch full {
			case "fmt.Sprintf", "fmt.Sprint", "fmt.Sprintln", "fmt.Errorf", "errors.New":
				pass.Reportf(call.Pos(), "%s: %s allocates; keep formatting out of the steady-state path", name, full)
			}
		}
	}
}

// terminatesInPanic reports whether block's last statement is a panic call
// — the shape of a cold shape-check guard.
func terminatesInPanic(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	es, ok := block.List[len(block.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
