package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// AllocFlow is the interprocedural half of the 0 allocs/op contract: for
// every noalloc root (a *Into kernel or a //mptlint:noalloc-annotated
// function) in a linted package, every call path reachable from it must
// be allocation-free. The syntactic noalloc analyzer catches allocation
// constructs written directly in the root; allocflow walks the
// cross-package call graph (callgraph.go) and reports the transitive
// ones — the allocating helper two hops away that a per-function AST walk
// can never see.
//
// Callees whose bodies are outside the program (stdlib, out-of-module)
// are not assumed clean: they must appear on the sanctioned-callee list
// below, which replaces the old hand-maintained per-analyzer carve-outs.
// Dynamic calls (interface methods, function-valued parameters/fields)
// are likewise not analyzable and are reported, because an unseen callee
// is exactly how an allocation sneaks onto a steady-state path.
//
// Reports land at the call site inside the root (the actionable frame:
// either the callee must be fixed, the call hoisted off the steady-state
// path, or the callee sanctioned with evidence). Cold paths — if-blocks
// terminating in panic — contribute nothing, same as noalloc.
var AllocFlow = &Analyzer{
	Name: "allocflow",
	Doc: "interprocedural noalloc: every call path from a *Into or " +
		"//mptlint:noalloc root must be allocation-free (sanctioned-callee list " +
		"for unanalyzable bodies)",
	RunProgram: runAllocFlow,
}

// sanctionedCallees maps call-graph keys (types.Func.FullName) to the
// evidence that the callee is allocation-free at steady state even though
// (or: why) allocflow does not descend into it. This list is the single
// place exemptions live — additions need a benchmark or contract
// citation, reviewed like any carve-out.
var sanctionedCallees = map[string]string{
	// The pool fan-out primitives: one amortized closure allocation per
	// kernel call on the multi-worker path; the single-worker branch the
	// 0-allocs benchmarks pin (SetDefaultWorkers(1)) is closure-free and
	// allocation-free (DESIGN.md §7/§8).
	"mptwino/internal/parallel.ForEach":       "amortized pool fan-out; 1-worker path is allocation-free",
	"mptwino/internal/parallel.ForEachWorker": "amortized pool fan-out; 1-worker path is allocation-free",
	"mptwino/internal/parallel.ForEachErr":    "amortized pool fan-out; 1-worker path is allocation-free",
	"(*mptwino/internal/parallel.Pool).Run":   "amortized pool fan-out; pool goroutines are pre-spawned",

	// Grow-only scratch: these allocate only while a buffer slot is still
	// smaller than the request, then replay the same storage forever. The
	// 0 allocs/op benchmarks (BenchmarkFpropInto etc., gated by benchdiff
	// -gate-allocs) pin that the steady state really is clean.
	"(*mptwino/internal/tensor.GemmScratch).panels": "grow-only packing buffers; steady-state calls reuse them",
	"(*mptwino/internal/tensor.Arena).Mat":          "replay arena, grow-only slots; steady state replays storage",
	"(*mptwino/internal/tensor.Arena).MatZ":         "replay arena, grow-only slots; steady state replays storage",
	"(*mptwino/internal/tensor.Arena).Floats":       "replay arena, grow-only slots; steady state replays storage",

	// Lazy grow-only staging of the training-loop Domains: their shapes
	// depend on the first call's batch size, so they cannot move to the
	// constructor; later calls at the same shape reuse the storage ("after
	// the first call at a given batch size, no allocations occur" is the
	// documented FpropInto contract). Note the per-worker Scratch used to
	// be on this list too — it is now built eagerly in NewLayer /
	// NewLayerWithWeights, which is the fix allocflow prescribes.
	"(*mptwino/internal/winograd.Layer).ensureDomain": "lazy grow-only domain staging; later calls at the same shape reuse it",

	// The convenience GEMM entry points amortize their scratch through a
	// sync.Pool; Get allocates only until the pool is warm.
	"(*sync.Pool).Get": "amortized scratch pool; warm steady-state hits are allocation-free",
	"(*sync.Pool).Put": "returns scratch to the pool; does not allocate",

	// The runtime-dispatched register-tile micro-kernel: a function-typed
	// field so the AVX2/FMA tier can be selected per CPU at startup. The
	// candidates (gemm_amd64 tiers) are straight-line store loops; the
	// per-tier 0 allocs/op benchmarks cover each one.
	"(*mptwino/internal/tensor.gemmKernel).kern": "runtime-dispatched micro-kernel tier; all candidates are allocation-free store loops",
}

// sanctionedCalleePrefixes sanctions whole packages by key prefix: pure
// numeric stdlib and the lock-free atomics, none of which allocate.
var sanctionedCalleePrefixes = []string{
	"math.",
	"math/bits.",
	"sync/atomic.",
	"(*sync/atomic.",
}

func calleeSanctioned(key string) bool {
	if _, ok := sanctionedCallees[key]; ok {
		return true
	}
	for _, p := range sanctionedCalleePrefixes {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// afProblem is one allocation (or analyzability hole) found beneath a
// callee: where it is, what it is, and the call chain that reaches it.
type afProblem struct {
	pos   token.Pos
	desc  string
	chain []string // short callee names from the traversed function down
}

// maxProblemsPerFunc caps how many problems one function contributes so a
// helper full of allocations reports a digest, not a flood.
const maxProblemsPerFunc = 4

func runAllocFlow(pass *ProgramPass) {
	sums := pass.Prog.callgraph()

	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	memo := map[string][]afProblem{}

	var visit func(key string) []afProblem
	visit = func(key string) []afProblem {
		if state[key] == done {
			return memo[key]
		}
		if state[key] == visiting {
			return nil // cycle: the first traversal owns the facts
		}
		state[key] = visiting
		s := sums[key]
		var probs []afProblem
		add := func(p afProblem) {
			if len(probs) < maxProblemsPerFunc {
				probs = append(probs, p)
			}
		}
		for _, a := range s.allocs {
			add(afProblem{a.pos, a.what + " allocates", nil})
		}
		for _, c := range s.calls {
			if c.callee != "" && calleeSanctioned(c.callee) {
				continue
			}
			if c.dynamic != "" {
				add(afProblem{c.pos, c.dynamic + " is not analyzable", nil})
				continue
			}
			t, ok := sums[c.callee]
			if !ok {
				add(afProblem{c.pos, fmt.Sprintf("calls %s, whose body is outside the program and not on the sanctioned list", displayKey(c.callee)), nil})
				continue
			}
			for _, sub := range visit(c.callee) {
				add(afProblem{sub.pos, sub.desc, append([]string{t.name}, sub.chain...)})
			}
		}
		state[key] = done
		memo[key] = probs
		return probs
	}

	// Deterministic traversal order: sorted summary keys, roots in target
	// packages only.
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := sums[k]
		if !s.root || !s.pkg.Target {
			continue
		}
		reported := map[string]bool{} // one report per callee per root
		for _, c := range s.calls {
			if c.callee != "" && calleeSanctioned(c.callee) {
				continue
			}
			if c.dynamic != "" {
				pass.Reportf(c.pos, "%s: %s on a noalloc path; allocflow cannot prove it allocation-free — hoist it off the steady-state path or make the callee static", s.name, c.dynamic)
				continue
			}
			if reported[c.callee] {
				continue
			}
			t, ok := sums[c.callee]
			if !ok {
				reported[c.callee] = true
				pass.Reportf(c.pos, "%s: calls %s on a noalloc path; its body is outside the program and it is not on the sanctioned-callee list", s.name, displayKey(c.callee))
				continue
			}
			probs := visit(c.callee)
			if len(probs) == 0 {
				continue
			}
			reported[c.callee] = true
			for _, p := range probs {
				chain := append([]string{t.name}, p.chain...)
				pass.Reportf(c.pos, "%s: allocation reachable on a noalloc path via %s: %s at %s", s.name, strings.Join(chain, " → "), p.desc, shortPos(pass.Prog.Fset.Position(p.pos)))
			}
		}
	}
}

// displayKey strips the module prefix from a call-graph key for messages:
// "(*mptwino/internal/telemetry.Counter).Add" → "(*telemetry.Counter).Add".
func displayKey(key string) string {
	key = strings.ReplaceAll(key, "mptwino/internal/", "")
	return strings.ReplaceAll(key, "mptwino/", "")
}

// shortPos renders dir/file:line for a position inside the module.
func shortPos(p token.Position) string {
	dir, file := filepath.Split(p.Filename)
	return fmt.Sprintf("%s/%s:%d", filepath.Base(filepath.Clean(dir)), file, p.Line)
}
