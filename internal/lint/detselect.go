package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

func isChan(t types.Type) bool {
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// DetSelect guards the determinism contract against the two channel
// shapes that make a program's behavior depend on runtime scheduling, in
// every package except internal/parallel (the one sanctioned
// concurrency layer, whose primitives are determinism-tested at worker
// counts {1,2,8} under -race):
//
//  1. `select` with two or more communication cases. When several cases
//     are ready, the runtime picks uniformly at random — a ready-race.
//     Results, orderings, and even which goroutine proceeds become
//     schedule-dependent. A single case (with or without `default`) is a
//     guarded receive and stays deterministic, so it is allowed.
//  2. Channel operations inside a closure handed to a parallel.* fan-out
//     primitive. Workers sending into a shared channel arrive in
//     schedule order (unordered fan-in); receives inside workers steal
//     items nondeterministically. The pool's contract is index-addressed
//     results (each item writes slot i), which needs no channels at all.
//
// The upcoming async step engine (ROADMAP: LayerPipe-style pipelining)
// will multiply the number of channel paths; this analyzer exists so
// every one of them is either inside internal/parallel or provably
// single-ready.
var DetSelect = &Analyzer{
	Name: "detselect",
	Doc: "bans select with multiple ready-race cases and channel fan-in/out " +
		"inside parallel closures outside internal/parallel (schedule-dependent behavior)",
	Run: runDetSelect,
}

func runDetSelect(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Path() == "mptwino/internal/parallel" {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				comm := 0
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Pos(), "select with %d communication cases: when several are ready the runtime picks at random (ready-race), so behavior depends on the schedule; receive in a fixed order or move the fan-in into internal/parallel", comm)
				}
			case *ast.CallExpr:
				if !isPkgFunc(pass.Info, n, "mptwino/internal/parallel") {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkChannelOpsInClosure(pass, lit)
					}
				}
			}
			return true
		})
	}
}

// checkChannelOpsInClosure flags sends, receives, channel closes, and
// channel ranges inside a parallel worker closure.
func checkChannelOpsInClosure(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside a parallel closure: workers arrive in schedule order (unordered fan-in); write results to index-addressed slots instead")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive inside a parallel closure: workers steal items in schedule order; index the work by the closure parameter instead")
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil && isChan(t) {
				pass.Reportf(n.Pos(), "range over a channel inside a parallel closure: arrival order depends on the schedule; index the work by the closure parameter instead")
			}
		case *ast.CallExpr:
			if isBuiltin(pass.Info, n, "close") && len(n.Args) == 1 {
				if t := pass.TypeOf(n.Args[0]); t != nil && isChan(t) {
					pass.Reportf(n.Pos(), "close of a channel inside a parallel closure: which worker closes first depends on the schedule")
				}
			}
		}
		return true
	})
}
