package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// goroutineExemptPkgs are the packages allowed to spawn goroutines and use
// raw synchronization: internal/parallel is the one sanctioned fan-out
// layer (bounded deterministic pools, DESIGN.md §7) — everything else must
// go through it so worker counts stay bounded and results stay
// index-ordered.
var goroutineExemptPkgs = map[string]bool{
	"mptwino/internal/parallel": true,
}

// NoGoroutine flags raw `go` statements, sync.WaitGroup values, and
// errgroup imports outside internal/parallel. Ad-hoc goroutines were how
// unbounded, schedule-dependent fan-out crept into early drafts of the
// sweep code; the invariant is that every concurrent code path is one of
// the pool primitives (parallel.ForEach/ForEachWorker/Map/Pool.Run),
// whose determinism contract is tested at worker counts {1,2,8} under
// -race. Calls *into* parallel are of course fine — the analyzer looks at
// spawn sites, not call sites.
var NoGoroutine = &Analyzer{
	Name: "nogoroutine",
	Doc: "flags go statements, sync.WaitGroup, and errgroup outside " +
		"internal/parallel (all fan-out must use the bounded deterministic pool)",
	Run: runNoGoroutine,
}

func runNoGoroutine(pass *Pass) {
	if pass.Pkg != nil && goroutineExemptPkgs[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if strings.HasSuffix(path, "/errgroup") {
				pass.Reportf(imp.Pos(), "errgroup import outside internal/parallel: use parallel.ForEachErr/MapErr (bounded pool, deterministic first-error)")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement outside internal/parallel: use parallel.ForEach/ForEachWorker/Map or a parallel.Pool")
			case *ast.SelectorExpr:
				if isWaitGroupRef(pass.Info, n) {
					pass.Reportf(n.Pos(), "sync.WaitGroup outside internal/parallel: the pool primitives already provide the join barrier")
				}
			}
			return true
		})
	}
}

// isWaitGroupRef reports whether sel is a reference to the sync.WaitGroup
// type (in a var decl, struct field, composite literal, or conversion).
func isWaitGroupRef(info *types.Info, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "WaitGroup" {
		return false
	}
	obj := selectionObj(info, sel)
	tn, ok := obj.(*types.TypeName)
	return ok && tn.Pkg() != nil && tn.Pkg().Path() == "sync"
}
