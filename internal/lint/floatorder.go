package lint

import (
	"go/ast"
	"go/types"
)

// FloatOrder flags float accumulation whose iteration order is not fixed:
//
//  1. `acc += v` inside a closure handed to a parallel.* fan-out, where
//     acc is captured from the enclosing scope and not indexed by one of
//     the closure's parameters. Work items race on acc — and even with a
//     lock the arrival order (and therefore the rounded bits) would vary
//     by schedule. The fix is the per-worker-partials idiom: each worker
//     accumulates into its own slot (partials[worker] or out[item]) and
//     the caller folds the slots in index order, which is exactly the
//     contract parallel.ForEachWorker exists for.
//  2. `acc += v` under a map range (shared bug class with mapiter — the
//     two analyzers overlap there on purpose, as the same line violates
//     both the "maps are unordered" and the "float folds need a fixed
//     order" invariants; suppress with `//nolint:mapiter,floatorder`).
//
// Float addition is not associative: (a+b)+c != a+(b+c) in general, so a
// fold's bit pattern is only reproducible if its order is.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc: "flags float accumulation whose order depends on a map or on " +
		"parallel chunk boundaries without per-worker partial buffers",
	Run: runFloatOrder,
}

func runFloatOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil && isMap(t) {
					checkFloatOrderMapRange(pass, n)
				}
			case *ast.CallExpr:
				if isPkgFunc(pass.Info, n, "mptwino/internal/parallel") {
					for _, arg := range n.Args {
						if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
							checkFloatOrderClosure(pass, lit)
						}
					}
				}
			}
			return true
		})
	}
}

func checkFloatOrderMapRange(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs, ok := floatAccumTarget(pass.Info, as)
		if !ok {
			return true
		}
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyedByRangeVar(pass, rs, idx.Index) {
			return true
		}
		pass.Reportf(as.Pos(), "float fold over map iteration order is not reproducible; iterate a sorted key slice")
		return true
	})
}

func checkFloatOrderClosure(pass *Pass, lit *ast.FuncLit) {
	params := closureParams(pass.Info, lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested closures get their own treatment if passed to parallel
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs, ok := floatAccumTarget(pass.Info, as)
		if !ok {
			return true
		}
		base, indexes := splitIndexChain(lhs)
		obj := exprObject(pass.Info, base)
		if obj == nil || !declaredOutside(obj, lit) {
			return true // accumulator lives inside the closure: per-item scratch
		}
		for _, idx := range indexes {
			if mentionsLocal(pass.Info, idx, lit, params) {
				return true // indexed by the item/worker parameter (or a local derived value): a per-slot partial
			}
		}
		pass.Reportf(as.Pos(), "captured float accumulator %q inside a parallel closure: accumulation order depends on the schedule; give each worker its own partial (index by the worker/item parameter) and fold the slots in index order", exprString(base))
		return true
	})
}

// closureParams returns the parameter objects of lit.
func closureParams(info *types.Info, lit *ast.FuncLit) map[types.Object]bool {
	out := map[types.Object]bool{}
	if lit.Type.Params == nil {
		return out
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// splitIndexChain peels index expressions off lhs, returning the base
// expression and the index expressions: a[i][j] -> (a, [i, j]).
func splitIndexChain(e ast.Expr) (ast.Expr, []ast.Expr) {
	var indexes []ast.Expr
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			indexes = append(indexes, x.Index)
			e = x.X
		default:
			return e, indexes
		}
	}
}

// exprObject resolves the variable an expression ultimately names (through
// selectors), or nil.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil {
			return o
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		return exprObject(info, x.X)
	}
	return nil
}

// declaredOutside reports whether obj's declaration lies outside lit's
// source extent (i.e. the closure captures it).
func declaredOutside(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// mentionsLocal reports whether expr references one of the closure's
// parameters or any variable declared inside the closure.
func mentionsLocal(info *types.Info, expr ast.Expr, lit *ast.FuncLit, params map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if params[obj] || !declaredOutside(obj, lit) {
			found = true
		}
		return !found
	})
	return found
}
