package lint

import (
	"go/ast"
	"go/types"
)

// FloatOrder flags `acc += v` under a map range: float addition is not
// associative — (a+b)+c != a+(b+c) in general — so a fold's bit pattern
// is only reproducible if its order is, and map iteration order is not.
// This is a shared bug class with mapiter (the two analyzers overlap
// there on purpose, as the same line violates both the "maps are
// unordered" and the "float folds need a fixed order" invariants;
// suppress with `//nolint:mapiter,floatorder`).
//
// The closure half this analyzer used to own — captured float
// accumulators inside parallel.* closures — moved to the flow-sensitive
// sharedwrite analyzer, which generalizes it to writes of every type and
// decides "partitioned by the worker index" with the dataflow engine
// instead of a syntactic mention check.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc: "flags float accumulation whose order depends on map iteration " +
		"order (the parallel-closure half lives in sharedwrite)",
	Run: runFloatOrder,
}

func runFloatOrder(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if rs, ok := n.(*ast.RangeStmt); ok {
				if t := pass.TypeOf(rs.X); t != nil && isMap(t) {
					checkFloatOrderMapRange(pass, rs)
				}
			}
			return true
		})
	}
}

func checkFloatOrderMapRange(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs, ok := floatAccumTarget(pass.Info, as)
		if !ok {
			return true
		}
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyedByRangeVar(pass, rs, idx.Index) {
			return true
		}
		pass.Reportf(as.Pos(), "float fold over map iteration order is not reproducible; iterate a sorted key slice")
		return true
	})
}

// exprObject resolves the variable an expression ultimately names (through
// selectors), or nil.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := info.Uses[x]; o != nil {
			return o
		}
		return info.Defs[x]
	case *ast.SelectorExpr:
		return exprObject(info, x.X)
	}
	return nil
}

// declaredOutside reports whether obj's declaration lies outside lit's
// source extent (i.e. the closure captures it).
func declaredOutside(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}
