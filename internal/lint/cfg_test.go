package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFlow typechecks one import-free source file, finds the function
// named fname, and runs the dataflow engine over its body.
func parseFlow(t *testing.T, src, fname string) (*flowInfo, *ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "flow_test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{}
	if _, err := conf.Check("flowtest", fset, []*ast.File{file}, info); err != nil {
		t.Fatal(err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fname {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatalf("no function %q in test source", fname)
	}
	var params []types.Object
	for _, f := range fn.Type.Params.List {
		for _, n := range f.Names {
			params = append(params, info.Defs[n])
		}
	}
	return analyzeFlow(info, fn.Body, params), fn, info, fset
}

// objNamed resolves the unique local variable called name inside fn.
func objNamed(t *testing.T, info *types.Info, fn *ast.FuncDecl, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := info.Defs[id]; o != nil {
				obj = o
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("no definition of %q", name)
	}
	return obj
}

func findNode[T ast.Node](fn *ast.FuncDecl) T {
	var out T
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if v, ok := n.(T); ok {
			out, found = v, true
			return false
		}
		return true
	})
	return out
}

// Branch join: both arm definitions reach the use after the if/else, and
// the pre-branch definition is killed on every path.
func TestReachingDefsBranchJoin(t *testing.T) {
	const src = `package p
func f(a int) int {
	x := 0
	if a > 0 {
		x = 1
	} else {
		x = 2
	}
	return x
}`
	flow, fn, info, fset := parseFlow(t, src, "f")
	x := objNamed(t, info, fn, "x")
	ret := findNode[*ast.ReturnStmt](fn)
	defs := flow.reachingDefs(x, ret)
	if len(defs) != 2 {
		t.Fatalf("want 2 reaching defs of x at return (one per arm), got %d\n%s",
			len(defs), flow.cfg.debugString(fset))
	}
	for _, d := range defs {
		line := fset.Position(d.at.Pos()).Line
		if line != 5 && line != 7 {
			t.Errorf("unexpected reaching def at line %d (x := 0 should be killed)", line)
		}
	}
}

// Loop back-edge: the loop-body definition flows back to the loop
// condition, alongside the init definition.
func TestReachingDefsLoopBackEdge(t *testing.T) {
	const src = `package p
func g(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`
	flow, fn, info, fset := parseFlow(t, src, "g")
	i := objNamed(t, info, fn, "i")
	forStmt := findNode[*ast.ForStmt](fn)
	defs := flow.reachingDefs(i, forStmt.Cond)
	if len(defs) != 2 {
		t.Fatalf("want 2 reaching defs of i at loop cond (init + i++ via back-edge), got %d\n%s",
			len(defs), flow.cfg.debugString(fset))
	}
	s := objNamed(t, info, fn, "s")
	ret := findNode[*ast.ReturnStmt](fn)
	if got := len(flow.reachingDefs(s, ret)); got != 2 {
		t.Fatalf("want 2 reaching defs of s at return (zero-trip + body), got %d", got)
	}
}

// Select: each comm clause is its own block; both clause definitions (and
// nothing older, since a blocking select always takes a case) reach the
// join.
func TestReachingDefsSelect(t *testing.T) {
	const src = `package p
func h(a, b chan int) int {
	x := 0
	select {
	case v := <-a:
		x = v
	case <-b:
		x = 2
	}
	return x
}`
	flow, fn, info, fset := parseFlow(t, src, "h")
	x := objNamed(t, info, fn, "x")
	ret := findNode[*ast.ReturnStmt](fn)
	defs := flow.reachingDefs(x, ret)
	if len(defs) != 2 {
		t.Fatalf("want 2 reaching defs of x at return (one per comm clause), got %d\n%s",
			len(defs), flow.cfg.debugString(fset))
	}
	for _, d := range defs {
		line := fset.Position(d.at.Pos()).Line
		if line != 6 && line != 8 {
			t.Errorf("unexpected reaching def at line %d (x := 0 should be killed by both clauses)", line)
		}
	}
}

// Break/continue: a definition before break reaches the loop exit; the
// statement after an unconditional branch is unreachable and its def does
// not escape.
func TestReachingDefsBreak(t *testing.T) {
	const src = `package p
func k(n int) int {
	x := 0
	for {
		x = 1
		if n > 0 {
			break
		}
		x = 2
	}
	return x
}`
	flow, fn, info, _ := parseFlow(t, src, "k")
	x := objNamed(t, info, fn, "x")
	ret := findNode[*ast.ReturnStmt](fn)
	defs := flow.reachingDefs(x, ret)
	if len(defs) != 1 {
		t.Fatalf("want exactly the pre-break def of x at return, got %d", len(defs))
	}
	if got := defs[0].at.(*ast.AssignStmt); got.Tok.String() != "=" {
		t.Fatalf("unexpected def %v", got)
	}
}

// Switch fallthrough chains a case body into the next one.
func TestReachingDefsSwitchFallthrough(t *testing.T) {
	const src = `package p
func sw(a int) int {
	x := 0
	switch a {
	case 1:
		x = 1
		fallthrough
	case 2:
		x = x + 10
	default:
		x = 3
	}
	return x
}`
	flow, fn, info, fset := parseFlow(t, src, "sw")
	x := objNamed(t, info, fn, "x")
	// Inside case 2's body, both `x := 0` (direct dispatch) and `x = 1`
	// (fallthrough from case 1) reach the accumulate.
	var accum *ast.AssignStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && fset.Position(as.Pos()).Line == 9 {
			accum = as
		}
		return true
	})
	defs := flow.reachingDefs(x, accum)
	if len(defs) != 2 {
		t.Fatalf("want 2 reaching defs of x inside fallthrough case, got %d\n%s",
			len(defs), flow.cfg.debugString(fset))
	}
}

// The derivation analysis: values provably derived from seed parameters,
// including loop-carried updates, with flow-sensitive invalidation on
// reassignment from non-seed state.
func TestDerivation(t *testing.T) {
	const src = `package p
func d(w, i int, base, n, stride int) {
	off := i * 4
	j := 0
	k := i
	k += stride
	m := i
	m = base
	p := i
	for q := 0; q < n; q++ {
		p += stride
	}
	r := 0
	if n > 0 {
		r = i
	}
	_ = off
	_ = j
	_ = k
	_ = m
	_ = p
	_ = r
}`
	flow, fn, info, fset := parseFlow(t, src, "d")
	seeds := map[types.Object]bool{
		objNamed(t, info, fn, "w"): true,
		objNamed(t, info, fn, "i"): true,
	}
	deriv := flow.newDerivation(seeds)

	// Resolve each `_ = v` use site so queries are flow-sensitive.
	uses := map[string]*ast.AssignStmt{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
			uses[as.Rhs[0].(*ast.Ident).Name] = as
		}
		return true
	})

	want := map[string]bool{
		"off": true,  // i * 4
		"j":   false, // constant
		"k":   true,  // k := i; k += stride
		"m":   false, // reassigned from a non-seed param before use
		"p":   true,  // loop-carried p += stride with seeded init
		"r":   false, // one arm leaves r = 0
	}
	for name, wantDerived := range want {
		use := uses[name]
		if use == nil {
			t.Fatalf("no use of %q", name)
		}
		got := deriv.exprDerived(use.Rhs[0], use)
		if got != wantDerived {
			t.Errorf("derived(%s) = %v, want %v\n%s", name, got, wantDerived,
				flow.cfg.debugString(fset))
		}
	}

	// Flow sensitivity: the same variable m IS derived before the
	// reassignment.
	var mFirst *ast.AssignStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && fset.Position(as.Pos()).Line == 8 {
			mFirst = as // m = base
		}
		return true
	})
	if !deriv.exprDerived(mFirst.Lhs[0], mFirst) {
		t.Error("m should still be derived at the reassignment site (only `m := i` reaches it)")
	}
}
