package lint_test

import (
	"testing"

	"mptwino/internal/lint"
	"mptwino/internal/lint/linttest"
)

// Each analyzer has a golden testdata package annotated with // want
// expectations (see linttest). The suites run the driver stack end to
// end: go list -export loading, type-checking, analysis, and //nolint
// suppression with the mandatory-reason rule.

func TestMapIter(t *testing.T) {
	linttest.Run(t, "testdata/src/mapiter", lint.MapIter)
}

func TestNoGoroutine(t *testing.T) {
	linttest.Run(t, "testdata/src/nogoroutine", lint.NoGoroutine)
}

func TestNoAlloc(t *testing.T) {
	linttest.Run(t, "testdata/src/noalloc", lint.NoAlloc)
}

func TestNoTime(t *testing.T) {
	linttest.Run(t, "testdata/src/notime", lint.NoTime)
}

// The telemetry rule keys on the package name, so a testdata package
// declaring `package telemetry` exercises the real invariant: no time
// import at all in the cycle-domain tracing layer.
func TestNoTimeTelemetry(t *testing.T) {
	linttest.Run(t, "testdata/src/telemetrytime", lint.NoTime)
}

func TestFloatOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/floatorder", lint.FloatOrder)
}

// The flow-sensitive tier: sharedwrite decides "partitioned by the
// worker/item index" with the dataflow engine (cfg.go), so the suite pins
// loop-carried offsets, reassignment, and the alias classification.
func TestSharedWrite(t *testing.T) {
	linttest.Run(t, "testdata/src/sharedwrite", lint.SharedWrite)
}

func TestDetSelect(t *testing.T) {
	linttest.Run(t, "testdata/src/detselect", lint.DetSelect)
}

// The allocflow fixture includes a subdirectory package (helpers/) so the
// suite pins cross-package call-graph traversal.
func TestAllocFlow(t *testing.T) {
	linttest.Run(t, "testdata/src/allocflow", lint.AllocFlow)
}

// The suppression layer is tested as its own suite: mandatory reasons,
// line+analyzer scoping, per-name stale detection.
func TestNolintStale(t *testing.T) {
	linttest.Run(t, "testdata/src/nolintstale", lint.MapIter, lint.FloatOrder)
}
