package lint

// Cross-package call graph for the interprocedural analyzers. Every
// function declared in a program package (targets and module-local
// dependencies) gets a funcSummary: its allocation constructs and its
// statically resolvable call edges, each tagged with the cold-path flag
// (inside an if-block that terminates in panic — shape-check guards that
// never run at steady state). Functions are keyed by types.Func.FullName,
// which is stable across the two type universes the loader creates
// (source-checked packages vs. their export-data twins seen by importers).
//
// Closures are inlined into their enclosing function's summary: a func
// literal's allocations and calls happen on the caller's dynamic path, so
// they are the caller's problem. The literal's own closure allocation is
// recorded as an alloc site unless it is the sanctioned direct argument
// to an internal/parallel fan-out primitive (one amortized allocation per
// kernel call; the single-worker branch the 0-allocs benchmarks pin is
// closure-free).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An allocSite is one allocation construct inside a function body.
type allocSite struct {
	pos  token.Pos
	what string // human description: "make", "append", "slice literal", ...
}

// A callSite is one outgoing call edge.
type callSite struct {
	pos     token.Pos
	callee  string // FullName key; for function-typed fields, "(*pkg.Type).field"; "" when underivable
	dynamic string // non-empty description when the callee's body is not statically resolvable
}

// A funcSummary is the per-function fact bundle the interprocedural
// passes traverse.
type funcSummary struct {
	key    string
	name   string // short name for messages
	pkg    *Package
	pos    token.Pos
	allocs []allocSite
	calls  []callSite
	root   bool // *Into-named or //mptlint:noalloc-annotated
}

// funcKey returns the call-graph key of fn.
func funcKey(fn *types.Func) string { return fn.FullName() }

// fieldKey derives the sanction key of a function-typed struct field:
// "(*pkg.Type).field". Empty when the owning type is not a named struct.
func fieldKey(info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return "(*" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")." + sel.Sel.Name
}

// callgraph builds (once) and returns the program's function summaries.
func (p *Program) callgraph() map[string]*funcSummary {
	if p.summaries != nil {
		return p.summaries
	}
	p.summaries = map[string]*funcSummary{}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				s := &funcSummary{
					key:  funcKey(obj),
					name: fn.Name.Name,
					pkg:  pkg,
					pos:  fn.Pos(),
					root: strings.HasSuffix(fn.Name.Name, "Into") || funcDirectives(fn)["noalloc"],
				}
				summarizeBody(pkg, fn.Body, s)
				p.summaries[s.key] = s
			}
		}
	}
	return p.summaries
}

// summarizeBody walks one function body recording allocation constructs
// and call edges on the non-cold paths. Cold paths (if-blocks terminating
// in panic) contribute nothing: they are shape-check error paths.
func summarizeBody(pkg *Package, body *ast.BlockStmt, s *funcSummary) {
	info := pkg.Info
	sanctionedLits := map[*ast.FuncLit]bool{}
	var walk func(n ast.Node, cold bool)
	walk = func(n ast.Node, cold bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return true
			}
			switch m := m.(type) {
			case *ast.IfStmt:
				walk(m.Cond, cold)
				if m.Init != nil {
					walk(m.Init, cold)
				}
				walk(m.Body, cold || terminatesInPanic(m.Body))
				if m.Else != nil {
					walk(m.Else, cold)
				}
				return false
			case *ast.FuncLit:
				if !cold && !sanctionedLits[m] {
					s.allocs = append(s.allocs, allocSite{m.Pos(), "func literal (closure)"})
				}
				walk(m.Body, cold)
				return false
			case *ast.CallExpr:
				if !cold {
					summarizeCall(info, m, s, sanctionedLits)
				}
			case *ast.UnaryExpr:
				if !cold && m.Op == token.AND {
					if _, ok := ast.Unparen(m.X).(*ast.CompositeLit); ok {
						s.allocs = append(s.allocs, allocSite{m.Pos(), "&composite literal"})
					}
				}
			case *ast.CompositeLit:
				if cold {
					return true
				}
				if t := info.TypeOf(m); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						s.allocs = append(s.allocs, allocSite{m.Pos(), "slice literal"})
					case *types.Map:
						s.allocs = append(s.allocs, allocSite{m.Pos(), "map literal"})
					}
				}
			case *ast.GoStmt:
				if !cold {
					s.allocs = append(s.allocs, allocSite{m.Pos(), "goroutine spawn"})
				}
			}
			return true
		})
	}
	walk(body, false)
}

// summarizeCall records one call expression: a builtin allocation, a
// static edge, or a dynamic (unresolvable) call. Func-literal arguments
// to internal/parallel primitives are marked sanctioned before the walk
// descends into them.
func summarizeCall(info *types.Info, call *ast.CallExpr, s *funcSummary, sanctionedLits map[*ast.FuncLit]bool) {
	if isPkgFunc(info, call, "mptwino/internal/parallel") {
		for _, arg := range call.Args {
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				sanctionedLits[lit] = true
			}
		}
	}

	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			switch fun.Name {
			case "make":
				s.allocs = append(s.allocs, allocSite{call.Pos(), "make"})
			case "new":
				s.allocs = append(s.allocs, allocSite{call.Pos(), "new"})
			case "append":
				s.allocs = append(s.allocs, allocSite{call.Pos(), "append"})
			}
		case *types.Func:
			s.calls = append(s.calls, callSite{call.Pos(), funcKey(obj), ""})
		case *types.TypeName:
			// Conversion, not a call.
		case *types.Var:
			// Call through a function value. Locally created closures are
			// already inlined at their literal site; a function-typed
			// parameter or captured variable is genuinely opaque.
			if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
				s.calls = append(s.calls, callSite{call.Pos(), "", fmt.Sprintf("call through function value %q", fun.Name)})
			}
		}
	case *ast.SelectorExpr:
		obj := selectionObj(info, fun)
		fn, ok := obj.(*types.Func)
		if !ok {
			// Field of function type, or conversion through a qualified
			// type: function-typed fields are dynamic (no body to walk),
			// but when the owning struct is resolvable they get a
			// "(*pkg.Type).field" key so a vetted dispatch slot (the
			// runtime-selected GEMM micro-kernel) can be sanctioned.
			if v, ok := obj.(*types.Var); ok {
				if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
					s.calls = append(s.calls, callSite{call.Pos(), fieldKey(info, fun), fmt.Sprintf("call through function-typed field %q", fun.Sel.Name)})
				}
			}
			return
		}
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			s.calls = append(s.calls, callSite{call.Pos(), "", fmt.Sprintf("dynamic interface call %s", fn.FullName())})
			return
		}
		s.calls = append(s.calls, callSite{call.Pos(), funcKey(fn), ""})
	case *ast.FuncLit:
		// Immediately-invoked literal: body already inlined by the walk;
		// the literal itself was recorded (or sanctioned) at its site.
	}
}
