package lint

import (
	"go/ast"
	"path/filepath"
	"strconv"
)

// timeExempt lists the places allowed to observe wall-clock time or seed
// ambient randomness:
//
//   - internal/tensor/rng.go is the one sanctioned randomness source (the
//     SplitMix64 stream every reproducible init draws from);
//   - cmd/benchdiff stamps snapshots with the run date — a reporting
//     concern, not a simulated quantity;
//   - internal/trace timestamps emitted event logs for humans.
//
// Everything else is replay-deterministic: simulated time advances in
// cycles, and any wall-clock read would make a re-run diverge from its
// trace.
var (
	timeExemptPkgs = map[string]bool{
		"mptwino/cmd/benchdiff":  true,
		"mptwino/internal/trace": true,
	}
	timeExemptFiles = map[string]bool{
		"rng.go": true, // only within mptwino/internal/tensor
	}
)

// NoTime flags time.Now/time.Since and math/rand imports outside the
// exempt list above, protecting replay determinism: the simulator's
// outputs must be a pure function of its inputs and seeds.
var NoTime = &Analyzer{
	Name: "notime",
	Doc: "flags time.Now/time.Since and math/rand outside " +
		"internal/tensor/rng.go and the bench/trace tooling (replay determinism)",
	Run: runNoTime,
}

func runNoTime(pass *Pass) {
	if pass.Pkg != nil && timeExemptPkgs[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		fname := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if timeExemptFiles[fname] && pass.Pkg != nil && pass.Pkg.Path() == "mptwino/internal/tensor" {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "math/rand outside internal/tensor/rng.go: draw from tensor.RNG so every random stream is seeded and replayable")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := selectionObj(pass.Info, sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			switch obj.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "time.%s outside bench/trace tooling: simulated quantities must come from cycle counts, not wall clock (replay determinism)", obj.Name())
			}
			return true
		})
	}
}
