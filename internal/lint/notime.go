package lint

import (
	"go/ast"
	"path/filepath"
	"strconv"
)

// timeExempt lists the places allowed to observe wall-clock time or seed
// ambient randomness:
//
//   - internal/tensor/rng.go is the one sanctioned randomness source (the
//     SplitMix64 stream every reproducible init draws from);
//   - cmd/benchdiff stamps snapshots with the run date — a reporting
//     concern, not a simulated quantity.
//
// Everything else is replay-deterministic: simulated time advances in
// cycles, and any wall-clock read would make a re-run diverge from its
// trace. (internal/trace used to be exempt; it is now internal/workload —
// the synthetic-data generator — and draws from tensor.RNG like everyone
// else, so the exemption is gone.)
var (
	timeExemptPkgs = map[string]bool{
		"mptwino/cmd/benchdiff": true,
	}
	timeExemptFiles = map[string]bool{
		"rng.go": true, // only within mptwino/internal/tensor
	}
)

// NoTime flags time.Now/time.Since and math/rand imports outside the
// exempt list above, protecting replay determinism: the simulator's
// outputs must be a pure function of its inputs and seeds.
//
// The telemetry layer gets the strictest treatment: a package named
// "telemetry" may not import the time package AT ALL — its tracer stamps
// events with simulated cycles, and even an unused wall-clock import is a
// standing invitation to break bit-identical traces. (The rule keys on
// the package name, not the import path, so the golden testdata suite —
// whose packages load under a testdata/ path — exercises it too.)
var NoTime = &Analyzer{
	Name: "notime",
	Doc: "flags time.Now/time.Since and math/rand outside " +
		"internal/tensor/rng.go and the bench tooling, and any time import " +
		"inside telemetry (replay determinism; cycle-domain tracing)",
	Run: runNoTime,
}

func runNoTime(pass *Pass) {
	if pass.Pkg != nil && timeExemptPkgs[pass.Pkg.Path()] {
		return
	}
	isTelemetry := pass.Pkg != nil && pass.Pkg.Name() == "telemetry"
	for _, file := range pass.Files {
		fname := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if timeExemptFiles[fname] && pass.Pkg != nil && pass.Pkg.Path() == "mptwino/internal/tensor" {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "math/rand outside internal/tensor/rng.go: draw from tensor.RNG so every random stream is seeded and replayable")
			}
			if isTelemetry && path == "time" {
				pass.Reportf(imp.Pos(), "time import in telemetry: trace timestamps are simulated cycles, never wall clock — a time dependency here breaks bit-identical traces")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := selectionObj(pass.Info, sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			switch obj.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "time.%s outside bench tooling: simulated quantities must come from cycle counts, not wall clock (replay determinism)", obj.Name())
			}
			return true
		})
	}
}
