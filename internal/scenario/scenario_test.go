package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden scenario tables")

// renderMatrix runs the matrix at the given host parallelism and returns
// the emitted TSV bytes.
func renderMatrix(t *testing.T, opt Options) []byte {
	t.Helper()
	m := Run(opt)
	var buf bytes.Buffer
	if err := m.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkGolden compares got against the committed golden, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("scenario table differs from %s (regenerate with -update if the change is intended)", path)
	}
}

// TestMatrixGolden pins the full matrix's bytes against the committed
// golden — the table CI publishes and diffs.
func TestMatrixGolden(t *testing.T) {
	checkGolden(t, "scenarios_golden.tsv", renderMatrix(t, Options{}))
}

// TestMatrixSmokeGolden pins the `make verify` fast subset.
func TestMatrixSmokeGolden(t *testing.T) {
	checkGolden(t, "scenarios_smoke_golden.tsv", renderMatrix(t, Options{Smoke: true}))
}

// TestMatrixDeterministicAcrossWorkers is the acceptance criterion: the
// emitted table must be byte-identical at host worker counts {1, 2, 8}.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	ref := renderMatrix(t, Options{Parallel: 1})
	for _, workers := range []int{2, 8} {
		got := renderMatrix(t, Options{Parallel: workers})
		if !bytes.Equal(ref, got) {
			t.Errorf("parallel=%d: scenario table differs from parallel=1", workers)
		}
	}
}

// TestMatrixSanity checks the physics of the full matrix: healthy rows at
// slowdown 1, every degraded class at >= 1, failure classes reporting
// survivors and a recovery bill, heterogeneous classes reporting residual
// imbalance, and every row carrying a positive communication bound.
func TestMatrixSanity(t *testing.T) {
	m := Run(Options{})
	if len(m.Rows) != len(Classes())*len(Networks()) {
		t.Fatalf("matrix has %d rows", len(m.Rows))
	}
	imbalanced := map[string]bool{}
	for _, r := range m.Rows {
		if r.IterationSec <= 0 || r.ImagesPerSec <= 0 {
			t.Errorf("%s/%s: degenerate throughput %+v", r.Class, r.Network, r)
		}
		if r.BoundBytes <= 0 || r.AchievedBytes <= 0 {
			t.Errorf("%s/%s: missing byte accounting (achieved %d, bound %d)",
				r.Class, r.Network, r.AchievedBytes, r.BoundBytes)
		}
		switch r.Class {
		case "healthy":
			if r.Slowdown != 1 {
				t.Errorf("healthy/%s: slowdown %v != 1", r.Network, r.Slowdown)
			}
			if r.ImbalancePermille != 0 {
				t.Errorf("healthy/%s: imbalance %d", r.Network, r.ImbalancePermille)
			}
		default:
			if r.Slowdown < 1 {
				t.Errorf("%s/%s: degraded run faster than healthy (%v)", r.Class, r.Network, r.Slowdown)
			}
		}
		if r.Class == "dead-module" || r.Class == "dead-straggler" {
			if r.Survivors != r.Workers-1 {
				t.Errorf("%s/%s: survivors %d of %d", r.Class, r.Network, r.Survivors, r.Workers)
			}
			if r.ReconfigSec <= 0 {
				t.Errorf("%s/%s: free recovery", r.Class, r.Network)
			}
		} else if r.Survivors != r.Workers || r.ReconfigSec != 0 {
			t.Errorf("%s/%s: phantom failure (survivors %d, reconfig %v)",
				r.Class, r.Network, r.Survivors, r.ReconfigSec)
		}
		if r.ImbalancePermille > 0 {
			imbalanced[r.Class] = true
		}
	}
	for _, cl := range []string{"straggler-half", "straggler-quarter"} {
		if !imbalanced[cl] {
			t.Errorf("%s: load-aware sharding reported no residual imbalance on any network", cl)
		}
	}
	for _, l := range m.Layers {
		if l.BoundBytes <= 0 {
			t.Errorf("layer row %s/%s/%s: bound %d", l.Class, l.Network, l.Layer, l.BoundBytes)
		}
		if l.Ng < 1 || l.Nc < 1 {
			t.Errorf("layer row %s/%s/%s: grid (%d,%d)", l.Class, l.Network, l.Layer, l.Ng, l.Nc)
		}
	}
}
