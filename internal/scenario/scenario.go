// Package scenario runs the deterministic degraded-fleet scenario matrix:
// a seed-pinned grid of {fleet/fault class × network} simulated under the
// full MPT configuration, reporting per-scenario throughput, slowdown
// versus the healthy fleet, achieved-versus-lower-bound communication
// bytes, recovery cost, and residual shard imbalance. Every cell derives
// from the deterministic fault plans and the sim package's
// schedule-invariant cost model, so the emitted table is byte-identical at
// any host worker count — CI diffs it against a committed golden.
package scenario

import (
	"fmt"

	"mptwino/internal/fault"
	"mptwino/internal/model"
	"mptwino/internal/sim"
)

// Horizon is the pinned cycle window [0, Horizon) thermal-throttle
// episodes duty-average over when fleet plans fold into speed slices.
const Horizon = 1 << 20

// FleetClass is one fleet condition of the matrix: a capability-profile
// plan (nil = homogeneous fleet), plus permanently dead modules. The plan
// builder takes the provisioned worker count so one class definition works
// at any fleet size.
type FleetClass struct {
	Name   string
	Plan   func(workers int) *fault.Plan
	Failed []int
}

// Classes returns the canonical fleet conditions, healthy first. Seeds are
// pinned: the matrix must reproduce byte-identically forever.
func Classes() []FleetClass {
	return []FleetClass{
		{Name: "healthy"},
		{Name: "straggler-half", Plan: func(w int) *fault.Plan {
			return fault.SlowStragglerPlan(101, w, 17, 0.5)
		}},
		{Name: "straggler-quarter", Plan: func(w int) *fault.Plan {
			return fault.SlowStragglerPlan(103, w, 42, 0.25)
		}},
		{Name: "throttled-region", Plan: func(w int) *fault.Plan {
			// A hot quadrant: modules [64, 96) throttle to 0.6 over the
			// first half of the horizon (duty-averaged speed 0.8).
			return fault.ThrottledRegionPlan(107, w, 64, 96, 0.6, 0, Horizon/2)
		}},
		{Name: "mixed-generation", Plan: func(w int) *fault.Plan {
			return fault.MixedGenerationPlan(109, w, 0.7, 0.5)
		}},
		{Name: "dead-module", Failed: []int{17}},
		{Name: "dead-straggler", Failed: []int{17}, Plan: func(w int) *fault.Plan {
			return fault.SlowStragglerPlan(113, w, 42, 0.5)
		}},
	}
}

// Networks returns the evaluated CNNs in presentation order.
func Networks() []model.Network {
	return []model.Network{model.WRN40x10(), model.ResNet34(), model.FractalNet44()}
}

// Row is one scenario cell of the matrix.
type Row struct {
	Class   string
	Network string
	Config  sim.SystemConfig

	Workers   int
	Survivors int

	IterationSec float64
	ImagesPerSec float64
	// Slowdown is the cell's iteration time relative to the healthy
	// homogeneous fleet on the same network (1.0 on the healthy row).
	Slowdown float64

	// AchievedBytes is the per-worker communication total (tile + ring
	// collective fabrics, layer repeats applied); BoundBytes is the dense
	// per-worker floor (comm.LowerBoundBytes) summed the same way.
	// Reductions can push achieved below the dense bound.
	AchievedBytes int64
	BoundBytes    int64

	// ReconfigSec is the one-time recovery cost (0 without failures).
	ReconfigSec float64

	// ImbalancePermille is the worst per-layer residual shard imbalance.
	ImbalancePermille int64
}

// LayerRow is one layer of one scenario cell: the achieved-vs-bound bytes
// the acceptance criterion asks for, with the chosen grid.
type LayerRow struct {
	Class   string
	Network string
	Layer   string
	Ng, Nc  int

	AchievedBytes int64 // per worker, one layer instance (repeat not applied)
	BoundBytes    int64
}

// Matrix is one full scenario-matrix run.
type Matrix struct {
	Workers int
	Config  sim.SystemConfig
	Rows    []Row
	Layers  []LayerRow
}

// Options configures a matrix run.
type Options struct {
	// Workers is the provisioned fleet size (0 = the paper's 256).
	Workers int
	// Parallel bounds the sim host goroutines (0 = GOMAXPROCS); the
	// output is byte-identical for every value.
	Parallel int
	// Smoke trims the grid to {healthy, straggler-half, dead-straggler} ×
	// {WRN-40-10} — the fast subset `make verify` runs.
	Smoke bool
}

// Run executes the matrix. Iteration order (classes outer, networks inner)
// and every simulated value are deterministic, so two runs with equal
// Options produce identical matrices.
func Run(opt Options) Matrix {
	workers := opt.Workers
	if workers == 0 {
		workers = 256
	}
	classes := Classes()
	nets := Networks()
	if opt.Smoke {
		classes = []FleetClass{classes[0], classes[1], classes[6]}
		nets = nets[:1]
	}
	const cfg = sim.WMpFull

	m := Matrix{Workers: workers, Config: cfg}

	// Healthy homogeneous baselines, one per network, shared by every
	// class's slowdown column.
	healthy := make(map[string]sim.NetworkResult, len(nets))
	for _, net := range nets {
		s := baseSystem(workers, opt.Parallel)
		healthy[net.Name] = s.SimulateNetwork(net, cfg)
	}

	for _, cl := range classes {
		for _, net := range nets {
			s := baseSystem(workers, opt.Parallel)
			if cl.Plan != nil {
				plan := cl.Plan(workers)
				s.ComputeSpeeds, s.LinkSpeeds = plan.ModuleSpeeds(workers, 0, Horizon)
				s.LoadAware = true
			}

			var (
				res         sim.NetworkResult
				survivors   = workers
				reconfigSec float64
			)
			if len(cl.Failed) > 0 {
				rec, err := s.SimulateNetworkWithFailure(net, cfg, cl.Failed)
				if err != nil {
					// Class definitions are static and validated by the
					// package tests; an error here is a programming bug.
					panic(fmt.Sprintf("scenario %s/%s: %v", cl.Name, net.Name, err))
				}
				res = rec.Degraded
				survivors = rec.Survivors
				reconfigSec = rec.ReconfigSec
			} else {
				res = s.SimulateNetwork(net, cfg)
			}

			row := Row{
				Class:        cl.Name,
				Network:      net.Name,
				Config:       cfg,
				Workers:      workers,
				Survivors:    survivors,
				IterationSec: res.IterationSec,
				ImagesPerSec: res.ImagesPerSec,
				ReconfigSec:  reconfigSec,
			}
			if h := healthy[net.Name].IterationSec; h > 0 {
				row.Slowdown = res.IterationSec / h
			}
			for i, lr := range res.Layers {
				rep := int64(net.Layers[i].EffectiveRepeat())
				achieved := lr.TileBytes + lr.CollBytes
				row.AchievedBytes += achieved * rep
				row.BoundBytes += lr.BoundBytes * rep
				if lr.ShareImbalance > row.ImbalancePermille {
					row.ImbalancePermille = lr.ShareImbalance
				}
				m.Layers = append(m.Layers, LayerRow{
					Class:         cl.Name,
					Network:       net.Name,
					Layer:         lr.Name,
					Ng:            lr.Ng,
					Nc:            lr.Nc,
					AchievedBytes: achieved,
					BoundBytes:    lr.BoundBytes,
				})
			}
			m.Rows = append(m.Rows, row)
		}
	}
	return m
}

// baseSystem returns the evaluation machine one cell simulates on.
func baseSystem(workers, par int) sim.System {
	s := sim.DefaultSystem()
	s.Workers = workers
	s.Parallel = par
	return s
}
