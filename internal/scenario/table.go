package scenario

import (
	"bufio"
	"fmt"
	"io"
)

// WriteTSV emits the matrix as a machine-readable tab-separated table:
// a header comment pinning the run parameters, the scenario rows, then a
// [layers] section with per-layer achieved-vs-bound bytes. All floats use
// fixed precision and every simulated value is deterministic, so the bytes
// are identical across runs, host worker counts, and machines — the
// property the committed golden and the CI diff rely on.
func (m Matrix) WriteTSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mptwino scenario matrix\tworkers=%d\tconfig=%s\thorizon=%d\n",
		m.Workers, m.Config, int64(Horizon))
	fmt.Fprintln(bw, "scenario\tnetwork\tconfig\tworkers\tsurvivors\titer_ms\timg_per_s\tslowdown\tachieved_bytes\tbound_bytes\tbound_ratio\treconfig_us\timbalance_permille")
	for _, r := range m.Rows {
		ratio := 0.0
		if r.BoundBytes > 0 {
			ratio = float64(r.AchievedBytes) / float64(r.BoundBytes)
		}
		fmt.Fprintf(bw, "%s\t%s\t%s\t%d\t%d\t%.6f\t%.3f\t%.4f\t%d\t%d\t%.4f\t%.3f\t%d\n",
			r.Class, r.Network, r.Config, r.Workers, r.Survivors,
			r.IterationSec*1e3, r.ImagesPerSec, r.Slowdown,
			r.AchievedBytes, r.BoundBytes, ratio,
			r.ReconfigSec*1e6, r.ImbalancePermille)
	}
	fmt.Fprintln(bw, "[layers]")
	fmt.Fprintln(bw, "scenario\tnetwork\tlayer\tng\tnc\tachieved_bytes\tbound_bytes\tbound_ratio")
	for _, l := range m.Layers {
		ratio := 0.0
		if l.BoundBytes > 0 {
			ratio = float64(l.AchievedBytes) / float64(l.BoundBytes)
		}
		fmt.Fprintf(bw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%.4f\n",
			l.Class, l.Network, l.Layer, l.Ng, l.Nc,
			l.AchievedBytes, l.BoundBytes, ratio)
	}
	return bw.Flush()
}
