package gpu

import (
	"testing"

	"mptwino/internal/model"
)

func TestIterationTimePositiveAndMonotone(t *testing.T) {
	c := DGX1()
	net := model.ResNet34()
	t1 := c.IterationSec(net, 1, 256)
	t8 := c.IterationSec(net, 8, 256)
	if t1 <= 0 || t8 <= 0 {
		t.Fatal("non-positive iteration time")
	}
	if t8 >= t1 {
		t.Fatal("more GPUs should not be slower")
	}
}

// TestSubLinearScaling reproduces Fig. 17's GPU curve: at fixed batch 256,
// 8 GPUs deliver clearly less than 8× the 1-GPU throughput because the
// all-reduce does not shrink.
func TestSubLinearScaling(t *testing.T) {
	c := DGX1()
	for _, net := range model.AllNetworks() {
		s1 := c.ImagesPerSec(net, 1, net.Batch)
		s8 := c.ImagesPerSec(net, 8, net.Batch)
		scaling := s8 / s1
		if scaling >= 8 {
			t.Fatalf("%s: scaling %v not sub-linear", net.Name, scaling)
		}
		if scaling < 1.5 {
			t.Fatalf("%s: scaling %v implausibly poor", net.Name, scaling)
		}
	}
}

// TestLargerBatchScalesBetter: Fig. 18's premise — growing the batch
// amortizes the collective and improves 8-GPU throughput.
func TestLargerBatchScalesBetter(t *testing.T) {
	c := DGX1()
	net := model.FractalNet44()
	small := c.ImagesPerSec(net, 8, 256)
	large := c.ImagesPerSec(net, 8, 4096)
	if large <= small {
		t.Fatalf("batch 4096 (%v img/s) should beat 256 (%v img/s)", large, small)
	}
	b, ips := c.BestBatch(net, 8, 4096)
	if b < 1024 {
		t.Fatalf("best batch %d, expected >= 1024 (paper used 2K-4K)", b)
	}
	if ips < large*0.999 {
		t.Fatalf("BestBatch throughput %v below direct evaluation %v", ips, large)
	}
}

func TestWeightHeavyNetworksPayMoreCollective(t *testing.T) {
	c := DGX1()
	// FractalNet (≈180M params) must spend a larger fraction of its 8-GPU
	// iteration in the all-reduce than ResNet-34 (≈21M params). Measure by
	// disabling the collective (infinite bus bandwidth) and comparing.
	collShare := func(net model.Network) float64 {
		withColl := c.IterationSec(net, 8, 256)
		free := c
		free.AllReduceBW = 1e30
		without := free.IterationSec(net, 8, 256)
		return (withColl - without) / withColl
	}
	fn := collShare(model.FractalNet44())
	rn := collShare(model.ResNet34())
	if fn <= rn {
		t.Fatalf("FractalNet collective share %v should exceed ResNet-34's %v", fn, rn)
	}
	if fn <= 0 {
		t.Fatal("collective share must be positive")
	}
}

func TestSystemPower(t *testing.T) {
	c := DGX1()
	if c.SystemPowerW(8) <= c.SystemPowerW(1) {
		t.Fatal("power must grow with GPUs")
	}
	// 8 GPUs land in the paper's 1800-2600 W comparison window.
	p := c.SystemPowerW(8)
	if p < 1800 || p > 3200 {
		t.Fatalf("8-GPU power %v W outside plausible window", p)
	}
}

func TestIterationPanicsOnZeroGPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("0 GPUs accepted")
		}
	}()
	DGX1().IterationSec(model.ResNet34(), 0, 256)
}
