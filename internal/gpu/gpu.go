// Package gpu is the analytic multi-GPU baseline standing in for the
// paper's measured DGX-1 (8× V100) system (Section VII-C). It models the
// two effects Fig. 17 depends on: per-GPU compute shrinking as the fixed
// total batch is split across more GPUs, and the weight-gradient ring
// all-reduce whose per-GPU traffic stays nearly constant — producing the
// sub-linear scaling the paper measures.
package gpu

import "mptwino/internal/model"

// Config describes one GPU and the multi-GPU fabric.
type Config struct {
	Name string

	// PeakFLOPS is the per-GPU peak (V100 tensor cores: 125 TFLOPS FP16).
	PeakFLOPS float64
	// Utilization is the achieved fraction of peak on convolution training
	// kernels (cuDNN Winograd/implicit-GEMM with TensorFlow overheads).
	Utilization float64
	// AllReduceBW is the effective per-GPU bus bandwidth of the NCCL ring
	// all-reduce over NVLink (6 links, 6 rings when all 8 GPUs are used).
	AllReduceBW float64
	// LaunchOverheadSec is charged once per layer per phase (kernel launch
	// + framework dispatch).
	LaunchOverheadSec float64
	// BytesPerParam is the gradient payload width (FP16 training: 2).
	BytesPerParam int
	// BoardPowerW is the per-GPU power draw under load.
	BoardPowerW float64
}

// DGX1 returns the paper's comparison system: V100 GPUs with NVLink,
// TensorFlow 1.4 + cuDNN 7 + NCCL, FP16 tensor-core training.
func DGX1() Config {
	return Config{
		Name:              "DGX-1 V100",
		PeakFLOPS:         125e12,
		Utilization:       0.35,
		AllReduceBW:       60e9,
		LaunchOverheadSec: 15e-6,
		BytesPerParam:     2,
		BoardPowerW:       300,
	}
}

// layerFLOPs returns the training FLOPs of one layer at the given batch:
// fprop + bprop + updateGrad ≈ 3 × (2 MACs per output tap).
func layerFLOPs(l model.Layer, batch int) float64 {
	p := l.P
	macs := float64(batch) * float64(p.OutH()) * float64(p.OutW()) *
		float64(p.In) * float64(p.Out) * float64(p.K*p.K)
	return 3 * 2 * macs
}

// IterationSec returns the data-parallel training iteration time of net on
// gpus GPUs at the given total batch size.
func (c Config) IterationSec(net model.Network, gpus, batch int) float64 {
	if gpus < 1 {
		panic("gpu: need at least one GPU")
	}
	var total float64
	for _, l := range net.Layers {
		rep := float64(l.EffectiveRepeat())
		compute := layerFLOPs(l, batch) / float64(gpus) / (c.PeakFLOPS * c.Utilization)
		coll := 0.0
		if gpus > 1 {
			grad := float64(l.P.In*l.P.Out*l.P.K*l.P.K) * float64(c.BytesPerParam)
			coll = 2 * grad * float64(gpus-1) / float64(gpus) / c.AllReduceBW
		}
		total += rep * (compute + coll + 3*c.LaunchOverheadSec)
	}
	return total
}

// ImagesPerSec returns training throughput.
func (c Config) ImagesPerSec(net model.Network, gpus, batch int) float64 {
	return float64(batch) / c.IterationSec(net, gpus, batch)
}

// BestBatch sweeps total batch sizes (powers of two from the network's
// default up to maxBatch) and returns the batch with the highest
// throughput — the Fig. 18 protocol ("we increased the batch size for the
// multi-GPU system and selected the batch size that resulted in the best
// performance").
func (c Config) BestBatch(net model.Network, gpus, maxBatch int) (batch int, imagesPerSec float64) {
	best, bestIPS := net.Batch, 0.0
	for b := net.Batch; b <= maxBatch; b *= 2 {
		ips := c.ImagesPerSec(net, gpus, b)
		if ips > bestIPS {
			best, bestIPS = b, ips
		}
	}
	return best, bestIPS
}

// SystemPowerW returns the power of a gpus-GPU system including a fixed
// host share (CPUs, memory, fans — the DGX-1 chassis).
func (c Config) SystemPowerW(gpus int) float64 {
	const hostShareW = 400
	return float64(gpus)*c.BoardPowerW + hostShareW
}
