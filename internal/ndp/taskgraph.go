package ndp

import "fmt"

// Task is one node of the control unit's task graph (Section VI-A): a
// computation block sized to the systolic array, with data dependencies on
// prior tasks. Durations are in cycles; DRAM traffic is streamed under
// double buffering, so a task occupies the worker for
// max(ComputeCycles, dramCycles).
type Task struct {
	ID      int
	Name    string
	Compute int64 // systolic/vector cycles
	DRAM    int64 // bytes streamed to/from local DRAM
	Deps    []int // IDs of tasks that must complete first

	// Scheduling results, filled by Schedule.
	Start, Finish int64
}

// TaskGraph is a per-worker DAG of tasks.
type TaskGraph struct {
	Tasks []*Task
}

// Add appends a task and returns its ID.
func (g *TaskGraph) Add(name string, compute, dram int64, deps ...int) int {
	id := len(g.Tasks)
	g.Tasks = append(g.Tasks, &Task{ID: id, Name: name, Compute: compute, DRAM: dram, Deps: deps})
	return id
}

// Schedule executes the graph on one worker with the paper's
// update-counter dependency check: each task holds a counter of completed
// predecessors and becomes ready when the counter reaches its dependency
// count; the task scheduler then issues ready tasks in pre-defined (ID)
// order, one at a time (the single systolic array serializes compute).
// It returns the makespan in cycles or an error on a dependency cycle or
// bad dependency ID.
func (g *TaskGraph) Schedule(cfg Config) (int64, error) {
	n := len(g.Tasks)
	counters := make([]int, n)
	dependents := make([][]int, n)
	for _, t := range g.Tasks {
		for _, d := range t.Deps {
			if d < 0 || d >= n {
				return 0, fmt.Errorf("ndp: task %d depends on unknown task %d", t.ID, d)
			}
			if d == t.ID {
				return 0, fmt.Errorf("ndp: task %d depends on itself", t.ID)
			}
			dependents[d] = append(dependents[d], t.ID)
		}
	}

	ready := make([]int, 0, n)
	for _, t := range g.Tasks {
		if len(t.Deps) == 0 {
			ready = append(ready, t.ID)
		}
	}
	var clock int64
	done := 0
	depFinish := make([]int64, n) // latest finish among predecessors
	for len(ready) > 0 {
		// Pre-defined order: lowest ID first.
		best := 0
		for i := 1; i < len(ready); i++ {
			if ready[i] < ready[best] {
				best = i
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)

		t := g.Tasks[id]
		start := clock
		if depFinish[id] > start {
			start = depFinish[id]
		}
		dur := t.Compute
		dramCycles := int64(cfg.DRAMSeconds(t.DRAM) * cfg.ClockHz)
		if dramCycles > dur {
			dur = dramCycles // double buffering: overlap, take the max
		}
		t.Start = start
		t.Finish = start + dur
		clock = t.Finish
		done++

		for _, dep := range dependents[id] {
			counters[dep]++
			if depFinish[dep] < t.Finish {
				depFinish[dep] = t.Finish
			}
			if counters[dep] == len(g.Tasks[dep].Deps) {
				ready = append(ready, dep)
			}
		}
	}
	if done != n {
		return 0, fmt.Errorf("ndp: dependency cycle — only %d of %d tasks ran", done, n)
	}
	return clock, nil
}
