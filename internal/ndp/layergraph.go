package ndp

import (
	"fmt"

	"mptwino/internal/conv"
	"mptwino/internal/winograd"
)

// LayerGraphSpec describes one worker's share of a Winograd layer training
// iteration under MPT, from which BuildLayerGraph derives the §VI-A task
// graph ("the host builds a task graph of the given CNN structure ...
// a single convolution layer can be composed of multiple task nodes").
type LayerGraphSpec struct {
	Tr    *winograd.Transform
	P     conv.Params
	Batch int
	Ng    int // groups (this worker computes T²/Ng tile elements)
	Nc    int // clusters (this worker holds 1/Nc of the batch)
}

// LayerGraph is the constructed per-worker graph plus the IDs of its
// phase-boundary tasks, so callers (and tests) can reason about structure.
type LayerGraph struct {
	Graph TaskGraph

	InputTransform int   // spatial → Winograd transform of the local shard
	FwdDots        []int // one dot-product task per owned tile element
	Gather         int   // tile gathering + inverse output transform
	Activation     int   // ReLU/pooling on the vector unit
	GradTransform  int   // dy → Winograd domain
	BwdDots        []int // bprop dot products
	GradDots       []int // updateGrad dot products
	ReduceChunks   []int // pipelined collective chunks (256 B each → capped)
}

// BuildLayerGraph constructs the task graph one NDP worker executes for a
// full training iteration (fprop, bprop, updateGrad) of the layer. Task
// durations come from the worker's timing model; dependencies encode the
// paper's update-counter scheme: dots wait on the input transform, the
// gather waits on every dot, the backward phases wait on the (externally
// produced) output gradient, and each collective chunk waits on all grad
// dots.
func BuildLayerGraph(cfg Config, spec LayerGraphSpec) (*LayerGraph, error) {
	if spec.Ng < 1 || spec.Nc < 1 {
		return nil, fmt.Errorf("ndp: bad MPT shape Ng=%d Nc=%d", spec.Ng, spec.Nc)
	}
	if err := spec.P.Validate(); err != nil {
		return nil, err
	}
	tr := spec.Tr
	if spec.P.K != tr.R {
		return nil, fmt.Errorf("ndp: kernel %d does not match transform %s", spec.P.K, tr)
	}
	t2 := tr.T * tr.T
	elems := (t2 + spec.Ng - 1) / spec.Ng
	tilesH := (spec.P.OutH() + tr.M - 1) / tr.M
	tilesW := (spec.P.OutW() + tr.M - 1) / tr.M
	rows := int64(spec.Batch) * int64(tilesH) * int64(tilesW) / int64(spec.Nc)
	if rows < 1 {
		rows = 1
	}

	lg := &LayerGraph{}
	g := &lg.Graph

	// fprop: transform the local shard's inputs (vector unit + DRAM read
	// of the spatial maps, write of the Winograd tiles).
	inBytes := 4 * rows * int64(spec.P.In) * int64(t2)
	transformCycles := cfg.VectorCycles(rows * int64(spec.P.In) * int64(t2*tr.T) * 2)
	lg.InputTransform = g.Add("fprop/input-transform", transformCycles, 2*inBytes)

	// One dot-product task per owned element: (rows×In)·(In×Out).
	dotCycles := cfg.MatmulCycles(rows, int64(spec.P.In), int64(spec.P.Out))
	wShard := 4 * int64(spec.P.In) * int64(spec.P.Out) * int64(t2) / int64(spec.Ng)
	for e := 0; e < elems; e++ {
		id := g.Add(fmt.Sprintf("fprop/dot-e%d", e), dotCycles,
			inBytes/int64(elems)+wShard/int64(elems), lg.InputTransform)
		lg.FwdDots = append(lg.FwdDots, id)
	}

	// Gather + inverse transform of the complete output tiles.
	outBytes := 4 * rows * int64(spec.P.Out) * int64(t2)
	invCycles := cfg.VectorCycles(rows * int64(spec.P.Out) * int64(tr.M*tr.T+tr.M*tr.M) * 2)
	lg.Gather = g.Add("fprop/gather-inverse", invCycles, outBytes, lg.FwdDots...)

	// Activation (+ pooling) on the spatial neurons.
	actCycles := cfg.VectorCycles(rows * int64(spec.P.Out) * int64(tr.M*tr.M))
	lg.Activation = g.Add("fprop/activation", actCycles, 0, lg.Gather)

	// bprop: the output gradient arrives from the next layer; its
	// transform depends on our forward activation having completed (the
	// iteration's serialization point in a single-layer view).
	lg.GradTransform = g.Add("bprop/grad-transform", transformCycles, 2*outBytes, lg.Activation)
	bdotCycles := cfg.MatmulCycles(rows, int64(spec.P.Out), int64(spec.P.In))
	gdotCycles := cfg.MatmulCycles(int64(spec.P.In), rows, int64(spec.P.Out))
	for e := 0; e < elems; e++ {
		id := g.Add(fmt.Sprintf("bprop/dot-e%d", e), bdotCycles,
			outBytes/int64(elems)+wShard/int64(elems), lg.GradTransform)
		lg.BwdDots = append(lg.BwdDots, id)
		gid := g.Add(fmt.Sprintf("update/dot-e%d", e), gdotCycles,
			(inBytes+outBytes)/int64(elems), lg.GradTransform, lg.InputTransform)
		lg.GradDots = append(lg.GradDots, gid)
	}

	// Collective: the group's dW shard leaves in 256 B pipelined chunks;
	// model the chunk stream as tasks gated on all grad dots (the paper's
	// Reduce blocks let chunks of different messages interleave, so chunk
	// count here is capped to keep graphs small while preserving the
	// dependency structure).
	chunks := int(wShard / 256)
	if chunks < 1 {
		chunks = 1
	}
	if chunks > 32 {
		chunks = 32
	}
	chunkBytes := wShard / int64(chunks)
	for c := 0; c < chunks; c++ {
		id := g.Add(fmt.Sprintf("update/reduce-chunk%d", c),
			cfg.VectorCycles(chunkBytes/4), chunkBytes, lg.GradDots...)
		lg.ReduceChunks = append(lg.ReduceChunks, id)
	}
	return lg, nil
}
