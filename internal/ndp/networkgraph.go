package ndp

import (
	"fmt"

	"mptwino/internal/model"
	"mptwino/internal/winograd"
)

// NetworkGraph chains per-layer task graphs into the full CNN training
// graph the host builds at start-up (§VI-A): "feature maps may have
// dependency to the previous layers, and weights may have dependency to
// the previous iteration".
type NetworkGraph struct {
	Graph  TaskGraph
	Layers []*LayerGraph // one per expanded layer instance, forward order
}

// BuildNetworkGraph expands a network's layers (honoring Repeat) into a
// single per-worker task graph for `iterations` training iterations under
// the (Ng, Nc) organization:
//
//   - each layer's input transform depends on the previous layer's
//     activation (forward feature-map dependency);
//   - each layer's grad transform depends on the *next* layer's backward
//     dots (backward feature-map dependency), replacing the single-layer
//     placeholder dependency;
//   - each layer's forward dots in iteration i+1 depend on its collective
//     chunks of iteration i (the weight dependency to the previous
//     iteration).
func BuildNetworkGraph(cfg Config, net model.Network, ng, nc, iterations int) (*NetworkGraph, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("ndp: need at least one iteration")
	}
	out := &NetworkGraph{}
	var prevIter []*LayerGraph
	for it := 0; it < iterations; it++ {
		var thisIter []*LayerGraph
		layerIdx := 0
		for _, l := range net.Layers {
			for rep := 0; rep < l.EffectiveRepeat(); rep++ {
				tr, err := winograd.ForKernel(l.P.K, ng)
				if err != nil {
					return nil, err
				}
				lg, err := appendLayerGraph(&out.Graph, cfg, LayerGraphSpec{
					Tr: tr, P: l.P, Batch: net.Batch, Ng: ng, Nc: nc,
				})
				if err != nil {
					return nil, fmt.Errorf("ndp: layer %s: %w", l.Name, err)
				}
				// Forward chaining within the iteration.
				if layerIdx > 0 {
					prev := thisIter[layerIdx-1]
					addDep(&out.Graph, lg.InputTransform, prev.Activation)
				}
				// Weight dependency to the previous iteration.
				if prevIter != nil {
					for _, d := range lg.FwdDots {
						for _, c := range prevIter[layerIdx].ReduceChunks {
							addDep(&out.Graph, d, c)
						}
					}
				}
				thisIter = append(thisIter, lg)
				layerIdx++
			}
		}
		// Backward chaining: layer i's grad transform waits for layer
		// i+1's backward dots (the gradient flows backward).
		for i := 0; i < len(thisIter)-1; i++ {
			for _, bd := range thisIter[i+1].BwdDots {
				addDep(&out.Graph, thisIter[i].GradTransform, bd)
			}
		}
		out.Layers = append(out.Layers, thisIter...)
		prevIter = thisIter
	}
	return out, nil
}

// addDep appends a dependency edge if not already present.
func addDep(g *TaskGraph, task, dep int) {
	for _, d := range g.Tasks[task].Deps {
		if d == dep {
			return
		}
	}
	g.Tasks[task].Deps = append(g.Tasks[task].Deps, dep)
}

// appendLayerGraph is BuildLayerGraph but appending into an existing graph,
// so multiple layers share one ID space.
func appendLayerGraph(g *TaskGraph, cfg Config, spec LayerGraphSpec) (*LayerGraph, error) {
	sub, err := BuildLayerGraph(cfg, spec)
	if err != nil {
		return nil, err
	}
	offset := len(g.Tasks)
	for _, t := range sub.Graph.Tasks {
		deps := make([]int, len(t.Deps))
		for i, d := range t.Deps {
			deps[i] = d + offset
		}
		g.Add(t.Name, t.Compute, t.DRAM, deps...)
	}
	shift := func(ids []int) []int {
		out := make([]int, len(ids))
		for i, id := range ids {
			out[i] = id + offset
		}
		return out
	}
	return &LayerGraph{
		Graph:          TaskGraph{}, // tasks live in the shared graph
		InputTransform: sub.InputTransform + offset,
		FwdDots:        shift(sub.FwdDots),
		Gather:         sub.Gather + offset,
		Activation:     sub.Activation + offset,
		GradTransform:  sub.GradTransform + offset,
		BwdDots:        shift(sub.BwdDots),
		GradDots:       shift(sub.GradDots),
		ReduceChunks:   shift(sub.ReduceChunks),
	}, nil
}
