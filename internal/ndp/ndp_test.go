package ndp

import (
	"math"
	"testing"
	"testing/quick"

	"math/rand"

	"mptwino/internal/conv"
	"mptwino/internal/model"
	"mptwino/internal/winograd"
)

func TestMatmulCycles(t *testing.T) {
	c := DefaultConfig()
	// A single 64×64 output block with k=256: 256+64 cycles.
	if got := c.MatmulCycles(64, 256, 64); got != 320 {
		t.Fatalf("cycles = %d, want 320", got)
	}
	// 2×2 output blocks quadruple it.
	if got := c.MatmulCycles(128, 256, 128); got != 4*320 {
		t.Fatalf("cycles = %d, want 1280", got)
	}
	// Degenerate sizes cost nothing.
	if c.MatmulCycles(0, 5, 5) != 0 {
		t.Fatal("zero-size matmul should be free")
	}
}

func TestMatmulNearPeakForLargeK(t *testing.T) {
	c := DefaultConfig()
	// Utilization approaches 100% as k grows: MACs / (cycles · S²) → 1.
	m, k, n := int64(64), int64(64*1024), int64(64)
	cycles := c.MatmulCycles(m, k, n)
	util := float64(m*k*n) / (float64(cycles) * float64(c.SystolicDim*c.SystolicDim))
	if util < 0.95 {
		t.Fatalf("utilization %v, want > 0.95", util)
	}
}

func TestDRAMSeconds(t *testing.T) {
	c := DefaultConfig()
	// 256 GB at 320 GB/s × 0.8 = 1 second.
	if got := c.DRAMSeconds(256 << 30); math.Abs(got-256.0/(320*0.8)*(1<<30)/1e9*1e9/(1<<30)*1) > 0.05 {
		// simpler check below
		_ = got
	}
	got := c.DRAMSeconds(int64(320e9 * 0.8))
	if math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("DRAMSeconds = %v, want 1.0", got)
	}
	if c.DRAMSeconds(0) != 0 || c.DRAMSeconds(-5) != 0 {
		t.Fatal("non-positive bytes should cost nothing")
	}
}

func TestVectorCycles(t *testing.T) {
	c := DefaultConfig()
	c.VectorLanes = 64
	if c.VectorCycles(64) != 1 || c.VectorCycles(65) != 2 || c.VectorCycles(0) != 0 {
		t.Fatal("vector cycle rounding wrong")
	}
}

func TestPhaseSeconds(t *testing.T) {
	if PhaseSeconds(3, 1, 2) != 3 || PhaseSeconds(1, 5, 2) != 5 || PhaseSeconds(1, 2, 9) != 9 {
		t.Fatal("PhaseSeconds should be the max")
	}
}

func TestFP16ConfigBiggerArray(t *testing.T) {
	if FP16Config().SystolicDim != 96 {
		t.Fatal("FP16 variant should be 96×96")
	}
	if FP16Config().PeakMACsPerSec() <= DefaultConfig().PeakMACsPerSec() {
		t.Fatal("FP16 variant should have higher peak")
	}
}

func TestWeightsFitInBuffer(t *testing.T) {
	c := DefaultConfig()
	if !c.WeightsFitInBuffer(512 << 10) {
		t.Fatal("512KB should fit")
	}
	if c.WeightsFitInBuffer(513 << 10) {
		t.Fatal("513KB should not fit")
	}
}

func TestTaskGraphLinearChain(t *testing.T) {
	c := DefaultConfig()
	var g TaskGraph
	a := g.Add("a", 100, 0)
	b := g.Add("b", 200, 0, a)
	g.Add("c", 50, 0, b)
	makespan, err := g.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	if makespan != 350 {
		t.Fatalf("makespan = %d, want 350", makespan)
	}
	if g.Tasks[1].Start != 100 || g.Tasks[2].Start != 300 {
		t.Fatal("chain start times wrong")
	}
}

func TestTaskGraphDoubleBufferingOverlap(t *testing.T) {
	c := DefaultConfig()
	var g TaskGraph
	// 100 compute cycles vs DRAM bytes worth 200 cycles: task takes 200.
	dramBytes := int64(c.DRAMBw * c.DRAMEff * 200 / c.ClockHz)
	g.Add("io-bound", 100, dramBytes)
	makespan, err := g.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	if makespan < 199 || makespan > 201 {
		t.Fatalf("makespan = %d, want ~200 (max, not sum)", makespan)
	}
}

func TestTaskGraphDiamondDependency(t *testing.T) {
	c := DefaultConfig()
	var g TaskGraph
	a := g.Add("a", 10, 0)
	b1 := g.Add("b1", 10, 0, a)
	b2 := g.Add("b2", 20, 0, a)
	g.Add("join", 5, 0, b1, b2)
	makespan, err := g.Schedule(c)
	if err != nil {
		t.Fatal(err)
	}
	// Serialized on one worker: 10 + 10 + 20 + 5.
	if makespan != 45 {
		t.Fatalf("makespan = %d, want 45", makespan)
	}
	// The join must start only after both b1 and b2 finished.
	if g.Tasks[3].Start != 40 {
		t.Fatalf("join start = %d, want 40", g.Tasks[3].Start)
	}
}

func TestTaskGraphErrors(t *testing.T) {
	var g TaskGraph
	g.Add("bad", 1, 0, 7)
	if _, err := g.Schedule(DefaultConfig()); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	var g2 TaskGraph
	a := g2.Add("a", 1, 0)
	g2.Tasks[a].Deps = []int{a}
	if _, err := g2.Schedule(DefaultConfig()); err == nil {
		t.Fatal("self dependency accepted")
	}
	// Mutual cycle.
	var g3 TaskGraph
	x := g3.Add("x", 1, 0)
	y := g3.Add("y", 1, 0, x)
	g3.Tasks[x].Deps = []int{y}
	if _, err := g3.Schedule(DefaultConfig()); err == nil {
		t.Fatal("dependency cycle accepted")
	}
}

func TestActivationMap(t *testing.T) {
	m := NewActivationMap(4)
	if m.LiveCount() != 4 {
		t.Fatal("fresh map should be all live")
	}
	m.Kill(1)
	m.Kill(3)
	if m.LiveCount() != 2 {
		t.Fatalf("LiveCount = %d", m.LiveCount())
	}
}

func TestPackingDMARoundTrip(t *testing.T) {
	dma := PackingDMA{UnitLen: 2}
	m := NewActivationMap(3)
	m.Kill(1)
	data := []float32{1, 2, 3, 4, 5, 6}
	packed := dma.Pack(data, m)
	want := []float32{1, 2, 5, 6}
	if len(packed) != 4 {
		t.Fatalf("packed len %d", len(packed))
	}
	for i := range want {
		if packed[i] != want[i] {
			t.Fatalf("packed = %v", packed)
		}
	}
	back := dma.Unpack(packed, m)
	wantBack := []float32{1, 2, 0, 0, 5, 6}
	for i := range wantBack {
		if back[i] != wantBack[i] {
			t.Fatalf("unpacked = %v", back)
		}
	}
}

// Property: Pack/Unpack round-trips live data and zeroes dead data, for
// random activation maps.
func TestPackingDMAProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := seed
		next := func(n int) int {
			rnd += 0x9e3779b97f4a7c15
			z := rnd
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			return int((z ^ (z >> 27)) % uint64(n))
		}
		units := 1 + next(10)
		unitLen := 1 + next(5)
		dma := PackingDMA{UnitLen: unitLen}
		m := NewActivationMap(units)
		for i := 0; i < units; i++ {
			if next(2) == 0 {
				m.Kill(i)
			}
		}
		data := make([]float32, units*unitLen)
		for i := range data {
			data[i] = float32(next(1000)) + 1 // never zero
		}
		back := dma.Unpack(dma.Pack(data, m), m)
		for i := 0; i < units; i++ {
			for j := 0; j < unitLen; j++ {
				v := back[i*unitLen+j]
				if m.Live[i] && v != data[i*unitLen+j] {
					return false
				}
				if !m.Live[i] && v != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestPackingDMAPanicsOnBadLengths(t *testing.T) {
	dma := PackingDMA{UnitLen: 2}
	m := NewActivationMap(2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad pack length did not panic")
		}
	}()
	dma.Pack([]float32{1, 2, 3}, m)
}

func TestReduceBlockInOrder(t *testing.T) {
	rb := NewReduceBlock(7, 2)
	out, err := rb.Accept(Chunk{MsgID: 7, Index: 0, Data: []float32{1, 2}})
	if err != nil || out != nil {
		t.Fatalf("first contribution should buffer: %v %v", out, err)
	}
	out, err = rb.Accept(Chunk{MsgID: 7, Index: 0, Data: []float32{10, 20}})
	if err != nil || out == nil {
		t.Fatalf("second contribution should release: %v %v", out, err)
	}
	if out[0] != 11 || out[1] != 22 {
		t.Fatalf("reduced = %v", out)
	}
	if rb.Adds() != 2 {
		t.Fatalf("adds = %d", rb.Adds())
	}
	if rb.Pending() != 0 {
		t.Fatal("chunk not released")
	}
}

func TestReduceBlockOutOfOrderAcrossChunks(t *testing.T) {
	// Chunks 3 and 1 arrive interleaved from link and local compute — the
	// exact scenario the multiple communication buffers exist for.
	rb := NewReduceBlock(1, 2)
	mustNil := func(c Chunk) {
		t.Helper()
		out, err := rb.Accept(c)
		if err != nil || out != nil {
			t.Fatalf("unexpected release: %v %v", out, err)
		}
	}
	mustNil(Chunk{MsgID: 1, Index: 3, Data: []float32{1}})
	mustNil(Chunk{MsgID: 1, Index: 1, Data: []float32{2}})
	if rb.Pending() != 2 {
		t.Fatalf("pending = %d", rb.Pending())
	}
	out, _ := rb.Accept(Chunk{MsgID: 1, Index: 1, Data: []float32{5}})
	if out == nil || out[0] != 7 {
		t.Fatalf("chunk 1 reduce = %v", out)
	}
	out, _ = rb.Accept(Chunk{MsgID: 1, Index: 3, Data: []float32{10}})
	if out == nil || out[0] != 11 {
		t.Fatalf("chunk 3 reduce = %v", out)
	}
}

func TestReduceBlockErrors(t *testing.T) {
	rb := NewReduceBlock(1, 2)
	if _, err := rb.Accept(Chunk{MsgID: 2, Index: 0, Data: []float32{1}}); err == nil {
		t.Fatal("foreign message accepted")
	}
	rb.Accept(Chunk{MsgID: 1, Index: 0, Data: []float32{1, 2}})
	if _, err := rb.Accept(Chunk{MsgID: 1, Index: 0, Data: []float32{1}}); err == nil {
		t.Fatal("size mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("contributions<1 accepted")
		}
	}()
	NewReduceBlock(0, 0)
}

func layerSpec() LayerGraphSpec {
	return LayerGraphSpec{
		Tr:    winograd.F2x2_3x3,
		P:     conv.Params{In: 64, Out: 64, K: 3, Pad: 1, H: 14, W: 14},
		Batch: 256,
		Ng:    16,
		Nc:    16,
	}
}

func TestBuildLayerGraphStructure(t *testing.T) {
	lg, err := BuildLayerGraph(DefaultConfig(), layerSpec())
	if err != nil {
		t.Fatal(err)
	}
	// 16 groups over a 4x4 tile: one element per worker.
	if len(lg.FwdDots) != 1 || len(lg.BwdDots) != 1 || len(lg.GradDots) != 1 {
		t.Fatalf("dot task counts: %d/%d/%d", len(lg.FwdDots), len(lg.BwdDots), len(lg.GradDots))
	}
	if len(lg.ReduceChunks) == 0 {
		t.Fatal("no collective chunks")
	}
	makespan, err := lg.Graph.Schedule(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if makespan <= 0 {
		t.Fatal("empty makespan")
	}
	// Phase ordering on the schedule: transform < dots < gather < act.
	tasks := lg.Graph.Tasks
	if !(tasks[lg.InputTransform].Finish <= tasks[lg.FwdDots[0]].Start) {
		t.Fatal("dot started before input transform finished")
	}
	if !(tasks[lg.FwdDots[0]].Finish <= tasks[lg.Gather].Start) {
		t.Fatal("gather started before dots finished")
	}
	if !(tasks[lg.Gather].Finish <= tasks[lg.Activation].Start) {
		t.Fatal("activation started before gather")
	}
	// Every reduce chunk starts after every grad dot.
	for _, c := range lg.ReduceChunks {
		for _, g := range lg.GradDots {
			if tasks[c].Start < tasks[g].Finish {
				t.Fatal("collective chunk started before grad dots")
			}
		}
	}
}

func TestBuildLayerGraphFourGroups(t *testing.T) {
	spec := layerSpec()
	spec.Ng = 4
	lg, err := BuildLayerGraph(DefaultConfig(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(lg.FwdDots) != 4 {
		t.Fatalf("4 groups over 16 elements should give 4 dot tasks, got %d", len(lg.FwdDots))
	}
	m4, err := lg.Graph.Schedule(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec.Ng = 16
	lg16, _ := BuildLayerGraph(DefaultConfig(), spec)
	m16, err := lg16.Graph.Schedule(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Same cluster count but 4x the elements per worker: more dot work.
	if m4 <= m16 {
		t.Fatalf("4-group makespan %d should exceed 16-group %d", m4, m16)
	}
}

func TestBuildLayerGraphValidation(t *testing.T) {
	spec := layerSpec()
	spec.Ng = 0
	if _, err := BuildLayerGraph(DefaultConfig(), spec); err == nil {
		t.Fatal("Ng=0 accepted")
	}
	spec = layerSpec()
	spec.P.K = 5
	if _, err := BuildLayerGraph(DefaultConfig(), spec); err == nil {
		t.Fatal("kernel/transform mismatch accepted")
	}
	spec = layerSpec()
	spec.P.In = 0
	if _, err := BuildLayerGraph(DefaultConfig(), spec); err == nil {
		t.Fatal("invalid layer accepted")
	}
}

func tinyNet() model.Network {
	return model.Network{
		Name:  "tiny",
		Batch: 64,
		Layers: []model.Layer{
			{Name: "a", P: conv.Params{In: 16, Out: 16, K: 3, Pad: 1, H: 14, W: 14}},
			{Name: "b", P: conv.Params{In: 16, Out: 32, K: 3, Pad: 1, H: 14, W: 14}, Repeat: 2},
		},
	}
}

func TestBuildNetworkGraphStructure(t *testing.T) {
	cfg := DefaultConfig()
	ng, err := BuildNetworkGraph(cfg, tinyNet(), 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 3 expanded layers × 2 iterations.
	if len(ng.Layers) != 6 {
		t.Fatalf("expanded layers = %d, want 6", len(ng.Layers))
	}
	makespan, err := ng.Graph.Schedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if makespan <= 0 {
		t.Fatal("empty makespan")
	}
	tasks := ng.Graph.Tasks

	// Forward chaining: layer 1's transform after layer 0's activation.
	if tasks[ng.Layers[1].InputTransform].Start < tasks[ng.Layers[0].Activation].Finish {
		t.Fatal("layer chaining violated")
	}
	// Backward chaining: layer 0's grad transform after layer 1's bdots.
	for _, bd := range ng.Layers[1].BwdDots {
		if tasks[ng.Layers[0].GradTransform].Start < tasks[bd].Finish {
			t.Fatal("backward chaining violated")
		}
	}
	// Weight dependency: iteration 2 of layer 0 (index 3) starts its dots
	// only after iteration 1's collective finished.
	for _, d := range ng.Layers[3].FwdDots {
		for _, c := range ng.Layers[0].ReduceChunks {
			if tasks[d].Start < tasks[c].Finish {
				t.Fatal("weight dependency to previous iteration violated")
			}
		}
	}
}

func TestBuildNetworkGraphMakespanScalesWithIterations(t *testing.T) {
	cfg := DefaultConfig()
	m := func(iters int) int64 {
		g, err := BuildNetworkGraph(cfg, tinyNet(), 4, 4, iters)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := g.Graph.Schedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	m1, m2 := m(1), m(2)
	if m2 < 2*m1 || m2 > 2*m1+m1/10 {
		t.Fatalf("2-iteration makespan %d not ~2x single %d", m2, m1)
	}
}

func TestBuildNetworkGraphErrors(t *testing.T) {
	if _, err := BuildNetworkGraph(DefaultConfig(), tinyNet(), 4, 4, 0); err == nil {
		t.Fatal("0 iterations accepted")
	}
	bad := tinyNet()
	bad.Layers[0].P.K = 7
	if _, err := BuildNetworkGraph(DefaultConfig(), bad, 4, 4, 1); err == nil {
		t.Fatal("unsupported kernel accepted")
	}
}
