// Package ndp models one near-data-processing worker of Section VI: the
// logic-layer compute units (systolic array + vector processor), the
// 3D-stacked DRAM bandwidth, the double-buffered SRAM, the task-graph
// scheduler with update-counter dependency checks, and the two
// communication processing elements (packing DMA for tile transfer, Reduce
// blocks for ring collectives).
package ndp

// Config is the per-worker hardware configuration of Section VI-B /
// Table III.
type Config struct {
	SystolicDim int     // S: S×S MAC array (64 for FP32; 96 for the FP16 variant)
	ClockHz     float64 // logic and router clock, 1 GHz
	DRAMBw      float64 // bytes/sec of local 3D-stacked DRAM (320 GB/s)
	DRAMEff     float64 // achievable fraction under FR-FCFS streaming (0<eff<=1)
	// VectorLanes is the aggregate FP32 op throughput per cycle of the
	// vector processor plus the dedicated transformation units in the
	// communication logic (Fig. 13(b)) — Winograd transforms are streaming
	// multiply-adds pipelined with the systolic array, so their combined
	// width must be a sizable fraction of the array's edge throughput.
	VectorLanes int

	InputBufBytes  int // per instance; double-buffered ×2 (512 KB each)
	OutputBufBytes int // 128 KB
}

// DefaultConfig returns the paper's FP32 worker: 64×64 MACs @1 GHz,
// 320 GB/s DRAM, 512 KB double-buffered input SRAM, 128 KB output SRAM.
func DefaultConfig() Config {
	return Config{
		SystolicDim:    64,
		ClockHz:        1e9,
		DRAMBw:         320e9,
		DRAMEff:        0.8,
		VectorLanes:    512,
		InputBufBytes:  512 << 10,
		OutputBufBytes: 128 << 10,
	}
}

// FP16Config returns the entire-CNN evaluation variant: "Systolic array is
// configured to 96×96 MAC array ... which [has] similar area and power
// consumption compared to the 64×64 FP32 configuration."
func FP16Config() Config {
	c := DefaultConfig()
	c.SystolicDim = 96
	return c
}

// PeakMACsPerSec returns the array's peak MAC throughput.
func (c Config) PeakMACsPerSec() float64 {
	return float64(c.SystolicDim*c.SystolicDim) * c.ClockHz
}

// MatmulCycles returns the systolic-array cycle count for an (m×k)·(k×n)
// matrix multiplication: the output is tiled into S×S blocks; each block
// streams k partial sums plus an S-cycle drain, with one side of the input
// held in the reuse buffer (Section VI-B).
func (c Config) MatmulCycles(m, k, n int64) int64 {
	if m <= 0 || k <= 0 || n <= 0 {
		return 0
	}
	s := int64(c.SystolicDim)
	tiles := ((m + s - 1) / s) * ((n + s - 1) / s)
	return tiles * (k + s)
}

// MatmulSeconds converts MatmulCycles to seconds.
func (c Config) MatmulSeconds(m, k, n int64) float64 {
	return float64(c.MatmulCycles(m, k, n)) / c.ClockHz
}

// VectorCycles returns the vector-unit cycle count for n streaming FP32
// operations (transform multiply-adds, ReLU, pooling, joins).
func (c Config) VectorCycles(n int64) int64 {
	if n <= 0 {
		return 0
	}
	lanes := int64(c.VectorLanes)
	return (n + lanes - 1) / lanes
}

// DRAMSeconds returns the time to stream n bytes through local DRAM at the
// effective bandwidth.
func (c Config) DRAMSeconds(n int64) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) / (c.DRAMBw * c.DRAMEff)
}

// PhaseSeconds combines one compute phase's systolic time, vector time and
// DRAM time under double buffering: compute overlaps DRAM streaming, so
// the phase takes the maximum of the three, not the sum — the balance
// Section VI-B sizes the array for ("the number of MAC units was
// determined ... to balance the computation with the available DRAM
// bandwidth").
func PhaseSeconds(systolic, vector, dram float64) float64 {
	t := systolic
	if vector > t {
		t = vector
	}
	if dram > t {
		t = dram
	}
	return t
}

// WeightsFitInBuffer reports whether a Winograd-domain weight shard fits in
// the double-buffered input SRAM — the condition for the "half of the
// input data ... unchanged and reused from the on-chip buffer" streaming
// pattern.
func (c Config) WeightsFitInBuffer(shardBytes int64) bool {
	return shardBytes <= int64(c.InputBufBytes)
}
