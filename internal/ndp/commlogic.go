package ndp

import "fmt"

// ActivationMap records which transfer units (tiles, lines, or elements)
// carry data. It is shared between source and destination workers so the
// receiver can re-expand packed payloads (Section VI-C: "the information of
// skipped data ... is shared ... through activation map of input and
// output tiles").
type ActivationMap struct {
	Live []bool
}

// NewActivationMap builds a map of n units, all live.
func NewActivationMap(n int) *ActivationMap {
	m := &ActivationMap{Live: make([]bool, n)}
	for i := range m.Live {
		m.Live[i] = true
	}
	return m
}

// Kill marks unit i as skipped (predicted non-activated or zero).
func (m *ActivationMap) Kill(i int) { m.Live[i] = false }

// LiveCount returns the number of units that must be transferred.
func (m *ActivationMap) LiveCount() int {
	n := 0
	for _, l := range m.Live {
		if l {
			n++
		}
	}
	return n
}

// PackingDMA implements the pointer-shift-register packing of Fig. 13(b):
// instead of shifting data through registers, per-unit pointers select the
// live units, which are then packetized in order. Pack gathers the live
// units of data (unitLen values each) into a dense payload; Unpack
// re-expands a payload at the receiver, zero-filling skipped units.
type PackingDMA struct {
	UnitLen int // values per transfer unit
}

// Pack returns the dense payload for data under the activation map.
// len(data) must be len(m.Live)·UnitLen.
func (p PackingDMA) Pack(data []float32, m *ActivationMap) []float32 {
	if len(data) != len(m.Live)*p.UnitLen {
		panic(fmt.Sprintf("ndp: pack length %d != %d units × %d", len(data), len(m.Live), p.UnitLen))
	}
	out := make([]float32, 0, m.LiveCount()*p.UnitLen)
	for i, live := range m.Live {
		if live {
			out = append(out, data[i*p.UnitLen:(i+1)*p.UnitLen]...)
		}
	}
	return out
}

// Unpack expands payload back to the full unit array, writing zeros for
// skipped units (the receiver-side zero fill of zero-skipping).
func (p PackingDMA) Unpack(payload []float32, m *ActivationMap) []float32 {
	if len(payload) != m.LiveCount()*p.UnitLen {
		panic(fmt.Sprintf("ndp: unpack payload %d != %d live units × %d", len(payload), m.LiveCount(), p.UnitLen))
	}
	out := make([]float32, len(m.Live)*p.UnitLen)
	pos := 0
	for i, live := range m.Live {
		if live {
			copy(out[i*p.UnitLen:(i+1)*p.UnitLen], payload[pos:pos+p.UnitLen])
			pos += p.UnitLen
		}
	}
	return out
}

// Chunk is one pipelined-collective packet: a slice of a weight-gradient
// message (Section VI-C uses 256-byte chunks).
type Chunk struct {
	MsgID int
	Index int
	Data  []float32
}

// ReduceBlock implements the out-of-order chunk handling of Fig. 13(c):
// chunks of the same message arrive in order, but chunks from different
// messages interleave arbitrarily. Each block owns one message's
// communication buffer; Accept either stores a new chunk or elementwise-
// accumulates into the stored one, and reports when the chunk is ready to
// forward to the next ring hop.
type ReduceBlock struct {
	MsgID    int
	expected int // contributions required per chunk before forwarding
	buf      map[int][]float32
	count    map[int]int
	adds     int64
}

// NewReduceBlock builds a block for msgID that forwards each chunk after
// contributions arrivals (ring reduce: 1 local + 1 upstream = 2... the
// caller decides; for a plain store-and-forward hop use 1).
func NewReduceBlock(msgID, contributions int) *ReduceBlock {
	if contributions < 1 {
		panic("ndp: ReduceBlock needs at least one contribution")
	}
	return &ReduceBlock{
		MsgID:    msgID,
		expected: contributions,
		buf:      make(map[int][]float32),
		count:    make(map[int]int),
	}
}

// Accept merges a chunk. It returns the reduced data when the chunk has
// received all contributions (ready to send to the next worker), or nil
// while it waits. Chunks for foreign messages are rejected.
func (r *ReduceBlock) Accept(c Chunk) ([]float32, error) {
	if c.MsgID != r.MsgID {
		return nil, fmt.Errorf("ndp: reduce block for msg %d got chunk of msg %d", r.MsgID, c.MsgID)
	}
	stored, ok := r.buf[c.Index]
	if !ok {
		cp := make([]float32, len(c.Data))
		copy(cp, c.Data)
		r.buf[c.Index] = cp
		r.count[c.Index] = 1
	} else {
		if len(stored) != len(c.Data) {
			return nil, fmt.Errorf("ndp: chunk %d size mismatch %d vs %d", c.Index, len(stored), len(c.Data))
		}
		for i, v := range c.Data {
			stored[i] += v
		}
		r.adds += int64(len(c.Data))
		r.count[c.Index]++
	}
	if r.count[c.Index] >= r.expected {
		out := r.buf[c.Index]
		delete(r.buf, c.Index)
		delete(r.count, c.Index)
		return out, nil
	}
	return nil, nil
}

// Adds returns the FP32 additions performed (for energy accounting).
func (r *ReduceBlock) Adds() int64 { return r.adds }

// Pending returns the number of chunks buffered awaiting contributions.
func (r *ReduceBlock) Pending() int { return len(r.buf) }
