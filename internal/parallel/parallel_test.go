package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		requested, items, want int
	}{
		{0, 100, DefaultWorkers()},
		{4, 2, 2},    // never more workers than items
		{4, 100, 4},  // explicit request honored
		{-3, 1, 1},   // negative → default, clamped to items
		{8, 0, 1},    // degenerate item count still yields a valid pool
		{1, 1000, 1}, // sequential request stays sequential
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.items); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.items, got, c.want)
		}
	}
}

func TestSetDefaultWorkersRoundTrip(t *testing.T) {
	orig := DefaultWorkers()
	prev := SetDefaultWorkers(3)
	if prev != orig {
		t.Fatalf("SetDefaultWorkers returned %d, want previous %d", prev, orig)
	}
	if DefaultWorkers() != 3 {
		t.Fatalf("DefaultWorkers = %d after override, want 3", DefaultWorkers())
	}
	SetDefaultWorkers(0) // restore env/GOMAXPROCS default
	if DefaultWorkers() < 1 {
		t.Fatalf("restored default %d < 1", DefaultWorkers())
	}
	SetDefaultWorkers(orig)
}

func TestMapDeterministicOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got := Map(workers, 1000, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryItemExactlyOnce(t *testing.T) {
	counts := make([]int32, 500)
	ForEach(7, len(counts), func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestForEachWorkerRunsEveryItemWithValidWorker(t *testing.T) {
	const workers = 5
	counts := make([]int32, 300)
	var badWorker atomic.Bool
	ForEachWorker(workers, len(counts), func(w, i int) {
		if w < 0 || w >= workers {
			badWorker.Store(true)
		}
		atomic.AddInt32(&counts[i], 1)
	})
	if badWorker.Load() {
		t.Fatal("worker index out of range")
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestForEachWorkerSingleWorkerInline(t *testing.T) {
	var order []int
	ForEachWorker(1, 4, func(w, i int) {
		if w != 0 {
			t.Fatalf("single-worker path passed worker %d", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker path out of order: %v", order)
		}
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	// Every odd item fails; the lowest failing index (1) must win
	// regardless of schedule.
	for _, workers := range []int{1, 2, 8} {
		err := ForEachErr(workers, 64, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 1" {
			t.Fatalf("workers=%d: err = %v, want item 1", workers, err)
		}
	}
}

func TestForEachErrStopsSchedulingAfterError(t *testing.T) {
	var ran int32
	sentinel := errors.New("boom")
	err := ForEachErr(2, 100000, func(i int) error {
		atomic.AddInt32(&ran, 1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if n := atomic.LoadInt32(&ran); n > 100 {
		t.Fatalf("ran %d items after first error; cancellation not effective", n)
	}
}

func TestMapErrSuccessAndFailure(t *testing.T) {
	out, err := MapErr(4, 10, func(i int) (int, error) { return i + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	_, err = MapErr(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("three")
		}
		return i, nil
	})
	if err == nil || err.Error() != "three" {
		t.Fatalf("err = %v, want three", err)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "kaboom" {
					t.Fatalf("workers=%d: recovered %v, want kaboom", workers, r)
				}
			}()
			ForEach(workers, 16, func(i int) {
				if i == 5 {
					panic("kaboom")
				}
			})
			t.Fatalf("workers=%d: ForEach returned without panicking", workers)
		}()
	}
}

func TestShardsCoverContiguously(t *testing.T) {
	for _, c := range []struct{ n, workers int }{{10, 3}, {1, 8}, {16, 16}, {7, 2}, {0, 4}} {
		shards := Shards(c.n, c.workers)
		covered := 0
		prev := 0
		for _, s := range shards {
			if s[0] != prev {
				t.Fatalf("Shards(%d,%d): gap at %d", c.n, c.workers, s[0])
			}
			if s[1] <= s[0] {
				t.Fatalf("Shards(%d,%d): empty shard %v", c.n, c.workers, s)
			}
			covered += s[1] - s[0]
			prev = s[1]
		}
		if covered != c.n {
			t.Fatalf("Shards(%d,%d) covered %d items", c.n, c.workers, covered)
		}
		if len(shards) > c.workers && c.workers > 0 {
			t.Fatalf("Shards(%d,%d) produced %d shards", c.n, c.workers, len(shards))
		}
	}
}

func TestPoolBarrierAndReuse(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("Workers = %d", p.Workers())
	}
	// Many successive barriers must each see every shard exactly once —
	// the per-cycle usage pattern of the NoC stepper.
	for cycle := 0; cycle < 200; cycle++ {
		var mask int32
		p.Run(func(shard int) {
			atomic.AddInt32(&mask, 1<<shard)
		})
		if mask != 0b1111 {
			t.Fatalf("cycle %d: shard mask %04b", cycle, mask)
		}
	}
}

func TestPoolPanicPropagates(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	defer func() {
		if r := recover(); r != "shard-fail" {
			t.Fatalf("recovered %v", r)
		}
	}()
	p.Run(func(shard int) {
		if shard == 1 {
			panic("shard-fail")
		}
	})
	t.Fatal("Run returned without panicking")
}

// TestForEachWorkerIndexIsExclusive is the misuse regression the noalloc
// scratch design leans on: ForEachWorker's contract is that a worker
// index is never handed to two goroutines at the same time, so per-worker
// scratch (GEMM panels, staging tiles) needs no locking. Each item flips
// its worker's busy flag on entry and clears it on exit; a CAS failure
// would mean two concurrent items observed the same pool index.
func TestForEachWorkerIndexIsExclusive(t *testing.T) {
	const workers, items = 8, 4096
	busy := make([]atomic.Int32, workers)
	var violations atomic.Int32
	ForEachWorker(workers, items, func(worker, item int) {
		if worker < 0 || worker >= workers {
			t.Errorf("worker index %d out of range [0,%d)", worker, workers)
		}
		if !busy[worker].CompareAndSwap(0, 1) {
			violations.Add(1)
		}
		// Hold the slot long enough for a duplicate index to collide.
		for spin := 0; spin < 100; spin++ {
			_ = spin
		}
		busy[worker].Store(0)
	})
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d items saw their worker index concurrently reused — per-worker scratch would race", n)
	}
}
