// Package parallel is the host-side parallel execution engine: bounded
// worker pools that fan independent work items out across goroutines while
// keeping results deterministically ordered by item index. It is the
// substrate under the sim sweep fan-out, the sharded NoC cycle loop, and
// the tile-batched Winograd/conv kernels (DESIGN.md §7).
//
// Determinism contract: Map/ForEach write each item's result to its own
// index slot, and every caller folds those slots in index order, so the
// outcome is bit-identical for any worker count — goroutines only change
// wall-clock time, never results. Errors propagate errgroup-style (first
// error by lowest item index wins, remaining items are cancelled) and
// panics re-raise on the calling goroutine.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that overrides the default
// worker count (useful for benchmarking the sequential path: set it to 1).
const EnvWorkers = "MPTWINO_WORKERS"

var defaultWorkers atomic.Int64

func init() { defaultWorkers.Store(int64(envDefault())) }

func envDefault() int {
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultWorkers returns the process-wide default pool size: the
// MPTWINO_WORKERS environment variable if set, otherwise GOMAXPROCS.
func DefaultWorkers() int { return int(defaultWorkers.Load()) }

// SetDefaultWorkers overrides the process-wide default (n <= 0 restores
// the environment/GOMAXPROCS default) and returns the previous value.
// Tests use it to pin worker counts for determinism sweeps.
func SetDefaultWorkers(n int) int {
	prev := int(defaultWorkers.Load())
	if n <= 0 {
		n = envDefault()
	}
	defaultWorkers.Store(int64(n))
	return prev
}

// Workers resolves a requested worker count against an item count:
// requested <= 0 means DefaultWorkers, and the pool never exceeds the
// number of items (spawning idle goroutines helps nothing).
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// panicBox records the first (lowest-index) panic raised by a work item so
// the caller can re-raise it after the pool drains.
type panicBox struct {
	mu  sync.Mutex
	idx int
	val any
	set bool
}

func (p *panicBox) record(idx int, val any) {
	p.mu.Lock()
	if !p.set || idx < p.idx {
		p.idx, p.val, p.set = idx, val, true
	}
	p.mu.Unlock()
}

func (p *panicBox) rethrow() {
	if p.set {
		panic(p.val)
	}
}

// ForEach runs fn(i) for every i in [0, n) on at most `workers`
// goroutines (see Workers for the <=0 convention). It returns when all
// items finish. A panic in fn is re-raised on the caller after the other
// workers drain.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	countFanout(n)
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
		pb   panicBox
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							pb.record(i, r)
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
}

// ForEachWorker is ForEach with the worker's pool index passed alongside
// the item index, so callers can hand each goroutine its own scratch slot
// (packing buffers, staging tiles) without allocation or locking. worker is
// in [0, Workers(workers, n)); the single-worker path always passes 0. The
// determinism contract is unchanged — worker identity may only steer
// scratch reuse, never results.
func ForEachWorker(workers, n int, fn func(worker, item int)) {
	if n <= 0 {
		return
	}
	countFanout(n)
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next int64 = -1
		wg   sync.WaitGroup
		pb   panicBox
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							pb.record(i, r)
						}
					}()
					fn(worker, i)
				}()
			}
		}(g)
	}
	wg.Wait()
	pb.rethrow()
}

// ForEachErr runs fn(i) for every i in [0, n) on at most `workers`
// goroutines with errgroup-style semantics: once any item errors, no new
// items start, and after the pool drains the error of the lowest index
// that failed is returned (deterministic regardless of schedule).
func ForEachErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	countFanout(n)
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    int64 = -1
		stopped atomic.Bool
		wg      sync.WaitGroup
		pb      panicBox
	)
	errs := make([]error, n)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							pb.record(i, r)
							stopped.Store(true)
						}
					}()
					if err := fn(i); err != nil {
						errs[i] = err
						stopped.Store(true)
					}
				}()
			}
		}()
	}
	wg.Wait()
	pb.rethrow()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on at most `workers` goroutines
// and returns the results ordered by index — the deterministic fan-out
// primitive under the sim sweeps.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// MapErr is Map with error propagation: on failure it returns a nil slice
// and the error of the lowest item index that failed.
func MapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachErr(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Shards partitions n items into at most `workers` contiguous [lo, hi)
// ranges of near-equal size — the static partitioning used where work
// must stay grouped (e.g. NoC links grouped by source router).
func Shards(n, workers int) [][2]int {
	w := Workers(workers, n)
	if n <= 0 {
		return nil
	}
	out := make([][2]int, 0, w)
	for s := 0; s < w; s++ {
		lo := s * n / w
		hi := (s + 1) * n / w
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
