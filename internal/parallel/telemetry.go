package parallel

import (
	"sync/atomic"

	"mptwino/internal/telemetry"
)

// Telemetry hooks. The engine is below every instrumented package, so the
// handles live in package-level atomic pointers: Attach stores them
// race-safely, and the fan-out primitives bump whatever is attached (a nil
// handle drops the update — the zero-cost disabled path).
//
// Only worker-count-invariant quantities are counted: fan-out calls, item
// totals, and pool barriers are the same whether the items run on one
// goroutine or eight, so the metrics snapshot stays bit-identical across
// MPTWINO_WORKERS settings — the same contract the result slots already
// obey. One caveat: these counters measure actual engine entries, and
// callers with a closure-free sequential fast path (the winograd Into
// kernels, see winograd/scratch.go) bypass the engine entirely at one
// worker — engine-usage counts are invariant per call site, not across
// call-site selection. Cross-worker-count byte-equality tests therefore
// cover the sim sweeps (which always enter the engine) and leave kernel
// engine usage as a diagnostic, not a model metric.
var (
	ctrCalls    atomic.Pointer[telemetry.Counter] // ForEach-family fan-outs
	ctrItems    atomic.Pointer[telemetry.Counter] // total items fanned out
	ctrBarriers atomic.Pointer[telemetry.Counter] // Pool.Run barriers
	gaugePool   atomic.Pointer[telemetry.Gauge]   // peak pool size
)

// Attach points the engine's instrumentation at reg's instruments:
//
//	parallel.calls         fan-out invocations (ForEach/ForEachWorker/ForEachErr/Map/MapErr)
//	parallel.items         total work items across those fan-outs
//	parallel.pool_barriers fork-join barriers executed by persistent Pools
//	parallel.pool_workers  peak persistent-pool size (occupancy ceiling)
//
// Attach(nil) detaches. Safe to call concurrently with running fan-outs.
func Attach(reg *telemetry.Registry) {
	ctrCalls.Store(reg.Counter("parallel.calls"))
	ctrItems.Store(reg.Counter("parallel.items"))
	ctrBarriers.Store(reg.Counter("parallel.pool_barriers"))
	gaugePool.Store(reg.Gauge("parallel.pool_workers"))
}

// countFanout records one fan-out of n items (no-op when detached).
func countFanout(n int) {
	ctrCalls.Load().Inc()
	ctrItems.Load().Add(int64(n))
}
