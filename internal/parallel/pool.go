package parallel

import "sync"

// Pool is a fixed set of long-lived workers for repeated barrier-style
// sharded execution. The NoC cycle loop runs three sharded stages per
// simulated cycle; spawning goroutines each time would dominate the work,
// so a Pool keeps one goroutine per shard alive across cycles and Run acts
// as a fork-join barrier. Workers are addressed by shard index, so a stage
// function can keep per-shard scratch without locking.
type Pool struct {
	ch []chan func(shard int)
	wg sync.WaitGroup // open workers, for Close
}

// NewPool starts `workers` pool goroutines (at least 1). Close must be
// called to release them.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	gaugePool.Load().Max(int64(workers))
	p := &Pool{ch: make([]chan func(int), workers)}
	p.wg.Add(workers)
	for i := range p.ch {
		c := make(chan func(int))
		p.ch[i] = c
		go func(shard int) {
			defer p.wg.Done()
			for fn := range c {
				fn(shard)
			}
		}(i)
	}
	return p
}

// Workers returns the pool's shard count.
func (p *Pool) Workers() int { return len(p.ch) }

// Run executes fn(shard) once per shard, each on its dedicated worker, and
// returns when all shards complete (a full barrier). A panic in any shard
// re-raises on the caller (lowest shard index wins) after the barrier.
func (p *Pool) Run(fn func(shard int)) {
	ctrBarriers.Load().Inc()
	var (
		wg sync.WaitGroup
		pb panicBox
	)
	wg.Add(len(p.ch))
	job := func(shard int) {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				pb.record(shard, r)
			}
		}()
		fn(shard)
	}
	for _, c := range p.ch {
		c <- job
	}
	wg.Wait()
	pb.rethrow()
}

// Close shuts the pool's workers down and waits for them to exit. Run must
// not be called after Close.
func (p *Pool) Close() {
	for _, c := range p.ch {
		close(c)
	}
	p.wg.Wait()
}
