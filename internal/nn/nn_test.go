package nn

import (
	"math"
	"testing"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
	"mptwino/internal/workload"
)

func TestReLUForwardBackward(t *testing.T) {
	r := &ReLU{}
	x := tensor.FromSlice(1, 1, 1, 4, []float32{-1, 2, 0, 3})
	y := r.Forward(x)
	want := []float32{0, 2, 0, 3}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("ReLU fwd = %v", y.Data)
		}
	}
	dy := tensor.FromSlice(1, 1, 1, 4, []float32{5, 5, 5, 5})
	dx := r.Backward(dy)
	wantDx := []float32{0, 5, 0, 5}
	for i := range wantDx {
		if dx.Data[i] != wantDx[i] {
			t.Fatalf("ReLU bwd = %v", dx.Data)
		}
	}
}

func TestReLUBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(&ReLU{}).Backward(tensor.New(1, 1, 1, 1))
}

func TestAvgPool2(t *testing.T) {
	p := &AvgPool2{}
	x := tensor.FromSlice(1, 1, 2, 2, []float32{1, 2, 3, 6})
	y := p.Forward(x)
	if y.H != 1 || y.W != 1 || y.Data[0] != 3 {
		t.Fatalf("pool fwd = %v", y.Data)
	}
	dy := tensor.FromSlice(1, 1, 1, 1, []float32{8})
	dx := p.Backward(dy)
	for _, v := range dx.Data {
		if v != 2 {
			t.Fatalf("pool bwd = %v", dx.Data)
		}
	}
}

func TestAvgPool2OddDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for odd dims")
		}
	}()
	(&AvgPool2{}).Forward(tensor.New(1, 1, 3, 4))
}

func TestDenseGradCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	d := NewDense(6, 3, rng)
	x := tensor.New(2, 6, 1, 1)
	rng.FillNormal(x, 0, 1)
	labels := []int{1, 2}

	logits := d.Forward(x)
	_, dl := SoftmaxCrossEntropy(logits, labels)
	d.Backward(dl)

	const eps = 1e-2
	// Check two weight entries against finite differences.
	for _, idx := range []int{0, 7} {
		orig := d.W.Data[idx]
		analytic := float64(d.dW.Data[idx])
		d.W.Data[idx] = orig + eps
		lp, _ := SoftmaxCrossEntropy(d.Forward(x), labels)
		d.W.Data[idx] = orig - eps
		lm, _ := SoftmaxCrossEntropy(d.Forward(x), labels)
		d.W.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
			t.Fatalf("dW[%d]: numeric %v vs analytic %v", idx, numeric, analytic)
		}
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln 4.
	logits := tensor.New(1, 4, 1, 1)
	loss, dl := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4", loss)
	}
	// Gradient sums to zero, negative only at the label.
	var sum float64
	for c := 0; c < 4; c++ {
		g := float64(dl.At(0, c, 0, 0))
		sum += g
		if c == 2 && g >= 0 {
			t.Fatal("label gradient should be negative")
		}
		if c != 2 && g <= 0 {
			t.Fatal("non-label gradient should be positive")
		}
	}
	if math.Abs(sum) > 1e-6 {
		t.Fatalf("gradient sum = %v", sum)
	}
}

func TestSoftmaxPanics(t *testing.T) {
	logits := tensor.New(1, 4, 1, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label count mismatch accepted")
			}
		}()
		SoftmaxCrossEntropy(logits, []int{0, 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range label accepted")
			}
		}()
		SoftmaxCrossEntropy(logits, []int{7})
	}()
}

func TestWinoConvMatchesConvForward(t *testing.T) {
	p := conv.Params{In: 2, Out: 3, K: 3, Pad: 1, H: 8, W: 8}
	rng := tensor.NewRNG(5)
	c := NewConv(p, rng)
	wc, err := NewWinoConvFromSpatial(winograd.F2x2_3x3, p, c.W)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(2, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	y1 := c.Forward(x)
	y2 := wc.Forward(x)
	if d := y1.MaxAbsDiff(y2); d > 2e-3 {
		t.Fatalf("forward diverges: %v", d)
	}
	// And backward dx.
	dy := tensor.New(2, 3, 8, 8)
	rng.FillNormal(dy, 0, 1)
	dx1 := c.Backward(dy)
	dx2 := wc.Backward(dy)
	if d := dx1.MaxAbsDiff(dx2); d > 2e-3 {
		t.Fatalf("backward diverges: %v", d)
	}
}

// trainCNN builds a small CNN (conv→ReLU→pool→dense) and trains it on the
// quadrant task, returning final accuracy on the training batch.
func trainCNN(t *testing.T, useWinograd bool) float64 {
	t.Helper()
	rng := tensor.NewRNG(11)
	ds := workload.QuadrantBlobs(64, 1, 8, 8, 42)
	p := conv.Params{In: 1, Out: 4, K: 3, Pad: 1, H: 8, W: 8}

	var convLayer Layer
	if useWinograd {
		wc, err := NewWinoConv(winograd.F2x2_3x3, p, rng)
		if err != nil {
			t.Fatal(err)
		}
		convLayer = wc
	} else {
		convLayer = NewConv(p, rng)
	}
	net := &Sequential{Layers: []Layer{
		convLayer,
		&ReLU{},
		&AvgPool2{},
		NewDense(4*4*4, 4, rng),
	}}

	x, labels := ds.Batch(0, 64)
	var acc float64
	for epoch := 0; epoch < 30; epoch++ {
		logits := net.Forward(x)
		_, dl := SoftmaxCrossEntropy(logits, labels)
		net.Backward(dl)
		net.Step(0.1)
		acc = Accuracy(logits, labels)
	}
	return acc
}

func TestSmallCNNTrainsDirect(t *testing.T) {
	if acc := trainCNN(t, false); acc < 0.9 {
		t.Fatalf("direct CNN accuracy %v, want > 0.9", acc)
	}
}

func TestSmallCNNTrainsWinograd(t *testing.T) {
	if acc := trainCNN(t, true); acc < 0.9 {
		t.Fatalf("winograd CNN accuracy %v, want > 0.9", acc)
	}
}

// TestJoinModesEquivalent is the numeric core of Fig. 14: because the join
// (mean) is linear, moving it into the Winograd domain changes neither the
// forward output nor any gradient — the modified join must match the
// standard join to float tolerance on both passes.
func TestJoinModesEquivalent(t *testing.T) {
	p := conv.Params{In: 2, Out: 2, K: 3, Pad: 1, H: 8, W: 8}
	rng := tensor.NewRNG(17)
	std, err := NewFractalBlock(winograd.F2x2_3x3, p, SpatialJoin, rng)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewFractalBlock(winograd.F2x2_3x3, p, WinogradJoin, rng)
	if err != nil {
		t.Fatal(err)
	}
	mod.CloneWeightsFrom(std)

	x := tensor.New(2, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	y1 := std.Forward(x)
	y2 := mod.Forward(x)
	if d := y1.MaxAbsDiff(y2); d > 1e-4 {
		t.Fatalf("join forward diverges: %v", d)
	}

	dy := tensor.New(2, 2, 8, 8)
	rng.FillNormal(dy, 0, 1)
	dx1 := std.Backward(dy)
	dx2 := mod.Backward(dy)
	if d := dx1.MaxAbsDiff(dx2); d > 1e-3 {
		t.Fatalf("join backward diverges: %v", d)
	}
	// Weight gradients of every conv must also match.
	pairs := []struct{ a, b *winograd.Weights }{
		{std.dWA, mod.dWA}, {std.dWB1, mod.dWB1}, {std.dWB2, mod.dWB2},
	}
	for i, pr := range pairs {
		for e := range pr.a.El {
			for j := range pr.a.El[e].Data {
				if math.Abs(float64(pr.a.El[e].Data[j]-pr.b.El[e].Data[j])) > 1e-3 {
					t.Fatalf("weight gradient %d element %d diverges", i, e)
				}
			}
		}
	}
}

// TestFractalTrainingCurvesMatch trains both join modes from identical
// initialization and checks the loss trajectories stay equal — the "same
// validation accuracy" result of Fig. 14(b).
func TestFractalTrainingCurvesMatch(t *testing.T) {
	p := conv.Params{In: 1, Out: 4, K: 3, Pad: 1, H: 8, W: 8}
	rng := tensor.NewRNG(23)
	ds := workload.QuadrantBlobs(32, 1, 8, 8, 77)

	build := func(mode JoinMode, seed uint64) (*FractalBlock, *Sequential) {
		r := tensor.NewRNG(seed)
		blk, err := NewFractalBlock(winograd.F2x2_3x3, p, mode, r)
		if err != nil {
			t.Fatal(err)
		}
		head := &Sequential{Layers: []Layer{&ReLU{}, &AvgPool2{}, NewDense(4*4*4, 4, tensor.NewRNG(99))}}
		return blk, head
	}
	stdBlk, stdHead := build(SpatialJoin, 31)
	modBlk, modHead := build(WinogradJoin, 31)
	modBlk.CloneWeightsFrom(stdBlk)

	x, labels := ds.Batch(0, 32)
	for epoch := 0; epoch < 8; epoch++ {
		l1 := trainStep(stdBlk, stdHead, x, labels)
		l2 := trainStep(modBlk, modHead, x, labels)
		if math.Abs(l1-l2) > 1e-3*(1+math.Abs(l1)) {
			t.Fatalf("epoch %d: losses diverged %v vs %v", epoch, l1, l2)
		}
	}
	_ = rng
}

func trainStep(blk *FractalBlock, head *Sequential, x *tensor.Tensor, labels []int) float64 {
	h := blk.Forward(x)
	logits := head.Forward(h)
	loss, dl := SoftmaxCrossEntropy(logits, labels)
	dh := head.Backward(dl)
	blk.Backward(dh)
	head.Step(0.05)
	blk.Step(0.05)
	return loss
}

func TestTraceDataset(t *testing.T) {
	ds := workload.QuadrantBlobs(20, 2, 8, 8, 1)
	if ds.Images.N != 20 || ds.Classes != 4 {
		t.Fatal("dataset shape wrong")
	}
	seen := map[int]bool{}
	for _, l := range ds.Labels {
		if l < 0 || l > 3 {
			t.Fatalf("label %d out of range", l)
		}
		seen[l] = true
	}
	if len(seen) < 2 {
		t.Fatal("labels not diverse")
	}
	x, labels := ds.Batch(5, 9)
	if x.N != 4 || len(labels) != 4 {
		t.Fatal("batch extraction wrong")
	}
	// Batch content must match the source images.
	if x.At(0, 0, 0, 0) != ds.Images.At(5, 0, 0, 0) {
		t.Fatal("batch data mismatch")
	}
}

func TestGaussianImages(t *testing.T) {
	imgs := workload.GaussianImages(4, 3, 8, 8, 1.0, 2.0, 9)
	if imgs.N != 4 || imgs.C != 3 {
		t.Fatal("shape wrong")
	}
	var sum float64
	for _, v := range imgs.Data {
		sum += float64(v)
	}
	mean := sum / float64(imgs.Len())
	if math.Abs(mean-1.0) > 0.2 {
		t.Fatalf("mean = %v, want ~1", mean)
	}
}
