package nn

import (
	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// Conv is a direct-convolution layer with spatial weights — the d_dp
// algorithm as a trainable layer.
type Conv struct {
	P conv.Params
	W *tensor.Tensor // (Out, In, K, K)

	x  *tensor.Tensor
	dW *tensor.Tensor
}

// NewConv builds a He-initialized direct convolution layer.
func NewConv(p conv.Params, rng *tensor.RNG) *Conv {
	w := tensor.New(p.Out, p.In, p.K, p.K)
	rng.FillHe(w, p.In*p.K*p.K)
	return &Conv{P: p, W: w}
}

// Forward convolves and caches the input.
func (c *Conv) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.x = x
	return conv.Fprop(c.P, x, c.W)
}

// Backward accumulates dW and returns dx.
func (c *Conv) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if c.x == nil {
		panic("nn: Conv.Backward before Forward")
	}
	g := conv.UpdateGrad(c.P, c.x, dy)
	if c.dW == nil {
		c.dW = g
	} else {
		c.dW.AXPY(1, g)
	}
	return conv.Bprop(c.P, dy, c.W)
}

// Step applies SGD and clears the gradient.
func (c *Conv) Step(lr float32) {
	if c.dW == nil {
		return
	}
	c.W.AXPY(-lr, c.dW)
	c.dW = nil
}

// WinoConv is the paper's Winograd layer as a trainable nn.Layer: the
// parameters are the Winograd-domain weights, updated directly in the
// Winograd domain (Fig. 2(b)).
type WinoConv struct {
	L *winograd.Layer

	dW *winograd.Weights
}

// NewWinoConv builds a Winograd layer for geometry p under transform tr.
func NewWinoConv(tr *winograd.Transform, p conv.Params, rng *tensor.RNG) (*WinoConv, error) {
	l, err := winograd.NewLayer(tr, p, rng)
	if err != nil {
		return nil, err
	}
	return &WinoConv{L: l}, nil
}

// NewWinoConvFromSpatial builds a Winograd layer whose weights are the
// transform of the given spatial weights (for equivalence testing).
func NewWinoConvFromSpatial(tr *winograd.Transform, p conv.Params, w *tensor.Tensor) (*WinoConv, error) {
	l, err := winograd.NewLayerWithWeights(tr, p, w)
	if err != nil {
		return nil, err
	}
	return &WinoConv{L: l}, nil
}

// Forward runs the Winograd-domain forward pass.
func (c *WinoConv) Forward(x *tensor.Tensor) *tensor.Tensor {
	return c.L.Fprop(x)
}

// Backward accumulates the Winograd-domain gradient and returns dx.
func (c *WinoConv) Backward(dy *tensor.Tensor) *tensor.Tensor {
	g := c.L.UpdateGradW(dy)
	if c.dW == nil {
		c.dW = g
	} else {
		c.dW.AXPY(1, g)
	}
	return c.L.Bprop(dy)
}

// Step applies the Winograd-domain SGD update.
func (c *WinoConv) Step(lr float32) {
	if c.dW == nil {
		return
	}
	c.L.Step(lr, c.dW)
	c.dW = nil
}
