package nn

import (
	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// JoinMode selects where a FractalBlock averages its columns.
type JoinMode int

const (
	// SpatialJoin is FractalNet's standard join: each column inverse-
	// transforms its output to the spatial domain, then the mean is taken.
	SpatialJoin JoinMode = iota
	// WinogradJoin is the paper's modified join (Fig. 14): column outputs
	// are averaged as Winograd-domain tiles and only the joined result is
	// inverse-transformed — reducing transforms and tile gathering. The
	// join is linear, so this is numerically equivalent to SpatialJoin.
	WinogradJoin
)

// FractalBlock is a two-column fractal unit over a shared input:
//
//	column A: conv
//	column B: conv → ReLU → conv
//
// with outputs joined by mean (the paper applies ReLU after the join,
// which the caller adds). All convs run as Winograd layers with the same
// output geometry.
type FractalBlock struct {
	Mode JoinMode

	A     *winograd.Layer
	B1    *winograd.Layer
	BRelu *ReLU
	B2    *winograd.Layer

	// backward caches
	dWA, dWB1, dWB2 *winograd.Weights
	b1Out           *tensor.Tensor
}

// NewFractalBlock builds the block: pA maps the block input to the output
// channels directly (column A); column B goes through an intermediate
// layer of the same width.
func NewFractalBlock(tr *winograd.Transform, p conv.Params, mode JoinMode, rng *tensor.RNG) (*FractalBlock, error) {
	a, err := winograd.NewLayer(tr, p, rng)
	if err != nil {
		return nil, err
	}
	b1, err := winograd.NewLayer(tr, p, rng)
	if err != nil {
		return nil, err
	}
	// B2 consumes B1's output: same spatial size (same padding), channel
	// count = p.Out.
	p2 := p
	p2.In = p.Out
	b2, err := winograd.NewLayer(tr, p2, rng)
	if err != nil {
		return nil, err
	}
	return &FractalBlock{Mode: mode, A: a, B1: b1, BRelu: &ReLU{}, B2: b2}, nil
}

// Forward joins the two columns by mean under the configured mode.
func (f *FractalBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	b1y := f.B1.Fprop(x)
	f.b1Out = b1y
	b2in := f.BRelu.Forward(b1y)

	switch f.Mode {
	case WinogradJoin:
		ya := f.A.FpropDomain(x)
		yb := f.B2.FpropDomain(b2in)
		ya.AddDomain(yb)
		ya.Scale(0.5)
		return f.A.Tiling.InverseOutput(ya)
	default:
		ya := f.A.Fprop(x)
		yb := f.B2.Fprop(b2in)
		out := ya.Clone()
		out.AXPY(1, yb)
		out.Scale(0.5)
		return out
	}
}

// Backward propagates the joined gradient through both columns and
// accumulates all three weight gradients. Both modes compute the same
// mathematical gradient; WinogradJoin shares one output-gradient
// transform.
func (f *FractalBlock) Backward(dy *tensor.Tensor) *tensor.Tensor {
	var dxA, dxB *tensor.Tensor
	switch f.Mode {
	case WinogradJoin:
		dyd := f.A.Tiling.TransformOutputGrad(dy)
		dyd.Scale(0.5)
		f.accA(f.A.UpdateGradWDomain(dyd))
		dxA = f.A.BpropDomain(dyd)
		f.accB2(f.B2.UpdateGradWDomain(dyd))
		db2 := f.B2.BpropDomain(dyd)
		db1 := f.BRelu.Backward(db2)
		f.accB1(f.B1.UpdateGradW(db1))
		dxB = f.B1.Bprop(db1)
	default:
		half := dy.Clone()
		half.Scale(0.5)
		f.accA(f.A.UpdateGradW(half))
		dxA = f.A.Bprop(half)
		f.accB2(f.B2.UpdateGradW(half))
		db2 := f.B2.Bprop(half)
		db1 := f.BRelu.Backward(db2)
		f.accB1(f.B1.UpdateGradW(db1))
		dxB = f.B1.Bprop(db1)
	}
	dxA.AXPY(1, dxB)
	return dxA
}

func (f *FractalBlock) accA(g *winograd.Weights) {
	if f.dWA == nil {
		f.dWA = g
	} else {
		f.dWA.AXPY(1, g)
	}
}

func (f *FractalBlock) accB1(g *winograd.Weights) {
	if f.dWB1 == nil {
		f.dWB1 = g
	} else {
		f.dWB1.AXPY(1, g)
	}
}

func (f *FractalBlock) accB2(g *winograd.Weights) {
	if f.dWB2 == nil {
		f.dWB2 = g
	} else {
		f.dWB2.AXPY(1, g)
	}
}

// Step applies SGD to all three convolutions.
func (f *FractalBlock) Step(lr float32) {
	if f.dWA != nil {
		f.A.Step(lr, f.dWA)
		f.dWA = nil
	}
	if f.dWB1 != nil {
		f.B1.Step(lr, f.dWB1)
		f.dWB1 = nil
	}
	if f.dWB2 != nil {
		f.B2.Step(lr, f.dWB2)
		f.dWB2 = nil
	}
}

// CloneWeightsFrom copies the other block's weights (for equivalence
// experiments starting both modes from identical parameters).
func (f *FractalBlock) CloneWeightsFrom(o *FractalBlock) {
	f.A.W = o.A.W.Clone()
	f.B1.W = o.B1.W.Clone()
	f.B2.W = o.B2.W.Clone()
}
