package nn

import (
	"math"
	"testing"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
	"mptwino/internal/workload"
)

func TestMaxPool2ForwardBackward(t *testing.T) {
	p := &MaxPool2{}
	x := tensor.FromSlice(1, 1, 2, 4, []float32{
		1, 5, 2, 2,
		3, 4, 2, 9,
	})
	y := p.Forward(x)
	if y.At(0, 0, 0, 0) != 5 || y.At(0, 0, 0, 1) != 9 {
		t.Fatalf("maxpool fwd = %v", y.Data)
	}
	dy := tensor.FromSlice(1, 1, 1, 2, []float32{10, 20})
	dx := p.Backward(dy)
	// Gradients land exactly at the argmax positions.
	want := []float32{0, 10, 0, 0, 0, 0, 0, 20}
	for i := range want {
		if dx.Data[i] != want[i] {
			t.Fatalf("maxpool bwd = %v", dx.Data)
		}
	}
}

func TestMaxPool2Panics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("odd dims accepted")
			}
		}()
		(&MaxPool2{}).Forward(tensor.New(1, 1, 3, 4))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("backward before forward accepted")
			}
		}()
		(&MaxPool2{}).Backward(tensor.New(1, 1, 1, 1))
	}()
}

func TestScaleShiftNormalizes(t *testing.T) {
	s := NewScaleShift(2)
	rng := tensor.NewRNG(3)
	x := tensor.New(4, 2, 6, 6)
	rng.FillNormal(x, 3, 2) // far from standardized
	y := s.Forward(x)
	// Per-channel output must be ~N(0,1) at identity γ/β.
	for c := 0; c < 2; c++ {
		var sum, sumsq float64
		n := 0
		for b := 0; b < 4; b++ {
			for h := 0; h < 6; h++ {
				for w := 0; w < 6; w++ {
					v := float64(y.At(b, c, h, w))
					sum += v
					sumsq += v * v
					n++
				}
			}
		}
		mean := sum / float64(n)
		variance := sumsq/float64(n) - mean*mean
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d: mean %v var %v", c, mean, variance)
		}
	}
}

func TestScaleShiftGradCheck(t *testing.T) {
	s := NewScaleShift(1)
	rng := tensor.NewRNG(7)
	x := tensor.New(2, 1, 2, 2)
	rng.FillNormal(x, 1, 0.5)
	// Loss = 0.5||y||²; gradient check on gamma with frozen statistics.
	loss := func() float64 {
		y := s.Forward(x)
		var l float64
		for _, v := range y.Data {
			l += 0.5 * float64(v) * float64(v)
		}
		return l
	}
	y := s.Forward(x)
	s.Backward(y)
	analytic := float64(s.dG[0])
	const eps = 1e-3
	s.Gamma[0] += eps
	lp := loss()
	s.Gamma[0] -= 2 * eps
	lm := loss()
	s.Gamma[0] += eps
	numeric := (lp - lm) / (2 * eps)
	if math.Abs(numeric-analytic) > 1e-2*(1+math.Abs(numeric)) {
		t.Fatalf("dGamma: numeric %v vs analytic %v", numeric, analytic)
	}
}

func TestScaleShiftChannelMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("channel mismatch accepted")
		}
	}()
	NewScaleShift(3).Forward(tensor.New(1, 2, 4, 4))
}

func TestResidualNeedsMatchingChannels(t *testing.T) {
	p := conv.Params{In: 2, Out: 4, K: 3, Pad: 1, H: 8, W: 8}
	if _, err := NewResidual(winograd.F2x2_3x3, p, tensor.NewRNG(1)); err == nil {
		t.Fatal("In != Out accepted")
	}
}

// TestResidualSkipGradient: with zero conv weights the block is
// y = ReLU(x), so dx must equal the ReLU-masked dy exactly — the skip
// path's gradient.
func TestResidualSkipGradient(t *testing.T) {
	p := conv.Params{In: 2, Out: 2, K: 3, Pad: 1, H: 6, W: 6}
	r, err := NewResidual(winograd.F2x2_3x3, p, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	// Zero both convs.
	for _, wc := range []*WinoConv{r.C1, r.C2} {
		for _, el := range wc.L.W.El {
			for i := range el.Data {
				el.Data[i] = 0
			}
		}
	}
	rng := tensor.NewRNG(11)
	x := tensor.New(2, 2, 6, 6)
	rng.FillNormal(x, 0, 1)
	y := r.Forward(x)
	for i, v := range x.Data {
		want := v
		if want < 0 {
			want = 0
		}
		if y.Data[i] != want {
			t.Fatal("zero-weight residual is not ReLU(x)")
		}
	}
	dy := tensor.New(2, 2, 6, 6)
	rng.FillNormal(dy, 0, 1)
	dx := r.Backward(dy)
	for i := range dy.Data {
		want := dy.Data[i]
		if x.Data[i] <= 0 {
			want = 0
		}
		if dx.Data[i] != want {
			t.Fatalf("skip gradient wrong at %d: %v vs %v", i, dx.Data[i], want)
		}
	}
}

// TestResidualCNNTrains: a ResNet-style network (conv → residual → pool →
// dense) must learn the quadrant task, exercising every block together.
func TestResidualCNNTrains(t *testing.T) {
	rng := tensor.NewRNG(13)
	ds := workload.QuadrantBlobs(64, 1, 8, 8, 101)
	p0 := conv.Params{In: 1, Out: 4, K: 3, Pad: 1, H: 8, W: 8}
	pr := conv.Params{In: 4, Out: 4, K: 3, Pad: 1, H: 8, W: 8}
	stem, err := NewWinoConv(winograd.F2x2_3x3, p0, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewResidual(winograd.F2x2_3x3, pr, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := &Sequential{Layers: []Layer{
		stem,
		NewScaleShift(4),
		&ReLU{},
		res,
		&MaxPool2{},
		NewDense(4*4*4, 4, rng),
	}}
	x, labels := ds.Batch(0, 64)
	var acc float64
	for epoch := 0; epoch < 40; epoch++ {
		logits := net.Forward(x)
		_, dl := SoftmaxCrossEntropy(logits, labels)
		net.Backward(dl)
		net.Step(0.05)
		acc = Accuracy(logits, labels)
	}
	if acc < 0.85 {
		t.Fatalf("residual CNN accuracy %v, want > 0.85", acc)
	}
}
