// Package nn is a small numeric CNN training framework over the conv and
// winograd packages. It exists to train real (small-scale) networks end to
// end: the Winograd layer against its direct-convolution equivalent, and
// FractalNet-style join blocks in both the standard and the paper's
// modified (Winograd-domain) form — the Fig. 14 experiment.
package nn

import (
	"fmt"
	"math"

	"mptwino/internal/tensor"
)

// Layer is one differentiable stage. Forward caches whatever Backward
// needs; Backward returns dL/dx for the last forwarded batch and
// accumulates parameter gradients; Step applies SGD and clears them.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(dy *tensor.Tensor) *tensor.Tensor
	Step(lr float32)
}

// ReLU is the rectified linear activation the paper's activation
// prediction targets.
type ReLU struct {
	mask []bool
}

// Forward clamps negatives to zero.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	y := x.Clone()
	r.mask = make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			y.Data[i] = 0
		}
	}
	return y
}

// Backward gates gradients by the activation mask.
func (r *ReLU) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil || len(r.mask) != len(dy.Data) {
		panic("nn: ReLU.Backward before Forward or with mismatched shape")
	}
	dx := dy.Clone()
	for i, live := range r.mask {
		if !live {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Step is a no-op (no parameters).
func (r *ReLU) Step(lr float32) {}

// AvgPool2 is 2×2 average pooling with stride 2 (input dims must be even).
type AvgPool2 struct {
	inShape [4]int
}

// Forward averages non-overlapping 2×2 windows.
func (p *AvgPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.H%2 != 0 || x.W%2 != 0 {
		panic(fmt.Sprintf("nn: AvgPool2 needs even dims, got %s", x.ShapeString()))
	}
	p.inShape = [4]int{x.N, x.C, x.H, x.W}
	y := tensor.New(x.N, x.C, x.H/2, x.W/2)
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			for h := 0; h < x.H; h += 2 {
				for w := 0; w < x.W; w += 2 {
					s := x.At(n, c, h, w) + x.At(n, c, h, w+1) +
						x.At(n, c, h+1, w) + x.At(n, c, h+1, w+1)
					y.Set(n, c, h/2, w/2, s/4)
				}
			}
		}
	}
	return y
}

// Backward spreads each gradient evenly over its window.
func (p *AvgPool2) Backward(dy *tensor.Tensor) *tensor.Tensor {
	s := p.inShape
	dx := tensor.New(s[0], s[1], s[2], s[3])
	for n := 0; n < dy.N; n++ {
		for c := 0; c < dy.C; c++ {
			for h := 0; h < dy.H; h++ {
				for w := 0; w < dy.W; w++ {
					g := dy.At(n, c, h, w) / 4
					dx.Set(n, c, 2*h, 2*w, g)
					dx.Set(n, c, 2*h, 2*w+1, g)
					dx.Set(n, c, 2*h+1, 2*w, g)
					dx.Set(n, c, 2*h+1, 2*w+1, g)
				}
			}
		}
	}
	return dx
}

// Step is a no-op.
func (p *AvgPool2) Step(lr float32) {}

// Dense is a fully connected classifier head over the flattened input.
type Dense struct {
	In, Out int
	W       *tensor.Mat // In×Out
	B       []float32

	x  *tensor.Tensor
	dW *tensor.Mat
	dB []float32
}

// NewDense initializes a Dense layer with He-scaled weights.
func NewDense(in, out int, rng *tensor.RNG) *Dense {
	d := &Dense{In: in, Out: out, W: tensor.NewMat(in, out), B: make([]float32, out)}
	sigma := float32(math.Sqrt(2 / float64(in)))
	for i := range d.W.Data {
		d.W.Data[i] = sigma * float32(rng.NormFloat64())
	}
	return d
}

// Forward computes y = xW + b over the flattened feature dims.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.C*x.H*x.W != d.In {
		panic(fmt.Sprintf("nn: Dense expects %d features, got %s", d.In, x.ShapeString()))
	}
	d.x = x
	y := tensor.New(x.N, d.Out, 1, 1)
	for n := 0; n < x.N; n++ {
		row := x.Data[n*d.In : (n+1)*d.In]
		for o := 0; o < d.Out; o++ {
			acc := d.B[o]
			for i, xv := range row {
				acc += xv * d.W.At(i, o)
			}
			y.Set(n, o, 0, 0, acc)
		}
	}
	return y
}

// Backward accumulates dW, dB and returns dx.
func (d *Dense) Backward(dy *tensor.Tensor) *tensor.Tensor {
	x := d.x
	if x == nil {
		panic("nn: Dense.Backward before Forward")
	}
	if d.dW == nil {
		d.dW = tensor.NewMat(d.In, d.Out)
		d.dB = make([]float32, d.Out)
	}
	dx := tensor.New(x.N, x.C, x.H, x.W)
	for n := 0; n < x.N; n++ {
		xrow := x.Data[n*d.In : (n+1)*d.In]
		dxrow := dx.Data[n*d.In : (n+1)*d.In]
		for o := 0; o < d.Out; o++ {
			g := dy.At(n, o, 0, 0)
			d.dB[o] += g
			for i, xv := range xrow {
				d.dW.Data[i*d.Out+o] += xv * g
				dxrow[i] += d.W.At(i, o) * g
			}
		}
	}
	return dx
}

// Step applies SGD and clears gradients.
func (d *Dense) Step(lr float32) {
	if d.dW == nil {
		return
	}
	for i := range d.W.Data {
		d.W.Data[i] -= lr * d.dW.Data[i]
		d.dW.Data[i] = 0
	}
	for o := range d.B {
		d.B[o] -= lr * d.dB[o]
		d.dB[o] = 0
	}
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// Forward runs the chain.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs the chain in reverse.
func (s *Sequential) Backward(dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(dy)
	}
	return dy
}

// Step updates every layer.
func (s *Sequential) Step(lr float32) {
	for _, l := range s.Layers {
		l.Step(lr)
	}
}

// SoftmaxCrossEntropy returns the mean cross-entropy loss of logits
// (N,classes,1,1) against integer labels, and dL/dlogits.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	if len(labels) != logits.N {
		panic(fmt.Sprintf("nn: %d labels for batch %d", len(labels), logits.N))
	}
	classes := logits.C
	dl := tensor.New(logits.N, classes, 1, 1)
	var loss float64
	for n := 0; n < logits.N; n++ {
		// stable softmax
		maxv := float32(math.Inf(-1))
		for c := 0; c < classes; c++ {
			if v := logits.At(n, c, 0, 0); v > maxv {
				maxv = v
			}
		}
		var sum float64
		for c := 0; c < classes; c++ {
			sum += math.Exp(float64(logits.At(n, c, 0, 0) - maxv))
		}
		lbl := labels[n]
		if lbl < 0 || lbl >= classes {
			panic(fmt.Sprintf("nn: label %d out of range %d", lbl, classes))
		}
		logp := float64(logits.At(n, lbl, 0, 0)-maxv) - math.Log(sum)
		loss -= logp
		for c := 0; c < classes; c++ {
			p := math.Exp(float64(logits.At(n, c, 0, 0)-maxv)) / sum
			g := float32(p)
			if c == lbl {
				g -= 1
			}
			dl.Set(n, c, 0, 0, g/float32(logits.N))
		}
	}
	return loss / float64(logits.N), dl
}

// Accuracy returns the fraction of argmax predictions matching labels.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	correct := 0
	for n := 0; n < logits.N; n++ {
		best, bestV := 0, float32(math.Inf(-1))
		for c := 0; c < logits.C; c++ {
			if v := logits.At(n, c, 0, 0); v > bestV {
				best, bestV = c, v
			}
		}
		if best == labels[n] {
			correct++
		}
	}
	return float64(correct) / float64(logits.N)
}
