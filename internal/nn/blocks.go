package nn

import (
	"fmt"
	"math"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// MaxPool2 is 2×2 max pooling with stride 2 (input dims must be even).
type MaxPool2 struct {
	inShape [4]int
	argmax  []int // flat input index chosen per output element
}

// Forward takes the window maximum.
func (p *MaxPool2) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.H%2 != 0 || x.W%2 != 0 {
		panic(fmt.Sprintf("nn: MaxPool2 needs even dims, got %s", x.ShapeString()))
	}
	p.inShape = [4]int{x.N, x.C, x.H, x.W}
	y := tensor.New(x.N, x.C, x.H/2, x.W/2)
	p.argmax = make([]int, y.Len())
	oi := 0
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			for h := 0; h < x.H; h += 2 {
				for w := 0; w < x.W; w += 2 {
					best := x.Index(n, c, h, w)
					bv := x.Data[best]
					for _, d := range [3][2]int{{0, 1}, {1, 0}, {1, 1}} {
						idx := x.Index(n, c, h+d[0], w+d[1])
						if x.Data[idx] > bv {
							best, bv = idx, x.Data[idx]
						}
					}
					y.Data[oi] = bv
					p.argmax[oi] = best
					oi++
				}
			}
		}
	}
	return y
}

// Backward routes each gradient to its argmax position.
func (p *MaxPool2) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil || len(p.argmax) != dy.Len() {
		panic("nn: MaxPool2.Backward before Forward or with mismatched shape")
	}
	s := p.inShape
	dx := tensor.New(s[0], s[1], s[2], s[3])
	for oi, src := range p.argmax {
		dx.Data[src] += dy.Data[oi]
	}
	return dx
}

// Step is a no-op.
func (p *MaxPool2) Step(lr float32) {}

// ScaleShift is a per-channel affine normalization y = γ·(x−μ)/σ + β with
// batch statistics computed on the fly — a BatchNorm stand-in sufficient
// for the small-scale training experiments (no running statistics; the
// backward pass treats μ and σ as constants, the common "frozen statistics"
// approximation).
type ScaleShift struct {
	C           int
	Gamma, Beta []float32

	x      *tensor.Tensor
	mu     []float32
	inv    []float32
	dG, dB []float32
}

// NewScaleShift builds an identity-initialized normalization for c channels.
func NewScaleShift(c int) *ScaleShift {
	s := &ScaleShift{C: c, Gamma: make([]float32, c), Beta: make([]float32, c)}
	for i := range s.Gamma {
		s.Gamma[i] = 1
	}
	return s
}

// Forward normalizes per channel over (batch, H, W).
func (s *ScaleShift) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.C != s.C {
		panic(fmt.Sprintf("nn: ScaleShift expects %d channels, got %s", s.C, x.ShapeString()))
	}
	s.x = x
	s.mu = make([]float32, s.C)
	s.inv = make([]float32, s.C)
	n := float64(x.N * x.H * x.W)
	for c := 0; c < s.C; c++ {
		var sum, sumsq float64
		for b := 0; b < x.N; b++ {
			for h := 0; h < x.H; h++ {
				for w := 0; w < x.W; w++ {
					v := float64(x.At(b, c, h, w))
					sum += v
					sumsq += v * v
				}
			}
		}
		mean := sum / n
		variance := sumsq/n - mean*mean
		if variance < 1e-8 {
			variance = 1e-8
		}
		s.mu[c] = float32(mean)
		s.inv[c] = float32(1 / math.Sqrt(variance))
	}
	y := tensor.New(x.N, x.C, x.H, x.W)
	for b := 0; b < x.N; b++ {
		for c := 0; c < x.C; c++ {
			g, bt, mu, inv := s.Gamma[c], s.Beta[c], s.mu[c], s.inv[c]
			for h := 0; h < x.H; h++ {
				for w := 0; w < x.W; w++ {
					y.Set(b, c, h, w, g*(x.At(b, c, h, w)-mu)*inv+bt)
				}
			}
		}
	}
	return y
}

// Backward accumulates dγ, dβ and returns dx (frozen-statistics gradient).
func (s *ScaleShift) Backward(dy *tensor.Tensor) *tensor.Tensor {
	if s.x == nil {
		panic("nn: ScaleShift.Backward before Forward")
	}
	if s.dG == nil {
		s.dG = make([]float32, s.C)
		s.dB = make([]float32, s.C)
	}
	dx := tensor.New(dy.N, dy.C, dy.H, dy.W)
	for b := 0; b < dy.N; b++ {
		for c := 0; c < s.C; c++ {
			g, mu, inv := s.Gamma[c], s.mu[c], s.inv[c]
			for h := 0; h < dy.H; h++ {
				for w := 0; w < dy.W; w++ {
					gv := dy.At(b, c, h, w)
					s.dB[c] += gv
					s.dG[c] += gv * (s.x.At(b, c, h, w) - mu) * inv
					dx.Set(b, c, h, w, gv*g*inv)
				}
			}
		}
	}
	return dx
}

// Step applies SGD and clears the gradients.
func (s *ScaleShift) Step(lr float32) {
	if s.dG == nil {
		return
	}
	for c := 0; c < s.C; c++ {
		s.Gamma[c] -= lr * s.dG[c]
		s.Beta[c] -= lr * s.dB[c]
		s.dG[c], s.dB[c] = 0, 0
	}
}

// Residual is a ResNet basic block over Winograd layers:
// y = ReLU(conv2(ReLU(conv1(x))) + x), with both convs channel-preserving.
// It is the building unit of the WRN/ResNet workloads in Table I.
type Residual struct {
	C1, C2 *WinoConv
	R1     *ReLU
	rOut   *ReLU
}

// NewResidual builds the block for channel-preserving geometry p
// (p.In == p.Out required).
func NewResidual(tr *winograd.Transform, p conv.Params, rng *tensor.RNG) (*Residual, error) {
	if p.In != p.Out {
		return nil, fmt.Errorf("nn: residual block needs In == Out, got %d != %d", p.In, p.Out)
	}
	c1, err := NewWinoConv(tr, p, rng)
	if err != nil {
		return nil, err
	}
	c2, err := NewWinoConv(tr, p, rng)
	if err != nil {
		return nil, err
	}
	return &Residual{C1: c1, C2: c2, R1: &ReLU{}, rOut: &ReLU{}}, nil
}

// Forward computes the residual sum and final activation.
func (r *Residual) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := r.R1.Forward(r.C1.Forward(x))
	h = r.C2.Forward(h)
	h.AXPY(1, x) // skip connection
	return r.rOut.Forward(h)
}

// Backward splits the gradient between the conv path and the skip path.
func (r *Residual) Backward(dy *tensor.Tensor) *tensor.Tensor {
	dh := r.rOut.Backward(dy)
	dxSkip := dh.Clone()
	d := r.C2.Backward(dh)
	d = r.R1.Backward(d)
	d = r.C1.Backward(d)
	d.AXPY(1, dxSkip)
	return d
}

// Step updates both convolutions.
func (r *Residual) Step(lr float32) {
	r.C1.Step(lr)
	r.C2.Step(lr)
}
