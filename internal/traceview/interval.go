package traceview

import "sort"

// Interval algebra over half-open cycle ranges [s, e). The attribution
// engine reduces categorized child spans to normalized interval sets and
// answers busy/hidden/idle questions with unions and intersections — the
// definitions stay exact however future instrumentation overlaps spans
// (LayerPipe-style pipelining included).

type interval struct{ s, e int64 }

// normalize sorts and merges overlapping or touching intervals, dropping
// empty ones. The result is the canonical form of the set.
func normalize(iv []interval) []interval {
	out := make([]interval, 0, len(iv))
	for _, v := range iv {
		if v.e > v.s {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].s != out[j].s {
			return out[i].s < out[j].s
		}
		return out[i].e < out[j].e
	})
	merged := out[:0]
	for _, v := range out {
		if n := len(merged); n > 0 && v.s <= merged[n-1].e {
			if v.e > merged[n-1].e {
				merged[n-1].e = v.e
			}
			continue
		}
		merged = append(merged, v)
	}
	return merged
}

// length sums a normalized set's measure.
func length(iv []interval) int64 {
	var t int64
	for _, v := range iv {
		t += v.e - v.s
	}
	return t
}

// intersect returns the normalized intersection of two normalized sets.
func intersect(a, b []interval) []interval {
	var out []interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		s := a[i].s
		if b[j].s > s {
			s = b[j].s
		}
		e := a[i].e
		if b[j].e < e {
			e = b[j].e
		}
		if e > s {
			out = append(out, interval{s, e})
		}
		if a[i].e < b[j].e {
			i++
		} else {
			j++
		}
	}
	return out
}

// spansToSet collects the given spans into a normalized interval set.
func spansToSet(spans []Span) []interval {
	iv := make([]interval, 0, len(spans))
	for _, s := range spans {
		iv = append(iv, interval{s.Start, s.End()})
	}
	return normalize(iv)
}
