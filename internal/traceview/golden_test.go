package traceview_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mptwino/internal/model"
	"mptwino/internal/parallel"
	"mptwino/internal/planner"
	"mptwino/internal/sim"
	"mptwino/internal/telemetry"
	"mptwino/internal/traceview"
)

var update = flag.Bool("update", false, "rewrite the attribution goldens in testdata")

// autoplanRun replicates the `mptsim -autoplan -trace -metrics-json`
// telemetry pipeline in process: build the per-layer plan (which publishes
// the achieved/bound gauges), execute it under the tracer, and return the
// live registry and tracer.
func autoplanRun(t *testing.T, net model.Network, par int) (*telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	s := sim.DefaultSystem()
	s.Parallel = par
	reg := telemetry.NewRegistry()
	parallel.Attach(reg)
	tracer := telemetry.NewTracer()
	s.Metrics = reg
	s.Trace = tracer
	cfg := defaultConfig(t)
	p := planner.Build(net, planner.Options{System: s, Config: cfg})
	s.SimulateNetworkWithPlan(net, cfg, p.Strategies())
	return reg, tracer
}

// defaultConfig resolves w_mp++ — the mptsim -config default the CI
// autoplan job runs under.
func defaultConfig(t *testing.T) sim.SystemConfig {
	t.Helper()
	for _, c := range sim.AllConfigs() {
		if c.String() == "w_mp++" {
			return c
		}
	}
	t.Fatal("config w_mp++ not in sim.AllConfigs()")
	return 0
}

// reportText analyzes a run in process and renders the canonical text
// report — the same bytes `mptsim -trace-report` and `mpttrace report`
// write for this simulation.
func reportText(t *testing.T, reg *telemetry.Registry, tracer *telemetry.Tracer) []byte {
	t.Helper()
	run := traceview.FromTrace(tracer.Export())
	run.Metrics = traceview.FromSnapshot(reg.Snapshot())
	rep := traceview.Analyze(run, traceview.Options{})
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return buf.Bytes()
}

// The committed goldens are the CI trace-gate contract: the attribution of
// the alexnet and vgg16 autoplan executions must reproduce byte-for-byte.
// Regenerate deliberately with `go test ./internal/traceview -run Golden -update`.
func TestAutoplanReportGoldens(t *testing.T) {
	nets := []struct {
		name string
		net  model.Network
	}{
		{"alexnet", model.AlexNet()},
		{"vgg16", model.VGG16()},
	}
	for _, n := range nets {
		t.Run(n.name, func(t *testing.T) {
			reg, tracer := autoplanRun(t, n.net, 0)
			got := reportText(t, reg, tracer)
			golden := filepath.Join("testdata", fmt.Sprintf("report_%s_autoplan.txt", n.name))
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("attribution report drifted from %s\n--- got ---\n%s", golden, got)
			}
		})
	}
}

// The acceptance bar for the whole engine: the vgg16 autoplan attribution
// must be bit-identical at host worker counts 1, 2, and 8 — model time is
// simulated cycles, so host parallelism must be invisible.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	var base []byte
	for _, par := range []int{1, 2, 8} {
		reg, tracer := autoplanRun(t, model.VGG16(), par)
		got := reportText(t, reg, tracer)
		if base == nil {
			base = got
			continue
		}
		if !bytes.Equal(got, base) {
			t.Fatalf("parallel=%d: report bytes differ from parallel=1", par)
		}
	}
}

// Serializing the trace and metrics to their on-disk formats and parsing
// them back must reproduce the in-process analysis exactly — and the
// planner's achieved/bound gauges must survive the Snapshot → JSON →
// LoadMetrics → join round trip for both golden networks.
func TestGaugeJoinSurvivesSerialization(t *testing.T) {
	nets := []struct {
		name string
		net  model.Network
	}{
		{"alexnet", model.AlexNet()},
		{"vgg16", model.VGG16()},
	}
	for _, n := range nets {
		t.Run(n.name, func(t *testing.T) {
			reg, tracer := autoplanRun(t, n.net, 0)
			direct := reportText(t, reg, tracer)

			// On-disk round trip: trace JSON + metrics JSON.
			var traceBuf, metricsBuf bytes.Buffer
			if err := tracer.WriteJSON(&traceBuf); err != nil {
				t.Fatalf("trace WriteJSON: %v", err)
			}
			if err := reg.WriteJSON(&metricsBuf); err != nil {
				t.Fatalf("metrics WriteJSON: %v", err)
			}
			run, err := traceview.ParseTrace(&traceBuf)
			if err != nil {
				t.Fatalf("ParseTrace: %v", err)
			}
			run.Metrics, err = traceview.LoadMetrics(&metricsBuf)
			if err != nil {
				t.Fatalf("LoadMetrics: %v", err)
			}
			rep := traceview.Analyze(run, traceview.Options{})
			var buf bytes.Buffer
			if err := rep.WriteText(&buf); err != nil {
				t.Fatalf("WriteText: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), direct) {
				t.Fatalf("serialized round trip changed the report\n--- direct ---\n%s--- roundtrip ---\n%s", direct, buf.Bytes())
			}

			// The join itself: every planned layer row must carry the gauge
			// values the planner published.
			snap := reg.Snapshot()
			joined := 0
			for _, lane := range rep.Lanes {
				for _, row := range lane.Rows {
					a, okA := snap["planner.achieved_bytes."+row.Layer]
					b, okB := snap["planner.bound_bytes."+row.Layer]
					if !okA || !okB {
						continue
					}
					joined++
					if row.AchievedBytes != a || row.BoundBytes != b {
						t.Errorf("layer %s: joined %d/%d, gauges say %d/%d",
							row.Layer, row.AchievedBytes, row.BoundBytes, a, b)
					}
				}
			}
			if joined == 0 {
				t.Fatalf("no layer row joined the planner gauges")
			}
		})
	}
}

// Diffing a run against itself must be the all-zero table with exit-0
// semantics, even in -exact mode; diffing structurally different runs must
// regress.
func TestDiffIdenticalAndChangedRuns(t *testing.T) {
	regA, trA := autoplanRun(t, model.AlexNet(), 0)
	regB, trB := autoplanRun(t, model.AlexNet(), 0)
	analyze := func(reg *telemetry.Registry, tr *telemetry.Tracer) *traceview.Report {
		run := traceview.FromTrace(tr.Export())
		run.Metrics = traceview.FromSnapshot(reg.Snapshot())
		return traceview.Analyze(run, traceview.Options{})
	}
	repA, repB := analyze(regA, trA), analyze(regB, trB)

	d := traceview.Diff(repA, repB, traceview.DiffOptions{Exact: true})
	if !d.Identical || d.Regressions != 0 {
		var buf bytes.Buffer
		d.WriteText(&buf)
		t.Fatalf("identical runs: identical=%v regressions=%d\n%s", d.Identical, d.Regressions, buf.String())
	}
	for _, row := range d.Rows {
		if row.Delta != 0 {
			t.Fatalf("identical runs: nonzero delta on %s", row.Key)
		}
	}

	regC, trC := autoplanRun(t, model.VGG16(), 0)
	d2 := traceview.Diff(repA, analyze(regC, trC), traceview.DiffOptions{})
	if d2.Identical || d2.Regressions == 0 {
		t.Fatalf("different networks: identical=%v regressions=%d", d2.Identical, d2.Regressions)
	}
}

// Assertions must read the same report the text renderer shows: an
// impossible overlap bound fails, the observed bounds pass.
func TestCheckAssertions(t *testing.T) {
	reg, tracer := autoplanRun(t, model.VGG16(), 0)
	run := traceview.FromTrace(tracer.Export())
	run.Metrics = traceview.FromSnapshot(reg.Snapshot())
	rep := traceview.Analyze(run, traceview.Options{})

	if traceview.Unset().Any() {
		t.Fatal("Unset must disable every assertion")
	}
	a := traceview.Unset()
	a.MinOverlap = 1.01 // unattainable
	if fails := traceview.Check(rep, a); len(fails) == 0 {
		t.Fatal("MinOverlap=1.01 must fail on a lane with communication")
	}
	a = traceview.Unset()
	a.MaxIdle = 1.0
	a.MinOverlap = 0.0
	if fails := traceview.Check(rep, a); len(fails) != 0 {
		t.Fatalf("trivial bounds must pass, got %v", fails)
	}
}
