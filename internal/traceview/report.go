package traceview

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Text and JSON renderers. Both are canonical: fixed column widths, fixed
// float precision, struct-ordered JSON — so reports from deterministic
// traces are byte-identical across runs, host worker counts and machines,
// and the committed goldens (internal/traceview/testdata) diff exactly.

// WriteText renders the report as the aligned console/golden format.
func (r *Report) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mpttrace attribution report\tlanes=%d\tprocesses=%d\n", len(r.Lanes), len(r.Processes))
	for i := range r.Lanes {
		writeLaneText(bw, &r.Lanes[i])
	}
	for _, p := range r.Processes {
		fmt.Fprintf(bw, "\n== process %s (pid %d): lanes=%d spans=%d instants=%d busy_cycles=%d\n",
			p.Process, p.PID, p.Lanes, p.Spans, p.Instants, p.BusyCycles)
		for _, c := range p.Categories {
			fmt.Fprintf(bw, "   %-12s %8d spans %14d cycles\n", c.TV, c.Spans, c.Cycles)
		}
	}
	return bw.Flush()
}

func writeLaneText(bw *bufio.Writer, l *LaneReport) {
	fmt.Fprintf(bw, "\n== lane %s/%s (pid %d tid %d)\n", l.Process, l.Thread, l.PID, l.TID)
	fmt.Fprintf(bw, "%-12s %12s %12s %12s %12s %10s %9s %9s %7s %7s %10s\n",
		"layer", "wall_cyc", "compute_cyc", "comm_cyc", "hidden_cyc", "idle_cyc",
		"overlap%", "compute%", "comm%", "idle%", "ach/bound")
	rows := append([]LayerRow(nil), l.Rows...)
	rows = append(rows, l.Total)
	for _, row := range rows {
		ratio := "-"
		if row.BoundBytes > 0 {
			ratio = fmt.Sprintf("%.4f", row.BoundRatio)
		}
		fmt.Fprintf(bw, "%-12s %12d %12d %12d %12d %10d %9.2f %9.2f %7.2f %7.2f %10s\n",
			row.Layer, row.WallCycles, row.ComputeCycles, row.CommCycles,
			row.HiddenCycles, row.IdleCycles,
			100*row.OverlapFrac, 100*row.ComputeShare, 100*row.CommShare, 100*row.IdleShare,
			ratio)
	}
	fmt.Fprintf(bw, "critical path: %d cycles over %d spans\n", l.CriticalCycles, len(l.Critical))
	for i, c := range l.Contributors {
		fmt.Fprintf(bw, "  #%d %-28s %-10s %14d cycles %6.2f%%\n",
			i+1, c.Name, c.TV, c.Cycles, 100*c.Share)
	}
}

// WriteJSON renders the report as indented canonical JSON (struct field
// order, no maps).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}
