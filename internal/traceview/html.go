package traceview

import (
	"bufio"
	"fmt"
	"html"
	"io"
)

// Self-contained HTML report: an inline-SVG timeline/flame view per phase
// lane (no scripts, no external assets — an artifact that renders anywhere,
// including CI artifact viewers), the attribution table, and the critical
// path. Output is deterministic: fixed iteration orders, fixed float
// precision, so the HTML bytes are as diffable as the text report.

const (
	htmlTimelineWidth = 1160.0
	htmlBandHeight    = 20.0
)

// tvColors maps taxonomy categories to fill colors, in render order.
var tvColors = []struct{ tv, color string }{
	{"phase", "#dfe3ec"},
	{"compute", "#4caf7d"},
	{"comm.tile", "#f0a030"},
	{"comm.coll", "#d9534f"},
	{"comm.noc", "#c08030"},
	{"overhead", "#8888aa"},
	{"untagged", "#bbbbbb"},
}

func tvColor(tv string) string {
	for _, c := range tvColors {
		if c.tv == tv {
			return c.color
		}
	}
	return "#bbbbbb"
}

// WriteHTML renders the run and its report as one self-contained page.
func WriteHTML(w io.Writer, run *Run, rep *Report) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprint(bw, "<title>mpttrace attribution report</title>\n<style>\n")
	fmt.Fprint(bw, "body{font-family:system-ui,sans-serif;margin:24px;color:#222}\n")
	fmt.Fprint(bw, "h2{margin:28px 0 8px}table{border-collapse:collapse;font-size:13px}\n")
	fmt.Fprint(bw, "td,th{border:1px solid #ccd;padding:3px 8px;text-align:right}\n")
	fmt.Fprint(bw, "td:first-child,th:first-child{text-align:left}\n")
	fmt.Fprint(bw, "tr.total{font-weight:bold;background:#f4f6fa}\n")
	fmt.Fprint(bw, ".legend span{display:inline-block;margin-right:14px;font-size:12px}\n")
	fmt.Fprint(bw, ".legend i{display:inline-block;width:11px;height:11px;margin-right:4px;border:1px solid #888}\n")
	fmt.Fprint(bw, "svg{background:#fafbfd;border:1px solid #ccd}\n")
	fmt.Fprint(bw, "ol.crit{font-size:13px}\n")
	fmt.Fprint(bw, "</style></head><body>\n")
	fmt.Fprint(bw, "<h1>mpttrace attribution report</h1>\n")
	fmt.Fprint(bw, "<p class=\"legend\">")
	for _, c := range tvColors {
		fmt.Fprintf(bw, "<span><i style=\"background:%s\"></i>%s</span>", c.color, html.EscapeString(c.tv))
	}
	fmt.Fprint(bw, "</p>\n")

	for i := range rep.Lanes {
		writeLaneHTML(bw, run, &rep.Lanes[i])
	}

	if len(rep.Processes) > 0 {
		fmt.Fprint(bw, "<h2>other processes</h2>\n<table><tr><th>process</th><th>pid</th><th>lanes</th><th>spans</th><th>instants</th><th>busy cycles</th><th>categories</th></tr>\n")
		for _, p := range rep.Processes {
			fmt.Fprintf(bw, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>",
				html.EscapeString(p.Process), p.PID, p.Lanes, p.Spans, p.Instants, p.BusyCycles)
			for j, c := range p.Categories {
				if j > 0 {
					fmt.Fprint(bw, ", ")
				}
				fmt.Fprintf(bw, "%s: %d spans / %d cycles", html.EscapeString(c.TV), c.Spans, c.Cycles)
			}
			fmt.Fprint(bw, "</td></tr>\n")
		}
		fmt.Fprint(bw, "</table>\n")
	}
	fmt.Fprint(bw, "</body></html>\n")
	return bw.Flush()
}

// writeLaneHTML renders one phase lane: timeline/flame SVG, attribution
// table, critical path.
func writeLaneHTML(bw *bufio.Writer, run *Run, l *LaneReport) {
	fmt.Fprintf(bw, "<h2>lane %s/%s (pid %d tid %d)</h2>\n",
		html.EscapeString(l.Process), html.EscapeString(l.Thread), l.PID, l.TID)

	var lane *Lane
	for i := range run.Lanes {
		if run.Lanes[i].PID == l.PID && run.Lanes[i].TID == l.TID {
			lane = &run.Lanes[i]
			break
		}
	}
	if lane != nil {
		writeTimelineSVG(bw, lane, l)
	}

	fmt.Fprint(bw, "<table><tr><th>layer</th><th>wall cyc</th><th>compute cyc</th><th>comm cyc</th><th>hidden cyc</th><th>idle cyc</th><th>overlap %</th><th>compute %</th><th>comm %</th><th>idle %</th><th>ach/bound</th></tr>\n")
	rows := append([]LayerRow(nil), l.Rows...)
	rows = append(rows, l.Total)
	for _, row := range rows {
		cls := ""
		if row.Layer == "TOTAL" {
			cls = " class=\"total\""
		}
		ratio := "-"
		if row.BoundBytes > 0 {
			ratio = fmt.Sprintf("%.4f", row.BoundRatio)
		}
		fmt.Fprintf(bw, "<tr%s><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%s</td></tr>\n",
			cls, html.EscapeString(row.Layer), row.WallCycles, row.ComputeCycles, row.CommCycles,
			row.HiddenCycles, row.IdleCycles,
			100*row.OverlapFrac, 100*row.ComputeShare, 100*row.CommShare, 100*row.IdleShare, ratio)
	}
	fmt.Fprint(bw, "</table>\n")

	fmt.Fprintf(bw, "<p>critical path: <b>%d cycles</b> over %d spans</p>\n<ol class=\"crit\">\n",
		l.CriticalCycles, len(l.Critical))
	for _, c := range l.Contributors {
		fmt.Fprintf(bw, "<li>%s <i>(%s)</i> — %d cycles, %.2f%%</li>\n",
			html.EscapeString(c.Name), html.EscapeString(c.TV), c.Cycles, 100*c.Share)
	}
	fmt.Fprint(bw, "</ol>\n")
}

// writeTimelineSVG draws the lane as a three-band flame/timeline chart:
// phase roots on top, compute below, communication at the bottom.
// Critical-path members get a dark outline.
func writeTimelineSVG(bw *bufio.Writer, lane *Lane, l *LaneReport) {
	var maxEnd int64 = 1
	for _, s := range lane.Spans {
		if s.End() > maxEnd {
			maxEnd = s.End()
		}
	}
	scale := htmlTimelineWidth / float64(maxEnd)

	onPath := map[string]bool{}
	for _, p := range l.Critical {
		onPath[fmt.Sprintf("%s@%d", p.Name, p.Start)] = true
	}

	// Band rows: 0 = phase roots, 1 = compute, 2 = comm + overhead.
	bandOf := func(s Span) int {
		switch {
		case s.TV == "phase" || (s.TV == "" && s.Parent == ""):
			return 0
		case s.TV == "compute":
			return 1
		default:
			return 2
		}
	}
	height := 3*htmlBandHeight + 24
	fmt.Fprintf(bw, "<svg width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n",
		htmlTimelineWidth, height, htmlTimelineWidth, height)
	for _, s := range lane.Spans {
		x := float64(s.Start) * scale
		w := float64(s.Dur) * scale
		if w < 0.5 {
			w = 0.5
		}
		y := float64(bandOf(s)) * htmlBandHeight
		stroke := "#99a"
		sw := "0.5"
		if onPath[fmt.Sprintf("%s@%d", s.Name, s.Start)] {
			stroke = "#111"
			sw = "1.5"
		}
		tv := s.TV
		if tv == "" {
			tv = "untagged"
		}
		fmt.Fprintf(bw, "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.0f\" fill=\"%s\" stroke=\"%s\" stroke-width=\"%s\"><title>%s [%d, %d) %d cycles (%s)</title></rect>\n",
			x, y, w, htmlBandHeight-2, tvColor(tv), stroke, sw,
			html.EscapeString(s.Name), s.Start, s.End(), s.Dur, html.EscapeString(tv))
	}
	fmt.Fprintf(bw, "<text x=\"0\" y=\"%.0f\" font-size=\"11\" fill=\"#556\">0</text>\n", height-8)
	fmt.Fprintf(bw, "<text x=\"%.0f\" y=\"%.0f\" font-size=\"11\" fill=\"#556\" text-anchor=\"end\">%d cycles</text>\n",
		htmlTimelineWidth, height-8, maxEnd)
	fmt.Fprint(bw, "</svg>\n")
}
