package traceview

import (
	"sort"
	"strings"
)

// Options configures an analysis pass.
type Options struct {
	// TopK bounds the critical-path contributor list per lane (default 5).
	TopK int
}

func (o Options) topK() int {
	if o.TopK > 0 {
		return o.TopK
	}
	return 5
}

// LayerRow is one layer's attribution within a lane. All cycle counts are
// interval measures over the layer's categorized child spans, so the
// arithmetic identities hold exactly: Compute + Exposed + Idle = Wall and
// Hidden + Exposed = Comm.
type LayerRow struct {
	Layer string

	WallCycles    int64 // Σ phase-span durations (fwd + bwd)
	ComputeCycles int64 // |union of tv=compute spans|
	CommCycles    int64 // |union of tv=comm.* spans|
	TileCycles    int64 // Σ tv=comm.tile durations
	CollCycles    int64 // Σ tv=comm.coll durations
	HiddenCycles  int64 // |compute ∩ comm| — comm hidden behind compute
	ExposedCycles int64 // Comm − Hidden — comm the compute engines wait on
	IdleCycles    int64 // Wall − |compute ∪ comm| — timeline gaps

	// OverlapFrac is Hidden/Comm: the fraction of communication hidden
	// behind compute (the LayerPipe proof metric). 0 when Comm is 0.
	OverlapFrac float64
	// ComputeShare/CommShare/IdleShare split the wall exactly:
	// Compute/Wall + Exposed/Wall + Idle/Wall = 1.
	ComputeShare float64
	CommShare    float64
	IdleShare    float64

	// AchievedBytes/BoundBytes join the planner's per-layer gauges
	// (planner.achieved_bytes.<layer> / planner.bound_bytes.<layer>) from
	// the run's metrics snapshot; zero when no snapshot is attached or the
	// layer was not planned. BoundRatio is their quotient — the
	// Chen/Demmel achieved-vs-lower-bound communication ratio.
	AchievedBytes int64
	BoundBytes    int64
	BoundRatio    float64
}

// PathSpan is one span on a lane's critical path.
type PathSpan struct {
	Name   string
	TV     string
	Start  int64
	Cycles int64
}

// Contributor aggregates critical-path time by span identity.
type Contributor struct {
	Name   string
	TV     string
	Cycles int64
	Share  float64 // of the lane's critical-path cycles
}

// LaneReport is the full attribution of one phase lane (a lane holding
// tv=phase root spans, i.e. a per-config sim timeline or the MPT step
// clock).
type LaneReport struct {
	PID, TID int
	Process  string
	Thread   string

	Rows  []LayerRow // per layer, in first-appearance order
	Total LayerRow   // column sums (Layer = "TOTAL")

	// CriticalCycles is the length of the longest dependency chain of
	// leaf spans through the lane; Critical lists the chain in time order
	// and Contributors the top-k chain members by cycles.
	CriticalCycles int64
	Critical       []PathSpan
	Contributors   []Contributor
}

// ProcessSummary compacts the lanes of one non-phase process (e.g. the
// per-source-router NoC message rows).
type ProcessSummary struct {
	PID        int
	Process    string
	Lanes      int
	Spans      int
	Instants   int
	BusyCycles int64 // Σ per-lane |union of spans|
	Categories []CategoryCycles
}

// CategoryCycles is one tv category's total span time within a process.
type CategoryCycles struct {
	TV     string
	Spans  int
	Cycles int64
}

// Report is the analysis result of one run.
type Report struct {
	Lanes     []LaneReport
	Processes []ProcessSummary
}

// Analyze computes the attribution report of a parsed run.
func Analyze(run *Run, opt Options) *Report {
	rep := &Report{}
	type procAgg struct {
		summary ProcessSummary
		cats    map[string]*CategoryCycles
	}
	procs := map[int]*procAgg{}
	var procOrder []int

	for _, lane := range run.Lanes {
		if hasPhaseRoots(lane) {
			rep.Lanes = append(rep.Lanes, analyzeLane(lane, run.Metrics, opt))
			continue
		}
		agg, ok := procs[lane.PID]
		if !ok {
			agg = &procAgg{cats: map[string]*CategoryCycles{}}
			agg.summary = ProcessSummary{PID: lane.PID, Process: lane.Process}
			procs[lane.PID] = agg
			procOrder = append(procOrder, lane.PID)
		}
		agg.summary.Lanes++
		agg.summary.Spans += len(lane.Spans)
		agg.summary.Instants += lane.Instants
		agg.summary.BusyCycles += length(spansToSet(lane.Spans))
		for _, s := range lane.Spans {
			tv := s.TV
			if tv == "" {
				tv = "untagged"
			}
			c, ok := agg.cats[tv]
			if !ok {
				c = &CategoryCycles{TV: tv}
				agg.cats[tv] = c
			}
			c.Spans++
			c.Cycles += s.Dur
		}
	}

	sort.Ints(procOrder)
	for _, pid := range procOrder {
		agg := procs[pid]
		names := make([]string, 0, len(agg.cats))
		for tv := range agg.cats {
			names = append(names, tv)
		}
		sort.Strings(names)
		for _, tv := range names {
			agg.summary.Categories = append(agg.summary.Categories, *agg.cats[tv])
		}
		rep.Processes = append(rep.Processes, agg.summary)
	}
	return rep
}

// hasPhaseRoots reports whether the lane carries layer-phase root spans.
func hasPhaseRoots(l Lane) bool {
	for _, s := range l.Spans {
		if s.TV == "phase" {
			return true
		}
	}
	return false
}

// analyzeLane builds one phase lane's attribution and critical path.
func analyzeLane(lane Lane, metrics map[string]float64, opt Options) LaneReport {
	lr := LaneReport{PID: lane.PID, TID: lane.TID, Process: lane.Process, Thread: lane.Thread}

	// Group spans by layer key, preserving first-appearance order. Roots
	// (tv=phase) define the wall; categorized children define busy time.
	type group struct {
		roots    []Span
		children []Span
	}
	groups := map[string]*group{}
	var order []string
	keyOf := func(s Span) string {
		if s.Layer != "" {
			return s.Layer
		}
		return s.Name
	}
	for _, s := range lane.Spans {
		k := keyOf(s)
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		if s.TV == "phase" || (s.TV == "" && s.Parent == "") {
			g.roots = append(g.roots, s)
		} else {
			g.children = append(g.children, s)
		}
	}

	var leaves []Span
	for _, k := range order {
		g := groups[k]
		row := attributeGroup(k, g.roots, g.children)
		joinBounds(&row, metrics)
		lr.Rows = append(lr.Rows, row)
		if len(g.children) > 0 {
			leaves = append(leaves, g.children...)
		} else {
			leaves = append(leaves, g.roots...)
		}
	}
	lr.Total = sumRows(lr.Rows)
	lr.CriticalCycles, lr.Critical = criticalPath(leaves)
	lr.Contributors = contributors(lr.Critical, lr.CriticalCycles, opt.topK())
	return lr
}

// attributeGroup computes one layer's interval attribution.
func attributeGroup(layer string, roots, children []Span) LayerRow {
	row := LayerRow{Layer: layer}
	for _, r := range roots {
		row.WallCycles += r.Dur
	}
	var computeSpans, commSpans []Span
	for _, c := range children {
		switch {
		case c.TV == "compute":
			computeSpans = append(computeSpans, c)
		case strings.HasPrefix(c.TV, "comm."):
			commSpans = append(commSpans, c)
			if c.TV == "comm.tile" {
				row.TileCycles += c.Dur
			}
			if c.TV == "comm.coll" {
				row.CollCycles += c.Dur
			}
		}
	}
	compute := spansToSet(computeSpans)
	comm := spansToSet(commSpans)
	row.ComputeCycles = length(compute)
	row.CommCycles = length(comm)
	row.HiddenCycles = length(intersect(compute, comm))
	row.ExposedCycles = row.CommCycles - row.HiddenCycles
	if len(children) > 0 {
		covered := row.ComputeCycles + row.ExposedCycles // |compute ∪ comm|
		if idle := row.WallCycles - covered; idle > 0 {
			row.IdleCycles = idle
		}
	}
	if row.CommCycles > 0 {
		row.OverlapFrac = float64(row.HiddenCycles) / float64(row.CommCycles)
	}
	if row.WallCycles > 0 {
		row.ComputeShare = float64(row.ComputeCycles) / float64(row.WallCycles)
		row.CommShare = float64(row.ExposedCycles) / float64(row.WallCycles)
		row.IdleShare = float64(row.IdleCycles) / float64(row.WallCycles)
	}
	return row
}

// joinBounds merges the planner's achieved-vs-bound byte gauges for the
// row's layer out of the metrics snapshot.
func joinBounds(row *LayerRow, metrics map[string]float64) {
	if metrics == nil {
		return
	}
	a, okA := metrics["planner.achieved_bytes."+row.Layer]
	b, okB := metrics["planner.bound_bytes."+row.Layer]
	if !okA || !okB {
		return
	}
	row.AchievedBytes = int64(a)
	row.BoundBytes = int64(b)
	if row.BoundBytes > 0 {
		row.BoundRatio = float64(row.AchievedBytes) / float64(row.BoundBytes)
	}
}

// sumRows folds layer rows into the TOTAL row.
func sumRows(rows []LayerRow) LayerRow {
	t := LayerRow{Layer: "TOTAL"}
	for _, r := range rows {
		t.WallCycles += r.WallCycles
		t.ComputeCycles += r.ComputeCycles
		t.CommCycles += r.CommCycles
		t.TileCycles += r.TileCycles
		t.CollCycles += r.CollCycles
		t.HiddenCycles += r.HiddenCycles
		t.ExposedCycles += r.ExposedCycles
		t.IdleCycles += r.IdleCycles
		t.AchievedBytes += r.AchievedBytes
		t.BoundBytes += r.BoundBytes
	}
	if t.CommCycles > 0 {
		t.OverlapFrac = float64(t.HiddenCycles) / float64(t.CommCycles)
	}
	if t.WallCycles > 0 {
		t.ComputeShare = float64(t.ComputeCycles) / float64(t.WallCycles)
		t.CommShare = float64(t.ExposedCycles) / float64(t.WallCycles)
		t.IdleShare = float64(t.IdleCycles) / float64(t.WallCycles)
	}
	if t.BoundBytes > 0 {
		t.BoundRatio = float64(t.AchievedBytes) / float64(t.BoundBytes)
	}
	return t
}
