package traceview

import (
	"reflect"
	"testing"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		name string
		in   []interval
		want []interval
	}{
		{"empty", nil, []interval{}},
		{"drops empty and inverted", []interval{{5, 5}, {7, 3}}, []interval{}},
		{"sorts", []interval{{10, 20}, {0, 5}}, []interval{{0, 5}, {10, 20}}},
		{"merges overlap", []interval{{0, 10}, {5, 15}}, []interval{{0, 15}}},
		{"merges touching", []interval{{0, 10}, {10, 20}}, []interval{{0, 20}}},
		{"keeps gaps", []interval{{0, 10}, {12, 20}}, []interval{{0, 10}, {12, 20}}},
		{"contained", []interval{{0, 100}, {20, 30}}, []interval{{0, 100}}},
	}
	for _, c := range cases {
		got := normalize(append([]interval(nil), c.in...))
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: normalize(%v) = %v, want %v", c.name, c.in, got, c.want)
		}
	}
}

func TestLength(t *testing.T) {
	if got := length(nil); got != 0 {
		t.Errorf("length(nil) = %d, want 0", got)
	}
	if got := length([]interval{{0, 10}, {20, 25}}); got != 15 {
		t.Errorf("length = %d, want 15", got)
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		name string
		a, b []interval
		want []interval
	}{
		{"disjoint", []interval{{0, 10}}, []interval{{20, 30}}, nil},
		{"touching is empty", []interval{{0, 10}}, []interval{{10, 20}}, nil},
		{"overlap", []interval{{0, 10}}, []interval{{5, 15}}, []interval{{5, 10}}},
		{"contained", []interval{{0, 100}}, []interval{{20, 30}, {40, 50}}, []interval{{20, 30}, {40, 50}}},
		{"multi sweep",
			[]interval{{0, 10}, {20, 30}, {40, 50}},
			[]interval{{5, 25}, {45, 60}},
			[]interval{{5, 10}, {20, 25}, {45, 50}}},
	}
	for _, c := range cases {
		got := intersect(c.a, c.b)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: intersect(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
		// Intersection is symmetric.
		if rev := intersect(c.b, c.a); !reflect.DeepEqual(rev, got) {
			t.Errorf("%s: intersect not symmetric: %v vs %v", c.name, got, rev)
		}
	}
}

func TestSpansToSet(t *testing.T) {
	spans := []Span{
		{Start: 10, Dur: 5},
		{Start: 0, Dur: 12}, // overlaps the first
		{Start: 30, Dur: 0}, // empty: dropped
	}
	got := spansToSet(spans)
	want := []interval{{0, 15}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("spansToSet = %v, want %v", got, want)
	}
}
