package traceview

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Model-time regression diffing. Because every metric here derives from
// cycle-domain deterministic traces, two runs of the same configuration
// are bit-identical — so unlike wall-clock benchmarks the gate can be
// exact: the default thresholds are zero and any model-time increase is a
// regression (benchdiff's strict model-metric policy, applied to traces).

// DiffOptions sets the regression thresholds.
type DiffOptions struct {
	// MaxDeltaCycles is the allowed absolute increase per metric.
	MaxDeltaCycles int64
	// MaxDeltaFrac is the allowed relative increase per metric (0.02 =
	// +2%). The effective slack is max(MaxDeltaCycles, A·MaxDeltaFrac).
	MaxDeltaFrac float64
	// Exact fails on ANY difference, improvements included — the CI
	// golden-gate mode (a changed model is a changed model; regenerate
	// the golden deliberately).
	Exact bool
}

// DiffRow is one metric's before/after pair.
type DiffRow struct {
	Key    string
	A, B   int64
	OkA    bool // key present in run A
	OkB    bool // key present in run B
	Delta  int64
	Frac   float64 // Delta/A (0 when A == 0)
	Regres bool
}

// DiffReport is the full delta table.
type DiffReport struct {
	Rows        []DiffRow
	Regressions int
	Identical   bool
}

// laneMetrics flattens one lane report into metric rows. The key space is
// "lane <process>/<thread> | <layer> | <metric>".
func laneMetrics(out map[string]int64, l *LaneReport) {
	prefix := "lane " + l.Process + "/" + l.Thread + " | "
	rows := append([]LayerRow(nil), l.Rows...)
	rows = append(rows, l.Total)
	for _, r := range rows {
		p := prefix + r.Layer + " | "
		out[p+"wall_cycles"] = r.WallCycles
		out[p+"compute_cycles"] = r.ComputeCycles
		out[p+"comm_cycles"] = r.CommCycles
		out[p+"tile_cycles"] = r.TileCycles
		out[p+"coll_cycles"] = r.CollCycles
		out[p+"hidden_cycles"] = r.HiddenCycles
		out[p+"idle_cycles"] = r.IdleCycles
	}
	out[prefix+"critical | critical_cycles"] = l.CriticalCycles
}

// flatten reduces a report to the diffable metric map.
func flatten(r *Report) map[string]int64 {
	out := map[string]int64{}
	for i := range r.Lanes {
		laneMetrics(out, &r.Lanes[i])
	}
	for _, p := range r.Processes {
		prefix := fmt.Sprintf("process %s | ", p.Process)
		out[prefix+"busy_cycles"] = p.BusyCycles
		out[prefix+"spans"] = int64(p.Spans)
		for _, c := range p.Categories {
			out[prefix+c.TV+" | cycles"] = c.Cycles
		}
	}
	return out
}

// Diff compares two reports metric by metric.
func Diff(a, b *Report, opt DiffOptions) *DiffReport {
	ma, mb := flatten(a), flatten(b)
	keys := make([]string, 0, len(ma)+len(mb))
	for k := range ma {
		keys = append(keys, k)
	}
	for k := range mb {
		if _, ok := ma[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	rep := &DiffReport{Identical: true}
	for _, k := range keys {
		va, okA := ma[k]
		vb, okB := mb[k]
		row := DiffRow{Key: k, A: va, B: vb, OkA: okA, OkB: okB, Delta: vb - va}
		if va != 0 {
			row.Frac = float64(row.Delta) / float64(va)
		}
		switch {
		case !okA || !okB:
			// A metric present on one side only is a structural change:
			// always a regression (the golden must be regenerated).
			row.Regres = true
		case opt.Exact:
			row.Regres = row.Delta != 0
		case row.Delta > 0:
			slack := opt.MaxDeltaCycles
			if rel := int64(float64(va) * opt.MaxDeltaFrac); rel > slack {
				slack = rel
			}
			row.Regres = row.Delta > slack
		}
		if row.Delta != 0 || !okA || !okB {
			rep.Identical = false
		}
		if row.Regres {
			rep.Regressions++
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep
}

// WriteText renders the delta table: every metric, before/after/delta,
// with regressions flagged — all-zero for identical runs.
func (d *DiffReport) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# mpttrace diff\tmetrics=%d\tregressions=%d\tidentical=%v\n",
		len(d.Rows), d.Regressions, d.Identical)
	fmt.Fprintf(bw, "%-72s %14s %14s %12s %9s\n", "metric", "a", "b", "delta", "delta%")
	for _, r := range d.Rows {
		flag := ""
		switch {
		case !r.OkA:
			flag = "ONLY-IN-B"
		case !r.OkB:
			flag = "ONLY-IN-A"
		case r.Regres:
			flag = "REGRESSION"
		}
		fmt.Fprintf(bw, "%-72s %14d %14d %+12d %8.2f%% %s\n",
			r.Key, r.A, r.B, r.Delta, 100*r.Frac, flag)
	}
	return bw.Flush()
}
