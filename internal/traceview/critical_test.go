package traceview

import (
	"reflect"
	"testing"
)

// The simulator's phase shape: compute and tile start together, the
// collective follows the longer of the two, and the next phase follows the
// collective. The critical path must walk the longer branch of each phase.
func TestCriticalPathPhaseShape(t *testing.T) {
	leaves := []Span{
		// Phase 1: compute 100 vs tile 40, then coll 10.
		{Name: "l1 compute", TV: "compute", Start: 0, Dur: 100, idx: 0},
		{Name: "l1 tile", TV: "comm.tile", Start: 0, Dur: 40, idx: 1},
		{Name: "l1 coll", TV: "comm.coll", Start: 100, Dur: 10, idx: 2},
		// Phase 2: tile 80 dominates compute 30, then coll 5.
		{Name: "l2 compute", TV: "compute", Start: 110, Dur: 30, idx: 3},
		{Name: "l2 tile", TV: "comm.tile", Start: 110, Dur: 80, idx: 4},
		{Name: "l2 coll", TV: "comm.coll", Start: 190, Dur: 5, idx: 5},
	}
	total, path := criticalPath(leaves)
	if want := int64(100 + 10 + 80 + 5); total != want {
		t.Fatalf("critical cycles = %d, want %d", total, want)
	}
	var names []string
	for _, p := range path {
		names = append(names, p.Name)
	}
	want := []string{"l1 compute", "l1 coll", "l2 tile", "l2 coll"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("path = %v, want %v", names, want)
	}
}

func TestCriticalPathEmptyAndSingle(t *testing.T) {
	if total, path := criticalPath(nil); total != 0 || path != nil {
		t.Fatalf("empty: got %d, %v", total, path)
	}
	total, path := criticalPath([]Span{{Name: "only", Start: 5, Dur: 7}})
	if total != 7 || len(path) != 1 || path[0].Name != "only" {
		t.Fatalf("single: got %d, %v", total, path)
	}
}

// Ties must break deterministically: two equal-length chains resolve by
// the stable sort (earlier start, then emission index), so repeated runs
// pick the same chain.
func TestCriticalPathDeterministicTies(t *testing.T) {
	leaves := []Span{
		{Name: "a", Start: 0, Dur: 50, idx: 0},
		{Name: "b", Start: 0, Dur: 50, idx: 1}, // same window as a
		{Name: "c", Start: 50, Dur: 50, idx: 2},
	}
	for trial := 0; trial < 10; trial++ {
		total, path := criticalPath(leaves)
		if total != 100 {
			t.Fatalf("total = %d, want 100", total)
		}
		if path[0].Name != "a" || path[1].Name != "c" {
			t.Fatalf("trial %d: tie broke to %s,%s (want a,c)", trial, path[0].Name, path[1].Name)
		}
	}
}

func TestContributorsRankAndTopK(t *testing.T) {
	path := []PathSpan{
		{Name: "small", TV: "compute", Start: 0, Cycles: 10},
		{Name: "big", TV: "comm.tile", Start: 10, Cycles: 70},
		{Name: "mid", TV: "compute", Start: 80, Cycles: 20},
	}
	got := contributors(path, 100, 2)
	if len(got) != 2 || got[0].Name != "big" || got[1].Name != "mid" {
		t.Fatalf("contributors = %+v", got)
	}
	if got[0].Share != 0.7 || got[1].Share != 0.2 {
		t.Fatalf("shares = %v, %v", got[0].Share, got[1].Share)
	}
	if contributors(nil, 100, 3) != nil {
		t.Fatalf("empty path must yield nil contributors")
	}
}
