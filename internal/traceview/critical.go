package traceview

import "sort"

// Critical-path reconstruction. Within a lane the simulator serializes
// layer phases, so "a ends no later than b starts" is causal order at the
// leaf-span level: the compute/tile children of one phase start together,
// the collective child starts when the later of the two ends, and the next
// phase's children start after the collective. The critical path is
// therefore the longest chain of pairwise non-overlapping leaf spans —
// computed by a deterministic longest-chain DP (ties broken by earlier
// start, then emission order), so the same trace always yields the same
// path.

// criticalPath returns the longest dependency chain through the leaves:
// total chained cycles and the chain in time order.
func criticalPath(leaves []Span) (int64, []PathSpan) {
	if len(leaves) == 0 {
		return 0, nil
	}
	spans := append([]Span(nil), leaves...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].End() != spans[j].End() {
			return spans[i].End() < spans[j].End()
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].idx < spans[j].idx
	})

	best := make([]int64, len(spans)) // best chain length ending at i
	prev := make([]int, len(spans))   // predecessor index (-1 = chain start)
	for i := range spans {
		best[i] = spans[i].Dur
		prev[i] = -1
		for j := 0; j < i; j++ {
			if spans[j].End() > spans[i].Start {
				continue
			}
			if cand := best[j] + spans[i].Dur; cand > best[i] {
				best[i] = cand
				prev[i] = j
			}
		}
	}

	end := 0
	for i := 1; i < len(spans); i++ {
		if best[i] > best[end] {
			end = i
		}
	}

	var path []PathSpan
	for i := end; i >= 0; i = prev[i] {
		path = append(path, PathSpan{
			Name: spans[i].Name, TV: spans[i].TV,
			Start: spans[i].Start, Cycles: spans[i].Dur,
		})
		if prev[i] < 0 {
			break
		}
	}
	// Reverse into time order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best[end], path
}

// contributors ranks the critical path's members by cycles, top-k, with a
// deterministic (cycles desc, start asc, name asc) order.
func contributors(path []PathSpan, total int64, k int) []Contributor {
	if len(path) == 0 {
		return nil
	}
	ranked := append([]PathSpan(nil), path...)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Cycles != ranked[j].Cycles {
			return ranked[i].Cycles > ranked[j].Cycles
		}
		if ranked[i].Start != ranked[j].Start {
			return ranked[i].Start < ranked[j].Start
		}
		return ranked[i].Name < ranked[j].Name
	})
	if len(ranked) > k {
		ranked = ranked[:k]
	}
	out := make([]Contributor, 0, len(ranked))
	for _, p := range ranked {
		c := Contributor{Name: p.Name, TV: p.TV, Cycles: p.Cycles}
		if total > 0 {
			c.Share = float64(p.Cycles) / float64(total)
		}
		out = append(out, c)
	}
	return out
}
