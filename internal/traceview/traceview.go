// Package traceview is the repo's trace-analysis engine: it parses the
// canonical Chrome trace_event JSON the telemetry tracer emits (plus the
// flat metrics snapshots of -metrics-json) back into per-lane span
// timelines, reconstructs the critical path through a run, and computes
// attribution reports — per-layer compute/comm/idle breakdowns, the
// comm-hidden-by-compute overlap percentage, and the achieved-vs-bound
// traffic ratio joined from the planner's gauges.
//
// Everything downstream of the tracer is cycle-domain deterministic, so
// every number this package produces is bit-stable: the same simulation at
// any host worker count yields byte-identical reports, which is what lets
// cmd/mpttrace gate model-time regressions exactly (no tolerance bands)
// and assert overlap properties in CI. See DESIGN.md §15 for the span
// taxonomy and the critical-path algorithm.
package traceview

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"mptwino/internal/telemetry"
)

// Span is one complete ("X") event lifted out of the trace, with the
// traceview metadata args (DESIGN.md §15) promoted to fields.
type Span struct {
	Name  string
	Cat   string // trace_event category ("sim.phase", "sim.exec", "noc.msg", ...)
	PID   int
	TID   int
	Start int64 // simulated cycles (or logical steps in the MPT lane)
	Dur   int64

	// TV is the span taxonomy category: "phase" for layer-phase roots,
	// "compute", "comm.tile", "comm.coll", "comm.noc", "overhead".
	// Empty on spans emitted before the taxonomy existed.
	TV string
	// Parent names the causal parent span in the same lane ("" = root).
	Parent string
	// Layer is the model layer the span belongs to ("" = not layer-scoped).
	Layer string

	idx int // emission index: the deterministic tie-break
}

// End returns the first cycle after the span.
func (s Span) End() int64 { return s.Start + s.Dur }

// Lane is one (pid, tid) timeline row.
type Lane struct {
	PID, TID int
	Process  string // process_name metadata (falls back to "pid<N>")
	Thread   string // thread_name metadata (falls back to "tid<N>")
	Spans    []Span // ordered by (Start, emission index)
	Instants int    // instant events observed in this lane
}

// Label returns the lane's display identity, stable across runs.
func (l Lane) Label() string {
	return fmt.Sprintf("%s/%s", l.Process, l.Thread)
}

// Run is a parsed trace plus (optionally) the metrics snapshot of the same
// run, ready for analysis.
type Run struct {
	Lanes []Lane // ordered by (pid, tid)

	// Metrics holds the flat snapshot (-metrics-json / Registry.Snapshot)
	// keyed by instrument name; nil when no snapshot was attached. Values
	// are float64 because the JSON dump may carry histogram percentiles.
	Metrics map[string]float64
}

// ParseTrace reads Chrome trace_event JSON (the tracer's WriteJSON output)
// into a Run.
func ParseTrace(r io.Reader) (*Run, error) {
	var doc telemetry.Trace
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("traceview: parse trace: %w", err)
	}
	return FromTrace(doc), nil
}

// FromTrace builds a Run from an in-memory event stream (the tracer's
// Export) — the zero-serialization path the in-process tests and the
// mptsim -trace-report flag use. Passing the same events that WriteJSON
// serializes yields the same Run as ParseTrace on the written bytes.
func FromTrace(doc telemetry.Trace) *Run {
	type key struct{ pid, tid int }
	lanes := map[key]*Lane{}
	procNames := map[int]string{}
	lane := func(pid, tid int) *Lane {
		k := key{pid, tid}
		l, ok := lanes[k]
		if !ok {
			l = &Lane{PID: pid, TID: tid}
			lanes[k] = l
		}
		return l
	}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			name := argString(ev.Args, "name")
			switch ev.Name {
			case "process_name":
				procNames[ev.PID] = name
			case "thread_name":
				lane(ev.PID, ev.TID).Thread = name
			}
		case "X":
			l := lane(ev.PID, ev.TID)
			l.Spans = append(l.Spans, Span{
				Name:   ev.Name,
				Cat:    ev.Cat,
				PID:    ev.PID,
				TID:    ev.TID,
				Start:  ev.TS,
				Dur:    ev.Dur,
				TV:     argString(ev.Args, "tv"),
				Parent: argString(ev.Args, "tv_parent"),
				Layer:  argString(ev.Args, "layer"),
				idx:    i,
			})
		case "i":
			lane(ev.PID, ev.TID).Instants++
		}
	}

	run := &Run{}
	keys := make([]key, 0, len(lanes))
	for k := range lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	for _, k := range keys {
		l := lanes[k]
		if name, ok := procNames[l.PID]; ok && name != "" {
			l.Process = name
		} else {
			l.Process = fmt.Sprintf("pid%d", l.PID)
		}
		if l.Thread == "" {
			l.Thread = fmt.Sprintf("tid%d", l.TID)
		}
		sort.SliceStable(l.Spans, func(i, j int) bool {
			if l.Spans[i].Start != l.Spans[j].Start {
				return l.Spans[i].Start < l.Spans[j].Start
			}
			return l.Spans[i].idx < l.Spans[j].idx
		})
		run.Lanes = append(run.Lanes, *l)
	}
	return run
}

// LoadMetrics reads a flat JSON metrics snapshot (the -metrics-json dump:
// one object of name → number) for joining into reports.
func LoadMetrics(r io.Reader) (map[string]float64, error) {
	var m map[string]float64
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("traceview: parse metrics: %w", err)
	}
	return m, nil
}

// FromSnapshot converts an in-memory Registry.Snapshot to the metrics map
// a Run carries — the in-process equivalent of LoadMetrics.
func FromSnapshot(snap map[string]int64) map[string]float64 {
	if snap == nil {
		return nil
	}
	out := make(map[string]float64, len(snap))
	for name, v := range snap { // key-slot copy: order-independent
		out[name] = float64(v)
	}
	return out
}

// argString extracts a string arg, tolerating absent maps and non-string
// values (JSON round-trips numbers as float64).
func argString(args map[string]any, key string) string {
	if args == nil {
		return ""
	}
	s, _ := args[key].(string)
	return s
}
