package traceview

import "fmt"

// Trace assertions — the machine-checkable form of claims like "this
// schedule hides at least 60% of communication behind compute". Because
// the inputs are deterministic, an assertion that passes once passes
// forever until the model genuinely changes, so these can gate CI without
// tolerance bands (the substrate for the LayerPipe overlap proofs).

// Assertions holds the enabled checks; negative values disable a check
// (the flag defaults in cmd/mpttrace).
type Assertions struct {
	// MinOverlap requires Total.OverlapFrac ≥ this in every phase lane
	// that has any communication.
	MinOverlap float64
	// MaxIdle caps Total.IdleShare in every phase lane.
	MaxIdle float64
	// MaxBoundRatio caps the achieved-vs-bound traffic ratio of every
	// layer row that joined planner gauges.
	MaxBoundRatio float64
	// MaxCriticalCycles caps every phase lane's critical-path length.
	MaxCriticalCycles int64
}

// Unset returns the all-disabled assertion set.
func Unset() Assertions {
	return Assertions{MinOverlap: -1, MaxIdle: -1, MaxBoundRatio: -1, MaxCriticalCycles: -1}
}

// Any reports whether at least one check is enabled.
func (a Assertions) Any() bool {
	return a.MinOverlap >= 0 || a.MaxIdle >= 0 || a.MaxBoundRatio >= 0 || a.MaxCriticalCycles >= 0
}

// Check evaluates the assertions against the report, returning one
// message per violation (empty = all pass) in deterministic lane/row
// order.
func Check(r *Report, a Assertions) []string {
	var fails []string
	for i := range r.Lanes {
		l := &r.Lanes[i]
		if a.MinOverlap >= 0 && l.Total.CommCycles > 0 && l.Total.OverlapFrac < a.MinOverlap {
			fails = append(fails, fmt.Sprintf(
				"lane %s/%s: overlap %.4f < required %.4f (hidden %d of %d comm cycles)",
				l.Process, l.Thread, l.Total.OverlapFrac, a.MinOverlap,
				l.Total.HiddenCycles, l.Total.CommCycles))
		}
		if a.MaxIdle >= 0 && l.Total.IdleShare > a.MaxIdle {
			fails = append(fails, fmt.Sprintf(
				"lane %s/%s: idle share %.4f > allowed %.4f (%d idle cycles)",
				l.Process, l.Thread, l.Total.IdleShare, a.MaxIdle, l.Total.IdleCycles))
		}
		if a.MaxCriticalCycles >= 0 && l.CriticalCycles > a.MaxCriticalCycles {
			fails = append(fails, fmt.Sprintf(
				"lane %s/%s: critical path %d cycles > allowed %d",
				l.Process, l.Thread, l.CriticalCycles, a.MaxCriticalCycles))
		}
		if a.MaxBoundRatio >= 0 {
			for _, row := range l.Rows {
				if row.BoundBytes > 0 && row.BoundRatio > a.MaxBoundRatio {
					fails = append(fails, fmt.Sprintf(
						"lane %s/%s layer %s: achieved/bound bytes %.4f > allowed %.4f",
						l.Process, l.Thread, row.Layer, row.BoundRatio, a.MaxBoundRatio))
				}
			}
		}
	}
	return fails
}
