package mpt

import (
	"bytes"
	"reflect"
	"testing"

	"mptwino/internal/parallel"
	"mptwino/internal/telemetry"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// TestNetTelemetryDeterministicAcrossWorkers trains an instrumented
// network — prediction and zero-skip on, with a checkpoint/reconfigure/
// restore cycle in the middle — at worker counts {1, 2, 8} and asserts
// the metrics snapshot and exported trace bytes are identical. The MPT
// trace clock is the training-step index and every emission sits on the
// sequential driver path, so the whole surface must be schedule-free.
func TestNetTelemetryDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (map[string]int64, []byte) {
		t.Helper()
		prev := parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(prev)
		reg := telemetry.NewRegistry()
		trc := telemetry.NewTracer()
		// parallel.Attach is deliberately absent: the engine-usage counters
		// measure actual fan-out entries, and the winograd Into kernels
		// bypass the engine entirely on the closure-free one-slot path
		// (scratch.go), so those counts vary with the worker count by
		// design. Everything attached here is model-visible and must not.
		tensor.Attach(reg)
		defer tensor.Attach(nil)

		rng := tensor.NewRNG(7)
		net, err := NewNet(winograd.F2x2_3x3, chainParams(),
			Config{Ng: 4, Nc: 2, Predict: true, ZeroSkip: true}, rng)
		if err != nil {
			t.Fatal(err)
		}
		net.Instrument(reg, trc)

		x := tensor.New(4, 2, 8, 8)
		rng.FillNormal(x, 0, 1)
		target := tensor.New(4, 2, 8, 8)
		rng.FillNormal(target, 0, 1)

		step := func() {
			if _, err := net.TrainStepMSE(x, target, 0.01); err != nil {
				t.Fatal(err)
			}
		}
		step()
		step()
		cp := net.Checkpoint()
		if err := net.Reconfigure(2, 4); err != nil {
			t.Fatal(err)
		}
		step()
		if err := net.Restore(cp); err != nil {
			t.Fatal(err)
		}
		step()

		var buf bytes.Buffer
		if err := trc.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot(), buf.Bytes()
	}

	refSnap, refTrace := run(1)

	// Sanity: four steps, one of each lifecycle event, real traffic.
	for name, want := range map[string]int64{
		"mpt.steps": 4, "mpt.checkpoints": 1, "mpt.restores": 1, "mpt.reconfigs": 1,
	} {
		if got := refSnap[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if refSnap["mpt.collective_bytes"] == 0 {
		t.Error("mpt.collective_bytes = 0, want ring all-reduce traffic")
	}
	if raw, c := refSnap["mpt.scatter_raw_bytes"], refSnap["mpt.scatter_bytes"]; raw < c || raw == 0 {
		t.Errorf("zero-skip compression inverted: scatter_raw_bytes %d < scatter_bytes %d", raw, c)
	}
	if refSnap["tensor.gemm_flops"] == 0 {
		t.Error("tensor.gemm_flops = 0, want counted element GEMMs")
	}

	for _, workers := range []int{2, 8} {
		snap, trace := run(workers)
		if !reflect.DeepEqual(refSnap, snap) {
			t.Errorf("workers=%d: metrics snapshot differs from workers=1:\nref: %v\ngot: %v",
				workers, refSnap, snap)
		}
		if !bytes.Equal(refTrace, trace) {
			t.Errorf("workers=%d: trace bytes differ from workers=1 (%d vs %d bytes)",
				workers, len(refTrace), len(trace))
		}
	}
}
