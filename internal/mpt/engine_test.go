package mpt

import (
	"math"
	"testing"

	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

var testP = conv.Params{In: 3, Out: 4, K: 3, Pad: 1, H: 8, W: 8}

// refLayer builds a single-worker Winograd layer sharing the engine's
// weights.
func refLayer(t *testing.T, e *Engine) *winograd.Layer {
	t.Helper()
	tl, err := winograd.NewTiling(e.Tr, e.P)
	if err != nil {
		t.Fatal(err)
	}
	return winograd.NewLayerFromParts(tl, e.Weights().Clone())
}

func TestNewEngineValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 0, Nc: 1}, rng); err == nil {
		t.Fatal("Ng=0 accepted")
	}
	if _, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 17, Nc: 1}, rng); err == nil {
		t.Fatal("Ng > T^2 accepted")
	}
	if _, err := NewEngine(winograd.F2x2_3x3, conv.Params{In: 1, Out: 1, K: 5, Pad: 2, H: 8, W: 8},
		Config{Ng: 1, Nc: 1}, rng); err == nil {
		t.Fatal("kernel/transform mismatch accepted")
	}
}

// TestDistributedFpropExact: for every (Ng, Nc) organization, the
// distributed forward pass must equal the single-worker Winograd layer.
func TestDistributedFpropExact(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := tensor.New(8, testP.In, testP.H, testP.W)
	rng.FillNormal(x, 0, 1)
	for _, cfg := range []Config{
		{Ng: 1, Nc: 1}, {Ng: 1, Nc: 8}, {Ng: 4, Nc: 2}, {Ng: 16, Nc: 4}, {Ng: 8, Nc: 8},
	} {
		e, err := NewEngine(winograd.F2x2_3x3, testP, cfg, tensor.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		ref := refLayer(t, e)
		want := ref.Fprop(x)
		got, err := e.Fprop(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := got.MaxAbsDiff(want); d > 1e-5 {
			t.Fatalf("cfg %+v: fprop diverges %v", cfg, d)
		}
	}
}

func TestDistributedBpropExact(t *testing.T) {
	rng := tensor.NewRNG(5)
	dy := tensor.New(8, testP.Out, testP.OutH(), testP.OutW())
	rng.FillNormal(dy, 0, 1)
	for _, cfg := range []Config{{Ng: 4, Nc: 4}, {Ng: 16, Nc: 2}} {
		e, err := NewEngine(winograd.F2x2_3x3, testP, cfg, tensor.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		ref := refLayer(t, e)
		want := ref.Bprop(dy)
		got, err := e.Bprop(dy)
		if err != nil {
			t.Fatal(err)
		}
		if d := got.MaxAbsDiff(want); d > 1e-5 {
			t.Fatalf("cfg %+v: bprop diverges %v", cfg, d)
		}
	}
}

// TestDistributedUpdateGradExact: the ring-reduced dW must match the
// single-worker gradient over the whole batch, for uneven shard splits
// too.
func TestDistributedUpdateGradExact(t *testing.T) {
	rng := tensor.NewRNG(11)
	x := tensor.New(6, testP.In, testP.H, testP.W) // 6 images over Nc=4: uneven shards
	dy := tensor.New(6, testP.Out, testP.OutH(), testP.OutW())
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(dy, 0, 1)
	for _, cfg := range []Config{{Ng: 4, Nc: 4}, {Ng: 16, Nc: 3}, {Ng: 2, Nc: 6}} {
		e, err := NewEngine(winograd.F2x2_3x3, testP, cfg, tensor.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		ref := refLayer(t, e)
		ref.Fprop(x)
		want := ref.UpdateGradW(dy)
		if _, err := e.Fprop(x); err != nil {
			t.Fatal(err)
		}
		got, err := e.UpdateGrad(dy)
		if err != nil {
			t.Fatal(err)
		}
		for el := range want.El {
			for i := range want.El[el].Data {
				d := math.Abs(float64(want.El[el].Data[i] - got.El[el].Data[i]))
				if d > 1e-3 {
					t.Fatalf("cfg %+v: dW element %d diverges by %v", cfg, el, d)
				}
			}
		}
	}
}

func TestUpdateGradBeforeFpropErrors(t *testing.T) {
	e, _ := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 2}, tensor.NewRNG(1))
	if _, err := e.UpdateGrad(tensor.New(4, testP.Out, 8, 8)); err == nil {
		t.Fatal("UpdateGrad before Fprop accepted")
	}
}

func TestBatchSmallerThanNcErrors(t *testing.T) {
	e, _ := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 1, Nc: 8}, tensor.NewRNG(1))
	x := tensor.New(4, testP.In, 8, 8)
	if _, err := e.Fprop(x); err == nil {
		t.Fatal("batch < Nc accepted")
	}
}

// TestDistributedTrainingMatchesSingleWorker runs several full SGD steps
// distributed and single-worker from identical weights and checks the
// weights stay equal — MPT is an exact reorganization of the computation.
func TestDistributedTrainingMatchesSingleWorker(t *testing.T) {
	rng := tensor.NewRNG(13)
	e, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 4}, tensor.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	ref := refLayer(t, e)
	x := tensor.New(8, testP.In, testP.H, testP.W)
	target := tensor.New(8, testP.Out, testP.OutH(), testP.OutW())
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(target, 0, 1)

	for step := 0; step < 4; step++ {
		yr := ref.Fprop(x)
		dyr := yr.Clone()
		dyr.AXPY(-1, target)
		ref.Step(0.01, ref.UpdateGradW(dyr))

		ye, err := e.Fprop(x)
		if err != nil {
			t.Fatal(err)
		}
		dye := ye.Clone()
		dye.AXPY(-1, target)
		dw, err := e.UpdateGrad(dye)
		if err != nil {
			t.Fatal(err)
		}
		e.Step(0.01, dw)
	}
	for el := range ref.W.El {
		for i := range ref.W.El[el].Data {
			d := math.Abs(float64(ref.W.El[el].Data[i] - e.Weights().El[el].Data[i]))
			if d > 1e-3 {
				t.Fatalf("weights diverged after training: element %d, diff %v", el, d)
			}
		}
	}
}

// TestFpropReLUWithPredictionExact: activation prediction must not change
// the post-ReLU output while actually skipping some tile gathers.
func TestFpropReLUWithPredictionExact(t *testing.T) {
	rng := tensor.NewRNG(17)
	// Negative-biased inputs so many output tiles are fully non-activated.
	x := tensor.New(8, testP.In, testP.H, testP.W)
	rng.FillNormal(x, -0.6, 1)

	plain, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 2}, tensor.NewRNG(29))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 2, Predict: true}, tensor.NewRNG(29))
	if err != nil {
		t.Fatal(err)
	}
	pred.SetWeights(plain.Weights())

	want, err := plain.FpropReLU(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pred.FpropReLU(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Fatalf("prediction changed the output by %v", d)
	}
	if pred.Traffic.SkippedTiles == 0 {
		t.Fatal("prediction skipped nothing on a negative-biased workload")
	}
	if pred.Traffic.GatherBytes >= plain.Traffic.GatherBytes {
		t.Fatalf("prediction did not reduce gather bytes: %d vs %d",
			pred.Traffic.GatherBytes, plain.Traffic.GatherBytes)
	}
}

// TestTrafficMatchesCommModel: the engine's measured byte counters must
// match the closed-form model of internal/comm (which the paper's
// analysis and our simulator both rely on).
func TestTrafficMatchesCommModel(t *testing.T) {
	cfg := Config{Ng: 4, Nc: 4}
	e, err := NewEngine(winograd.F2x2_3x3, testP, cfg, tensor.NewRNG(31))
	if err != nil {
		t.Fatal(err)
	}
	const batch = 8
	rng := tensor.NewRNG(37)
	x := tensor.New(batch, testP.In, testP.H, testP.W)
	dy := tensor.New(batch, testP.Out, testP.OutH(), testP.OutW())
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(dy, 0, 1)

	if _, err := e.Fprop(x); err != nil {
		t.Fatal(err)
	}
	// Scatter of X across the whole system: |Tiles_in|·(Ng−1)/Ng.
	inTiles := comm.TileBytes(winograd.F2x2_3x3, testP, batch, testP.In)
	wantScatter := inTiles * int64(cfg.Ng-1) / int64(cfg.Ng)
	if diff := relDiff(e.Traffic.ScatterBytes, wantScatter); diff > 0.01 {
		t.Fatalf("scatter bytes %d vs model %d", e.Traffic.ScatterBytes, wantScatter)
	}
	outTiles := comm.TileBytes(winograd.F2x2_3x3, testP, batch, testP.Out)
	wantGather := outTiles * int64(cfg.Ng-1) / int64(cfg.Ng)
	if diff := relDiff(e.Traffic.GatherBytes, wantGather); diff > 0.01 {
		t.Fatalf("gather bytes %d vs model %d", e.Traffic.GatherBytes, wantGather)
	}

	// Collective: system total = 2 × Ng·Nc × per-worker one-way volume.
	e.ResetTraffic()
	if _, err := e.Fprop(x); err != nil {
		t.Fatal(err)
	}
	e.ResetTraffic() // isolate the collective
	if _, err := e.UpdateGrad(dy); err != nil {
		t.Fatal(err)
	}
	perWorker := comm.RingCollectivePerWorker(
		comm.WinogradWeightBytes(winograd.F2x2_3x3, testP)/int64(cfg.Ng), cfg.Nc)
	want := 2 * perWorker * int64(cfg.Ng*cfg.Nc)
	if diff := relDiff(e.Traffic.CollectiveBytes, want); diff > 0.02 {
		t.Fatalf("collective bytes %d vs model %d", e.Traffic.CollectiveBytes, want)
	}
}

func relDiff(a, b int64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(float64(a-b)) / float64(b)
}

// TestZeroSkipReducesScatter: with sparse (ReLU-ed) inputs, zero-skipping
// must cut measured scatter bytes.
func TestZeroSkipReducesScatter(t *testing.T) {
	rng := tensor.NewRNG(41)
	x := tensor.New(4, testP.In, testP.H, testP.W)
	rng.FillNormal(x, -0.5, 1)
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0 // previous layer's ReLU
		}
	}
	plain, _ := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 2}, tensor.NewRNG(43))
	skip, _ := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 2, ZeroSkip: true}, tensor.NewRNG(43))
	if _, err := plain.Fprop(x); err != nil {
		t.Fatal(err)
	}
	if _, err := skip.Fprop(x); err != nil {
		t.Fatal(err)
	}
	if skip.Traffic.ScatterBytes >= plain.Traffic.ScatterBytes {
		t.Fatalf("zero-skip did not reduce scatter: %d vs %d",
			skip.Traffic.ScatterBytes, plain.Traffic.ScatterBytes)
	}
}

func TestSingleGroupHasNoTileTraffic(t *testing.T) {
	e, _ := NewEngine(winograd.F4x4_3x3, testP, Config{Ng: 1, Nc: 4}, tensor.NewRNG(1))
	x := tensor.New(4, testP.In, testP.H, testP.W)
	tensor.NewRNG(2).FillNormal(x, 0, 1)
	if _, err := e.Fprop(x); err != nil {
		t.Fatal(err)
	}
	if e.Traffic.ScatterBytes != 0 || e.Traffic.GatherBytes != 0 {
		t.Fatalf("Ng=1 moved tile bytes: %+v", e.Traffic)
	}
}

func TestSingleClusterHasNoCollective(t *testing.T) {
	e, _ := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 1}, tensor.NewRNG(1))
	rng := tensor.NewRNG(2)
	x := tensor.New(2, testP.In, testP.H, testP.W)
	dy := tensor.New(2, testP.Out, testP.OutH(), testP.OutW())
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(dy, 0, 1)
	if _, err := e.Fprop(x); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpdateGrad(dy); err != nil {
		t.Fatal(err)
	}
	if e.Traffic.CollectiveBytes != 0 {
		t.Fatalf("Nc=1 moved collective bytes: %d", e.Traffic.CollectiveBytes)
	}
}

// TestFpropReLU1DPredictionExact: with 4 groups over a 4x4 tile, each
// group holds whole lines and the engine switches to 1-D prediction; the
// post-ReLU output must still be bit-exact and the (tighter) 1-D predictor
// must skip at least as many tiles as 2-D would.
func TestFpropReLU1DPredictionExact(t *testing.T) {
	rng := tensor.NewRNG(51)
	x := tensor.New(8, testP.In, testP.H, testP.W)
	rng.FillNormal(x, -0.6, 1)

	mk := func(ng int) (*Engine, *Engine) {
		plain, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: ng, Nc: 2}, tensor.NewRNG(52))
		if err != nil {
			t.Fatal(err)
		}
		pred, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: ng, Nc: 2, Predict: true, PredictBits: 5}, tensor.NewRNG(52))
		if err != nil {
			t.Fatal(err)
		}
		pred.SetWeights(plain.Weights())
		return plain, pred
	}

	// ng=4 → whole lines → 1-D predict path.
	plain4, pred4 := mk(4)
	want, err := plain4.FpropReLU(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pred4.FpropReLU(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d != 0 {
		t.Fatalf("1-D prediction changed output by %v", d)
	}
	if pred4.Traffic.SkippedTiles == 0 {
		t.Fatal("1-D prediction skipped nothing")
	}

	// ng=16 → single elements → 2-D predict path; same weights and data.
	_, pred16 := mk(16)
	if _, err := pred16.FpropReLU(x); err != nil {
		t.Fatal(err)
	}
	skip4 := float64(pred4.Traffic.SkippedTiles) / float64(pred4.Traffic.TotalTiles)
	skip16 := float64(pred16.Traffic.SkippedTiles) / float64(pred16.Traffic.TotalTiles)
	if skip4 < skip16 {
		t.Fatalf("1-D skip ratio %v below 2-D %v (1-D should be tighter)", skip4, skip16)
	}
}
