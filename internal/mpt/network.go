package mpt

import (
	"fmt"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// Net is a multi-layer CNN whose every convolution runs distributed on the
// MPT engine, with ReLU between layers (and a linear final layer). It
// demonstrates — and its tests prove — that a whole network trains under
// MPT exactly as it would on one worker, layer chaining, activation
// masking and per-layer collectives included.
type Net struct {
	Cfg     Config
	Engines []*Engine
	masks   [][]bool // ReLU masks per hidden layer, from the last forward

	// telemetry handles + logical step clock (zero value = disabled; see
	// Instrument in telemetry.go)
	tel netTel
}

// NewNet builds engines for each geometry in params; layer i's output
// channels must match layer i+1's input channels, and all spatial sizes
// must chain (same-padded layers keep H×W). Every layer shares one
// transform and one worker organization.
func NewNet(tr *winograd.Transform, params []conv.Params, cfg Config, rng *tensor.RNG) (*Net, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("mpt: empty network")
	}
	cfgs := make([]Config, len(params))
	for i := range cfgs {
		cfgs[i] = cfg
	}
	return buildNet(func(int) (*winograd.Transform, error) { return tr, nil }, params, cfgs, rng)
}

// NewNetConfigs builds a network whose layers run under per-layer worker
// organizations — the form an autoplan (internal/planner) produces. Layer
// i's transform is resolved from its kernel size, group count and tile
// choice via winograd.ForKernelTile (TileM = 0 keeps the historical
// winograd.ForKernel rule), so one net may mix single-group F(4×4,3×3)
// layers with multi-group F(2×2,·) ones, or run an explicit planner-chosen
// tile size.
func NewNetConfigs(params []conv.Params, cfgs []Config, rng *tensor.RNG) (*Net, error) {
	if len(params) == 0 {
		return nil, fmt.Errorf("mpt: empty network")
	}
	if len(cfgs) != len(params) {
		return nil, fmt.Errorf("mpt: %d configs for %d layers", len(cfgs), len(params))
	}
	return buildNet(func(i int) (*winograd.Transform, error) {
		return winograd.ForKernelTile(params[i].K, cfgs[i].Ng, cfgs[i].TileM)
	}, params, cfgs, rng)
}

func buildNet(trFor func(int) (*winograd.Transform, error), params []conv.Params, cfgs []Config, rng *tensor.RNG) (*Net, error) {
	n := &Net{Cfg: cfgs[0]}
	for i, p := range params {
		if i > 0 {
			prev := params[i-1]
			if p.In != prev.Out || p.H != prev.OutH() || p.W != prev.OutW() {
				return nil, fmt.Errorf("mpt: layer %d input %dx%dx%d does not chain from layer %d output %dx%dx%d",
					i, p.In, p.H, p.W, i-1, prev.Out, prev.OutH(), prev.OutW())
			}
		}
		tr, err := trFor(i)
		if err != nil {
			return nil, err
		}
		e, err := NewEngine(tr, p, cfgs[i], rng)
		if err != nil {
			return nil, err
		}
		n.Engines = append(n.Engines, e)
	}
	return n, nil
}

// Forward runs the distributed forward pass: ReLU after every layer except
// the last.
func (n *Net) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	n.masks = n.masks[:0]
	for i, e := range n.Engines {
		y, err := e.Fprop(x)
		if err != nil {
			return nil, err
		}
		if i < len(n.Engines)-1 {
			mask := make([]bool, len(y.Data))
			for j, v := range y.Data {
				if v > 0 {
					mask[j] = true
				} else {
					y.Data[j] = 0
				}
			}
			n.masks = append(n.masks, mask)
		}
		x = y
	}
	return x, nil
}

// Backward runs the distributed backward pass from the loss gradient at
// the network output, applying each layer's collective-reduced update with
// learning rate lr. Forward must run first.
func (n *Net) Backward(dy *tensor.Tensor, lr float32) error {
	if len(n.masks) != len(n.Engines)-1 {
		return fmt.Errorf("mpt: Backward before Forward")
	}
	for i := len(n.Engines) - 1; i >= 0; i-- {
		e := n.Engines[i]
		dw, err := e.UpdateGrad(dy)
		if err != nil {
			return err
		}
		if i > 0 {
			dx, err := e.Bprop(dy)
			if err != nil {
				return err
			}
			mask := n.masks[i-1]
			for j, live := range mask {
				if !live {
					dx.Data[j] = 0
				}
			}
			dy = dx
		}
		e.Step(lr, dw)
	}
	n.masks = n.masks[:0]
	return nil
}

// TrainStepMSE runs one SGD step against L = 0.5‖y − target‖², returning
// the pre-update loss.
func (n *Net) TrainStepMSE(x, target *tensor.Tensor, lr float32) (float64, error) {
	y, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	if !y.SameShape(target) {
		return 0, fmt.Errorf("mpt: target shape %s does not match output %s",
			target.ShapeString(), y.ShapeString())
	}
	dy := y.Clone()
	dy.AXPY(-1, target)
	var loss float64
	for _, v := range dy.Data {
		loss += 0.5 * float64(v) * float64(v)
	}
	if err := n.Backward(dy, lr); err != nil {
		return 0, err
	}
	n.recordStep()
	return loss, nil
}

// TotalTraffic sums the engines' traffic counters.
func (n *Net) TotalTraffic() Traffic {
	var t Traffic
	for _, e := range n.Engines {
		t.ScatterBytes += e.Traffic.ScatterBytes
		t.ScatterRawBytes += e.Traffic.ScatterRawBytes
		t.GatherBytes += e.Traffic.GatherBytes
		t.PredictBytes += e.Traffic.PredictBytes
		t.CollectiveBytes += e.Traffic.CollectiveBytes
		t.SkippedTiles += e.Traffic.SkippedTiles
		t.TotalTiles += e.Traffic.TotalTiles
	}
	return t
}
