package mpt

import (
	"reflect"
	"testing"

	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/telemetry"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

func TestShardBoundsEqualSplitUnchanged(t *testing.T) {
	e, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 4}, tensor.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{4, 7, 16, 17, 33} {
		bounds, err := e.shardBounds(batch)
		if err != nil {
			t.Fatal(err)
		}
		for c, b := range bounds {
			want := [2]int{c * batch / 4, (c + 1) * batch / 4}
			if b != want {
				t.Fatalf("batch %d cluster %d: bounds %v, want %v", batch, c, b, want)
			}
		}
	}
}

func TestShardBoundsLoadAware(t *testing.T) {
	cfg := Config{Ng: 4, Nc: 4, Speeds: []float64{1, 0.5, 1, 1}}
	e, err := NewEngine(winograd.F2x2_3x3, testP, cfg, tensor.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	const batch = 28
	bounds, err := e.shardBounds(batch)
	if err != nil {
		t.Fatal(err)
	}
	shares := comm.LoadAwareShards(batch, cfg.Speeds)
	lo := 0
	for c, b := range bounds {
		want := [2]int{lo, lo + shares[c]}
		if b != want {
			t.Fatalf("cluster %d: bounds %v, want %v", c, b, want)
		}
		lo += shares[c]
	}
	if lo != batch {
		t.Fatalf("bounds cover %d of %d images", lo, batch)
	}
	// 0.5/3.5 of 28 = 4 exactly: the straggler holds 4, the rest split 24.
	if got := shares[1]; got != 4 {
		t.Fatalf("straggler share = %d, want 4", got)
	}
}

func TestNewEngineRejectsSpeedLengthMismatch(t *testing.T) {
	cfg := Config{Ng: 4, Nc: 4, Speeds: []float64{1, 1}}
	if _, err := NewEngine(winograd.F2x2_3x3, testP, cfg, tensor.NewRNG(7)); err == nil {
		t.Fatal("2 speeds for Nc=4 accepted")
	}
}

// TestLoadAwareExactness: unequal sharding moves batch ownership, not
// values — the forward pass must match the single-worker reference.
func TestLoadAwareExactness(t *testing.T) {
	cfg := Config{Ng: 4, Nc: 4, Speeds: []float64{1, 0.25, 1, 0.7}}
	e, err := NewEngine(winograd.F2x2_3x3, testP, cfg, tensor.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	ref := refLayer(t, e)
	x := tensor.New(13, testP.In, testP.H, testP.W)
	tensor.NewRNG(11).FillNormal(x, 0, 1)
	want := ref.Fprop(x)
	got, err := e.Fprop(x)
	if err != nil {
		t.Fatal(err)
	}
	if d := got.MaxAbsDiff(want); d > 1e-5 {
		t.Fatalf("load-aware fprop diverges from reference by %v", d)
	}
}

// TestRebalanceMovedBytes checks the migration accounting: installing a
// straggler profile on a fresh equal-split net moves images whose byte
// bill matches the hand-computed overlap, and telemetry records it.
func TestRebalanceMovedBytes(t *testing.T) {
	n := recoveryNet(t, 4, 4, 41)
	reg := telemetry.NewRegistry()
	n.Instrument(reg, nil)

	const batch = 28
	speeds := []float64{1, 0.5, 1, 1}
	moved, err := n.Rebalance(batch, speeds)
	if err != nil {
		t.Fatal(err)
	}

	oldB, err := shardBoundsFor(batch, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	newB, err := shardBoundsFor(batch, 4, speeds)
	if err != nil {
		t.Fatal(err)
	}
	staying := 0
	for c := 0; c < 4; c++ {
		lo, hi := oldB[c][0], oldB[c][1]
		if newB[c][0] > lo {
			lo = newB[c][0]
		}
		if newB[c][1] < hi {
			hi = newB[c][1]
		}
		if hi > lo {
			staying += hi - lo
		}
	}
	var want int64
	for _, e := range n.Engines {
		want += int64(batch-staying) * 4 * int64(e.P.In) * int64(e.P.H) * int64(e.P.W)
	}
	if moved != want {
		t.Fatalf("moved bytes %d, want %d", moved, want)
	}
	if moved <= 0 {
		t.Fatal("straggler rebalance moved nothing")
	}
	if got := reg.Counter("mpt.rebalance_moved_bytes").Load(); got != moved {
		t.Fatalf("counter mpt.rebalance_moved_bytes = %d, want %d", got, moved)
	}
	if reg.Counter("mpt.rebalances").Load() != 1 {
		t.Fatal("mpt.rebalances not incremented")
	}
	if reg.Gauge("mpt.imbalance_permille").Load() <= 0 {
		t.Fatal("imbalance gauge not set by unequal rebalance")
	}

	// Rebalancing to the same speeds again moves nothing.
	again, err := n.Rebalance(batch, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if again != 0 {
		t.Fatalf("idempotent rebalance moved %d bytes", again)
	}

	// Engines now shard load-aware.
	bounds, err := n.Engines[0].shardBounds(batch)
	if err != nil {
		t.Fatal(err)
	}
	wantBounds, _ := shardBoundsFor(batch, 4, speeds)
	if !reflect.DeepEqual(bounds, wantBounds) {
		t.Fatalf("engine bounds %v, want %v", bounds, wantBounds)
	}
}

func TestRebalanceValidation(t *testing.T) {
	n := recoveryNet(t, 4, 4, 43)
	if _, err := n.Rebalance(16, []float64{1, 1}); err == nil {
		t.Fatal("2 speeds for Nc=4 accepted")
	}
	if _, err := n.Rebalance(2, []float64{1, 1, 1, 1}); err == nil {
		t.Fatal("batch 2 < Nc=4 accepted")
	}
}

// TestReconfigureDropsStaleSpeeds: shrinking the grid invalidates a speed
// profile sized for the old cluster count.
func TestReconfigureDropsStaleSpeeds(t *testing.T) {
	n := recoveryNet(t, 4, 4, 47)
	if _, err := n.Rebalance(16, []float64{1, 0.5, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Reconfigure(4, 3); err != nil {
		t.Fatal(err)
	}
	if n.Cfg.Speeds != nil {
		t.Fatal("net kept a 4-cluster speed profile on a 3-cluster grid")
	}
	for i, e := range n.Engines {
		if e.Cfg.Speeds != nil {
			t.Fatalf("engine %d kept stale speeds", i)
		}
	}
}

// TestDegradedRecoveryLossTrajectory is the heterogeneous-fleet recovery
// equivalence proof: train on a straggler fleet with load-aware sharding,
// checkpoint, lose a module, re-solve the survivor grid, rebalance onto
// the survivor speeds, restore — and the post-recovery loss trajectory
// must be bit-exact against a fault-free network wired with the same grid
// and speeds from the start, loaded from the same checkpoint.
func TestDegradedRecoveryLossTrajectory(t *testing.T) {
	const (
		batch = 24
		lr    = 1e-4
		steps = 3
	)
	rng := tensor.NewRNG(53)
	x := tensor.New(batch, 3, 8, 8)
	rng.FillNormal(x, 0, 1)
	target := tensor.New(batch, 2, 8, 8)
	rng.FillNormal(target, 0, 1)

	// Heterogeneous training at (4,4): cluster 1 runs at half speed, so
	// the batch shards load-aware from the start.
	params := []conv.Params{
		{In: 3, Out: 4, K: 3, Pad: 1, H: 8, W: 8},
		{In: 4, Out: 2, K: 3, Pad: 1, H: 8, W: 8},
	}
	cfg := Config{Ng: 4, Nc: 4, Speeds: []float64{1, 0.5, 1, 1}}
	n, err := NewNet(winograd.F2x2_3x3, params, cfg, tensor.NewRNG(59))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		if _, err := n.TrainStepMSE(x, target, lr); err != nil {
			t.Fatal(err)
		}
	}
	cp := n.Checkpoint()

	// A module dies: 16 → 15 workers, survivor grid (4,3). The straggler
	// survives, so the 3 remaining clusters run at {1, 0.5, 1}.
	survivorSpeeds := []float64{1, 0.5, 1}
	if err := n.Reconfigure(4, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Rebalance(batch, survivorSpeeds); err != nil {
		t.Fatal(err)
	}
	if err := n.Restore(cp); err != nil {
		t.Fatal(err)
	}
	recovered := make([]float64, steps)
	for i := range recovered {
		loss, err := n.TrainStepMSE(x, target, lr)
		if err != nil {
			t.Fatal(err)
		}
		recovered[i] = loss
	}

	// Fault-free reference: wired at (4,3) with the survivor speeds from
	// the start, loaded from the same checkpoint. Bit-exact agreement.
	refCfg := Config{Ng: 4, Nc: 3, Speeds: survivorSpeeds}
	ref, err := NewNet(winograd.F2x2_3x3, params, refCfg, tensor.NewRNG(999))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Restore(cp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		loss, err := ref.TrainStepMSE(x, target, lr)
		if err != nil {
			t.Fatal(err)
		}
		if loss != recovered[i] {
			t.Fatalf("step %d: recovered loss %v != fault-free loss %v", i, recovered[i], loss)
		}
	}
	if recovered[steps-1] >= recovered[0] {
		t.Fatalf("loss not decreasing after rebalanced recovery: %v", recovered)
	}
}
