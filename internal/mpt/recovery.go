package mpt

import (
	"fmt"

	"mptwino/internal/comm"
	"mptwino/internal/winograd"
)

// Checkpoint captures the engine's full Winograd-domain weight state. The
// weights are the only training state that must survive a module failure:
// activations and gradients are per-iteration, and the forward caches are
// rebuilt by the next Fprop. The copy is deep, so later training does not
// disturb it.
func (e *Engine) Checkpoint() *winograd.Weights { return e.W.Clone() }

// Restore replaces the engine's weights with a checkpoint and invalidates
// the forward caches (an UpdateGrad before the next Fprop errors instead
// of silently mixing pre- and post-restore state).
func (e *Engine) Restore(w *winograd.Weights) {
	e.W = w.Clone()
	e.lastX = nil
}

// Reconfigure re-wires the engine to a new (Ng, Nc) grid — the recovery
// step after module failures shrink the worker pool. The full Winograd
// weight set is re-sharded by rebuilding each group's element ownership,
// and the batch re-shards automatically on the next pass (shardBounds
// derives from Cfg.Nc). Weights are untouched, so training resumed from a
// checkpoint is numerically identical to a fault-free run at the new grid.
func (e *Engine) Reconfigure(ng, nc int) error {
	if ng < 1 || nc < 1 {
		return fmt.Errorf("mpt: Ng=%d Nc=%d must be >= 1", ng, nc)
	}
	if t2 := e.Tr.T * e.Tr.T; ng > t2 {
		return fmt.Errorf("mpt: %d groups exceed %d tile elements", ng, t2)
	}
	e.Cfg.Ng, e.Cfg.Nc = ng, nc
	if len(e.Cfg.Speeds) != nc {
		// A speed profile sized for the old grid cannot address the new
		// clusters; drop it (Rebalance installs the survivor speeds).
		e.Cfg.Speeds = nil
	}
	e.groupEls = e.groupEls[:0]
	for g := 0; g < ng; g++ {
		e.groupEls = append(e.groupEls, winograd.GroupElements(e.Tr.T, ng, g))
	}
	e.lastX = nil
	return nil
}

// NetCheckpoint is a deep copy of every layer's Winograd-domain weights.
type NetCheckpoint struct {
	weights []*winograd.Weights
}

// Checkpoint snapshots the whole network's weights.
func (n *Net) Checkpoint() *NetCheckpoint {
	cp := &NetCheckpoint{}
	for _, e := range n.Engines {
		cp.weights = append(cp.weights, e.Checkpoint())
	}
	n.tel.checkpoints.Inc()
	n.event("checkpoint", map[string]any{"layers": len(n.Engines)})
	return cp
}

// Restore loads a checkpoint taken from a network of the same shape and
// drops any in-flight forward state.
func (n *Net) Restore(cp *NetCheckpoint) error {
	if len(cp.weights) != len(n.Engines) {
		return fmt.Errorf("mpt: checkpoint has %d layers, network has %d",
			len(cp.weights), len(n.Engines))
	}
	for i, e := range n.Engines {
		e.Restore(cp.weights[i])
	}
	n.masks = n.masks[:0]
	n.tel.restores.Inc()
	n.event("restore", map[string]any{"layers": len(n.Engines)})
	return nil
}

// Reconfigure re-wires every layer to a new (Ng, Nc) grid. On failure the
// network is left unchanged (the first engine is validated before any is
// mutated; all engines share one transform and config, so one check
// covers all).
func (n *Net) Reconfigure(ng, nc int) error {
	if len(n.Engines) == 0 {
		return fmt.Errorf("mpt: empty network")
	}
	for _, e := range n.Engines {
		if err := e.Reconfigure(ng, nc); err != nil {
			return err
		}
	}
	n.Cfg.Ng, n.Cfg.Nc = ng, nc
	if len(n.Cfg.Speeds) != nc {
		n.Cfg.Speeds = nil
	}
	n.masks = n.masks[:0]
	n.tel.reconfigs.Inc()
	n.event("reconfigure", map[string]any{"ng": ng, "nc": nc})
	return nil
}

// Rebalance installs a per-cluster speed profile on every layer and
// re-shards the next pass's batch proportionally (nil speeds revert to the
// equal B/Nc split). It returns the migration bill: the activation bytes
// that change cluster ownership under the new bounds, summed over layers —
// each image outside the overlap of its old and new owning interval must
// stream its per-layer input activations to the new owner. The recovery
// sequence after module failures on a heterogeneous fleet is therefore
// Reconfigure (survivor grid) → Rebalance (survivor speeds) → Restore
// (checkpoint); because shard bounds are a pure function of (grid,
// speeds), a rebalanced network trains bit-identically to one wired with
// the same speeds from the start.
func (n *Net) Rebalance(batch int, speeds []float64) (int64, error) {
	if len(n.Engines) == 0 {
		return 0, fmt.Errorf("mpt: empty network")
	}
	nc := n.Cfg.Nc
	oldBounds, err := shardBoundsFor(batch, nc, n.Cfg.Speeds)
	if err != nil {
		return 0, err
	}
	newBounds, err := shardBoundsFor(batch, nc, speeds)
	if err != nil {
		return 0, err
	}
	// Images whose old and new owning intervals overlap stay put; the
	// rest migrate.
	staying := 0
	for c := 0; c < nc; c++ {
		lo, hi := oldBounds[c][0], newBounds[c][0]
		if hi > lo {
			lo = hi
		}
		hi = oldBounds[c][1]
		if newBounds[c][1] < hi {
			hi = newBounds[c][1]
		}
		if hi > lo {
			staying += hi - lo
		}
	}
	moved := int64(batch - staying)

	var movedBytes int64
	for _, e := range n.Engines {
		perImage := 4 * int64(e.P.In) * int64(e.P.H) * int64(e.P.W)
		movedBytes += moved * perImage
		if speeds == nil {
			e.Cfg.Speeds = nil
		} else {
			e.Cfg.Speeds = append([]float64(nil), speeds...)
		}
		e.lastX = nil
	}
	if speeds == nil {
		n.Cfg.Speeds = nil
	} else {
		n.Cfg.Speeds = append([]float64(nil), speeds...)
	}
	n.masks = n.masks[:0]

	shares := make([]int, nc)
	for c, b := range newBounds {
		shares[c] = b[1] - b[0]
	}
	n.tel.rebalances.Inc()
	n.tel.rebalanceMoved.Add(movedBytes)
	n.tel.imbalance.Set(comm.ImbalancePermille(shares))
	n.event("rebalance", map[string]any{
		"moved_images": moved, "moved_bytes": movedBytes,
		"imbalance_permille": comm.ImbalancePermille(shares),
	})
	return movedBytes, nil
}
