// Package mpt is a functional execution engine for multi-dimensional
// parallel training: it really runs the paper's distributed computation —
// batch shards across Nc clusters, tile elements across Ng groups, tile
// scatter/gather inside clusters, and a chunked ring all-reduce of each
// group's weight-gradient shard across clusters (built on the ndp Reduce
// blocks) — and produces results numerically equal to single-worker
// training. It is the executable specification the timing simulator
// (internal/sim) abstracts, and it measures real traffic byte counts that
// validate the closed-form model in internal/comm.
package mpt

import (
	"fmt"

	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/ndp"
	"mptwino/internal/quant"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// Config selects the worker organization and the Section V optimizations.
type Config struct {
	Ng, Nc int

	// TileM selects the Winograd tile output size m of F(m×m,r×r) when a
	// transform is resolved per layer (NewNetConfigs): 0 keeps the
	// group-count rule of winograd.ForKernel, matching all pre-planner
	// behavior bit-for-bit; an explicit m runs F(m×m) regardless of Ng —
	// the planner's tile-size axis carried into the numeric engine.
	TileM int

	// Predict enables activation prediction during FpropReLU's tile
	// gathering: tiles provably non-activated skip their payload.
	Predict bool
	// PredictRegions/PredictBits configure the non-uniform quantizer
	// (defaults 4 regions, 6 bits when zero).
	PredictRegions, PredictBits int
	// ZeroSkip counts (and skips) exactly-zero values during tile
	// scattering, the §V-B scatter optimization.
	ZeroSkip bool

	// Speeds, when non-empty, holds each cluster's relative effective
	// speed (compute or link scale, whichever binds — see
	// comm.ClusterSpeeds) and switches the batch shard from the equal
	// B/Nc split to largest-remainder apportionment proportional to
	// speed (comm.LoadAwareShards). len(Speeds) must equal Nc. Empty
	// keeps the exact historical equal-split bounds, so homogeneous
	// fleets are bit-identical to pre-profile builds. Identical
	// (grid, Speeds) pairs always produce identical bounds, which is
	// what makes post-rebalance recovery trajectories bit-exact.
	Speeds []float64
}

// Traffic tallies real per-direction bytes moved by the engine, per
// worker-visible transfer (quantized prediction pre-sends included).
type Traffic struct {
	ScatterBytes    int64 // Winograd-domain tiles scattered across groups
	ScatterRawBytes int64 // scatter volume before zero-skip compression
	GatherBytes     int64 // Winograd-domain tiles gathered back
	PredictBytes    int64 // quantized pre-send payloads
	CollectiveBytes int64 // ring all-reduce traffic (all workers, one way)
	SkippedTiles    int64 // tiles whose gather was skipped by prediction
	TotalTiles      int64 // tiles considered for gathering
}

// Engine is one MPT-organized layer instance.
type Engine struct {
	Tr  *winograd.Transform
	P   conv.Params
	Cfg Config

	tiling *winograd.Tiling
	// W is the full Winograd-domain weight set; group g only ever touches
	// the element matrices in groupEls[g], preserving the paper's
	// invariant that each weight part stays within its group.
	W        *winograd.Weights
	groupEls [][]int

	quantizer *quant.Quantizer
	predictor *quant.Predictor

	Traffic Traffic

	// per-cluster forward caches for updateGrad
	lastX []*winograd.Domain

	// sc holds the per-worker tile/packing scratch the Into kernels use;
	// built lazily so engines constructed under one worker setting size
	// their slots for it.
	sc *winograd.Scratch
}

func (e *Engine) scratch() *winograd.Scratch {
	if e.sc == nil {
		e.sc = winograd.NewScratch()
	}
	return e.sc
}

// NewEngine builds an MPT engine. Ng must not exceed T².
func NewEngine(tr *winograd.Transform, p conv.Params, cfg Config, rng *tensor.RNG) (*Engine, error) {
	if cfg.Ng < 1 || cfg.Nc < 1 {
		return nil, fmt.Errorf("mpt: Ng=%d Nc=%d must be >= 1", cfg.Ng, cfg.Nc)
	}
	t2 := tr.T * tr.T
	if cfg.Ng > t2 {
		return nil, fmt.Errorf("mpt: %d groups exceed %d tile elements", cfg.Ng, t2)
	}
	if len(cfg.Speeds) > 0 && len(cfg.Speeds) != cfg.Nc {
		return nil, fmt.Errorf("mpt: %d cluster speeds for Nc=%d", len(cfg.Speeds), cfg.Nc)
	}
	tl, err := winograd.NewTiling(tr, p)
	if err != nil {
		return nil, err
	}
	ws := tensor.New(p.Out, p.In, p.K, p.K)
	rng.FillHe(ws, p.In*p.K*p.K)
	e := &Engine{
		Tr:     tr,
		P:      p,
		Cfg:    cfg,
		tiling: tl,
		W:      winograd.TransformWeights(tr, ws),
	}
	for g := 0; g < cfg.Ng; g++ {
		e.groupEls = append(e.groupEls, winograd.GroupElements(tr.T, cfg.Ng, g))
	}
	if cfg.Predict {
		regions, bits := cfg.PredictRegions, cfg.PredictBits
		if regions == 0 {
			regions = 4
		}
		if bits == 0 {
			bits = 6
		}
		// Sigma is calibrated on first use (per-layer profiling in the
		// paper); start with 1 and recalibrate in FpropReLU.
		e.quantizer = quant.MustQuantizer(regions, bits, 1)
		e.predictor = quant.NewPredictor(tr, e.quantizer)
	}
	return e, nil
}

// SetWeights replaces the engine's Winograd-domain weights (e.g. to mirror
// a reference winograd.Layer for equivalence tests).
func (e *Engine) SetWeights(w *winograd.Weights) { e.W = w.Clone() }

// Weights returns the current (full) Winograd-domain weights.
func (e *Engine) Weights() *winograd.Weights { return e.W }

// shardBounds splits the batch into Nc cluster shards: equal B/Nc splits
// when Cfg.Speeds is empty, speed-proportional largest-remainder splits
// otherwise.
func (e *Engine) shardBounds(batch int) ([][2]int, error) {
	return shardBoundsFor(batch, e.Cfg.Nc, e.Cfg.Speeds)
}

// shardBoundsFor computes the [lo,hi) image ranges the Nc clusters own.
// With no speeds it reproduces the historical c*batch/Nc formula exactly
// (bit-compatible with pre-profile builds); with speeds it accumulates
// comm.LoadAwareShards. Both paths are pure functions of (batch, nc,
// speeds), so equal inputs always shard — and therefore accumulate
// floating-point reductions — identically.
func shardBoundsFor(batch, nc int, speeds []float64) ([][2]int, error) {
	if batch < nc {
		return nil, fmt.Errorf("mpt: batch %d smaller than Nc=%d", batch, nc)
	}
	out := make([][2]int, nc)
	if len(speeds) > 0 {
		if len(speeds) != nc {
			return nil, fmt.Errorf("mpt: %d cluster speeds for Nc=%d", len(speeds), nc)
		}
		lo := 0
		for c, share := range comm.LoadAwareShards(batch, speeds) {
			out[c] = [2]int{lo, lo + share}
			lo += share
		}
		return out, nil
	}
	for c := 0; c < nc; c++ {
		out[c] = [2]int{c * batch / nc, (c + 1) * batch / nc}
	}
	return out, nil
}

// shard copies images [lo,hi) into a fresh tensor.
func shard(x *tensor.Tensor, lo, hi int) *tensor.Tensor {
	out := tensor.New(hi-lo, x.C, x.H, x.W)
	stride := x.C * x.H * x.W
	copy(out.Data, x.Data[lo*stride:hi*stride])
	return out
}

// countScatter charges tile-scattering traffic for one cluster's Domain:
// each of the Ng workers keeps its own 1/Ng of the rows' elements and
// sends the rest, so (Ng−1)/Ng of the domain crosses the cluster fabric.
// With zero-skipping only non-zero values pay; ScatterRawBytes keeps the
// uncompressed volume so the compression ratio stays observable.
func (e *Engine) countScatter(d *winograd.Domain) {
	if e.Cfg.Ng <= 1 {
		return
	}
	var raw int64
	for _, el := range d.El {
		raw += int64(len(el.Data))
	}
	values := raw
	if e.Cfg.ZeroSkip {
		values = 0
		for _, el := range d.El {
			for _, v := range el.Data {
				if v != 0 {
					values++
				}
			}
		}
	}
	e.Traffic.ScatterBytes += 4 * values * int64(e.Cfg.Ng-1) / int64(e.Cfg.Ng)
	e.Traffic.ScatterRawBytes += 4 * raw * int64(e.Cfg.Ng-1) / int64(e.Cfg.Ng)
}

// countGather charges tile-gathering traffic for one cluster's output
// Domain, honoring prediction skips (skipped tiles pay only the quantized
// pre-send).
func (e *Engine) countGather(d *winograd.Domain, skipped map[[2]int]bool) {
	if e.Cfg.Ng <= 1 {
		return
	}
	t2 := int64(len(d.El))
	rows := int64(d.Rows())
	cols := int64(d.C)
	frac := int64(e.Cfg.Ng-1) * 4 / int64(e.Cfg.Ng) // bytes per value crossing
	if e.Cfg.Predict {
		bits := int64(e.quantizer.CodeBits())
		e.Traffic.PredictBytes += rows * cols * t2 * bits / 8 * int64(e.Cfg.Ng-1) / int64(e.Cfg.Ng)
	}
	var sent int64
	for r := int64(0); r < rows; r++ {
		for c := int64(0); c < cols; c++ {
			if skipped != nil && skipped[[2]int{int(r), int(c)}] {
				continue
			}
			sent += t2
		}
	}
	e.Traffic.GatherBytes += sent * frac
}

// fpropDomain runs the distributed forward dot products for one cluster
// shard: every group computes its own elements directly into the cluster's
// union output Domain (the element selection of MulForwardInto keeps each
// group on its own disjoint element set, exactly as Ng separate workers
// writing their own partitions would — no per-group staging copies).
func (e *Engine) fpropDomain(xd *winograd.Domain) *winograd.Domain {
	sc := e.scratch()
	yd := winograd.NewDomain(e.tiling, xd.B, e.W.Out)
	for g := 0; g < e.Cfg.Ng; g++ {
		winograd.MulForwardInto(yd, xd, e.W, e.groupEls[g], sc)
	}
	return yd
}

// Fprop runs the exact distributed forward pass and returns the spatial
// output (no activation), concatenated over cluster shards in batch order.
func (e *Engine) Fprop(x *tensor.Tensor) (*tensor.Tensor, error) {
	bounds, err := e.shardBounds(x.N)
	if err != nil {
		return nil, err
	}
	out := tensor.New(x.N, e.P.Out, e.P.OutH(), e.P.OutW())
	e.lastX = e.lastX[:0]
	for _, b := range bounds {
		xs := shard(x, b[0], b[1])
		xd := e.tiling.TransformInput(xs)
		e.countScatter(xd)
		e.lastX = append(e.lastX, xd)
		yd := e.fpropDomain(xd)
		e.countGather(yd, nil)
		ys := e.tiling.InverseOutput(yd)
		copyShardOut(out, ys, b[0])
	}
	return out, nil
}

// FpropReLU runs the forward pass with ReLU applied, using activation
// prediction (when enabled) to skip gathering tiles that are provably
// all-non-activated. The output is bit-exact with ReLU(Fprop(x)) because
// the predictor never produces false negatives.
func (e *Engine) FpropReLU(x *tensor.Tensor) (*tensor.Tensor, error) {
	bounds, err := e.shardBounds(x.N)
	if err != nil {
		return nil, err
	}
	out := tensor.New(x.N, e.P.Out, e.P.OutH(), e.P.OutW())
	e.lastX = e.lastX[:0]
	for _, b := range bounds {
		xs := shard(x, b[0], b[1])
		xd := e.tiling.TransformInput(xs)
		e.countScatter(xd)
		e.lastX = append(e.lastX, xd)
		yd := e.fpropDomain(xd)

		var skipped map[[2]int]bool
		if e.Cfg.Predict {
			e.calibrate(yd)
			skipped = e.predictSkips(yd)
		}
		e.countGather(yd, skipped)

		ys := e.tiling.InverseOutput(yd)
		// ReLU; skipped tiles are provably non-activated so their zeros
		// are already correct (InverseOutput computed them, but a real
		// system would not have gathered them — the traffic counter above
		// reflects that).
		for i, v := range ys.Data {
			if v < 0 {
				ys.Data[i] = 0
			}
		}
		copyShardOut(out, ys, b[0])
	}
	return out, nil
}

// calibrate re-derives the quantizer step from the observed Winograd-
// domain distribution (the paper profiles per layer and precomputes Δ).
func (e *Engine) calibrate(yd *winograd.Domain) {
	var sample []float32
	for _, el := range yd.El {
		sample = append(sample, el.Data...)
	}
	sigma := quant.EstimateSigma(sample)
	e.quantizer = quant.MustQuantizer(e.quantizer.Regions, e.quantizer.Bits, sigma)
	e.predictor = quant.NewPredictor(e.Tr, e.quantizer)
}

// predictSkips returns the (row, channel) tile positions whose gathering
// is skipped, tallying prediction statistics. When each group holds whole
// tile lines, the tighter 1-D predictor runs (source-side first inverse
// stage); a tile is skipped when every line is provably non-activated.
func (e *Engine) predictSkips(yd *winograd.Domain) map[[2]int]bool {
	skipped := make(map[[2]int]bool)
	tile := tensor.NewMat(e.Tr.T, e.Tr.T)
	rows := yd.Rows()
	oneD := winograd.HoldsWholeLines(e.Tr.T, e.Cfg.Ng)
	for r := 0; r < rows; r++ {
		for c := 0; c < yd.C; c++ {
			for el := range yd.El {
				tile.Data[el] = yd.El[el].At(r, c)
			}
			e.Traffic.TotalTiles++
			skip := false
			if oneD {
				skip = true
				for _, live := range e.predictor.Predict1D(tile).NonActivatedRows() {
					if !live {
						skip = false
						break
					}
				}
			} else {
				skip = e.predictor.Predict2D(tile).NonActivated()
			}
			if skip {
				skipped[[2]int{r, c}] = true
				e.Traffic.SkippedTiles++
			}
		}
	}
	return skipped
}

// Bprop runs the distributed backward pass, returning dx. The output
// gradient is scattered (dY elements to groups), each group multiplies by
// its own Wᵀ, and dX is gathered for the inverse transform.
func (e *Engine) Bprop(dy *tensor.Tensor) (*tensor.Tensor, error) {
	bounds, err := e.shardBounds(dy.N)
	if err != nil {
		return nil, err
	}
	dx := tensor.New(dy.N, e.P.In, e.P.H, e.P.W)
	for _, b := range bounds {
		dys := shard(dy, b[0], b[1])
		dyd := e.tiling.TransformOutputGrad(dys)
		e.countScatter(dyd)
		dxd := winograd.NewDomain(e.tiling, dyd.B, e.W.In)
		for g := 0; g < e.Cfg.Ng; g++ {
			winograd.MulBackwardInto(dxd, dyd, e.W, e.groupEls[g], e.scratch())
		}
		e.countGather(dxd, nil)
		dxs := e.tiling.InverseInputGrad(dxd)
		copyShardIn(dx, dxs, b[0])
	}
	return dx, nil
}

func copyShardOut(dst, src *tensor.Tensor, atImage int) {
	stride := dst.C * dst.H * dst.W
	copy(dst.Data[atImage*stride:], src.Data)
}

func copyShardIn(dst, src *tensor.Tensor, atImage int) {
	stride := dst.C * dst.H * dst.W
	copy(dst.Data[atImage*stride:], src.Data)
}

// UpdateGrad computes the Winograd-domain weight gradient distributed
// across the 2-D worker grid: each cluster produces a partial dW for every
// group's elements from its own batch shard; each group then ring-reduces
// its shard across the Nc clusters using chunked, pipelined transfers
// through ndp.ReduceBlock (Fig. 13(c)), and the reduced result is
// broadcast back. Fprop (or FpropReLU) must run first.
func (e *Engine) UpdateGrad(dy *tensor.Tensor) (*winograd.Weights, error) {
	if len(e.lastX) != e.Cfg.Nc {
		return nil, fmt.Errorf("mpt: UpdateGrad before Fprop (have %d cached shards, want %d)",
			len(e.lastX), e.Cfg.Nc)
	}
	bounds, err := e.shardBounds(dy.N)
	if err != nil {
		return nil, err
	}
	// Per-cluster partial gradients.
	partials := make([]*winograd.Weights, e.Cfg.Nc)
	for c, b := range bounds {
		dys := shard(dy, b[0], b[1])
		dyd := e.tiling.TransformOutputGrad(dys)
		dw := winograd.NewWeights(e.Tr, e.P.In, e.P.Out)
		for g := 0; g < e.Cfg.Ng; g++ {
			winograd.MulGradInto(dw, e.lastX[c], dyd, e.groupEls[g], e.scratch())
		}
		partials[c] = dw
	}
	// Ring all-reduce per group over its element shard.
	out := winograd.NewWeights(e.Tr, e.P.In, e.P.Out)
	for g := 0; g < e.Cfg.Ng; g++ {
		if err := e.ringAllReduce(partials, e.groupEls[g], out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ringAllReduce reduces the named elements of the per-cluster partials
// into out using a chunked ring schedule: chunk k starts at cluster k,
// accumulates through Nc−1 hops (each hop an ndp.ReduceBlock accept), and
// is then broadcast Nc−1 hops. Traffic is charged per hop.
func (e *Engine) ringAllReduce(partials []*winograd.Weights, els []int, out *winograd.Weights) error {
	nc := e.Cfg.Nc
	// Flatten the group's shard per cluster.
	flat := make([][]float32, nc)
	var shardLen int
	for c := 0; c < nc; c++ {
		for _, el := range els {
			flat[c] = append(flat[c], partials[c].El[el].Data...)
		}
		shardLen = len(flat[c])
	}
	if nc == 1 {
		e.unflatten(out, els, flat[0])
		return nil
	}
	// Chunk boundaries (Nc near-equal chunks).
	chunkLo := func(k int) int { return k * shardLen / nc }
	chunkHi := func(k int) int { return (k + 1) * shardLen / nc }

	// Reduce-scatter: after step s, cluster (k+s+1) mod nc holds the
	// running sum of chunk k over s+2 contributors.
	reduced := make([][]float32, nc) // chunk k's running value
	for k := 0; k < nc; k++ {
		reduced[k] = append([]float32(nil), flat[k][chunkLo(k):chunkHi(k)]...)
	}
	for s := 0; s < nc-1; s++ {
		for k := 0; k < nc; k++ {
			dst := (k + s + 1) % nc
			rb := ndp.NewReduceBlock(k, 2)
			if _, err := rb.Accept(ndp.Chunk{MsgID: k, Index: s, Data: reduced[k]}); err != nil {
				return err
			}
			local := flat[dst][chunkLo(k):chunkHi(k)]
			sum, err := rb.Accept(ndp.Chunk{MsgID: k, Index: s, Data: local})
			if err != nil {
				return err
			}
			if sum == nil {
				return fmt.Errorf("mpt: reduce block did not release chunk %d at step %d", k, s)
			}
			reduced[k] = sum
			e.Traffic.CollectiveBytes += int64(4 * len(sum))
		}
	}
	// All-gather (broadcast) costs the same traffic again.
	e.Traffic.CollectiveBytes += int64(4*shardLen) * int64(nc-1) / int64(nc) * int64(nc)

	full := make([]float32, shardLen)
	for k := 0; k < nc; k++ {
		copy(full[chunkLo(k):chunkHi(k)], reduced[k])
	}
	e.unflatten(out, els, full)
	return nil
}

func (e *Engine) unflatten(w *winograd.Weights, els []int, flat []float32) {
	pos := 0
	for _, el := range els {
		n := len(w.El[el].Data)
		copy(w.El[el].Data, flat[pos:pos+n])
		pos += n
	}
}

// Step applies the SGD update to the (group-sharded) weights.
func (e *Engine) Step(lr float32, dw *winograd.Weights) {
	e.W.AXPY(-lr, dw)
}

// ResetTraffic clears the counters.
func (e *Engine) ResetTraffic() { e.Traffic = Traffic{} }
