package mpt

import (
	"mptwino/internal/telemetry"
)

// Telemetry for the functional MPT engine. The engine has no cycle clock —
// it is the executable specification the timing simulator prices — so its
// trace timeline uses the deterministic logical clock every replay shares:
// the training-step index. Everything here runs on the engine's sequential
// driver path (the parallel fan-outs live below, inside the winograd
// kernels), so emission order is schedule-independent by construction.

// netTel holds a Net's resolved telemetry handles (zero value = disabled).
type netTel struct {
	scatter     *telemetry.Counter
	scatterRaw  *telemetry.Counter
	gather      *telemetry.Counter
	predict     *telemetry.Counter
	collective  *telemetry.Counter
	skipped     *telemetry.Counter
	total       *telemetry.Counter
	steps       *telemetry.Counter
	checkpoints *telemetry.Counter
	restores    *telemetry.Counter
	reconfigs   *telemetry.Counter

	rebalances     *telemetry.Counter
	rebalanceMoved *telemetry.Counter
	imbalance      *telemetry.Gauge

	tracer *telemetry.Tracer

	step int64   // logical clock: completed training steps
	last Traffic // traffic totals at the previous step boundary
}

// Instrument attaches a metrics registry and/or tracer to the network.
// Pass nil for either to leave it disabled.
//
// Counters: mpt.scatter_bytes / mpt.scatter_raw_bytes (their ratio is the
// zero-skip compression ratio), mpt.gather_bytes, mpt.predict_bytes,
// mpt.collective_bytes (ring reduce+broadcast volume), mpt.skipped_tiles /
// mpt.total_tiles (the activation-prediction gather-skip rate), mpt.steps,
// mpt.checkpoints, mpt.restores, mpt.reconfigs, mpt.rebalances, and
// mpt.rebalance_moved_bytes (activation bytes migrated by load-aware
// re-sharding). The mpt.imbalance_permille gauge holds the residual share
// spread after the latest Rebalance.
//
// Trace events land in the telemetry.PIDMPT lane with the training-step
// index as the timestamp: one counter-sample series ("traffic") of the
// per-step scatter/gather/predict/collective volumes, plus instant events
// for checkpoint, restore, and reconfigure.
func (n *Net) Instrument(reg *telemetry.Registry, tr *telemetry.Tracer) {
	n.tel = netTel{
		scatter:     reg.Counter("mpt.scatter_bytes"),
		scatterRaw:  reg.Counter("mpt.scatter_raw_bytes"),
		gather:      reg.Counter("mpt.gather_bytes"),
		predict:     reg.Counter("mpt.predict_bytes"),
		collective:  reg.Counter("mpt.collective_bytes"),
		skipped:     reg.Counter("mpt.skipped_tiles"),
		total:       reg.Counter("mpt.total_tiles"),
		steps:       reg.Counter("mpt.steps"),
		checkpoints: reg.Counter("mpt.checkpoints"),
		restores:    reg.Counter("mpt.restores"),
		reconfigs:   reg.Counter("mpt.reconfigs"),

		rebalances:     reg.Counter("mpt.rebalances"),
		rebalanceMoved: reg.Counter("mpt.rebalance_moved_bytes"),
		imbalance:      reg.Gauge("mpt.imbalance_permille"),

		tracer: tr,
	}
	tr.NameProcess(telemetry.PIDMPT, "mpt")
	tr.NameThread(telemetry.PIDMPT, 0, "training steps")
}

// recordStep closes one training step: it mirrors the step's traffic delta
// into the counters and emits the per-step volume sample.
func (n *Net) recordStep() {
	t := &n.tel
	if t.steps == nil && !t.tracer.Enabled() {
		return
	}
	cur := n.TotalTraffic()
	d := Traffic{
		ScatterBytes:    cur.ScatterBytes - t.last.ScatterBytes,
		ScatterRawBytes: cur.ScatterRawBytes - t.last.ScatterRawBytes,
		GatherBytes:     cur.GatherBytes - t.last.GatherBytes,
		PredictBytes:    cur.PredictBytes - t.last.PredictBytes,
		CollectiveBytes: cur.CollectiveBytes - t.last.CollectiveBytes,
		SkippedTiles:    cur.SkippedTiles - t.last.SkippedTiles,
		TotalTiles:      cur.TotalTiles - t.last.TotalTiles,
	}
	t.last = cur
	t.step++
	t.steps.Inc()
	t.scatter.Add(d.ScatterBytes)
	t.scatterRaw.Add(d.ScatterRawBytes)
	t.gather.Add(d.GatherBytes)
	t.predict.Add(d.PredictBytes)
	t.collective.Add(d.CollectiveBytes)
	t.skipped.Add(d.SkippedTiles)
	t.total.Add(d.TotalTiles)
	if t.tracer.Enabled() {
		// One span per training step on the logical clock, so the MPT lane
		// has a chainable timeline for traceview's critical path (the
		// functional engine has no cycle model — a step is one unit).
		t.tracer.Span(telemetry.PIDMPT, 0, "step", "mpt.step", t.step-1, 1, map[string]any{
			"tv": "phase", "step": t.step,
		})
		t.tracer.CounterSample(telemetry.PIDMPT, 0, "traffic", t.step, map[string]any{
			"scatter_bytes": d.ScatterBytes, "scatter_raw_bytes": d.ScatterRawBytes,
			"gather_bytes":  d.GatherBytes,
			"predict_bytes": d.PredictBytes, "collective_bytes": d.CollectiveBytes,
		})
		if d.TotalTiles > 0 {
			t.tracer.CounterSample(telemetry.PIDMPT, 0, "gather_skip", t.step, map[string]any{
				"skipped": d.SkippedTiles, "gathered": d.TotalTiles - d.SkippedTiles,
			})
		}
	}
}

// event emits one lifecycle instant (checkpoint/restore/reconfigure) at
// the current logical step.
func (n *Net) event(name string, args map[string]any) {
	if n.tel.tracer.Enabled() {
		if args == nil {
			args = map[string]any{}
		}
		args["tv"] = "overhead"
		n.tel.tracer.Instant(telemetry.PIDMPT, 0, name, "mpt.recovery", n.tel.step, args)
	}
}
