package mpt

import (
	"testing"

	"mptwino/internal/comm"
	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

// recoveryNet builds a two-layer test network at the given grid.
func recoveryNet(t *testing.T, ng, nc int, seed uint64) *Net {
	t.Helper()
	params := []conv.Params{
		{In: 3, Out: 4, K: 3, Pad: 1, H: 8, W: 8},
		{In: 4, Out: 2, K: 3, Pad: 1, H: 8, W: 8},
	}
	n, err := NewNet(winograd.F2x2_3x3, params, Config{Ng: ng, Nc: nc}, tensor.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	e, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 2}, tensor.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	cp := e.Checkpoint()

	// Perturb the weights, then restore.
	dw := e.Weights().Clone()
	e.Step(0.5, dw)
	if diff := maxWeightsDiff(e.Weights(), cp); diff == 0 {
		t.Fatal("Step did not change weights; perturbation is vacuous")
	}
	e.Restore(cp)
	if diff := maxWeightsDiff(e.Weights(), cp); diff != 0 {
		t.Fatalf("restored weights differ from checkpoint by %v", diff)
	}

	// The checkpoint must be insulated from later training.
	before := cp.Clone()
	e.Step(0.25, e.Weights().Clone())
	if diff := maxWeightsDiff(cp, before); diff != 0 {
		t.Fatalf("training mutated the checkpoint by %v", diff)
	}

	// Restore invalidates the forward cache: UpdateGrad must refuse.
	x := tensor.New(4, testP.In, testP.H, testP.W)
	tensor.NewRNG(13).FillNormal(x, 0, 1)
	if _, err := e.Fprop(x); err != nil {
		t.Fatal(err)
	}
	e.Restore(cp)
	dy := tensor.New(4, testP.Out, testP.OutH(), testP.OutW())
	if _, err := e.UpdateGrad(dy); err == nil {
		t.Fatal("UpdateGrad after Restore used a stale forward cache")
	}
}

func TestReconfigureValidation(t *testing.T) {
	e, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 4, Nc: 4}, tensor.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Reconfigure(0, 4); err == nil {
		t.Fatal("Ng=0 accepted")
	}
	if err := e.Reconfigure(17, 1); err == nil {
		t.Fatal("Ng > T^2 accepted")
	}
	if err := e.Reconfigure(4, 0); err == nil {
		t.Fatal("Nc=0 accepted")
	}
	if e.Cfg.Ng != 4 || e.Cfg.Nc != 4 {
		t.Fatalf("failed Reconfigure mutated config to (%d,%d)", e.Cfg.Ng, e.Cfg.Nc)
	}
}

// TestReconfigureExactness: a reconfigured engine computes the same forward
// pass as the single-worker reference — re-sharding moves ownership, not
// values.
func TestReconfigureExactness(t *testing.T) {
	e, err := NewEngine(winograd.F2x2_3x3, testP, Config{Ng: 16, Nc: 4}, tensor.NewRNG(19))
	if err != nil {
		t.Fatal(err)
	}
	ref := refLayer(t, e)
	x := tensor.New(8, testP.In, testP.H, testP.W)
	tensor.NewRNG(23).FillNormal(x, 0, 1)
	want := ref.Fprop(x)
	for _, grid := range [][2]int{{4, 3}, {1, 8}, {8, 2}} {
		if err := e.Reconfigure(grid[0], grid[1]); err != nil {
			t.Fatal(err)
		}
		got, err := e.Fprop(x)
		if err != nil {
			t.Fatal(err)
		}
		if d := got.MaxAbsDiff(want); d > 1e-5 {
			t.Fatalf("grid %v: fprop diverges %v after reconfigure", grid, d)
		}
	}
}

// TestFailureRecoveryLossTrajectory is the end-to-end recovery equivalence
// proof: train at (4,4), checkpoint, lose a module (16 → 15 workers),
// re-solve the grid over the survivor menu, restore, and keep training.
// The post-failure loss trajectory must be numerically identical to a
// fault-free network that trained at the surviving configuration from the
// same checkpoint.
func TestFailureRecoveryLossTrajectory(t *testing.T) {
	const (
		batch = 16
		lr    = 1e-4
		steps = 3
	)
	rng := tensor.NewRNG(29)
	x := tensor.New(batch, 3, 8, 8)
	rng.FillNormal(x, 0, 1)
	target := tensor.New(batch, 2, 8, 8)
	rng.FillNormal(target, 0, 1)

	// Healthy training at (4,4) = 16 workers.
	n := recoveryNet(t, 4, 4, 31)
	for i := 0; i < steps; i++ {
		if _, err := n.TrainStepMSE(x, target, lr); err != nil {
			t.Fatal(err)
		}
	}
	cp := n.Checkpoint()

	// One module fails: 15 survivors. The survivor menu offers (4,3) and
	// (1,15); take its leading (largest-Ng) entry.
	menu := comm.SurvivorConfigs(15)
	if len(menu) == 0 {
		t.Fatal("empty survivor menu for 15 workers")
	}
	grid := menu[0]
	if grid.Ng != 4 || grid.Nc != 3 {
		t.Fatalf("survivor menu for 15 leads with (%d,%d), want (4,3)", grid.Ng, grid.Nc)
	}
	if err := n.Reconfigure(grid.Ng, grid.Nc); err != nil {
		t.Fatal(err)
	}
	if err := n.Restore(cp); err != nil {
		t.Fatal(err)
	}
	recovered := make([]float64, steps)
	for i := range recovered {
		loss, err := n.TrainStepMSE(x, target, lr)
		if err != nil {
			t.Fatal(err)
		}
		recovered[i] = loss
	}

	// Fault-free reference: a fresh network wired at (4,3) from the start,
	// loaded from the same checkpoint.
	ref := recoveryNet(t, grid.Ng, grid.Nc, 999) // init weights are overwritten by Restore
	if err := ref.Restore(cp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		loss, err := ref.TrainStepMSE(x, target, lr)
		if err != nil {
			t.Fatal(err)
		}
		if loss != recovered[i] {
			t.Fatalf("step %d: recovered loss %v != fault-free loss %v", i, recovered[i], loss)
		}
	}
	if recovered[steps-1] >= recovered[0] {
		t.Fatalf("loss not decreasing after recovery: %v", recovered)
	}
}

func TestNetRestoreShapeMismatch(t *testing.T) {
	n := recoveryNet(t, 4, 4, 37)
	cp := n.Checkpoint()
	cp.weights = cp.weights[:1]
	if err := n.Restore(cp); err == nil {
		t.Fatal("short checkpoint accepted")
	}
}

// maxWeightsDiff returns the max abs elementwise difference of two weight
// sets.
func maxWeightsDiff(a, b *winograd.Weights) float64 {
	var worst float64
	for el := range a.El {
		for i, v := range a.El[el].Data {
			d := float64(v - b.El[el].Data[i])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
