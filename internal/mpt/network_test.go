package mpt

import (
	"math"
	"testing"

	"mptwino/internal/conv"
	"mptwino/internal/tensor"
	"mptwino/internal/winograd"
)

func chainParams() []conv.Params {
	return []conv.Params{
		{In: 2, Out: 4, K: 3, Pad: 1, H: 8, W: 8},
		{In: 4, Out: 4, K: 3, Pad: 1, H: 8, W: 8},
		{In: 4, Out: 2, K: 3, Pad: 1, H: 8, W: 8},
	}
}

func TestNewNetValidation(t *testing.T) {
	rng := tensor.NewRNG(1)
	if _, err := NewNet(winograd.F2x2_3x3, nil, Config{Ng: 1, Nc: 1}, rng); err == nil {
		t.Fatal("empty network accepted")
	}
	bad := chainParams()
	bad[1].In = 7 // breaks chaining
	if _, err := NewNet(winograd.F2x2_3x3, bad, Config{Ng: 1, Nc: 1}, rng); err == nil {
		t.Fatal("non-chaining layers accepted")
	}
}

// singleWorkerNet mirrors Net with plain winograd.Layer forward/backward,
// for equivalence checking.
type singleWorkerNet struct {
	layers []*winograd.Layer
	masks  [][]bool
}

func (s *singleWorkerNet) forward(x *tensor.Tensor) *tensor.Tensor {
	s.masks = s.masks[:0]
	for i, l := range s.layers {
		y := l.Fprop(x)
		if i < len(s.layers)-1 {
			mask := make([]bool, len(y.Data))
			for j, v := range y.Data {
				if v > 0 {
					mask[j] = true
				} else {
					y.Data[j] = 0
				}
			}
			s.masks = append(s.masks, mask)
		}
		x = y
	}
	return x
}

func (s *singleWorkerNet) backward(dy *tensor.Tensor, lr float32) {
	for i := len(s.layers) - 1; i >= 0; i-- {
		l := s.layers[i]
		dw := l.UpdateGradW(dy)
		if i > 0 {
			dx := l.Bprop(dy)
			for j, live := range s.masks[i-1] {
				if !live {
					dx.Data[j] = 0
				}
			}
			dy = dx
		}
		l.Step(lr, dw)
	}
}

// TestNetworkTrainingMatchesSingleWorker is the whole-network exactness
// proof: several SGD steps of a 3-layer CNN distributed over a (4,4) MPT
// grid keep every weight equal to the single-worker run.
func TestNetworkTrainingMatchesSingleWorker(t *testing.T) {
	params := chainParams()
	net, err := NewNet(winograd.F2x2_3x3, params, Config{Ng: 4, Nc: 4}, tensor.NewRNG(55))
	if err != nil {
		t.Fatal(err)
	}
	ref := &singleWorkerNet{}
	for i, p := range params {
		tl, err := winograd.NewTiling(winograd.F2x2_3x3, p)
		if err != nil {
			t.Fatal(err)
		}
		ref.layers = append(ref.layers, winograd.NewLayerFromParts(tl, net.Engines[i].Weights().Clone()))
	}

	rng := tensor.NewRNG(66)
	x := tensor.New(8, 2, 8, 8)
	target := tensor.New(8, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(target, 0, 1)

	for step := 0; step < 3; step++ {
		lossD, err := net.TrainStepMSE(x, target, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		y := ref.forward(x)
		dy := y.Clone()
		dy.AXPY(-1, target)
		var lossS float64
		for _, v := range dy.Data {
			lossS += 0.5 * float64(v) * float64(v)
		}
		ref.backward(dy, 0.005)
		if math.Abs(lossD-lossS) > 1e-3*(1+lossS) {
			t.Fatalf("step %d: losses diverged %v vs %v", step, lossD, lossS)
		}
	}
	for li := range params {
		we := net.Engines[li].Weights()
		ws := ref.layers[li].W
		for el := range ws.El {
			for i := range ws.El[el].Data {
				if math.Abs(float64(we.El[el].Data[i]-ws.El[el].Data[i])) > 1e-3 {
					t.Fatalf("layer %d element %d weight diverged", li, el)
				}
			}
		}
	}
}

func TestNetworkBackwardBeforeForwardErrors(t *testing.T) {
	net, err := NewNet(winograd.F2x2_3x3, chainParams(), Config{Ng: 2, Nc: 2}, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Backward(tensor.New(4, 2, 8, 8), 0.01); err == nil {
		t.Fatal("Backward before Forward accepted")
	}
}

func TestNetworkTargetShapeMismatch(t *testing.T) {
	net, err := NewNet(winograd.F2x2_3x3, chainParams(), Config{Ng: 2, Nc: 2}, tensor.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 2, 8, 8)
	badTarget := tensor.New(4, 3, 8, 8)
	if _, err := net.TrainStepMSE(x, badTarget, 0.01); err == nil {
		t.Fatal("target shape mismatch accepted")
	}
}

func TestNetworkTrafficAggregation(t *testing.T) {
	net, err := NewNet(winograd.F2x2_3x3, chainParams(), Config{Ng: 4, Nc: 2}, tensor.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(8)
	x := tensor.New(4, 2, 8, 8)
	target := tensor.New(4, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(target, 0, 1)
	if _, err := net.TrainStepMSE(x, target, 0.01); err != nil {
		t.Fatal(err)
	}
	tr := net.TotalTraffic()
	if tr.ScatterBytes <= 0 || tr.GatherBytes <= 0 || tr.CollectiveBytes <= 0 {
		t.Fatalf("traffic not aggregated: %+v", tr)
	}
	// Per-engine traffic must sum to the total.
	var sum int64
	for _, e := range net.Engines {
		sum += e.Traffic.ScatterBytes
	}
	if sum != tr.ScatterBytes {
		t.Fatal("scatter aggregation mismatch")
	}
}

// TestNetworkLossDecreases: the distributed network must actually learn.
func TestNetworkLossDecreases(t *testing.T) {
	net, err := NewNet(winograd.F2x2_3x3, chainParams(), Config{Ng: 4, Nc: 4}, tensor.NewRNG(99))
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(100)
	x := tensor.New(8, 2, 8, 8)
	target := tensor.New(8, 2, 8, 8)
	rng.FillNormal(x, 0, 1)
	rng.FillNormal(target, 0, 0.5)
	first, err := net.TrainStepMSE(x, target, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 10; i++ {
		last, err = net.TrainStepMSE(x, target, 0.01)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("distributed training did not descend: %v -> %v", first, last)
	}
}
