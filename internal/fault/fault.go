// Package fault models an imperfect memory-centric fabric: a deterministic,
// seed-driven fault plan that the flit-level simulator (internal/noc), the
// topology layer, and the system simulator (internal/sim) all consult. Three
// fault classes cover the failure modes of a 256-module HMC-like deployment:
//
//   - link degradation: a SerDes link loses bandwidth (lane failures) or
//     gains extra serialization cycles (retraining, voltage/thermal
//     throttling) over a cycle window;
//   - transient flit drops: a link corrupts flits with a per-flit
//     probability over a window (CRC failures), which the NoC recovers from
//     with timeout-and-retransmit;
//   - permanent module failures: a node dies at a scheduled cycle; the
//     fabric must reroute around it and the training system must re-cluster
//     onto the survivors.
//
// Determinism contract: every probabilistic decision is a pure function of
// (Seed, link endpoints, cycle, per-cycle flit index). The same plan and
// seed therefore produce byte-identical simulation results — the property
// the recovery tests and the paper-style reproducibility of the repo rely
// on. No global RNG state is consumed.
package fault

import (
	"fmt"
	"sort"
)

// LinkFault describes one directed-link impairment over a cycle window.
// Zero values are inert: Scale 0 is interpreted as "no bandwidth change"
// only when neither degradation field is set (see Active/Degrades).
type LinkFault struct {
	From, To int // directed endpoints (the builders add both directions)

	// Start and End bound the active cycle window [Start, End). End <= 0
	// means the fault never clears.
	Start, End int64

	// BandwidthScale multiplies the link's flits/cycle while active
	// (0 < scale < 1 degrades; exactly 0 means "field unset" — use DropProb
	// or a scheduled node failure to kill a link outright).
	BandwidthScale float64
	// ExtraSerDes adds per-hop serialization cycles while active.
	ExtraSerDes int
	// DropProb is the per-flit corruption probability while active.
	DropProb float64
}

// ActiveAt reports whether the fault window covers the cycle.
func (f LinkFault) ActiveAt(cycle int64) bool {
	return cycle >= f.Start && (f.End <= 0 || cycle < f.End)
}

// Matches reports whether the fault applies to the directed link a→b.
func (f LinkFault) Matches(a, b int) bool { return f.From == a && f.To == b }

// NodeFault is a permanent module failure: node Node is dead from cycle At
// onward. The NoC removes it from the fabric and reroutes; the system layer
// re-solves clustering for the survivors.
type NodeFault struct {
	Node int
	At   int64
}

// Plan is a complete deterministic fault schedule for one simulation run.
// Beyond the binary fault classes, Profiles carries the per-module
// capability model (profile.go): heterogeneous fleets where modules differ
// in compute throughput and link bandwidth without being faulty.
type Plan struct {
	Seed     uint64
	Links    []LinkFault
	Nodes    []NodeFault
	Profiles []ModuleProfile
}

// NewPlan returns an empty plan with the given seed.
func NewPlan(seed uint64) *Plan { return &Plan{Seed: seed} }

// DegradeLink adds a bidirectional bandwidth/latency degradation.
func (p *Plan) DegradeLink(a, b int, start, end int64, scale float64, extraSerDes int) *Plan {
	p.Links = append(p.Links,
		LinkFault{From: a, To: b, Start: start, End: end, BandwidthScale: scale, ExtraSerDes: extraSerDes},
		LinkFault{From: b, To: a, Start: start, End: end, BandwidthScale: scale, ExtraSerDes: extraSerDes})
	return p
}

// DropOnLink adds a bidirectional transient flit-drop fault.
func (p *Plan) DropOnLink(a, b int, start, end int64, prob float64) *Plan {
	p.Links = append(p.Links,
		LinkFault{From: a, To: b, Start: start, End: end, DropProb: prob},
		LinkFault{From: b, To: a, Start: start, End: end, DropProb: prob})
	return p
}

// FailNode schedules a permanent module failure.
func (p *Plan) FailNode(node int, at int64) *Plan {
	p.Nodes = append(p.Nodes, NodeFault{Node: node, At: at})
	return p
}

// Validate checks the plan against an n-node fabric. Beyond per-fault
// range checks, it rejects *contradictory overlaps*: two faults on the
// same directed link whose active windows intersect and which both set
// the same degradation class (both BandwidthScale, both ExtraSerDes, or
// both DropProb). Before this check, whichever fault a consumer consulted
// last silently decided the link's state; now the ambiguity is an error
// at plan-build time. The documented resolution order for the overlaps
// that remain legal (distinct classes) is in LinkState and DropFlit:
// bandwidth scales multiply, extra SerDes cycles add, and drop faults are
// evaluated in plan order against one shared per-flit draw.
func (p *Plan) Validate(n int) error {
	for i, lf := range p.Links {
		if lf.From < 0 || lf.From >= n || lf.To < 0 || lf.To >= n || lf.From == lf.To {
			return fmt.Errorf("fault: link fault %d has bad endpoints %d->%d (n=%d)", i, lf.From, lf.To, n)
		}
		if lf.DropProb < 0 || lf.DropProb > 1 {
			return fmt.Errorf("fault: link fault %d has drop probability %v outside [0,1]", i, lf.DropProb)
		}
		if lf.BandwidthScale < 0 || lf.BandwidthScale > 1 {
			return fmt.Errorf("fault: link fault %d has bandwidth scale %v outside [0,1]", i, lf.BandwidthScale)
		}
		if lf.ExtraSerDes < 0 {
			return fmt.Errorf("fault: link fault %d has negative extra SerDes %d", i, lf.ExtraSerDes)
		}
		if lf.End > 0 && lf.End <= lf.Start {
			return fmt.Errorf("fault: link fault %d has empty window [%d,%d)", i, lf.Start, lf.End)
		}
		for j := 0; j < i; j++ {
			prev := p.Links[j]
			if prev.From != lf.From || prev.To != lf.To {
				continue
			}
			if !windowsOverlap(prev.Start, prev.End, lf.Start, lf.End) {
				continue
			}
			switch {
			case prev.BandwidthScale > 0 && lf.BandwidthScale > 0:
				return fmt.Errorf("fault: link faults %d and %d both scale bandwidth on %d->%d over overlapping windows", j, i, lf.From, lf.To)
			case prev.ExtraSerDes > 0 && lf.ExtraSerDes > 0:
				return fmt.Errorf("fault: link faults %d and %d both add SerDes cycles on %d->%d over overlapping windows", j, i, lf.From, lf.To)
			case prev.DropProb > 0 && lf.DropProb > 0:
				return fmt.Errorf("fault: link faults %d and %d both drop flits on %d->%d over overlapping windows", j, i, lf.From, lf.To)
			}
		}
	}
	for i, nf := range p.Nodes {
		if nf.Node < 0 || nf.Node >= n {
			return fmt.Errorf("fault: node fault %d names node %d (n=%d)", i, nf.Node, n)
		}
		if nf.At < 0 {
			return fmt.Errorf("fault: node fault %d has negative cycle %d", i, nf.At)
		}
	}
	return validateProfiles(p.Profiles, n)
}

// LinkFaultsFor returns the plan's faults on the directed link a→b, in plan
// order (the NoC caches this per link at attach time).
func (p *Plan) LinkFaultsFor(a, b int) []LinkFault {
	var out []LinkFault
	for _, lf := range p.Links {
		if lf.Matches(a, b) {
			out = append(out, lf)
		}
	}
	return out
}

// NodeFailuresSorted returns the scheduled module failures ordered by cycle
// (stable on node id for equal cycles), deduplicated per node to the
// earliest failure.
func (p *Plan) NodeFailuresSorted() []NodeFault {
	earliest := make(map[int]int64)
	for _, nf := range p.Nodes {
		if at, ok := earliest[nf.Node]; !ok || nf.At < at {
			earliest[nf.Node] = nf.At
		}
	}
	out := make([]NodeFault, 0, len(earliest))
	for node, at := range earliest {
		out = append(out, NodeFault{Node: node, At: at})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// FailedBy returns the nodes dead at or before the cycle, ascending.
func (p *Plan) FailedBy(cycle int64) []int {
	var out []int
	for _, nf := range p.NodeFailuresSorted() {
		if nf.At <= cycle {
			out = append(out, nf.Node)
		}
	}
	sort.Ints(out)
	return out
}

// LinkState folds every active fault on the directed link a→b at the cycle
// into an effective (bandwidth scale, extra SerDes cycles) pair.
//
// Resolution order: bandwidth scales multiply and extra latency adds, in
// plan order. Plan.Validate rejects two active faults of the same class on
// one directed link over overlapping windows, so on a validated plan the
// multiplicative fold never combines two bandwidth scales at once — the
// fold here stays total (not last-wins) only as defense in depth for
// fault slices built without Validate. Faults with no degradation fields
// set (pure drop faults) leave the state untouched.
func LinkState(faults []LinkFault, cycle int64) (scale float64, extra int) {
	scale = 1
	for _, lf := range faults {
		if !lf.ActiveAt(cycle) {
			continue
		}
		if lf.BandwidthScale > 0 {
			scale *= lf.BandwidthScale
		}
		extra += lf.ExtraSerDes
	}
	return scale, extra
}

// DropFlit decides — deterministically in (seed, link, cycle, idx) — whether
// the idx-th flit transmitted on the directed link a→b this cycle is
// corrupted by any active drop fault. All drop faults on a link share one
// per-flit uniform draw, so overlapping drop windows would drop at the
// *maximum* of their probabilities rather than compounding — which is why
// Plan.Validate rejects that overlap instead of resolving it silently.
func DropFlit(seed uint64, faults []LinkFault, a, b int, cycle int64, idx int) bool {
	for _, lf := range faults {
		if lf.DropProb <= 0 || !lf.ActiveAt(cycle) {
			continue
		}
		if Uniform(seed, uint64(a)<<40|uint64(b)<<16|uint64(idx), uint64(cycle)) < lf.DropProb {
			return true
		}
	}
	return false
}

// Uniform hashes (seed, a, b) to a float64 in [0, 1) with SplitMix64 —
// the shared deterministic randomness primitive of the fault model.
func Uniform(seed, a, b uint64) float64 {
	z := seed ^ (a * 0x9e3779b97f4a7c15) ^ (b * 0xbf58476d1ce4e5b9)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
