package fault

import (
	"math"
	"testing"
)

// FuzzUniform checks the three properties the determinism contract needs
// from the shared randomness primitive: range [0,1), pure determinism
// across calls, and sensitivity to every key component.
func FuzzUniform(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0))
	f.Add(uint64(1), uint64(0), uint64(0))
	f.Add(uint64(42), uint64(1)<<40, uint64(17))
	f.Add(^uint64(0), ^uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, seed, a, b uint64) {
		u := Uniform(seed, a, b)
		if u < 0 || u >= 1 || math.IsNaN(u) {
			t.Fatalf("Uniform(%d,%d,%d) = %v outside [0,1)", seed, a, b, u)
		}
		if u2 := Uniform(seed, a, b); u2 != u {
			t.Fatalf("Uniform not deterministic: %v then %v", u, u2)
		}
		// Flipping any single key component must change the draw. The top-53
		// bits of two distinct mixes collide with probability ~2^-53, so
		// require at least one of two neighbor probes per component to
		// differ — a component the hash ignores fails both, a genuine
		// collision (probability ~2^-106) fails neither.
		for name, d := range map[string][3]uint64{
			"seed": {1, 0, 0},
			"a":    {0, 1, 0},
			"b":    {0, 0, 1},
		} {
			if Uniform(seed+d[0], a+d[1], b+d[2]) == u &&
				Uniform(seed+2*d[0], a+2*d[1], b+2*d[2]) == u {
				t.Fatalf("Uniform insensitive to %s at (%d,%d,%d)", name, seed, a, b)
			}
		}
	})
}

// FuzzDropFlit checks the per-flit drop decision: deterministic across
// calls, inert outside the fault window or at probability 0, certain at
// probability 1 inside the window, and keyed on the flit index.
func FuzzDropFlit(f *testing.F) {
	f.Add(uint64(7), int64(50), 0, 0.5)
	f.Add(uint64(0), int64(0), 3, 0.0)
	f.Add(uint64(99), int64(200), 7, 1.0)
	f.Fuzz(func(t *testing.T, seed uint64, cycle int64, idx int, prob float64) {
		if prob < 0 || prob > 1 || idx < 0 || cycle < 0 {
			t.Skip()
		}
		faults := []LinkFault{{From: 1, To: 2, Start: 10, End: 100, DropProb: prob}}
		got := DropFlit(seed, faults, 1, 2, cycle, idx)
		if got2 := DropFlit(seed, faults, 1, 2, cycle, idx); got2 != got {
			t.Fatal("DropFlit not deterministic across calls")
		}
		inWindow := cycle >= 10 && cycle < 100
		if !inWindow && got {
			t.Fatalf("dropped outside window at cycle %d", cycle)
		}
		if prob == 0 && got {
			t.Fatal("dropped at probability 0")
		}
		if prob == 1 && inWindow && !got {
			t.Fatal("kept flit at probability 1 inside window")
		}
		// The decision must depend on the probability threshold exactly:
		// drop iff the shared uniform draw is below prob.
		u := Uniform(seed, uint64(1)<<40|uint64(2)<<16|uint64(idx), uint64(cycle))
		if inWindow && got != (u < prob) {
			t.Fatalf("drop=%v but uniform=%v prob=%v", got, u, prob)
		}
	})
}

// TestDropFlitSensitivity pins the key components of the per-flit draw:
// different seeds, endpoints, cycles, and flit indices must decorrelate
// drops, and the empirical drop rate must track the configured probability.
func TestDropFlitSensitivity(t *testing.T) {
	faults := []LinkFault{{From: 1, To: 2, Start: 0, End: 0, DropProb: 0.5}}
	const n = 4096
	count := func(seed uint64, a, b int, cycleOff int64) int {
		faults := []LinkFault{{From: a, To: b, Start: 0, End: 0, DropProb: 0.5}}
		c := 0
		for i := 0; i < n; i++ {
			if DropFlit(seed, faults, a, b, cycleOff+int64(i), 0) {
				c++
			}
		}
		return c
	}
	base := count(1, 1, 2, 0)
	if math.Abs(float64(base)/n-0.5) > 0.05 {
		t.Fatalf("empirical drop rate %v far from 0.5", float64(base)/n)
	}
	// Per-flit-index independence within one cycle.
	sameIdx := 0
	for i := 0; i < n; i++ {
		if DropFlit(1, faults, 1, 2, 7, i) == DropFlit(1, faults, 1, 2, 7, i+1) {
			sameIdx++
		}
	}
	if math.Abs(float64(sameIdx)/n-0.5) > 0.05 {
		t.Fatalf("adjacent flit indices agree %v of the time, want ~0.5", float64(sameIdx)/n)
	}
	// Seed and endpoint sensitivity: identical sequences would be a hash bug.
	for name, got := range map[string]int{
		"seed":     agreement(t, 1, 2, 2, 2, 0, 0),
		"endpoint": agreement(t, 1, 2, 1, 3, 0, 0),
	} {
		if math.Abs(float64(got)/n-0.5) > 0.05 {
			t.Errorf("%s-varied drop sequences agree %v of the time, want ~0.5", name, float64(got)/n)
		}
	}
}

// agreement counts how often two drop processes with different keys agree
// over 4096 cycles; independent draws agree ~half the time at prob 0.5.
func agreement(t *testing.T, seedA uint64, toA int, seedB uint64, toB int, offA, offB int64) int {
	t.Helper()
	fa := []LinkFault{{From: 1, To: toA, Start: 0, End: 0, DropProb: 0.5}}
	fb := []LinkFault{{From: 1, To: toB, Start: 0, End: 0, DropProb: 0.5}}
	c := 0
	for i := int64(0); i < 4096; i++ {
		if DropFlit(seedA, fa, 1, toA, offA+i, 0) == DropFlit(seedB, fb, 1, toB, offB+i, 0) {
			c++
		}
	}
	return c
}

// TestLinkStateOverlappingWindows pins the documented resolution order when
// fault slices are built without Validate: bandwidth scales multiply and
// extra SerDes cycles add across every active fault, in plan order.
func TestLinkStateOverlappingWindows(t *testing.T) {
	faults := []LinkFault{
		{From: 0, To: 1, Start: 0, End: 100, BandwidthScale: 0.5},
		{From: 0, To: 1, Start: 50, End: 150, BandwidthScale: 0.5, ExtraSerDes: 2},
		{From: 0, To: 1, Start: 60, End: 0, ExtraSerDes: 3}, // never clears
		{From: 0, To: 1, Start: 0, End: 0, DropProb: 0.1},   // pure drop fault: inert here
	}
	for _, tc := range []struct {
		cycle     int64
		wantScale float64
		wantExtra int
	}{
		{0, 0.5, 0},
		{49, 0.5, 0},
		{50, 0.25, 2}, // both scales active: multiply
		{60, 0.25, 5}, // extras add
		{100, 0.5, 5}, // first window closed
		{150, 1.0, 3}, // only the unbounded fault remains
		{1 << 50, 1, 3},
	} {
		scale, extra := LinkState(faults, tc.cycle)
		if math.Abs(scale-tc.wantScale) > 1e-12 || extra != tc.wantExtra {
			t.Errorf("cycle %d: LinkState = (%v, %d), want (%v, %d)",
				tc.cycle, scale, extra, tc.wantScale, tc.wantExtra)
		}
	}
}
