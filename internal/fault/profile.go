package fault

import (
	"fmt"
	"sort"
)

// ThrottleWindow is one thermal-throttle episode: the module's compute
// throughput is multiplied by Scale over the cycle window [Start, End).
// End <= 0 means the throttle never lifts.
type ThrottleWindow struct {
	Start, End int64
	Scale      float64 // compute multiplier while active, in (0, 1]
}

// ActiveAt reports whether the window covers the cycle.
func (w ThrottleWindow) ActiveAt(cycle int64) bool {
	return cycle >= w.Start && (w.End <= 0 || cycle < w.End)
}

// ModuleProfile describes one module's capability relative to a healthy
// reference module — the per-module generalization of the binary
// alive/dead NodeFault. Real memory-centric fleets are heterogeneous:
// stragglers run slow, thermally stressed stacks throttle in episodes, and
// mixed-generation deployments pair modules with unequal compute and
// SerDes rates. Zero-valued scale fields mean "unset" and read as 1.
//
// The profile is as deterministic as the rest of the plan: every consumer
// derives behavior from the profile values alone (no RNG), so a plan with
// profiles reproduces byte-identical simulations.
type ModuleProfile struct {
	Module int

	// ComputeScale multiplies the module's compute throughput (systolic
	// array and vector unit). 0 means unset (healthy, 1.0); otherwise it
	// must lie in (0, 1] — a module that computes nothing is a failure,
	// expressed with FailNode.
	ComputeScale float64

	// LinkScale multiplies the bandwidth of every link the module
	// terminates (its SerDes lanes run derated). 0 means unset; otherwise
	// (0, 1]. A link between two profiled modules runs at the slower
	// endpoint's rate.
	LinkScale float64

	// Throttle lists thermal-throttle episodes that further scale the
	// module's compute over cycle windows. Windows of one module must not
	// overlap (Validate rejects ambiguity instead of picking a winner).
	Throttle []ThrottleWindow
}

// EffectiveComputeScale returns the base compute multiplier (1 when unset).
func (m ModuleProfile) EffectiveComputeScale() float64 {
	if m.ComputeScale == 0 {
		return 1
	}
	return m.ComputeScale
}

// EffectiveLinkScale returns the link-bandwidth multiplier (1 when unset).
func (m ModuleProfile) EffectiveLinkScale() float64 {
	if m.LinkScale == 0 {
		return 1
	}
	return m.LinkScale
}

// ComputeScaleAt returns the module's compute multiplier at one cycle:
// the base scale times every active throttle window's scale.
func (m ModuleProfile) ComputeScaleAt(cycle int64) float64 {
	s := m.EffectiveComputeScale()
	for _, w := range m.Throttle {
		if w.ActiveAt(cycle) {
			s *= w.Scale
		}
	}
	return s
}

// MeanComputeScale returns the module's exact time-averaged compute
// multiplier over [start, end) — the steady-state speed the load-aware
// planner shards against. Validate guarantees windows do not overlap, so
// the average is the base scale minus each window's duty-weighted deficit.
func (m ModuleProfile) MeanComputeScale(start, end int64) float64 {
	base := m.EffectiveComputeScale()
	if end <= start {
		return base
	}
	span := float64(end - start)
	mean := base
	for _, w := range m.Throttle {
		lo, hi := w.Start, w.End
		if lo < start {
			lo = start
		}
		if hi <= 0 || hi > end {
			hi = end
		}
		if hi <= lo {
			continue
		}
		mean -= base * (1 - w.Scale) * float64(hi-lo) / span
	}
	return mean
}

// validateProfiles checks the plan's module profiles against an n-module
// fabric: in-range module ids, scales in (0, 1] (or unset), at most one
// profile per module, and non-overlapping throttle windows.
func validateProfiles(profiles []ModuleProfile, n int) error {
	seen := make(map[int]bool, len(profiles))
	for i, mp := range profiles {
		if mp.Module < 0 || mp.Module >= n {
			return fmt.Errorf("fault: module profile %d names module %d (n=%d)", i, mp.Module, n)
		}
		if seen[mp.Module] {
			return fmt.Errorf("fault: module %d has more than one profile", mp.Module)
		}
		seen[mp.Module] = true
		if mp.ComputeScale < 0 || mp.ComputeScale > 1 {
			return fmt.Errorf("fault: module profile %d has compute scale %v outside (0,1]", i, mp.ComputeScale)
		}
		if mp.LinkScale < 0 || mp.LinkScale > 1 {
			return fmt.Errorf("fault: module profile %d has link scale %v outside (0,1]", i, mp.LinkScale)
		}
		for j, w := range mp.Throttle {
			if w.Scale <= 0 || w.Scale > 1 {
				return fmt.Errorf("fault: module %d throttle %d has scale %v outside (0,1]", mp.Module, j, w.Scale)
			}
			if w.End > 0 && w.End <= w.Start {
				return fmt.Errorf("fault: module %d throttle %d has empty window [%d,%d)", mp.Module, j, w.Start, w.End)
			}
			for k := 0; k < j; k++ {
				if windowsOverlap(mp.Throttle[k].Start, mp.Throttle[k].End, w.Start, w.End) {
					return fmt.Errorf("fault: module %d throttle windows %d and %d overlap", mp.Module, k, j)
				}
			}
		}
	}
	return nil
}

// windowsOverlap reports whether the cycle windows [s1,e1) and [s2,e2)
// intersect, treating End <= 0 as unbounded.
func windowsOverlap(s1, e1, s2, e2 int64) bool {
	if e1 > 0 && e1 <= s2 {
		return false
	}
	if e2 > 0 && e2 <= s1 {
		return false
	}
	return true
}

// ProfileModule installs a capability profile for one module (at most one
// per module; Validate enforces it).
func (p *Plan) ProfileModule(mp ModuleProfile) *Plan {
	p.Profiles = append(p.Profiles, mp)
	return p
}

// SlowModule profiles module m as a permanent straggler at the given
// compute scale.
func (p *Plan) SlowModule(m int, computeScale float64) *Plan {
	return p.ProfileModule(ModuleProfile{Module: m, ComputeScale: computeScale})
}

// ThrottleModule adds a thermal-throttle episode to module m, creating the
// profile if none exists yet.
func (p *Plan) ThrottleModule(m int, start, end int64, scale float64) *Plan {
	for i := range p.Profiles {
		if p.Profiles[i].Module == m {
			p.Profiles[i].Throttle = append(p.Profiles[i].Throttle, ThrottleWindow{Start: start, End: end, Scale: scale})
			return p
		}
	}
	return p.ProfileModule(ModuleProfile{Module: m, Throttle: []ThrottleWindow{{Start: start, End: end, Scale: scale}}})
}

// ProfileFor returns module m's profile, or a healthy zero profile when
// the plan carries none for it.
func (p *Plan) ProfileFor(m int) ModuleProfile {
	for _, mp := range p.Profiles {
		if mp.Module == m {
			return mp
		}
	}
	return ModuleProfile{Module: m}
}

// ModuleSpeeds folds the plan's profiles into dense per-module speed
// slices for an n-module fleet: compute holds each module's mean compute
// multiplier over [start, end) (throttle windows duty-averaged), link each
// module's SerDes bandwidth multiplier. Unprofiled modules read 1. The
// slices feed the load-aware planner (sim.System.ComputeSpeeds/LinkSpeeds)
// and the scenario matrix.
func (p *Plan) ModuleSpeeds(n int, start, end int64) (compute, link []float64) {
	compute = make([]float64, n)
	link = make([]float64, n)
	for i := range compute {
		compute[i] = 1
		link[i] = 1
	}
	for _, mp := range p.Profiles {
		if mp.Module < 0 || mp.Module >= n {
			continue
		}
		compute[mp.Module] = mp.MeanComputeScale(start, end)
		link[mp.Module] = mp.EffectiveLinkScale()
	}
	return compute, link
}

// ProfiledModules returns the ids of modules carrying a profile, ascending.
func (p *Plan) ProfiledModules() []int {
	out := make([]int, 0, len(p.Profiles))
	for _, mp := range p.Profiles {
		out = append(out, mp.Module)
	}
	sort.Ints(out)
	return out
}

// --- canonical degraded-fleet plan builders -------------------------------

// SlowStragglerPlan returns an n-module fleet with one permanent straggler:
// module m computes at computeScale of nominal. The canonical "one slow
// worker gates the synchronous step" scenario.
func SlowStragglerPlan(seed uint64, n, m int, computeScale float64) *Plan {
	return NewPlan(seed).SlowModule(m, computeScale)
}

// ThrottledRegionPlan returns a fleet where the contiguous module region
// [lo, hi) thermally throttles to scale over the cycle window [start, end)
// — a hot quadrant of the package sharing an airflow shadow.
func ThrottledRegionPlan(seed uint64, n, lo, hi int, scale float64, start, end int64) *Plan {
	p := NewPlan(seed)
	for m := lo; m < hi && m < n; m++ {
		if m < 0 {
			continue
		}
		p.ThrottleModule(m, start, end, scale)
	}
	return p
}

// MixedGenerationPlan returns a mixed-generation fleet: the upper half of
// the modules ([n/2, n)) is an older HMC generation running at computeScale
// compute and linkScale SerDes bandwidth; the lower half is nominal.
func MixedGenerationPlan(seed uint64, n int, computeScale, linkScale float64) *Plan {
	p := NewPlan(seed)
	for m := n / 2; m < n; m++ {
		p.ProfileModule(ModuleProfile{Module: m, ComputeScale: computeScale, LinkScale: linkScale})
	}
	return p
}
