package fault

import (
	"math"
	"testing"
)

func TestModuleProfileScalesDefaultToHealthy(t *testing.T) {
	var mp ModuleProfile
	if s := mp.EffectiveComputeScale(); s != 1 {
		t.Fatalf("unset compute scale reads %v, want 1", s)
	}
	if s := mp.EffectiveLinkScale(); s != 1 {
		t.Fatalf("unset link scale reads %v, want 1", s)
	}
	if s := mp.ComputeScaleAt(123); s != 1 {
		t.Fatalf("healthy ComputeScaleAt = %v, want 1", s)
	}
}

func TestComputeScaleAtThrottleWindows(t *testing.T) {
	mp := ModuleProfile{
		Module:       3,
		ComputeScale: 0.8,
		Throttle: []ThrottleWindow{
			{Start: 100, End: 200, Scale: 0.5},
			{Start: 300, End: 0, Scale: 0.25}, // never lifts
		},
	}
	for _, tc := range []struct {
		cycle int64
		want  float64
	}{{0, 0.8}, {99, 0.8}, {100, 0.4}, {199, 0.4}, {200, 0.8}, {299, 0.8}, {300, 0.2}, {1 << 40, 0.2}} {
		if got := mp.ComputeScaleAt(tc.cycle); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ComputeScaleAt(%d) = %v, want %v", tc.cycle, got, tc.want)
		}
	}
}

func TestMeanComputeScaleExactAverage(t *testing.T) {
	mp := ModuleProfile{Module: 0, Throttle: []ThrottleWindow{{Start: 0, End: 500, Scale: 0.5}}}
	// Half the [0, 1000) horizon at 0.5, half at 1.0 -> 0.75.
	if got := mp.MeanComputeScale(0, 1000); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("MeanComputeScale = %v, want 0.75", got)
	}
	// Window clipped to the horizon.
	if got := mp.MeanComputeScale(0, 500); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("MeanComputeScale over the throttled half = %v, want 0.5", got)
	}
	// Unbounded window dominates a horizon inside it.
	forever := ModuleProfile{Throttle: []ThrottleWindow{{Start: 0, End: 0, Scale: 0.25}}}
	if got := forever.MeanComputeScale(100, 200); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("unbounded throttle mean = %v, want 0.25", got)
	}
	// The mean must agree with a brute-force per-cycle average.
	mixed := ModuleProfile{ComputeScale: 0.9, Throttle: []ThrottleWindow{
		{Start: 10, End: 40, Scale: 0.5},
		{Start: 60, End: 80, Scale: 0.2},
	}}
	var sum float64
	for c := int64(0); c < 100; c++ {
		sum += mixed.ComputeScaleAt(c)
	}
	if got, want := mixed.MeanComputeScale(0, 100), sum/100; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanComputeScale = %v, brute force = %v", got, want)
	}
}

func TestProfileValidate(t *testing.T) {
	for name, p := range map[string]*Plan{
		"bad module":        NewPlan(0).SlowModule(9, 0.5),
		"negative module":   NewPlan(0).SlowModule(-1, 0.5),
		"compute scale > 1": NewPlan(0).SlowModule(1, 1.5),
		"link scale > 1":    NewPlan(0).ProfileModule(ModuleProfile{Module: 1, LinkScale: 2}),
		"duplicate profile": NewPlan(0).SlowModule(1, 0.5).ProfileModule(ModuleProfile{Module: 1, LinkScale: 0.5}),
		"throttle scale 0":  NewPlan(0).ThrottleModule(2, 0, 100, 0),
		"empty throttle":    NewPlan(0).ThrottleModule(2, 50, 50, 0.5),
		"overlap throttle":  NewPlan(0).ThrottleModule(2, 0, 100, 0.5).ThrottleModule(2, 50, 150, 0.25),
		"overlap unbounded": NewPlan(0).ThrottleModule(2, 0, 0, 0.5).ThrottleModule(2, 1000, 2000, 0.25),
	} {
		if err := p.Validate(8); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := NewPlan(1).
		SlowModule(1, 0.5).
		ProfileModule(ModuleProfile{Module: 2, ComputeScale: 0.7, LinkScale: 0.5}).
		ThrottleModule(3, 0, 100, 0.5).ThrottleModule(3, 100, 200, 0.25)
	if err := ok.Validate(8); err != nil {
		t.Fatalf("valid profiled plan rejected: %v", err)
	}
}

func TestModuleSpeeds(t *testing.T) {
	p := NewPlan(0).
		SlowModule(1, 0.5).
		ProfileModule(ModuleProfile{Module: 2, LinkScale: 0.25}).
		ThrottleModule(3, 0, 500, 0.5)
	compute, link := p.ModuleSpeeds(4, 0, 1000)
	wantCompute := []float64{1, 0.5, 1, 0.75}
	wantLink := []float64{1, 1, 0.25, 1}
	for i := range wantCompute {
		if math.Abs(compute[i]-wantCompute[i]) > 1e-12 {
			t.Errorf("compute[%d] = %v, want %v", i, compute[i], wantCompute[i])
		}
		if math.Abs(link[i]-wantLink[i]) > 1e-12 {
			t.Errorf("link[%d] = %v, want %v", i, link[i], wantLink[i])
		}
	}
	if ids := p.ProfiledModules(); len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("ProfiledModules = %v", ids)
	}
}

func TestCanonicalFleetBuilders(t *testing.T) {
	straggler := SlowStragglerPlan(7, 16, 5, 0.4)
	if err := straggler.Validate(16); err != nil {
		t.Fatal(err)
	}
	compute, _ := straggler.ModuleSpeeds(16, 0, 1000)
	for i, s := range compute {
		want := 1.0
		if i == 5 {
			want = 0.4
		}
		if s != want {
			t.Fatalf("straggler compute[%d] = %v, want %v", i, s, want)
		}
	}

	region := ThrottledRegionPlan(7, 16, 4, 8, 0.5, 0, 500)
	if err := region.Validate(16); err != nil {
		t.Fatal(err)
	}
	compute, _ = region.ModuleSpeeds(16, 0, 1000)
	for i := 4; i < 8; i++ {
		if math.Abs(compute[i]-0.75) > 1e-12 {
			t.Fatalf("throttled region compute[%d] = %v, want 0.75", i, compute[i])
		}
	}
	if compute[0] != 1 || compute[8] != 1 {
		t.Fatal("throttled region leaked outside [4,8)")
	}

	mixed := MixedGenerationPlan(7, 16, 0.7, 0.5)
	if err := mixed.Validate(16); err != nil {
		t.Fatal(err)
	}
	compute, link := mixed.ModuleSpeeds(16, 0, 1000)
	if compute[0] != 1 || link[0] != 1 {
		t.Fatal("lower half not nominal")
	}
	if compute[8] != 0.7 || link[8] != 0.5 || compute[15] != 0.7 {
		t.Fatalf("upper half compute/link = %v/%v, want 0.7/0.5", compute[8], link[8])
	}
}

func TestValidateRejectsContradictoryLinkOverlaps(t *testing.T) {
	for name, p := range map[string]*Plan{
		"two scales":     NewPlan(0).DegradeLink(0, 1, 0, 100, 0.5, 0).DegradeLink(0, 1, 50, 150, 0.25, 0),
		"two serdes":     NewPlan(0).DegradeLink(0, 1, 0, 100, 0, 3).DegradeLink(0, 1, 50, 150, 0, 5),
		"two drops":      NewPlan(0).DropOnLink(0, 1, 0, 100, 0.1).DropOnLink(0, 1, 50, 150, 0.2),
		"forever window": NewPlan(0).DegradeLink(0, 1, 0, 0, 0.5, 0).DegradeLink(0, 1, 1000, 2000, 0.25, 0),
	} {
		if err := p.Validate(8); err == nil {
			t.Errorf("%s: contradictory overlap accepted", name)
		}
	}
	// Disjoint windows, distinct links, and distinct classes stay legal.
	for name, p := range map[string]*Plan{
		"disjoint windows": NewPlan(0).DegradeLink(0, 1, 0, 100, 0.5, 0).DegradeLink(0, 1, 100, 200, 0.25, 0),
		"distinct links":   NewPlan(0).DegradeLink(0, 1, 0, 100, 0.5, 0).DegradeLink(2, 3, 0, 100, 0.25, 0),
		"distinct classes": NewPlan(0).DegradeLink(0, 1, 0, 100, 0.5, 0).DropOnLink(0, 1, 0, 100, 0.1),
	} {
		if err := p.Validate(8); err != nil {
			t.Errorf("%s: legal plan rejected: %v", name, err)
		}
	}
}
