package fault

import (
	"math"
	"testing"
)

func TestLinkFaultWindow(t *testing.T) {
	f := LinkFault{From: 0, To: 1, Start: 10, End: 20}
	for _, tc := range []struct {
		cycle int64
		want  bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if got := f.ActiveAt(tc.cycle); got != tc.want {
			t.Errorf("ActiveAt(%d) = %v, want %v", tc.cycle, got, tc.want)
		}
	}
	forever := LinkFault{Start: 5, End: 0}
	if !forever.ActiveAt(1 << 40) {
		t.Error("End<=0 fault should never clear")
	}
	if forever.ActiveAt(4) {
		t.Error("fault active before its start")
	}
}

func TestBuildersAddBothDirections(t *testing.T) {
	p := NewPlan(1).DegradeLink(2, 5, 0, 0, 0.5, 3).DropOnLink(1, 4, 0, 100, 0.1)
	if len(p.LinkFaultsFor(2, 5)) != 1 || len(p.LinkFaultsFor(5, 2)) != 1 {
		t.Fatal("DegradeLink did not cover both directions")
	}
	if len(p.LinkFaultsFor(1, 4)) != 1 || len(p.LinkFaultsFor(4, 1)) != 1 {
		t.Fatal("DropOnLink did not cover both directions")
	}
	if len(p.LinkFaultsFor(2, 4)) != 0 {
		t.Fatal("LinkFaultsFor matched an unrelated link")
	}
}

func TestPlanValidate(t *testing.T) {
	for name, p := range map[string]*Plan{
		"bad endpoint":   NewPlan(0).DropOnLink(0, 9, 0, 0, 0.1),
		"self link":      {Links: []LinkFault{{From: 2, To: 2}}},
		"drop prob > 1":  NewPlan(0).DropOnLink(0, 1, 0, 0, 1.5),
		"scale > 1":      NewPlan(0).DegradeLink(0, 1, 0, 0, 2, 0),
		"neg serdes":     {Links: []LinkFault{{From: 0, To: 1, ExtraSerDes: -1}}},
		"empty window":   NewPlan(0).DropOnLink(0, 1, 50, 50, 0.1),
		"bad node":       NewPlan(0).FailNode(8, 0),
		"negative cycle": NewPlan(0).FailNode(1, -3),
	} {
		if err := p.Validate(8); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := NewPlan(7).DegradeLink(0, 1, 0, 100, 0.5, 2).DropOnLink(1, 2, 10, 0, 0.05).FailNode(3, 500)
	if err := ok.Validate(8); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestNodeFailuresSortedDedups(t *testing.T) {
	p := NewPlan(0).FailNode(5, 300).FailNode(2, 100).FailNode(5, 50).FailNode(1, 100)
	got := p.NodeFailuresSorted()
	want := []NodeFault{{Node: 5, At: 50}, {Node: 1, At: 100}, {Node: 2, At: 100}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if by := p.FailedBy(100); len(by) != 3 || by[0] != 1 || by[1] != 2 || by[2] != 5 {
		t.Fatalf("FailedBy(100) = %v", by)
	}
	if by := p.FailedBy(60); len(by) != 1 || by[0] != 5 {
		t.Fatalf("FailedBy(60) = %v", by)
	}
}

func TestLinkStateComposition(t *testing.T) {
	faults := []LinkFault{
		{BandwidthScale: 0.5, Start: 0, End: 0},
		{BandwidthScale: 0.5, ExtraSerDes: 3, Start: 0, End: 0},
		{DropProb: 0.1, Start: 0, End: 0},           // pure drop: no state change
		{BandwidthScale: 0.1, Start: 100, End: 200}, // inactive at cycle 10
	}
	scale, extra := LinkState(faults, 10)
	if math.Abs(scale-0.25) > 1e-12 {
		t.Fatalf("scale = %v, want 0.25 (scales multiply)", scale)
	}
	if extra != 3 {
		t.Fatalf("extra = %d, want 3", extra)
	}
	scale, _ = LinkState(faults, 150)
	if math.Abs(scale-0.025) > 1e-12 {
		t.Fatalf("scale = %v at cycle 150, want 0.025", scale)
	}
}

func TestDropFlitDeterministicAndCalibrated(t *testing.T) {
	faults := []LinkFault{{From: 0, To: 1, DropProb: 0.3}}
	drops := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		a := DropFlit(42, faults, 0, 1, int64(i), i%7)
		b := DropFlit(42, faults, 0, 1, int64(i), i%7)
		if a != b {
			t.Fatal("DropFlit is not deterministic")
		}
		if a {
			drops++
		}
	}
	rate := float64(drops) / trials
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("empirical drop rate %v far from 0.3", rate)
	}
	// A different seed decides differently somewhere.
	diff := false
	for i := 0; i < 100 && !diff; i++ {
		diff = DropFlit(42, faults, 0, 1, int64(i), 0) != DropFlit(43, faults, 0, 1, int64(i), 0)
	}
	if !diff {
		t.Fatal("seed does not influence drop decisions")
	}
}

func TestUniformRange(t *testing.T) {
	for i := uint64(0); i < 10000; i++ {
		u := Uniform(9, i, i*i)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of [0,1): %v", u)
		}
	}
}
