// Package workload generates the synthetic workloads that stand in for
// the paper's CIFAR/ImageNet data (DESIGN.md §2): Gaussian feature maps
// with the statistics the paper observed for Winograd-domain values, and a
// small learnable classification task used to train networks end to end.
// (It was formerly named internal/trace; that name now belongs to the
// cycle-domain tracer in internal/telemetry.)
package workload

import "mptwino/internal/tensor"

// GaussianImages returns n C×H×W images of N(mean, sigma²) noise —
// calibration data for quantizers and distribution studies.
func GaussianImages(n, c, h, w int, mean, sigma float32, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	t := tensor.New(n, c, h, w)
	rng.FillNormal(t, mean, sigma)
	return t
}

// Dataset is a labeled image set.
type Dataset struct {
	Images *tensor.Tensor
	Labels []int
	// Classes is the number of distinct labels.
	Classes int
}

// QuadrantBlobs synthesizes a 4-class task a small CNN can learn: each
// image is Gaussian noise plus a bright blob in one quadrant; the label is
// the quadrant. Feature maps are c channels of h×w (h, w even).
func QuadrantBlobs(n, c, h, w int, seed uint64) Dataset {
	rng := tensor.NewRNG(seed)
	imgs := tensor.New(n, c, h, w)
	rng.FillNormal(imgs, 0, 0.3)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		q := rng.Intn(4)
		labels[i] = q
		h0, w0 := 0, 0
		if q == 1 || q == 3 {
			w0 = w / 2
		}
		if q >= 2 {
			h0 = h / 2
		}
		for ch := 0; ch < c; ch++ {
			for y := h0; y < h0+h/2; y++ {
				for x := w0; x < w0+w/2; x++ {
					imgs.Add(i, ch, y, x, 1.5)
				}
			}
		}
	}
	return Dataset{Images: imgs, Labels: labels, Classes: 4}
}

// Batch extracts images [lo,hi) and their labels as a training minibatch.
func (d Dataset) Batch(lo, hi int) (*tensor.Tensor, []int) {
	n := hi - lo
	c, h, w := d.Images.C, d.Images.H, d.Images.W
	out := tensor.New(n, c, h, w)
	stride := c * h * w
	copy(out.Data, d.Images.Data[lo*stride:hi*stride])
	return out, d.Labels[lo:hi]
}
