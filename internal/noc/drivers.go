package noc

// mustValidConfig asserts the network's config at driver start — drivers
// are the entry point for externally constructed traffic, and a bad config
// (zero flit size, zero buffers) would otherwise livelock deep inside the
// cycle loop.
func mustValidConfig(n *Network) {
	if err := n.Cfg.Validate(); err != nil {
		panic(err)
	}
}

// RingCollective drives a pipelined ring all-reduce (reduce-scatter +
// all-gather) over an ordered member list, the collective the paper's
// communication units implement in hardware (Section VI-C): the payload is
// split into len(members) chunks; chunk k starts at member k and is
// forwarded 2·(n−1) times around the ring, each forward gated on the
// previous delivery — exactly the "pipelined transfer" dependency
// structure, with all chunks in flight concurrently.
type RingCollective struct {
	Members []int
	Bytes   int // total payload per member (the gradient shard size)

	remaining int
	chunk     int
}

// Start injects hop 0 of every chunk.
func (r *RingCollective) Start(n *Network) {
	mustValidConfig(n)
	nm := len(r.Members)
	if nm <= 1 || r.Bytes <= 0 {
		r.remaining = 0
		return
	}
	r.chunk = (r.Bytes + nm - 1) / nm
	r.remaining = nm * 2 * (nm - 1)
	for k := 0; k < nm; k++ {
		n.Inject(&Message{
			Src:   r.Members[k],
			Dst:   r.Members[(k+1)%nm],
			Bytes: r.chunk,
			Tag:   k<<16 | 0, // chunk index, step 0
		})
	}
}

// OnDeliver forwards the chunk to the next member until it has completed
// 2(n−1) steps.
func (r *RingCollective) OnDeliver(n *Network, m *Message) {
	r.remaining--
	nm := len(r.Members)
	step := m.Tag & 0xffff
	if step+1 >= 2*(nm-1) {
		return
	}
	// The member that just received the chunk forwards it on.
	pos := r.memberIndex(m.Dst)
	n.Inject(&Message{
		Src:   m.Dst,
		Dst:   r.Members[(pos+1)%nm],
		Bytes: r.chunk,
		Tag:   (m.Tag &^ 0xffff) | (step + 1),
	})
}

func (r *RingCollective) memberIndex(node int) int {
	for i, v := range r.Members {
		if v == node {
			return i
		}
	}
	panic("noc: node not a ring member")
}

// Done reports all hops delivered.
func (r *RingCollective) Done() bool { return r.remaining <= 0 }

// AllToAll drives the tile-transfer pattern: every member sends Bytes to
// every other member, all injected at once (gather and scatter of
// Winograd-domain tiles inside a cluster).
type AllToAll struct {
	Members []int
	Bytes   int // per source-destination pair

	remaining int
}

// Start injects the full n·(n−1) message set.
func (a *AllToAll) Start(n *Network) {
	mustValidConfig(n)
	if a.Bytes <= 0 {
		return
	}
	for _, s := range a.Members {
		for _, d := range a.Members {
			if s == d {
				continue
			}
			n.Inject(&Message{Src: s, Dst: d, Bytes: a.Bytes})
			a.remaining++
		}
	}
}

// OnDeliver counts completions.
func (a *AllToAll) OnDeliver(n *Network, m *Message) { a.remaining-- }

// Done reports all pairs delivered.
func (a *AllToAll) Done() bool { return a.remaining <= 0 }

// Hotspot drives all members toward a single destination — the worst-case
// pattern for tile gathering when one worker owns a popular tile region.
type Hotspot struct {
	Members []int
	Dst     int
	Bytes   int // per source

	remaining int
}

// Start injects one message per non-destination member.
func (h *Hotspot) Start(n *Network) {
	mustValidConfig(n)
	if h.Bytes <= 0 {
		return
	}
	for _, s := range h.Members {
		if s == h.Dst {
			continue
		}
		n.Inject(&Message{Src: s, Dst: h.Dst, Bytes: h.Bytes})
		h.remaining++
	}
}

// OnDeliver counts completions.
func (h *Hotspot) OnDeliver(n *Network, m *Message) { h.remaining-- }

// Done reports all sources drained.
func (h *Hotspot) Done() bool { return h.remaining <= 0 }

// MultiDriver runs several drivers concurrently over one fabric — e.g. a
// ring collective per group plus all-to-all per cluster, the paper's
// "concurrent collective operation of multiple messages".
type MultiDriver struct {
	Drivers []Driver
	// owner[msgID] would be ambiguous across drivers, so deliveries are
	// broadcast; drivers must tolerate OnDeliver calls for foreign
	// messages. RingCollective and AllToAll track their own message sets.
	byMsg map[*Message]Driver
}

// NewMultiDriver wraps drivers for a combined run.
func NewMultiDriver(ds ...Driver) *MultiDriver {
	return &MultiDriver{Drivers: ds, byMsg: make(map[*Message]Driver)}
}

// Start starts every sub-driver, tracking message ownership via inject
// interposition.
func (md *MultiDriver) Start(n *Network) {
	mustValidConfig(n)
	for _, d := range md.Drivers {
		before := len(n.messages)
		d.Start(n)
		for _, m := range n.messages[before:] {
			md.byMsg[m] = d
		}
	}
}

// OnDeliver dispatches to the owning driver and tracks its follow-ups.
func (md *MultiDriver) OnDeliver(n *Network, m *Message) {
	d := md.byMsg[m]
	if d == nil {
		return
	}
	before := len(n.messages)
	d.OnDeliver(n, m)
	for _, nm := range n.messages[before:] {
		md.byMsg[nm] = d
	}
}

// Done reports whether every sub-driver is done.
func (md *MultiDriver) Done() bool {
	for _, d := range md.Drivers {
		if !d.Done() {
			return false
		}
	}
	return true
}
