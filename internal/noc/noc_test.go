package noc

import (
	"testing"

	"mptwino/internal/topology"
)

// singleMessage is a trivial driver sending one message.
type singleMessage struct {
	src, dst, bytes int
	done            bool
}

func (s *singleMessage) Start(n *Network) {
	n.Inject(&Message{Src: s.src, Dst: s.dst, Bytes: s.bytes})
}
func (s *singleMessage) OnDeliver(n *Network, m *Message) { s.done = true }
func (s *singleMessage) Done() bool                       { return s.done }

func TestSingleMessageLatency(t *testing.T) {
	g := topology.Ring(8)
	n := New(g, DefaultConfig())
	d := &singleMessage{src: 0, dst: 1, bytes: 30}
	st, err := n.Run(d, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// 30 bytes = 3 flits on a full link (3 flits/cycle) + 5 SerDes cycles:
	// all flits enter the pipeline in cycle 1, arrive at cycle 6, eject at
	// cycle 7 at the latest. Allow small scheduling slack.
	if st.MaxLatency < 5 || st.MaxLatency > 10 {
		t.Fatalf("latency = %d cycles, want ~6-8", st.MaxLatency)
	}
	if st.Bytes != 30 {
		t.Fatalf("bytes = %d", st.Bytes)
	}
}

func TestMultiHopLatencyScalesWithHops(t *testing.T) {
	g := topology.Ring(16)
	cfg := DefaultConfig()
	lat := func(dst int) int64 {
		n := New(g, cfg)
		d := &singleMessage{src: 0, dst: dst, bytes: 10}
		st, err := n.Run(d, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return st.MaxLatency
	}
	l1, l4 := lat(1), lat(4)
	// Each extra hop adds ~SerDes+queue ≈ 6 cycles.
	if l4 <= l1+3*3 {
		t.Fatalf("4-hop latency %d not ≫ 1-hop %d", l4, l1)
	}
}

func TestHostLinkSlower(t *testing.T) {
	cfg := DefaultConfig()
	gFull := topology.NewGraph(2)
	gFull.AddBidirectional(0, 1, topology.Full)
	gHost := topology.NewGraph(2)
	gHost.AddBidirectional(0, 1, topology.Host)

	run := func(g *topology.Graph) int64 {
		n := New(g, cfg)
		d := &singleMessage{src: 0, dst: 1, bytes: 10}
		st, err := n.Run(d, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return st.MaxLatency
	}
	if run(gHost) != run(gFull)+int64(cfg.HostExtra) {
		t.Fatal("host link should add HostExtra cycles")
	}
}

func TestInjectValidation(t *testing.T) {
	n := New(topology.Ring(4), DefaultConfig())
	for _, bad := range []*Message{
		{Src: -1, Dst: 0, Bytes: 1},
		{Src: 0, Dst: 9, Bytes: 1},
		{Src: 0, Dst: 1, Bytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad inject %+v did not panic", bad)
				}
			}()
			n.Inject(bad)
		}()
	}
	// Self-send delivers immediately.
	m := n.Inject(&Message{Src: 2, Dst: 2, Bytes: 64})
	if !m.delivered {
		t.Fatal("self-send not delivered")
	}
}

// analyticRingCollective returns the bandwidth lower bound for a pipelined
// ring all-reduce in cycles: each worker moves 2·(n−1)·(S/n) bytes over one
// full link at 30 B/cycle.
func analyticRingCollective(bytes, n int) float64 {
	perWorker := 2.0 * float64(n-1) * float64(bytes) / float64(n)
	return perWorker / 30.0
}

func TestRingCollectiveMatchesAnalytic(t *testing.T) {
	const nWorkers = 8
	const msgBytes = 8 * 1024
	g := topology.Ring(nWorkers)
	n := New(g, DefaultConfig())
	members := make([]int, nWorkers)
	for i := range members {
		members[i] = i
	}
	d := &RingCollective{Members: members, Bytes: msgBytes}
	st, err := n.Run(d, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	lower := analyticRingCollective(msgBytes, nWorkers)
	got := float64(st.Cycles)
	if got < lower {
		t.Fatalf("measured %v cycles below the bandwidth bound %v", got, lower)
	}
	// Pipelining should keep it within ~2.5× of the bound (dependency
	// stalls + SerDes); a much larger gap means the pipeline is broken.
	if got > 2.5*lower+500 {
		t.Fatalf("measured %v cycles, bound %v — pipelining broken?", got, lower)
	}
	// Every ring byte is full-class.
	if st.BytesByClass[topology.Narrow] != 0 {
		t.Fatal("ring collective used narrow links")
	}
}

func TestRingCollectiveSingleMemberNoTraffic(t *testing.T) {
	n := New(topology.Ring(4), DefaultConfig())
	d := &RingCollective{Members: []int{2}, Bytes: 1024}
	st, err := n.Run(d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 0 {
		t.Fatal("single-member collective should move nothing")
	}
}

func TestAllToAllOnFBFLY(t *testing.T) {
	g := topology.FBFly2D(4)
	n := New(g, DefaultConfig())
	members := make([]int, 16)
	for i := range members {
		members[i] = i
	}
	const pair = 640
	d := &AllToAll{Members: members, Bytes: pair}
	st, err := n.Run(d, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 16*15 {
		t.Fatalf("messages = %d", st.Messages)
	}
	// Bandwidth bound: each node ejects 15·pair bytes over 6 narrow input
	// links at 10 B/cycle each = 60 B/cycle aggregate... injection is the
	// tighter bound: each node sources 15·pair over 6 narrow out-links.
	lower := float64(15*pair) / 60.0
	if float64(st.Cycles) < lower {
		t.Fatalf("cycles %d below bound %v", st.Cycles, lower)
	}
	if float64(st.Cycles) > 6*lower+1000 {
		t.Fatalf("cycles %d far above bound %v", st.Cycles, lower)
	}
	if st.BytesByClass[topology.Full] != 0 {
		t.Fatal("FBFLY all-to-all used full links")
	}
}

// TestHybridConcurrentTraffic runs the paper's real mixture on the (4,8)
// hybrid: one ring collective per group plus one all-to-all per cluster,
// concurrently, and checks both complete and use their own fabrics.
func TestHybridConcurrentTraffic(t *testing.T) {
	const ng, nc = 4, 8
	g := topology.Hybrid(ng, nc, false)
	n := New(g, DefaultConfig())

	var drivers []Driver
	for grp := 0; grp < ng; grp++ {
		members := make([]int, nc)
		for c := 0; c < nc; c++ {
			members[c] = topology.WorkerID(grp, c, nc)
		}
		drivers = append(drivers, &RingCollective{Members: members, Bytes: 4096})
	}
	for c := 0; c < nc; c++ {
		members := make([]int, ng)
		for grp := 0; grp < ng; grp++ {
			members[grp] = topology.WorkerID(grp, c, nc)
		}
		drivers = append(drivers, &AllToAll{Members: members, Bytes: 512})
	}
	st, err := n.Run(NewMultiDriver(drivers...), 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesByClass[topology.Full] == 0 || st.BytesByClass[topology.Narrow] == 0 {
		t.Fatalf("expected traffic on both fabrics: %+v", st.BytesByClass)
	}
	// Collectives must not leak onto narrow links and vice versa: total
	// narrow bytes = all-to-all bytes × mean hops (1 for K4 clusters).
	wantNarrow := int64(nc * ng * (ng - 1) * 512)
	if st.BytesByClass[topology.Narrow] != wantNarrow {
		t.Fatalf("narrow bytes = %d, want %d", st.BytesByClass[topology.Narrow], wantNarrow)
	}
}

func TestStatsDuration(t *testing.T) {
	s := Stats{Cycles: 2000}
	if s.Duration(1e9) != 2e-6 {
		t.Fatalf("Duration = %v", s.Duration(1e9))
	}
}

// TestDeterminism: identical runs produce identical cycle counts.
func TestDeterminism(t *testing.T) {
	run := func() int64 {
		g := topology.Hybrid(4, 4, false)
		n := New(g, DefaultConfig())
		members := []int{0, 4, 8, 12}
		d := &AllToAll{Members: members, Bytes: 300}
		st, err := n.Run(d, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	if run() != run() {
		t.Fatal("simulation not deterministic")
	}
}

// TestRandomFirstHopReducesAllToAllCongestion: on the FBFLY, randomized
// minimal routing spreads 2-hop flows over both XY and YX paths and must
// not be slower than deterministic routing under uniform all-to-all.
func TestRandomFirstHopVsDeterministic(t *testing.T) {
	run := func(random bool) int64 {
		cfg := DefaultConfig()
		cfg.RandomFirstHop = random
		cfg.Seed = 99
		g := topology.FBFly2D(4)
		n := New(g, cfg)
		members := make([]int, 16)
		for i := range members {
			members[i] = i
		}
		st, err := n.Run(&AllToAll{Members: members, Bytes: 4096}, 50_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	det := run(false)
	rnd := run(true)
	if rnd > det*11/10 {
		t.Fatalf("randomized routing slower: %d vs %d cycles", rnd, det)
	}
}

func TestRandomFirstHopStillDelivers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RandomFirstHop = true
	g := topology.Hybrid(4, 8, true)
	n := New(g, cfg)
	members := []int{0, 8, 16, 24}
	d := &AllToAll{Members: members, Bytes: 777}
	st, err := n.Run(d, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 12 || st.Bytes != 12*777 {
		t.Fatalf("delivery incomplete: %+v", st)
	}
}

func TestLinkUtilizationStats(t *testing.T) {
	g := topology.Ring(4)
	n := New(g, DefaultConfig())
	d := &singleMessage{src: 0, dst: 1, bytes: 3000}
	st, err := n.Run(d, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxLinkUtil <= 0 || st.MaxLinkUtil > 1 {
		t.Fatalf("MaxLinkUtil = %v", st.MaxLinkUtil)
	}
	if st.MeanLinkUtil <= 0 || st.MeanLinkUtil > st.MaxLinkUtil {
		t.Fatalf("MeanLinkUtil = %v (max %v)", st.MeanLinkUtil, st.MaxLinkUtil)
	}
}

// TestHotspotSerializes: a hotspot's completion time is bounded below by
// the destination's ejection bandwidth, far above the per-source time.
func TestHotspotDriver(t *testing.T) {
	g := topology.FBFly2D(4)
	n := New(g, DefaultConfig())
	members := make([]int, 16)
	for i := range members {
		members[i] = i
	}
	const per = 3000
	d := &Hotspot{Members: members, Dst: 5, Bytes: per}
	st, err := n.Run(d, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 15 {
		t.Fatalf("messages = %d", st.Messages)
	}
	// Destination has 6 narrow in-links at 10 B/cycle: >= 15·per/60 cycles.
	lower := int64(15 * per / 60)
	if st.Cycles < lower {
		t.Fatalf("cycles %d below ejection bound %d", st.Cycles, lower)
	}
	// The hot links must be far busier than the mean.
	if st.MaxLinkUtil < 2*st.MeanLinkUtil {
		t.Fatalf("hotspot did not skew utilization: max %v mean %v", st.MaxLinkUtil, st.MeanLinkUtil)
	}
}
