// Package noc is a flit-level simulator of the memory-centric network —
// the role Booksim plays in the paper's methodology (Table III). Routers
// forward flits over class-weighted links (full 30 B/cycle, narrow
// 10 B/cycle at the 1 GHz router clock) with per-hop SerDes latency,
// finite input buffers, and round-robin output arbitration. Traffic
// drivers express the paper's two patterns: pipelined ring collectives and
// cluster-local all-to-all tile transfer.
//
// The simulator transfers flits independently (per-flit virtual
// cut-through) rather than reserving channels per packet; at the message
// sizes and loads evaluated this matches wormhole throughput while keeping
// the model deadlock-free in combination with always-draining ejection.
package noc

import (
	"fmt"

	"mptwino/internal/topology"
)

// Config sets the physical parameters of the simulated fabric.
type Config struct {
	FlitBytes    int // flit payload; 10 B makes narrow links exactly 1 flit/cycle
	SerDesCycles int // per-hop serialization+deserialization (paper: 5 ns)
	HostExtra    int // additional cycles on Host-class links (through-host hop)
	BufferFlits  int // input-queue capacity per port, in flits
	ClockHz      float64

	// RandomFirstHop enables randomized minimal routing at injection: a
	// message departs through a uniformly chosen minimal first hop instead
	// of the deterministic table entry, spreading all-to-all load across
	// path-diverse fabrics like the FBFLY (where every 2-hop pair has an
	// XY and a YX path).
	RandomFirstHop bool
	// Seed drives the first-hop randomization (deterministic per seed).
	Seed uint64
}

// DefaultConfig returns the Table III configuration.
func DefaultConfig() Config {
	return Config{
		FlitBytes:    10,
		SerDesCycles: 5,
		HostExtra:    5,
		BufferFlits:  16,
		ClockHz:      1e9,
	}
}

// Message is one network transfer between two workers.
type Message struct {
	ID    int
	Src   int
	Dst   int
	Bytes int
	// Tag carries driver-private state (e.g. chunk index / step).
	Tag int

	InjectedAt    int64
	DeliveredAt   int64
	receivedBytes int
	delivered     bool
}

type flit struct {
	msg   *Message
	bytes int
}

// inFlight is a flit traversing a link's SerDes pipeline.
type inFlight struct {
	f        flit
	arriveAt int64
}

// port is one input queue of a router.
type port struct {
	queue []flit
}

// link is a directed physical channel.
type link struct {
	from, to    int
	class       topology.LinkClass
	flitsPerCyc int
	latency     int64
	pipeline    []inFlight
	// stats
	busyFlits int64
}

// Network is the simulation instance.
type Network struct {
	Cfg    Config
	G      *topology.Graph
	Routes *topology.RouteTable

	links    []*link
	outLinks [][]int         // node -> indices into links
	linkIdx  map[[2]int]int  // (from,to) -> link index
	inPorts  []map[int]*port // node -> from-node -> queue
	// injectQ is per outgoing link, not per node: locally injected flits
	// queue at the output port their route departs through, so messages
	// bound for different links never head-of-line block each other.
	injectQ [][]flit // indexed like links
	rr      []int    // round-robin cursor per link

	now       int64
	messages  []*Message
	pendingID int
	rngState  uint64

	// Stats
	BytesByClass map[topology.LinkClass]int64
	FlitHops     int64
}

// New builds a network simulator over graph g.
func New(g *topology.Graph, cfg Config) *Network {
	n := &Network{
		Cfg:          cfg,
		G:            g,
		Routes:       topology.BuildRoutes(g),
		outLinks:     make([][]int, g.N),
		linkIdx:      make(map[[2]int]int),
		inPorts:      make([]map[int]*port, g.N),
		BytesByClass: make(map[topology.LinkClass]int64),
	}
	for v := 0; v < g.N; v++ {
		n.inPorts[v] = make(map[int]*port)
	}
	for from := 0; from < g.N; from++ {
		for _, e := range g.Adj[from] {
			l := &link{
				from:        from,
				to:          e.To,
				class:       e.Class,
				flitsPerCyc: int(e.Class.Bandwidth() / cfg.ClockHz / float64(cfg.FlitBytes)),
				latency:     int64(cfg.SerDesCycles),
			}
			if l.flitsPerCyc < 1 {
				l.flitsPerCyc = 1
			}
			if e.Class == topology.Host {
				l.latency += int64(cfg.HostExtra)
			}
			n.linkIdx[[2]int{from, e.To}] = len(n.links)
			n.outLinks[from] = append(n.outLinks[from], len(n.links))
			n.links = append(n.links, l)
			n.inPorts[e.To][from] = &port{}
		}
	}
	n.rr = make([]int, len(n.links))
	n.injectQ = make([][]flit, len(n.links))
	n.rngState = cfg.Seed ^ 0x632be59bd9b4e019
	return n
}

// rand32 advances the network's deterministic RNG (SplitMix64).
func (n *Network) rand32() uint32 {
	n.rngState += 0x9e3779b97f4a7c15
	z := n.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return uint32(z ^ (z >> 31))
}

// firstHop picks the message's departure neighbor: the deterministic
// minimal next hop, or — with RandomFirstHop — a uniform choice among all
// minimal neighbors.
func (n *Network) firstHop(src, dst int) int {
	if !n.Cfg.RandomFirstHop {
		return n.Routes.NextHop(src, dst)
	}
	want := n.Routes.HopCount(src, dst) - 1
	var minimal []int
	for _, e := range n.G.Adj[src] {
		if n.Routes.HopCount(e.To, dst) == want {
			minimal = append(minimal, e.To)
		}
	}
	if len(minimal) == 0 {
		return n.Routes.NextHop(src, dst)
	}
	return minimal[int(n.rand32())%len(minimal)]
}

// Now returns the current simulation cycle.
func (n *Network) Now() int64 { return n.now }

// Inject queues a message at its source. It returns the message for
// driver bookkeeping.
func (n *Network) Inject(m *Message) *Message {
	if m.Src < 0 || m.Src >= n.G.N || m.Dst < 0 || m.Dst >= n.G.N {
		panic(fmt.Sprintf("noc: inject with bad endpoints %d->%d", m.Src, m.Dst))
	}
	if m.Bytes <= 0 {
		panic("noc: inject with non-positive size")
	}
	m.ID = n.pendingID
	n.pendingID++
	m.InjectedAt = n.now
	n.messages = append(n.messages, m)
	if m.Src == m.Dst {
		m.delivered = true
		m.DeliveredAt = n.now
		return m
	}
	firstHop := n.firstHop(m.Src, m.Dst)
	if firstHop < 0 {
		panic(fmt.Sprintf("noc: no route %d->%d", m.Src, m.Dst))
	}
	li := n.linkIdx[[2]int{m.Src, firstHop}]
	remaining := m.Bytes
	for remaining > 0 {
		b := n.Cfg.FlitBytes
		if remaining < b {
			b = remaining
		}
		n.injectQ[li] = append(n.injectQ[li], flit{msg: m, bytes: b})
		remaining -= b
	}
	return m
}

// Driver generates traffic: Start injects initial messages; OnDeliver is
// called once per delivered message and may inject follow-ups; Done
// reports completion (checked when no traffic is in flight).
type Driver interface {
	Start(n *Network)
	OnDeliver(n *Network, m *Message)
	Done() bool
}

// Stats summarizes one run.
type Stats struct {
	Cycles       int64
	Messages     int
	Bytes        int64
	AvgLatency   float64 // cycles, injection to full delivery
	MaxLatency   int64
	FlitHops     int64
	BytesByClass map[topology.LinkClass]int64

	// MaxLinkUtil / MeanLinkUtil are busy-flit fractions of link capacity
	// over the whole run (links that never carried traffic are excluded
	// from the mean — they were powered off per the paper's energy
	// methodology).
	MaxLinkUtil  float64
	MeanLinkUtil float64
}

// Duration converts the run length to seconds at the configured clock.
func (s Stats) Duration(clockHz float64) float64 { return float64(s.Cycles) / clockHz }

// Run drives the simulation until the driver is done and all traffic has
// drained, or maxCycles elapses (an error, indicating deadlock or
// overload).
func (n *Network) Run(d Driver, maxCycles int64) (Stats, error) {
	d.Start(n)
	for {
		if n.idle() && d.Done() {
			break
		}
		if n.now >= maxCycles {
			return Stats{}, fmt.Errorf("noc: exceeded %d cycles with traffic outstanding", maxCycles)
		}
		n.step(d)
	}
	return n.stats(), nil
}

// Step advances the simulation by one cycle under the driver — the
// building block for co-simulators that interleave network transport with
// their own per-cycle state machines (internal/cosim).
func (n *Network) Step(d Driver) { n.step(d) }

// Idle reports whether no flit is queued or in flight.
func (n *Network) Idle() bool { return n.idle() }

// idle reports whether no flit is queued or in flight.
func (n *Network) idle() bool {
	for _, q := range n.injectQ {
		if len(q) > 0 {
			return false
		}
	}
	for _, l := range n.links {
		if len(l.pipeline) > 0 {
			return false
		}
	}
	for _, ports := range n.inPorts {
		for _, p := range ports {
			if len(p.queue) > 0 {
				return false
			}
		}
	}
	return true
}

// step advances one cycle: link arrivals, ejection, then output
// arbitration and transmission.
func (n *Network) step(d Driver) {
	n.now++

	// 1. Deliver pipeline arrivals into downstream input queues (if space).
	for _, l := range n.links {
		kept := l.pipeline[:0]
		p := n.inPorts[l.to][l.from]
		for _, inf := range l.pipeline {
			if inf.arriveAt <= n.now && len(p.queue) < n.Cfg.BufferFlits {
				p.queue = append(p.queue, inf.f)
			} else {
				kept = append(kept, inf)
			}
		}
		l.pipeline = kept
	}

	// 2. Eject flits destined to their local node.
	for v := 0; v < n.G.N; v++ {
		for _, p := range n.inPorts[v] {
			kept := p.queue[:0]
			for _, f := range p.queue {
				if f.msg.Dst == v {
					n.deliverFlit(d, f)
				} else {
					kept = append(kept, f)
				}
			}
			p.queue = kept
		}
	}

	// 3. Transmit: every link moves up to flitsPerCyc flits whose route
	// passes through it, arbitrating round-robin across the node's input
	// ports and the link's own injection queue.
	for li, l := range n.links {
		budget := l.flitsPerCyc
		sources := n.arbSources(l.from, li)
		ns := len(sources)
		if ns == 0 {
			continue
		}
		start := n.rr[li] % ns
		for s := 0; s < ns && budget > 0; s++ {
			src := sources[(start+s)%ns]
			for budget > 0 && len(*src.q) > 0 {
				f := (*src.q)[0]
				// Flits in this link's injection queue already committed to
				// this first hop (possibly a randomized minimal choice);
				// transit flits follow the deterministic route table.
				if !src.inject && n.Routes.NextHop(l.from, f.msg.Dst) != l.to {
					break // head flit routes elsewhere; try next source
				}
				*src.q = (*src.q)[1:]
				l.pipeline = append(l.pipeline, inFlight{f: f, arriveAt: n.now + l.latency})
				l.busyFlits++
				n.FlitHops++
				n.BytesByClass[l.class] += int64(f.bytes)
				budget--
			}
		}
		n.rr[li] = (start + 1) % ns
	}
}

// arbSource is one candidate feeder queue for an output link.
type arbSource struct {
	q      *[]flit
	inject bool // the link's own injection queue (pre-routed)
}

// arbSources returns every queue at node v that can feed output link li:
// the input ports plus that link's injection queue.
func (n *Network) arbSources(v, li int) []arbSource {
	out := make([]arbSource, 0, len(n.inPorts[v])+1)
	// Deterministic order: iterate adjacency (stable) rather than map order.
	for _, e := range n.G.Adj[v] {
		// e.To's reverse port at v — i.e. flits arriving from e.To.
		if p, ok := n.inPorts[v][e.To]; ok {
			out = append(out, arbSource{q: &p.queue})
		}
	}
	out = append(out, arbSource{q: &n.injectQ[li], inject: true})
	return out
}

func (n *Network) deliverFlit(d Driver, f flit) {
	m := f.msg
	m.receivedBytes += f.bytes
	if m.receivedBytes >= m.Bytes && !m.delivered {
		m.delivered = true
		m.DeliveredAt = n.now
		d.OnDeliver(n, m)
	}
}

func (n *Network) stats() Stats {
	s := Stats{
		Cycles:       n.now,
		Messages:     len(n.messages),
		FlitHops:     n.FlitHops,
		BytesByClass: n.BytesByClass,
	}
	var totalLat int64
	for _, m := range n.messages {
		s.Bytes += int64(m.Bytes)
		lat := m.DeliveredAt - m.InjectedAt
		totalLat += lat
		if lat > s.MaxLatency {
			s.MaxLatency = lat
		}
	}
	if len(n.messages) > 0 {
		s.AvgLatency = float64(totalLat) / float64(len(n.messages))
	}
	if n.now > 0 {
		var sum float64
		active := 0
		for _, l := range n.links {
			if l.busyFlits == 0 {
				continue
			}
			u := float64(l.busyFlits) / (float64(n.now) * float64(l.flitsPerCyc))
			sum += u
			active++
			if u > s.MaxLinkUtil {
				s.MaxLinkUtil = u
			}
		}
		if active > 0 {
			s.MeanLinkUtil = sum / float64(active)
		}
	}
	return s
}
